// Federation: the extensibility claim, live. The paper argues COIN
// integration is extensible because "the addition of new sources or
// receivers requires only incremental instantiation of a new context (if
// one does not already exist)" and changes stay local to elevation axioms.
//
// This example starts with the Figure 2 federation, runs the paper's
// query, then integrates a brand-new European source at runtime — one
// context declaration plus elevation axioms, nothing else — and shows (a)
// the old query's mediated form is byte-for-byte unchanged, and (b) the
// new source is immediately queryable in the receiver's context.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"

	"repro/coin"
)

func main() {
	sys := coin.Figure2System()

	before, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Federation of %d sources; Q1 mediates into %d branches.\n\n",
		len(sys.Relations()), len(before.Branches))

	fmt.Println("== A new source joins: European financials in thousands of EUR.")
	fmt.Println("   Integration cost: one context (c3) + elevation axioms for r4. Nothing else.")
	c3 := coin.NewContext("c3")
	must(c3.DeclareConst("companyFinancials", "scaleFactor", 1000))
	must(c3.DeclareConst("companyFinancials", "currency", "EUR"))
	must(sys.AddContext(c3))

	db := coin.NewDB("source3")
	tab := db.MustCreateTable("r4", coin.NewSchema(
		coin.Column{Name: "cname", Type: coin.KindString},
		coin.Column{Name: "revenue", Type: coin.KindNumber},
	))
	tab.MustInsert(coin.StrV("SAP"), coin.NumV(8_500_000))      // 8.5e6 kEUR
	tab.MustInsert(coin.StrV("SIEMENS"), coin.NumV(62_000_000)) // 62e6 kEUR
	must(sys.AddRelationalSource(db, map[string]*coin.Elevation{
		"r4": {
			Relation: "r4",
			Context:  "c3",
			Columns: []coin.ElevatedColumn{
				{Column: "cname", SemType: "companyName"},
				{Column: "revenue", SemType: "companyFinancials"},
			},
		},
	}))

	after, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		log.Fatal(err)
	}
	if before.Mediated.String() == after.Mediated.String() {
		fmt.Println("\n== Old query re-mediated: byte-for-byte identical. No ripple effects.")
	} else {
		fmt.Println("\n!! Old query CHANGED — extensibility violated:")
		fmt.Println(after.SQL())
	}

	fmt.Println("\n== The new source answers immediately, converted into the receiver's USD:")
	med, err := sys.Mediate("SELECT r4.cname, r4.revenue FROM r4 ORDER BY revenue DESC", "c2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- mediated (%d branch(es)):\n%s\n\n", len(med.Branches), med.SQL())
	rows, err := sys.Execute(med)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())
	fmt.Println("\n(8,500,000 kEUR x 1000 x 1.10 = 9.35e12 USD etc. — scale and rate applied.)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
