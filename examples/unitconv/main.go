// Unitconv: context mediation is not only about money. Two engineering
// parts catalogs report rod lengths in different units — one in
// millimeters, one in inches — and an engineer working in millimeters
// queries both as if there were no conflict. The affine conversion class
// (fixed linear coefficients, here 1 in = 25.4 mm) reconciles them,
// alongside the paper's ratio and rate-lookup conversion classes.
//
//	go run ./examples/unitconv
package main

import (
	"fmt"
	"log"

	"repro/coin"
)

func main() {
	model := coin.NewModel()
	model.MustAddType(&coin.SemType{Name: "partNumber"})
	model.MustAddType(&coin.SemType{Name: "length", Modifiers: []string{"unit"}})
	model.MustAddConversion(coin.AffineConversion("unit",
		coin.TermStr("in"), coin.TermStr("mm"), 25.4, 0))
	sys := coin.New(model)

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	metric := coin.NewContext("metric")
	must(metric.DeclareConst("length", "unit", "mm"))
	must(sys.AddContext(metric))
	imperial := coin.NewContext("imperial")
	must(imperial.DeclareConst("length", "unit", "in"))
	must(sys.AddContext(imperial))

	elevate := func(rel, ctx string) *coin.Elevation {
		return &coin.Elevation{
			Relation: rel,
			Context:  ctx,
			Columns: []coin.ElevatedColumn{
				{Column: "part", SemType: "partNumber"},
				{Column: "len", SemType: "length"},
			},
		}
	}
	euDB := coin.NewDB("eu_catalog")
	eu := euDB.MustCreateTable("eu_parts", coin.NewSchema(
		coin.Column{Name: "part", Type: coin.KindString},
		coin.Column{Name: "len", Type: coin.KindNumber},
	))
	eu.MustInsert(coin.StrV("ROD-1"), coin.NumV(500))
	eu.MustInsert(coin.StrV("ROD-2"), coin.NumV(254))
	must(sys.AddRelationalSource(euDB, map[string]*coin.Elevation{"eu_parts": elevate("eu_parts", "metric")}))

	usDB := coin.NewDB("us_catalog")
	us := usDB.MustCreateTable("us_parts", coin.NewSchema(
		coin.Column{Name: "part", Type: coin.KindString},
		coin.Column{Name: "len", Type: coin.KindNumber},
	))
	us.MustInsert(coin.StrV("ROD-3"), coin.NumV(10)) // 10 in = 254 mm
	us.MustInsert(coin.StrV("ROD-4"), coin.NumV(24)) // 24 in = 609.6 mm
	must(sys.AddRelationalSource(usDB, map[string]*coin.Elevation{"us_parts": elevate("us_parts", "imperial")}))

	fmt.Println("== All rods longer than 300 mm, in the metric engineer's context:")
	q := `SELECT e.part, e.len FROM eu_parts e WHERE e.len > 300
	      UNION
	      SELECT u.part, u.len FROM us_parts u WHERE u.len > 300`
	med, err := sys.Mediate(q, "metric")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- mediated (the imperial arm gained \"* 25.4\"):\n%s\n\n", med.SQL())
	rows, err := sys.Execute(med)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())

	fmt.Println("\n== The same question in the imperial engineer's context (inches):")
	rows, err = sys.Query(`SELECT e.part, e.len FROM eu_parts e UNION SELECT u.part, u.len FROM us_parts u`, "imperial")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())
}
