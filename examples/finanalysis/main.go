// Financial-analysis decision support — the application area the paper's
// conclusion reports deploying with industry partners ("profit and loss
// analysis, and marketing intelligence").
//
// Two financial databases report company P&L in different contexts (a US
// source in plain USD; a Japanese source in thousands of JPY), a Web
// directory provides company profiles, and a currency-exchange Web site
// provides rates. The analyst, working in USD, asks profit-and-loss
// questions without knowing any of that.
//
//	go run ./examples/finanalysis
package main

import (
	"fmt"
	"log"

	"repro/coin"
)

func buildSystem() *coin.System {
	model := coin.NewModel()
	model.MustAddType(&coin.SemType{Name: "companyName"})
	model.MustAddType(&coin.SemType{Name: "money", Modifiers: []string{"scaleFactor", "currency"}})
	model.MustAddConversion(coin.RatioConversion("scaleFactor"))
	model.MustAddConversion(coin.LookupConversion("currency", "rate"))
	sys := coin.New(model)

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	usa := coin.NewContext("usa")
	must(usa.DeclareConst("money", "scaleFactor", 1))
	must(usa.DeclareConst("money", "currency", "USD"))
	must(sys.AddContext(usa))

	japan := coin.NewContext("japan")
	must(japan.DeclareConst("money", "scaleFactor", 1000))
	must(japan.DeclareConst("money", "currency", "JPY"))
	must(sys.AddContext(japan))

	// US source: plain USD.
	usDB := coin.NewDB("us_financials")
	usTab := usDB.MustCreateTable("us_fin", coin.NewSchema(
		coin.Column{Name: "cname", Type: coin.KindString},
		coin.Column{Name: "revenue", Type: coin.KindNumber},
		coin.Column{Name: "expenses", Type: coin.KindNumber},
	))
	usTab.MustInsert(coin.StrV("IBM"), coin.NumV(81_000_000_000), coin.NumV(72_000_000_000))
	usTab.MustInsert(coin.StrV("ATT"), coin.NumV(52_000_000_000), coin.NumV(53_500_000_000))
	moneyCols := func(rel string) *coin.Elevation {
		return &coin.Elevation{
			Relation: rel,
			Context:  map[string]string{"us_fin": "usa", "jp_fin": "japan"}[rel],
			Columns: []coin.ElevatedColumn{
				{Column: "cname", SemType: "companyName"},
				{Column: "revenue", SemType: "money"},
				{Column: "expenses", SemType: "money"},
			},
		}
	}
	must(sys.AddRelationalSource(usDB, map[string]*coin.Elevation{"us_fin": moneyCols("us_fin")}))

	// Japanese source: thousands of JPY.
	jpDB := coin.NewDB("jp_financials")
	jpTab := jpDB.MustCreateTable("jp_fin", coin.NewSchema(
		coin.Column{Name: "cname", Type: coin.KindString},
		coin.Column{Name: "revenue", Type: coin.KindNumber},
		coin.Column{Name: "expenses", Type: coin.KindNumber},
	))
	jpTab.MustInsert(coin.StrV("NTT"), coin.NumV(9_500_000_000), coin.NumV(8_100_000_000)) // thousands of JPY
	jpTab.MustInsert(coin.StrV("SONY"), coin.NumV(4_400_000_000), coin.NumV(4_700_000_000))
	must(sys.AddRelationalSource(jpDB, map[string]*coin.Elevation{"jp_fin": moneyCols("jp_fin")}))

	// Company profiles from the Web directory (context-free).
	profiles := coin.NewProfileSite([]coin.Profile{
		{Name: "IBM", Country: "USA", Sector: "Technology", Employees: 220000},
		{Name: "ATT", Country: "USA", Sector: "Telecom", Employees: 300000},
		{Name: "NTT", Country: "Japan", Sector: "Telecom", Employees: 330000},
		{Name: "SONY", Country: "Japan", Sector: "Technology", Employees: 160000},
	})
	profSpec, _ := coin.BuiltinSpec(coin.ProfileSpec)
	must(sys.AddWebSource("profileweb", profiles, []*coin.WrapSpec{profSpec}, nil))

	// Exchange rates from the currency Web service (ancillary).
	rates := coin.NewCurrencySite(map[coin.RatePair]float64{
		{From: "JPY", To: "USD"}: 0.0096,
		{From: "USD", To: "JPY"}: 104.00,
	})
	rateSpec, _ := coin.BuiltinSpec(coin.CurrencySpecCrawl)
	must(sys.AddWebSource("currencyweb", rates, []*coin.WrapSpec{rateSpec}, nil))
	must(sys.AddAncillary("rate", "r3"))
	return sys
}

func main() {
	sys := buildSystem()

	fmt.Println("== Profit & loss per Japanese company, in the analyst's USD context:")
	q1 := "SELECT j.cname, j.revenue - j.expenses AS profit FROM jp_fin j ORDER BY profit DESC"
	med, err := sys.Mediate(q1, "usa")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- mediated (%d branch(es)); conversion: x1000, JPY->USD rate from the Web\n", len(med.Branches))
	rows, err := sys.Execute(med)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())

	fmt.Println("\n== The same numbers naively (contexts ignored) would be wildly wrong:")
	naive, err := sys.QueryNaive("SELECT j.cname, j.revenue - j.expenses AS profit FROM jp_fin j")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(naive.String())

	fmt.Println("\n== Cross-source, cross-context: total revenue of the Telecom sector in USD:")
	q3 := `SELECT SUM(j.revenue) AS telecom_jp_usd FROM jp_fin j, profiles p
	       WHERE j.cname = p.cname AND p.sector = 'Telecom'`
	rows, err = sys.Query(q3, "usa")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())

	fmt.Println("\n== Marketing intelligence: who is profitable, across both sources (UNION):")
	q4 := `SELECT u.cname, u.revenue - u.expenses AS profit FROM us_fin u WHERE u.revenue > u.expenses
	       UNION
	       SELECT j.cname, j.revenue - j.expenses AS profit FROM jp_fin j WHERE j.revenue > j.expenses`
	rows, err = sys.Query(q4, "usa")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())
}
