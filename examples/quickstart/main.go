// Quickstart: the paper's Section 3 example end to end.
//
// It builds the Figure 2 system (two relational sources in conflicting
// contexts plus the currency-exchange Web source), shows the naive query
// returning the paper's "clearly not correct" empty answer, prints the
// mediated query — the 3-branch UNION of Section 3 — and executes it to
// obtain the correct answer <'NTT', 9 600 000>.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/coin"
)

func main() {
	sys := coin.Figure2System()

	fmt.Println("== The query, as the receiver in context c2 writes it (no conflicts assumed):")
	fmt.Println(coin.PaperQ1)
	fmt.Println()

	naive, err := sys.QueryNaive(coin.PaperQ1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Naive execution (contexts ignored): %d row(s) — the paper's wrong, empty answer\n\n", naive.Len())

	med, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Context mediation detected the conflicts and rewrote Q1 into %d sub-queries:\n\n%s;\n\n", len(med.Branches), med.SQL())
	fmt.Printf("== Why (from the abductive derivation):\n%s\n", med.ExplainText())

	rows, err := sys.Execute(med)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Mediated answer (in the receiver's context: USD, scale factor 1):")
	fmt.Print(rows.String())
	fmt.Println()
	fmt.Println("NTT's revenue was reported as 1,000,000 in JPY thousands; mediation")
	fmt.Println("scaled it by 1000 and converted at the Web-sourced rate 0.0096:")
	fmt.Println("1,000,000 x 1,000 x 0.0096 = 9,600,000 USD > 5,000,000 USD expenses.")
}
