// Stockwatch: Web sites as primary sources. The paper's conclusion
// describes demos where sites "reporting security prices on the various
// stock exchanges" are primary sources and currency-rate sites are
// ancillary. Here a portfolio held locally is valued in USD against a
// ticker site whose prices are quoted in each exchange's local currency.
//
//	go run ./examples/stockwatch
package main

import (
	"fmt"
	"log"

	"repro/coin"
)

func main() {
	model := coin.NewModel()
	model.MustAddType(&coin.SemType{Name: "tickerSymbol"})
	model.MustAddType(&coin.SemType{Name: "securityPrice", Modifiers: []string{"currency"}})
	model.MustAddConversion(coin.LookupConversion("currency", "rate"))
	sys := coin.New(model)

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// The ticker site quotes every security in its exchange's currency;
	// the wrapper surfaces that currency as an attribute, and the context
	// theory says "the price's currency is whatever that attribute says".
	webCtx := coin.NewContext("webquotes")
	webCtx.MustDeclare(&coin.ModifierDecl{
		SemType:  "securityPrice",
		Modifier: "currency",
		Cases:    []coin.Case{{Value: coin.AttrSpec("currency")}},
	})
	must(sys.AddContext(webCtx))

	usd := coin.NewContext("usd")
	must(usd.DeclareConst("securityPrice", "currency", "USD"))
	must(sys.AddContext(usd))

	quotes := coin.NewStockSite([]coin.Quote{
		{Ticker: "IBM", Exchange: "NYSE", Price: 151.25, Currency: "USD"},
		{Ticker: "T", Exchange: "NYSE", Price: 38.50, Currency: "USD"},
		{Ticker: "NTT", Exchange: "TSE", Price: 880000, Currency: "JPY"},
		{Ticker: "SONY", Exchange: "TSE", Price: 9100, Currency: "JPY"},
		{Ticker: "SAP", Exchange: "FSE", Price: 155, Currency: "EUR"},
	})
	stockSpec, _ := coin.BuiltinSpec(coin.StockSpec)
	must(sys.AddWebSource("stockweb", quotes, []*coin.WrapSpec{stockSpec}, map[string]*coin.Elevation{
		"quotes": {
			Relation: "quotes",
			Context:  "webquotes",
			Columns: []coin.ElevatedColumn{
				{Column: "ticker", SemType: "tickerSymbol"},
				{Column: "price", SemType: "securityPrice"},
			},
		},
	}))

	rates := coin.NewCurrencySite(map[coin.RatePair]float64{
		{From: "JPY", To: "USD"}: 0.0096,
		{From: "EUR", To: "USD"}: 1.10,
		{From: "GBP", To: "USD"}: 1.55,
	})
	rateSpec, _ := coin.BuiltinSpec(coin.CurrencySpecCrawl)
	must(sys.AddWebSource("currencyweb", rates, []*coin.WrapSpec{rateSpec}, nil))
	must(sys.AddAncillary("rate", "r3"))

	// The local portfolio (context-free: share counts are just counts).
	pf := coin.NewDB("portfolio")
	hold := pf.MustCreateTable("holdings", coin.NewSchema(
		coin.Column{Name: "ticker", Type: coin.KindString},
		coin.Column{Name: "shares", Type: coin.KindNumber},
	))
	hold.MustInsert(coin.StrV("IBM"), coin.NumV(100))
	hold.MustInsert(coin.StrV("NTT"), coin.NumV(3))
	hold.MustInsert(coin.StrV("SAP"), coin.NumV(40))
	must(sys.AddRelationalSource(pf, nil))

	fmt.Println("== Quotes as the sites report them (mixed currencies):")
	naive, err := sys.QueryNaive("SELECT quotes.ticker, quotes.exchange, quotes.price FROM quotes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(naive.String())

	fmt.Println("\n== The same board, mediated into USD:")
	med, err := sys.Mediate("SELECT quotes.ticker, quotes.price FROM quotes ORDER BY price DESC", "usd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- %d branch(es): USD passthrough + per-currency conversion via the rate site\n", len(med.Branches))
	rows, err := sys.Execute(med)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())

	fmt.Println("\n== Portfolio value in USD (join of local holdings with Web quotes):")
	q := `SELECT h.ticker, quotes.price * h.shares AS value_usd
	      FROM quotes, holdings h WHERE h.ticker = quotes.ticker ORDER BY value_usd DESC`
	rows, err = sys.Query(q, "usd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())

	fmt.Println("\n== Total:")
	rows, err = sys.Query(`SELECT SUM(quotes.price * h.shares) AS portfolio_usd
	                        FROM quotes, holdings h WHERE h.ticker = quotes.ticker`, "usd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rows.String())
}
