// Alloc-regression gate for the mediated execution path: pins the
// allocation budget of the paper-shaped E9 query so a later change to
// the batch pipeline cannot silently fall back to per-tuple allocation.
// The budget carries ~2x headroom over the measured value — it gates
// order-of-magnitude regressions, not single-alloc drift (the pre-batch
// engine spent ~40 allocations per source row on the same query).
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/planner"
)

func TestE9MediatedJoinAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	cat, w := scaledCatalog(1000, 42)
	want := w.Expected.Len()
	run := func() {
		res, err := planner.NewExecutor(cat).ExecuteMediation(med)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != want {
			t.Fatalf("answers = %d, want %d", res.Len(), want)
		}
	}
	run() // warm caches outside the measured runs
	allocs := testing.AllocsPerRun(5, run)
	t.Logf("E9 mediated join (companies=1000): %.0f allocs/query", allocs)
	const budget = 2700 // measured ~1330; ~2x headroom
	if allocs > budget {
		t.Errorf("mediated E9 query allocates %.0f/query, budget %d", allocs, budget)
	}
}
