# COIN mediator reproduction — build/test/bench entry points.

GO        ?= go
PKGS      ?= ./...
# Benchmarks that gate solver-, source-access- and optimizer-performance
# work (see internal/datalog/README.md and ARCHITECTURE.md "Source access
# layer" / "Optimizer & statistics").
BENCH     ?= BenchmarkSolveJoin|BenchmarkAbductiveCaseSplit|BenchmarkE1b_MediationOnly|BenchmarkUnify|BenchmarkBindJoinBatched|BenchmarkJoinOrderAdaptive|BenchmarkFaultFreeOverhead
BENCHDIR  ?= .bench
COUNT     ?= 6

FUZZTIME  ?= 10s

.PHONY: all build test test-race test-chaos test-invariants vet lint docs-check examples bench bench-smoke bench-base bench-compare golden golden-update fuzz clean

all: vet lint test

build:
	$(GO) build $(PKGS)

vet:
	$(GO) vet $(PKGS)

test: build
	$(GO) test $(PKGS)

# Race detector over the session/concurrency-sensitive packages (CI runs
# this as its own job). The exchange-operator and parallel-pipeline tests
# run twice so scheduling variation between runs gets a chance to surface
# ordering races the first pass missed.
test-race:
	$(GO) test -race ./internal/server/ ./internal/planner/ ./coin/ ./internal/relalg/ ./internal/wrapper/... ./internal/client/ ./internal/golden/
	$(GO) test -race -count=2 -run 'Parallel|Exchange' ./internal/relalg/ ./internal/planner/

# Fault-injection (chaos) suite under the race detector, twice, so the
# deterministic fault scripts are also exercised against scheduling
# variation: retry/breaker/partial-results behavior across the planner,
# wrapper, coin, server and client layers (see ARCHITECTURE.md "Fault
# tolerance").
test-chaos:
	$(GO) test -race -count=2 -run 'Chaos|Breaker|Retry|Partial|Flaky|FaultFree|Fault' \
		./internal/planner/ ./internal/wrapper/... ./coin/ ./internal/server/ ./internal/client/

# Golden query-regression suite: every corpus query's results and EXPLAIN
# plan against testdata/golden baselines, twice, so nondeterministic plans
# fail here instead of in review (see internal/golden).
golden:
	$(GO) test -count=2 ./internal/golden/

# Regenerate the golden baselines after an intentional plan or result
# change. Deterministic: running it twice leaves the tree clean.
golden-update:
	$(GO) test ./internal/golden/ -run TestGoldenCorpus -update

# Short fuzzing smoke over the two hand-written parsers (SQL and wrapping
# specs); CI runs this with a small FUZZTIME, longer runs are manual.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sqlparse/
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime $(FUZZTIME) ./internal/wrapper/

# Static-analysis gate: vet, the package-comment check, and the
# engine-invariant analyzer suite (batchretain, ctxflow, sourcefunnel,
# closebalance, errclass — see internal/analysis and cmd/coinlint).
# Findings are suppressed only by a reasoned //lint:allow annotation.
lint:
	$(GO) vet $(PKGS)
	$(GO) run ./internal/tools/docscheck
	$(GO) run ./cmd/coinlint $(PKGS)

# Runtime-assertion build: the relalg invariants layer (transient-arena
# poisoning, iterator-lifecycle shims, interner handle validation) armed
# via the build tag, under the race detector (see
# internal/relalg/invariants_on.go).
test-invariants:
	$(GO) test -tags invariants -race ./internal/relalg/ ./internal/planner/ ./coin/ ./internal/golden/

# Documentation gate: vet plus a package-comment check over every package
# (see internal/tools/docscheck). Kept as an alias; `make lint` is the CI
# gate and supersedes it.
docs-check:
	$(GO) vet $(PKGS)
	$(GO) run ./internal/tools/docscheck

# Run every example program end to end (CI smoke tests).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/unitconv
	$(GO) run ./examples/stockwatch
	$(GO) run ./examples/finanalysis
	$(GO) run ./examples/federation

# Run the gating benchmarks once, with allocation stats. The parallel-join
# scaling family runs across -cpu 1,2,4,8 so speedup (or, on single-core CI
# containers, parity) is visible in one sweep; see BENCH_baseline.json for
# the recorded shape per machine.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count 1 ./internal/datalog/ .
	$(GO) test -run '^$$' -bench BenchmarkParallelJoinScaling -cpu 1,2,4,8 -benchmem -count 1 .

# One iteration of every gating benchmark plus the batch-execution set
# (E1c, E9 scale, fault-free overhead): a compile-and-run smoke so CI
# catches a benchmark that breaks or asserts, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH)|BenchmarkE1c_ExecutionOnly|BenchmarkE9_MediatedExecutionScale' \
		-benchmem -benchtime 1x -count 1 ./internal/datalog/ .

# Record a baseline for bench-compare (run on the commit you compare against).
bench-base:
	mkdir -p $(BENCHDIR)
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) ./internal/datalog/ . | tee $(BENCHDIR)/old.txt

# Re-run the benchmarks and compare against the recorded baseline with
# benchstat when it is installed; otherwise print both result files.
bench-compare:
	mkdir -p $(BENCHDIR)
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) ./internal/datalog/ . | tee $(BENCHDIR)/new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCHDIR)/old.txt $(BENCHDIR)/new.txt; \
	else \
		echo "--- benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); raw results: ---"; \
		echo "== old =="; cat $(BENCHDIR)/old.txt; \
		echo "== new =="; cat $(BENCHDIR)/new.txt; \
	fi

clean:
	rm -rf $(BENCHDIR)
	$(GO) clean $(PKGS)
