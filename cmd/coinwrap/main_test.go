package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wrapper"
)

func TestRunBuiltins(t *testing.T) {
	for _, builtin := range []string{"currency-crawl", "stocks", "profiles"} {
		if err := run(builtin, "", "", "JPY", "USD"); err != nil {
			t.Errorf("%s: %v", builtin, err)
		}
	}
	if err := run("currency-lookup", "", "", "JPY", "USD"); err != nil {
		t.Errorf("lookup: %v", err)
	}
	if err := run("nope", "", "", "", ""); err == nil {
		t.Error("unknown builtin accepted")
	}
	if err := run("", "", "", "", ""); err == nil {
		t.Error("no spec accepted")
	}
	if err := run("currency-crawl", "", "zzz", "", ""); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestRunSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.spec")
	if err := os.WriteFile(path, []byte(wrapper.CurrencySpecCrawl), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "currency", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", filepath.Join(t.TempDir(), "missing.spec"), "currency", "", ""); err == nil {
		t.Error("missing spec file accepted")
	}
}
