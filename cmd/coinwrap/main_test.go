package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/restsrc"
)

func TestRunBuiltins(t *testing.T) {
	for _, builtin := range []string{"currency-crawl", "stocks", "profiles"} {
		if err := run(builtin, "", "", "JPY", "USD"); err != nil {
			t.Errorf("%s: %v", builtin, err)
		}
	}
	if err := run("currency-lookup", "", "", "JPY", "USD"); err != nil {
		t.Errorf("lookup: %v", err)
	}
	if err := run("nope", "", "", "", ""); err == nil {
		t.Error("unknown builtin accepted")
	}
	if err := run("", "", "", "", ""); err == nil {
		t.Error("no spec accepted")
	}
	if err := run("currency-crawl", "", "zzz", "", ""); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestRunSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.spec")
	if err := os.WriteFile(path, []byte(wrapper.CurrencySpecCrawl), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "currency", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", filepath.Join(t.TempDir(), "missing.spec"), "currency", "", ""); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunBackendModes(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "earnings.csv"),
		[]byte("cname:str,revenue:num\nIBM,62700000\nNTT,9600000000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBackend(dir, "", ""); err != nil {
		t.Errorf("list relations: %v", err)
	}
	if err := runBackend(dir, "", "earnings"); err != nil {
		t.Errorf("dump relation: %v", err)
	}
	if err := runBackend(dir, "", "ghost"); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := runBackend(dir, "http://x", ""); err == nil {
		t.Error("-files with -rest accepted")
	}

	db := store.NewDB("m")
	q := db.MustCreateTable("quotes", relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "price", Type: relalg.KindNumber}))
	q.MustInsert(relalg.StrV("IBM"), relalg.NumV(145.5))
	hs := httptest.NewServer(restsrc.NewServer(db))
	defer hs.Close()
	if err := runBackend("", hs.URL, "quotes"); err != nil {
		t.Errorf("REST dump: %v", err)
	}
	if err := runBackend("", "http://127.0.0.1:1/nope", ""); err == nil {
		t.Error("dead REST endpoint accepted")
	}
}
