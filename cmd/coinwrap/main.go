// Command coinwrap exercises a source wrapper standalone and prints the
// extracted relation as CSV: a Web-wrapping specification against one of
// the simulated sites (the [Qu96] wrapping technology), a directory of
// CSV/JSON files, or a remote REST backend.
//
// Usage:
//
//	coinwrap -builtin currency-crawl
//	coinwrap -builtin stocks
//	coinwrap -spec my.spec -site currency
//	coinwrap -files ./data            # list the directory's relations
//	coinwrap -files ./data -rel earnings
//	coinwrap -rest http://host:8080 -rel quotes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/coin"
	"repro/internal/store"
	"repro/internal/web"
	"repro/internal/wrapper"
	"repro/internal/wrapper/filesrc"
	"repro/internal/wrapper/restsrc"
)

func main() {
	builtin := flag.String("builtin", "", "built-in spec: currency-crawl, currency-lookup, stocks, profiles")
	specPath := flag.String("spec", "", "path to a wrapping specification file")
	siteName := flag.String("site", "", "simulated site: currency, stocks, profiles (inferred for -builtin)")
	from := flag.String("from", "JPY", "fromCur binding for currency-lookup")
	to := flag.String("to", "USD", "toCur binding for currency-lookup")
	filesDir := flag.String("files", "", "serve a directory of *.csv / *.json files instead of a wrapping spec")
	restURL := flag.String("rest", "", "dial a REST backend's base URL instead of a wrapping spec")
	rel := flag.String("rel", "", "relation to dump for -files / -rest (omit to list relations)")
	flag.Parse()

	var err error
	switch {
	case *filesDir != "" || *restURL != "":
		err = runBackend(*filesDir, *restURL, *rel)
	default:
		err = run(*builtin, *specPath, *siteName, *from, *to)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coinwrap:", err)
		os.Exit(1)
	}
}

// runBackend dumps one relation (or the relation list) from a file- or
// REST-backed source, sharing the CSV output path with the spec modes.
func runBackend(filesDir, restURL, rel string) error {
	var (
		w   wrapper.Wrapper
		err error
	)
	switch {
	case filesDir != "" && restURL != "":
		return fmt.Errorf("-files and -rest are mutually exclusive")
	case filesDir != "":
		w, err = filesrc.New("files", filesDir)
	default:
		w, err = restsrc.Dial("rest", restURL, nil)
	}
	if err != nil {
		return err
	}
	ctx := context.Background()
	if rel == "" {
		for _, r := range w.Relations() {
			schema, err := w.Schema(r)
			if err != nil {
				return err
			}
			fmt.Printf("%s (%d est. rows): %v\n", r, w.EstimateRows(ctx, r), schema.Names())
		}
		return nil
	}
	out, err := w.Query(ctx, wrapper.SourceQuery{Relation: rel})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "-- %s: %d tuple(s)\n", rel, out.Len())
	return store.WriteCSV(out, os.Stdout)
}

func run(builtin, specPath, siteName, from, to string) error {
	var spec *coin.WrapSpec
	switch {
	case builtin != "":
		s, ok := coin.BuiltinSpec(builtin)
		if !ok {
			return fmt.Errorf("no built-in spec %q", builtin)
		}
		spec = s
		if siteName == "" {
			switch builtin {
			case coin.CurrencySpecCrawl, coin.CurrencySpecLookup:
				siteName = "currency"
			case coin.StockSpec:
				siteName = "stocks"
			case coin.ProfileSpec:
				siteName = "profiles"
			}
		}
	case specPath != "":
		raw, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		s, err := coin.ParseWrapSpec(string(raw))
		if err != nil {
			return err
		}
		spec = s
	default:
		return fmt.Errorf("one of -builtin or -spec is required")
	}

	var site *web.Site
	switch siteName {
	case "currency":
		site = web.NewCurrencySite(web.PaperRates())
	case "stocks":
		site = web.NewStockSite(demoQuotes())
	case "profiles":
		site = web.NewProfileSite(demoProfiles())
	default:
		return fmt.Errorf("unknown site %q (want currency, stocks or profiles)", siteName)
	}

	w := wrapper.NewWeb(site.Name, site, spec)
	q := wrapper.SourceQuery{Relation: spec.Relation}
	for _, p := range spec.Params {
		switch p {
		case "fromCur":
			q.Filters = append(q.Filters, wrapper.Filter{Column: p, Op: "=", Value: coin.StrV(from)})
		case "toCur":
			q.Filters = append(q.Filters, wrapper.Filter{Column: p, Op: "=", Value: coin.StrV(to)})
		default:
			return fmt.Errorf("spec parameter %s has no flag; use -builtin currency-lookup's -from/-to", p)
		}
	}
	rel, err := w.Query(context.Background(), q)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "-- %s: %d tuple(s) from %d page fetch(es)\n", spec.Relation, rel.Len(), site.Hits())
	return store.WriteCSV(rel, os.Stdout)
}

func demoQuotes() []web.Quote {
	return []web.Quote{
		{Ticker: "IBM", Exchange: "NYSE", Price: 151.25, Currency: "USD"},
		{Ticker: "T", Exchange: "NYSE", Price: 38.5, Currency: "USD"},
		{Ticker: "NTT", Exchange: "TSE", Price: 880000, Currency: "JPY"},
		{Ticker: "SONY", Exchange: "TSE", Price: 9100, Currency: "JPY"},
		{Ticker: "SAP", Exchange: "FSE", Price: 155, Currency: "EUR"},
	}
}

func demoProfiles() []web.Profile {
	return []web.Profile{
		{Name: "IBM", Country: "USA", Sector: "Technology", Employees: 220000},
		{Name: "NTT", Country: "Japan", Sector: "Telecom", Employees: 330000},
		{Name: "SAP", Country: "Germany", Sector: "Technology", Employees: 48000},
	}
}
