// Command coinlint is the engine-invariant multichecker: it runs the
// internal/analysis suite (batchretain, ctxflow, sourcefunnel,
// closebalance, errclass) over the module and exits non-zero on any
// finding. It is part of the `make lint` CI gate.
//
// Usage:
//
//	go run ./cmd/coinlint [flags] [packages]
//
// Packages default to ./...; the working directory must be inside the
// module. Findings print as file:line:col: message (analyzer). A finding
// is suppressed by `//lint:allow <analyzer> <reason>` on the flagged line
// or alone on the line above it; the reason is mandatory, and an allow
// that suppresses nothing is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the analyzers and exit")
		disable = flag.String("disable", "", "comma-separated analyzer names to skip")
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := selectAnalyzers(*only, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coinlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coinlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coinlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "coinlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only / -disable flags against the suite.
func selectAnalyzers(only, disable string) ([]*analysis.Analyzer, error) {
	if only != "" && disable != "" {
		return nil, fmt.Errorf("-only and -disable are mutually exclusive")
	}
	named := func(csv string) (map[string]bool, error) {
		set := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if analysis.ByName(n) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", n)
			}
			set[n] = true
		}
		return set, nil
	}
	switch {
	case only != "":
		set, err := named(only)
		if err != nil {
			return nil, err
		}
		var suite []*analysis.Analyzer
		for _, a := range analysis.All() {
			if set[a.Name] {
				suite = append(suite, a)
			}
		}
		return suite, nil
	case disable != "":
		set, err := named(disable)
		if err != nil {
			return nil, err
		}
		var suite []*analysis.Analyzer
		for _, a := range analysis.All() {
			if !set[a.Name] {
				suite = append(suite, a)
			}
		}
		return suite, nil
	}
	return analysis.All(), nil
}
