package main

import (
	"strings"
	"testing"
)

func TestRunDefaultQuery(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "", "c2", false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"3 branch(es)", "UNION", "'JPY'", "* 1000 *"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExplain(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "SELECT r1.cname, r1.revenue FROM r1", "c2", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "execution plan") || !strings.Contains(b.String(), "step 1:") {
		t.Errorf("explain output:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "SELECT x FROM nosuch", "c2", false); err == nil {
		t.Error("bad query succeeded")
	}
	if err := run(&b, "", "zzz", false); err == nil {
		t.Error("bad context succeeded")
	}
}
