// Command coinmediate prints the mediated form of a query without
// executing it — the rewriting the paper presents in Section 3.
//
// Usage:
//
//	coinmediate [-context c2] 'SQL'
//	coinmediate            # no args: the paper's query Q1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/coin"
)

func main() {
	context := flag.String("context", "c2", "receiver context")
	explain := flag.Bool("explain", false, "also print the execution plan")
	flag.Parse()

	sql := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if err := run(os.Stdout, sql, *context, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "coinmediate:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, sql, context string, explain bool) error {
	if sql == "" {
		sql = coin.PaperQ1
		fmt.Fprintf(w, "-- no query given; using the paper's Q1:\n--%s\n\n",
			strings.ReplaceAll(sql, "\n", "\n--"))
	}
	sys := coin.Figure2System()
	med, err := sys.Mediate(sql, context)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- receiver context: %s; %d branch(es)\n", context, len(med.Branches))
	fmt.Fprintln(w, med.SQL()+";")
	if explain {
		fmt.Fprintf(w, "\n-- derivation:\n%s", med.ExplainText())
		plan, err := sys.Explain(sql, context)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n-- execution plan:\n%s", plan)
	}
	return nil
}
