// Command coinquery sends SQL to a COIN mediation server (or runs it
// against the in-process Figure 2 demo system) and prints the answer as a
// table — the reproduction's equivalent of an ODBC application.
//
// Usage:
//
//	coinquery -context c2 'SELECT rl.cname, rl.revenue FROM r1 rl, r2 ...'
//	coinquery -server http://localhost:8095 -context c2 '...'
//	coinquery -naive '...'        # skip mediation (the wrong answer)
//	coinquery -show-mediated '...'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/coin"
	"repro/internal/client"
)

func main() {
	serverURL := flag.String("server", "", "mediation server URL (empty: run in-process demo system)")
	context := flag.String("context", "c2", "receiver context")
	naive := flag.Bool("naive", false, "execute without mediation")
	showMediated := flag.Bool("show-mediated", false, "print the mediated SQL before the answer")
	flag.Parse()

	sql := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if sql == "" {
		fmt.Fprintln(os.Stderr, "usage: coinquery [-server URL] [-context NAME] [-naive] 'SQL'")
		os.Exit(2)
	}
	if err := run(*serverURL, *context, sql, *naive, *showMediated); err != nil {
		fmt.Fprintln(os.Stderr, "coinquery:", err)
		os.Exit(1)
	}
}

func run(serverURL, context, sql string, naive, showMediated bool) error {
	if serverURL != "" {
		conn, err := client.Open(serverURL)
		if err != nil {
			return err
		}
		if naive {
			res, err := conn.QueryNaive(sql)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}
		res, err := conn.Query(sql, context)
		if err != nil {
			return err
		}
		if showMediated {
			fmt.Printf("-- mediated into %d branch(es):\n%s\n\n", res.Branches, res.MediatedSQL)
		}
		fmt.Print(res.String())
		return nil
	}

	sys := coin.Figure2System()
	if naive {
		rows, err := sys.QueryNaive(sql)
		if err != nil {
			return err
		}
		fmt.Print(rows.String())
		return nil
	}
	med, err := sys.Mediate(sql, context)
	if err != nil {
		return err
	}
	if showMediated {
		fmt.Printf("-- mediated into %d branch(es):\n%s\n\n", len(med.Branches), med.SQL())
	}
	rows, err := sys.Execute(med)
	if err != nil {
		return err
	}
	fmt.Print(rows.String())
	return nil
}
