// Command coinquery sends SQL to a COIN mediation server (or runs it
// against the in-process Figure 2 demo system) and prints the answer as a
// table — the reproduction's equivalent of an ODBC application.
//
// Usage:
//
//	coinquery -context c2 'SELECT rl.cname, rl.revenue FROM r1 rl, r2 ...'
//	coinquery -server http://localhost:8095 -context c2 '...'
//	coinquery -naive '...'           # skip mediation (the wrong answer)
//	coinquery -show-mediated '...'
//	coinquery -explain '...'         # print the execution plan, don't run
//	coinquery -analyze '...'         # EXPLAIN ANALYZE: run and show est vs actual
//	coinquery -timeout 2s '...'      # bound the query session
//	coinquery -max-rows 100 '...'    # truncate the answer
//	coinquery -max-concurrent-per-source 2 '...'  # bound per-source fetch concurrency
//	coinquery -stream '...'          # NDJSON wire path: rows print as they arrive
//	coinquery -partial '...'         # degrade on source faults: drop failed branches, warn on stderr
//	coinquery -retry-budget 10 '...' # cap retries the session may spend across sources
//	coinquery -parallelism 1 '...'   # force serial pipelines (N>1: that many workers)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/coin"
	"repro/internal/client"
	"repro/internal/planner"
)

// queryConfig carries the per-query knobs from flags to run.
type queryConfig struct {
	naive        bool
	showMediated bool
	explain      bool
	analyze      bool
	timeout      time.Duration
	maxRows      int
	maxPerSource int
	stream       bool
	partial      bool
	retryBudget  int
	parallelism  int
}

func main() {
	serverURL := flag.String("server", "", "mediation server URL (empty: run in-process demo system)")
	contextName := flag.String("context", "c2", "receiver context")
	naive := flag.Bool("naive", false, "execute without mediation")
	showMediated := flag.Bool("show-mediated", false, "print the mediated SQL before the answer")
	explain := flag.Bool("explain", false, "print the execution plan instead of running the query")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: execute the query and print the plan with actual rows/queries/cost")
	timeout := flag.Duration("timeout", 0, "query session timeout (0: none)")
	maxRows := flag.Int("max-rows", 0, "cap on result rows; the answer is truncated (0: unlimited)")
	maxPerSource := flag.Int("max-concurrent-per-source", 0, "cap on the session's concurrent fetches per source (0: dispatcher defaults)")
	stream := flag.Bool("stream", false, "stream rows as they are produced instead of buffering the answer")
	partial := flag.Bool("partial", false, "return partial results when a source fails: drop the failed branches, print warnings to stderr")
	retryBudget := flag.Int("retry-budget", 0, "cap on retries the query session may spend across all sources (0: per-operation policy only)")
	parallelism := flag.Int("parallelism", 0, "worker bound for intra-query parallel operators; 1 forces serial pipelines (0: GOMAXPROCS locally, the server default remotely)")
	flag.Parse()

	sql := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if sql == "" {
		fmt.Fprintln(os.Stderr, "usage: coinquery [-server URL] [-context NAME] [-naive] [-timeout D] [-max-rows N] [-stream] 'SQL'")
		os.Exit(2)
	}
	cfg := queryConfig{
		naive: *naive, showMediated: *showMediated, explain: *explain, analyze: *analyze,
		timeout: *timeout, maxRows: *maxRows, maxPerSource: *maxPerSource, stream: *stream,
		partial: *partial, retryBudget: *retryBudget, parallelism: *parallelism,
	}
	if err := run(*serverURL, *contextName, sql, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "coinquery:", err)
		os.Exit(1)
	}
}

func run(serverURL, receiverCtx, sql string, cfg queryConfig) error {
	if serverURL != "" {
		return runRemote(serverURL, receiverCtx, sql, cfg)
	}
	return runLocal(receiverCtx, sql, cfg)
}

func runRemote(serverURL, receiverCtx, sql string, cfg queryConfig) error {
	conn, err := client.Open(serverURL)
	if err != nil {
		return err
	}
	opts := client.Options{Timeout: cfg.timeout, MaxRows: cfg.maxRows, MaxConcurrentPerSource: cfg.maxPerSource,
		RetryBudget: cfg.retryBudget, Partial: cfg.partial, Parallelism: cfg.parallelism}
	if cfg.explain || cfg.analyze {
		var plan string
		if cfg.analyze {
			plan, err = conn.ExplainAnalyze(context.Background(), sql, receiverCtx, opts)
		} else {
			plan, err = conn.Explain(sql, receiverCtx)
		}
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	if cfg.stream {
		cur, err := conn.QueryStream(context.Background(), sql, receiverCtx, cfg.naive, opts)
		if err != nil {
			return err
		}
		defer cur.Close()
		if cfg.showMediated && cur.MediatedSQL() != "" {
			fmt.Printf("-- mediated into %d branch(es):\n%s\n\n", cur.Branches(), cur.MediatedSQL())
		}
		names := make([]string, len(cur.Columns()))
		for i, c := range cur.Columns() {
			names[i] = c.Name
		}
		fmt.Println(strings.Join(names, "\t"))
		for cur.Next() {
			cells := make([]string, len(cur.Row()))
			for i, v := range cur.Row() {
				cells[i] = fmt.Sprintf("%v", v)
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		printWarnings(cur.Warnings())
		return cur.Err()
	}
	if cfg.naive {
		res, err := conn.QueryNaiveCtx(context.Background(), sql, opts)
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		return nil
	}
	res, err := conn.QueryCtx(context.Background(), sql, receiverCtx, opts)
	if err != nil {
		return err
	}
	if cfg.showMediated {
		fmt.Printf("-- mediated into %d branch(es):\n%s\n\n", res.Branches, res.MediatedSQL)
	}
	fmt.Print(res.String())
	printWarnings(res.Warnings)
	return nil
}

// printWarnings reports dropped mediation branches of a partial answer on
// stderr, keeping stdout a clean table.
func printWarnings(warns []planner.Warning) {
	for _, w := range warns {
		if w.Source != "" {
			fmt.Fprintf(os.Stderr, "coinquery: warning: branch %d dropped (source %s): %s\n", w.Branch, w.Source, w.Message)
		} else {
			fmt.Fprintf(os.Stderr, "coinquery: warning: branch %d dropped: %s\n", w.Branch, w.Message)
		}
	}
}

func runLocal(receiverCtx, sql string, cfg queryConfig) error {
	sys := coin.Figure2System()
	// Resolve the local default here (0 → GOMAXPROCS) and install it as the
	// executor default too, so plain EXPLAIN — which plans without a
	// session — renders the same placements a run would use.
	par := cfg.parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sys.Executor().DefaultParallelism = par
	opts := coin.QueryOptions{Timeout: cfg.timeout, MaxRows: cfg.maxRows, MaxConcurrentPerSource: cfg.maxPerSource,
		RetryBudget: cfg.retryBudget, PartialResults: cfg.partial, MaxParallelism: par}
	if cfg.explain || cfg.analyze {
		var (
			plan string
			err  error
		)
		if cfg.analyze {
			plan, err = sys.ExplainAnalyzeCtx(context.Background(), sql, receiverCtx, opts)
		} else {
			plan, err = sys.Explain(sql, receiverCtx)
		}
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	if cfg.stream {
		var (
			rs  *coin.RowStream
			err error
		)
		if cfg.naive {
			rs, err = sys.QueryNaiveStreamCtx(context.Background(), sql, opts)
		} else {
			rs, err = sys.QueryStreamCtx(context.Background(), sql, receiverCtx, opts)
		}
		if err != nil {
			return err
		}
		defer rs.Close()
		if cfg.showMediated && rs.Mediation() != nil {
			fmt.Printf("-- mediated into %d branch(es):\n%s\n\n",
				len(rs.Mediation().Branches), rs.Mediation().SQL())
		}
		fmt.Println(strings.Join(rs.Schema().Names(), "\t"))
		for {
			t, ok, err := rs.Next()
			if err != nil {
				printWarnings(rs.Warnings())
				return err
			}
			if !ok {
				printWarnings(rs.Warnings())
				return nil
			}
			cells := make([]string, len(t))
			for i, v := range t {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
	}
	if cfg.naive {
		rows, err := sys.QueryNaiveCtx(context.Background(), sql, opts)
		if err != nil {
			return err
		}
		fmt.Print(rows.String())
		return nil
	}
	med, err := sys.Mediate(sql, receiverCtx)
	if err != nil {
		return err
	}
	if cfg.showMediated {
		fmt.Printf("-- mediated into %d branch(es):\n%s\n\n", len(med.Branches), med.SQL())
	}
	rows, warns, err := sys.ExecuteWarnCtx(context.Background(), med, opts)
	if err != nil {
		return err
	}
	fmt.Print(rows.String())
	printWarnings(warns)
	return nil
}
