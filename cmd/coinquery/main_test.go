package main

import (
	"net/http/httptest"
	"testing"

	"repro/coin"
)

func TestRunLocal(t *testing.T) {
	if err := run("", "c2", coin.PaperQ1, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", coin.PaperQ1, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", "SELECT nope FROM nosuch", false, false); err == nil {
		t.Error("bad query succeeded")
	}
	if err := run("", "zzz", coin.PaperQ1, false, false); err == nil {
		t.Error("bad context succeeded")
	}
}

func TestRunAgainstServer(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	if err := run(ts.URL, "c2", coin.PaperQ1, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run(ts.URL, "c2", coin.PaperQ1, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run("http://127.0.0.1:1", "c2", coin.PaperQ1, false, false); err == nil {
		t.Error("dead server succeeded")
	}
}
