package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/coin"
)

func TestRunLocal(t *testing.T) {
	if err := run("", "c2", coin.PaperQ1, queryConfig{showMediated: true}); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", coin.PaperQ1, queryConfig{naive: true}); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", "SELECT nope FROM nosuch", queryConfig{}); err == nil {
		t.Error("bad query succeeded")
	}
	if err := run("", "zzz", coin.PaperQ1, queryConfig{}); err == nil {
		t.Error("bad context succeeded")
	}
}

func TestRunLocalStreamAndGovernors(t *testing.T) {
	if err := run("", "c2", coin.PaperQ1, queryConfig{stream: true, showMediated: true}); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", coin.PaperQ1, queryConfig{stream: true, naive: true}); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", coin.PaperQ1, queryConfig{timeout: 30 * time.Second, maxRows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", coin.PaperQ1, queryConfig{timeout: time.Nanosecond}); err == nil {
		t.Error("expired timeout succeeded")
	}
}

func TestRunAgainstServer(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{showMediated: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{naive: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{stream: true, showMediated: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{stream: true, naive: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{timeout: 30 * time.Second, maxRows: 5}); err != nil {
		t.Fatal(err)
	}
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{naive: true, timeout: 30 * time.Second, maxRows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run("http://127.0.0.1:1", "c2", coin.PaperQ1, queryConfig{}); err == nil {
		t.Error("dead server succeeded")
	}
}

// TestRunExplainAndAnalyze covers the -explain and -analyze flags in both
// the in-process and the server-backed modes.
func TestRunExplainAndAnalyze(t *testing.T) {
	if err := run("", "c2", coin.PaperQ1, queryConfig{explain: true}); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", coin.PaperQ1, queryConfig{analyze: true}); err != nil {
		t.Fatal(err)
	}
	if err := run("", "c2", "SELECT nope FROM nosuch", queryConfig{analyze: true}); err == nil {
		t.Error("bad analyze succeeded")
	}
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{explain: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(ts.URL, "c2", coin.PaperQ1, queryConfig{analyze: true, timeout: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
}
