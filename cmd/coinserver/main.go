// Command coinserver serves the COIN mediation services over HTTP: the
// tunneled query protocol under /api/ (including the NDJSON streaming
// wire path at /api/query/stream) and the HTML Query-By-Example form
// under /qbe, exactly the two receiver-side faces the prototype shipped.
// It hosts the paper's Figure 2 demonstration system.
//
// The server is run-ready for real traffic: read/header/idle timeouts
// bound slow clients, every query session is tied to its request's
// context, and SIGINT/SIGTERM trigger a graceful shutdown that drains
// in-flight sessions (force-closing — and thereby cancelling — any that
// outlive the drain window).
//
// Usage:
//
//	coinserver [-addr :8095] [-shutdown-timeout 10s] [-parallelism N]
//
// Then visit http://localhost:8095/qbe, or use cmd/coinquery.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/coin"
)

func main() {
	addr := flag.String("addr", ":8095", "listen address")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"how long a graceful shutdown waits for in-flight queries before force-cancelling them")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0),
		"default worker bound for intra-query parallel operators (exchange joins, "+
			"partitioned sorts and scans); 1 forces serial pipelines; per-query "+
			"\"parallelism\" requests override it")
	flag.Parse()

	sys := coin.Figure2System()
	sys.Executor().DefaultParallelism = *parallelism
	fmt.Printf("COIN mediator serving the Figure 2 demonstration system\n")
	fmt.Printf("  relations: %v\n", sys.Relations())
	fmt.Printf("  contexts:  %v\n", sys.Contexts())
	qbeHost := *addr
	if strings.HasPrefix(qbeHost, ":") {
		qbeHost = "localhost" + qbeHost
	}
	fmt.Printf("  QBE form:  http://%s/qbe\n", qbeHost)

	srv := &http.Server{
		Addr:    *addr,
		Handler: sys.Handler(),
		// Bound what slow or stuck clients can hold open. WriteTimeout
		// stays zero: /api/query/stream responses legitimately run long,
		// and the per-request "timeout" governor bounds them instead.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining in-flight sessions (up to %s)", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			// Drain window expired: force-close the remaining connections,
			// which cancels their request contexts and thereby aborts the
			// still-running query sessions at the source fetches.
			log.Printf("drain incomplete (%v); force-closing", err)
			if cerr := srv.Close(); cerr != nil && !errors.Is(cerr, http.ErrServerClosed) {
				log.Printf("close: %v", cerr)
			}
		}
		log.Println("server stopped")
	}
}
