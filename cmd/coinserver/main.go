// Command coinserver serves the COIN mediation services over HTTP: the
// tunneled query protocol under /api/ and the HTML Query-By-Example form
// under /qbe, exactly the two receiver-side faces the prototype shipped.
// It hosts the paper's Figure 2 demonstration system.
//
// Usage:
//
//	coinserver [-addr :8095]
//
// Then visit http://localhost:8095/qbe, or use cmd/coinquery.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/coin"
)

func main() {
	addr := flag.String("addr", ":8095", "listen address")
	flag.Parse()

	sys := coin.Figure2System()
	fmt.Printf("COIN mediator serving the Figure 2 demonstration system\n")
	fmt.Printf("  relations: %v\n", sys.Relations())
	fmt.Printf("  contexts:  %v\n", sys.Contexts())
	fmt.Printf("  QBE form:  http://localhost%s/qbe\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, sys.Handler()))
}
