//go:build race

package repro_test

// raceEnabled reports whether the race detector is compiled in; the
// alloc-budget tests skip under it because instrumentation inflates
// allocation counts far past the budgets they pin.
const raceEnabled = true
