package coin_test

import (
	"strings"
	"testing"

	"repro/coin"
)

func TestFigure2SystemQuery(t *testing.T) {
	sys := coin.Figure2System()
	rows, err := sys.Query(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Tuples[0][0].S != "NTT" || rows.Tuples[0][1].N != 9600000 {
		t.Errorf("answer = %s", rows)
	}
	naive, err := sys.QueryNaive(coin.PaperQ1)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Len() != 0 {
		t.Errorf("naive answer = %s", naive)
	}
}

func TestFigure2SystemMediate(t *testing.T) {
	sys := coin.Figure2System()
	med, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 3 {
		t.Errorf("branches = %d", len(med.Branches))
	}
	if !strings.Contains(med.SQL(), "UNION") {
		t.Errorf("mediated SQL:\n%s", med.SQL())
	}
	res, err := sys.Execute(med)
	if err != nil || res.Len() != 1 {
		t.Errorf("execute mediation: %v %v", res, err)
	}
}

func TestSystemIntrospection(t *testing.T) {
	sys := coin.Figure2System()
	if got := sys.Relations(); len(got) != 3 {
		t.Errorf("relations = %v", got)
	}
	if got := sys.Contexts(); len(got) != 2 {
		t.Errorf("contexts = %v", got)
	}
	schema, err := sys.Schema("r3")
	if err != nil || len(schema.Columns) != 3 {
		t.Errorf("schema = %v, %v", schema, err)
	}
	if _, err := sys.Schema("zzz"); err == nil {
		t.Error("unknown relation accepted")
	}
}

// TestExtensibilityAddSource is experiment E6: integrating a new source
// into a running system takes only elevation axioms (plus a context if the
// source speaks a new one); existing queries are untouched and new
// cross-source queries immediately mediate correctly.
func TestExtensibilityAddSource(t *testing.T) {
	sys := coin.Figure2System()
	before, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}

	// A third source arrives: European financials in thousands of EUR.
	c3 := coin.NewContext("c3")
	if err := c3.DeclareConst("companyFinancials", "scaleFactor", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c3.DeclareConst("companyFinancials", "currency", "EUR"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddContext(c3); err != nil {
		t.Fatal(err)
	}
	db := coin.NewDB("source3")
	tab := db.MustCreateTable("r4", coin.NewSchema(
		coin.Column{Name: "cname", Type: coin.KindString},
		coin.Column{Name: "profit", Type: coin.KindNumber},
	))
	tab.MustInsert(coin.StrV("NTT"), coin.NumV(2000)) // 2,000,000 EUR
	if err := sys.AddRelationalSource(db, map[string]*coin.Elevation{
		"r4": {
			Relation: "r4",
			Context:  "c3",
			Columns: []coin.ElevatedColumn{
				{Column: "cname", SemType: "companyName"},
				{Column: "profit", SemType: "companyFinancials"},
			},
		},
	}); err != nil {
		t.Fatal(err)
	}

	// The old query is byte-identical after the extension.
	after, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if before.Mediated.String() != after.Mediated.String() {
		t.Error("adding a source changed an unrelated mediated query")
	}

	// A new cross-context query mediates and executes immediately:
	// profit is scaled by 1000 and converted EUR→USD (rate 1.10).
	rows, err := sys.Query("SELECT r4.cname, r4.profit FROM r4", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Tuples[0][1].N != 2000*1000*1.10 {
		t.Errorf("converted profit = %s", rows)
	}
}

// TestAccessibilityQueryKinds is experiment E7: the same context knowledge
// serves projections, selections, joins, comparisons, aggregation and
// ordering.
func TestAccessibilityQueryKinds(t *testing.T) {
	sys := coin.Figure2System()
	queries := map[string]func(*coin.Relation) bool{
		// Projection with conversion.
		"SELECT r1.cname, r1.revenue FROM r1": func(r *coin.Relation) bool {
			if r.Len() != 2 {
				return false
			}
			byName := map[string]float64{}
			for _, t := range r.Tuples {
				byName[t[0].S] = t[1].N
			}
			return byName["IBM"] == 1e8 && byName["NTT"] == 9.6e6
		},
		// Selection over converted values: who clears 5M USD revenue?
		"SELECT r1.cname FROM r1 WHERE r1.revenue > 5000000": func(r *coin.Relation) bool {
			return r.Len() == 2 // both, after conversion
		},
		// Selection that would differ without conversion.
		"SELECT r1.cname FROM r1 WHERE r1.revenue < 10000000": func(r *coin.Relation) bool {
			return r.Len() == 1 && r.Tuples[0][0].S == "NTT"
		},
		// Join + comparison (the paper's query).
		coin.PaperQ1: func(r *coin.Relation) bool {
			return r.Len() == 1 && r.Tuples[0][0].S == "NTT"
		},
		// Aggregation over converted values.
		"SELECT SUM(r1.revenue) AS total FROM r1": func(r *coin.Relation) bool {
			return r.Len() == 1 && r.Tuples[0][0].N == 1e8+9.6e6
		},
		// Ordering by converted values.
		"SELECT r1.cname, r1.revenue FROM r1 ORDER BY r1.revenue DESC": func(r *coin.Relation) bool {
			return r.Len() == 2 && r.Tuples[0][0].S == "IBM"
		},
	}
	for sql, check := range queries {
		rows, err := sys.Query(sql, "c2")
		if err != nil {
			t.Errorf("%s: %v", sql, err)
			continue
		}
		if !check(rows) {
			t.Errorf("%s: unexpected answer\n%s", sql, rows)
		}
	}
}

func TestBuiltinSpecs(t *testing.T) {
	for _, name := range []string{coin.CurrencySpecCrawl, coin.CurrencySpecLookup, coin.StockSpec, coin.ProfileSpec} {
		if _, ok := coin.BuiltinSpec(name); !ok {
			t.Errorf("BuiltinSpec(%s) missing", name)
		}
	}
	if _, ok := coin.BuiltinSpec("zzz"); ok {
		t.Error("unknown spec found")
	}
}

// TestExplainAnalyze: the analyzed plan renders estimated-vs-actual
// columns for every branch, and the analyzed run's observations teach the
// optimizer (a following EXPLAIN prices from measured cardinalities).
func TestExplainAnalyze(t *testing.T) {
	sys := coin.Figure2System()
	out, err := sys.ExplainAnalyze(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mediated into 3 branch(es)", "est_rows=", "act_rows=", "act_queries=", "act_branch_rows="} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
	// The ordinary answer still computes after an analyzed run.
	rows, err := sys.Query(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Tuples[0][0].S != "NTT" {
		t.Errorf("post-analyze answer = %s", rows)
	}
	if _, err := sys.ExplainAnalyze("SELECT nope FROM nosuch", "c2"); err == nil {
		t.Error("bad query analyzed successfully")
	}
}
