package coin

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper/restsrc"
	"repro/internal/wrapper/sqlsrc"
)

// TestHeterogeneousBackendRegistration wires a file directory, a SQL
// database and a REST service into one System next to the paper's
// relational sources, then runs a three-way federated join across all
// three backend kinds through the ordinary execution path.
func TestHeterogeneousBackendRegistration(t *testing.T) {
	sys := Figure2System()

	dir := t.TempDir()
	csv := "cname:str,sector:str\nIBM,Technology\nNTT,Telecom\nSONY,Electronics\n"
	if err := os.WriteFile(filepath.Join(dir, "sectors.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFileSource("archive", dir, nil); err != nil {
		t.Fatalf("AddFileSource: %v", err)
	}

	fdb := store.NewDB("financedb")
	accounts := fdb.MustCreateTable("accounts", relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "expenses", Type: relalg.KindNumber}))
	accounts.MustInsert(relalg.StrV("IBM"), relalg.NumV(5000000))
	accounts.MustInsert(relalg.StrV("NTT"), relalg.NumV(3000000))
	accounts.MustInsert(relalg.StrV("SONY"), relalg.NumV(2500000))
	sqldb, _ := sqlsrc.OpenMem(fdb)
	t.Cleanup(func() { sqldb.Close() })
	src := sqlsrc.New("finance", sqldb).AddRelation("accounts", accounts.Scan().Schema)
	if err := sys.AddSQLSource(src, nil); err != nil {
		t.Fatalf("AddSQLSource: %v", err)
	}

	mdb := store.NewDB("marketsdb")
	quotes := mdb.MustCreateTable("quotes", relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "price", Type: relalg.KindNumber}))
	quotes.MustInsert(relalg.StrV("IBM"), relalg.NumV(145.5))
	quotes.MustInsert(relalg.StrV("NTT"), relalg.NumV(88))
	quotes.MustInsert(relalg.StrV("SONY"), relalg.NumV(61.25))
	hs := httptest.NewServer(restsrc.NewServer(mdb))
	t.Cleanup(hs.Close)
	if err := sys.AddRESTSource("markets", hs.URL, hs.Client(), nil); err != nil {
		t.Fatalf("AddRESTSource: %v", err)
	}

	rels := map[string]bool{}
	for _, r := range sys.Relations() {
		rels[r] = true
	}
	for _, want := range []string{"sectors", "accounts", "quotes", "r1", "r2"} {
		if !rels[want] {
			t.Errorf("relation %s missing after registration (have %v)", want, sys.Relations())
		}
	}

	res, err := sys.QueryNaive(
		"SELECT sectors.cname, accounts.expenses, quotes.price FROM sectors, accounts, quotes " +
			"WHERE accounts.cname = sectors.cname AND quotes.cname = sectors.cname")
	if err != nil {
		t.Fatalf("federated join across file/SQL/REST backends: %v", err)
	}
	if res.Len() != 3 {
		t.Fatalf("join returned %d rows, want 3: %v", res.Len(), res.Tuples)
	}

	// The paper's own mediated query still works next to the new sources.
	rows, err := sys.Query(PaperQ1, "c2")
	if err != nil {
		t.Fatalf("PaperQ1 after registering extra backends: %v", err)
	}
	if rows.Len() != 1 || rows.Tuples[0][0].S != "NTT" {
		t.Fatalf("PaperQ1 = %v, want the <NTT, 9600000> answer", rows.Tuples)
	}
}

func TestAddFileSourceBadDir(t *testing.T) {
	sys := Figure2System()
	if err := sys.AddFileSource("nope", filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("AddFileSource on a missing directory should fail")
	}
}
