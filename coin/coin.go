// Package coin is the public API of the COntext INterchange mediator
// reproduction: one System value wires together the domain registry
// (semantic types, contexts, elevation axioms, conversion functions), the
// wrapped sources, the context mediator and the multi-database execution
// engine, and exposes query services equivalent to the prototype's —
// mediate-only, mediate-and-execute, naive execution for comparison, and
// an HTTP handler speaking the prototype's tunneled access protocol.
//
// Quick start (the paper's Section 3 example ships pre-wired):
//
//	sys := coin.Figure2System()
//	med, _ := sys.Mediate(coin.PaperQ1, "c2")
//	fmt.Println(med.SQL())                       // the 3-branch union
//	rows, _ := sys.Query(coin.PaperQ1, "c2")     // <NTT, 9600000>
//	fmt.Println(rows)
package coin

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/fixture"
	"repro/internal/planner"
	"repro/internal/relalg"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// Re-exported knowledge-model types, so applications only import this
// package.
type (
	// Model is the shared domain model of semantic types.
	Model = domain.Model
	// SemType is a semantic type with context-dependent modifiers.
	SemType = domain.SemType
	// Context is a context theory (modifier assignments).
	Context = domain.Context
	// ModifierDecl assigns one modifier within a context.
	ModifierDecl = domain.ModifierDecl
	// Case is one conditional arm of a ModifierDecl.
	Case = domain.Case
	// ValueSpec locates a modifier value (constant or attribute).
	ValueSpec = domain.ValueSpec
	// Elevation ties a source relation's columns to semantic types.
	Elevation = domain.Elevation
	// ElevatedColumn is one column-to-type axiom.
	ElevatedColumn = domain.ElevatedColumn
	// Conversion converts values between modifier settings.
	Conversion = domain.Conversion
	// Mediation is a rewritten query (see System.Mediate).
	Mediation = core.Mediation
	// Relation is a materialized query answer.
	Relation = relalg.Relation
	// Schema describes a relation.
	Schema = relalg.Schema
	// Column is one attribute of a schema.
	Column = relalg.Column
	// Value is one typed datum.
	Value = relalg.Value
	// DB is an in-memory relational source.
	DB = store.DB
	// WrapSpec is a compiled Web-wrapping specification.
	WrapSpec = wrapper.Spec
	// ExecStats counts source queries and transferred tuples.
	ExecStats = planner.ExecStats
	// Warning records one mediation branch dropped by a partial-results
	// run (see QueryOptions.PartialResults).
	Warning = planner.Warning
)

// Re-exported constructors.
var (
	// NewModel creates an empty domain model.
	NewModel = domain.NewModel
	// NewContext creates an empty context theory.
	NewContext = domain.NewContext
	// ConstSpec builds a constant modifier value.
	ConstSpec = domain.ConstSpec
	// AttrSpec builds an attribute-valued modifier value.
	AttrSpec = domain.AttrSpec
	// RatioConversion is the multiplicative (scale-factor) conversion.
	RatioConversion = domain.RatioConversion
	// LookupConversion converts through an ancillary rate relation.
	LookupConversion = domain.LookupConversion
	// PivotLookupConversion adds a two-hop fallback through a pivot.
	PivotLookupConversion = domain.PivotLookupConversion
	// AffineConversion is a fixed linear conversion (units).
	AffineConversion = domain.AffineConversion
	// NewDB creates an in-memory relational source.
	NewDB = store.NewDB
	// ParseWrapSpec compiles a Web-wrapping specification.
	ParseWrapSpec = wrapper.ParseSpec
	// NumV, StrV, BoolV build typed values.
	NumV = relalg.NumV
	StrV = relalg.StrV
	// PaperQ1 is the paper's Section 3 query.
	PaperQ1 = fixture.PaperQ1
)

// System is the assembled mediator installation.
type System struct {
	Registry *domain.Registry
	Catalog  *planner.Catalog

	mediator *core.Mediator
	executor *planner.Executor
}

// New creates a System over a domain model.
func New(model *Model) *System {
	reg := domain.NewRegistry(model)
	cat := planner.NewCatalog()
	return &System{
		Registry: reg,
		Catalog:  cat,
		mediator: core.New(reg),
		executor: planner.NewExecutor(cat),
	}
}

// AddContext registers a context theory.
func (s *System) AddContext(c *Context) error { return s.Registry.AddContext(c) }

// AddRelationalSource wraps an in-memory database as a source and
// registers every table, with elevation axioms per relation (nil values
// mean the relation is context-free, like an ancillary source).
func (s *System) AddRelationalSource(db *DB, elevations map[string]*Elevation) error {
	w := wrapper.NewRelational(db)
	return s.addSource(w, elevations)
}

// AddWebSource wraps a site with wrapping specs and registers the
// relations they export.
func (s *System) AddWebSource(name string, site wrapper.Fetcher, specs []*WrapSpec, elevations map[string]*Elevation) error {
	w := wrapper.NewWeb(name, site, specs...)
	return s.addSource(w, elevations)
}

func (s *System) addSource(w wrapper.Wrapper, elevations map[string]*Elevation) error {
	if err := s.Catalog.AddSource(w); err != nil {
		return err
	}
	for _, rel := range w.Relations() {
		schema, err := w.Schema(rel)
		if err != nil {
			return err
		}
		if err := s.Registry.RegisterRelation(rel, schema, elevations[rel]); err != nil {
			return err
		}
	}
	s.mediator.Invalidate()
	return nil
}

// AddAncillary maps a conversion-support predicate (e.g. "rate") onto a
// registered relation.
func (s *System) AddAncillary(pred, relation string) error {
	if err := s.Registry.AddAncillary(pred, relation); err != nil {
		return err
	}
	s.mediator.Invalidate()
	return nil
}

// AddDenial registers an integrity constraint over source data (datalog
// conjunction text, relation names as predicates); mediation cases that
// definitely violate it are pruned. See domain.Registry.AddDenialText.
func (s *System) AddDenial(body string) error {
	if err := s.Registry.AddDenialText(body); err != nil {
		return err
	}
	s.mediator.Invalidate()
	return nil
}

// Mediate rewrites SQL posed in the receiver context without executing it.
func (s *System) Mediate(sql, receiver string) (*Mediation, error) {
	return s.mediator.MediateSQL(sql, receiver)
}

// Query mediates and executes, returning the answer in the receiver's
// context. It is the ungoverned form of QueryCtx: background context, no
// limits.
func (s *System) Query(sql, receiver string) (*Relation, error) {
	//lint:allow ctxflow Query is the documented ungoverned convenience; governed callers use QueryCtx
	return s.QueryCtx(context.Background(), sql, receiver, QueryOptions{})
}

// QueryNaive executes SQL without mediation — the paper's "incorrect
// answer" baseline. The ungoverned form of QueryNaiveCtx.
func (s *System) QueryNaive(sql string) (*Relation, error) {
	//lint:allow ctxflow QueryNaive is the documented ungoverned convenience; governed callers use QueryNaiveCtx
	return s.QueryNaiveCtx(context.Background(), sql, QueryOptions{})
}

// Explain mediates the query and renders the multi-database engine's
// execution plan for every branch: access order, pushed vs local filters,
// bind joins feeding Web-source required bindings, join keys, and cost
// estimates.
func (s *System) Explain(sql, receiver string) (string, error) {
	med, err := s.Mediate(sql, receiver)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mediated into %d branch(es)\n", len(med.Branches))
	for i, br := range med.Branches {
		plan, err := s.executor.Plan(br)
		if err != nil {
			return "", fmt.Errorf("coin: planning branch %d: %w", i+1, err)
		}
		// Annotate with the executor's default parallelism so EXPLAIN shows
		// the exchange/fan-out placements execution would use (a nil
		// session resolves to DefaultParallelism; serial plans render
		// byte-identically to the pre-exchange planner).
		s.executor.ParallelizePlan(plan, nil)
		fmt.Fprintf(&b, "branch %d: %s\n%s", i+1, br.String(), plan.Explain())
	}
	if med.Post != nil {
		b.WriteString("post: aggregation/ordering over the union\n")
	}
	return b.String(), nil
}

// ExplainAnalyze mediates the query, then actually executes every branch
// with measurement wired through the pipeline, rendering each plan with
// estimated-vs-actual rows, source queries and cost per step (the
// est_rows / act_rows columns). The run feeds the adaptive statistics
// like any execution, so an EXPLAIN ANALYZE followed by EXPLAIN shows
// the optimizer learning. The ungoverned form of ExplainAnalyzeCtx.
func (s *System) ExplainAnalyze(sql, receiver string) (string, error) {
	//lint:allow ctxflow ExplainAnalyze is the documented ungoverned convenience; governed callers use ExplainAnalyzeCtx
	return s.ExplainAnalyzeCtx(context.Background(), sql, receiver, QueryOptions{})
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context and per-query
// limits: the analyzed execution runs inside a governed session, so it
// can be cancelled or bounded like any query.
func (s *System) ExplainAnalyzeCtx(ctx context.Context, sql, receiver string, opts QueryOptions) (string, error) {
	med, err := s.Mediate(sql, receiver)
	if err != nil {
		return "", err
	}
	sess := s.executor.NewSession(ctx, opts)
	defer sess.Close()
	var b strings.Builder
	fmt.Fprintf(&b, "mediated into %d branch(es)\n", len(med.Branches))
	for i, br := range med.Branches {
		plan, err := s.executor.AnalyzeSelect(sess, br)
		if err != nil {
			if opts.PartialResults && planner.Degradable(err) {
				// Mirror execution's degradation: the branch is reported as
				// dropped, the remaining branches still get analyzed.
				fmt.Fprintf(&b, "branch %d: %s\n  FAILED: %v (branch dropped; partial results)\n",
					i+1, br.String(), err)
				continue
			}
			return "", fmt.Errorf("coin: analyzing branch %d: %w", i+1, err)
		}
		fmt.Fprintf(&b, "branch %d: %s\n%s", i+1, br.String(), plan.Explain())
	}
	if med.Post != nil {
		b.WriteString("post: aggregation/ordering over the union\n")
	}
	return b.String(), nil
}

// Execute runs an already-mediated query. The ungoverned form of
// ExecuteCtx.
func (s *System) Execute(med *Mediation) (*Relation, error) {
	//lint:allow ctxflow Execute is the documented ungoverned convenience; governed callers use ExecuteCtx
	return s.ExecuteCtx(context.Background(), med, QueryOptions{})
}

// Executor exposes the engine (for stats and ablation toggles).
func (s *System) Executor() *planner.Executor { return s.executor }

// Mediator exposes the mediator (for branch bounds and cache control).
func (s *System) Mediator() *core.Mediator { return s.mediator }

// Contexts lists the registered context names.
func (s *System) Contexts() []string { return s.Registry.ContextNames() }

// Relations lists every queryable relation.
func (s *System) Relations() []string { return s.Catalog.Relations() }

// Schema returns a relation's schema.
func (s *System) Schema(relation string) (Schema, error) {
	return s.Catalog.Schema(relation)
}

// Handler serves the mediation services over HTTP: the tunneled
// ODBC-style protocol under /api/ (including the NDJSON streaming wire
// path at /api/query/stream) and the QBE form under /qbe. Every query a
// handler runs is bound to its HTTP request's context, so disconnected
// receivers stop consuming the sources.
func (s *System) Handler() http.Handler { return server.New(serverView{s}) }

// serverView adapts System to server.Service: the server selects naive
// vs mediated streaming through one method returning its RowStream
// interface; everything else System implements directly.
type serverView struct{ *System }

func (v serverView) QueryStream(ctx context.Context, sql, receiver string, naive bool, opts QueryOptions) (server.RowStream, error) {
	var (
		rs  *RowStream
		err error
	)
	if naive {
		rs, err = v.QueryNaiveStreamCtx(ctx, sql, opts)
	} else {
		rs, err = v.QueryStreamCtx(ctx, sql, receiver, opts)
	}
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// Figure2System wires the complete running example of the paper: sources
// 1 and 2 as relational databases, the currency-exchange Web site wrapped
// by a [Qu96]-style specification, contexts c1 and c2, and the domain
// model with the scaleFactor and currency conversions.
func Figure2System() *System {
	return Figure2SystemWith(fixtureCurrencySite())
}

// Figure2SystemWith is Figure2System with the currency-exchange site
// served through the given fetcher instead of the built-in simulation —
// point it at a live HTTP site (wrapper.NewHTTPFetcher) or at a failing
// fetcher to demonstrate partial-results degradation.
func Figure2SystemWith(currency wrapper.Fetcher) *System {
	sys := New(fixture.Model())
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("coin: building Figure2System: %v", err))
		}
	}
	must(sys.AddContext(fixture.ContextC1()))
	must(sys.AddContext(fixture.ContextC2()))

	dbs := fixture.Databases()
	must(sys.AddRelationalSource(dbs["source1"], map[string]*Elevation{
		"r1": {
			Relation: "r1",
			Context:  "c1",
			Columns: []ElevatedColumn{
				{Column: "cname", SemType: "companyName"},
				{Column: "revenue", SemType: "companyFinancials"},
			},
		},
	}))
	must(sys.AddRelationalSource(dbs["source2"], map[string]*Elevation{
		"r2": {
			Relation: "r2",
			Context:  "c2",
			Columns: []ElevatedColumn{
				{Column: "cname", SemType: "companyName"},
				{Column: "expenses", SemType: "companyFinancials"},
			},
		},
	}))

	must(sys.AddWebSource("currencyweb", currency,
		[]*WrapSpec{wrapper.MustParseSpec(wrapper.CurrencySpecCrawl)}, nil))
	must(sys.AddAncillary("rate", "r3"))
	return sys
}
