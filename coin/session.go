package coin

// Context-aware query services. Every query runs inside a planner.Session
// — a context (cancellation + deadline) plus resource governors — so a
// receiver that disconnects, times out or exceeds its budgets stops
// consuming the sources promptly. The context-free methods of coin.go
// (Query, QueryNaive, Execute) are thin wrappers over these with a
// background context and no limits.

import (
	"context"

	"repro/internal/planner"
	"repro/internal/relalg"
)

// QueryOptions bound one query session: a wall-clock timeout, a cap on
// result rows delivered (truncation), caps on tuples transferred from
// sources and bytes staged through the temp store (both abort the query
// when exceeded), a cap on the session's concurrent fetches per source
// (admission waits, it does not fail), a session-wide retry budget, and
// the PartialResults degradation switch (failed mediation branches are
// dropped with warnings instead of failing the query). The zero value is
// ungoverned and fail-fast.
type QueryOptions = planner.Limits

// Tuple is one result row.
type Tuple = relalg.Tuple

// QueryCtx mediates and executes under ctx and opts, returning the answer
// in the receiver's context. Canceling ctx (or exceeding opts.Timeout)
// aborts the query mid-stream, source fetches included.
func (s *System) QueryCtx(ctx context.Context, sql, receiver string, opts QueryOptions) (*Relation, error) {
	med, err := s.Mediate(sql, receiver)
	if err != nil {
		return nil, err
	}
	return s.ExecuteCtx(ctx, med, opts)
}

// ExecuteCtx runs an already-mediated query under ctx and opts. Warnings
// a partial-results run accumulates are dropped here; use ExecuteWarnCtx
// when the receiver needs them.
func (s *System) ExecuteCtx(ctx context.Context, med *Mediation, opts QueryOptions) (*Relation, error) {
	rel, _, err := s.ExecuteWarnCtx(ctx, med, opts)
	return rel, err
}

// ExecuteWarnCtx runs an already-mediated query under ctx and opts,
// additionally returning the degraded-branch warnings of a
// partial-results run (nil when the answer is complete — in particular,
// always nil unless opts.PartialResults is set).
func (s *System) ExecuteWarnCtx(ctx context.Context, med *Mediation, opts QueryOptions) (*Relation, []Warning, error) {
	sess := s.executor.NewSession(ctx, opts)
	defer sess.Close()
	it, err := s.executor.MediationStream(sess, med)
	if err != nil {
		return nil, nil, err
	}
	rel, err := relalg.Collect(sess.Context(), capRows(it, opts), "")
	if err != nil {
		return nil, nil, err
	}
	return rel, sess.Warnings(), nil
}

// QueryNaiveCtx executes SQL without mediation under ctx and opts — the
// paper's "incorrect answer" baseline, now governable.
func (s *System) QueryNaiveCtx(ctx context.Context, sql string, opts QueryOptions) (*Relation, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	sess := s.executor.NewSession(ctx, opts)
	defer sess.Close()
	it, err := s.executor.StatementStream(sess, stmt)
	if err != nil {
		return nil, err
	}
	return relalg.Collect(sess.Context(), capRows(it, opts), "")
}

// capRows applies the MaxRows governor as a final LIMIT: the answer is
// truncated, not failed.
func capRows(it relalg.Iterator, opts QueryOptions) relalg.Iterator {
	if opts.MaxRows > 0 {
		return relalg.NewLimit(it, opts.MaxRows)
	}
	return it
}

// RowStream is an open, incrementally-consumable query answer: the
// streaming executor's iterator tree surfaced all the way to the
// receiver, so the first row is available before the sources have
// delivered the rest. Always Close it — Close releases the underlying
// source streams and cancels the query session (which stops any
// still-pending source work).
type RowStream struct {
	sess   *planner.Session
	it     relalg.Iterator
	med    *Mediation // nil for naive streams
	schema Schema
	closed bool
	buf    []relalg.Tuple // current batch, consumed row-at-a-time by Next
	pos    int
}

// QueryStreamCtx mediates sql and opens a governed row stream over the
// executing union of branches. Rows are produced as the iterator tree
// yields them; an upstream LIMIT (or opts.MaxRows) stops source transfer
// early, and canceling ctx aborts the stream mid-flight.
func (s *System) QueryStreamCtx(ctx context.Context, sql, receiver string, opts QueryOptions) (*RowStream, error) {
	med, err := s.Mediate(sql, receiver)
	if err != nil {
		return nil, err
	}
	sess := s.executor.NewSession(ctx, opts)
	it, err := s.executor.MediationStream(sess, med)
	if err != nil {
		sess.Close()
		return nil, err
	}
	return openRowStream(sess, capRows(it, opts), med)
}

// QueryNaiveStreamCtx opens a governed row stream over an un-mediated
// statement.
func (s *System) QueryNaiveStreamCtx(ctx context.Context, sql string, opts QueryOptions) (*RowStream, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	sess := s.executor.NewSession(ctx, opts)
	it, err := s.executor.StatementStream(sess, stmt)
	if err != nil {
		sess.Close()
		return nil, err
	}
	return openRowStream(sess, capRows(it, opts), nil)
}

func openRowStream(sess *planner.Session, it relalg.Iterator, med *Mediation) (*RowStream, error) {
	if err := it.Open(sess.Context()); err != nil {
		sess.Close()
		return nil, err
	}
	return &RowStream{sess: sess, it: it, med: med, schema: it.Schema()}, nil
}

// Schema describes the stream's rows; available before the first Next.
func (r *RowStream) Schema() Schema { return r.schema }

// Mediation returns the mediated form of the query, or nil for a naive
// stream.
func (r *RowStream) Mediation() *Mediation { return r.med }

// Next returns the next row, ok=false at end of stream, or an error
// (including context.Canceled / context.DeadlineExceeded when the session
// dies, and governor errors when a budget is exceeded). It pulls whole
// batches from the executor and hands them out row by row; use NextBatch
// to consume the stream block-at-a-time instead (don't mix the two
// mid-batch — Next's buffered remainder would be skipped).
func (r *RowStream) Next() (Tuple, bool, error) {
	if r.closed {
		return nil, false, nil
	}
	if r.pos >= len(r.buf) {
		b, err := r.it.Next(relalg.DefaultBatchSize)
		if err != nil {
			return nil, false, err
		}
		if b.Empty() {
			return nil, false, nil
		}
		r.buf, r.pos = b.Rows, 0
	}
	t := r.buf[r.pos]
	r.pos++
	return t, true, nil
}

// NextBatch returns the next block of rows: 1..max rows, or (nil, nil)
// at end of stream. The returned slice is only valid until the next
// NextBatch/Next/Close call; the Tuples inside it are durable. Any rows
// a prior Next buffered are drained first.
func (r *RowStream) NextBatch(max int) ([]Tuple, error) {
	if r.closed {
		return nil, nil
	}
	if r.pos < len(r.buf) {
		rows := r.buf[r.pos:]
		r.buf, r.pos = nil, 0
		return rows, nil
	}
	b, err := r.it.Next(max)
	if err != nil {
		return nil, err
	}
	return b.Rows, nil
}

// Warnings returns the degraded-branch warnings accumulated so far on a
// partial-results stream (nil otherwise). Branches may degrade mid-stream,
// so the set is only final once Next has returned ok=false.
func (r *RowStream) Warnings() []Warning { return r.sess.Warnings() }

// Cancel aborts the query session, releasing a Next blocked on a slow
// source. Unlike Close it is safe to call from another goroutine while
// the consumer is mid-Next; the consumer still must Close the stream.
func (r *RowStream) Cancel() { r.sess.Cancel() }

// Close releases the stream: the iterator tree (closing every source
// stream it holds) and the query session. Idempotent.
func (r *RowStream) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.it.Close()
	r.sess.Close()
	return err
}
