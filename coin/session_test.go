package coin_test

// Tests for the coin-layer query sessions: context cancellation and
// deadlines, the max-rows governor, and incremental row streams that
// stop source transfer early.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/coin"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// bigNaiveSystem wires a System with one ungoverned relational source of
// n sequential rows, reachable through naive (un-mediated) queries.
func bigNaiveSystem(t *testing.T, n int) *coin.System {
	t.Helper()
	sys := coin.New(coin.NewModel())
	db := store.NewDB("bigsrc")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
	))
	for i := 0; i < n; i++ {
		tab.MustInsert(relalg.NumV(float64(i)))
	}
	if err := sys.AddRelationalSource(db, nil); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQueryCtxCanceled(t *testing.T) {
	sys := coin.Figure2System()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.QueryCtx(ctx, coin.PaperQ1, "c2", coin.QueryOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQueryCtxDeadlineExceeded(t *testing.T) {
	sys := coin.Figure2System()
	_, err := sys.QueryCtx(context.Background(), coin.PaperQ1, "c2",
		coin.QueryOptions{Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestMaxRowsTruncatesMediatedQuery(t *testing.T) {
	sys := coin.Figure2System()
	full, err := sys.Query("SELECT r2.cname FROM r2", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 2 {
		t.Fatalf("fixture r2 has %d rows; need >= 2", full.Len())
	}
	capped, err := sys.QueryCtx(context.Background(), "SELECT r2.cname FROM r2", "c2",
		coin.QueryOptions{MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Len() != 1 {
		t.Fatalf("MaxRows=1 returned %d rows", capped.Len())
	}
}

func TestMaxTuplesGovernorAtCoinLayer(t *testing.T) {
	sys := bigNaiveSystem(t, 1000)
	_, err := sys.QueryNaiveCtx(context.Background(), "SELECT nums.n FROM nums",
		coin.QueryOptions{MaxTuples: 100})
	if err == nil {
		t.Fatal("query over the tuple budget succeeded")
	}
}

// TestRowStreamLimitStopsTransfer is the coin-layer acceptance check:
// streaming a LIMIT query over a 50k-row source delivers the rows without
// materializing the rest — the source transfers exactly LIMIT tuples.
func TestRowStreamLimitStopsTransfer(t *testing.T) {
	sys := bigNaiveSystem(t, 50000)
	rs, err := sys.QueryNaiveStreamCtx(context.Background(),
		"SELECT nums.n FROM nums LIMIT 5", coin.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rows := 0
	for {
		_, ok, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows++
	}
	if rows != 5 {
		t.Fatalf("streamed %d rows, want 5", rows)
	}
	// Per-scan transfer counts flush to ExecStats at stream close.
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if st := sys.Executor().Stats(); st.TuplesTransferred != 5 {
		t.Errorf("TuplesTransferred = %d, want exactly 5 (source holds 50000)", st.TuplesTransferred)
	}
}

func TestRowStreamMediated(t *testing.T) {
	sys := coin.Figure2System()
	rs, err := sys.QueryStreamCtx(context.Background(), coin.PaperQ1, "c2", coin.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Mediation() == nil || len(rs.Mediation().Branches) != 3 {
		t.Fatalf("stream mediation = %+v", rs.Mediation())
	}
	var rows []coin.Tuple
	for {
		tp, ok, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, tp)
	}
	if len(rows) != 1 || rows[0][0].S != "NTT" || rows[0][1].N != 9600000 {
		t.Fatalf("streamed rows = %v", rows)
	}
	// Close is idempotent and Next after Close reports exhaustion.
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rs.Next(); ok || err != nil {
		t.Fatalf("Next after Close: ok=%v err=%v", ok, err)
	}
}

// TestRowStreamCloseCancelsSession: closing a stream before exhaustion
// cancels the session, so a slow source blocked mid-transfer is released.
func TestRowStreamCloseCancelsSession(t *testing.T) {
	sys := coin.New(coin.NewModel())
	db := store.NewDB("slow")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
	))
	for i := 0; i < 100; i++ {
		tab.MustInsert(relalg.NumV(float64(i)))
	}
	gw := wrappertest.NewGate(wrapper.NewRelational(db))
	sys.Catalog.MustAddSource(gw)

	rs, err := sys.QueryNaiveStreamCtx(context.Background(),
		"SELECT nums.n FROM nums", coin.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Allow two rows through the gate, then cancel with the stream
	// blocked offering the third; the consuming goroutine then closes.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 2; i++ {
			if _, ok, err := rs.Next(); !ok || err != nil {
				done <- err
				rs.Close()
				return
			}
		}
		_, _, err := rs.Next() // blocks until Cancel aborts the session
		rs.Close()
		done <- err
	}()
	gw.Allow(2)
	<-gw.Emitted // third tuple offered; nobody will allow it
	rs.Cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked Next returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cancel did not release the blocked source stream")
	}
}

// TestMaxConcurrentPerSourceAtCoinLayer: the per-source concurrency cap
// is accepted through QueryOptions and a capped query still returns the
// paper's answer (the admission bound itself is pinned at the planner
// layer).
func TestMaxConcurrentPerSourceAtCoinLayer(t *testing.T) {
	sys := coin.Figure2System()
	rows, err := sys.QueryCtx(context.Background(), coin.PaperQ1, "c2",
		coin.QueryOptions{MaxConcurrentPerSource: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Tuples[0][0].S != "NTT" {
		t.Errorf("capped answer = %s", rows)
	}
}

// downFetcher fails every page fetch with a transient source fault: the
// currency site is unreachable.
type downFetcher struct{}

func (downFetcher) Get(ctx context.Context, url string) (string, error) {
	return "", wrapper.Transient(errors.New("currency site unreachable"))
}

// TestPartialResultsQuery: with the currency site down, the paper query
// fails by default but degrades under QueryOptions.PartialResults — the
// conversion branches are dropped with warnings naming currencyweb.
func TestPartialResultsQuery(t *testing.T) {
	sys := coin.Figure2SystemWith(downFetcher{})

	if _, err := sys.QueryCtx(context.Background(), coin.PaperQ1, "c2",
		coin.QueryOptions{}); err == nil || !strings.Contains(err.Error(), "currencyweb") {
		t.Fatalf("fail-fast err = %v, want failure naming currencyweb", err)
	}

	med, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	rows, warns, err := sys.ExecuteWarnCtx(context.Background(), med,
		coin.QueryOptions{PartialResults: true})
	if err != nil {
		t.Fatal(err)
	}
	// The NTT answer needs the JPY conversion, so the partial answer
	// loses it — the warnings are what tell the receiver why.
	if rows.Len() != 0 {
		t.Errorf("partial rows = %s, want none without the currency source", rows)
	}
	if len(warns) == 0 {
		t.Fatal("partial answer carried no warnings")
	}
	for _, w := range warns {
		if w.Source != "currencyweb" || w.Branch == 0 || w.Message == "" {
			t.Errorf("warning %+v, want branch-scoped currencyweb attribution", w)
		}
	}
}

// TestPartialResultsRowStream: the streaming path surfaces the same
// warnings once the stream is drained.
func TestPartialResultsRowStream(t *testing.T) {
	sys := coin.Figure2SystemWith(downFetcher{})
	rs, err := sys.QueryStreamCtx(context.Background(), coin.PaperQ1, "c2",
		coin.QueryOptions{PartialResults: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	for {
		_, ok, err := rs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	warns := rs.Warnings()
	if len(warns) == 0 {
		t.Fatal("drained stream carried no warnings")
	}
	for _, w := range warns {
		if w.Source != "currencyweb" {
			t.Errorf("warning %+v does not name currencyweb", w)
		}
	}
}

// TestPartialResultsExplainAnalyze: EXPLAIN ANALYZE marks dropped
// branches instead of failing.
func TestPartialResultsExplainAnalyze(t *testing.T) {
	sys := coin.Figure2SystemWith(downFetcher{})
	if _, err := sys.ExplainAnalyzeCtx(context.Background(), coin.PaperQ1, "c2",
		coin.QueryOptions{}); err == nil {
		t.Fatal("fail-fast EXPLAIN ANALYZE succeeded against a dead source")
	}
	out, err := sys.ExplainAnalyzeCtx(context.Background(), coin.PaperQ1, "c2",
		coin.QueryOptions{PartialResults: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "branch dropped; partial results") {
		t.Errorf("EXPLAIN ANALYZE output lacks the degraded-branch marker:\n%s", out)
	}
}
