package coin

import (
	"repro/internal/datalog"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/web"
	"repro/internal/wrapper"
)

// builtinSpecSources maps the public spec names to their source text.
var builtinSpecSources = map[string]string{
	CurrencySpecCrawl:  wrapper.CurrencySpecCrawl,
	CurrencySpecLookup: wrapper.CurrencySpecLookup,
	StockSpec:          wrapper.StockSpec,
	ProfileSpec:        wrapper.ProfileSpec,
}

// parseSQL is the front-end parser used by QueryNaive.
func parseSQL(sql string) (sqlparse.Statement, error) { return sqlparse.Parse(sql) }

// fixtureCurrencySite builds the simulated currency-exchange site with
// the paper's rates.
func fixtureCurrencySite() *web.Site { return web.NewCurrencySite(web.PaperRates()) }

// NewCurrencySite exposes the simulated currency-exchange site builder so
// applications can stand up their own ancillary rate source.
func NewCurrencySite(rates map[web.RatePair]float64) *web.Site {
	return web.NewCurrencySite(rates)
}

// NewStockSite exposes the simulated ticker site builder.
func NewStockSite(quotes []web.Quote) *web.Site { return web.NewStockSite(quotes) }

// NewProfileSite exposes the simulated company-directory builder.
func NewProfileSite(profiles []web.Profile) *web.Site { return web.NewProfileSite(profiles) }

// TermStr builds a string-constant term for conversion and context
// declarations (e.g. the from/to values of an AffineConversion).
func TermStr(s string) datalog.Term { return datalog.Str(s) }

// TermNum builds a numeric-constant term.
func TermNum(v float64) datalog.Term { return datalog.Number(v) }

// Re-exported value kinds and schema builder.
const (
	KindNull   = relalg.KindNull
	KindNumber = relalg.KindNumber
	KindString = relalg.KindString
	KindBool   = relalg.KindBool
)

// NewSchema builds a schema from columns.
var NewSchema = relalg.NewSchema

// Re-exported simulated-Web types for building sites.
type (
	// Site is a simulated Web site.
	Site = web.Site
	// RatePair is a directed currency pair.
	RatePair = web.RatePair
	// Quote is one security price.
	Quote = web.Quote
	// Profile is one company record.
	Profile = web.Profile
)

// Built-in wrapping specifications for the simulated sites.
const (
	// CurrencySpecCrawl wraps the rate site by crawling its index.
	CurrencySpecCrawl = "currency-crawl"
	// CurrencySpecLookup wraps the rate site as a parameterized lookup.
	CurrencySpecLookup = "currency-lookup"
	// StockSpec wraps the ticker site.
	StockSpec = "stocks"
	// ProfileSpec wraps the company directory.
	ProfileSpec = "profiles"
)

// BuiltinSpec returns one of the named built-in wrapping specifications.
func BuiltinSpec(name string) (*WrapSpec, bool) {
	src, ok := builtinSpecSources[name]
	if !ok {
		return nil, false
	}
	spec, err := ParseWrapSpec(src)
	if err != nil {
		return nil, false
	}
	return spec, true
}
