package coin

// Registration helpers for the heterogeneous backend wrappers: file
// directories, SQL databases reached through database/sql, and paginated
// REST services. Each is a thin adapter from the backend's constructor to
// the shared addSource path, so applications wire disparate sources with
// the same elevation vocabulary AddRelationalSource uses. A nil elevation
// for a relation means it is context-free (ancillary-style data).

import (
	"net/http"

	"repro/internal/wrapper/filesrc"
	"repro/internal/wrapper/restsrc"
	"repro/internal/wrapper/sqlsrc"
)

// AddFileSource serves every *.csv and *.json file under dir as one
// source named name (one relation per file, schema from the header row or
// column list) and registers the relations with their elevations.
func (s *System) AddFileSource(name, dir string, elevations map[string]*Elevation) error {
	w, err := filesrc.New(name, dir)
	if err != nil {
		return err
	}
	return s.addSource(w, elevations)
}

// AddSQLSource registers a configured SQL-backed source (see sqlsrc.New
// and Source.AddRelation for declaring the reachable relations; batching,
// costs and required bindings are set on the Source before registration).
func (s *System) AddSQLSource(src *sqlsrc.Source, elevations map[string]*Elevation) error {
	return s.addSource(src, elevations)
}

// AddRESTSource dials a REST backend, discovers its relations and
// statistics from the service's schema document, and registers them with
// their elevations. A nil client uses http.DefaultClient.
func (s *System) AddRESTSource(name, baseURL string, client *http.Client, elevations map[string]*Elevation) error {
	src, err := restsrc.Dial(name, baseURL, client)
	if err != nil {
		return err
	}
	return s.addSource(src, elevations)
}
