// Package repro_test is the benchmark harness of the reproduction: one
// benchmark (or benchmark family) per experiment in DESIGN.md §4, covering
// every figure and claim the paper makes. EXPERIMENTS.md records the
// paper-vs-measured comparison; `go test -bench=. -benchmem` regenerates
// the measured side.
package repro_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/coin"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/planner"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/web"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// --- E1: the Section 3 worked example -----------------------------------

// BenchmarkE1_PaperExample measures the full pipeline of the paper's
// demonstration: parse Q1, mediate it in context c2, execute the 3-branch
// union across the three sources, return <NTT, 9600000>.
func BenchmarkE1_PaperExample(b *testing.B) {
	sys := coin.Figure2System()
	if err := sys.Mediator().Warm("c2"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := sys.Query(coin.PaperQ1, "c2")
		if err != nil {
			b.Fatal(err)
		}
		if rows.Len() != 1 || rows.Tuples[0][0].S != "NTT" {
			b.Fatalf("wrong answer: %s", rows)
		}
	}
}

// BenchmarkE1b_MediationOnly isolates the abductive rewriting.
func BenchmarkE1b_MediationOnly(b *testing.B) {
	sys := coin.Figure2System()
	if err := sys.Mediator().Warm("c2"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		med, err := sys.Mediate(coin.PaperQ1, "c2")
		if err != nil {
			b.Fatal(err)
		}
		if len(med.Branches) != 3 {
			b.Fatalf("branches = %d", len(med.Branches))
		}
	}
}

// BenchmarkE1c_ExecutionOnly isolates plan+execute of the mediated union.
func BenchmarkE1c_ExecutionOnly(b *testing.B) {
	sys := coin.Figure2System()
	med, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(med); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultFreeOverhead is E1c with the fault-tolerance machinery
// armed (retry policy on, circuit breakers on — both are on the per-query
// and per-tuple paths) but no fault injected. It gates the cost of the
// robustness layer on healthy executions: the numbers must stay within
// noise of BenchmarkE1c_ExecutionOnly.
func BenchmarkFaultFreeOverhead(b *testing.B) {
	sys := coin.Figure2System()
	ex := sys.Executor()
	ex.Retry = planner.RetryPolicy{MaxAttempts: 3}
	med, err := sys.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(med); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Figure 1 architecture over HTTP --------------------------------

// BenchmarkE3_EndToEndHTTP runs the paper's query through the whole
// receiver stack: Go client -> HTTP-tunneled protocol -> server ->
// mediation engine -> multi-DB engine -> wrappers -> sources.
func BenchmarkE3_EndToEndHTTP(b *testing.B) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := conn.Query(coin.PaperQ1, "c2")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %v", res.Rows)
		}
	}
}

// --- E4: scalability in the number of *registered* sources --------------

// BenchmarkE4_MediationVsRegisteredSources shows mediation cost tracks the
// sources a query touches, not the federation size: Q1 always touches 3
// relations while the registry grows from 3 to 67.
func BenchmarkE4_MediationVsRegisteredSources(b *testing.B) {
	for _, extra := range []int{0, 8, 32, 64} {
		b.Run(fmt.Sprintf("registered=%d", 3+extra), func(b *testing.B) {
			med := core.New(fixture.WideRegistry(extra))
			if err := med.Warm("c2"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := med.MediateSQL(fixture.PaperQ1, "c2")
				if err != nil {
					b.Fatal(err)
				}
				if len(m.Branches) != 3 {
					b.Fatalf("branches = %d", len(m.Branches))
				}
			}
		})
	}
}

// --- E5: mediated-query growth with genuine conflicts -------------------

// BenchmarkE5_MediationVsConflicts sweeps the number m of independent
// two-way modifier case splits; the mediated query has 2^m branches, so
// cost grows with the conflicts involved (and only with them).
func BenchmarkE5_MediationVsConflicts(b *testing.B) {
	for m := 0; m <= 4; m++ {
		b.Run(fmt.Sprintf("modifiers=%d/branches=%d", m, 1<<m), func(b *testing.B) {
			med := core.New(fixture.ConflictRegistry(m))
			if err := med.Warm("recv"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := med.MediateSQL("SELECT wide.val FROM wide", "recv")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Branches) != 1<<m {
					b.Fatalf("branches = %d", len(res.Branches))
				}
			}
		})
	}
}

// BenchmarkE5b_SimplificationAblation compares the size of the mediated
// query (total WHERE predicates) with constraint simplification on and
// off. Simplification is what keeps the paper's USD branch free of the
// entailed `currency <> 'JPY'`.
func BenchmarkE5b_SimplificationAblation(b *testing.B) {
	predCount := func(med *core.Mediation) int {
		n := 0
		for _, br := range med.Branches {
			n += strings.Count(br.String(), " AND ") + 1
		}
		return n
	}
	for _, keep := range []bool{false, true} {
		name := "simplify=on"
		if keep {
			name = "simplify=off"
		}
		b.Run(name, func(b *testing.B) {
			med := core.New(fixture.Registry())
			med.KeepEntailed = keep
			if err := med.Warm("c2"); err != nil {
				b.Fatal(err)
			}
			var preds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := med.MediateSQL(fixture.PaperQ1, "c2")
				if err != nil {
					b.Fatal(err)
				}
				preds = predCount(m)
			}
			b.ReportMetric(float64(preds), "where-preds")
		})
	}
}

// --- E8: the [Qu96] Web-wrapping technology ------------------------------

// BenchmarkE8_WebWrapperExtract crawls generated currency sites of
// increasing size through the transition network + regex runtime.
func BenchmarkE8_WebWrapperExtract(b *testing.B) {
	currencies := []string{"USD", "JPY", "EUR", "GBP", "CHF", "CAD", "AUD", "SEK", "NOK", "DKK", "NZD"}
	for _, n := range []int{4, 10, 50, 110} {
		rates := map[web.RatePair]float64{}
		for i := 0; len(rates) < n; i++ {
			from := currencies[i%len(currencies)]
			to := currencies[(i/len(currencies)+1+i)%len(currencies)]
			if from != to {
				rates[web.RatePair{From: from, To: to}] = 1.0 + float64(i)/100
			}
		}
		site := web.NewCurrencySite(rates)
		w := wrapper.NewWeb("bench", site, wrapper.MustParseSpec(wrapper.CurrencySpecCrawl))
		b.Run(fmt.Sprintf("pages=%d", len(rates)+1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel, err := w.Query(context.Background(), wrapper.SourceQuery{Relation: "r3"})
				if err != nil {
					b.Fatal(err)
				}
				if rel.Len() != len(rates) {
					b.Fatalf("extracted %d, want %d", rel.Len(), len(rates))
				}
			}
		})
	}
}

// --- E9: the multi-database engine (capabilities + costs) ----------------

// scaledCatalog builds relational sources over a ScaledWorkload.
func scaledCatalog(n int, seed int64) (*planner.Catalog, *fixture.ScaledWorkload) {
	w := fixture.NewScaledWorkload(n, seed)
	cat := planner.NewCatalog()
	mk := func(src, rel string, schema coin.Schema, rows []relalg.Tuple) {
		db := store.NewDB(src)
		tab := db.MustCreateTable(rel, schema)
		for _, row := range rows {
			if err := tab.Insert(row); err != nil {
				panic(err)
			}
		}
		cat.MustAddSource(wrapper.NewRelational(db))
	}
	mk("source1", "r1", fixture.R1Schema(), w.R1.Tuples)
	mk("source2", "r2", fixture.R2Schema(), w.R2.Tuples)
	mk("currencyweb", "r3", fixture.R3Schema(), w.R3.Tuples)
	return cat, w
}

// BenchmarkE9_MediatedExecutionScale executes the paper-shaped mediated
// query over growing workloads.
func BenchmarkE9_MediatedExecutionScale(b *testing.B) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{100, 1000, 10000} {
		cat, w := scaledCatalog(n, 42)
		b.Run(fmt.Sprintf("companies=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := planner.NewExecutor(cat).ExecuteMediation(med)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != w.Expected.Len() {
					b.Fatalf("answers = %d, want %d", res.Len(), w.Expected.Len())
				}
			}
		})
	}
}

// BenchmarkParallelJoinScaling measures intra-query parallel speedup on
// an E9-style local-heavy mediated join: the scaled Figure 2 workload,
// large enough that local hash-join/sort work dominates the source
// round-trips, executed with MaxParallelism = GOMAXPROCS so the
// exchange join, scan fan-out and partitioned cores all engage. Drive
// it with -cpu 1,2,4,8 (the Makefile bench gate does) to read the
// scaling curve; the -cpu 1 lane runs byte-identical serial plans, so
// it doubles as the no-regression guard for the serial path.
func BenchmarkParallelJoinScaling(b *testing.B) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		b.Fatal(err)
	}
	cat, w := scaledCatalog(10000, 42)
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := planner.NewExecutor(cat)
		ex.DefaultParallelism = runtime.GOMAXPROCS(0)
		res, err := ex.ExecuteMediation(med)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != w.Expected.Len() {
			b.Fatalf("answers = %d, want %d", res.Len(), w.Expected.Len())
		}
	}
}

// BenchmarkE9b_JoinAlgorithms is the join-algorithm ablation: hash vs
// sort-merge vs nested-loop on the paper-shaped mediated query.
func BenchmarkE9b_JoinAlgorithms(b *testing.B) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		b.Fatal(err)
	}
	cat, _ := scaledCatalog(1000, 42)
	for _, alg := range []string{"hash", "merge", "nested-loop"} {
		b.Run("join="+alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := planner.NewExecutor(cat)
				ex.ForceNestedLoop = alg == "nested-loop"
				ex.ForceMergeJoin = alg == "merge"
				if _, err := ex.ExecuteMediation(med); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9c_PushdownAblation compares tuples transferred and wall time
// with selection pushdown on and off.
func BenchmarkE9c_PushdownAblation(b *testing.B) {
	cat, _ := scaledCatalog(5000, 42)
	q := "SELECT r1.cname FROM r1 WHERE r1.currency = 'JPY'"
	for _, disable := range []bool{false, true} {
		name := "pushdown=on"
		if disable {
			name = "pushdown=off"
		}
		b.Run(name, func(b *testing.B) {
			var transferred int
			for i := 0; i < b.N; i++ {
				ex := planner.NewExecutor(cat)
				ex.DisablePushdown = disable
				if _, err := ex.Execute(sqlparse.MustParse(q)); err != nil {
					b.Fatal(err)
				}
				transferred = ex.Stats().TuplesTransferred
			}
			b.ReportMetric(float64(transferred), "tuples-moved")
		})
	}
}

// BenchmarkE9d_BindJoinVsCrawl compares the two wrapper forms of the same
// currency site on the paper's query: the parameterized lookup form
// fetches a handful of targeted pages; the crawl form walks the index.
func BenchmarkE9d_BindJoinVsCrawl(b *testing.B) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		b.Fatal(err)
	}
	for _, form := range []string{"crawl", "lookup"} {
		b.Run("wrapper="+form, func(b *testing.B) {
			dbs := fixture.Databases()
			cat := planner.NewCatalog()
			cat.MustAddSource(wrapper.NewRelational(dbs["source1"]))
			cat.MustAddSource(wrapper.NewRelational(dbs["source2"]))
			site := web.NewCurrencySite(web.PaperRates())
			spec := wrapper.CurrencySpecCrawl
			if form == "lookup" {
				spec = wrapper.CurrencySpecLookup
			}
			cat.MustAddSource(wrapper.NewWeb("currencyweb", site, wrapper.MustParseSpec(spec)))
			var pages int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				site.ResetHits()
				res, err := planner.NewExecutor(cat).ExecuteMediation(med)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 1 {
					b.Fatalf("answer = %s", res)
				}
				pages = site.Hits()
			}
			b.ReportMetric(float64(pages), "pages-fetched")
		})
	}
}

// BenchmarkE9e_ParallelBranches compares sequential and concurrent
// execution of the mediated union's branches.
func BenchmarkE9e_ParallelBranches(b *testing.B) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		b.Fatal(err)
	}
	cat, _ := scaledCatalog(5000, 42)
	for _, parallel := range []bool{false, true} {
		name := "branches=sequential"
		if parallel {
			name = "branches=parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := planner.NewExecutor(cat)
				ex.Parallel = parallel
				if _, err := ex.ExecuteMediation(med); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: the source access layer ----------------------------------------

// BenchmarkBindJoinBatched measures the dominant communication cost of a
// federation scenario: a bind join fanning N distinct feeder values into
// a slow source (simulated per-query latency). The IN-capable batched
// path issues ⌈N/BatchSize⌉ source queries where the unbatched ablation
// issues N, and the dispatcher overlaps them up to the source's
// concurrency cap, so wall-clock improves on both axes.
func BenchmarkBindJoinBatched(b *testing.B) {
	const n = 64
	const batch = 16
	buildCat := func() (*planner.Catalog, *wrappertest.Counter) {
		fdb := store.NewDB("feedsrc")
		ftab := fdb.MustCreateTable("feed", relalg.NewSchema(
			relalg.Column{Name: "k", Type: relalg.KindString}))
		tdb := store.NewDB("bindsrc")
		ttab := tdb.MustCreateTable("tgt", relalg.NewSchema(
			relalg.Column{Name: "k", Type: relalg.KindString},
			relalg.Column{Name: "v", Type: relalg.KindNumber}))
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%03d", i)
			ftab.MustInsert(coin.StrV(k))
			ttab.MustInsert(coin.StrV(k), coin.NumV(float64(i)))
		}
		rw := wrapper.NewRelational(tdb)
		rw.BatchSize = batch
		rw.Require = map[string][]string{"tgt": {"k"}}
		ctr := wrappertest.NewCounter(rw)
		ctr.Delay = 200 * time.Microsecond
		cat := planner.NewCatalog()
		cat.MustAddSource(wrapper.NewRelational(fdb))
		cat.MustAddSource(ctr)
		return cat, ctr
	}
	q := sqlparse.MustParse("SELECT feed.k, tgt.v FROM feed, tgt WHERE tgt.k = feed.k")
	for _, mode := range []string{"batched", "unbatched"} {
		b.Run("probes="+mode, func(b *testing.B) {
			cat, _ := buildCat()
			var queries int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := planner.NewExecutor(cat)
				ex.DisableBatching = mode == "unbatched"
				res, err := ex.ExecuteCtx(context.Background(), q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != n {
					b.Fatalf("rows = %d, want %d", res.Len(), n)
				}
				queries = ex.Stats().SourceQueries
			}
			b.ReportMetric(float64(queries), "source-queries")
		})
	}
}

// --- E6/E7 timing companions ---------------------------------------------

// BenchmarkE6_RegisterSource measures the cost of integrating one new
// source (context + elevation + recompile) into a live system.
func BenchmarkE6_RegisterSource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := coin.Figure2System()
		db := store.NewDB("source3")
		tab := db.MustCreateTable("r4", fixture.R1Schema())
		tab.MustInsert(coin.StrV("SAP"), coin.NumV(1), coin.StrV("EUR"))
		b.StartTimer()

		c3 := coin.NewContext("c3")
		if err := c3.DeclareConst("companyFinancials", "scaleFactor", 1000); err != nil {
			b.Fatal(err)
		}
		if err := c3.DeclareConst("companyFinancials", "currency", "EUR"); err != nil {
			b.Fatal(err)
		}
		if err := sys.AddContext(c3); err != nil {
			b.Fatal(err)
		}
		if err := sys.AddRelationalSource(db, map[string]*coin.Elevation{
			"r4": {Relation: "r4", Context: "c3", Columns: []coin.ElevatedColumn{
				{Column: "cname", SemType: "companyName"},
				{Column: "revenue", SemType: "companyFinancials"},
			}},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Mediate("SELECT r4.revenue FROM r4", "c2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_QueryKinds times each query class over the same knowledge.
func BenchmarkE7_QueryKinds(b *testing.B) {
	sys := coin.Figure2System()
	queries := map[string]string{
		"projection": "SELECT r1.cname, r1.revenue FROM r1",
		"selection":  "SELECT r1.cname FROM r1 WHERE r1.revenue > 5000000",
		"join":       fixture.PaperQ1,
		"aggregate":  "SELECT SUM(r1.revenue) AS total FROM r1",
		"orderby":    "SELECT r1.cname, r1.revenue FROM r1 ORDER BY r1.revenue DESC",
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Query(q, "c2"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E11: cost-based plan enumeration + adaptive statistics --------------

// BenchmarkJoinOrderAdaptive measures what the optimizer's feedback loop
// buys on a query where the greedy, statically-priced order is provably
// bad: three relations with skewed cardinalities whose sources
// misestimate themselves (the big one low, the small one high) around a
// keyed source answering a constant number of rows per probe. The greedy
// static plan drives the bind join from the big relation's thousand keys;
// after one warm-up execution populates the adaptive statistics store,
// the replanned (DP) query drives it from the five-key relation instead
// and transfers over 5x fewer source tuples. plan=greedy-static is the
// DisableReorder + nil-AdaptiveStats ablation — today's planner.
func BenchmarkJoinOrderAdaptive(b *testing.B) {
	const (
		aRows = 1000
		perK  = 10
	)
	buildCat := func() *planner.Catalog {
		adb := store.NewDB("srcA")
		atab := adb.MustCreateTable("a", relalg.NewSchema(
			relalg.Column{Name: "k", Type: relalg.KindString},
			relalg.Column{Name: "v", Type: relalg.KindNumber}))
		bdb := store.NewDB("srcB")
		btab := bdb.MustCreateTable("b", relalg.NewSchema(
			relalg.Column{Name: "k", Type: relalg.KindString},
			relalg.Column{Name: "w", Type: relalg.KindNumber}))
		tdb := store.NewDB("srcT")
		ttab := tdb.MustCreateTable("t", relalg.NewSchema(
			relalg.Column{Name: "k", Type: relalg.KindString},
			relalg.Column{Name: "p", Type: relalg.KindNumber}))
		for i := 0; i < aRows; i++ {
			k := fmt.Sprintf("k%04d", i)
			atab.MustInsert(coin.StrV(k), coin.NumV(float64(i)))
			for j := 0; j < perK; j++ {
				ttab.MustInsert(coin.StrV(k), coin.NumV(float64(i*perK+j)))
			}
		}
		for i := 0; i < 5; i++ {
			btab.MustInsert(coin.StrV(fmt.Sprintf("k%04d", i)), coin.NumV(float64(i)))
		}
		aw := wrappertest.NewCounter(wrapper.NewRelational(adb))
		aw.RowEstimates = map[string]int{"a": 5}
		bw := wrappertest.NewCounter(wrapper.NewRelational(bdb))
		bw.RowEstimates = map[string]int{"b": 2000}
		tr := wrapper.NewRelational(tdb)
		tr.Require = map[string][]string{"t": {"k"}}
		tw := wrappertest.NewCounter(tr)
		tw.RowEstimates = map[string]int{"t": aRows * perK}
		cat := planner.NewCatalog()
		cat.MustAddSource(aw)
		cat.MustAddSource(bw)
		cat.MustAddSource(tw)
		return cat
	}
	q := sqlparse.MustParse("SELECT a.v, b.w, t.p FROM a, b, t WHERE t.k = a.k AND t.k = b.k")
	for _, mode := range []string{"adaptive", "greedy-static"} {
		b.Run("plan="+mode, func(b *testing.B) {
			cat := buildCat()
			ex := planner.NewExecutor(cat)
			if mode == "greedy-static" {
				ex.DisableReorder = true
				ex.AdaptiveStats = nil
			} else {
				// One warm-up execution teaches the stats store the real
				// cardinalities; the measured loop runs replanned queries.
				if _, err := ex.ExecuteCtx(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
			ex.ResetStats()
			var rows int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ex.ExecuteCtx(context.Background(), q)
				if err != nil {
					b.Fatal(err)
				}
				rows = res.Len()
			}
			b.StopTimer()
			if rows != 5*perK {
				b.Fatalf("rows = %d, want %d", rows, 5*perK)
			}
			st := ex.Stats()
			b.ReportMetric(float64(st.TuplesTransferred)/float64(b.N), "tuples-moved")
			b.ReportMetric(float64(st.SourceQueries)/float64(b.N), "source-queries")
		})
	}
}
