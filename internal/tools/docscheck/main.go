// Command docscheck enforces the repository's documentation floor: every
// Go package (including main packages — commands and examples) must carry
// a package-level doc comment. It is the `make docs-check` CI gate.
//
// Usage:
//
//	go run ./internal/tools/docscheck [root]
//
// It walks root (default ".") for directories containing non-test Go
// files, parses only package clauses and comments, and exits non-zero
// listing every package whose files all lack a package doc comment.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}

	var missing []string
	paths := make([]string, 0, len(dirs))
	for d := range dirs {
		paths = append(paths, d)
	}
	sort.Strings(paths)
	for _, dir := range paths {
		documented, pkgName, err := dirHasPackageDoc(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		if !documented {
			missing = append(missing, fmt.Sprintf("%s (package %s)", dir, pkgName))
		}
	}
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "docscheck: packages without a package doc comment:")
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  ", m)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented\n", len(paths))
}

// dirHasPackageDoc reports whether any non-test Go file in dir carries a
// doc comment on its package clause.
func dirHasPackageDoc(dir string) (bool, string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, "", err
	}
	pkgName := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, "", err
		}
		pkgName = f.Name.Name
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, pkgName, nil
		}
	}
	return false, pkgName, nil
}
