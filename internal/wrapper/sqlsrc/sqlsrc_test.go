package sqlsrc

import (
	"context"
	"strings"
	"testing"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

func strCol(n string) relalg.Column  { return relalg.Column{Name: n, Type: relalg.KindString} }
func numCol(n string) relalg.Column  { return relalg.Column{Name: n, Type: relalg.KindNumber} }
func boolCol(n string) relalg.Column { return relalg.Column{Name: n, Type: relalg.KindBool} }

func newFixture(t *testing.T) (*Source, *MemDriver) {
	t.Helper()
	db := store.NewDB("financedb")
	accounts := db.MustCreateTable("accounts",
		relalg.NewSchema(strCol("cname"), numCol("expenses"), strCol("currency"), boolCol("audited")))
	accounts.MustInsert(relalg.StrV("IBM"), relalg.NumV(5000000), relalg.StrV("USD"), relalg.BoolV(true))
	accounts.MustInsert(relalg.StrV("NTT"), relalg.NumV(3000000), relalg.StrV("JPY"), relalg.BoolV(true))
	accounts.MustInsert(relalg.StrV("SONY"), relalg.NumV(2500000), relalg.StrV("JPY"), relalg.BoolV(false))
	accounts.MustInsert(relalg.StrV("DT"), relalg.NumV(2000000), relalg.StrV("DEM"), relalg.BoolV(true))
	accounts.MustInsert(relalg.StrV("BT"), relalg.Null, relalg.StrV("GBP"), relalg.BoolV(false))
	fx := db.MustCreateTable("fx", relalg.NewSchema(strCol("cur"), numCol("usd")))
	fx.MustInsert(relalg.StrV("USD"), relalg.NumV(1))
	fx.MustInsert(relalg.StrV("JPY"), relalg.NumV(0.0091))
	fx.MustInsert(relalg.StrV("DEM"), relalg.NumV(0.58))
	fx.MustInsert(relalg.StrV("GBP"), relalg.NumV(1.62))

	sqldb, drv := OpenMem(db)
	t.Cleanup(func() { sqldb.Close() })
	src := New("finance", sqldb).
		AddRelation("accounts", relalg.NewSchema(strCol("cname"), numCol("expenses"), strCol("currency"), boolCol("audited"))).
		AddRelation("fx", relalg.NewSchema(strCol("cur"), numCol("usd")))
	return src, drv
}

func lastStatement(t *testing.T, drv *MemDriver) string {
	t.Helper()
	stmts := drv.Statements()
	if len(stmts) == 0 {
		t.Fatal("no statements reached the driver")
	}
	return stmts[len(stmts)-1]
}

func TestPushdownCompilesToSQL(t *testing.T) {
	src, drv := newFixture(t)
	rel, err := src.Query(context.Background(), wrapper.SourceQuery{
		Relation: "accounts",
		Columns:  []string{"cname", "expenses"},
		Filters: []wrapper.Filter{
			{Column: "currency", Op: "=", Value: relalg.StrV("JPY")},
			{Column: "expenses", Op: ">", Value: relalg.NumV(2600000)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 1 || rel.Tuples[0][0].S != "NTT" {
		t.Fatalf("rows = %v, want just NTT", rel.Tuples)
	}
	got := lastStatement(t, drv)
	want := `SELECT "cname", "expenses" FROM "accounts" WHERE "currency" = ? AND "expenses" > ?`
	if got != want {
		t.Fatalf("served SQL = %q, want %q", got, want)
	}
}

func TestInListCompilesToSQL(t *testing.T) {
	src, drv := newFixture(t)
	rel, err := src.Query(context.Background(), wrapper.SourceQuery{
		Relation: "fx",
		Filters: []wrapper.Filter{{Column: "cur", Op: wrapper.OpIn, Values: []relalg.Value{
			relalg.StrV("JPY"), relalg.StrV("GBP"), relalg.StrV("XXX"),
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 2 {
		t.Fatalf("IN query returned %d rows, want 2: %v", len(rel.Tuples), rel.Tuples)
	}
	got := lastStatement(t, drv)
	if !strings.Contains(got, `"cur" IN (?, ?, ?)`) {
		t.Fatalf("served SQL %q should contain a 3-wide IN list", got)
	}
}

func TestStatserAndRowEstimateProbes(t *testing.T) {
	src, drv := newFixture(t)
	n, ok := src.DistinctCount(context.Background(), "accounts", "currency")
	if !ok || n != 4 {
		t.Fatalf("DistinctCount(currency) = %d, %v; want 4", n, ok)
	}
	if got, want := lastStatement(t, drv), `SELECT COUNT(DISTINCT "currency") FROM "accounts"`; got != want {
		t.Fatalf("served SQL = %q, want %q", got, want)
	}
	if rows := src.EstimateRows(context.Background(), "accounts"); rows != 5 {
		t.Fatalf("EstimateRows = %d, want 5", rows)
	}
	if got, want := lastStatement(t, drv), `SELECT COUNT(*) FROM "accounts"`; got != want {
		t.Fatalf("served SQL = %q, want %q", got, want)
	}
	// Both probes are cached: repeating them must not reach the server.
	before := len(drv.Statements())
	if _, ok := src.DistinctCount(context.Background(), "accounts", "currency"); !ok {
		t.Fatal("cached DistinctCount lost")
	}
	if src.EstimateRows(context.Background(), "accounts") != 5 {
		t.Fatal("cached row estimate changed")
	}
	if after := len(drv.Statements()); after != before {
		t.Fatalf("cached probes still hit the server (%d -> %d statements)", before, after)
	}
}

func TestStatProbesHonorContext(t *testing.T) {
	src, drv := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before any probe starts
	if rows := src.EstimateRows(ctx, "accounts"); rows != 0 {
		t.Fatalf("EstimateRows under a canceled context = %d, want 0 (degraded)", rows)
	}
	if _, ok := src.DistinctCount(ctx, "accounts", "currency"); ok {
		t.Fatal("DistinctCount under a canceled context should report unknown")
	}
	for _, stmt := range drv.Statements() {
		if strings.Contains(stmt, "COUNT") {
			t.Fatalf("canceled probe still reached the server: %q", stmt)
		}
	}
	// The failed probes must not poison the cache: a live context probes
	// for real and caches the genuine answers.
	if rows := src.EstimateRows(context.Background(), "accounts"); rows != 5 {
		t.Fatalf("EstimateRows after cancellation recovery = %d, want 5", rows)
	}
	if n, ok := src.DistinctCount(context.Background(), "accounts", "currency"); !ok || n != 4 {
		t.Fatalf("DistinctCount after cancellation recovery = %d, %v; want 4", n, ok)
	}
}

func TestCapabilitiesAdvertiseBatchedInList(t *testing.T) {
	src, _ := newFixture(t)
	caps, err := src.Capabilities("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if !caps.Selection || !caps.Projection || !caps.InList || caps.BatchSize != DefaultBatch {
		t.Fatalf("capabilities = %+v, want full pushdown with batch %d", caps, DefaultBatch)
	}
	if _, err := src.Capabilities("ghost"); err == nil {
		t.Fatal("Capabilities(ghost) should fail")
	}
}

func TestStreamingNullsAndEarlyClose(t *testing.T) {
	src, _ := newFixture(t)
	st, err := src.QueryStream(context.Background(), wrapper.SourceQuery{Relation: "accounts"})
	if err != nil {
		t.Fatal(err)
	}
	var sawNull, sawBool bool
	count := 0
	for {
		tup, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		if tup[1].IsNull() {
			sawNull = true
		}
		if tup[3].K == relalg.KindBool {
			sawBool = true
		}
	}
	if count != 5 || !sawNull || !sawBool {
		t.Fatalf("streamed %d rows (null=%v bool=%v), want 5 with NULL and bool round-trip", count, sawNull, sawBool)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Early close while rows remain must release the cursor cleanly.
	st2, err := src.QueryStream(context.Background(), wrapper.SourceQuery{Relation: "accounts"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st2.Next(); !ok || err != nil {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("early Close: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	src, _ := newFixture(t)
	ctx := context.Background()
	if _, err := src.Query(ctx, wrapper.SourceQuery{Relation: "ghost"}); err == nil {
		t.Fatal("unknown relation should fail")
	}
	if _, err := src.Query(ctx, wrapper.SourceQuery{
		Relation: "fx",
		Filters:  []wrapper.Filter{{Column: "ghost", Op: "=", Value: relalg.NumV(1)}},
	}); err == nil {
		t.Fatal("filter on unknown column should fail")
	}
	if _, err := src.Query(ctx, wrapper.SourceQuery{
		Relation: "fx",
		Filters:  []wrapper.Filter{{Column: "cur", Op: "~", Value: relalg.StrV("x")}},
	}); err == nil {
		t.Fatal("unsupported operator should fail")
	}
	if _, err := src.Query(ctx, wrapper.SourceQuery{
		Relation: "fx",
		Filters:  []wrapper.Filter{{Column: "cur", Op: wrapper.OpIn}},
	}); err == nil {
		t.Fatal("empty IN list should fail")
	}
	src.AddRelation(`bad"name`, relalg.NewSchema(strCol("x")))
	if _, err := src.Query(ctx, wrapper.SourceQuery{Relation: `bad"name`}); err == nil {
		t.Fatal("identifier that escapes quoting should fail")
	}
	if _, ok := src.DistinctCount(context.Background(), "fx", "ghost"); ok {
		t.Fatal("DistinctCount on unknown column should report unknown")
	}
}

func TestRequiredBindingsEnforced(t *testing.T) {
	src, drv := newFixture(t)
	src.Require = map[string][]string{"fx": {"cur"}}
	caps, err := src.Capabilities("fx")
	if err != nil {
		t.Fatal(err)
	}
	if len(caps.RequiredBindings) != 1 || caps.RequiredBindings[0] != "cur" {
		t.Fatalf("capabilities = %+v, want cur required", caps)
	}
	before := len(drv.Statements())
	if _, err := src.Query(context.Background(), wrapper.SourceQuery{Relation: "fx"}); err == nil {
		t.Fatal("unbound query on required relation should fail")
	}
	if len(drv.Statements()) != before {
		t.Fatal("unbound query should be refused before reaching the server")
	}
	// An IN-list covers the binding — the batched bind-join form.
	rel, err := src.Query(context.Background(), wrapper.SourceQuery{
		Relation: "fx",
		Filters: []wrapper.Filter{{Column: "cur", Op: wrapper.OpIn,
			Values: []relalg.Value{relalg.StrV("JPY"), relalg.StrV("USD")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 2 {
		t.Fatalf("bound IN query = %v, want 2 rows", rel.Tuples)
	}
}

func TestMemDriverRejectsUnsupportedSQL(t *testing.T) {
	_, drv := newFixture(t)
	for _, bad := range []string{
		`UPDATE "fx" SET "usd" = ?`,
		`SELECT "cur" FROM "fx" ORDER BY "cur"`,
		`SELECT cur FROM "fx"`,
	} {
		if _, err := parseMemSQL(bad); err == nil {
			t.Errorf("parseMemSQL(%q) should fail", bad)
		}
	}
	drv.Reset()
	if got := drv.Statements(); len(got) != 0 {
		t.Fatalf("Reset left statements: %v", got)
	}
}
