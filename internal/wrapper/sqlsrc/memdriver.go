package sqlsrc

// An in-process database/sql/driver backed by a store.DB, so the SQL
// wrapper's pushdown path — filter compilation, IN-lists, COUNT(DISTINCT)
// statistics probes — is exercised through the real database/sql plumbing
// (Prepare, placeholder binding, driver.Rows) without cgo, containers, or
// a third-party driver. The driver accepts exactly the restricted SQL the
// wrapper emits (single-relation SELECT with ?-placeholder conjuncts and
// the two COUNT forms), parses it back into wrapper.Filter terms, and
// evaluates against the store through the same shared filter machinery
// every other wrapper uses. Every served statement is recorded, so tests
// can assert that pushdown really reached the "database".

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// MemDriver is the driver instance; it doubles as the test observer for
// the statements that reached it.
type MemDriver struct {
	db *store.DB

	mu    sync.Mutex
	stmts []string
}

// memRegistered numbers driver registrations: sql.Register panics on a
// duplicate name, and every OpenMem carries its own backing store.
var memRegistered atomic.Int64

// OpenMem registers a fresh in-process driver over db and opens a
// database/sql handle on it. The returned MemDriver records every
// statement served, for pushdown assertions.
func OpenMem(db *store.DB) (*sql.DB, *MemDriver) {
	d := &MemDriver{db: db}
	name := fmt.Sprintf("coinmem-%d", memRegistered.Add(1))
	sql.Register(name, d)
	sqldb, err := sql.Open(name, db.Name)
	if err != nil {
		// Unreachable: the driver name was just registered.
		panic(fmt.Sprintf("sqlsrc: opening registered driver: %v", err))
	}
	return sqldb, d
}

// Statements snapshots the SQL statements served so far, in order.
func (d *MemDriver) Statements() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.stmts...)
}

// Reset clears the recorded statements.
func (d *MemDriver) Reset() {
	d.mu.Lock()
	d.stmts = nil
	d.mu.Unlock()
}

func (d *MemDriver) record(s string) {
	d.mu.Lock()
	d.stmts = append(d.stmts, s)
	d.mu.Unlock()
}

// Open implements driver.Driver.
func (d *MemDriver) Open(string) (driver.Conn, error) { return &memConn{d: d}, nil }

// memConn is a stateless connection; all state lives in the store.
type memConn struct{ d *MemDriver }

// Prepare implements driver.Conn.
func (c *memConn) Prepare(query string) (driver.Stmt, error) {
	parsed, err := parseMemSQL(query)
	if err != nil {
		return nil, err
	}
	return &memStmt{d: c.d, text: query, q: parsed}, nil
}

// Close implements driver.Conn.
func (c *memConn) Close() error { return nil }

// Begin implements driver.Conn; the fixture is read-only.
func (c *memConn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqlsrc: memdriver does not support transactions")
}

// memStmt is one prepared statement.
type memStmt struct {
	d    *MemDriver
	text string
	q    *memQuery
}

func (s *memStmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *memStmt) NumInput() int { return s.q.placeholders }

// Exec implements driver.Stmt; the fixture is read-only.
func (s *memStmt) Exec([]driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("sqlsrc: memdriver is read-only")
}

// Query implements driver.Stmt: bind the placeholder values, evaluate
// against the store, record the served statement.
func (s *memStmt) Query(args []driver.Value) (driver.Rows, error) {
	s.d.record(s.text)
	rel, err := s.q.run(s.d.db, args)
	if err != nil {
		return nil, err
	}
	return &memRows{rel: rel}, nil
}

// memRows adapts a materialized relation to driver.Rows.
type memRows struct {
	rel *relalg.Relation
	pos int
}

func (r *memRows) Columns() []string { return r.rel.Schema.Names() }

func (r *memRows) Close() error { return nil }

func (r *memRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rel.Tuples) {
		return io.EOF
	}
	t := r.rel.Tuples[r.pos]
	r.pos++
	for i, v := range t {
		switch v.K {
		case relalg.KindNull:
			dest[i] = nil
		case relalg.KindNumber:
			dest[i] = v.N
		case relalg.KindBool:
			dest[i] = v.B
		default:
			dest[i] = v.S
		}
	}
	return nil
}

// memQuery is the parsed form of one accepted statement.
type memQuery struct {
	relation     string
	columns      []string // nil: count query
	countCol     string   // "" unless COUNT(DISTINCT col); "*" for COUNT(*)
	isCount      bool
	filters      []memFilter
	placeholders int
}

// memFilter is one WHERE conjunct with placeholder slots.
type memFilter struct {
	column string
	op     string // comparison op, or wrapper.OpIn
	args   int    // placeholder count (1, or the IN-list width)
}

// run binds args into the filters and evaluates.
func (q *memQuery) run(db *store.DB, args []driver.Value) (*relalg.Relation, error) {
	if len(args) != q.placeholders {
		return nil, fmt.Errorf("sqlsrc: %d args for %d placeholders", len(args), q.placeholders)
	}
	t, err := db.Table(q.relation)
	if err != nil {
		return nil, err
	}
	filters := make([]wrapper.Filter, 0, len(q.filters))
	next := 0
	for _, f := range q.filters {
		wf := wrapper.Filter{Column: f.column, Op: f.op}
		if f.op == wrapper.OpIn {
			for i := 0; i < f.args; i++ {
				wf.Values = append(wf.Values, driverValue(args[next]))
				next++
			}
		} else {
			wf.Value = driverValue(args[next])
			next++
		}
		filters = append(filters, wf)
	}
	rel, err := wrapper.ApplyFilters(t.Scan(), filters)
	if err != nil {
		return nil, err
	}
	if q.isCount {
		n := len(rel.Tuples)
		if q.countCol != "*" {
			ci := rel.Schema.Index(q.countCol)
			if ci < 0 {
				return nil, fmt.Errorf("sqlsrc: %s has no column %s", q.relation, q.countCol)
			}
			seen := map[string]bool{}
			for _, tup := range rel.Tuples {
				if !tup[ci].IsNull() {
					seen[tup[ci].Key()] = true
				}
			}
			n = len(seen)
		}
		out := relalg.NewRelation("count", relalg.NewSchema(relalg.Column{Name: "n", Type: relalg.KindNumber}))
		out.Tuples = append(out.Tuples, relalg.Tuple{relalg.NumV(float64(n))})
		return out, nil
	}
	return wrapper.ProjectColumns(rel, q.columns)
}

// driverValue converts a bound driver.Value to a relalg.Value.
func driverValue(v driver.Value) relalg.Value {
	switch v := v.(type) {
	case nil:
		return relalg.Null
	case int64:
		return relalg.NumV(float64(v))
	case float64:
		return relalg.NumV(v)
	case bool:
		return relalg.BoolV(v)
	case []byte:
		return relalg.StrV(string(v))
	case string:
		return relalg.StrV(v)
	default:
		return relalg.StrV(fmt.Sprint(v))
	}
}

// parseMemSQL parses the restricted dialect the wrapper emits. Grammar:
//
//	SELECT "c1", "c2" FROM "rel" [WHERE cond [AND cond]...]
//	SELECT COUNT(*) FROM "rel" [WHERE ...]
//	SELECT COUNT(DISTINCT "col") FROM "rel"
//	cond := "col" (= | <> | < | <= | > | >=) ?  |  "col" IN (?, ?, ...)
func parseMemSQL(text string) (*memQuery, error) {
	tk := &memTokens{src: text}
	q := &memQuery{}
	if err := tk.keyword("SELECT"); err != nil {
		return nil, err
	}
	if tk.accept("COUNT") {
		q.isCount = true
		if err := tk.punct("("); err != nil {
			return nil, err
		}
		if tk.accept("*") {
			q.countCol = "*"
		} else {
			if err := tk.keyword("DISTINCT"); err != nil {
				return nil, err
			}
			col, err := tk.ident()
			if err != nil {
				return nil, err
			}
			q.countCol = col
		}
		if err := tk.punct(")"); err != nil {
			return nil, err
		}
	} else {
		for {
			col, err := tk.ident()
			if err != nil {
				return nil, err
			}
			q.columns = append(q.columns, col)
			if !tk.accept(",") {
				break
			}
		}
	}
	if err := tk.keyword("FROM"); err != nil {
		return nil, err
	}
	rel, err := tk.ident()
	if err != nil {
		return nil, err
	}
	q.relation = rel
	if tk.accept("WHERE") {
		for {
			f, err := tk.cond()
			if err != nil {
				return nil, err
			}
			q.filters = append(q.filters, f)
			q.placeholders += f.args
			if !tk.accept("AND") {
				break
			}
		}
	}
	if !tk.done() {
		return nil, fmt.Errorf("sqlsrc: trailing input in %q", text)
	}
	return q, nil
}

// memTokens is a minimal tokenizer over the restricted dialect.
type memTokens struct {
	src string
	pos int
}

func (t *memTokens) skipSpace() {
	for t.pos < len(t.src) && (t.src[t.pos] == ' ' || t.src[t.pos] == '\t' || t.src[t.pos] == '\n') {
		t.pos++
	}
}

func (t *memTokens) done() bool {
	t.skipSpace()
	return t.pos >= len(t.src)
}

// peekWord reads the next bare word without consuming it.
func (t *memTokens) peekWord() (string, int) {
	t.skipSpace()
	i := t.pos
	for i < len(t.src) {
		c := t.src[i]
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_' || c == '*' || c == ',' && i == t.pos {
			if c == ',' || c == '*' {
				if i == t.pos {
					i++
				}
				break
			}
			i++
			continue
		}
		break
	}
	return t.src[t.pos:i], i
}

// accept consumes the token when it matches (case-insensitive for words).
func (t *memTokens) accept(tok string) bool {
	w, end := t.peekWord()
	if strings.EqualFold(w, tok) && w != "" {
		t.pos = end
		return true
	}
	return false
}

func (t *memTokens) keyword(kw string) error {
	if !t.accept(kw) {
		return fmt.Errorf("sqlsrc: expected %s at %q", kw, t.src[t.pos:])
	}
	return nil
}

func (t *memTokens) punct(p string) error {
	t.skipSpace()
	if strings.HasPrefix(t.src[t.pos:], p) {
		t.pos += len(p)
		return nil
	}
	return fmt.Errorf("sqlsrc: expected %q at %q", p, t.src[t.pos:])
}

// ident reads a double-quoted identifier.
func (t *memTokens) ident() (string, error) {
	t.skipSpace()
	if t.pos >= len(t.src) || t.src[t.pos] != '"' {
		return "", fmt.Errorf("sqlsrc: expected quoted identifier at %q", t.src[t.pos:])
	}
	end := strings.IndexByte(t.src[t.pos+1:], '"')
	if end < 0 {
		return "", fmt.Errorf("sqlsrc: unterminated identifier at %q", t.src[t.pos:])
	}
	name := t.src[t.pos+1 : t.pos+1+end]
	t.pos += end + 2
	return name, nil
}

// cond parses one WHERE conjunct.
func (t *memTokens) cond() (memFilter, error) {
	col, err := t.ident()
	if err != nil {
		return memFilter{}, err
	}
	t.skipSpace()
	if t.accept("IN") {
		if err := t.punct("("); err != nil {
			return memFilter{}, err
		}
		n := 0
		for {
			if err := t.punct("?"); err != nil {
				return memFilter{}, err
			}
			n++
			if !t.accept(",") {
				break
			}
		}
		if err := t.punct(")"); err != nil {
			return memFilter{}, err
		}
		return memFilter{column: col, op: wrapper.OpIn, args: n}, nil
	}
	op := ""
	for _, cand := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if strings.HasPrefix(t.src[t.pos:], cand) {
			op = cand
			t.pos += len(cand)
			break
		}
	}
	if op == "" {
		return memFilter{}, fmt.Errorf("sqlsrc: expected comparison operator at %q", t.src[t.pos:])
	}
	if err := t.punct("?"); err != nil {
		return memFilter{}, err
	}
	return memFilter{column: col, op: op, args: 1}, nil
}
