// Package sqlsrc wraps a database/sql backend as a COIN source. It is the
// "capable relational server" point in the backend matrix: pushed filters,
// IN-lists from bind-join batching, and Statser distinct-count probes are
// all compiled to SQL text and executed on the database, so the mediator
// ships predicates instead of rows. Results stream straight off *sql.Rows.
//
// The wrapper speaks a deliberately small SQL dialect — single-relation
// SELECT with ?-placeholder conjuncts, plus COUNT(*) and COUNT(DISTINCT)
// probes — which keeps it portable across drivers and lets the hermetic
// in-process fixture (memdriver.go) parse everything it emits.
package sqlsrc

import (
	"context"
	"database/sql"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// DefaultCost models a networked database server: each round trip costs
// real latency, but the server filters cheaply and streams rows fast.
var DefaultCost = wrapper.Cost{PerQuery: 25, PerTuple: 0.05, MaxConcurrent: 4}

// The source speaks the full wrapper protocol: streaming and statistics
// on top of the materialized core.
var (
	_ wrapper.Wrapper  = (*Source)(nil)
	_ wrapper.Streamer = (*Source)(nil)
	_ wrapper.Statser  = (*Source)(nil)
)

// DefaultBatch is the IN-list width advertised to the bind-join planner.
const DefaultBatch = 8

// Source adapts one *sql.DB to the wrapper protocol. Relations must be
// declared up front with AddRelation; schema discovery is out of scope
// for the restricted dialect.
type Source struct {
	name string
	db   *sql.DB

	// CostParams and Batch may be adjusted before the source is registered.
	CostParams wrapper.Cost
	Batch      int
	// Require maps relation name to columns every query must bind — the
	// capability record of a keyed lookup service. The planner satisfies
	// required bindings by bind join, and because the source takes
	// IN-lists, probes arrive batched Batch-wide.
	Require map[string][]string

	mu       sync.Mutex
	rels     map[string]relalg.Schema
	rowEst   map[string]int
	distinct map[string]int
}

// New wraps db under the given source name.
func New(name string, db *sql.DB) *Source {
	return &Source{
		name:       name,
		db:         db,
		CostParams: DefaultCost,
		Batch:      DefaultBatch,
		rels:       map[string]relalg.Schema{},
		rowEst:     map[string]int{},
		distinct:   map[string]int{},
	}
}

// AddRelation declares a relation and its schema. Returns the source for
// chaining.
func (s *Source) AddRelation(name string, schema relalg.Schema) *Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rels[name] = schema
	return s
}

// Source implements wrapper.Wrapper.
func (s *Source) Source() string { return s.name }

// Relations implements wrapper.Wrapper.
func (s *Source) Relations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema implements wrapper.Wrapper.
func (s *Source) Schema(relation string) (relalg.Schema, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	schema, ok := s.rels[relation]
	if !ok {
		return relalg.Schema{}, fmt.Errorf("sqlsrc: source %s has no relation %s", s.name, relation)
	}
	return schema, nil
}

// Capabilities implements wrapper.Wrapper: the server evaluates pushed
// conjuncts, projects columns, and accepts IN-lists for batched bind joins.
func (s *Source) Capabilities(relation string) (wrapper.Capabilities, error) {
	if _, err := s.Schema(relation); err != nil {
		return wrapper.Capabilities{}, err
	}
	return wrapper.Capabilities{
		Selection:        true,
		Projection:       true,
		InList:           true,
		BatchSize:        s.Batch,
		RequiredBindings: append([]string(nil), s.Require[relation]...),
	}, nil
}

// Cost implements wrapper.Wrapper.
func (s *Source) Cost() wrapper.Cost { return s.CostParams }

// ProbeTimeout bounds one stat probe (COUNT(*) / COUNT(DISTINCT)) on top
// of the caller's context: planning should never hang on a slow server
// for an estimate that is best-effort anyway.
const ProbeTimeout = 5 * time.Second

// probeCtx derives the bounded probe context from the planning session's.
func probeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		//lint:allow ctxflow nil-context callers (direct wrapper use in tools) still get the probe timeout bound
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, ProbeTimeout)
}

// EstimateRows implements wrapper.Wrapper via a cached COUNT(*) probe
// bounded by ctx plus ProbeTimeout — killing the planning session stops
// its probes. Estimation is best-effort: probe failures report zero rows
// rather than failing planning.
func (s *Source) EstimateRows(ctx context.Context, relation string) int {
	s.mu.Lock()
	if n, ok := s.rowEst[relation]; ok {
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	if _, err := s.Schema(relation); err != nil {
		return 0
	}
	pctx, cancel := probeCtx(ctx)
	defer cancel()
	n, err := s.countProbe(pctx, relation, "*")
	if err != nil {
		return 0
	}
	s.mu.Lock()
	s.rowEst[relation] = n
	s.mu.Unlock()
	return n
}

// DistinctCount implements wrapper.Statser via a cached COUNT(DISTINCT)
// probe, giving the optimizer real join selectivities from the server.
// The probe is bounded like EstimateRows's; failures report unknown
// rather than failing planning.
func (s *Source) DistinctCount(ctx context.Context, relation, column string) (int, bool) {
	key := relation + "\x00" + column
	s.mu.Lock()
	if n, ok := s.distinct[key]; ok {
		s.mu.Unlock()
		return n, true
	}
	s.mu.Unlock()
	schema, err := s.Schema(relation)
	if err != nil || schema.Index(column) < 0 {
		return 0, false
	}
	pctx, cancel := probeCtx(ctx)
	defer cancel()
	n, err := s.countProbe(pctx, relation, column)
	if err != nil {
		return 0, false
	}
	s.mu.Lock()
	s.distinct[key] = n
	s.mu.Unlock()
	return n, true
}

// countProbe runs COUNT(*) (col == "*") or COUNT(DISTINCT col).
func (s *Source) countProbe(ctx context.Context, relation, col string) (int, error) {
	target := "*"
	if col != "*" {
		q, err := quoteIdent(col)
		if err != nil {
			return 0, err
		}
		target = "DISTINCT " + q
	}
	rq, err := quoteIdent(relation)
	if err != nil {
		return 0, err
	}
	var n int
	row := s.db.QueryRowContext(ctx, fmt.Sprintf("SELECT COUNT(%s) FROM %s", target, rq))
	if err := row.Scan(&n); err != nil {
		return 0, wrapper.Transient(fmt.Errorf("sqlsrc: source %s: count probe on %s: %w", s.name, relation, err))
	}
	return n, nil
}

// Query implements wrapper.Wrapper by draining QueryStream.
func (s *Source) Query(ctx context.Context, q wrapper.SourceQuery) (*relalg.Relation, error) {
	st, err := s.QueryStream(ctx, q)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rel := relalg.NewRelation(q.Relation, st.Schema())
	for {
		tup, ok, err := st.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rel, nil
		}
		rel.Tuples = append(rel.Tuples, tup)
	}
}

// QueryStream implements wrapper.Streamer: compile the source query to
// SQL, execute it on the server, and stream rows off the cursor.
func (s *Source) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	schema, err := s.Schema(q.Relation)
	if err != nil {
		return nil, err
	}
	caps, err := s.Capabilities(q.Relation)
	if err != nil {
		return nil, err
	}
	if _, err := wrapper.CheckRequiredBindings(caps, q); err != nil {
		return nil, err
	}
	text, args, outSchema, err := compileQuery(schema, q)
	if err != nil {
		return nil, fmt.Errorf("sqlsrc: source %s: %w", s.name, err)
	}
	rows, err := s.db.QueryContext(ctx, text, args...)
	if err != nil {
		// The SQL text is machine-generated and the relation was resolved
		// above, so a query error here is server weather, not a bad query.
		return nil, wrapper.Transient(fmt.Errorf("sqlsrc: source %s: %w", s.name, err))
	}
	return &sqlStream{rows: rows, schema: outSchema}, nil
}

// compileQuery renders a SourceQuery in the restricted dialect. Returned
// args are bound positionally to the ? placeholders.
func compileQuery(schema relalg.Schema, q wrapper.SourceQuery) (string, []any, relalg.Schema, error) {
	outSchema := schema
	cols := q.Columns
	if len(cols) == 0 {
		cols = schema.Names()
	} else {
		picked := make([]relalg.Column, 0, len(cols))
		for _, c := range cols {
			i := schema.Index(c)
			if i < 0 {
				return "", nil, relalg.Schema{}, fmt.Errorf("relation %s has no column %s", q.Relation, c)
			}
			picked = append(picked, schema.Columns[i])
		}
		outSchema = relalg.NewSchema(picked...)
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		qc, err := quoteIdent(c)
		if err != nil {
			return "", nil, relalg.Schema{}, err
		}
		b.WriteString(qc)
	}
	rq, err := quoteIdent(q.Relation)
	if err != nil {
		return "", nil, relalg.Schema{}, err
	}
	b.WriteString(" FROM ")
	b.WriteString(rq)
	var args []any
	for i, f := range q.Filters {
		if schema.Index(f.Column) < 0 {
			return "", nil, relalg.Schema{}, fmt.Errorf("relation %s has no column %s", q.Relation, f.Column)
		}
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		fc, err := quoteIdent(f.Column)
		if err != nil {
			return "", nil, relalg.Schema{}, err
		}
		b.WriteString(fc)
		if f.Op == wrapper.OpIn {
			if len(f.Values) == 0 {
				return "", nil, relalg.Schema{}, fmt.Errorf("empty IN list on %s", f.Column)
			}
			b.WriteString(" IN (")
			for j, v := range f.Values {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString("?")
				args = append(args, sqlArg(v))
			}
			b.WriteString(")")
			continue
		}
		switch f.Op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return "", nil, relalg.Schema{}, fmt.Errorf("operator %q not supported", f.Op)
		}
		b.WriteString(" ")
		b.WriteString(f.Op)
		b.WriteString(" ?")
		args = append(args, sqlArg(f.Value))
	}
	return b.String(), args, outSchema, nil
}

// sqlArg converts a relalg.Value to a driver-bindable argument.
func sqlArg(v relalg.Value) any {
	switch v.K {
	case relalg.KindNumber:
		return v.N
	case relalg.KindBool:
		return v.B
	case relalg.KindNull:
		return nil
	default:
		return v.S
	}
}

// quoteIdent double-quotes an identifier, rejecting names that would
// escape the quoting.
func quoteIdent(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "\"\x00") {
		return "", fmt.Errorf("invalid identifier %q", name)
	}
	return `"` + name + `"`, nil
}

// sqlStream adapts *sql.Rows to wrapper.TupleStream, coercing driver
// values to the declared column kinds.
type sqlStream struct {
	rows   *sql.Rows
	schema relalg.Schema

	// Batch-mode state: reused scan destinations, per-batch arena, and an
	// error held back behind already-buffered rows.
	bb   *relalg.BatchBuilder
	raw  []any
	ptrs []any
	pend error
}

func (s *sqlStream) Schema() relalg.Schema { return s.schema }

func (s *sqlStream) Next() (relalg.Tuple, bool, error) {
	if !s.rows.Next() {
		if err := s.rows.Err(); err != nil {
			// A cursor dropped mid-stream is connection weather: transient.
			return nil, false, wrapper.Transient(fmt.Errorf("sqlsrc: cursor: %w", err))
		}
		return nil, false, nil
	}
	raw := make([]any, len(s.schema.Columns))
	ptrs := make([]any, len(raw))
	for i := range raw {
		ptrs[i] = &raw[i]
	}
	if err := s.rows.Scan(ptrs...); err != nil {
		// A scan failure means the delivered shape does not match the
		// declared schema; retrying re-fetches the same shape.
		return nil, false, wrapper.Permanent(fmt.Errorf("sqlsrc: scan: %w", err))
	}
	tup := make(relalg.Tuple, len(raw))
	for i, v := range raw {
		tup[i] = fromDBValue(v, s.schema.Columns[i].Type)
	}
	return tup, true, nil
}

// NextBatch implements wrapper.BatchStream: one cursor sweep per block,
// reusing the scan destinations across rows and building tuples in a
// per-batch value arena. A cursor or scan error after rows were buffered
// is held back until the following call, so no fetched row is lost.
func (s *sqlStream) NextBatch(max int) ([]relalg.Tuple, error) {
	if err := s.pend; err != nil {
		s.pend = nil
		return nil, err
	}
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	arity := len(s.schema.Columns)
	if s.bb == nil {
		s.bb = relalg.NewBatchBuilder(arity)
		s.raw = make([]any, arity)
		s.ptrs = make([]any, arity)
		for i := range s.raw {
			s.ptrs[i] = &s.raw[i]
		}
	}
	s.bb.Reset(max)
	for s.bb.Len() < max {
		if !s.rows.Next() {
			if err := s.rows.Err(); err != nil {
				s.pend = wrapper.Transient(fmt.Errorf("sqlsrc: cursor: %w", err))
			}
			break
		}
		if err := s.rows.Scan(s.ptrs...); err != nil {
			s.pend = wrapper.Permanent(fmt.Errorf("sqlsrc: scan: %w", err))
			break
		}
		tup := s.bb.Row()
		for i, v := range s.raw {
			tup[i] = fromDBValue(v, s.schema.Columns[i].Type)
		}
	}
	if s.bb.Len() == 0 && s.pend != nil {
		err := s.pend
		s.pend = nil
		return nil, err
	}
	return s.bb.Batch().Rows, nil
}

func (s *sqlStream) Close() error { return s.rows.Close() }

// fromDBValue coerces one scanned database value to a relalg.Value of the
// declared kind, tolerating the representations real drivers use (int64
// for numbers, []byte for text, 0/1 for booleans).
func fromDBValue(v any, want relalg.Kind) relalg.Value {
	switch v := v.(type) {
	case nil:
		return relalg.Null
	case int64:
		if want == relalg.KindBool {
			return relalg.BoolV(v != 0)
		}
		return relalg.NumV(float64(v))
	case float64:
		return relalg.NumV(v)
	case bool:
		return relalg.BoolV(v)
	case []byte:
		return relalg.StrV(string(v))
	case string:
		return relalg.StrV(v)
	default:
		return relalg.StrV(fmt.Sprint(v))
	}
}
