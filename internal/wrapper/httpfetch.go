package wrapper

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPFetcher fetches pages from a live HTTP server, making the Web
// wrapper operate exactly as the prototype's did against real Internet
// sites. URLs in wrapping specs are site-relative; BaseURL anchors them.
type HTTPFetcher struct {
	BaseURL string
	// Client defaults to a client with DefaultHTTPTimeout.
	Client *http.Client
	// MaxBodyBytes bounds one page read; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// DefaultHTTPTimeout bounds one page fetch.
const DefaultHTTPTimeout = 15 * time.Second

// DefaultMaxBodyBytes bounds one page body (a wrapper never needs more
// than a page's worth of HTML; a runaway response should not exhaust
// memory).
const DefaultMaxBodyBytes = 4 << 20

// NewHTTPFetcher builds a fetcher for a base URL.
func NewHTTPFetcher(baseURL string) *HTTPFetcher {
	return &HTTPFetcher{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Get implements Fetcher: the request carries ctx, so canceling the
// query aborts the page fetch at the socket.
func (h *HTTPFetcher) Get(ctx context.Context, url string) (string, error) {
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultHTTPTimeout}
	}
	full := url
	if strings.HasPrefix(url, "/") {
		full = h.BaseURL + url
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, full, nil)
	if err != nil {
		return "", fmt.Errorf("wrapper: GET %s: %w", full, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", fmt.Errorf("wrapper: GET %s: %w", full, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("wrapper: GET %s: %s", full, resp.Status)
	}
	limit := h.MaxBodyBytes
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return "", fmt.Errorf("wrapper: reading %s: %w", full, err)
	}
	return string(body), nil
}
