package wrapper

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPFetcher fetches pages from a live HTTP server, making the Web
// wrapper operate exactly as the prototype's did against real Internet
// sites. URLs in wrapping specs are site-relative; BaseURL anchors them.
type HTTPFetcher struct {
	BaseURL string
	// Client defaults to a client with DefaultHTTPTimeout.
	Client *http.Client
	// MaxBodyBytes bounds one page read; zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// DefaultHTTPTimeout bounds one page fetch.
const DefaultHTTPTimeout = 15 * time.Second

// DefaultMaxBodyBytes bounds one page body (a wrapper never needs more
// than a page's worth of HTML; a runaway response should not exhaust
// memory).
const DefaultMaxBodyBytes = 4 << 20

// NewHTTPFetcher builds a fetcher for a base URL.
func NewHTTPFetcher(baseURL string) *HTTPFetcher {
	return &HTTPFetcher{BaseURL: strings.TrimRight(baseURL, "/")}
}

// defaultHTTPClient backs every fetcher whose Client is nil. One shared
// client means one shared connection pool: consecutive page fetches
// against the same site reuse the keep-alive connection instead of
// re-dialing per page (a per-call client would discard its pool each
// time, and a crawl fetches many pages).
var defaultHTTPClient = &http.Client{Timeout: DefaultHTTPTimeout}

// Get implements Fetcher: the request carries ctx, so canceling the
// query aborts the page fetch at the socket. Failures are classified for
// the engine's retry machinery: transport errors and 5xx/408 responses
// as transient, 429 as rate-limited (honoring Retry-After), other
// non-200 statuses as permanent.
func (h *HTTPFetcher) Get(ctx context.Context, url string) (string, error) {
	client := h.Client
	if client == nil {
		client = defaultHTTPClient
	}
	full := url
	if strings.HasPrefix(url, "/") {
		full = h.BaseURL + url
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, full, nil)
	if err != nil {
		return "", fmt.Errorf("wrapper: GET %s: %w", full, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The query died, the source did not: no fault class.
			return "", fmt.Errorf("wrapper: GET %s: %w", full, err)
		}
		return "", Transient(fmt.Errorf("wrapper: GET %s: %w", full, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cause := fmt.Errorf("wrapper: GET %s: %s", full, resp.Status)
		return "", ClassifyHTTPStatus(resp.StatusCode, resp.Header.Get("Retry-After"), cause)
	}
	limit := h.MaxBodyBytes
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		if ctx.Err() != nil {
			return "", fmt.Errorf("wrapper: reading %s: %w", full, err)
		}
		return "", Transient(fmt.Errorf("wrapper: reading %s: %w", full, err))
	}
	return string(body), nil
}
