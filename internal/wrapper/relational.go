package wrapper

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/relalg"
	"repro/internal/store"
)

// Relational wraps an in-memory database as a full-capability source: it
// evaluates selections and projections remotely (i.e. inside the source),
// accepts IN-list disjunctions (so the engine can batch bind-join probes),
// and uses point indexes for equality and IN filters when available. It
// stands in for the paper's Oracle source.
type Relational struct {
	DB *store.DB
	// CostParams defaults to a LAN-ish profile when zero.
	CostParams Cost
	// BatchSize is the advertised IN-list width; zero means
	// DefaultBatchSize.
	BatchSize int
	// Require declares per-relation required bindings, simulating a
	// form-like relational endpoint (a stored procedure or keyed API)
	// that only answers when the listed columns are constrained. The
	// planner then feeds those columns through bind joins — which, since
	// the source is InList-capable, arrive batched.
	Require map[string][]string

	// distinct caches per-column distinct counts (Statser), invalidated
	// by table growth.
	distinctMu sync.Mutex
	distinct   map[string]distinctEntry
}

type distinctEntry struct{ rows, distinct int }

// NewRelational wraps a database.
func NewRelational(db *store.DB) *Relational {
	return &Relational{DB: db, CostParams: Cost{PerQuery: 10, PerTuple: 0.1}}
}

// Source implements Wrapper.
func (r *Relational) Source() string { return r.DB.Name }

// Relations implements Wrapper.
func (r *Relational) Relations() []string { return r.DB.TableNames() }

// Schema implements Wrapper.
func (r *Relational) Schema(relation string) (relalg.Schema, error) {
	t, err := r.DB.Table(relation)
	if err != nil {
		return relalg.Schema{}, err
	}
	return t.Schema, nil
}

// relationalMaxPartitions is the partition fan-out a Relational source
// advertises: the in-process store can slice a scan at any row, so the
// cap only bounds how many concurrent range queries one scan may become.
const relationalMaxPartitions = 64

// Capabilities implements Wrapper: a relational source does everything,
// including IN-list filters (batched bind-join probes) and
// range-partitioned scans (parallel scan fan-out).
func (r *Relational) Capabilities(relation string) (Capabilities, error) {
	if _, err := r.DB.Table(relation); err != nil {
		return Capabilities{}, err
	}
	return Capabilities{
		Selection:        true,
		Projection:       true,
		InList:           true,
		BatchSize:        r.BatchSize,
		RequiredBindings: append([]string(nil), r.Require[relation]...),
		Partitions:       relationalMaxPartitions,
	}, nil
}

// EstimateRows implements Wrapper. The store is in-process, so the
// answer is exact and the probe context is never consulted.
func (r *Relational) EstimateRows(_ context.Context, relation string) int {
	t, err := r.DB.Table(relation)
	if err != nil {
		return 0
	}
	return t.Len()
}

// Cost implements Wrapper.
func (r *Relational) Cost() Cost {
	if r.CostParams == (Cost{}) {
		return Cost{PerQuery: 10, PerTuple: 0.1}
	}
	return r.CostParams
}

// DistinctCount implements the optional Statser extension: the number of
// distinct values in a column, computed from the table and cached until
// the table's cardinality changes.
func (r *Relational) DistinctCount(_ context.Context, relation, column string) (int, bool) {
	t, err := r.DB.Table(relation)
	if err != nil {
		return 0, false
	}
	ci := t.Schema.Index(column)
	if ci < 0 {
		return 0, false
	}
	rows := t.Len()
	key := relation + "\x00" + column
	r.distinctMu.Lock()
	if e, ok := r.distinct[key]; ok && e.rows == rows {
		r.distinctMu.Unlock()
		return e.distinct, true
	}
	r.distinctMu.Unlock()
	seen := map[string]bool{}
	for _, tup := range t.Scan().Tuples {
		seen[tup[ci].Key()] = true
	}
	n := len(seen)
	r.distinctMu.Lock()
	if r.distinct == nil {
		r.distinct = map[string]distinctEntry{}
	}
	r.distinct[key] = distinctEntry{rows: rows, distinct: n}
	r.distinctMu.Unlock()
	return n, true
}

// scanFor snapshots the candidate rows for q — an index lookup when the
// first indexed equality (or IN-list) filter allows it, a full scan
// otherwise — along with the filters still to apply. An indexed IN
// concatenates the per-value lookups in list order; equality on distinct
// values partitions, so no row repeats.
func (r *Relational) scanFor(q SourceQuery) (*relalg.Relation, []Filter, error) {
	t, err := r.DB.Table(q.Relation)
	if err != nil {
		return nil, nil, err
	}
	if q.Partitions > 1 {
		// A partitioned query answers one contiguous range of the base
		// scan order, so the parts concatenate to exactly the
		// unpartitioned scan. Index lookups reorder rows and are skipped:
		// every filter is applied to the sliced range instead.
		base := t.Scan()
		lo, hi := PartitionRange(len(base.Tuples), q.Partitions, q.Partition)
		part := relalg.NewRelation(q.Relation, base.Schema)
		part.Tuples = base.Tuples[lo:hi]
		return part, q.Filters, nil
	}
	var rel *relalg.Relation
	used := -1
	for i, f := range q.Filters {
		if !t.HasIndex(f.Column) {
			continue
		}
		if f.Op == "=" {
			rel, err = t.Lookup(f.Column, f.Value)
			if err != nil {
				return nil, nil, err
			}
			used = i
			break
		}
		if f.Op == OpIn {
			rel = relalg.NewRelation(q.Relation, t.Schema)
			seen := map[string]bool{}
			for _, v := range f.Values {
				if seen[v.Key()] {
					continue
				}
				seen[v.Key()] = true
				part, err := t.Lookup(f.Column, v)
				if err != nil {
					return nil, nil, err
				}
				rel.Tuples = append(rel.Tuples, part.Tuples...)
			}
			used = i
			break
		}
	}
	if rel == nil {
		rel = t.Scan()
	}
	rest := make([]Filter, 0, len(q.Filters))
	for i, f := range q.Filters {
		if i != used {
			rest = append(rest, f)
		}
	}
	return rel, rest, nil
}

// checkRequire enforces the relation's declared required bindings, the
// way the Web wrapper does through CheckRequiredBindings: a form-like
// endpoint must not silently answer an unconstrained query with a full
// scan.
func (r *Relational) checkRequire(q SourceQuery) error {
	if len(r.Require[q.Relation]) == 0 {
		return nil
	}
	caps, err := r.Capabilities(q.Relation)
	if err != nil {
		return err
	}
	_, err = CheckRequiredBindings(caps, q)
	return err
}

// Query implements Wrapper.
func (r *Relational) Query(ctx context.Context, q SourceQuery) (*relalg.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.checkRequire(q); err != nil {
		return nil, err
	}
	rel, rest, err := r.scanFor(q)
	if err != nil {
		return nil, err
	}
	rel, err = ApplyFilters(rel, rest)
	if err != nil {
		return nil, fmt.Errorf("wrapper: source %s: %w", r.Source(), err)
	}
	return ProjectColumns(rel, q.Columns)
}

// QueryStream implements Streamer: selection and projection are applied
// per tuple as the engine pulls, so an engine-side early exit (LIMIT)
// stops the transfer after O(limit) tuples instead of shipping the whole
// answer.
func (r *Relational) QueryStream(ctx context.Context, q SourceQuery) (TupleStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.checkRequire(q); err != nil {
		return nil, err
	}
	rel, rest, err := r.scanFor(q)
	if err != nil {
		return nil, err
	}
	match, err := Matcher(rel.Schema, rest)
	if err != nil {
		return nil, fmt.Errorf("wrapper: source %s: %w", r.Source(), err)
	}
	// Resolve the projection once.
	projIdx := []int(nil)
	schema := rel.Schema
	if len(q.Columns) > 0 {
		if projIdx, schema, err = resolveProjection(rel.Schema, q.Columns); err != nil {
			return nil, err
		}
	}
	return &relationalStream{ctx: ctx, rel: rel, match: match, projIdx: projIdx, schema: schema}, nil
}

// relationalStream streams a snapshot of a table, filtering and
// projecting lazily; it stops with ctx.Err() once the query's context
// dies, so an abandoned query transfers no further tuples.
type relationalStream struct {
	ctx     context.Context
	rel     *relalg.Relation
	match   func(relalg.Tuple) (bool, error)
	projIdx []int
	schema  relalg.Schema
	pos     int
	out     []relalg.Tuple       // reused row buffer for filtered batches
	bb      *relalg.BatchBuilder // arena for projected batches
}

func (s *relationalStream) Schema() relalg.Schema { return s.schema }

func (s *relationalStream) Next() (relalg.Tuple, bool, error) {
	for s.pos < len(s.rel.Tuples) {
		if err := s.ctx.Err(); err != nil {
			return nil, false, err
		}
		t := s.rel.Tuples[s.pos]
		s.pos++
		ok, err := s.match(t)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		if s.projIdx == nil {
			return t, true, nil
		}
		row := make(relalg.Tuple, len(s.projIdx))
		for i, ci := range s.projIdx {
			row[i] = t[ci]
		}
		return row, true, nil
	}
	return nil, false, nil
}

// NextBatch implements BatchStream: one context check and one
// filter/projection sweep per block of rows, with projected rows built in
// a per-batch value arena.
func (s *relationalStream) NextBatch(max int) ([]relalg.Tuple, error) {
	if s.pos >= len(s.rel.Tuples) {
		return nil, nil
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	if s.projIdx != nil && s.bb == nil {
		s.bb = relalg.NewBatchBuilder(len(s.projIdx))
	}
	for s.pos < len(s.rel.Tuples) {
		if s.projIdx == nil {
			s.out = s.out[:0]
		} else {
			s.bb.Reset(max)
		}
		n := 0
		for s.pos < len(s.rel.Tuples) && n < max {
			t := s.rel.Tuples[s.pos]
			s.pos++
			ok, err := s.match(t)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			n++
			if s.projIdx == nil {
				s.out = append(s.out, t)
				continue
			}
			row := s.bb.Row()
			for i, ci := range s.projIdx {
				row[i] = t[ci]
			}
		}
		if n > 0 {
			if s.projIdx == nil {
				return s.out, nil
			}
			return s.bb.Batch().Rows, nil
		}
	}
	return nil, nil
}

func (s *relationalStream) Close() error { return nil }
