package wrapper

import (
	"fmt"

	"repro/internal/relalg"
	"repro/internal/store"
)

// Relational wraps an in-memory database as a full-capability source: it
// evaluates selections and projections remotely (i.e. inside the source)
// and uses point indexes for equality filters when available. It stands in
// for the paper's Oracle source.
type Relational struct {
	DB *store.DB
	// CostParams defaults to a LAN-ish profile when zero.
	CostParams Cost
}

// NewRelational wraps a database.
func NewRelational(db *store.DB) *Relational {
	return &Relational{DB: db, CostParams: Cost{PerQuery: 10, PerTuple: 0.1}}
}

// Source implements Wrapper.
func (r *Relational) Source() string { return r.DB.Name }

// Relations implements Wrapper.
func (r *Relational) Relations() []string { return r.DB.TableNames() }

// Schema implements Wrapper.
func (r *Relational) Schema(relation string) (relalg.Schema, error) {
	t, err := r.DB.Table(relation)
	if err != nil {
		return relalg.Schema{}, err
	}
	return t.Schema, nil
}

// Capabilities implements Wrapper: a relational source does everything.
func (r *Relational) Capabilities(relation string) (Capabilities, error) {
	if _, err := r.DB.Table(relation); err != nil {
		return Capabilities{}, err
	}
	return Capabilities{Selection: true, Projection: true}, nil
}

// EstimateRows implements Wrapper.
func (r *Relational) EstimateRows(relation string) int {
	t, err := r.DB.Table(relation)
	if err != nil {
		return 0
	}
	return t.Len()
}

// Cost implements Wrapper.
func (r *Relational) Cost() Cost {
	if r.CostParams == (Cost{}) {
		return Cost{PerQuery: 10, PerTuple: 0.1}
	}
	return r.CostParams
}

// Query implements Wrapper.
func (r *Relational) Query(q SourceQuery) (*relalg.Relation, error) {
	t, err := r.DB.Table(q.Relation)
	if err != nil {
		return nil, err
	}
	var rel *relalg.Relation
	// Use an index for the first indexed equality filter, then apply the
	// rest.
	used := -1
	for i, f := range q.Filters {
		if f.Op == "=" && t.HasIndex(f.Column) {
			rel, err = t.Lookup(f.Column, f.Value)
			if err != nil {
				return nil, err
			}
			used = i
			break
		}
	}
	if rel == nil {
		rel = t.Scan()
	}
	rest := make([]Filter, 0, len(q.Filters))
	for i, f := range q.Filters {
		if i != used {
			rest = append(rest, f)
		}
	}
	rel, err = ApplyFilters(rel, rest)
	if err != nil {
		return nil, fmt.Errorf("wrapper: source %s: %w", r.Source(), err)
	}
	return ProjectColumns(rel, q.Columns)
}
