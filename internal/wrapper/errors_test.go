package wrapper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestFaultClassSentinels(t *testing.T) {
	cause := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"transient", Transient(cause), ErrTransient},
		{"permanent", Permanent(cause), ErrPermanent},
		{"ratelimited", RateLimited(cause, time.Second), ErrRateLimited},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, tc.want) {
			t.Errorf("%s: errors.Is(%v, class) = false", tc.name, tc.err)
		}
		if !errors.Is(tc.err, cause) {
			t.Errorf("%s: cause unreachable through the class wrapper", tc.name)
		}
		if tc.err.Error() != "boom" {
			t.Errorf("%s: Error() = %q, want the cause's message", tc.name, tc.err.Error())
		}
		// A classified error carries exactly one class.
		for _, other := range []error{ErrTransient, ErrPermanent, ErrRateLimited} {
			if other != tc.want && errors.Is(tc.err, other) {
				t.Errorf("%s: also matches %v", tc.name, other)
			}
		}
	}
	for name, f := range map[string]func(error) error{
		"Transient": Transient,
		"Permanent": Permanent,
	} {
		if f(nil) != nil {
			t.Errorf("%s(nil) != nil", name)
		}
	}
	if RateLimited(nil, time.Second) != nil {
		t.Error("RateLimited(nil) != nil")
	}
}

func TestClassSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("crawl r3: %w", Transient(errors.New("conn reset")))
	if !errors.Is(err, ErrTransient) {
		t.Error("class lost through fmt.Errorf %w wrapping")
	}
	if !Retryable(err) {
		t.Error("wrapped transient fault not retryable")
	}
}

// timeoutErr is a net.Error that reports Timeout() = true while also
// wrapping context.DeadlineExceeded — the shape net/http produces for a
// per-request deadline. Retryable must treat it as network weather, not
// as the query's own context dying.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }
func (timeoutErr) Unwrap() error   { return context.DeadlineExceeded }

func TestRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"transient", Transient(errors.New("x")), true},
		{"ratelimited", RateLimited(errors.New("x"), 0), true},
		{"permanent", Permanent(errors.New("x")), false},
		// A permanent classification beats a retryable-looking cause.
		{"permanent wrapping reset", Permanent(syscall.ECONNRESET), false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"wrapped canceled", fmt.Errorf("branch: %w", context.Canceled), false},
		// net.Error timeouts win over the context sentinels they may wrap.
		{"net timeout over deadline", timeoutErr{}, true},
		{"op timeout", &net.OpError{Op: "dial", Err: timeoutErr{}}, true},
		{"refused", syscall.ECONNREFUSED, true},
		{"reset", syscall.ECONNRESET, true},
		{"epipe", syscall.EPIPE, true},
		{"short body", io.ErrUnexpectedEOF, true},
		{"plain eof", io.EOF, false},
		{"unknown", errors.New("mystery"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRetryAfter(t *testing.T) {
	if d, ok := RetryAfter(RateLimited(errors.New("x"), 3*time.Second)); !ok || d != 3*time.Second {
		t.Errorf("RetryAfter(hint 3s) = %v, %v", d, ok)
	}
	if _, ok := RetryAfter(RateLimited(errors.New("x"), 0)); ok {
		t.Error("RetryAfter(no hint) reported a hint")
	}
	if _, ok := RetryAfter(Transient(errors.New("x"))); ok {
		t.Error("RetryAfter(transient) reported a hint")
	}
	wrapped := fmt.Errorf("fetch: %w", RateLimited(errors.New("x"), time.Second))
	if d, ok := RetryAfter(wrapped); !ok || d != time.Second {
		t.Errorf("RetryAfter(wrapped) = %v, %v", d, ok)
	}
}

func TestClassifyHTTPStatus(t *testing.T) {
	cause := errors.New("status")
	cases := []struct {
		status     int
		retryAfter string
		class      error
		hint       time.Duration
	}{
		{429, "2", ErrRateLimited, 2 * time.Second},
		{429, "", ErrRateLimited, 0},
		{500, "", ErrTransient, 0},
		{503, "", ErrTransient, 0},
		{408, "", ErrTransient, 0},
		{404, "", ErrPermanent, 0},
		{403, "", ErrPermanent, 0},
		{418, "", ErrPermanent, 0},
	}
	for _, tc := range cases {
		err := ClassifyHTTPStatus(tc.status, tc.retryAfter, cause)
		if !errors.Is(err, tc.class) {
			t.Errorf("status %d: class = %v, want %v", tc.status, err, tc.class)
		}
		d, ok := RetryAfter(err)
		if tc.hint > 0 && (!ok || d != tc.hint) {
			t.Errorf("status %d: hint = %v, %v, want %v", tc.status, d, ok, tc.hint)
		}
		if tc.hint == 0 && ok {
			t.Errorf("status %d: unexpected hint %v", tc.status, d)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"5", 5 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2026 07:28:00 GMT", 0},
	}
	for _, tc := range cases {
		if got := ParseRetryAfter(tc.in); got != tc.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
