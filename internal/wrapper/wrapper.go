// Package wrapper implements the wrapper layer of Figure 1: a uniform
// protocol by which the multi-database access engine reaches every source.
// Wrappers are "not merely communication gateways": they provide schema
// service, a (restricted) SQL-ish query interface, and deliver answers as
// relational tables, for on-line databases and semi-structured Web sites
// alike.
//
// Two implementations are provided: Relational (over internal/store
// databases, standing in for the paper's Oracle source) and Web (executing
// the declarative wrapping specifications of [Qu96]-style transition
// networks plus regular expressions against internal/web sites).
package wrapper

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/relalg"
)

// OpIn is the disjunctive-equality filter operator: `column IN (v1..vk)`.
// The engine's bind-join batching sends one OpIn filter carrying a batch
// of feeder values instead of one equality query per value; only sources
// whose Capabilities report InList receive it.
const OpIn = "in"

// Filter is a conjunctive selection the engine asks a wrapper to apply:
// column op constant. Op is one of = <> < <= > >= or OpIn ("in"), which
// matches when the column equals any element of Values (Value is unused
// then).
type Filter struct {
	Column string
	Op     string
	Value  relalg.Value
	// Values carries the constants of an OpIn filter.
	Values []relalg.Value
}

// Match evaluates the filter against one column value. ApplyFilters, the
// Matcher used by streaming fetches, and the Relational wrapper all route
// through it so filter semantics cannot diverge.
func (f Filter) Match(v relalg.Value) (bool, error) {
	if f.Op == OpIn {
		for _, c := range f.Values {
			if v.Equal(c) {
				return true, nil
			}
		}
		return false, nil
	}
	return evalFilter(v, f.Op, f.Value)
}

// Compile resolves the filter operator once, returning the per-value
// predicate Match applies row by row (same semantics, including errors —
// an unknown operator errors on first use, not at compile time). All-
// string IN lists — the shape bind-join batching produces — probe a set
// instead of scanning the value list per row.
func (f Filter) Compile() func(relalg.Value) (bool, error) {
	if f.Op == OpIn {
		allStr := len(f.Values) > 0
		for _, c := range f.Values {
			if c.K != relalg.KindString {
				allStr = false
				break
			}
		}
		if allStr {
			set := make(map[string]struct{}, len(f.Values))
			for _, c := range f.Values {
				set[c.S] = struct{}{}
			}
			return func(v relalg.Value) (bool, error) {
				if v.K != relalg.KindString {
					return false, nil
				}
				_, ok := set[v.S]
				return ok, nil
			}
		}
		vals := f.Values
		return func(v relalg.Value) (bool, error) {
			for _, c := range vals {
				if v.Equal(c) {
					return true, nil
				}
			}
			return false, nil
		}
	}
	c := f.Value
	switch f.Op {
	case "=":
		return func(v relalg.Value) (bool, error) { return v.Equal(c), nil }
	case "<>":
		return func(v relalg.Value) (bool, error) {
			if v.IsNull() || c.IsNull() {
				return false, nil
			}
			return !v.Equal(c), nil
		}
	case "<":
		return func(v relalg.Value) (bool, error) {
			cmp, ok := v.Compare(c)
			return ok && cmp < 0, nil
		}
	case "<=":
		return func(v relalg.Value) (bool, error) {
			cmp, ok := v.Compare(c)
			return ok && cmp <= 0, nil
		}
	case ">":
		return func(v relalg.Value) (bool, error) {
			cmp, ok := v.Compare(c)
			return ok && cmp > 0, nil
		}
	case ">=":
		return func(v relalg.Value) (bool, error) {
			cmp, ok := v.Compare(c)
			return ok && cmp >= 0, nil
		}
	}
	err := fmt.Errorf("wrapper: unknown filter operator %q", f.Op)
	return func(relalg.Value) (bool, error) { return false, err }
}

// SourceQuery is a single-relation query in the wrapper protocol.
type SourceQuery struct {
	Relation string
	// Columns is the projection; nil keeps every column.
	Columns []string
	// Filters are selections. Wrappers whose capabilities lack Selection
	// only honor equality filters on their required bindings and ignore
	// the rest (the engine compensates locally).
	Filters []Filter
	// Partitions/Partition select one disjoint range of the relation for
	// a parallel scan fan-out: Partitions > 1 asks for slice Partition
	// (0-based) of that many contiguous ranges over the source's base
	// scan order, so the concatenation of all parts in part order equals
	// the unpartitioned scan. Zero Partitions (the default) is the whole
	// relation. Only sources whose Capabilities advertise Partitions
	// receive partitioned queries.
	Partitions int
	Partition  int
}

// Canonical renders the query as a deterministic string key: identical
// queries — regardless of filter order or of the order of values inside
// an IN list (both are conjunction/disjunction-insensitive) — map to the
// same key. The engine's session result cache and single-flight
// deduplication key on it (prefixed with the source name). Projection
// column order is significant and preserved: it changes the result.
func (q SourceQuery) Canonical() string {
	var b strings.Builder
	b.WriteString(q.Relation)
	b.WriteByte('\x00')
	if q.Partitions > 1 {
		// Partitioned queries answer different slices, so each part keys
		// separately; unpartitioned queries keep their historical keys.
		fmt.Fprintf(&b, "part %d/%d", q.Partition, q.Partitions)
		b.WriteByte('\x00')
	}
	for _, c := range q.Columns {
		b.WriteString(c)
		b.WriteByte('\x01')
	}
	b.WriteByte('\x00')
	enc := make([]string, len(q.Filters))
	for i, f := range q.Filters {
		var fb strings.Builder
		fb.WriteString(f.Column)
		fb.WriteByte('\x02')
		fb.WriteString(f.Op)
		fb.WriteByte('\x02')
		if f.Op == OpIn {
			vals := make([]string, len(f.Values))
			for j, v := range f.Values {
				vals[j] = v.Key()
			}
			sort.Strings(vals)
			for _, v := range vals {
				fb.WriteString(v)
				fb.WriteByte('\x03')
			}
		} else {
			fb.WriteString(f.Value.Key())
		}
		enc[i] = fb.String()
	}
	sort.Strings(enc)
	for _, e := range enc {
		b.WriteString(e)
		b.WriteByte('\x01')
	}
	return b.String()
}

// Capabilities describe what a source can do remotely; the planner plans
// around them.
type Capabilities struct {
	// Selection: the source evaluates arbitrary Filters remotely.
	Selection bool
	// Projection: the source projects columns remotely.
	Projection bool
	// InList: the source accepts OpIn filters, so the engine may batch a
	// bind join into ⌈N/BatchSize⌉ IN-list queries instead of N equality
	// probes.
	InList bool
	// BatchSize caps the values per IN-list query; zero means
	// DefaultBatchSize.
	BatchSize int
	// RequiredBindings lists columns that must be constrained by equality
	// before the source can answer at all (a Web form page): the planner
	// must feed them from constants or from an already-fetched relation
	// (a dependent, "bind" join).
	RequiredBindings []string
	// Partitions is the maximum number of disjoint contiguous ranges the
	// source can split one relation scan into (SourceQuery.Partitions).
	// Zero or one means the source only answers whole-relation queries;
	// the engine's parallel scan fan-out uses at most this many workers
	// against the source.
	Partitions int
}

// DefaultBatchSize is the IN-list batch width used when an InList-capable
// source does not state its own.
const DefaultBatchSize = 16

// Cost carries the communication-cost parameters of a source, in abstract
// units the planner sums (the paper's engine plans "taking into account
// the sources capabilities as well as the execution and communication
// costs").
type Cost struct {
	// PerQuery is the fixed overhead of one remote query.
	PerQuery float64
	// PerTuple is the transfer cost per result tuple.
	PerTuple float64
	// MaxConcurrent bounds the queries the engine keeps in flight against
	// the source at once (its dispatcher pool size); zero means the
	// engine's default.
	MaxConcurrent int
}

// Wrapper is the uniform source interface.
type Wrapper interface {
	// Source names the wrapped source.
	Source() string
	// Relations lists the relations the source exports, sorted.
	Relations() []string
	// Schema returns a relation's schema (the dictionary service).
	Schema(relation string) (relalg.Schema, error)
	// Capabilities describes the per-relation query power.
	Capabilities(relation string) (Capabilities, error)
	// EstimateRows guesses a relation's cardinality for the cost model.
	// The context bounds any probe the estimate costs (a COUNT(*) against
	// a live server): it is the planning session's context, so killing
	// the session also stops its stat probes. Estimation stays
	// best-effort — a canceled probe degrades the estimate, never fails
	// planning.
	EstimateRows(ctx context.Context, relation string) int
	// Cost returns the source's communication-cost parameters.
	Cost() Cost
	// Query executes a source query and returns a relation whose columns
	// use the relation's plain (unqualified) names. The context bounds
	// the fetch: a canceled or expired context aborts remote work (page
	// fetches, scans) promptly with ctx.Err().
	Query(ctx context.Context, q SourceQuery) (*relalg.Relation, error)
}

// Statser is an optional Wrapper extension exposing column statistics.
// Sources that know their data (the relational wrapper; a real DBMS's
// dictionary) answer distinct counts, which the planner's cost model
// turns into join selectivities (1/max(distinct)) instead of a fixed
// guess. Wrappers without statistics simply do not implement it.
type Statser interface {
	// DistinctCount returns the number of distinct values of a column,
	// ok=false when unknown. Like EstimateRows, the context bounds any
	// probe behind the answer.
	DistinctCount(ctx context.Context, relation, column string) (int, bool)
}

// ApplyFilters evaluates filters over a relation locally; wrappers use it
// to honor Selection capability, and the engine uses it to compensate for
// sources without it.
func ApplyFilters(rel *relalg.Relation, filters []Filter) (*relalg.Relation, error) {
	if len(filters) == 0 {
		return rel, nil
	}
	match, err := Matcher(rel.Schema, filters)
	if err != nil {
		return nil, err
	}
	out := relalg.NewRelation(rel.Name, rel.Schema)
	for _, t := range rel.Tuples {
		keep, err := match(t)
		if err != nil {
			return nil, err
		}
		if keep {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func evalFilter(v relalg.Value, op string, c relalg.Value) (bool, error) {
	switch op {
	case "=":
		return v.Equal(c), nil
	case "<>":
		if v.IsNull() || c.IsNull() {
			return false, nil
		}
		return !v.Equal(c), nil
	case "<", "<=", ">", ">=":
		cmp, ok := v.Compare(c)
		if !ok {
			return false, nil
		}
		switch op {
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	}
	return false, fmt.Errorf("wrapper: unknown filter operator %q", op)
}

// resolveProjection resolves column names against a schema once,
// returning their positions and the projected schema. ProjectColumns and
// the streaming fetch path share it.
func resolveProjection(schema relalg.Schema, columns []string) ([]int, relalg.Schema, error) {
	idx := make([]int, len(columns))
	cols := make([]relalg.Column, len(columns))
	for i, c := range columns {
		ci := schema.Index(c)
		if ci < 0 {
			return nil, relalg.Schema{}, fmt.Errorf("wrapper: projection of unknown column %s", c)
		}
		idx[i] = ci
		cols[i] = schema.Columns[ci]
	}
	return idx, relalg.Schema{Columns: cols}, nil
}

// ProjectColumns keeps the named columns (in the given order).
func ProjectColumns(rel *relalg.Relation, columns []string) (*relalg.Relation, error) {
	if len(columns) == 0 {
		return rel, nil
	}
	idx, schema, err := resolveProjection(rel.Schema, columns)
	if err != nil {
		return nil, err
	}
	out := relalg.NewRelation(rel.Name, schema)
	for _, t := range rel.Tuples {
		row := make(relalg.Tuple, len(idx))
		for i, ci := range idx {
			row[i] = t[ci]
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// PartitionRange returns the half-open row range [lo, hi) that partition
// part of parts covers over a scan of total rows: parts contiguous
// ranges whose sizes differ by at most one, concatenating in part order
// to exactly [0, total). Out-of-range or unpartitioned inputs return the
// whole range, so a wrapper can apply it unconditionally.
func PartitionRange(total, parts, part int) (lo, hi int) {
	if parts <= 1 || part < 0 || part >= parts {
		return 0, total
	}
	return total * part / parts, total * (part + 1) / parts
}

// CheckRequiredBindings verifies that every required binding has an
// equality (or non-empty IN-list) filter, returning the equality-bound
// values by column. An IN filter satisfies the requirement but
// contributes no entry to the map — single-value wrappers (Web URL
// templates) substitute from the map, and the engine only sends IN lists
// to sources whose capabilities advertise InList.
func CheckRequiredBindings(caps Capabilities, q SourceQuery) (map[string]relalg.Value, error) {
	bound := map[string]relalg.Value{}
	covered := map[string]bool{}
	for _, f := range q.Filters {
		if f.Op == "=" {
			bound[f.Column] = f.Value
			covered[f.Column] = true
		}
		if f.Op == OpIn && len(f.Values) > 0 {
			covered[f.Column] = true
		}
	}
	var missing []string
	for _, rb := range caps.RequiredBindings {
		if !covered[rb] {
			missing = append(missing, rb)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("wrapper: relation %s requires bindings for %v", q.Relation, missing)
	}
	return bound, nil
}
