package wrapper

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/relalg"
)

// This file implements the declarative Web-wrapping specification language
// of the prototype ([Qu96]: "a high level declarative language for the
// specification of what information can be extracted. A program in this
// specification language defines a transition network corresponding to the
// possible transitions from one Web-page to another, and regular
// expressions corresponding to what information is located on a page.")
//
// A spec is line-oriented:
//
//	# currency-exchange wrapper
//	relation r3(fromCur, toCur, rate:num)
//	start "/rates" -> index
//	state index
//	  follow "<a href=\"(/rate[^\"]*)\">" -> pair
//	state pair
//	  matchurl "from=([A-Z]+)" as fromCur
//	  matchurl "to=([A-Z]+)" as toCur
//	  match "rate: ([0-9.eE+-]+)" as rate
//	  emit
//
// Directives:
//
//	relation NAME(col[:type], ...)   declare the output relation
//	param COL                        required binding (becomes a URL hole)
//	start "URL" -> STATE             entry page; URL may contain {param}
//	state NAME                       begin a state block
//	follow "RE" -> STATE             traverse each captured URL
//	match "RE" as COL                extract capture 1 from the body
//	matchurl "RE" as COL             extract capture 1 from the page URL
//	rows "RE" as COL, COL, ...       one output tuple per body match
//	emit                             one output tuple from accumulated cols
//
// Attribute values accumulated by match/matchurl flow into pages reached
// by follow, so detail pages inherit context from their parents.

// Spec is a compiled wrapping specification.
type Spec struct {
	Relation string
	Schema   relalg.Schema
	Params   []string
	StartURL string
	Start    string
	States   map[string]*SpecState

	src string
}

// SpecState is one node of the transition network.
type SpecState struct {
	Name    string
	Matches []MatchRule
	Rows    *RowsRule
	Emit    bool
	Follows []FollowRule
}

// MatchRule extracts one column from the page body or URL.
type MatchRule struct {
	Pattern *regexp.Regexp
	Column  string
	FromURL bool
}

// RowsRule extracts one tuple per match from a table-like page.
type RowsRule struct {
	Pattern *regexp.Regexp
	Columns []string
}

// FollowRule traverses captured links into another state.
type FollowRule struct {
	Pattern *regexp.Regexp
	Target  string
}

// Source returns the original spec text.
func (s *Spec) Source() string { return s.src }

// ParseSpec compiles a wrapping specification.
func ParseSpec(src string) (*Spec, error) {
	spec := &Spec{States: map[string]*SpecState{}, src: src}
	var cur *SpecState
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		word, rest := cutWord(line)
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("wrapper: spec line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch word {
		case "relation":
			if spec.Relation != "" {
				return nil, fail("duplicate relation declaration")
			}
			name, schema, err := parseRelationDecl(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			spec.Relation, spec.Schema = name, schema
		case "param":
			col := strings.TrimSpace(rest)
			if col == "" {
				return nil, fail("param needs a column name")
			}
			spec.Params = append(spec.Params, col)
		case "start":
			url, rest2, err := parseQuoted(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			target, err := parseArrow(rest2)
			if err != nil {
				return nil, fail("%v", err)
			}
			spec.StartURL, spec.Start = url, target
		case "state":
			name := strings.TrimSpace(rest)
			if name == "" {
				return nil, fail("state needs a name")
			}
			if _, dup := spec.States[name]; dup {
				return nil, fail("duplicate state %s", name)
			}
			cur = &SpecState{Name: name}
			spec.States[name] = cur
		case "follow":
			if cur == nil {
				return nil, fail("follow outside a state block")
			}
			pat, rest2, err := parseQuotedRegexp(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			target, err := parseArrow(rest2)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Follows = append(cur.Follows, FollowRule{Pattern: pat, Target: target})
		case "match", "matchurl":
			if cur == nil {
				return nil, fail("%s outside a state block", word)
			}
			pat, rest2, err := parseQuotedRegexp(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			col, err := parseAs(rest2)
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Matches = append(cur.Matches, MatchRule{Pattern: pat, Column: col, FromURL: word == "matchurl"})
		case "rows":
			if cur == nil {
				return nil, fail("rows outside a state block")
			}
			if cur.Rows != nil {
				return nil, fail("duplicate rows rule in state %s", cur.Name)
			}
			pat, rest2, err := parseQuotedRegexp(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			cols, err := parseAsList(rest2)
			if err != nil {
				return nil, fail("%v", err)
			}
			if pat.NumSubexp() != len(cols) {
				return nil, fail("rows pattern has %d captures for %d columns", pat.NumSubexp(), len(cols))
			}
			cur.Rows = &RowsRule{Pattern: pat, Columns: cols}
		case "emit":
			if cur == nil {
				return nil, fail("emit outside a state block")
			}
			cur.Emit = true
		default:
			return nil, fail("unknown directive %q", word)
		}
	}
	return spec, spec.validate()
}

// MustParseSpec is ParseSpec that panics; for compiled-in specs.
func MustParseSpec(src string) *Spec {
	s, err := ParseSpec(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Spec) validate() error {
	if s.Relation == "" {
		return fmt.Errorf("wrapper: spec lacks a relation declaration")
	}
	if s.StartURL == "" || s.Start == "" {
		return fmt.Errorf("wrapper: spec lacks a start directive")
	}
	if _, ok := s.States[s.Start]; !ok {
		return fmt.Errorf("wrapper: start state %s undefined", s.Start)
	}
	colOK := func(c string) bool { return s.Schema.Index(c) >= 0 }
	for _, p := range s.Params {
		if !colOK(p) {
			return fmt.Errorf("wrapper: param %s is not a relation column", p)
		}
	}
	for _, st := range s.States {
		for _, m := range st.Matches {
			if !colOK(m.Column) {
				return fmt.Errorf("wrapper: state %s extracts unknown column %s", st.Name, m.Column)
			}
			if m.Pattern.NumSubexp() != 1 {
				return fmt.Errorf("wrapper: state %s: match pattern for %s needs exactly one capture", st.Name, m.Column)
			}
		}
		if st.Rows != nil {
			for _, c := range st.Rows.Columns {
				if !colOK(c) {
					return fmt.Errorf("wrapper: state %s rows names unknown column %s", st.Name, c)
				}
			}
		}
		for _, f := range st.Follows {
			if _, ok := s.States[f.Target]; !ok {
				return fmt.Errorf("wrapper: state %s follows into undefined state %s", st.Name, f.Target)
			}
			if f.Pattern.NumSubexp() != 1 {
				return fmt.Errorf("wrapper: state %s: follow pattern needs exactly one capture (the URL)", st.Name)
			}
		}
	}
	return nil
}

func cutWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

func parseRelationDecl(s string) (string, relalg.Schema, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return "", relalg.Schema{}, fmt.Errorf("relation declaration must be NAME(col, ...)")
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", relalg.Schema{}, fmt.Errorf("relation needs a name")
	}
	inner := strings.TrimSpace(s)
	inner = inner[open+1 : len(inner)-1]
	var schema relalg.Schema
	for _, part := range strings.Split(inner, ",") {
		col := strings.TrimSpace(part)
		kind := relalg.KindString
		if i := strings.Index(col, ":"); i >= 0 {
			switch strings.TrimSpace(col[i+1:]) {
			case "num", "number":
				kind = relalg.KindNumber
			case "str", "string":
				kind = relalg.KindString
			case "bool":
				kind = relalg.KindBool
			default:
				return "", relalg.Schema{}, fmt.Errorf("unknown column type in %q", col)
			}
			col = strings.TrimSpace(col[:i])
		}
		if col == "" {
			return "", relalg.Schema{}, fmt.Errorf("empty column name")
		}
		schema.Columns = append(schema.Columns, relalg.Column{Name: col, Type: kind})
	}
	if len(schema.Columns) == 0 {
		return "", relalg.Schema{}, fmt.Errorf("relation needs at least one column")
	}
	return name, schema, nil
}

// parseQuoted reads a leading double-quoted string with backslash escapes.
func parseQuoted(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected a quoted string in %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			b.WriteByte(s[i+1])
			i += 2
		case '"':
			return b.String(), strings.TrimSpace(s[i+1:]), nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func parseQuotedRegexp(s string) (*regexp.Regexp, string, error) {
	raw, rest, err := parseQuoted(s)
	if err != nil {
		return nil, "", err
	}
	re, err := regexp.Compile(raw)
	if err != nil {
		return nil, "", fmt.Errorf("bad pattern: %v", err)
	}
	return re, rest, nil
}

func parseArrow(s string) (string, error) {
	s = strings.TrimSpace(s)
	if rest, found := strings.CutPrefix(s, "->"); found {
		target := strings.TrimSpace(rest)
		if target != "" {
			return target, nil
		}
	}
	return "", fmt.Errorf("expected -> STATE, found %q", s)
}

func parseAs(s string) (string, error) {
	cols, err := parseAsList(s)
	if err != nil {
		return "", err
	}
	if len(cols) != 1 {
		return "", fmt.Errorf("expected a single column after as")
	}
	return cols[0], nil
}

func parseAsList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	rest, found := strings.CutPrefix(s, "as ")
	if !found {
		return nil, fmt.Errorf("expected as COL[, COL...], found %q", s)
	}
	var cols []string
	for _, p := range strings.Split(rest, ",") {
		c := strings.TrimSpace(p)
		if c == "" {
			return nil, fmt.Errorf("empty column in as-list")
		}
		cols = append(cols, c)
	}
	return cols, nil
}
