package restsrc

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/planner"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
)

func strCol(n string) relalg.Column { return relalg.Column{Name: n, Type: relalg.KindString} }
func numCol(n string) relalg.Column { return relalg.Column{Name: n, Type: relalg.KindNumber} }

// newFixture serves quotes (binding-required on cname) and indices
// (12 rows, so three pages at the default width) from an httptest server.
func newFixture(t *testing.T) (*Source, *Server) {
	t.Helper()
	db := store.NewDB("marketsdb")
	quotes := db.MustCreateTable("quotes", relalg.NewSchema(strCol("cname"), numCol("price")))
	for _, row := range []struct {
		c string
		p float64
	}{{"IBM", 145.5}, {"NTT", 88}, {"SONY", 61.25}, {"DT", 17.8}, {"BT", 4.5}, {"ACME", 0.01}} {
		quotes.MustInsert(relalg.StrV(row.c), relalg.NumV(row.p))
	}
	indices := db.MustCreateTable("indices", relalg.NewSchema(strCol("iname"), numCol("level")))
	for i := 0; i < 12; i++ {
		indices.MustInsert(relalg.StrV(string(rune('a'+i))), relalg.NumV(float64(1000+i)))
	}
	srv := NewServer(db)
	srv.Require = map[string][]string{"quotes": {"cname"}}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	src, err := Dial("markets", hs.URL, hs.Client())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return src, srv
}

func TestDialDiscoversSchemaAndStats(t *testing.T) {
	src, _ := newFixture(t)
	rels := src.Relations()
	if len(rels) != 2 || rels[0] != "indices" || rels[1] != "quotes" {
		t.Fatalf("Relations = %v", rels)
	}
	schema, err := src.Schema("quotes")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Columns[1].Name != "price" || schema.Columns[1].Type != relalg.KindNumber {
		t.Fatalf("quotes schema = %v", schema.Columns)
	}
	caps, err := src.Capabilities("quotes")
	if err != nil {
		t.Fatal(err)
	}
	if !caps.Selection || caps.Projection || caps.InList ||
		len(caps.RequiredBindings) != 1 || caps.RequiredBindings[0] != "cname" {
		t.Fatalf("capabilities = %+v", caps)
	}
	if n := src.EstimateRows(context.Background(), "indices"); n != 12 {
		t.Fatalf("EstimateRows(indices) = %d, want 12", n)
	}
	n, ok := src.DistinctCount(context.Background(), "quotes", "cname")
	if !ok || n != 6 {
		t.Fatalf("DistinctCount = %d, %v; want 6", n, ok)
	}
	if _, ok := src.DistinctCount(context.Background(), "quotes", "ghost"); ok {
		t.Fatal("DistinctCount(ghost) should report unknown")
	}
}

func TestPaginationStreamsAllPages(t *testing.T) {
	src, srv := newFixture(t)
	before := srv.Hits()
	rel, err := src.Query(context.Background(), wrapper.SourceQuery{Relation: "indices"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 12 {
		t.Fatalf("got %d rows, want 12", len(rel.Tuples))
	}
	// 12 rows at page width 5: pages 0 and 1 full, page 2 carries the
	// tail, so the client makes exactly three round trips.
	if got := srv.Hits() - before; got != 3 {
		t.Fatalf("pagination made %d round trips, want 3", got)
	}
	if rel.Tuples[0][0].S != "a" || rel.Tuples[11][0].S != "l" {
		t.Fatalf("page order broken: %v", rel.Tuples)
	}
}

func TestServerSideFiltersAndRequiredBindings(t *testing.T) {
	src, _ := newFixture(t)
	ctx := context.Background()
	// Unbound access to a binding-required relation is refused before any
	// page is fetched.
	if _, err := src.Query(ctx, wrapper.SourceQuery{Relation: "quotes"}); err == nil {
		t.Fatal("unbound query on quotes should fail")
	}
	rel, err := src.Query(ctx, wrapper.SourceQuery{
		Relation: "quotes",
		Columns:  []string{"price"},
		Filters:  []wrapper.Filter{{Column: "cname", Op: "=", Value: relalg.StrV("SONY")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 1 || rel.Tuples[0][0].N != 61.25 {
		t.Fatalf("bound quotes query = %v", rel.Tuples)
	}
	if got := rel.Schema.Names(); len(got) != 1 || got[0] != "price" {
		t.Fatalf("client-side projection broken: %v", got)
	}
	// A range filter the server evaluates: only pages of matching rows
	// come back.
	rel, err = src.Query(ctx, wrapper.SourceQuery{
		Relation: "indices",
		Filters:  []wrapper.Filter{{Column: "level", Op: ">=", Value: relalg.NumV(1010)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 2 {
		t.Fatalf("filtered indices = %v, want 2 rows", rel.Tuples)
	}
}

func TestFaultClassification(t *testing.T) {
	src, srv := newFixture(t)
	ctx := context.Background()
	srv.FailNext(1, 429, "2")
	_, err := src.Query(ctx, wrapper.SourceQuery{Relation: "indices"})
	if !errors.Is(err, wrapper.ErrRateLimited) {
		t.Fatalf("429 classified as %v, want rate-limited", err)
	}
	if after, ok := wrapper.RetryAfter(err); !ok || after != 2*time.Second {
		t.Fatalf("RetryAfter = %v, %v; want 2s hint", after, ok)
	}
	srv.FailNext(1, 503, "")
	if _, err := src.Query(ctx, wrapper.SourceQuery{Relation: "indices"}); !errors.Is(err, wrapper.ErrTransient) {
		t.Fatalf("503 classified as %v, want transient", err)
	}
	if _, err := src.Query(ctx, wrapper.SourceQuery{Relation: "ghost"}); err == nil {
		t.Fatal("unknown relation should fail locally")
	}
	// The server's own 404 for a relation it does not serve is permanent.
	src.rels["phantom"] = remoteRelation{schema: relalg.NewSchema(strCol("x"))}
	if _, err := src.Query(ctx, wrapper.SourceQuery{Relation: "phantom"}); !errors.Is(err, wrapper.ErrPermanent) {
		t.Fatalf("server 404 classified as %v, want permanent", err)
	}
}

func TestMidStreamPageFault(t *testing.T) {
	src, srv := newFixture(t)
	st, err := src.QueryStream(context.Background(), wrapper.SourceQuery{Relation: "indices"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Drain the first page, then script the next page fetch to die.
	for i := 0; i < DefaultPageSize; i++ {
		if _, ok, err := st.Next(); !ok || err != nil {
			t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
		}
	}
	srv.FailNext(1, 500, "")
	if _, _, err := st.Next(); !errors.Is(err, wrapper.ErrTransient) {
		t.Fatalf("mid-stream fault = %v, want transient", err)
	}
}

func TestStreamHonorsContext(t *testing.T) {
	src, _ := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := src.QueryStream(ctx, wrapper.SourceQuery{Relation: "indices"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok, err := st.Next(); !ok || err != nil {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, _, err := st.Next(); err == nil {
		t.Fatal("Next after cancel should fail")
	}
}

// TestEngineRetriesAgainstRealHTTP closes the loop with the planner's
// fault machinery: a genuine HTTP backend answers 503 twice and then
// recovers, and the engine's retry loop (PR 6) absorbs the weather — the
// query succeeds and the server logs all three attempts.
func TestEngineRetriesAgainstRealHTTP(t *testing.T) {
	src, srv := newFixture(t)
	cat := planner.NewCatalog()
	cat.MustAddSource(src)
	ex := planner.NewExecutor(cat)
	ex.Retry = planner.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}

	srv.FailNext(2, 503, "")
	before := srv.Hits()
	res, err := ex.Execute(sqlparse.MustParse("SELECT indices.iname FROM indices WHERE indices.level < 1003"))
	if err != nil {
		t.Fatalf("query against flaky HTTP backend: %v", err)
	}
	if len(res.Tuples) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Tuples))
	}
	if got := srv.Hits() - before; got < 3 {
		t.Fatalf("server saw %d attempts, want the two faults plus success", got)
	}
}
