package restsrc

// The fixture half of the REST backend: an http.Handler speaking the
// wrapper's wire protocol over a store.DB. Golden-harness and unit tests
// mount it on httptest servers; its fault scripting returns genuine 429
// and 5xx responses (with Retry-After headers) over real sockets, so the
// engine's retry, circuit-breaker and partial-answer machinery is
// exercised by an actual HTTP backend rather than an in-process stub.
//
// Protocol:
//
//	GET /schema
//	  -> {"relations": {"quotes": {"columns": ["cname:str", ...],
//	      "rows": 6, "require": ["cname"], "distinct": {"cname": 6}}}}
//	GET /query?rel=R&page=K&filters=<JSON array>
//	  -> {"rows": [[...], ...], "next": K+1}       ("next" absent on last page)
//
// Filters arrive as [{"col": "c", "op": "=", "val": v}] with "vals" for
// IN lists; the server evaluates them with the same shared Matcher every
// in-process wrapper uses, and enforces required bindings with a 400 —
// a permanent fault class — when a query arrives unbound.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// DefaultPageSize is the server's page width when none is configured.
const DefaultPageSize = 5

// Server serves a store.DB over the REST wire protocol.
type Server struct {
	db *store.DB
	// PageSize is the number of rows per /query page; zero means
	// DefaultPageSize.
	PageSize int
	// Require maps relation name to columns that every query must bind,
	// mirroring the paper's capability records for form-bound sources.
	Require map[string][]string

	mu             sync.Mutex
	hits           int
	failLeft       int
	failStatus     int
	failRetryAfter string
}

// NewServer wraps db.
func NewServer(db *store.DB) *Server {
	return &Server{db: db, PageSize: DefaultPageSize}
}

// FailNext scripts the next n /query requests to fail with the given
// HTTP status; retryAfter, when non-empty, is sent as a Retry-After
// header. Scheduled failures still count as hits.
func (s *Server) FailNext(n, status int, retryAfter string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failLeft = n
	s.failStatus = status
	s.failRetryAfter = retryAfter
}

// Hits returns the number of /query requests served (including scripted
// failures).
func (s *Server) Hits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// schemaDoc is the /schema response body.
type schemaDoc struct {
	Relations map[string]relationDoc `json:"relations"`
}

// relationDoc describes one relation in the /schema response.
type relationDoc struct {
	Columns  []string       `json:"columns"`
	Rows     int            `json:"rows"`
	Require  []string       `json:"require,omitempty"`
	Distinct map[string]int `json:"distinct,omitempty"`
}

// queryDoc is the /query response body.
type queryDoc struct {
	Rows [][]any `json:"rows"`
	Next *int    `json:"next,omitempty"`
}

// wireFilter is one filter term on the wire.
type wireFilter struct {
	Col  string `json:"col"`
	Op   string `json:"op"`
	Val  any    `json:"val,omitempty"`
	Vals []any  `json:"vals,omitempty"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/schema":
		s.serveSchema(w)
	case "/query":
		s.serveQuery(w, r)
	default:
		http.Error(w, "no such endpoint", http.StatusNotFound)
	}
}

func (s *Server) serveSchema(w http.ResponseWriter) {
	doc := schemaDoc{Relations: map[string]relationDoc{}}
	for _, name := range s.db.TableNames() {
		t, err := s.db.Table(name)
		if err != nil {
			continue
		}
		cols := make([]string, len(t.Schema.Columns))
		for i, c := range t.Schema.Columns {
			cols[i] = c.Name + ":" + kindTag(c.Type)
		}
		st := t.Stats()
		doc.Relations[name] = relationDoc{
			Columns:  cols,
			Rows:     st.Rows,
			Require:  s.Require[name],
			Distinct: st.Distinct,
		}
	}
	writeJSON(w, doc)
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.hits++
	if s.failLeft > 0 {
		s.failLeft--
		status, after := s.failStatus, s.failRetryAfter
		s.mu.Unlock()
		if after != "" {
			w.Header().Set("Retry-After", after)
		}
		http.Error(w, fmt.Sprintf("scripted fault %d", status), status)
		return
	}
	s.mu.Unlock()

	rel := r.URL.Query().Get("rel")
	t, err := s.db.Table(rel)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	page := 0
	if p := r.URL.Query().Get("page"); p != "" {
		page, err = strconv.Atoi(p)
		if err != nil || page < 0 {
			http.Error(w, "bad page", http.StatusBadRequest)
			return
		}
	}
	filters, err := decodeFilters(r.URL.Query().Get("filters"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	caps := wrapper.Capabilities{RequiredBindings: s.Require[rel]}
	if _, err := wrapper.CheckRequiredBindings(caps, wrapper.SourceQuery{Relation: rel, Filters: filters}); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	match, err := wrapper.Matcher(t.Schema, filters)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var kept []relalg.Tuple
	for _, tup := range t.Scan().Tuples {
		ok, err := match(tup)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if ok {
			kept = append(kept, tup)
		}
	}
	size := s.PageSize
	if size <= 0 {
		size = DefaultPageSize
	}
	start := page * size
	end := start + size
	if start > len(kept) {
		start = len(kept)
	}
	if end > len(kept) {
		end = len(kept)
	}
	doc := queryDoc{Rows: make([][]any, 0, end-start)}
	for _, tup := range kept[start:end] {
		row := make([]any, len(tup))
		for i, v := range tup {
			row[i] = valueToJSON(v)
		}
		doc.Rows = append(doc.Rows, row)
	}
	if end < len(kept) {
		next := page + 1
		doc.Next = &next
	}
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		// The response is already committed; nothing useful remains.
		return
	}
}

// decodeFilters parses the wire filter array into wrapper.Filters.
func decodeFilters(raw string) ([]wrapper.Filter, error) {
	if raw == "" {
		return nil, nil
	}
	var wire []wireFilter
	if err := json.Unmarshal([]byte(raw), &wire); err != nil {
		return nil, fmt.Errorf("restsrc: bad filters: %w", err)
	}
	out := make([]wrapper.Filter, 0, len(wire))
	for _, f := range wire {
		wf := wrapper.Filter{Column: f.Col, Op: f.Op}
		if f.Op == wrapper.OpIn {
			for _, v := range f.Vals {
				wf.Values = append(wf.Values, jsonToValue(v))
			}
		} else {
			wf.Value = jsonToValue(f.Val)
		}
		out = append(out, wf)
	}
	return out, nil
}

// jsonToValue converts a decoded JSON scalar to a relalg.Value.
func jsonToValue(v any) relalg.Value {
	switch v := v.(type) {
	case nil:
		return relalg.Null
	case float64:
		return relalg.NumV(v)
	case bool:
		return relalg.BoolV(v)
	case string:
		return relalg.StrV(v)
	default:
		return relalg.StrV(fmt.Sprint(v))
	}
}

// valueToJSON converts a relalg.Value to its JSON wire form.
func valueToJSON(v relalg.Value) any {
	switch v.K {
	case relalg.KindNull:
		return nil
	case relalg.KindNumber:
		return v.N
	case relalg.KindBool:
		return v.B
	default:
		return v.S
	}
}

// kindTag renders a column kind as the schema-doc type tag.
func kindTag(k relalg.Kind) string {
	switch k {
	case relalg.KindNumber:
		return "num"
	case relalg.KindBool:
		return "bool"
	default:
		return "str"
	}
}
