// Package restsrc wraps a paginated JSON-over-HTTP service as a COIN
// source: the "rate-limited network API" point in the backend matrix.
// The source evaluates pushed filters server-side but offers no IN-lists
// and no projection, advertises required bindings the mediator must feed
// by bind join, and streams results one page per round trip — so every
// page fetch is a chance for the network to fail, and failures surface
// through the shared fault taxonomy (429 with Retry-After as rate-limited,
// 5xx as transient, 4xx as permanent) where the engine's retry and
// circuit-breaker machinery picks them up.
package restsrc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// DefaultCost models a paginated WAN API: round trips dominate, and each
// extra tuple costs another slice of a page.
var DefaultCost = wrapper.Cost{PerQuery: 80, PerTuple: 0.5, MaxConcurrent: 2}

// The source streams pages and serves statistics from its schema document.
var (
	_ wrapper.Wrapper  = (*Source)(nil)
	_ wrapper.Streamer = (*Source)(nil)
	_ wrapper.Statser  = (*Source)(nil)
)

// Source is the client half: one remote REST service exposed through the
// wrapper protocol. Schema, row counts, required bindings and distinct
// statistics come from the service's /schema document, fetched once at
// Dial time.
type Source struct {
	name   string
	base   string
	client *http.Client

	// CostParams may be adjusted before the source is registered.
	CostParams wrapper.Cost

	rels map[string]remoteRelation
}

// remoteRelation is the cached /schema entry for one relation.
type remoteRelation struct {
	schema   relalg.Schema
	rows     int
	require  []string
	distinct map[string]int
}

// Dial fetches baseURL/schema and builds a source named name. client nil
// means http.DefaultClient. It is the ungoverned form of DialContext.
func Dial(name, baseURL string, client *http.Client) (*Source, error) {
	//lint:allow ctxflow Dial is the documented context-free convenience; governed callers use DialContext
	return DialContext(context.Background(), name, baseURL, client)
}

// DialContext is Dial with an explicit context bounding the one-time
// /schema fetch.
func DialContext(ctx context.Context, name, baseURL string, client *http.Client) (*Source, error) {
	if client == nil {
		client = http.DefaultClient
	}
	s := &Source{
		name:       name,
		base:       strings.TrimRight(baseURL, "/"),
		client:     client,
		CostParams: DefaultCost,
		rels:       map[string]remoteRelation{},
	}
	body, err := s.get(ctx, s.base+"/schema")
	if err != nil {
		return nil, err
	}
	var doc schemaDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, wrapper.Permanent(fmt.Errorf("restsrc: source %s: bad schema document: %w", name, err))
	}
	for rel, rd := range doc.Relations {
		schema, err := store.ParseHeader(rd.Columns)
		if err != nil {
			return nil, wrapper.Permanent(fmt.Errorf("restsrc: source %s relation %s: %w", name, rel, err))
		}
		s.rels[rel] = remoteRelation{
			schema:   schema,
			rows:     rd.Rows,
			require:  rd.Require,
			distinct: rd.Distinct,
		}
	}
	return s, nil
}

// Source implements wrapper.Wrapper.
func (s *Source) Source() string { return s.name }

// Relations implements wrapper.Wrapper.
func (s *Source) Relations() []string {
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Source) relation(name string) (remoteRelation, error) {
	r, ok := s.rels[name]
	if !ok {
		return remoteRelation{}, fmt.Errorf("restsrc: source %s has no relation %s", s.name, name)
	}
	return r, nil
}

// Schema implements wrapper.Wrapper.
func (s *Source) Schema(relation string) (relalg.Schema, error) {
	r, err := s.relation(relation)
	if err != nil {
		return relalg.Schema{}, err
	}
	return r.schema, nil
}

// Capabilities implements wrapper.Wrapper: the service filters
// server-side but ships whole rows (no projection), takes no IN-lists
// (bind joins degrade to per-value probes), and may require bindings.
func (s *Source) Capabilities(relation string) (wrapper.Capabilities, error) {
	r, err := s.relation(relation)
	if err != nil {
		return wrapper.Capabilities{}, err
	}
	return wrapper.Capabilities{
		Selection:        true,
		RequiredBindings: append([]string(nil), r.require...),
	}, nil
}

// Cost implements wrapper.Wrapper.
func (s *Source) Cost() wrapper.Cost { return s.CostParams }

// EstimateRows implements wrapper.Wrapper from the schema document; the
// document was fetched at Dial time, so no probe leaves the process and
// the context goes unused.
func (s *Source) EstimateRows(_ context.Context, relation string) int {
	r, err := s.relation(relation)
	if err != nil {
		return 0
	}
	return r.rows
}

// DistinctCount implements wrapper.Statser from the schema document's
// statistics block — no extra round trip per probe.
func (s *Source) DistinctCount(_ context.Context, relation, column string) (int, bool) {
	r, err := s.relation(relation)
	if err != nil {
		return 0, false
	}
	n, ok := r.distinct[column]
	return n, ok && n > 0
}

// Query implements wrapper.Wrapper by draining QueryStream.
func (s *Source) Query(ctx context.Context, q wrapper.SourceQuery) (*relalg.Relation, error) {
	st, err := s.QueryStream(ctx, q)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rel := relalg.NewRelation(q.Relation, st.Schema())
	for {
		tup, ok, err := st.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rel, nil
		}
		rel.Tuples = append(rel.Tuples, tup)
	}
}

// QueryStream implements wrapper.Streamer: pages are fetched lazily, one
// GET per page, as the consumer pulls. Projection the service cannot do
// is applied client-side so direct callers still get the columns they
// asked for.
func (s *Source) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	r, err := s.relation(q.Relation)
	if err != nil {
		return nil, err
	}
	caps, err := s.Capabilities(q.Relation)
	if err != nil {
		return nil, err
	}
	if _, err := wrapper.CheckRequiredBindings(caps, q); err != nil {
		return nil, err
	}
	filters, err := encodeFilters(q.Filters)
	if err != nil {
		return nil, fmt.Errorf("restsrc: source %s: %w", s.name, err)
	}
	var project []int
	outSchema := r.schema
	if len(q.Columns) > 0 {
		picked := make([]relalg.Column, 0, len(q.Columns))
		for _, c := range q.Columns {
			i := r.schema.Index(c)
			if i < 0 {
				return nil, fmt.Errorf("restsrc: relation %s has no column %s", q.Relation, c)
			}
			project = append(project, i)
			picked = append(picked, r.schema.Columns[i])
		}
		outSchema = relalg.NewSchema(picked...)
	}
	return &pageStream{
		src:      s,
		ctx:      ctx,
		relation: q.Relation,
		filters:  filters,
		schema:   r.schema,
		out:      outSchema,
		project:  project,
	}, nil
}

// encodeFilters renders filters in the wire format.
func encodeFilters(filters []wrapper.Filter) (string, error) {
	if len(filters) == 0 {
		return "", nil
	}
	wire := make([]wireFilter, 0, len(filters))
	for _, f := range filters {
		wf := wireFilter{Col: f.Column, Op: f.Op}
		if f.Op == wrapper.OpIn {
			if len(f.Values) == 0 {
				return "", fmt.Errorf("empty IN list on %s", f.Column)
			}
			for _, v := range f.Values {
				wf.Vals = append(wf.Vals, valueToJSON(v))
			}
		} else {
			wf.Val = valueToJSON(f.Value)
		}
		wire = append(wire, wf)
	}
	b, err := json.Marshal(wire)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// get performs one GET, classifying failures exactly as the prototype's
// HTTP fetcher does: transport errors are transient (unless the query's
// own context died), non-2xx statuses go through ClassifyHTTPStatus.
func (s *Source) get(ctx context.Context, fullURL string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fullURL, nil)
	if err != nil {
		return nil, fmt.Errorf("restsrc: GET %s: %w", fullURL, err)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("restsrc: GET %s: %w", fullURL, err)
		}
		return nil, wrapper.Transient(fmt.Errorf("restsrc: GET %s: %w", fullURL, err))
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, wrapper.DefaultMaxBodyBytes))
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		cause := fmt.Errorf("restsrc: GET %s: %s: %s", fullURL, resp.Status, msg)
		return nil, wrapper.ClassifyHTTPStatus(resp.StatusCode, resp.Header.Get("Retry-After"), cause)
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("restsrc: reading %s: %w", fullURL, err)
		}
		return nil, wrapper.Transient(fmt.Errorf("restsrc: reading %s: %w", fullURL, err))
	}
	return body, nil
}

// pageStream pulls /query pages lazily as the consumer drains it.
type pageStream struct {
	src      *Source
	ctx      context.Context
	relation string
	filters  string
	schema   relalg.Schema
	out      relalg.Schema
	project  []int

	page   int
	buf    []relalg.Tuple
	pos    int
	done   bool
	closed bool
	bb     *relalg.BatchBuilder // arena for projected batches
}

func (p *pageStream) Schema() relalg.Schema { return p.out }

func (p *pageStream) Next() (relalg.Tuple, bool, error) {
	if p.closed {
		return nil, false, fmt.Errorf("restsrc: stream closed")
	}
	if err := p.ctx.Err(); err != nil {
		return nil, false, err
	}
	for p.pos >= len(p.buf) {
		if p.done {
			return nil, false, nil
		}
		if err := p.fetchPage(); err != nil {
			return nil, false, err
		}
	}
	tup := p.buf[p.pos]
	p.pos++
	if p.project != nil {
		narrow := make(relalg.Tuple, len(p.project))
		for i, ci := range p.project {
			narrow[i] = tup[ci]
		}
		tup = narrow
	}
	return tup, true, nil
}

// NextBatch implements wrapper.BatchStream: a batch is (at most) the
// remainder of the already-fetched page — the stream never fetches the
// next page just to fill a batch, so pagination round trips still track
// consumer demand.
func (p *pageStream) NextBatch(max int) ([]relalg.Tuple, error) {
	if p.closed {
		return nil, fmt.Errorf("restsrc: stream closed")
	}
	if err := p.ctx.Err(); err != nil {
		return nil, err
	}
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	for p.pos >= len(p.buf) {
		if p.done {
			return nil, nil
		}
		if err := p.fetchPage(); err != nil {
			return nil, err
		}
	}
	end := p.pos + max
	if end > len(p.buf) {
		end = len(p.buf)
	}
	rows := p.buf[p.pos:end]
	p.pos = end
	if p.project == nil {
		return rows, nil
	}
	if p.bb == nil {
		p.bb = relalg.NewBatchBuilder(len(p.project))
	}
	p.bb.Reset(len(rows))
	for _, tup := range rows {
		narrow := p.bb.Row()
		for i, ci := range p.project {
			narrow[i] = tup[ci]
		}
	}
	return p.bb.Batch().Rows, nil
}

func (p *pageStream) Close() error {
	p.closed = true
	return nil
}

// fetchPage pulls the next page into the buffer.
func (p *pageStream) fetchPage() error {
	vals := url.Values{}
	vals.Set("rel", p.relation)
	vals.Set("page", strconv.Itoa(p.page))
	if p.filters != "" {
		vals.Set("filters", p.filters)
	}
	body, err := p.src.get(p.ctx, p.src.base+"/query?"+vals.Encode())
	if err != nil {
		return err
	}
	var doc queryDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return wrapper.Permanent(fmt.Errorf("restsrc: source %s: bad page %d: %w", p.src.name, p.page, err))
	}
	p.buf = p.buf[:0]
	p.pos = 0
	for _, row := range doc.Rows {
		if len(row) != len(p.schema.Columns) {
			return wrapper.Permanent(fmt.Errorf("restsrc: source %s: page %d row arity %d != %d",
				p.src.name, p.page, len(row), len(p.schema.Columns)))
		}
		tup := make(relalg.Tuple, len(row))
		for i, v := range row {
			tup[i] = coerceJSON(v, p.schema.Columns[i].Type)
		}
		p.buf = append(p.buf, tup)
	}
	if doc.Next != nil && *doc.Next > p.page {
		p.page = *doc.Next
	} else {
		p.done = true
	}
	return nil
}

// coerceJSON converts a decoded JSON scalar to a value of the declared
// column kind.
func coerceJSON(v any, want relalg.Kind) relalg.Value {
	switch v := v.(type) {
	case nil:
		return relalg.Null
	case float64:
		if want == relalg.KindBool {
			return relalg.BoolV(v != 0)
		}
		return relalg.NumV(v)
	case bool:
		return relalg.BoolV(v)
	case string:
		if want == relalg.KindNumber {
			if n, err := strconv.ParseFloat(v, 64); err == nil {
				return relalg.NumV(n)
			}
		}
		return relalg.StrV(v)
	default:
		return relalg.StrV(fmt.Sprint(v))
	}
}
