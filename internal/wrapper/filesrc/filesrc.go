// Package filesrc wraps a directory of CSV and JSON files as a mediator
// source: every file is one relation (its base name), streamed row by row
// at query time so a LIMIT upstream stops the read early. It is the
// "flat-file archive" shape of heterogeneous source — no query engine on
// the far side, so the wrapper itself honors Selection and Projection
// through the shared Matcher, and the advertised cost profile is
// expensive-per-query (the file must be opened and parsed from the top on
// every access) but cheap-per-tuple (local disk transfer).
//
// Formats:
//
//   - name.csv — a typed header row "col:type,..." (store.ParseHeader
//     types: str, num, bool) followed by data rows.
//   - name.json — one object {"columns": ["col:type", ...],
//     "rows": [[v, ...], ...]}; rows are decoded incrementally, so a
//     large file is never held in memory at once.
package filesrc

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// DefaultCost is the advertised cost profile: a high fixed per-query
// price (open + parse from the top of the file) and a near-free per-tuple
// transfer — the opposite corner of the latency space from a REST source,
// which is what makes the pair interesting to the optimizer.
var DefaultCost = wrapper.Cost{PerQuery: 40, PerTuple: 0.02}

// relationFile is one discovered file: where it lives, how to decode it,
// and its schema and cardinality (both read once at New).
type relationFile struct {
	path   string
	isJSON bool
	schema relalg.Schema
	rows   int
}

// Source is a directory of flat files served through the wrapper
// protocol. It is immutable after New and safe for concurrent queries
// (every query opens its own file handle).
type Source struct {
	name string
	// CostParams defaults to DefaultCost when zero.
	CostParams wrapper.Cost
	rels       map[string]*relationFile
}

// New scans dir for *.csv and *.json relations, reading each file once to
// learn its schema and cardinality. The relation name is the file's base
// name without extension; a name exported by both formats is an error.
func New(name, dir string) (*Source, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("filesrc: %w", err)
	}
	s := &Source{name: name, rels: map[string]*relationFile{}}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		if ext != ".csv" && ext != ".json" {
			continue
		}
		rel := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		if dup, ok := s.rels[rel]; ok {
			return nil, fmt.Errorf("filesrc: relation %s exported by both %s and %s", rel, dup.path, e.Name())
		}
		rf := &relationFile{path: filepath.Join(dir, e.Name()), isJSON: ext == ".json"}
		if err := rf.inspect(); err != nil {
			return nil, err
		}
		s.rels[rel] = rf
	}
	if len(s.rels) == 0 {
		return nil, fmt.Errorf("filesrc: %s holds no .csv or .json relations", dir)
	}
	return s, nil
}

// inspect reads the file once for its schema and row count.
func (rf *relationFile) inspect() error {
	st, err := rf.open()
	if err != nil {
		return err
	}
	defer st.Close()
	rf.schema = st.Schema()
	for {
		_, ok, err := st.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rf.rows++
	}
	return nil
}

// open starts a raw (unfiltered) row stream over the file.
func (rf *relationFile) open() (fileStream, error) {
	f, err := os.Open(rf.path)
	if err != nil {
		return nil, fmt.Errorf("filesrc: %w", err)
	}
	if rf.isJSON {
		st, err := newJSONStream(f, rf.path)
		if err != nil {
			f.Close()
			return nil, err
		}
		return st, nil
	}
	st, err := newCSVStream(f, rf.path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// Source implements wrapper.Wrapper.
func (s *Source) Source() string { return s.name }

// Relations implements wrapper.Wrapper.
func (s *Source) Relations() []string {
	out := make([]string, 0, len(s.rels))
	for r := range s.rels {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func (s *Source) relation(name string) (*relationFile, error) {
	rf, ok := s.rels[name]
	if !ok {
		return nil, fmt.Errorf("filesrc: %s exports no relation %s", s.name, name)
	}
	return rf, nil
}

// Schema implements wrapper.Wrapper.
func (s *Source) Schema(relation string) (relalg.Schema, error) {
	rf, err := s.relation(relation)
	if err != nil {
		return relalg.Schema{}, err
	}
	return rf.schema, nil
}

// fileMaxPartitions is the partition fan-out a file source advertises.
// Each partition re-opens and re-parses the file from the top (skipping
// rows outside its range), so the win is parallel parse/filter/transfer,
// and a modest cap keeps the redundant skip work bounded.
const fileMaxPartitions = 8

// Capabilities implements wrapper.Wrapper: the wrapper evaluates
// selections and projections itself while streaming the file, and can
// serve contiguous row ranges for a parallel scan fan-out; a flat file
// answers no IN-list disjunctions natively and requires no bindings.
func (s *Source) Capabilities(relation string) (wrapper.Capabilities, error) {
	if _, err := s.relation(relation); err != nil {
		return wrapper.Capabilities{}, err
	}
	return wrapper.Capabilities{Selection: true, Projection: true, Partitions: fileMaxPartitions}, nil
}

// EstimateRows implements wrapper.Wrapper from the cardinality counted at
// New; no probe runs, so the context is unused.
func (s *Source) EstimateRows(_ context.Context, relation string) int {
	rf, err := s.relation(relation)
	if err != nil {
		return 0
	}
	return rf.rows
}

// Cost implements wrapper.Wrapper.
func (s *Source) Cost() wrapper.Cost {
	if s.CostParams == (wrapper.Cost{}) {
		return DefaultCost
	}
	return s.CostParams
}

// Query implements wrapper.Wrapper by draining QueryStream.
func (s *Source) Query(ctx context.Context, q wrapper.SourceQuery) (*relalg.Relation, error) {
	st, err := s.QueryStream(ctx, q)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	out := relalg.NewRelation(q.Relation, st.Schema())
	for {
		t, ok, err := st.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Tuples = append(out.Tuples, t)
	}
}

// QueryStream implements wrapper.Streamer: the file is opened at call
// time and rows are parsed, filtered (shared Matcher) and projected as
// the engine pulls, so an early exit stops the read mid-file.
func (s *Source) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rf, err := s.relation(q.Relation)
	if err != nil {
		return nil, err
	}
	match, err := wrapper.Matcher(rf.schema, q.Filters)
	if err != nil {
		return nil, err
	}
	raw, err := rf.open()
	if err != nil {
		return nil, err
	}
	var ranged fileStream = raw
	if q.Partitions > 1 {
		// Serve one contiguous range of the file's base row order; the
		// bounds come from the cardinality counted at New (the Source is
		// immutable after New by contract). Filters apply inside the
		// range, so the parts concatenate to the unpartitioned answer.
		lo, hi := wrapper.PartitionRange(rf.rows, q.Partitions, q.Partition)
		ranged = &rangeStream{raw: raw, lo: lo, hi: hi}
	}
	st := &filteredStream{ctx: ctx, raw: ranged, match: match, schema: rf.schema}
	if len(q.Columns) > 0 {
		idx := make([]int, len(q.Columns))
		cols := make([]relalg.Column, len(q.Columns))
		for i, c := range q.Columns {
			ci := rf.schema.Index(c)
			if ci < 0 {
				raw.Close()
				return nil, fmt.Errorf("filesrc: projection of unknown column %s", c)
			}
			idx[i] = ci
			cols[i] = rf.schema.Columns[ci]
		}
		st.projIdx = idx
		st.schema = relalg.Schema{Columns: cols}
	}
	return st, nil
}

// fileStream is the raw row stream of one file format.
type fileStream interface {
	Schema() relalg.Schema
	Next() (relalg.Tuple, bool, error)
	Close() error
}

// rangeStream restricts a raw file stream to base rows [lo, hi): rows
// before lo are parsed and discarded (a flat file has no seek index),
// and the stream ends at hi without reading the tail.
type rangeStream struct {
	raw fileStream
	lo  int
	hi  int
	pos int
}

func (r *rangeStream) Schema() relalg.Schema { return r.raw.Schema() }

func (r *rangeStream) Next() (relalg.Tuple, bool, error) {
	for r.pos < r.lo {
		_, ok, err := r.raw.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		r.pos++
	}
	if r.pos >= r.hi {
		return nil, false, nil
	}
	t, ok, err := r.raw.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	r.pos++
	return t, true, nil
}

func (r *rangeStream) Close() error { return r.raw.Close() }

// filteredStream applies the query's filters and projection over a raw
// file stream, checking the context per row.
type filteredStream struct {
	ctx     context.Context
	raw     fileStream
	match   func(relalg.Tuple) (bool, error)
	projIdx []int
	schema  relalg.Schema

	// Batch-mode state: reused row buffer / projection arena, and an
	// error held back behind already-buffered rows.
	out  []relalg.Tuple
	bb   *relalg.BatchBuilder
	pend error
}

func (f *filteredStream) Schema() relalg.Schema { return f.schema }

func (f *filteredStream) Next() (relalg.Tuple, bool, error) {
	for {
		if err := f.ctx.Err(); err != nil {
			return nil, false, err
		}
		t, ok, err := f.raw.Next()
		if err != nil || !ok {
			return nil, ok, err
		}
		keep, err := f.match(t)
		if err != nil {
			return nil, false, err
		}
		if !keep {
			continue
		}
		if f.projIdx == nil {
			return t, true, nil
		}
		row := make(relalg.Tuple, len(f.projIdx))
		for i, ci := range f.projIdx {
			row[i] = t[ci]
		}
		return row, true, nil
	}
}

// NextBatch implements wrapper.BatchStream: one context check and one
// parse/filter/project sweep per block of rows. A parse error hit after
// rows were buffered is held back until the following call, preserving
// the per-tuple contract's rows-before-error delivery.
func (f *filteredStream) NextBatch(max int) ([]relalg.Tuple, error) {
	if err := f.pend; err != nil {
		f.pend = nil
		return nil, err
	}
	if err := f.ctx.Err(); err != nil {
		return nil, err
	}
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	if f.projIdx != nil && f.bb == nil {
		f.bb = relalg.NewBatchBuilder(len(f.projIdx))
	}
	if f.projIdx == nil {
		f.out = f.out[:0]
	} else {
		f.bb.Reset(max)
	}
	n := 0
	for n < max {
		t, ok, err := f.raw.Next()
		if err != nil {
			f.pend = err
			break
		}
		if !ok {
			break
		}
		keep, err := f.match(t)
		if err != nil {
			f.pend = err
			break
		}
		if !keep {
			continue
		}
		n++
		if f.projIdx == nil {
			f.out = append(f.out, t)
			continue
		}
		row := f.bb.Row()
		for i, ci := range f.projIdx {
			row[i] = t[ci]
		}
	}
	if n == 0 && f.pend != nil {
		err := f.pend
		f.pend = nil
		return nil, err
	}
	if f.projIdx == nil {
		return f.out, nil
	}
	return f.bb.Batch().Rows, nil
}

func (f *filteredStream) Close() error { return f.raw.Close() }

// csvStream parses one CSV relation row by row.
type csvStream struct {
	f      *os.File
	r      *csv.Reader
	path   string
	schema relalg.Schema
	line   int
}

func newCSVStream(f *os.File, path string) (*csvStream, error) {
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("filesrc: reading %s header: %w", path, err)
	}
	schema, err := store.ParseHeader(header)
	if err != nil {
		return nil, fmt.Errorf("filesrc: %s: %w", path, err)
	}
	return &csvStream{f: f, r: r, path: path, schema: schema, line: 1}, nil
}

func (c *csvStream) Schema() relalg.Schema { return c.schema }

func (c *csvStream) Next() (relalg.Tuple, bool, error) {
	rec, err := c.r.Read()
	if err == io.EOF {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("filesrc: reading %s: %w", c.path, err)
	}
	c.line++
	if len(rec) != len(c.schema.Columns) {
		return nil, false, fmt.Errorf("filesrc: %s line %d: %d fields for %d columns", c.path, c.line, len(rec), len(c.schema.Columns))
	}
	t := make(relalg.Tuple, len(rec))
	for i, field := range rec {
		v, err := parseField(field, c.schema.Columns[i].Type)
		if err != nil {
			return nil, false, fmt.Errorf("filesrc: %s line %d column %s: %w", c.path, c.line, c.schema.Columns[i].Name, err)
		}
		t[i] = v
	}
	return t, true, nil
}

func (c *csvStream) Close() error { return c.f.Close() }

// parseField converts one CSV field to its declared kind; an empty field
// is NULL.
func parseField(field string, kind relalg.Kind) (relalg.Value, error) {
	if field == "" {
		return relalg.Null, nil
	}
	switch kind {
	case relalg.KindNumber:
		n, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return relalg.Null, fmt.Errorf("bad number %q", field)
		}
		return relalg.NumV(n), nil
	case relalg.KindBool:
		switch strings.ToLower(field) {
		case "true", "t", "1":
			return relalg.BoolV(true), nil
		case "false", "f", "0":
			return relalg.BoolV(false), nil
		}
		return relalg.Null, fmt.Errorf("bad bool %q", field)
	default:
		return relalg.StrV(field), nil
	}
}

// jsonStream decodes a {"columns": [...], "rows": [[...], ...]} document
// incrementally: the columns header eagerly, then one row per Next
// through the json.Decoder's token stream.
type jsonStream struct {
	f      *os.File
	dec    *json.Decoder
	path   string
	schema relalg.Schema
	row    int
	done   bool
}

func newJSONStream(f *os.File, path string) (*jsonStream, error) {
	dec := json.NewDecoder(f)
	s := &jsonStream{f: f, dec: dec, path: path}
	fail := func(err error) (*jsonStream, error) {
		return nil, fmt.Errorf("filesrc: %s: %w", path, err)
	}
	if err := expectDelim(dec, '{'); err != nil {
		return fail(err)
	}
	// Walk the top-level keys; "columns" must precede "rows" so the
	// schema is known before data streams.
	for {
		tok, err := dec.Token()
		if err != nil {
			return fail(err)
		}
		key, ok := tok.(string)
		if !ok {
			return fail(fmt.Errorf("expected object key, got %v", tok))
		}
		switch key {
		case "columns":
			var header []string
			if err := dec.Decode(&header); err != nil {
				return fail(err)
			}
			schema, err := store.ParseHeader(header)
			if err != nil {
				return fail(err)
			}
			s.schema = schema
		case "rows":
			if len(s.schema.Columns) == 0 {
				return fail(fmt.Errorf(`"columns" must precede "rows"`))
			}
			if err := expectDelim(dec, '['); err != nil {
				return fail(err)
			}
			return s, nil
		default:
			// Skip unknown keys (metadata, comments).
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return fail(err)
			}
		}
	}
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("expected %q, got %v", want, tok)
	}
	return nil
}

func (j *jsonStream) Schema() relalg.Schema { return j.schema }

func (j *jsonStream) Next() (relalg.Tuple, bool, error) {
	if j.done || !j.dec.More() {
		j.done = true
		return nil, false, nil
	}
	var raw []any
	if err := j.dec.Decode(&raw); err != nil {
		return nil, false, fmt.Errorf("filesrc: %s row %d: %w", j.path, j.row+1, err)
	}
	j.row++
	if len(raw) != len(j.schema.Columns) {
		return nil, false, fmt.Errorf("filesrc: %s row %d: %d fields for %d columns", j.path, j.row, len(raw), len(j.schema.Columns))
	}
	t := make(relalg.Tuple, len(raw))
	for i, v := range raw {
		val, err := jsonValue(v, j.schema.Columns[i].Type)
		if err != nil {
			return nil, false, fmt.Errorf("filesrc: %s row %d column %s: %w", j.path, j.row, j.schema.Columns[i].Name, err)
		}
		t[i] = val
	}
	return t, true, nil
}

// jsonValue converts one decoded JSON scalar to its declared kind.
func jsonValue(v any, kind relalg.Kind) (relalg.Value, error) {
	if v == nil {
		return relalg.Null, nil
	}
	switch kind {
	case relalg.KindNumber:
		n, ok := v.(float64)
		if !ok {
			return relalg.Null, fmt.Errorf("bad number %v", v)
		}
		return relalg.NumV(n), nil
	case relalg.KindBool:
		b, ok := v.(bool)
		if !ok {
			return relalg.Null, fmt.Errorf("bad bool %v", v)
		}
		return relalg.BoolV(b), nil
	default:
		s, ok := v.(string)
		if !ok {
			return relalg.Null, fmt.Errorf("bad string %v", v)
		}
		return relalg.StrV(s), nil
	}
}

func (j *jsonStream) Close() error { return j.f.Close() }
