package filesrc

import (
	"context"
	"testing"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

func newTestSource(t *testing.T) *Source {
	t.Helper()
	s, err := New("archive", "testdata")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestDiscoversBothFormats(t *testing.T) {
	s := newTestSource(t)
	rels := s.Relations()
	if len(rels) != 2 || rels[0] != "earnings" || rels[1] != "sectors" {
		t.Fatalf("Relations = %v, want [earnings sectors]", rels)
	}
	if got := s.EstimateRows(context.Background(), "earnings"); got != 6 {
		t.Fatalf("EstimateRows(earnings) = %d, want 6", got)
	}
	if got := s.EstimateRows(context.Background(), "sectors"); got != 6 {
		t.Fatalf("EstimateRows(sectors) = %d, want 6", got)
	}
	schema, err := s.Schema("sectors")
	if err != nil {
		t.Fatal(err)
	}
	want := []relalg.Kind{relalg.KindString, relalg.KindString, relalg.KindBool, relalg.KindNumber}
	for i, k := range want {
		if schema.Columns[i].Type != k {
			t.Fatalf("sectors column %d type = %v, want %v", i, schema.Columns[i].Type, k)
		}
	}
}

func TestCapabilitiesAndCost(t *testing.T) {
	s := newTestSource(t)
	caps, err := s.Capabilities("earnings")
	if err != nil {
		t.Fatal(err)
	}
	if !caps.Selection || !caps.Projection || caps.InList || len(caps.RequiredBindings) != 0 {
		t.Fatalf("capabilities = %+v, want Selection+Projection only", caps)
	}
	if c := s.Cost(); c.PerQuery <= c.PerTuple {
		t.Fatalf("cost %+v should be expensive per query, cheap per tuple", c)
	}
	if _, err := s.Capabilities("nope"); err == nil {
		t.Fatal("Capabilities(nope) should fail")
	}
}

func TestQueryPushdownAndProjection(t *testing.T) {
	s := newTestSource(t)
	rel, err := s.Query(context.Background(), wrapper.SourceQuery{
		Relation: "earnings",
		Columns:  []string{"cname", "revenue"},
		Filters:  []wrapper.Filter{{Column: "currency", Op: "=", Value: relalg.StrV("JPY")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 2 {
		t.Fatalf("got %d tuples, want 2: %v", len(rel.Tuples), rel.Tuples)
	}
	if got := rel.Schema.Names(); len(got) != 2 || got[0] != "cname" || got[1] != "revenue" {
		t.Fatalf("projected schema = %v", got)
	}
	if rel.Tuples[0][0].S != "NTT" || rel.Tuples[1][0].S != "SONY" {
		t.Fatalf("unexpected rows: %v", rel.Tuples)
	}
}

func TestJSONStreamingAndNulls(t *testing.T) {
	s := newTestSource(t)
	st, err := s.QueryStream(context.Background(), wrapper.SourceQuery{
		Relation: "sectors",
		Filters:  []wrapper.Filter{{Column: "listed", Op: "=", Value: relalg.BoolV(false)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var rows []relalg.Tuple
	for {
		tup, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows = append(rows, tup)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (BT, ACME)", len(rows))
	}
	if !rows[1][3].IsNull() {
		t.Fatalf("ACME employees should be NULL, got %v", rows[1][3])
	}
}

func TestStreamHonorsContext(t *testing.T) {
	s := newTestSource(t)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := s.QueryStream(ctx, wrapper.SourceQuery{Relation: "earnings"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok, err := st.Next(); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, _, err := st.Next(); err == nil {
		t.Fatal("Next after cancel should fail with ctx error")
	}
}

func TestInFilterViaSharedMatcher(t *testing.T) {
	s := newTestSource(t)
	rel, err := s.Query(context.Background(), wrapper.SourceQuery{
		Relation: "earnings",
		Filters: []wrapper.Filter{{Column: "cname", Op: wrapper.OpIn,
			Values: []relalg.Value{relalg.StrV("IBM"), relalg.StrV("BT")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 2 {
		t.Fatalf("IN filter returned %d tuples, want 2", len(rel.Tuples))
	}
}

func TestUnknownRelationAndColumnErrors(t *testing.T) {
	s := newTestSource(t)
	if _, err := s.Query(context.Background(), wrapper.SourceQuery{Relation: "ghost"}); err == nil {
		t.Fatal("querying unknown relation should fail")
	}
	_, err := s.Query(context.Background(), wrapper.SourceQuery{
		Relation: "earnings",
		Filters:  []wrapper.Filter{{Column: "ghost", Op: "=", Value: relalg.NumV(1)}},
	})
	if err == nil {
		t.Fatal("filter on unknown column should fail")
	}
}
