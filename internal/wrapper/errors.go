package wrapper

// The fault taxonomy of the source access layer. Autonomous sources fail
// in recognizably different ways — a reset connection is worth retrying,
// an HTTP 429 is worth retrying after the server's hint, a 404 never is —
// and the engine's retry and circuit-breaker machinery keys off these
// classes. Wrappers classify at the point where the protocol knowledge
// lives (HTTP status codes in httpfetch.go, crawl failures in web.go);
// the planner only asks Retryable and RetryAfter.

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"syscall"
	"time"
)

// The three fault classes, matched with errors.Is. A classified error
// wraps its cause, so the original message and any deeper sentinel stay
// reachable through errors.Is/As.
var (
	// ErrTransient marks a fault likely to clear on its own: timeouts,
	// dropped connections, 5xx responses. Retrying (with backoff) is
	// worthwhile.
	ErrTransient = errors.New("wrapper: transient source fault")
	// ErrRateLimited marks a source that refused the query to shed load
	// (HTTP 429). Retrying is worthwhile after the server's Retry-After
	// hint, when it gave one.
	ErrRateLimited = errors.New("wrapper: source rate limited")
	// ErrPermanent marks a fault retrying cannot fix: client errors,
	// missing relations, pages whose shape no longer matches the wrapping
	// spec.
	ErrPermanent = errors.New("wrapper: permanent source fault")
)

// classified attaches a fault class (and, for rate limits, the server's
// wait hint) to a cause.
type classified struct {
	class error // one of the sentinels above
	after time.Duration
	err   error
}

func (c *classified) Error() string { return c.err.Error() }

func (c *classified) Unwrap() error { return c.err }

// Is matches the fault-class sentinel, so errors.Is(err, ErrTransient)
// works without unwrapping into the cause.
func (c *classified) Is(target error) bool { return target == c.class }

// Transient marks err as a transient source fault. nil stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: ErrTransient, err: err}
}

// Permanent marks err as a permanent source fault. nil stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: ErrPermanent, err: err}
}

// RateLimited marks err as a rate-limit rejection carrying the source's
// Retry-After hint (0: none). nil stays nil.
func RateLimited(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &classified{class: ErrRateLimited, after: after, err: err}
}

// Retryable reports whether a source fault is worth retrying: explicitly
// transient or rate-limited faults, plus unclassified errors that smell
// like network weather (timeouts, refused/reset/broken connections, a
// response cut short). Permanent faults, context cancellation and
// everything unrecognized are not — an unknown failure repeated is an
// unknown failure twice.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPermanent) {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, ErrRateLimited) {
		return true
	}
	// A network-level timeout (dial, TLS, response header) is weather worth
	// retrying even though net/http surfaces it wrapping
	// context.DeadlineExceeded. The bare sentinel is different: it IS a
	// net.Error with Timeout() = true, but it means the query's own
	// deadline fired, so it must not match here.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() && error(ne) != context.DeadlineExceeded {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return false
}

// RetryAfter extracts a rate-limited fault's server-provided wait hint;
// ok is false when the error carries none.
func RetryAfter(err error) (time.Duration, bool) {
	var c *classified
	if errors.As(err, &c) && c.class == ErrRateLimited && c.after > 0 {
		return c.after, true
	}
	return 0, false
}

// ClassifyHTTPStatus classifies a non-2xx HTTP response: 429 is
// rate-limited (honoring a Retry-After header in seconds), 5xx and 408
// are transient, every other client error is permanent. cause carries
// the human-readable failure.
func ClassifyHTTPStatus(status int, retryAfter string, cause error) error {
	switch {
	case status == http.StatusTooManyRequests:
		return RateLimited(cause, ParseRetryAfter(retryAfter))
	case status >= 500 || status == http.StatusRequestTimeout:
		return Transient(cause)
	default:
		return Permanent(cause)
	}
}

// ParseRetryAfter parses a Retry-After header's delay-seconds form; 0 for
// absent, malformed, or HTTP-date values (a conservative "no hint").
func ParseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
