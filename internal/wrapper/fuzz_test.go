package wrapper

import "testing"

// FuzzParseSpec checks the wrapping-spec parser never panics.
func FuzzParseSpec(f *testing.F) {
	f.Add(CurrencySpecCrawl)
	f.Add(CurrencySpecLookup)
	f.Add(StockSpec)
	f.Add(ProfileSpec)
	f.Add("relation r(a)\nstart \"/x\" -> s\nstate s\n  emit")
	f.Add("relation r(a:num\nstate")
	f.Add("follow \"(\" -> nowhere")
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := ParseSpec(src)
		if err != nil {
			return
		}
		// Accepted specs are internally consistent: start state exists and
		// every follow target is defined (validate() guarantees it; this
		// asserts the guarantee holds under fuzzing).
		if _, ok := spec.States[spec.Start]; !ok {
			t.Fatalf("accepted spec with undefined start state: %q", src)
		}
		for _, st := range spec.States {
			for _, fr := range st.Follows {
				if _, ok := spec.States[fr.Target]; !ok {
					t.Fatalf("accepted spec with dangling follow: %q", src)
				}
			}
		}
	})
}
