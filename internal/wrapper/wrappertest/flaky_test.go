package wrappertest

import (
	"context"
	"errors"
	"testing"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

func flakyFixture(rows int) (*Flaky, wrapper.SourceQuery) {
	db := store.NewDB("src")
	tab := db.MustCreateTable("t", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber}))
	for i := 0; i < rows; i++ {
		tab.MustInsert(relalg.NumV(float64(i)))
	}
	return NewFlaky(wrapper.NewRelational(db)), wrapper.SourceQuery{Relation: "t"}
}

func TestFlakyScriptOrder(t *testing.T) {
	boom := errors.New("boom")
	f, q := flakyFixture(2)
	f.FailNext(2, boom)

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := f.Query(ctx, q); !errors.Is(err, boom) {
			t.Fatalf("query %d: err = %v, want scripted fault", i+1, err)
		}
	}
	rel, err := f.Query(ctx, q)
	if err != nil || rel.Len() != 2 {
		t.Fatalf("post-script query = %v, %v, want clean pass-through", rel, err)
	}
	if f.Served() != 3 {
		t.Errorf("Served = %d, want 3", f.Served())
	}
}

func TestFlakyAlwaysAfterScript(t *testing.T) {
	scripted := errors.New("scripted")
	forever := errors.New("forever")
	f, q := flakyFixture(1)
	f.FailNext(1, scripted).FailAlways(forever)

	ctx := context.Background()
	if _, err := f.Query(ctx, q); !errors.Is(err, scripted) {
		t.Fatalf("first query err = %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Query(ctx, q); !errors.Is(err, forever) {
			t.Fatalf("always query err = %v", err)
		}
	}
}

func TestFlakyMidStreamFault(t *testing.T) {
	boom := errors.New("mid-stream")
	f, q := flakyFixture(5)
	f.FailAtTuple(3, boom)

	st, err := wrapper.QueryStream(context.Background(), f, q)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		if _, ok, err := st.Next(); !ok || err != nil {
			t.Fatalf("tuple %d: ok=%v err=%v", i+1, ok, err)
		}
	}
	if _, ok, err := st.Next(); ok || !errors.Is(err, boom) {
		t.Fatalf("after 3 tuples: ok=%v err=%v, want the injected fault", ok, err)
	}

	// The same fault on a materialized query fails it whole: there is no
	// partially materialized answer.
	f2, q2 := flakyFixture(5)
	f2.FailAtTuple(3, boom)
	if _, err := f2.Query(context.Background(), q2); !errors.Is(err, boom) {
		t.Fatalf("materialized mid-stream fault err = %v", err)
	}
}

// TestFlakyComposesUnderCounter: the Counter sees every attempt the
// engine makes against the flaky source — the layering the chaos suite
// relies on to pin retry counts.
func TestFlakyComposesUnderCounter(t *testing.T) {
	boom := errors.New("boom")
	f, q := flakyFixture(2)
	f.FailNext(1, boom)
	ctr := NewCounter(f)

	ctx := context.Background()
	if _, err := ctr.Query(ctx, q); !errors.Is(err, boom) {
		t.Fatalf("first attempt err = %v", err)
	}
	if rel, err := ctr.Query(ctx, q); err != nil || rel.Len() != 2 {
		t.Fatalf("second attempt = %v, %v", rel, err)
	}
	if n := ctr.Queries(); n != 2 {
		t.Errorf("Counter saw %d queries, want 2 (failed attempts count)", n)
	}
}
