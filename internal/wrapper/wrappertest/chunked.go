package wrappertest

import (
	"context"
	"sync"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// Chunked re-serves the inner wrapper's answers through a stream that
// delivers rows in fixed-size chunks and always performs one final empty
// fetch before reporting end of stream — the shape a paginated backend
// produces when the row count is an exact multiple of the page size.
// Tests use it to prove stream consumers treat an empty tail chunk as
// clean EOF rather than an error, a phantom row, or a premature stop.
type Chunked struct {
	wrapper.Wrapper
	// Size is the chunk width (rows per simulated fetch); <= 0 means 1.
	Size int

	mu     sync.Mutex
	chunks int
}

// NewChunked wraps inner with chunk width size.
func NewChunked(inner wrapper.Wrapper, size int) *Chunked {
	return &Chunked{Wrapper: inner, Size: size}
}

// Chunks reports how many chunk fetches streams have performed in total,
// including each stream's final empty fetch.
func (c *Chunked) Chunks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chunks
}

// QueryStream implements wrapper.Streamer over the inner wrapper's
// materialized answer.
func (c *Chunked) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	rel, err := c.Wrapper.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	size := c.Size
	if size <= 0 {
		size = 1
	}
	return &chunkStream{src: c, rel: rel, size: size}, nil
}

// chunkStream hands out buffered rows and pulls the next chunk — possibly
// the empty final one — whenever the buffer drains.
type chunkStream struct {
	src  *Chunked
	rel  *relalg.Relation
	size int
	next int // index of the first row not yet chunked
	buf  []relalg.Tuple
	pos  int
	done bool
}

func (s *chunkStream) Schema() relalg.Schema { return s.rel.Schema }

func (s *chunkStream) Next() (relalg.Tuple, bool, error) {
	for s.pos >= len(s.buf) {
		if s.done {
			return nil, false, nil
		}
		s.fetchChunk()
	}
	t := s.buf[s.pos]
	s.pos++
	return t, true, nil
}

// fetchChunk simulates one paginated round trip. A fetch that finds no
// rows left is still a fetch — that is the empty final chunk.
func (s *chunkStream) fetchChunk() {
	s.src.mu.Lock()
	s.src.chunks++
	s.src.mu.Unlock()
	end := s.next + s.size
	if end >= len(s.rel.Tuples) {
		end = len(s.rel.Tuples)
	}
	s.buf = s.rel.Tuples[s.next:end]
	s.pos = 0
	if s.next == end {
		s.done = true
	}
	s.next = end
}

// NextBatch implements wrapper.BatchStream: a batch is (at most) the
// remainder of the current chunk — chunk boundaries survive as batch
// boundaries, and the final empty fetch still happens before EOF.
func (s *chunkStream) NextBatch(max int) ([]relalg.Tuple, error) {
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	for s.pos >= len(s.buf) {
		if s.done {
			return nil, nil
		}
		s.fetchChunk()
	}
	end := s.pos + max
	if end > len(s.buf) {
		end = len(s.buf)
	}
	rows := s.buf[s.pos:end]
	s.pos = end
	return rows, nil
}

func (s *chunkStream) Close() error { return nil }
