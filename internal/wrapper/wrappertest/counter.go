package wrappertest

import (
	"context"
	"sync"
	"time"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// Counter wraps a source and records every query that actually reaches
// it — materialized fetches and streamed scans alike — so tests can pin
// batching (⌈N/BatchSize⌉ queries), single-flight deduplication (one
// query per canonical probe) and dispatcher admission (in-flight
// ceiling). An optional Delay simulates a slow remote source, observed
// per query and abandoned early when the query context dies.
type Counter struct {
	wrapper.Wrapper
	// Delay is the simulated per-query source latency.
	Delay time.Duration
	// RowEstimates overrides the inner wrapper's static EstimateRows per
	// relation, so planner-ordering tests can shape cost landscapes (for
	// instance, a source that badly misestimates its own cardinality)
	// without building real sources of those sizes.
	RowEstimates map[string]int
	// CostParams overrides the inner wrapper's Cost() when non-nil, for
	// the same reason.
	CostParams *wrapper.Cost

	mu            sync.Mutex
	queries       int
	byCanonical   map[string]int
	log           []wrapper.SourceQuery
	inflight      int
	maxInflight   int
	relInflight   map[string]int
	relMaxInflght map[string]int
}

// NewCounter instruments inner.
func NewCounter(inner wrapper.Wrapper) *Counter {
	return &Counter{Wrapper: inner, byCanonical: map[string]int{},
		relInflight: map[string]int{}, relMaxInflght: map[string]int{}}
}

// begin records a query's start and returns the matching end callback.
// The end callback is safe to call from any goroutine: a partitioned
// fan-out's streams drain — and therefore release — concurrently.
func (c *Counter) begin(q wrapper.SourceQuery) func() {
	c.mu.Lock()
	c.queries++
	c.byCanonical[q.Canonical()]++
	c.log = append(c.log, q)
	c.inflight++
	if c.inflight > c.maxInflight {
		c.maxInflight = c.inflight
	}
	c.relInflight[q.Relation]++
	if c.relInflight[q.Relation] > c.relMaxInflght[q.Relation] {
		c.relMaxInflght[q.Relation] = c.relInflight[q.Relation]
	}
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		c.inflight--
		c.relInflight[q.Relation]--
		c.mu.Unlock()
	}
}

// sleep waits out Delay or the context, whichever ends first.
func (c *Counter) sleep(ctx context.Context) error {
	if c.Delay <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(c.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DistinctCount forwards the optional wrapper.Statser extension of the
// inner wrapper; embedding the Wrapper interface alone would hide it
// from the planner's type assertion.
func (c *Counter) DistinctCount(ctx context.Context, relation, column string) (int, bool) {
	if st, ok := c.Wrapper.(wrapper.Statser); ok {
		return st.DistinctCount(ctx, relation, column)
	}
	return 0, false
}

// EstimateRows implements wrapper.Wrapper, honoring RowEstimates.
func (c *Counter) EstimateRows(ctx context.Context, relation string) int {
	if n, ok := c.RowEstimates[relation]; ok {
		return n
	}
	return c.Wrapper.EstimateRows(ctx, relation)
}

// Cost implements wrapper.Wrapper, honoring CostParams.
func (c *Counter) Cost() wrapper.Cost {
	if c.CostParams != nil {
		return *c.CostParams
	}
	return c.Wrapper.Cost()
}

// Query implements wrapper.Wrapper.
func (c *Counter) Query(ctx context.Context, q wrapper.SourceQuery) (*relalg.Relation, error) {
	end := c.begin(q)
	defer end()
	if err := c.sleep(ctx); err != nil {
		return nil, err
	}
	return c.Wrapper.Query(ctx, q)
}

// QueryStream implements wrapper.Streamer: the streamed fetch counts as
// one query; the in-flight window spans the stream's lifetime, matching
// the dispatcher's slot discipline.
func (c *Counter) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	end := c.begin(q)
	if err := c.sleep(ctx); err != nil {
		end()
		return nil, err
	}
	st, err := wrapper.QueryStream(ctx, c.Wrapper, q)
	if err != nil {
		end()
		return nil, err
	}
	return &countedStream{TupleStream: st, end: end}, nil
}

// countedStream ends its Counter's in-flight window once, at stream
// exhaustion, failure or Close — the same window over which the engine's
// dispatcher holds the scan's admission slot, so MaxInflight can be
// compared against admission caps exactly.
type countedStream struct {
	wrapper.TupleStream
	end  func()
	once sync.Once
}

func (s *countedStream) Next() (relalg.Tuple, bool, error) {
	t, ok, err := s.TupleStream.Next()
	if err != nil || !ok {
		s.once.Do(s.end)
	}
	return t, ok, err
}

func (s *countedStream) Close() error {
	s.once.Do(s.end)
	return s.TupleStream.Close()
}

// Queries reports the queries that reached the source.
func (c *Counter) Queries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queries
}

// QueriesFor reports how often a query canonically equal to q reached
// the source (0 when deduplicated away entirely).
func (c *Counter) QueriesFor(q wrapper.SourceQuery) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byCanonical[q.Canonical()]
}

// MaxDuplicates reports the highest per-canonical-query count — 1 means
// no identical query ever reached the source twice.
func (c *Counter) MaxDuplicates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0
	for _, n := range c.byCanonical {
		if n > max {
			max = n
		}
	}
	return max
}

// MaxInflight reports the peak number of concurrently running queries.
func (c *Counter) MaxInflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxInflight
}

// MaxInflightFor reports the peak number of concurrently running queries
// against one relation — what a partitioned scan fan-out's admission
// reservation bounds (see the invariant in planner/access.go): a K-part
// fan-out shows exactly K here, never more than the per-source pools.
func (c *Counter) MaxInflightFor(relation string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.relMaxInflght[relation]
}

// Log snapshots the queries seen, in arrival order.
func (c *Counter) Log() []wrapper.SourceQuery {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wrapper.SourceQuery(nil), c.log...)
}

// Reset zeroes every counter.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries, c.inflight, c.maxInflight = 0, 0, 0
	c.byCanonical = map[string]int{}
	c.relInflight = map[string]int{}
	c.relMaxInflght = map[string]int{}
	c.log = nil
}
