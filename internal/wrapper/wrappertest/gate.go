// Package wrappertest provides instrumented wrappers for exercising the
// engine's session behavior in tests: gated streams that let a test
// freeze a source mid-transfer and observe how cancellation, deadlines
// and governors react. It lives outside the test binaries so the
// planner, coin and server layers can all drive the same slow-source
// simulation.
package wrappertest

import (
	"context"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// Gate wraps a source so each streamed tuple must be explicitly allowed:
// the stream signals on Emitted before every tuple and then blocks until
// the test sends on Proceed — or until the query context dies, which
// releases the stream with ctx.Err(). It stands in for a slow, flaky
// remote source and lets a test cancel a query at an exact point
// mid-transfer.
type Gate struct {
	wrapper.Wrapper
	Emitted chan struct{}
	Proceed chan struct{}
	open    chan struct{}
}

// NewGate gates inner's streams.
func NewGate(inner wrapper.Wrapper) *Gate {
	return &Gate{Wrapper: inner, Emitted: make(chan struct{}), Proceed: make(chan struct{}),
		open: make(chan struct{})}
}

// Allow services n gate cycles (n tuples pass). The cycles are served one
// at a time but in whatever order blocked streams arrive, so it works
// unchanged when several partitioned streams of one fan-out block on the
// gate concurrently.
func (g *Gate) Allow(n int) {
	for i := 0; i < n; i++ {
		<-g.Emitted
		g.Proceed <- struct{}{}
	}
}

// Open releases the gate permanently: every stream blocked on it — and
// every future tuple — passes immediately and concurrently. It lets a
// test freeze a parallel fan-out mid-transfer with Allow, assert on the
// frozen state, then let all partitions drain at full concurrency.
// Open must be called at most once per Gate.
func (g *Gate) Open() { close(g.open) }

// QueryStream implements wrapper.Streamer.
func (g *Gate) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	st, err := wrapper.QueryStream(ctx, g.Wrapper, q)
	if err != nil {
		return nil, err
	}
	return &gateStream{TupleStream: st, ctx: ctx, g: g}, nil
}

type gateStream struct {
	wrapper.TupleStream
	ctx context.Context
	g   *Gate
}

func (s *gateStream) Next() (relalg.Tuple, bool, error) {
	select {
	case s.g.Emitted <- struct{}{}:
	case <-s.g.open:
		return s.TupleStream.Next()
	case <-s.ctx.Done():
		return nil, false, s.ctx.Err()
	}
	select {
	case <-s.g.Proceed:
	case <-s.g.open:
	case <-s.ctx.Done():
		return nil, false, s.ctx.Err()
	}
	return s.TupleStream.Next()
}
