package wrappertest

import (
	"context"
	"sync"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// Flaky wraps a source with a deterministic fault script, so tests of the
// engine's retry, circuit-breaker and partial-results machinery can
// reproduce exact failure sequences: fail the next N queries then
// recover, fail every query forever, or fail mid-stream after delivering
// K tuples. Faults are consumed from the script in query arrival order
// under a mutex, so a scripted run behaves identically under -race and
// arbitrary scheduling (for one source; multi-source interleavings are
// serialized per source).
//
// Compose it under a Counter to pin attempt counts:
//
//	flaky := wrappertest.NewFlaky(inner)
//	flaky.FailNext(2, wrapper.Transient(errors.New("boom")))
//	counted := wrappertest.NewCounter(flaky)   // Counter sees every attempt
type Flaky struct {
	wrapper.Wrapper

	mu     sync.Mutex
	script []Fault
	always *Fault
	served int
}

// Fault scripts one query's failure.
type Fault struct {
	// Err is the failure the query reports; classify it with
	// wrapper.Transient / wrapper.Permanent / wrapper.RateLimited to
	// exercise specific retry behavior.
	Err error
	// AtTuple, when positive, makes a streamed query succeed at open and
	// fail after delivering this many tuples — the mid-stream fault. Zero
	// fails the whole query up front (stream open included).
	AtTuple int
}

// NewFlaky wraps inner with an empty script (every query passes through).
func NewFlaky(inner wrapper.Wrapper) *Flaky {
	return &Flaky{Wrapper: inner}
}

// FailNext scripts the next n queries to fail with err, then recover.
func (f *Flaky) FailNext(n int, err error) *Flaky {
	f.mu.Lock()
	for i := 0; i < n; i++ {
		f.script = append(f.script, Fault{Err: err})
	}
	f.mu.Unlock()
	return f
}

// FailAtTuple scripts the next streamed query to deliver k tuples and
// then fail with err.
func (f *Flaky) FailAtTuple(k int, err error) *Flaky {
	f.mu.Lock()
	f.script = append(f.script, Fault{Err: err, AtTuple: k})
	f.mu.Unlock()
	return f
}

// FailAlways makes every query fail with err once the script (if any) is
// consumed — the permanently dead source.
func (f *Flaky) FailAlways(err error) *Flaky {
	f.mu.Lock()
	f.always = &Fault{Err: err}
	f.mu.Unlock()
	return f
}

// Served reports how many queries have consumed a scripted (or always)
// fault or passed through cleanly.
func (f *Flaky) Served() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.served
}

// next consumes the fault for one arriving query (nil: pass through).
func (f *Flaky) next() *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.served++
	if len(f.script) > 0 {
		ft := f.script[0]
		f.script = f.script[1:]
		return &ft
	}
	return f.always
}

// DistinctCount forwards the optional wrapper.Statser extension of the
// inner wrapper, like Counter does.
func (f *Flaky) DistinctCount(ctx context.Context, relation, column string) (int, bool) {
	if st, ok := f.Wrapper.(wrapper.Statser); ok {
		return st.DistinctCount(ctx, relation, column)
	}
	return 0, false
}

// Query implements wrapper.Wrapper. A scripted mid-stream fault (AtTuple
// > 0) on a materialized query fails it whole — there is no "partially
// materialized" answer to hand back.
func (f *Flaky) Query(ctx context.Context, q wrapper.SourceQuery) (*relalg.Relation, error) {
	if ft := f.next(); ft != nil {
		return nil, ft.Err
	}
	return f.Wrapper.Query(ctx, q)
}

// QueryStream implements wrapper.Streamer: an AtTuple fault opens the
// inner stream and injects the failure after delivering that many tuples;
// any other fault fails the open.
func (f *Flaky) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	ft := f.next()
	if ft != nil && ft.AtTuple <= 0 {
		return nil, ft.Err
	}
	st, err := wrapper.QueryStream(ctx, f.Wrapper, q)
	if err != nil {
		return nil, err
	}
	if ft == nil {
		return st, nil
	}
	return &flakyStream{TupleStream: st, failAt: ft.AtTuple, err: ft.Err}, nil
}

// flakyStream delivers failAt tuples, then reports err.
type flakyStream struct {
	wrapper.TupleStream
	failAt    int
	delivered int
	err       error
}

func (s *flakyStream) Next() (relalg.Tuple, bool, error) {
	if s.delivered >= s.failAt {
		return nil, false, s.err
	}
	t, ok, err := s.TupleStream.Next()
	if err != nil || !ok {
		return t, ok, err
	}
	s.delivered++
	return t, true, nil
}
