package wrapper

import (
	"context"
	"fmt"

	"repro/internal/relalg"
)

// TupleStream delivers a source query's answer incrementally: the
// engine-side face of a chunked fetch. The contract mirrors
// relalg.Iterator minus Open — a TupleStream is returned ready to read,
// and must be Closed exactly once by the consumer (early close allowed).
type TupleStream interface {
	// Schema describes the delivered tuples.
	Schema() relalg.Schema
	// Next returns the next tuple, or ok=false at end of stream.
	Next() (relalg.Tuple, bool, error)
	// Close releases the stream; safe to call before exhaustion.
	Close() error
}

// Streamer is optionally implemented by wrappers whose sources can
// deliver answers incrementally instead of as one materialized relation.
// The engine always fetches through QueryStream, which falls back to a
// materializing adapter, so implementing Streamer is purely an
// optimization — it lets an engine-side LIMIT stop the transfer early.
// Streams must honor the context: once it is canceled, Next returns
// ctx.Err() instead of contacting the source again.
type Streamer interface {
	// QueryStream executes a source query and streams the answer.
	QueryStream(ctx context.Context, q SourceQuery) (TupleStream, error)
}

// QueryStream fetches q from w incrementally: natively when w implements
// Streamer, otherwise by materializing w.Query's answer and streaming
// over it (the default adapter).
func QueryStream(ctx context.Context, w Wrapper, q SourceQuery) (TupleStream, error) {
	if s, ok := w.(Streamer); ok {
		return s.QueryStream(ctx, q)
	}
	rel, err := w.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return NewRelationStream(rel), nil
}

// BatchStream is optionally implemented by TupleStreams that can deliver
// whole blocks of tuples per call — the streaming counterpart of a
// chunked fetch protocol. The engine's scan leaf probes for it and falls
// back to per-tuple Next (a degenerate one-row batch) when absent, so
// per-tuple gating wrappers (test gates, fault injectors) keep their
// exact semantics.
//
// Contract: NextBatch returns 1..max rows, or (nil, nil) at end of
// stream. An error comes with no rows: an implementation that hits a
// fault after buffering rows returns the buffered rows first and
// re-surfaces the error on the following call, so no delivered tuple is
// lost. The returned slice is valid until the next NextBatch/Close; the
// tuples inside are durable.
type BatchStream interface {
	NextBatch(max int) ([]relalg.Tuple, error)
}

// NextBatch implements BatchStream as a zero-copy subslice of the
// materialized relation.
func (r *RelationStream) NextBatch(max int) ([]relalg.Tuple, error) {
	if r.pos >= len(r.rel.Tuples) {
		return nil, nil
	}
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	end := r.pos + max
	if end > len(r.rel.Tuples) {
		end = len(r.rel.Tuples)
	}
	rows := r.rel.Tuples[r.pos:end]
	r.pos = end
	return rows, nil
}

// RelationStream adapts a materialized relation to the TupleStream
// interface.
type RelationStream struct {
	rel *relalg.Relation
	pos int
}

// NewRelationStream streams over rel.
func NewRelationStream(rel *relalg.Relation) *RelationStream {
	return &RelationStream{rel: rel}
}

// Schema implements TupleStream.
func (r *RelationStream) Schema() relalg.Schema { return r.rel.Schema }

// Next implements TupleStream.
func (r *RelationStream) Next() (relalg.Tuple, bool, error) {
	if r.pos >= len(r.rel.Tuples) {
		return nil, false, nil
	}
	t := r.rel.Tuples[r.pos]
	r.pos++
	return t, true, nil
}

// Close implements TupleStream.
func (r *RelationStream) Close() error { return nil }

// Matcher compiles filters against a schema into a per-tuple predicate,
// resolving each filter column once. ApplyFilters and the streaming
// executor share it so materialized and streaming filtering cannot
// diverge.
func Matcher(schema relalg.Schema, filters []Filter) (func(relalg.Tuple) (bool, error), error) {
	if len(filters) == 0 {
		return func(relalg.Tuple) (bool, error) { return true, nil }, nil
	}
	idx := make([]int, len(filters))
	fns := make([]func(relalg.Value) (bool, error), len(filters))
	for i, f := range filters {
		ci := schema.Index(f.Column)
		if ci < 0 {
			return nil, fmt.Errorf("wrapper: filter on unknown column %s", f.Column)
		}
		idx[i] = ci
		fns[i] = f.Compile()
	}
	return func(t relalg.Tuple) (bool, error) {
		for i, fn := range fns {
			ok, err := fn(t[idx[i]])
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}, nil
}
