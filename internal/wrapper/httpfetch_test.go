package wrapper

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/web"
)

// TestWebWrapperOverRealHTTP closes the Figure 1 loop on the source side:
// the simulated currency site is served by a real HTTP server and the
// wrapper crawls it through the network stack.
func TestWebWrapperOverRealHTTP(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	ts := httptest.NewServer(site.Handler())
	defer ts.Close()

	fetcher := NewHTTPFetcher(ts.URL)
	w := NewWeb("currencyweb", fetcher, MustParseSpec(CurrencySpecCrawl))
	rel, err := w.Query(context.Background(), SourceQuery{Relation: "r3"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("crawl over HTTP = %s", rel)
	}
}

func TestHTTPFetcherErrors(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	ts := httptest.NewServer(site.Handler())
	defer ts.Close()

	f := NewHTTPFetcher(ts.URL)
	if _, err := f.Get(context.Background(), "/nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("404 err = %v", err)
	}
	dead := NewHTTPFetcher("http://127.0.0.1:1")
	if _, err := dead.Get(context.Background(), "/rates"); err == nil {
		t.Error("dead server accepted")
	}
}

func TestHTTPFetcherBodyLimit(t *testing.T) {
	site := web.NewSite("big")
	site.AddPage("/x", strings.Repeat("a", 1000))
	ts := httptest.NewServer(site.Handler())
	defer ts.Close()
	f := NewHTTPFetcher(ts.URL)
	f.MaxBodyBytes = 10
	body, err := f.Get(context.Background(), "/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 10 {
		t.Errorf("body length = %d, want truncation at 10", len(body))
	}
}
