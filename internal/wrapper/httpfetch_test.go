package wrapper

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/web"
)

// TestWebWrapperOverRealHTTP closes the Figure 1 loop on the source side:
// the simulated currency site is served by a real HTTP server and the
// wrapper crawls it through the network stack.
func TestWebWrapperOverRealHTTP(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	ts := httptest.NewServer(site.Handler())
	defer ts.Close()

	fetcher := NewHTTPFetcher(ts.URL)
	w := NewWeb("currencyweb", fetcher, MustParseSpec(CurrencySpecCrawl))
	rel, err := w.Query(context.Background(), SourceQuery{Relation: "r3"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("crawl over HTTP = %s", rel)
	}
}

func TestHTTPFetcherErrors(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	ts := httptest.NewServer(site.Handler())
	defer ts.Close()

	f := NewHTTPFetcher(ts.URL)
	if _, err := f.Get(context.Background(), "/nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("404 err = %v", err)
	}
	dead := NewHTTPFetcher("http://127.0.0.1:1")
	if _, err := dead.Get(context.Background(), "/rates"); err == nil {
		t.Error("dead server accepted")
	}
}

// TestHTTPFetcherReusesConnections pins the shared-client fix: two Gets
// through a fetcher with no explicit Client must ride one keep-alive
// connection. (The old code built a fresh http.Client per call, so every
// page fetch of a crawl re-dialed the site.)
func TestHTTPFetcherReusesConnections(t *testing.T) {
	var dials atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			dials.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	f := NewHTTPFetcher(ts.URL)
	for i := 0; i < 2; i++ {
		if _, err := f.Get(context.Background(), "/page"); err != nil {
			t.Fatal(err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Errorf("two Gets opened %d connections, want 1 (keep-alive reuse)", n)
	}
}

// TestHTTPFetcherClassifiesFaults checks the fetcher attaches the fault
// taxonomy at the protocol boundary: 5xx transient, 429 rate-limited with
// the server's Retry-After hint, 4xx permanent, refused dial transient.
func TestHTTPFetcherClassifiesFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/busy":
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case "/flaky":
			w.WriteHeader(http.StatusBadGateway)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	f := NewHTTPFetcher(ts.URL)
	_, err := f.Get(context.Background(), "/flaky")
	if !errors.Is(err, ErrTransient) {
		t.Errorf("502 classified as %v, want transient", err)
	}
	_, err = f.Get(context.Background(), "/busy")
	if !errors.Is(err, ErrRateLimited) {
		t.Errorf("429 classified as %v, want rate-limited", err)
	}
	if d, ok := RetryAfter(err); !ok || d != time.Second {
		t.Errorf("429 Retry-After hint = %v, %v, want 1s", d, ok)
	}
	_, err = f.Get(context.Background(), "/nope")
	if !errors.Is(err, ErrPermanent) {
		t.Errorf("404 classified as %v, want permanent", err)
	}

	dead := NewHTTPFetcher("http://127.0.0.1:1")
	_, err = dead.Get(context.Background(), "/rates")
	if !Retryable(err) {
		t.Errorf("refused dial not retryable: %v", err)
	}

	// A canceled query is not a source fault.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = f.Get(ctx, "/flaky")
	if Retryable(err) || errors.Is(err, ErrTransient) {
		t.Errorf("canceled fetch classified as source fault: %v", err)
	}
}

func TestHTTPFetcherBodyLimit(t *testing.T) {
	site := web.NewSite("big")
	site.AddPage("/x", strings.Repeat("a", 1000))
	ts := httptest.NewServer(site.Handler())
	defer ts.Close()
	f := NewHTTPFetcher(ts.URL)
	f.MaxBodyBytes = 10
	body, err := f.Get(context.Background(), "/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 10 {
		t.Errorf("body length = %d, want truncation at 10", len(body))
	}
}
