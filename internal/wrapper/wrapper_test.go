package wrapper

import (
	"context"
	"strings"
	"testing"

	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/web"
)

func sampleDB() *store.DB {
	db := store.NewDB("source1")
	t := db.MustCreateTable("r1", relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "revenue", Type: relalg.KindNumber},
		relalg.Column{Name: "currency", Type: relalg.KindString},
	))
	t.MustInsert(relalg.StrV("IBM"), relalg.NumV(1e8), relalg.StrV("USD"))
	t.MustInsert(relalg.StrV("NTT"), relalg.NumV(1e6), relalg.StrV("JPY"))
	t.MustInsert(relalg.StrV("SAP"), relalg.NumV(5e6), relalg.StrV("EUR"))
	return db
}

func TestRelationalWrapperBasics(t *testing.T) {
	w := NewRelational(sampleDB())
	if w.Source() != "source1" {
		t.Errorf("source = %s", w.Source())
	}
	if got := w.Relations(); len(got) != 1 || got[0] != "r1" {
		t.Errorf("relations = %v", got)
	}
	caps, err := w.Capabilities("r1")
	if err != nil || !caps.Selection || !caps.Projection || len(caps.RequiredBindings) != 0 {
		t.Errorf("caps = %+v, %v", caps, err)
	}
	if w.EstimateRows(context.Background(), "r1") != 3 {
		t.Errorf("estimate = %d", w.EstimateRows(context.Background(), "r1"))
	}
	if _, err := w.Schema("zzz"); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestRelationalWrapperQuery(t *testing.T) {
	w := NewRelational(sampleDB())
	rel, err := w.Query(context.Background(), SourceQuery{
		Relation: "r1",
		Columns:  []string{"cname", "revenue"},
		Filters:  []Filter{{Column: "currency", Op: "=", Value: relalg.StrV("JPY")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].S != "NTT" {
		t.Errorf("result = %s", rel)
	}
	if len(rel.Schema.Columns) != 2 {
		t.Errorf("projection lost: %v", rel.Schema.Names())
	}
	// Range filter.
	rel, err = w.Query(context.Background(), SourceQuery{
		Relation: "r1",
		Filters:  []Filter{{Column: "revenue", Op: ">", Value: relalg.NumV(2e6)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("range filter result = %s", rel)
	}
}

func TestRelationalWrapperUsesIndex(t *testing.T) {
	db := sampleDB()
	tab, _ := db.Table("r1")
	if err := tab.CreateIndex("cname"); err != nil {
		t.Fatal(err)
	}
	w := NewRelational(db)
	rel, err := w.Query(context.Background(), SourceQuery{
		Relation: "r1",
		Filters: []Filter{
			{Column: "cname", Op: "=", Value: relalg.StrV("SAP")},
			{Column: "revenue", Op: ">", Value: relalg.NumV(0)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][0].S != "SAP" {
		t.Errorf("indexed lookup = %s", rel)
	}
}

func TestSpecParseAndValidate(t *testing.T) {
	spec, err := ParseSpec(CurrencySpecCrawl)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Relation != "r3" || len(spec.Schema.Columns) != 3 {
		t.Errorf("spec relation = %s %v", spec.Relation, spec.Schema.Names())
	}
	if spec.Schema.Columns[2].Type != relalg.KindNumber {
		t.Error("rate column should be numeric")
	}
	if spec.Start != "index" || spec.StartURL != "/rates" {
		t.Errorf("start = %s %s", spec.StartURL, spec.Start)
	}
}

func TestSpecParseErrors(t *testing.T) {
	bad := map[string]string{
		"no relation":      "start \"/x\" -> a\nstate a\n  emit",
		"bad directive":    "relation r(a)\nstart \"/x\" -> a\nstate a\n  frobnicate",
		"undefined state":  "relation r(a)\nstart \"/x\" -> nope\nstate a\n  emit",
		"unknown column":   "relation r(a)\nstart \"/x\" -> a\nstate a\n  match \"(x)\" as b\n  emit",
		"bad regexp":       "relation r(a)\nstart \"/x\" -> a\nstate a\n  match \"(\" as a\n  emit",
		"captures":         "relation r(a, b)\nstart \"/x\" -> a\nstate a\n  rows \"(x)\" as a, b",
		"follow undefined": "relation r(a)\nstart \"/x\" -> a\nstate a\n  follow \"(x)\" -> nowhere",
		"param not col":    "relation r(a)\nparam q\nstart \"/x\" -> a\nstate a\n  emit",
		"rule outside":     "relation r(a)\nmatch \"(x)\" as a",
	}
	for name, src := range bad {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("%s: ParseSpec succeeded, want error", name)
		}
	}
}

func TestWebWrapperCrawl(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	w := NewWeb("currencyweb", site, MustParseSpec(CurrencySpecCrawl))
	rel, err := w.Query(context.Background(), SourceQuery{Relation: "r3"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("crawl found %d rates, want 4:\n%s", rel.Len(), rel)
	}
	// Check the paper's JPY→USD rate survived extraction and typing.
	found := false
	for _, tup := range rel.Tuples {
		if tup[0].S == "JPY" && tup[1].S == "USD" {
			found = true
			if tup[2].N != 0.0096 {
				t.Errorf("JPY→USD rate = %v", tup[2])
			}
		}
	}
	if !found {
		t.Error("JPY→USD pair missing")
	}
}

func TestWebWrapperLocalFilters(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	w := NewWeb("currencyweb", site, MustParseSpec(CurrencySpecCrawl))
	rel, err := w.Query(context.Background(), SourceQuery{
		Relation: "r3",
		Filters:  []Filter{{Column: "toCur", Op: "=", Value: relalg.StrV("USD")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Errorf("filtered crawl = %s", rel)
	}
}

func TestWebWrapperLookupRequiresBindings(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	w := NewWeb("currencyweb", site, MustParseSpec(CurrencySpecLookup))
	caps, err := w.Capabilities("r3")
	if err != nil {
		t.Fatal(err)
	}
	if len(caps.RequiredBindings) != 2 {
		t.Errorf("caps = %+v", caps)
	}
	// Without bindings: refused.
	if _, err := w.Query(context.Background(), SourceQuery{Relation: "r3"}); err == nil || !strings.Contains(err.Error(), "requires bindings") {
		t.Errorf("unbound lookup err = %v", err)
	}
	// With bindings: a single page fetch.
	site.ResetHits()
	rel, err := w.Query(context.Background(), SourceQuery{Relation: "r3", Filters: []Filter{
		{Column: "fromCur", Op: "=", Value: relalg.StrV("JPY")},
		{Column: "toCur", Op: "=", Value: relalg.StrV("USD")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuples[0][2].N != 0.0096 {
		t.Errorf("lookup = %s", rel)
	}
	if site.Hits() != 1 {
		t.Errorf("lookup fetched %d pages, want 1", site.Hits())
	}
}

func TestWebWrapperRowsExtraction(t *testing.T) {
	site := web.NewStockSite([]web.Quote{
		{Ticker: "IBM", Exchange: "NYSE", Price: 151.25, Currency: "USD"},
		{Ticker: "T", Exchange: "NYSE", Price: 38.5, Currency: "USD"},
		{Ticker: "NTT", Exchange: "TSE", Price: 880000, Currency: "JPY"},
	})
	w := NewWeb("stockweb", site, MustParseSpec(StockSpec))
	rel, err := w.Query(context.Background(), SourceQuery{Relation: "quotes"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("quotes = %s", rel)
	}
	// Inherited exchange column is attached to each row.
	byTicker := map[string]relalg.Tuple{}
	for _, tup := range rel.Tuples {
		byTicker[tup[0].S] = tup
	}
	if byTicker["NTT"][1].S != "TSE" || byTicker["NTT"][2].N != 880000 {
		t.Errorf("NTT row = %v", byTicker["NTT"])
	}
}

func TestWebWrapperProfileSite(t *testing.T) {
	site := web.NewProfileSite([]web.Profile{
		{Name: "IBM", Country: "USA", Sector: "Technology", Employees: 220000},
		{Name: "NTT", Country: "Japan", Sector: "Telecom", Employees: 330000},
	})
	w := NewWeb("profileweb", site, MustParseSpec(ProfileSpec))
	rel, err := w.Query(context.Background(), SourceQuery{Relation: "profiles"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("profiles = %s", rel)
	}
}

func TestWebWrapperErrors(t *testing.T) {
	site := web.NewCurrencySite(web.PaperRates())
	w := NewWeb("currencyweb", site, MustParseSpec(CurrencySpecCrawl))
	if _, err := w.Query(context.Background(), SourceQuery{Relation: "zzz"}); err == nil {
		t.Error("unknown relation accepted")
	}
	// A broken site (missing start page) surfaces as a fetch error.
	empty := web.NewSite("empty")
	w2 := NewWeb("empty", empty, MustParseSpec(CurrencySpecCrawl))
	if _, err := w2.Query(context.Background(), SourceQuery{Relation: "r3"}); err == nil || !strings.Contains(err.Error(), "fetching") {
		t.Errorf("missing page err = %v", err)
	}
	// A page that stops matching the pattern is a wrapping error, not a
	// silent empty answer.
	broken := web.NewSite("broken")
	broken.AddPage("/rates", `<a href="/rate?from=USD&to=JPY">x</a>`)
	broken.AddPage("/rate?from=USD&to=JPY", "<html>layout changed!</html>")
	w3 := NewWeb("broken", broken, MustParseSpec(CurrencySpecCrawl))
	if _, err := w3.Query(context.Background(), SourceQuery{Relation: "r3"}); err == nil || !strings.Contains(err.Error(), "matched nothing") {
		t.Errorf("broken page err = %v", err)
	}
}

func TestCrawlCycleTermination(t *testing.T) {
	// Two pages linking to each other must not loop.
	site := web.NewSite("loopy")
	site.AddPage("/a", `v: 1 <a href="/b">b</a>`)
	site.AddPage("/b", `v: 2 <a href="/a">a</a>`)
	spec := MustParseSpec(`
relation loop(v:num)
start "/a" -> node
state node
  match "v: ([0-9]+)" as v
  emit
  follow "<a href=\"(/[ab])\">" -> node
`)
	w := NewWeb("loopy", site, spec)
	rel, err := w.Query(context.Background(), SourceQuery{Relation: "loop"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("loop crawl = %s", rel)
	}
}

func TestApplyFiltersAndProject(t *testing.T) {
	rel := relalg.NewRelation("t", relalg.NewSchema(
		relalg.Column{Name: "a", Type: relalg.KindNumber},
		relalg.Column{Name: "b", Type: relalg.KindString},
	))
	rel.MustAdd(relalg.NumV(1), relalg.StrV("x"))
	rel.MustAdd(relalg.NumV(2), relalg.StrV("y"))
	got, err := ApplyFilters(rel, []Filter{{Column: "a", Op: ">=", Value: relalg.NumV(2)}})
	if err != nil || got.Len() != 1 {
		t.Errorf("ApplyFilters = %v, %v", got, err)
	}
	if _, err := ApplyFilters(rel, []Filter{{Column: "zzz", Op: "=", Value: relalg.NumV(1)}}); err == nil {
		t.Error("unknown filter column accepted")
	}
	p, err := ProjectColumns(rel, []string{"b"})
	if err != nil || len(p.Schema.Columns) != 1 || p.Schema.Columns[0].Name != "b" {
		t.Errorf("ProjectColumns = %v, %v", p, err)
	}
}

func TestRelationalInListFilter(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		db := sampleDB()
		if indexed {
			tab, err := db.Table("r1")
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.CreateIndex("cname"); err != nil {
				t.Fatal(err)
			}
		}
		w := NewRelational(db)
		caps, err := w.Capabilities("r1")
		if err != nil || !caps.InList {
			t.Fatalf("indexed=%v: caps = %+v, %v (want InList)", indexed, caps, err)
		}
		rel, err := w.Query(context.Background(), SourceQuery{
			Relation: "r1",
			Filters: []Filter{{Column: "cname", Op: OpIn, Values: []relalg.Value{
				relalg.StrV("NTT"), relalg.StrV("IBM"), relalg.StrV("NTT"), // duplicate tolerated
			}}},
		})
		if err != nil {
			t.Fatalf("indexed=%v: %v", indexed, err)
		}
		if rel.Len() != 2 {
			t.Errorf("indexed=%v: IN matched %d rows, want 2:\n%s", indexed, rel.Len(), rel)
		}
		for _, tup := range rel.Tuples {
			if s := tup[0].S; s != "NTT" && s != "IBM" {
				t.Errorf("indexed=%v: IN returned %s", indexed, s)
			}
		}
		// NULL column values never match an IN list.
		empty, err := w.Query(context.Background(), SourceQuery{
			Relation: "r1",
			Filters:  []Filter{{Column: "cname", Op: OpIn, Values: []relalg.Value{relalg.Null}}},
		})
		if err != nil || empty.Len() != 0 {
			t.Errorf("indexed=%v: IN (NULL) = %d rows, %v; want 0 rows", indexed, empty.Len(), err)
		}
	}
}

func TestSourceQueryCanonical(t *testing.T) {
	base := SourceQuery{Relation: "r1", Filters: []Filter{
		{Column: "currency", Op: "=", Value: relalg.StrV("JPY")},
		{Column: "cname", Op: OpIn, Values: []relalg.Value{relalg.StrV("a"), relalg.StrV("b")}},
	}}
	// Filter order and IN-value order are canonicalized away.
	same := SourceQuery{Relation: "r1", Filters: []Filter{
		{Column: "cname", Op: OpIn, Values: []relalg.Value{relalg.StrV("b"), relalg.StrV("a")}},
		{Column: "currency", Op: "=", Value: relalg.StrV("JPY")},
	}}
	if base.Canonical() != same.Canonical() {
		t.Errorf("reordered filters changed the canonical key:\n%q\nvs\n%q", base.Canonical(), same.Canonical())
	}
	// Different values, relations or projections do not collide.
	diffs := []SourceQuery{
		{Relation: "r2", Filters: base.Filters},
		{Relation: "r1", Filters: []Filter{{Column: "currency", Op: "=", Value: relalg.StrV("USD")}}},
		{Relation: "r1", Filters: base.Filters, Columns: []string{"cname"}},
		{Relation: "r1", Filters: []Filter{
			{Column: "currency", Op: "=", Value: relalg.StrV("JPY")},
			{Column: "cname", Op: OpIn, Values: []relalg.Value{relalg.StrV("a")}},
		}},
	}
	for i, d := range diffs {
		if d.Canonical() == base.Canonical() {
			t.Errorf("query %d collides with base canonical key %q", i, base.Canonical())
		}
	}
	// Projection order is significant (it changes the result columns).
	p1 := SourceQuery{Relation: "r1", Columns: []string{"cname", "revenue"}}
	p2 := SourceQuery{Relation: "r1", Columns: []string{"revenue", "cname"}}
	if p1.Canonical() == p2.Canonical() {
		t.Error("projection order was canonicalized away; it must stay significant")
	}
}

func TestCheckRequiredBindingsAcceptsInList(t *testing.T) {
	caps := Capabilities{RequiredBindings: []string{"fromCur"}}
	if _, err := CheckRequiredBindings(caps, SourceQuery{
		Relation: "r3",
		Filters:  []Filter{{Column: "fromCur", Op: OpIn, Values: []relalg.Value{relalg.StrV("JPY")}}},
	}); err != nil {
		t.Errorf("non-empty IN on a required binding rejected: %v", err)
	}
	if _, err := CheckRequiredBindings(caps, SourceQuery{
		Relation: "r3",
		Filters:  []Filter{{Column: "fromCur", Op: OpIn}},
	}); err == nil {
		t.Error("empty IN accepted as a required binding")
	}
}

func TestRequiredBindingsOnRelational(t *testing.T) {
	w := NewRelational(sampleDB())
	w.Require = map[string][]string{"r1": {"cname"}}
	caps, err := w.Capabilities("r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(caps.RequiredBindings) != 1 || caps.RequiredBindings[0] != "cname" {
		t.Errorf("required bindings = %v", caps.RequiredBindings)
	}
}
