package wrapper

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/relalg"
)

// Fetcher is the page-access contract the Web wrapper runs against; both
// the simulated internal/web.Site and a live HTTP client satisfy it. The
// context bounds one page fetch: implementations abort (and return
// ctx.Err()) when it is canceled, so an abandoned crawl stops contacting
// the site.
type Fetcher interface {
	Get(ctx context.Context, url string) (string, error)
}

// Web executes wrapping specifications against a site, exposing its pages
// as relations. Its capabilities are deliberately weak — no remote
// selection or projection, and required bindings when the spec is
// parameterized — which is exactly what forces the planner's
// capability-aware decisions.
type Web struct {
	Name  string
	Site  Fetcher
	Specs map[string]*Spec
	// CostParams defaults to a WAN-ish profile when zero (Web sources are
	// much more expensive per query than the relational source).
	CostParams Cost
	// RowEstimate is the planner's cardinality guess for crawled
	// relations; zero means DefaultWebRowEstimate.
	RowEstimate int
	// MaxPages bounds one crawl; zero means DefaultMaxPages.
	MaxPages int
}

// DefaultWebRowEstimate is the planner's guess when the wrapper has none.
const DefaultWebRowEstimate = 100

// DefaultMaxPages bounds one navigation of the transition network.
const DefaultMaxPages = 10000

// NewWeb builds a Web wrapper over a fetcher from compiled specs.
func NewWeb(name string, site Fetcher, specs ...*Spec) *Web {
	m := map[string]*Spec{}
	for _, s := range specs {
		m[s.Relation] = s
	}
	return &Web{Name: name, Site: site, Specs: m, CostParams: Cost{PerQuery: 500, PerTuple: 5}}
}

// Source implements Wrapper.
func (w *Web) Source() string { return w.Name }

// Relations implements Wrapper.
func (w *Web) Relations() []string {
	out := make([]string, 0, len(w.Specs))
	for r := range w.Specs {
		out = append(out, r)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Schema implements Wrapper.
func (w *Web) Schema(relation string) (relalg.Schema, error) {
	spec, ok := w.Specs[relation]
	if !ok {
		return relalg.Schema{}, fmt.Errorf("wrapper: %s exports no relation %s", w.Name, relation)
	}
	return spec.Schema, nil
}

// Capabilities implements Wrapper.
func (w *Web) Capabilities(relation string) (Capabilities, error) {
	spec, ok := w.Specs[relation]
	if !ok {
		return Capabilities{}, fmt.Errorf("wrapper: %s exports no relation %s", w.Name, relation)
	}
	return Capabilities{RequiredBindings: append([]string(nil), spec.Params...)}, nil
}

// EstimateRows implements Wrapper. The estimate is a configured constant
// (a Web form gives no cardinality), so the probe context is unused.
func (w *Web) EstimateRows(context.Context, string) int {
	if w.RowEstimate > 0 {
		return w.RowEstimate
	}
	return DefaultWebRowEstimate
}

// Cost implements Wrapper.
func (w *Web) Cost() Cost {
	if w.CostParams == (Cost{}) {
		return Cost{PerQuery: 500, PerTuple: 5}
	}
	return w.CostParams
}

// Query implements Wrapper: it instantiates the start URL with any
// required bindings, navigates the transition network, extracts tuples,
// and (locally) applies the remaining filters so callers get exactly what
// they asked for even though the source itself cannot select.
func (w *Web) Query(ctx context.Context, q SourceQuery) (*relalg.Relation, error) {
	spec, ok := w.Specs[q.Relation]
	if !ok {
		return nil, fmt.Errorf("wrapper: %s exports no relation %s", w.Name, q.Relation)
	}
	caps, _ := w.Capabilities(q.Relation)
	bound, err := CheckRequiredBindings(caps, q)
	if err != nil {
		return nil, err
	}
	startURL := spec.StartURL
	for _, p := range spec.Params {
		startURL = strings.ReplaceAll(startURL, "{"+p+"}", bound[p].String())
	}

	run := &crawl{ctx: ctx, w: w, spec: spec}
	if err := run.visit(startURL, spec.Start, map[string]string{}); err != nil {
		return nil, err
	}
	rel, err := ApplyFilters(run.result(), q.Filters)
	if err != nil {
		return nil, err
	}
	return ProjectColumns(rel, q.Columns)
}

// crawl is one navigation of the transition network. Its context is
// checked before every page fetch, so a canceled query stops crawling
// mid-navigation.
type crawl struct {
	ctx    context.Context
	w      *Web
	spec   *Spec
	tuples []map[string]string
	pages  int
	seen   map[string]bool
}

func (c *crawl) visit(url, stateName string, inherited map[string]string) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	max := c.w.MaxPages
	if max == 0 {
		max = DefaultMaxPages
	}
	if c.pages >= max {
		// The transition network is bigger than the budget allows; another
		// crawl of the same site will overrun it again.
		return Permanent(fmt.Errorf("wrapper: %s: crawl exceeded %d pages", c.w.Name, max))
	}
	if c.seen == nil {
		c.seen = map[string]bool{}
	}
	key := stateName + "\x00" + url
	if c.seen[key] {
		return nil
	}
	c.seen[key] = true
	c.pages++

	body, err := c.w.Site.Get(c.ctx, url)
	if err != nil {
		return fmt.Errorf("wrapper: %s: fetching %s: %w", c.w.Name, url, err)
	}
	state := c.spec.States[stateName]

	vals := map[string]string{}
	for k, v := range inherited {
		vals[k] = v
	}
	for _, m := range state.Matches {
		subject := body
		if m.FromURL {
			subject = url
		}
		groups := m.Pattern.FindStringSubmatch(subject)
		if groups == nil {
			// The page's shape no longer matches the wrapping spec — a
			// stale spec, not network weather; retrying re-fetches the
			// same mismatched page.
			return Permanent(fmt.Errorf("wrapper: %s: state %s: pattern for %s matched nothing on %s",
				c.w.Name, state.Name, m.Column, url))
		}
		vals[m.Column] = groups[1]
	}
	if state.Rows != nil {
		for _, groups := range state.Rows.Pattern.FindAllStringSubmatch(body, -1) {
			row := map[string]string{}
			for k, v := range vals {
				row[k] = v
			}
			for i, col := range state.Rows.Columns {
				row[col] = groups[i+1]
			}
			c.tuples = append(c.tuples, row)
		}
	}
	if state.Emit {
		row := map[string]string{}
		for k, v := range vals {
			row[k] = v
		}
		c.tuples = append(c.tuples, row)
	}
	for _, f := range state.Follows {
		for _, groups := range f.Pattern.FindAllStringSubmatch(body, -1) {
			if err := c.visit(groups[1], f.Target, vals); err != nil {
				return err
			}
		}
	}
	return nil
}

// result converts the extracted string tuples into a typed relation.
func (c *crawl) result() *relalg.Relation {
	rel := relalg.NewRelation(c.spec.Relation, c.spec.Schema)
	for _, row := range c.tuples {
		t := make(relalg.Tuple, len(c.spec.Schema.Columns))
		ok := true
		for i, col := range c.spec.Schema.Columns {
			text, present := row[col.Name]
			if !present {
				ok = false
				break
			}
			v, err := relalg.ParseValue(text, col.Type)
			if err != nil {
				ok = false
				break
			}
			t[i] = v
		}
		if ok {
			rel.Tuples = append(rel.Tuples, t)
		}
	}
	return rel
}

// CurrencySpecCrawl is the wrapping specification for the simulated
// currency site's crawlable form: navigate the index, follow every pair
// link, extract from/to from the URL and the rate from the body.
const CurrencySpecCrawl = `
# currency-exchange wrapper (crawl form): r3(fromCur, toCur, rate)
relation r3(fromCur, toCur, rate:num)
start "/rates" -> index
state index
  follow "<a href=\"(/rate[^\"]*)\">" -> pair
state pair
  matchurl "from=([A-Z]+)" as fromCur
  matchurl "to=([A-Z]+)" as toCur
  match "rate: ([0-9.eE+-]+)" as rate
  emit
`

// CurrencySpecLookup is the parameterized form of the same site: the
// wrapper can only answer when fromCur and toCur are bound (a Web form),
// which exercises the planner's bind-join machinery.
const CurrencySpecLookup = `
# currency-exchange wrapper (lookup form): requires both currencies bound
relation r3(fromCur, toCur, rate:num)
param fromCur
param toCur
start "/rate?from={fromCur}&to={toCur}" -> pair
state pair
  matchurl "from=([A-Z]+)" as fromCur
  matchurl "to=([A-Z]+)" as toCur
  match "rate: ([0-9.eE+-]+)" as rate
  emit
`

// StockSpec wraps the simulated ticker site as quotes(ticker, exchange,
// price, currency).
const StockSpec = `
# stock ticker wrapper: quotes(ticker, exchange, price, currency)
relation quotes(ticker, exchange, price:num, currency)
start "/exchanges" -> index
state index
  follow "<a href=\"(/exchange/[^\"]*)\">" -> board
state board
  match "exchange: ([A-Z]+)" as exchange
  rows "<tr><td>([A-Z.]+)</td><td>([0-9.eE+-]+)</td><td>([A-Z]+)</td></tr>" as ticker, price, currency
`

// ProfileSpec wraps the simulated company directory as profiles(cname,
// country, sector, employees).
const ProfileSpec = `
# company profile wrapper: profiles(cname, country, sector, employees)
relation profiles(cname, country, sector, employees:num)
start "/companies" -> index
state index
  follow "<a href=\"(/company[^\"]*)\">" -> card
state card
  match "name: ([A-Za-z0-9 .&-]+)</p>" as cname
  match "country: ([A-Za-z ]+)</p>" as country
  match "sector: ([A-Za-z ]+)</p>" as sector
  match "employees: ([0-9]+)</p>" as employees
  emit
`
