package domain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/relalg"
)

// Registry is the mediator's knowledge base: the domain model, every
// context theory, every registered relation with its schema and elevation
// axioms, and the ancillary-source mappings. Compile turns the whole
// registry into the datalog program the abductive procedure runs against.
type Registry struct {
	Model *Model

	contexts  map[string]*Context
	relations map[string]*relationInfo
	relOrder  []string
	ancillary []Ancillary
	denials   []datalog.Clause
}

type relationInfo struct {
	schema    relalg.Schema
	elevation *Elevation // nil for unelevated (context-free) relations
}

// NewRegistry creates a registry over a domain model.
func NewRegistry(m *Model) *Registry {
	return &Registry{
		Model:     m,
		contexts:  map[string]*Context{},
		relations: map[string]*relationInfo{},
	}
}

// AddContext registers a context theory.
func (r *Registry) AddContext(c *Context) error {
	if _, ok := r.contexts[c.Name]; ok {
		return fmt.Errorf("domain: context %s already registered", c.Name)
	}
	r.contexts[c.Name] = c
	return nil
}

// MustAddContext is AddContext that panics; for fixtures.
func (r *Registry) MustAddContext(c *Context) {
	if err := r.AddContext(c); err != nil {
		panic(err)
	}
}

// Context returns a registered context theory.
func (r *Registry) Context(name string) (*Context, bool) {
	c, ok := r.contexts[name]
	return c, ok
}

// ContextNames lists registered contexts, sorted.
func (r *Registry) ContextNames() []string {
	out := make([]string, 0, len(r.contexts))
	for n := range r.contexts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterRelation records a relation's schema and (optionally) its
// elevation axioms. Registering a new source is exactly this call plus, if
// the source speaks a new context, an AddContext — the paper's
// extensibility claim.
func (r *Registry) RegisterRelation(name string, schema relalg.Schema, elev *Elevation) error {
	if name == "" {
		return fmt.Errorf("domain: relation needs a name")
	}
	if _, ok := r.relations[name]; ok {
		return fmt.Errorf("domain: relation %s already registered", name)
	}
	if elev != nil {
		if err := elev.validate(); err != nil {
			return err
		}
		if elev.Relation != name {
			return fmt.Errorf("domain: elevation names relation %s, registering %s", elev.Relation, name)
		}
		if _, ok := r.contexts[elev.Context]; !ok {
			return fmt.Errorf("domain: relation %s: unknown context %s", name, elev.Context)
		}
		for _, c := range elev.Columns {
			if schema.Index(c.Column) < 0 {
				return fmt.Errorf("domain: relation %s: elevated column %s not in schema", name, c.Column)
			}
			if _, ok := r.Model.Type(c.SemType); !ok {
				return fmt.Errorf("domain: relation %s: unknown semantic type %s", name, c.SemType)
			}
		}
	}
	r.relations[name] = &relationInfo{schema: schema, elevation: elev}
	r.relOrder = append(r.relOrder, name)
	return nil
}

// MustRegisterRelation is RegisterRelation that panics; for fixtures.
func (r *Registry) MustRegisterRelation(name string, schema relalg.Schema, elev *Elevation) {
	if err := r.RegisterRelation(name, schema, elev); err != nil {
		panic(err)
	}
}

// Schema returns the schema of a registered relation.
func (r *Registry) Schema(name string) (relalg.Schema, bool) {
	info, ok := r.relations[name]
	if !ok {
		return relalg.Schema{}, false
	}
	return info.schema, true
}

// ElevationFor returns the elevation axioms of a relation (nil if
// unelevated).
func (r *Registry) ElevationFor(name string) *Elevation {
	info, ok := r.relations[name]
	if !ok {
		return nil
	}
	return info.elevation
}

// RelationNames lists registered relations in registration order.
func (r *Registry) RelationNames() []string {
	return append([]string(nil), r.relOrder...)
}

// AddAncillary maps a conversion-support predicate to a relation.
func (r *Registry) AddAncillary(pred, relation string) error {
	if _, ok := r.relations[relation]; !ok {
		return fmt.Errorf("domain: ancillary %s: relation %s not registered", pred, relation)
	}
	for _, a := range r.ancillary {
		if a.Pred == pred {
			return fmt.Errorf("domain: ancillary %s already mapped", pred)
		}
	}
	r.ancillary = append(r.ancillary, Ancillary{Pred: pred, Relation: relation})
	return nil
}

// MustAddAncillary is AddAncillary that panics; for fixtures.
func (r *Registry) MustAddAncillary(pred, relation string) {
	if err := r.AddAncillary(pred, relation); err != nil {
		panic(err)
	}
}

// AddDenialText registers an integrity constraint: a conjunction (in the
// datalog concrete syntax) over relation names, comparisons and constants
// that must never hold of the sources' data. During mediation, a
// conflict-resolution case whose hypothesized source tuples definitely
// violate a denial is discarded. Example:
//
//	reg.AddDenialText(`r3(C, C, R)`)        // no self-rates
//	reg.AddDenialText(`r1(N, Rev, C), Rev < 0`)
func (r *Registry) AddDenialText(body string) error {
	goals, err := datalog.ParseGoals(body)
	if err != nil {
		return err
	}
	rewritten := make([]datalog.Term, len(goals))
	for i, g := range goals {
		c, ok := g.(datalog.Compound)
		if !ok {
			return fmt.Errorf("domain: denial goal %s is not callable", g)
		}
		if info, isRel := r.relations[c.Functor]; isRel {
			if len(c.Args) != len(info.schema.Columns) {
				return fmt.Errorf("domain: denial uses %s/%d, relation has %d columns",
					c.Functor, len(c.Args), len(info.schema.Columns))
			}
			c = datalog.Compound{Functor: RelPred(c.Functor), Args: c.Args}
		}
		rewritten[i] = c
	}
	r.denials = append(r.denials, datalog.Clause{
		Head: datalog.Comp("ic"),
		Body: rewritten,
	})
	return nil
}

// Denials returns the registered integrity constraints.
func (r *Registry) Denials() []datalog.Clause {
	return append([]datalog.Clause(nil), r.denials...)
}

// RelPred names the abducible datalog predicate of a source relation.
func RelPred(relation string) string { return "rel_" + relation }

// RelationOfPred inverts RelPred; ok is false for non-relation predicates.
func RelationOfPred(pred string) (string, bool) {
	if rest, found := strings.CutPrefix(pred, "rel_"); found {
		return rest, true
	}
	return "", false
}

// SemPred names the generated conversion predicate for a relation column
// under a receiver context.
func SemPred(receiver, relation, column string) string {
	return "sem_" + receiver + "__" + relation + "__" + column
}

func mvalPred(ctx, relation, column, modifier string) string {
	return "mv_" + ctx + "__" + relation + "__" + column + "__" + modifier
}

// NeedsConversion reports whether a column of a relation is elevated to a
// semantic type with at least one modifier (and therefore flows through a
// sem_ predicate during mediation).
func (r *Registry) NeedsConversion(relation, column string) (bool, error) {
	info, ok := r.relations[relation]
	if !ok {
		return false, fmt.Errorf("domain: relation %s not registered", relation)
	}
	if info.elevation == nil {
		return false, nil
	}
	st := info.elevation.SemTypeOf(column)
	if st == "" {
		return false, nil
	}
	mods, err := r.Model.ModifiersOf(st)
	if err != nil {
		return false, err
	}
	return len(mods) > 0, nil
}

// IsAbducible reports whether pred/arity is a source-relation predicate;
// the mediator passes this to the solver.
func (r *Registry) IsAbducible(pred string, arity int) bool {
	rel, ok := RelationOfPred(pred)
	if !ok {
		return false
	}
	info, ok := r.relations[rel]
	return ok && len(info.schema.Columns) == arity
}

// CompileMeta carries human-readable annotations for the compiled rules:
// one note per clause of each annotated predicate, keyed by "name/arity".
// The mediator joins it with derivation traces to explain each branch of a
// mediated query.
type CompileMeta struct {
	ClauseNotes map[string][]string
}

// note registers the note for the next clause of pred/arity.
func (m *CompileMeta) note(pred string, arity int, text string) {
	key := fmt.Sprintf("%s/%d", pred, arity)
	m.ClauseNotes[key] = append(m.ClauseNotes[key], text)
}

// Note returns the note for a clause, if any.
func (m *CompileMeta) Note(key string, clause int) (string, bool) {
	notes := m.ClauseNotes[key]
	if clause < 0 || clause >= len(notes) || notes[clause] == "" {
		return "", false
	}
	return notes[clause], true
}

// Compile generates the datalog program for mediating queries posed in the
// given receiver context: conversion functions, ancillary mappings, and
// per-relation-column modifier-value and conversion-composition rules.
func (r *Registry) Compile(receiver string) (*datalog.Program, error) {
	prog, _, err := r.CompileWithMeta(receiver)
	return prog, err
}

// CompileWithMeta is Compile plus the per-clause annotations.
func (r *Registry) CompileWithMeta(receiver string) (*datalog.Program, *CompileMeta, error) {
	recvCtx, ok := r.contexts[receiver]
	if !ok {
		return nil, nil, fmt.Errorf("domain: unknown receiver context %s", receiver)
	}
	prog := datalog.NewProgram()
	meta := &CompileMeta{ClauseNotes: map[string][]string{}}

	// Conversion functions.
	for _, mod := range r.conversionModifiers() {
		conv, _ := r.Model.ConversionFor(mod)
		prog.Add(conv.Clauses...)
		for i := range conv.Clauses {
			if i == 0 {
				meta.note(CvtPred(mod), 4, "")
				continue
			}
			meta.note(CvtPred(mod), 4, fmt.Sprintf("apply %s conversion (rule %d)", mod, i))
		}
	}

	// Ancillary mappings: pred(X...) :- rel_R(X...).
	for _, a := range r.ancillary {
		info := r.relations[a.Relation]
		n := len(info.schema.Columns)
		args := make([]datalog.Term, n)
		for i := range args {
			args[i] = datalog.NewVar(fmt.Sprintf("X%d", i))
		}
		prog.Add(datalog.Clause{
			Head: datalog.Comp(a.Pred, args...),
			Body: []datalog.Term{datalog.Comp(RelPred(a.Relation), args...)},
		})
	}

	// Per-relation rules.
	for _, rel := range r.relOrder {
		info := r.relations[rel]
		if info.elevation == nil {
			continue
		}
		for _, ec := range info.elevation.Columns {
			if err := r.compileColumn(prog, meta, rel, info, ec, recvCtx); err != nil {
				return nil, nil, err
			}
		}
	}
	return prog, meta, nil
}

func (r *Registry) conversionModifiers() []string {
	out := make([]string, 0, len(r.Model.conversions))
	for m := range r.Model.conversions {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// compileColumn emits, for one elevated column, the modifier-value rules
// in the source context and the sem_ rule composing one conversion per
// modifier from source to receiver values.
func (r *Registry) compileColumn(prog *datalog.Program, meta *CompileMeta, rel string, info *relationInfo, ec ElevatedColumn, recvCtx *Context) error {
	mods, err := r.Model.ModifiersOf(ec.SemType)
	if err != nil {
		return err
	}
	if len(mods) == 0 {
		return nil // context-insensitive column: identity, no rules needed
	}
	srcCtx := r.contexts[info.elevation.Context]
	schema := info.schema
	n := len(schema.Columns)

	// Shared argument variables A0..A(n-1) for the relation's columns.
	argVars := make([]datalog.Term, n)
	for i := range argVars {
		argVars[i] = datalog.NewVar(fmt.Sprintf("A%d", i))
	}

	// Modifier-value rules in the source context.
	for _, mod := range mods {
		if err := r.compileMval(prog, meta, rel, srcCtx, schema, argVars, ec, mod); err != nil {
			return err
		}
	}

	// The sem_ rule: chain conversions in canonical modifier order.
	colIdx := schema.Index(ec.Column)
	cur := argVars[colIdx] // V0 = raw column value
	var body []datalog.Term
	for j, mod := range mods {
		decl, ok := recvCtx.Decl(ec.SemType, mod)
		if !ok {
			return fmt.Errorf("domain: receiver context %s does not declare %s.%s", recvCtx.Name, ec.SemType, mod)
		}
		tgt, err := receiverConst(recvCtx.Name, decl)
		if err != nil {
			return err
		}
		if _, ok := r.Model.ConversionFor(mod); !ok {
			return fmt.Errorf("domain: no conversion registered for modifier %s", mod)
		}
		src := datalog.NewVar(fmt.Sprintf("S%d", j))
		next := datalog.NewVar(fmt.Sprintf("V%d", j+1))
		body = append(body,
			datalog.Comp(mvalPred(srcCtx.Name, rel, ec.Column, mod), append(append([]datalog.Term(nil), argVars...), src)...),
			datalog.Comp(CvtPred(mod), cur, src, tgt, next),
		)
		cur = next
	}
	head := datalog.Comp(SemPred(recvCtx.Name, rel, ec.Column), append(append([]datalog.Term(nil), argVars...), cur)...)
	prog.Add(datalog.Clause{Head: head, Body: body})
	meta.note(SemPred(recvCtx.Name, rel, ec.Column), n+1, fmt.Sprintf(
		"convert %s.%s (%s, context %s) into context %s",
		rel, ec.Column, ec.SemType, srcCtx.Name, recvCtx.Name))
	return nil
}

// receiverConst extracts the single constant value a receiver declaration
// must provide.
func receiverConst(ctxName string, decl *ModifierDecl) (datalog.Term, error) {
	if len(decl.Cases) != 1 || decl.Cases[0].CondModifier != "" {
		return nil, fmt.Errorf("domain: receiver context %s: %s.%s must be a single unconditional case",
			ctxName, decl.SemType, decl.Modifier)
	}
	v := decl.Cases[0].Value
	if v.Const == nil {
		return nil, fmt.Errorf("domain: receiver context %s: %s.%s must be constant (attribute values have no meaning for a receiver)",
			ctxName, decl.SemType, decl.Modifier)
	}
	return v.Const, nil
}

// compileMval emits the modifier-value rules for one (relation, column,
// modifier) in the source context, making the Case chain disjoint.
func (r *Registry) compileMval(prog *datalog.Program, meta *CompileMeta, rel string, srcCtx *Context, schema relalg.Schema, argVars []datalog.Term, ec ElevatedColumn, mod string) error {
	decl, ok := srcCtx.Decl(ec.SemType, mod)
	if !ok {
		return fmt.Errorf("domain: context %s does not declare %s.%s (needed by %s.%s)",
			srcCtx.Name, ec.SemType, mod, rel, ec.Column)
	}
	pred := mvalPred(srcCtx.Name, rel, ec.Column, mod)

	// condGoals builds the goals testing one case condition with the given
	// operator (used both positively and negated). A modifier condition
	// resolves through that modifier's own mval rules; an attribute
	// condition compares the raw column value.
	condGoals := func(cs Case, op string, condVarIdx int) ([]datalog.Term, error) {
		goalOp, err := condOp(op)
		if err != nil {
			return nil, err
		}
		if cs.CondAttribute != "" {
			idx := schema.Index(cs.CondAttribute)
			if idx < 0 {
				return nil, fmt.Errorf("domain: context %s: %s.%s conditions on attribute %s, which relation %s lacks",
					srcCtx.Name, ec.SemType, mod, cs.CondAttribute, rel)
			}
			return []datalog.Term{datalog.Comp(goalOp, argVars[idx], cs.CondValue)}, nil
		}
		cv := datalog.NewVar(fmt.Sprintf("C%d", condVarIdx))
		return []datalog.Term{
			datalog.Comp(mvalPred(srcCtx.Name, rel, ec.Column, cs.CondModifier), append(append([]datalog.Term(nil), argVars...), cv)...),
			datalog.Comp(goalOp, cv, cs.CondValue),
		}, nil
	}

	for i, cs := range decl.Cases {
		var body []datalog.Term
		cvar := 0
		// Negations of all earlier conditions.
		for _, prev := range decl.Cases[:i] {
			negOp, err := negateOp(prev.CondOp)
			if err != nil {
				return err
			}
			goals, err := condGoals(prev, negOp, cvar)
			if err != nil {
				return err
			}
			body = append(body, goals...)
			cvar++
		}
		// This case's own condition.
		if cs.conditional() {
			if cs.CondModifier == mod {
				return fmt.Errorf("domain: context %s: %s.%s case %d conditions on itself",
					srcCtx.Name, ec.SemType, mod, i)
			}
			goals, err := condGoals(cs, cs.CondOp, cvar)
			if err != nil {
				return err
			}
			body = append(body, goals...)
		}
		// Head value.
		var val datalog.Term
		if cs.Value.Const != nil {
			val = cs.Value.Const
		} else {
			idx := schema.Index(cs.Value.Attribute)
			if idx < 0 {
				return fmt.Errorf("domain: context %s: %s.%s takes value from attribute %s, which relation %s lacks",
					srcCtx.Name, ec.SemType, mod, cs.Value.Attribute, rel)
			}
			val = argVars[idx]
		}
		head := datalog.Comp(pred, append(append([]datalog.Term(nil), argVars...), val)...)
		prog.Add(datalog.Clause{Head: head, Body: body})
		meta.note(pred, len(argVars)+1, describeCase(srcCtx.Name, rel, ec, mod, cs, i))
	}
	return nil
}

// describeCase renders one modifier-declaration arm for explanations.
func describeCase(ctx, rel string, ec ElevatedColumn, mod string, cs Case, idx int) string {
	var val string
	if cs.Value.Const != nil {
		val = cs.Value.Const.String()
	} else {
		val = "value of attribute " + cs.Value.Attribute
	}
	head := fmt.Sprintf("context %s: %s of %s.%s = %s", ctx, mod, rel, ec.Column, val)
	switch {
	case cs.CondModifier != "":
		return fmt.Sprintf("%s when %s %s %s", head, cs.CondModifier, cs.CondOp, cs.CondValue)
	case cs.CondAttribute != "":
		return fmt.Sprintf("%s when %s %s %s", head, cs.CondAttribute, cs.CondOp, cs.CondValue)
	case idx > 0:
		return head + " otherwise"
	default:
		return head
	}
}
