package domain

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/relalg"
)

// paperModel builds the domain model of the paper's example: company
// names, company financials with scaleFactor and currency modifiers,
// currency symbols, and exchange rates.
func paperModel() *Model {
	m := NewModel()
	m.MustAddType(&SemType{Name: "companyName"})
	m.MustAddType(&SemType{Name: "currencyType"})
	m.MustAddType(&SemType{Name: "companyFinancials", Modifiers: []string{"scaleFactor", "currency"}})
	m.MustAddConversion(RatioConversion("scaleFactor"))
	m.MustAddConversion(LookupConversion("currency", "rate"))
	return m
}

func r1Schema() relalg.Schema {
	return relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "revenue", Type: relalg.KindNumber},
		relalg.Column{Name: "currency", Type: relalg.KindString},
	)
}

func r2Schema() relalg.Schema {
	return relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "expenses", Type: relalg.KindNumber},
	)
}

func r3Schema() relalg.Schema {
	return relalg.NewSchema(
		relalg.Column{Name: "fromCur", Type: relalg.KindString},
		relalg.Column{Name: "toCur", Type: relalg.KindString},
		relalg.Column{Name: "rate", Type: relalg.KindNumber},
	)
}

// paperContexts returns c1 (source 1) and c2 (source 2 and the receiver).
func paperContexts() (*Context, *Context) {
	c1 := NewContext("c1")
	c1.MustDeclare(&ModifierDecl{
		SemType:  "companyFinancials",
		Modifier: "scaleFactor",
		Cases: []Case{
			{CondModifier: "currency", CondOp: "=", CondValue: datalog.Str("JPY"), Value: ConstSpec(1000)},
			{Value: ConstSpec(1)},
		},
	})
	c1.MustDeclare(&ModifierDecl{
		SemType:  "companyFinancials",
		Modifier: "currency",
		Cases:    []Case{{Value: AttrSpec("currency")}},
	})
	c2 := NewContext("c2")
	if err := c2.DeclareConst("companyFinancials", "scaleFactor", 1); err != nil {
		panic(err)
	}
	if err := c2.DeclareConst("companyFinancials", "currency", "USD"); err != nil {
		panic(err)
	}
	return c1, c2
}

// paperRegistry assembles the whole Figure 2 knowledge base.
func paperRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry(paperModel())
	c1, c2 := paperContexts()
	reg.MustAddContext(c1)
	reg.MustAddContext(c2)
	reg.MustRegisterRelation("r1", r1Schema(), &Elevation{
		Relation: "r1",
		Context:  "c1",
		Columns: []ElevatedColumn{
			{Column: "cname", SemType: "companyName"},
			{Column: "revenue", SemType: "companyFinancials"},
		},
	})
	reg.MustRegisterRelation("r2", r2Schema(), &Elevation{
		Relation: "r2",
		Context:  "c2",
		Columns: []ElevatedColumn{
			{Column: "cname", SemType: "companyName"},
			{Column: "expenses", SemType: "companyFinancials"},
		},
	})
	reg.MustRegisterRelation("r3", r3Schema(), nil)
	reg.MustAddAncillary("rate", "r3")
	return reg
}

func TestModifiersOfWithInheritance(t *testing.T) {
	m := NewModel()
	m.MustAddType(&SemType{Name: "measure", Modifiers: []string{"scaleFactor"}})
	m.MustAddType(&SemType{Name: "money", Parent: "measure", Modifiers: []string{"currency"}})
	mods, err := m.ModifiersOf("money")
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 || mods[0] != "scaleFactor" || mods[1] != "currency" {
		t.Errorf("modifiers = %v", mods)
	}
	if _, err := m.ModifiersOf("nope"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestModelValidation(t *testing.T) {
	m := NewModel()
	m.MustAddType(&SemType{Name: "a"})
	if err := m.AddType(&SemType{Name: "a"}); err == nil {
		t.Error("duplicate type accepted")
	}
	if err := m.AddType(&SemType{Name: "b", Parent: "zzz"}); err == nil {
		t.Error("unknown parent accepted")
	}
	m.MustAddConversion(RatioConversion("m"))
	if err := m.AddConversion(RatioConversion("m")); err == nil {
		t.Error("duplicate conversion accepted")
	}
}

func TestContextValidation(t *testing.T) {
	c := NewContext("c")
	if err := c.Declare(&ModifierDecl{SemType: "t", Modifier: "m"}); err == nil {
		t.Error("empty cases accepted")
	}
	if err := c.Declare(&ModifierDecl{SemType: "t", Modifier: "m", Cases: []Case{
		{Value: ConstSpec(1)},
		{CondModifier: "x", CondOp: "=", CondValue: datalog.Str("a"), Value: ConstSpec(2)},
	}}); err == nil {
		t.Error("unconditional non-last case accepted")
	}
	if err := c.Declare(&ModifierDecl{SemType: "t", Modifier: "m", Cases: []Case{
		{CondModifier: "x", CondOp: "=", CondValue: datalog.Str("a"), Value: ConstSpec(2)},
	}}); err == nil {
		t.Error("conditional last case accepted")
	}
	if err := c.DeclareConst("t", "m", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareConst("t", "m", 2); err == nil {
		t.Error("duplicate declaration accepted")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry(paperModel())
	c1, _ := paperContexts()
	reg.MustAddContext(c1)
	if err := reg.AddContext(c1); err == nil {
		t.Error("duplicate context accepted")
	}
	// Unknown context in elevation.
	err := reg.RegisterRelation("r1", r1Schema(), &Elevation{Relation: "r1", Context: "zzz"})
	if err == nil {
		t.Error("unknown context accepted")
	}
	// Column not in schema.
	err = reg.RegisterRelation("r1", r1Schema(), &Elevation{
		Relation: "r1", Context: "c1",
		Columns: []ElevatedColumn{{Column: "nope", SemType: "companyName"}},
	})
	if err == nil {
		t.Error("unknown column accepted")
	}
	// Unknown semantic type.
	err = reg.RegisterRelation("r1", r1Schema(), &Elevation{
		Relation: "r1", Context: "c1",
		Columns: []ElevatedColumn{{Column: "cname", SemType: "zzz"}},
	})
	if err == nil {
		t.Error("unknown semtype accepted")
	}
	// Ancillary over unregistered relation.
	if err := reg.AddAncillary("rate", "r3"); err == nil {
		t.Error("ancillary over missing relation accepted")
	}
}

func TestNeedsConversion(t *testing.T) {
	reg := paperRegistry(t)
	cases := []struct {
		rel, col string
		want     bool
	}{
		{"r1", "revenue", true},
		{"r1", "cname", false},    // companyName has no modifiers
		{"r1", "currency", false}, // not elevated
		{"r2", "expenses", true},
		{"r3", "rate", false}, // unelevated relation
	}
	for _, c := range cases {
		got, err := reg.NeedsConversion(c.rel, c.col)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("NeedsConversion(%s.%s) = %v, want %v", c.rel, c.col, got, c.want)
		}
	}
	if _, err := reg.NeedsConversion("zzz", "x"); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestIsAbducible(t *testing.T) {
	reg := paperRegistry(t)
	if !reg.IsAbducible("rel_r1", 3) {
		t.Error("rel_r1/3 should be abducible")
	}
	if reg.IsAbducible("rel_r1", 2) {
		t.Error("wrong arity accepted")
	}
	if reg.IsAbducible("rate", 3) {
		t.Error("ancillary pred itself must not be abducible (its relation is)")
	}
	if reg.IsAbducible("rel_zzz", 1) {
		t.Error("unknown relation accepted")
	}
}

func TestCompileProgramStructure(t *testing.T) {
	reg := paperRegistry(t)
	prog, err := reg.Compile("c2")
	if err != nil {
		t.Fatal(err)
	}
	wantPreds := []string{
		"cvt_scaleFactor/4",
		"cvt_currency/4",
		"rate/3",
		"sem_c2__r1__revenue/4",
		"sem_c2__r2__expenses/3",
		"mv_c1__r1__revenue__scaleFactor/4",
		"mv_c1__r1__revenue__currency/4",
		"mv_c2__r2__expenses__scaleFactor/3",
		"mv_c2__r2__expenses__currency/3",
	}
	have := strings.Join(prog.Predicates(), " ")
	for _, p := range wantPreds {
		if !strings.Contains(have, p) {
			t.Errorf("compiled program missing %s; have %s", p, have)
		}
	}
	// The scaleFactor mval must have two disjoint rules (JPY / non-JPY).
	if n := len(prog.Clauses("mv_c1__r1__revenue__scaleFactor", 4)); n != 2 {
		t.Errorf("scaleFactor mval clauses = %d, want 2", n)
	}
}

// TestCompiledProgramMediatesRevenue runs the abductive solver directly
// over the compiled program for the core of the paper's example: convert
// rl.revenue into the receiver context. It must produce exactly the three
// cases of the mediated query.
func TestCompiledProgramMediatesRevenue(t *testing.T) {
	reg := paperRegistry(t)
	prog, err := reg.Compile("c2")
	if err != nil {
		t.Fatal(err)
	}
	sv := &datalog.Solver{
		Program:            prog,
		Abducible:          reg.IsAbducible,
		CollectConstraints: true,
	}
	goals := []datalog.Term{
		datalog.Comp("rel_r1", datalog.NewVar("N"), datalog.NewVar("Rev"), datalog.NewVar("Cur")),
		datalog.Comp("sem_c2__r1__revenue", datalog.NewVar("N"), datalog.NewVar("Rev"), datalog.NewVar("Cur"), datalog.NewVar("V")),
	}
	sols, err := sv.Solve(goals...)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		for _, s := range sols {
			t.Logf("case: V=%s constraints=%v abduced=%v", s.Bindings["V"], s.Constraints, s.Abduced)
		}
		t.Fatalf("cases = %d, want 3 (JPY, USD, other)", len(sols))
	}
	// Classify the three cases.
	var sawJPY, sawUSD, sawOther bool
	for _, s := range sols {
		cur := s.Bindings["Cur"]
		v := s.Bindings["V"]
		switch {
		case datalog.Equal(cur, datalog.Str("JPY")):
			sawJPY = true
			// V must be Rev * 1000 * rate (a symbolic product mentioning 1000).
			if !strings.Contains(v.String(), "1000") || !strings.Contains(v.String(), "*") {
				t.Errorf("JPY case value = %s, want * 1000 * rate shape", v)
			}
			// The ancillary source must have been abduced.
			foundRate := false
			for _, a := range s.Abduced {
				if a.Functor == "rel_r3" {
					foundRate = true
				}
			}
			if !foundRate {
				t.Error("JPY case did not abduce the rate relation")
			}
		case datalog.Equal(cur, datalog.Str("USD")):
			sawUSD = true
			if _, isVar := v.(datalog.Variable); !isVar {
				t.Errorf("USD case value = %s, want identity (plain variable)", v)
			}
			if len(s.Constraints) != 0 {
				t.Errorf("USD case constraints = %v, want none (JPY disequality entailed)", s.Constraints)
			}
		default:
			sawOther = true
			// Residual constraints: Cur \= JPY and Cur \= USD.
			if len(s.Constraints) != 2 {
				t.Errorf("other case constraints = %v, want 2 disequalities", s.Constraints)
			}
			if !strings.Contains(v.String(), "*") {
				t.Errorf("other case value = %s, want * rate shape", v)
			}
		}
	}
	if !sawJPY || !sawUSD || !sawOther {
		t.Errorf("missing case: JPY=%v USD=%v other=%v", sawJPY, sawUSD, sawOther)
	}
}

// TestCompileReceiverC1 checks mediation in the opposite direction: a
// receiver in c1 asking about r2 needs no case split for r2 (c2 is
// constant) but converts into JPY-scaled values only when the receiver's
// own modifiers say so. Receiver c1 is attribute-valued, which is invalid
// for a receiver, so Compile must reject it with a clear error.
func TestCompileReceiverAttributeRejected(t *testing.T) {
	reg := paperRegistry(t)
	_, err := reg.Compile("c1")
	if err == nil || !strings.Contains(err.Error(), "receiver context c1") {
		t.Errorf("Compile(c1) error = %v, want receiver-constant error", err)
	}
}

func TestCompileUnknownReceiver(t *testing.T) {
	reg := paperRegistry(t)
	if _, err := reg.Compile("zzz"); err == nil {
		t.Error("unknown receiver accepted")
	}
}

func TestCompileMissingDeclaration(t *testing.T) {
	m := paperModel()
	reg := NewRegistry(m)
	c1 := NewContext("c1")
	// Declare only scaleFactor, not currency.
	if err := c1.DeclareConst("companyFinancials", "scaleFactor", 1); err != nil {
		t.Fatal(err)
	}
	reg.MustAddContext(c1)
	recv := NewContext("recv")
	if err := recv.DeclareConst("companyFinancials", "scaleFactor", 1); err != nil {
		t.Fatal(err)
	}
	if err := recv.DeclareConst("companyFinancials", "currency", "USD"); err != nil {
		t.Fatal(err)
	}
	reg.MustAddContext(recv)
	reg.MustRegisterRelation("r1", r1Schema(), &Elevation{
		Relation: "r1", Context: "c1",
		Columns: []ElevatedColumn{{Column: "revenue", SemType: "companyFinancials"}},
	})
	if _, err := reg.Compile("recv"); err == nil || !strings.Contains(err.Error(), "does not declare") {
		t.Errorf("missing declaration error = %v", err)
	}
}

func TestAffineConversion(t *testing.T) {
	m := NewModel()
	m.MustAddType(&SemType{Name: "temperature", Modifiers: []string{"unit"}})
	m.MustAddConversion(AffineConversion("unit", datalog.Str("C"), datalog.Str("F"), 1.8, 32))
	conv, _ := m.ConversionFor("unit")
	prog := datalog.NewProgram()
	prog.Add(conv.Clauses...)
	sv := &datalog.Solver{Program: prog}
	sols, err := sv.Solve(datalog.Comp("cvt_unit", datalog.Number(100), datalog.Str("C"), datalog.Str("F"), datalog.NewVar("V")))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || !datalog.Equal(sols[0].Bindings["V"], datalog.Number(212)) {
		t.Errorf("100C in F = %v", sols)
	}
	sols, err = sv.Solve(datalog.Comp("cvt_unit", datalog.Number(212), datalog.Str("F"), datalog.Str("C"), datalog.NewVar("V")))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || !datalog.Equal(sols[0].Bindings["V"], datalog.Number(100)) {
		t.Errorf("212F in C = %v", sols)
	}
}
