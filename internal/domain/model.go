// Package domain implements the COIN data model: the shared domain model
// of semantic types with context-dependent modifiers, per-context modifier
// assignments (context theories), elevation axioms that tie source-schema
// columns to semantic types, and conversion functions between modifier
// values. A Registry holding all of these compiles into a datalog program
// that the context mediator (internal/core) queries abductively.
//
// The paper's running example is expressed as: a semantic type
// companyFinancials with modifiers scaleFactor and currency; context c1
// assigning scaleFactor 1000 when currency is JPY and 1 otherwise, with
// currency taken from the tuple's own currency attribute; context c2
// assigning the constants USD and 1; elevation axioms mapping rl.revenue
// and r2.expenses to companyFinancials; and conversion functions "multiply
// by the factor ratio" for scaleFactor and "multiply by the ancillary
// exchange rate" for currency.
package domain

import (
	"fmt"
	"sort"

	"repro/internal/datalog"
)

// SemType is a semantic type ("rich type") of the domain model. Modifiers
// name the context-dependent aspects of its values, in canonical order:
// conversions are applied modifier by modifier in this order (the paper
// scales before converting currency).
type SemType struct {
	Name      string
	Parent    string // optional ISA parent
	Modifiers []string
}

// Model is the shared domain model: the vocabulary common to all contexts.
type Model struct {
	types       map[string]*SemType
	conversions map[string]*Conversion
}

// NewModel returns an empty domain model.
func NewModel() *Model {
	return &Model{types: map[string]*SemType{}, conversions: map[string]*Conversion{}}
}

// AddType registers a semantic type.
func (m *Model) AddType(t *SemType) error {
	if t.Name == "" {
		return fmt.Errorf("domain: semantic type needs a name")
	}
	if _, ok := m.types[t.Name]; ok {
		return fmt.Errorf("domain: semantic type %s already defined", t.Name)
	}
	if t.Parent != "" {
		if _, ok := m.types[t.Parent]; !ok {
			return fmt.Errorf("domain: semantic type %s: unknown parent %s", t.Name, t.Parent)
		}
	}
	m.types[t.Name] = t
	return nil
}

// MustAddType is AddType that panics; for fixtures.
func (m *Model) MustAddType(t *SemType) {
	if err := m.AddType(t); err != nil {
		panic(err)
	}
}

// Type looks up a semantic type by name.
func (m *Model) Type(name string) (*SemType, bool) {
	t, ok := m.types[name]
	return t, ok
}

// TypeNames lists the defined types, sorted.
func (m *Model) TypeNames() []string {
	out := make([]string, 0, len(m.types))
	for n := range m.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ModifiersOf returns the modifiers of a type including inherited ones
// (parents first), preserving canonical order.
func (m *Model) ModifiersOf(name string) ([]string, error) {
	var chain []*SemType
	seen := map[string]bool{}
	for cur := name; cur != ""; {
		if seen[cur] {
			return nil, fmt.Errorf("domain: ISA cycle through %s", cur)
		}
		seen[cur] = true
		t, ok := m.types[cur]
		if !ok {
			return nil, fmt.Errorf("domain: unknown semantic type %s", cur)
		}
		chain = append(chain, t)
		cur = t.Parent
	}
	var out []string
	have := map[string]bool{}
	for i := len(chain) - 1; i >= 0; i-- { // parents first
		for _, mod := range chain[i].Modifiers {
			if !have[mod] {
				have[mod] = true
				out = append(out, mod)
			}
		}
	}
	return out, nil
}

// Conversion defines how a value is transformed when a modifier's value
// differs between source and receiver. Clauses define the predicate
// cvt_<modifier>(V, From, To, VOut); the first clause conventionally
// handles From = To as the identity.
type Conversion struct {
	Modifier string
	Clauses  []datalog.Clause
}

// AddConversion registers the conversion function for a modifier.
func (m *Model) AddConversion(c *Conversion) error {
	if c.Modifier == "" {
		return fmt.Errorf("domain: conversion needs a modifier name")
	}
	if _, ok := m.conversions[c.Modifier]; ok {
		return fmt.Errorf("domain: conversion for %s already defined", c.Modifier)
	}
	m.conversions[c.Modifier] = c
	return nil
}

// MustAddConversion is AddConversion that panics; for fixtures.
func (m *Model) MustAddConversion(c *Conversion) {
	if err := m.AddConversion(c); err != nil {
		panic(err)
	}
}

// ConversionFor looks up a conversion by modifier.
func (m *Model) ConversionFor(modifier string) (*Conversion, bool) {
	c, ok := m.conversions[modifier]
	return c, ok
}

// CvtPred names the conversion predicate for a modifier.
func CvtPred(modifier string) string { return "cvt_" + modifier }

// RatioConversion builds the standard multiplicative conversion used for
// scale factors:
//
//	cvt_m(V, F, F, V).
//	cvt_m(V, F1, F2, V2) :- F1 \= F2, V2 is V * F1 / F2.
func RatioConversion(modifier string) *Conversion {
	pred := CvtPred(modifier)
	v, f, f1, f2, v2 := datalog.NewVar("V"), datalog.NewVar("F"), datalog.NewVar("F1"), datalog.NewVar("F2"), datalog.NewVar("V2")
	return &Conversion{
		Modifier: modifier,
		Clauses: []datalog.Clause{
			{Head: datalog.Comp(pred, v, f, f, v)},
			{
				Head: datalog.Comp(pred, v, f1, f2, v2),
				Body: []datalog.Term{
					datalog.Comp("\\=", f1, f2),
					datalog.Comp("is", v2, datalog.Comp(datalog.FuncDiv, datalog.Comp(datalog.FuncMul, v, f1), f2)),
				},
			},
		},
	}
}

// LookupConversion builds the ancillary-source conversion used for
// currencies: when the modifier values differ, the value is multiplied by
// a rate obtained from ancillaryPred(From, To, Rate):
//
//	cvt_m(V, C, C, V).
//	cvt_m(V, C1, C2, V2) :- C1 \= C2, anc(C1, C2, R), V2 is V * R.
func LookupConversion(modifier, ancillaryPred string) *Conversion {
	pred := CvtPred(modifier)
	v, c, c1, c2, r, v2 := datalog.NewVar("V"), datalog.NewVar("C"), datalog.NewVar("C1"), datalog.NewVar("C2"), datalog.NewVar("R"), datalog.NewVar("V2")
	return &Conversion{
		Modifier: modifier,
		Clauses: []datalog.Clause{
			{Head: datalog.Comp(pred, v, c, c, v)},
			{
				Head: datalog.Comp(pred, v, c1, c2, v2),
				Body: []datalog.Term{
					datalog.Comp("\\=", c1, c2),
					datalog.Comp(ancillaryPred, c1, c2, r),
					datalog.Comp("is", v2, datalog.Comp(datalog.FuncMul, v, r)),
				},
			},
		},
	}
}

// PivotLookupConversion extends LookupConversion with a two-hop fallback
// through a pivot value (e.g. converting GBP to CHF via USD when the
// ancillary source quotes no direct rate):
//
//	cvt_m(V, C, C, V).
//	cvt_m(V, C1, C2, V2) :- C1 \= C2, anc(C1, C2, R), V2 is V * R.
//	cvt_m(V, C1, C2, V2) :- C1 \= C2, C1 \= pivot, C2 \= pivot,
//	                        anc(C1, pivot, R1), anc(pivot, C2, R2),
//	                        V2 is V * R1 * R2.
//
// Both the direct and the two-hop clause produce a mediated branch; the
// branch whose rate lookup matches no ancillary tuple contributes nothing
// at execution time, so the union stays correct either way — abduction
// hypothesizes the access paths, execution validates them.
func PivotLookupConversion(modifier, ancillaryPred string, pivot datalog.Term) *Conversion {
	base := LookupConversion(modifier, ancillaryPred)
	pred := CvtPred(modifier)
	v, c1, c2 := datalog.NewVar("V"), datalog.NewVar("C1"), datalog.NewVar("C2")
	r1, r2, v2 := datalog.NewVar("R1"), datalog.NewVar("R2"), datalog.NewVar("V2")
	twoHop := datalog.Clause{
		Head: datalog.Comp(pred, v, c1, c2, v2),
		Body: []datalog.Term{
			datalog.Comp("\\=", c1, c2),
			datalog.Comp("\\=", c1, pivot),
			datalog.Comp("\\=", c2, pivot),
			datalog.Comp(ancillaryPred, c1, pivot, r1),
			datalog.Comp(ancillaryPred, pivot, c2, r2),
			datalog.Comp("is", v2, datalog.Comp(datalog.FuncMul, datalog.Comp(datalog.FuncMul, v, r1), r2)),
		},
	}
	base.Clauses = append(base.Clauses, twoHop)
	return base
}

// AffineConversion builds a fixed affine conversion V2 = V*scale + offset
// for a pair of modifier values, plus identity. It covers unit conversions
// such as temperature scales or fiscal-year offsets:
//
//	cvt_m(V, A, A, V).
//	cvt_m(V, from, to, V2) :- V2 is V * scale + offset.
//	cvt_m(V, to, from, V2) :- V2 is (V - offset) / scale.
func AffineConversion(modifier string, from, to datalog.Term, scale, offset float64) *Conversion {
	pred := CvtPred(modifier)
	v, a, v2 := datalog.NewVar("V"), datalog.NewVar("A"), datalog.NewVar("V2")
	fwd := datalog.Comp("is", v2, datalog.Comp(datalog.FuncAdd,
		datalog.Comp(datalog.FuncMul, v, datalog.Number(scale)), datalog.Number(offset)))
	bwd := datalog.Comp("is", v2, datalog.Comp(datalog.FuncDiv,
		datalog.Comp(datalog.FuncSub, v, datalog.Number(offset)), datalog.Number(scale)))
	return &Conversion{
		Modifier: modifier,
		Clauses: []datalog.Clause{
			{Head: datalog.Comp(pred, v, a, a, v)},
			{Head: datalog.Comp(pred, v, from, to, v2), Body: []datalog.Term{fwd}},
			{Head: datalog.Comp(pred, v, to, from, v2), Body: []datalog.Term{bwd}},
		},
	}
}
