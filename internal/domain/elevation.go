package domain

import "fmt"

// ElevatedColumn identifies one source column with a semantic type from
// the domain model.
type ElevatedColumn struct {
	Column  string
	SemType string
}

// Elevation is the set of elevation axioms for one source relation: it
// names the context the relation's data lives in and maps its columns to
// semantic types. Columns without an entry elevate to a plain type with no
// modifiers (no conversion ever applies to them).
type Elevation struct {
	Relation string
	Context  string
	Columns  []ElevatedColumn
}

// SemTypeOf returns the semantic type of a column, or "" when the column
// is not elevated.
func (e *Elevation) SemTypeOf(column string) string {
	for _, c := range e.Columns {
		if c.Column == column {
			return c.SemType
		}
	}
	return ""
}

func (e *Elevation) validate() error {
	if e.Relation == "" {
		return fmt.Errorf("domain: elevation needs a relation name")
	}
	if e.Context == "" {
		return fmt.Errorf("domain: elevation for %s needs a context", e.Relation)
	}
	seen := map[string]bool{}
	for _, c := range e.Columns {
		if c.Column == "" || c.SemType == "" {
			return fmt.Errorf("domain: elevation for %s: empty column or type", e.Relation)
		}
		if seen[c.Column] {
			return fmt.Errorf("domain: elevation for %s: column %s elevated twice", e.Relation, c.Column)
		}
		seen[c.Column] = true
	}
	return nil
}

// Ancillary maps a conversion-support predicate (e.g. rate/3 used by the
// currency conversion) to a source relation whose columns provide the
// predicate's arguments in schema order (e.g. r3(fromCur, toCur, rate)).
type Ancillary struct {
	Pred     string
	Relation string
}
