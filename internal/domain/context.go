package domain

import (
	"fmt"

	"repro/internal/datalog"
)

// ValueSpec says where a modifier's value comes from within a context.
type ValueSpec struct {
	// Const is the value when the modifier is context-constant
	// (e.g. currency = "USD" in context c2).
	Const datalog.Term
	// Attribute names a column of the elevated relation providing the
	// value per tuple (e.g. currency taken from rl.currency in c1).
	// Exactly one of Const and Attribute is set.
	Attribute string
}

// ConstSpec builds a constant ValueSpec from a Go value.
func ConstSpec(v interface{}) ValueSpec {
	switch v := v.(type) {
	case string:
		return ValueSpec{Const: datalog.Str(v)}
	case float64:
		return ValueSpec{Const: datalog.Number(v)}
	case int:
		return ValueSpec{Const: datalog.Number(float64(v))}
	case datalog.Term:
		return ValueSpec{Const: v}
	default:
		panic(fmt.Sprintf("domain: ConstSpec: unsupported value %T", v))
	}
}

// AttrSpec builds an attribute-valued ValueSpec.
func AttrSpec(column string) ValueSpec { return ValueSpec{Attribute: column} }

func (v ValueSpec) validate() error {
	if (v.Const == nil) == (v.Attribute == "") {
		return fmt.Errorf("domain: value spec must set exactly one of Const and Attribute")
	}
	return nil
}

// Case is one conditional arm of a modifier declaration. The condition
// compares either the value of another modifier of the same object
// (CondModifier) or a raw attribute of the elevated relation
// (CondAttribute) against a constant; a Case with neither is unconditional
// (the default arm). Cases are ordered like a Prolog if-then-else chain:
// arm i applies only when arms 1..i-1 do not, which the compiler makes
// explicit by negating their conditions, so the generated mediation
// branches are mutually exclusive (the paper's USD / JPY / other split).
type Case struct {
	CondModifier  string
	CondAttribute string
	CondOp        string // "=", "<>", "<", "<=", ">", ">="
	CondValue     datalog.Term
	Value         ValueSpec
}

// conditional reports whether the case has a condition.
func (c Case) conditional() bool { return c.CondModifier != "" || c.CondAttribute != "" }

// ModifierDecl assigns a modifier of a semantic type within a context.
type ModifierDecl struct {
	SemType  string
	Modifier string
	Cases    []Case
}

// Context is a context theory: the modifier assignments that make the
// implicit semantics of a source's (or receiver's) data explicit.
type Context struct {
	Name  string
	decls map[string]*ModifierDecl
	order []string
}

// NewContext creates an empty context theory.
func NewContext(name string) *Context {
	return &Context{Name: name, decls: map[string]*ModifierDecl{}}
}

func declKey(semType, modifier string) string { return semType + "\x00" + modifier }

// Declare adds a modifier declaration to the context.
func (c *Context) Declare(d *ModifierDecl) error {
	if d.SemType == "" || d.Modifier == "" {
		return fmt.Errorf("domain: context %s: declaration needs type and modifier", c.Name)
	}
	if len(d.Cases) == 0 {
		return fmt.Errorf("domain: context %s: %s.%s has no cases", c.Name, d.SemType, d.Modifier)
	}
	for i, cs := range d.Cases {
		if err := cs.Value.validate(); err != nil {
			return fmt.Errorf("domain: context %s: %s.%s case %d: %w", c.Name, d.SemType, d.Modifier, i, err)
		}
		if cs.CondModifier != "" && cs.CondAttribute != "" {
			return fmt.Errorf("domain: context %s: %s.%s case %d: condition on both modifier and attribute", c.Name, d.SemType, d.Modifier, i)
		}
		if cs.conditional() && (cs.CondOp == "" || cs.CondValue == nil) {
			return fmt.Errorf("domain: context %s: %s.%s case %d: condition needs op and value", c.Name, d.SemType, d.Modifier, i)
		}
		if !cs.conditional() && i != len(d.Cases)-1 {
			return fmt.Errorf("domain: context %s: %s.%s: unconditional case %d must be last", c.Name, d.SemType, d.Modifier, i)
		}
	}
	if last := d.Cases[len(d.Cases)-1]; last.conditional() {
		return fmt.Errorf("domain: context %s: %s.%s: last case must be unconditional (default)", c.Name, d.SemType, d.Modifier)
	}
	k := declKey(d.SemType, d.Modifier)
	if _, ok := c.decls[k]; ok {
		return fmt.Errorf("domain: context %s: %s.%s declared twice", c.Name, d.SemType, d.Modifier)
	}
	c.decls[k] = d
	c.order = append(c.order, k)
	return nil
}

// MustDeclare is Declare that panics; for fixtures.
func (c *Context) MustDeclare(d *ModifierDecl) {
	if err := c.Declare(d); err != nil {
		panic(err)
	}
}

// DeclareConst is a convenience for the common constant assignment.
func (c *Context) DeclareConst(semType, modifier string, value interface{}) error {
	return c.Declare(&ModifierDecl{
		SemType:  semType,
		Modifier: modifier,
		Cases:    []Case{{Value: ConstSpec(value)}},
	})
}

// Decl looks up the declaration for semType.modifier, walking no ISA
// hierarchy (the Registry resolves inheritance before asking).
func (c *Context) Decl(semType, modifier string) (*ModifierDecl, bool) {
	d, ok := c.decls[declKey(semType, modifier)]
	return d, ok
}

// Decls returns the declarations in insertion order.
func (c *Context) Decls() []*ModifierDecl {
	out := make([]*ModifierDecl, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.decls[k])
	}
	return out
}

// negateOp maps a condition operator to its complement, used when
// compiling the if-then-else chain of Cases into disjoint datalog rules.
func negateOp(op string) (string, error) {
	switch op {
	case "=":
		return "\\=", nil
	case "<>", "\\=":
		return "=", nil
	case "<":
		return ">=", nil
	case ">=":
		return "<", nil
	case ">":
		return "=<", nil
	case "<=", "=<":
		return ">", nil
	}
	return "", fmt.Errorf("domain: cannot negate operator %q", op)
}

// condOp maps surface operators to datalog goal functors.
func condOp(op string) (string, error) {
	switch op {
	case "=", "<", ">":
		return op, nil
	case "<>", "\\=":
		return "\\=", nil
	case "<=", "=<":
		return "=<", nil
	case ">=":
		return ">=", nil
	}
	return "", fmt.Errorf("domain: unknown condition operator %q", op)
}
