package domain

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/relalg"
)

// TestISAHierarchyEndToEnd: a semantic type inheriting modifiers from its
// parent converts through the full inherited chain (parent's modifiers
// first, per ModifiersOf).
func TestISAHierarchyEndToEnd(t *testing.T) {
	m := NewModel()
	m.MustAddType(&SemType{Name: "measure", Modifiers: []string{"scaleFactor"}})
	m.MustAddType(&SemType{Name: "money", Parent: "measure", Modifiers: []string{"currency"}})
	m.MustAddConversion(RatioConversion("scaleFactor"))
	m.MustAddConversion(LookupConversion("currency", "rate"))

	reg := NewRegistry(m)
	src := NewContext("src")
	if err := src.DeclareConst("money", "scaleFactor", 1000); err != nil {
		t.Fatal(err)
	}
	if err := src.DeclareConst("money", "currency", "JPY"); err != nil {
		t.Fatal(err)
	}
	reg.MustAddContext(src)
	recv := NewContext("recv")
	if err := recv.DeclareConst("money", "scaleFactor", 1); err != nil {
		t.Fatal(err)
	}
	if err := recv.DeclareConst("money", "currency", "USD"); err != nil {
		t.Fatal(err)
	}
	reg.MustAddContext(recv)

	schema := relalg.NewSchema(
		relalg.Column{Name: "amount", Type: relalg.KindNumber},
	)
	reg.MustRegisterRelation("acct", schema, &Elevation{
		Relation: "acct",
		Context:  "src",
		Columns:  []ElevatedColumn{{Column: "amount", SemType: "money"}},
	})
	reg.MustRegisterRelation("rates", relalg.NewSchema(
		relalg.Column{Name: "f", Type: relalg.KindString},
		relalg.Column{Name: "t", Type: relalg.KindString},
		relalg.Column{Name: "r", Type: relalg.KindNumber},
	), nil)
	reg.MustAddAncillary("rate", "rates")

	prog, err := reg.Compile("recv")
	if err != nil {
		t.Fatal(err)
	}
	// Solve the sem predicate directly: amount 5 (thousands of JPY) into
	// USD must be 5 * 1000 / 1 * Rate — i.e. a symbolic product over the
	// abduced rate, with the scale applied first.
	sv := &datalog.Solver{
		Program:            prog,
		Abducible:          reg.IsAbducible,
		CollectConstraints: true,
	}
	goal := datalog.Comp(SemPred("recv", "acct", "amount"), datalog.Number(5), datalog.NewVar("V"))
	sols, err := sv.Solve(goal)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("cases = %d (constant contexts: exactly one)", len(sols))
	}
	v := sols[0].Bindings["V"].String()
	if v != "5000 * _G1" && v != "5000 * R" && !contains5000Times(v) {
		t.Errorf("converted value = %s, want 5000 * <rate>", v)
	}
	// The rate lookup was abduced against the ancillary relation.
	if len(sols[0].Abduced) != 1 || sols[0].Abduced[0].Functor != "rel_rates" {
		t.Errorf("abduced = %v", sols[0].Abduced)
	}
	if !datalog.Equal(sols[0].Abduced[0].Args[0], datalog.Str("JPY")) ||
		!datalog.Equal(sols[0].Abduced[0].Args[1], datalog.Str("USD")) {
		t.Errorf("rate atom = %v", sols[0].Abduced[0])
	}
}

func contains5000Times(s string) bool {
	return len(s) > 5 && s[:5] == "5000 "
}
