// Package client is the receiver-side API of the prototype — the
// counterpart of its ODBC driver. It speaks the HTTP-tunneled protocol of
// internal/server: connect (schema handshake), schema inspection, query
// in a named receiver context (buffered or streamed row by row over the
// NDJSON wire path), and mediate-only. Queries take a context and
// per-query limits, so a receiver can cancel or bound in-flight work. Any
// application with socket access can use it; cmd/coinquery is one.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/planner"
	"repro/internal/server"
)

// Options bound one query: a server-side session timeout, a cap on
// result rows (the server truncates, not fails), a cap on the session's
// concurrent fetches per source (the server's dispatcher defaults apply
// when zero), a session-wide retry budget, the Partial degradation
// switch (the server drops failed mediation branches with warnings
// instead of failing the query), and a Parallelism cap on the server's
// intra-query parallel operators (1 forces serial pipelines; zero defers
// to the server's default). The zero value is ungoverned and fail-fast.
type Options struct {
	Timeout                time.Duration
	MaxRows                int
	MaxConcurrentPerSource int
	RetryBudget            int
	Partial                bool
	Parallelism            int
}

// Conn is an open connection to a mediation server.
type Conn struct {
	base   string
	client *http.Client
	// streamClient carries no whole-response timeout: a streamed result
	// may legitimately outlive 30 seconds, and the caller's context (plus
	// the server-side session timeout) bounds the body instead. Its
	// transport still bounds the connect/header phase, so a half-dead
	// server cannot hang a stream before it starts.
	streamClient *http.Client
	schema       server.SchemaResponse
}

// Open connects to a server and performs the schema handshake.
func Open(baseURL string) (*Conn, error) {
	streamTransport := http.DefaultTransport
	if t, ok := streamTransport.(*http.Transport); ok {
		t = t.Clone()
		t.ResponseHeaderTimeout = 30 * time.Second
		streamTransport = t
	}
	c := &Conn{
		base:         strings.TrimRight(baseURL, "/"),
		client:       &http.Client{Timeout: 30 * time.Second},
		streamClient: &http.Client{Transport: streamTransport},
	}
	if err := c.refreshSchema(); err != nil {
		return nil, fmt.Errorf("client: connecting to %s: %w", baseURL, err)
	}
	return c, nil
}

func (c *Conn) refreshSchema() error {
	resp, err := c.client.Get(c.base + "/api/schema")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("schema request failed: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(&c.schema)
}

// Contexts lists the receiver contexts the server knows.
func (c *Conn) Contexts() []string { return c.schema.Contexts }

// Relations lists the queryable relations.
func (c *Conn) Relations() []string {
	out := make([]string, 0, len(c.schema.Relations))
	for r := range c.schema.Relations {
		out = append(out, r)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Columns returns a relation's columns as name/type pairs.
func (c *Conn) Columns(relation string) ([]server.ColumnInfo, bool) {
	cols, ok := c.schema.Relations[relation]
	return cols, ok
}

// Result is a query answer.
type Result struct {
	Columns     []server.ColumnInfo
	Rows        [][]interface{}
	MediatedSQL string
	Branches    int
	// Warnings lists mediation branches the server dropped under
	// Options.Partial; empty when the answer is complete.
	Warnings []planner.Warning
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	header := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		header[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for i, v := range row {
			cells[ri][i] = fmt.Sprintf("%v", v)
			if len(cells[ri][i]) > widths[i] {
				widths[i] = len(cells[ri][i])
			}
		}
	}
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

func (c *Conn) post(path string, req server.QueryRequest, out interface{}) error {
	//lint:allow ctxflow post backs the context-free convenience API (Query/QueryNaive); ctx forms call postWith directly
	return c.postWith(context.Background(), c.client, path, req, out)
}

// governedTimeoutGrace pads the client-side deadline of a governed query
// beyond the server-side session timeout, leaving room for the error
// response (or the result transfer) to make it back.
const governedTimeoutGrace = 10 * time.Second

// postQuery posts a governed query: with an explicit Options.Timeout the
// server's session deadline is authoritative, so the request runs on the
// un-timed client under a context deadline of timeout+grace (the default
// client's fixed 30s whole-response timeout would otherwise cut off
// legitimately long governed queries). Without one, the default client's
// 30s cap applies as before.
func (c *Conn) postQuery(ctx context.Context, path string, req server.QueryRequest, opts Options, out interface{}) error {
	if opts.Timeout > 0 {
		dctx, cancel := context.WithTimeout(ctx, opts.Timeout+governedTimeoutGrace)
		defer cancel()
		return c.postWith(dctx, c.streamClient, path, req, out)
	}
	return c.postWith(ctx, c.client, path, req, out)
}

func (c *Conn) postWith(ctx context.Context, hc *http.Client, path string, req server.QueryRequest, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s", e.Error)
		}
		return fmt.Errorf("client: %s failed: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// queryRequest assembles the wire request for sql under opts.
func queryRequest(sql, context string, naive bool, opts Options) server.QueryRequest {
	req := server.QueryRequest{
		SQL: sql, Context: context, Naive: naive,
		MaxRows:                opts.MaxRows,
		MaxConcurrentPerSource: opts.MaxConcurrentPerSource,
		RetryBudget:            opts.RetryBudget,
		Partial:                opts.Partial,
		Parallelism:            opts.Parallelism,
	}
	if opts.Timeout > 0 {
		req.Timeout = opts.Timeout.String()
	}
	return req
}

// Query mediates and executes SQL in the given receiver context.
func (c *Conn) Query(sql, context string) (*Result, error) {
	return c.QueryCtx(nil, sql, context, Options{})
}

// QueryCtx mediates and executes SQL under ctx and opts: canceling ctx
// abandons the request (the server then cancels the query's session), and
// opts carry the server-side timeout and row cap. A nil ctx means
// background.
func (c *Conn) QueryCtx(ctx context.Context, sql, context_ string, opts Options) (*Result, error) {
	if ctx == nil {
		//lint:allow ctxflow documented nil-context fallback: a nil ctx means background by API contract
		ctx = context.Background()
	}
	var resp server.QueryResponse
	if err := c.postQuery(ctx, "/api/query", queryRequest(sql, context_, false, opts), opts, &resp); err != nil {
		return nil, err
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows, MediatedSQL: resp.MediatedSQL,
		Branches: resp.Branches, Warnings: resp.Warnings}, nil
}

// QueryNaive executes SQL without mediation.
func (c *Conn) QueryNaive(sql string) (*Result, error) {
	return c.QueryNaiveCtx(nil, sql, Options{})
}

// QueryNaiveCtx executes SQL without mediation under ctx and opts.
func (c *Conn) QueryNaiveCtx(ctx context.Context, sql string, opts Options) (*Result, error) {
	if ctx == nil {
		//lint:allow ctxflow documented nil-context fallback: a nil ctx means background by API contract
		ctx = context.Background()
	}
	var resp server.QueryResponse
	if err := c.postQuery(ctx, "/api/query", queryRequest(sql, "", true, opts), opts, &resp); err != nil {
		return nil, err
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows}, nil
}

// QueryStream mediates and executes SQL over the NDJSON wire path,
// returning a cursor that yields rows as the server produces them — the
// first row is available before the query finishes. Always Close the
// cursor; canceling ctx aborts the stream (and with it the server-side
// query session). Set naive to skip mediation.
func (c *Conn) QueryStream(ctx context.Context, sql, context_ string, naive bool, opts Options) (*RowCursor, error) {
	if ctx == nil {
		//lint:allow ctxflow documented nil-context fallback: a nil ctx means background by API contract
		ctx = context.Background()
	}
	body, err := json.Marshal(queryRequest(sql, context_, naive, opts))
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/query/stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.streamClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: /api/query/stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("client: %s", e.Error)
		}
		return nil, fmt.Errorf("client: /api/query/stream failed: %s", resp.Status)
	}
	cur := &RowCursor{resp: resp, dec: json.NewDecoder(resp.Body)}
	var header server.StreamRecord
	if err := cur.dec.Decode(&header); err != nil || header.Type != "header" {
		resp.Body.Close()
		if err == nil {
			err = fmt.Errorf("client: stream began with %q record, want header", header.Type)
		}
		return nil, fmt.Errorf("client: reading stream header: %w", err)
	}
	cur.columns = header.Columns
	cur.mediatedSQL = header.MediatedSQL
	cur.branches = header.Branches
	return cur, nil
}

// RowCursor iterates a streamed query answer row by row as records
// arrive on the wire, in the style of an ODBC cursor over an open
// network result set.
type RowCursor struct {
	resp        *http.Response
	dec         *json.Decoder
	columns     []server.ColumnInfo
	mediatedSQL string
	branches    int

	cur      []interface{}
	rows     int
	err      error
	warnings []planner.Warning
	done     bool
	closed   bool
}

// Columns describes the result columns (from the stream header).
func (c *RowCursor) Columns() []server.ColumnInfo { return c.columns }

// MediatedSQL returns the mediated form of the query ("" for naive).
func (c *RowCursor) MediatedSQL() string { return c.mediatedSQL }

// Branches returns the mediation's branch count (0 for naive).
func (c *RowCursor) Branches() int { return c.branches }

// Next advances to the next row, blocking until the server delivers one;
// it returns false at end of stream or on error (check Err).
func (c *RowCursor) Next() bool {
	if c.done || c.closed {
		return false
	}
	var rec server.StreamRecord
	if err := c.dec.Decode(&rec); err != nil {
		c.err = fmt.Errorf("client: reading stream: %w", err)
		c.end()
		return false
	}
	switch rec.Type {
	case "row":
		c.cur = rec.Values
		c.rows++
		return true
	case "stats":
		c.warnings = rec.Warnings
		c.end()
		return false
	case "error":
		c.err = fmt.Errorf("client: %s", rec.Error)
		c.warnings = rec.Warnings
		c.end()
		return false
	default:
		c.err = fmt.Errorf("client: unexpected stream record %q", rec.Type)
		c.end()
		return false
	}
}

// end marks the cursor exhausted; the current row is cleared so Scan and
// Row past the end fail like Cursor's do, instead of replaying the last
// delivered row.
func (c *RowCursor) end() {
	c.done = true
	c.cur = nil
}

// Scan copies the current row's values into dest (same conversions as
// Cursor.Scan).
func (c *RowCursor) Scan(dest ...interface{}) error {
	if c.cur == nil {
		return fmt.Errorf("client: Scan without a successful Next")
	}
	return scanRow(c.cur, dest)
}

// Row returns the current row's raw values.
func (c *RowCursor) Row() []interface{} { return c.cur }

// Rows reports how many rows have been delivered so far.
func (c *RowCursor) Rows() int { return c.rows }

// Err returns the terminal error, if the stream ended on one (including
// server-side session errors carried in the trailing error record).
func (c *RowCursor) Err() error { return c.err }

// Warnings returns the degraded-branch warnings from the stream's
// trailing record — populated only after Next has returned false on a
// partial-results query whose branches were dropped.
func (c *RowCursor) Warnings() []planner.Warning { return c.warnings }

// Close releases the cursor's connection. Closing before exhaustion
// abandons the stream, which cancels the server-side query session.
func (c *RowCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.resp.Body.Close()
}

// Mediate returns the mediated SQL without executing it.
func (c *Conn) Mediate(sql, context string) (string, int, error) {
	var resp server.MediateResponse
	if err := c.post("/api/mediate", server.QueryRequest{SQL: sql, Context: context}, &resp); err != nil {
		return "", 0, err
	}
	return resp.MediatedSQL, resp.Branches, nil
}

// Explain returns the server's execution plan for the mediated query.
func (c *Conn) Explain(sql, context string) (string, error) {
	var resp server.ExplainResponse
	if err := c.post("/api/explain", server.QueryRequest{SQL: sql, Context: context}, &resp); err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// ExplainAnalyze asks the server to execute the mediated query with
// measurement attached and returns the plans annotated with actual rows,
// source queries and cost per step. opts govern the analyzed execution's
// session like a normal query's.
func (c *Conn) ExplainAnalyze(ctx context.Context, sql, context_ string, opts Options) (string, error) {
	if ctx == nil {
		//lint:allow ctxflow documented nil-context fallback: a nil ctx means background by API contract
		ctx = context.Background()
	}
	req := queryRequest(sql, context_, false, opts)
	req.Analyze = true
	var resp server.ExplainResponse
	if err := c.postQuery(ctx, "/api/explain", req, opts, &resp); err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Cursor iterates a Result row by row, in the style of an ODBC cursor.
type Cursor struct {
	res *Result
	i   int
}

// Cursor returns a fresh cursor positioned before the first row.
func (r *Result) Cursor() *Cursor { return &Cursor{res: r} }

// Next advances to the next row; it returns false after the last one,
// and the cursor then stays past the end (Scan fails).
func (c *Cursor) Next() bool {
	if c.i >= len(c.res.Rows) {
		c.i = len(c.res.Rows) + 1
		return false
	}
	c.i++
	return true
}

// Scan copies the current row's values into dest, which must contain one
// pointer per column: *string, *float64, *bool, or *interface{}.
func (c *Cursor) Scan(dest ...interface{}) error {
	if c.i == 0 || c.i > len(c.res.Rows) {
		return fmt.Errorf("client: Scan without a successful Next")
	}
	return scanRow(c.res.Rows[c.i-1], dest)
}

// scanRow copies row values into destination pointers (*string, *float64,
// *bool, or *interface{}); Cursor and RowCursor share it.
func scanRow(row []interface{}, dest []interface{}) error {
	if len(dest) != len(row) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		switch d := d.(type) {
		case *interface{}:
			*d = row[i]
		case *string:
			s, ok := row[i].(string)
			if !ok {
				return fmt.Errorf("client: column %d is %T, not string", i, row[i])
			}
			*d = s
		case *float64:
			f, ok := row[i].(float64)
			if !ok {
				return fmt.Errorf("client: column %d is %T, not float64", i, row[i])
			}
			*d = f
		case *bool:
			b, ok := row[i].(bool)
			if !ok {
				return fmt.Errorf("client: column %d is %T, not bool", i, row[i])
			}
			*d = b
		default:
			return fmt.Errorf("client: unsupported Scan destination %T", d)
		}
	}
	return nil
}
