// Package client is the receiver-side API of the prototype — the
// counterpart of its ODBC driver. It speaks the HTTP-tunneled protocol of
// internal/server: connect (schema handshake), schema inspection, query
// in a named receiver context, and mediate-only. Any application with
// socket access can use it; cmd/coinquery is one.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// Conn is an open connection to a mediation server.
type Conn struct {
	base   string
	client *http.Client
	schema server.SchemaResponse
}

// Open connects to a server and performs the schema handshake.
func Open(baseURL string) (*Conn, error) {
	c := &Conn{
		base:   strings.TrimRight(baseURL, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	if err := c.refreshSchema(); err != nil {
		return nil, fmt.Errorf("client: connecting to %s: %w", baseURL, err)
	}
	return c, nil
}

func (c *Conn) refreshSchema() error {
	resp, err := c.client.Get(c.base + "/api/schema")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("schema request failed: %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(&c.schema)
}

// Contexts lists the receiver contexts the server knows.
func (c *Conn) Contexts() []string { return c.schema.Contexts }

// Relations lists the queryable relations.
func (c *Conn) Relations() []string {
	out := make([]string, 0, len(c.schema.Relations))
	for r := range c.schema.Relations {
		out = append(out, r)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Columns returns a relation's columns as name/type pairs.
func (c *Conn) Columns(relation string) ([]server.ColumnInfo, bool) {
	cols, ok := c.schema.Relations[relation]
	return cols, ok
}

// Result is a query answer.
type Result struct {
	Columns     []server.ColumnInfo
	Rows        [][]interface{}
	MediatedSQL string
	Branches    int
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	header := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		header[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for i, v := range row {
			cells[ri][i] = fmt.Sprintf("%v", v)
			if len(cells[ri][i]) > widths[i] {
				widths[i] = len(cells[ri][i])
			}
		}
	}
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

func (c *Conn) post(path string, req server.QueryRequest, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s", e.Error)
		}
		return fmt.Errorf("client: %s failed: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Query mediates and executes SQL in the given receiver context.
func (c *Conn) Query(sql, context string) (*Result, error) {
	var resp server.QueryResponse
	if err := c.post("/api/query", server.QueryRequest{SQL: sql, Context: context}, &resp); err != nil {
		return nil, err
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows, MediatedSQL: resp.MediatedSQL, Branches: resp.Branches}, nil
}

// QueryNaive executes SQL without mediation.
func (c *Conn) QueryNaive(sql string) (*Result, error) {
	var resp server.QueryResponse
	if err := c.post("/api/query", server.QueryRequest{SQL: sql, Naive: true}, &resp); err != nil {
		return nil, err
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows}, nil
}

// Mediate returns the mediated SQL without executing it.
func (c *Conn) Mediate(sql, context string) (string, int, error) {
	var resp server.MediateResponse
	if err := c.post("/api/mediate", server.QueryRequest{SQL: sql, Context: context}, &resp); err != nil {
		return "", 0, err
	}
	return resp.MediatedSQL, resp.Branches, nil
}

// Explain returns the server's execution plan for the mediated query.
func (c *Conn) Explain(sql, context string) (string, error) {
	var resp server.ExplainResponse
	if err := c.post("/api/explain", server.QueryRequest{SQL: sql, Context: context}, &resp); err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Cursor iterates a Result row by row, in the style of an ODBC cursor.
type Cursor struct {
	res *Result
	i   int
}

// Cursor returns a fresh cursor positioned before the first row.
func (r *Result) Cursor() *Cursor { return &Cursor{res: r} }

// Next advances to the next row; it returns false after the last one,
// and the cursor then stays past the end (Scan fails).
func (c *Cursor) Next() bool {
	if c.i >= len(c.res.Rows) {
		c.i = len(c.res.Rows) + 1
		return false
	}
	c.i++
	return true
}

// Scan copies the current row's values into dest, which must contain one
// pointer per column: *string, *float64, *bool, or *interface{}.
func (c *Cursor) Scan(dest ...interface{}) error {
	if c.i == 0 || c.i > len(c.res.Rows) {
		return fmt.Errorf("client: Scan without a successful Next")
	}
	row := c.res.Rows[c.i-1]
	if len(dest) != len(row) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		switch d := d.(type) {
		case *interface{}:
			*d = row[i]
		case *string:
			s, ok := row[i].(string)
			if !ok {
				return fmt.Errorf("client: column %d is %T, not string", i, row[i])
			}
			*d = s
		case *float64:
			f, ok := row[i].(float64)
			if !ok {
				return fmt.Errorf("client: column %d is %T, not float64", i, row[i])
			}
			*d = f
		case *bool:
			b, ok := row[i].(bool)
			if !ok {
				return fmt.Errorf("client: column %d is %T, not bool", i, row[i])
			}
			*d = b
		default:
			return fmt.Errorf("client: unsupported Scan destination %T", d)
		}
	}
	return nil
}
