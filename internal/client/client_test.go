package client_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/coin"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wrapper"

	"net/http/httptest"
)

func testConn(t *testing.T) *client.Conn {
	t.Helper()
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	t.Cleanup(ts.Close)
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestCursorScan(t *testing.T) {
	conn := testConn(t)
	res, err := conn.Query("SELECT r1.cname, r1.revenue FROM r1 ORDER BY r1.revenue DESC", "c2")
	if err != nil {
		t.Fatal(err)
	}
	cur := res.Cursor()
	var names []string
	var revs []float64
	for cur.Next() {
		var name string
		var rev float64
		if err := cur.Scan(&name, &rev); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		revs = append(revs, rev)
	}
	if len(names) != 2 || names[0] != "IBM" || revs[1] != 9600000 {
		t.Errorf("cursor read %v %v", names, revs)
	}
	// Exhausted cursor refuses Scan.
	if err := cur.Scan(new(string), new(float64)); err == nil {
		t.Error("Scan after exhaustion succeeded")
	}
}

func TestCursorScanErrors(t *testing.T) {
	conn := testConn(t)
	res, err := conn.Query("SELECT r2.cname FROM r2", "c2")
	if err != nil {
		t.Fatal(err)
	}
	cur := res.Cursor()
	if err := cur.Scan(new(string)); err == nil {
		t.Error("Scan before Next succeeded")
	}
	if !cur.Next() {
		t.Fatal("no rows")
	}
	if err := cur.Scan(new(float64)); err == nil {
		t.Error("type-mismatched Scan succeeded")
	}
	if err := cur.Scan(new(string), new(string)); err == nil {
		t.Error("arity-mismatched Scan succeeded")
	}
	var anyv interface{}
	if err := cur.Scan(&anyv); err != nil || anyv == nil {
		t.Errorf("interface{} Scan: %v %v", anyv, err)
	}
}

func TestExplainOverHTTP(t *testing.T) {
	conn := testConn(t)
	plan, err := conn.Explain(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mediated into 3 branch(es)", "step 1:", "est_cost="} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if _, err := conn.Explain("SELECT nope FROM nosuch", "c2"); err == nil {
		t.Error("bad explain succeeded")
	}
}

func TestResultString(t *testing.T) {
	res := &client.Result{
		Columns: []server.ColumnInfo{{Name: "cname"}, {Name: "revenue"}},
		Rows:    [][]interface{}{{"NTT", 9600000.0}},
	}
	s := res.String()
	if !strings.Contains(s, "cname") || !strings.Contains(s, "NTT") {
		t.Errorf("table:\n%s", s)
	}
}

// TestExplainAnalyzeOverHTTP: the client's EXPLAIN ANALYZE executes
// server-side and returns plans with measured columns.
func TestExplainAnalyzeOverHTTP(t *testing.T) {
	conn := testConn(t)
	plan, err := conn.ExplainAnalyze(context.Background(), coin.PaperQ1, "c2", client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"act_rows=", "act_queries=", "est_cost="} {
		if !strings.Contains(plan, want) {
			t.Errorf("analyzed plan missing %q:\n%s", want, plan)
		}
	}
	if _, err := conn.ExplainAnalyze(context.Background(), "SELECT nope FROM nosuch", "c2", client.Options{}); err == nil {
		t.Error("bad analyze succeeded")
	}
}

// downFetcher fails every currency-page fetch with a transient fault.
type downFetcher struct{}

func (downFetcher) Get(ctx context.Context, url string) (string, error) {
	return "", wrapper.Transient(errors.New("currency site unreachable"))
}

func brokenConn(t *testing.T) *client.Conn {
	t.Helper()
	sys := coin.Figure2SystemWith(downFetcher{})
	ts := httptest.NewServer(sys.Handler())
	t.Cleanup(ts.Close)
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestPartialOptionSurfacesWarnings: Options.Partial degrades a query
// whose currency source is dead, and the client surfaces the dropped
// branches on Result.Warnings.
func TestPartialOptionSurfacesWarnings(t *testing.T) {
	conn := brokenConn(t)

	if _, err := conn.QueryCtx(context.Background(), coin.PaperQ1, "c2",
		client.Options{}); err == nil {
		t.Fatal("fail-fast query against a dead source succeeded")
	}

	res, err := conn.QueryCtx(context.Background(), coin.PaperQ1, "c2",
		client.Options{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("partial result carried no warnings")
	}
	for _, w := range res.Warnings {
		if w.Source != "currencyweb" || w.Branch == 0 {
			t.Errorf("warning %+v", w)
		}
	}
}

// TestPartialCursorWarnings: on the streaming path the warnings arrive
// with the trailer; RowCursor.Warnings is final once Next returns false.
func TestPartialCursorWarnings(t *testing.T) {
	conn := brokenConn(t)
	cur, err := conn.QueryStream(context.Background(), coin.PaperQ1, "c2", false,
		client.Options{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	warns := cur.Warnings()
	if len(warns) == 0 {
		t.Fatal("drained cursor carried no warnings")
	}
	for _, w := range warns {
		if w.Source != "currencyweb" {
			t.Errorf("warning %+v does not name currencyweb", w)
		}
	}
}
