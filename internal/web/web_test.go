package web

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSiteGetAndHits(t *testing.T) {
	s := NewSite("t")
	s.AddPage("/a", "hello")
	body, err := s.Get(context.Background(), "/a")
	if err != nil || body != "hello" {
		t.Fatalf("Get = %q, %v", body, err)
	}
	if _, err := s.Get(context.Background(), "/missing"); err == nil {
		t.Error("missing page succeeded")
	}
	if s.Hits() != 1 {
		t.Errorf("hits = %d", s.Hits())
	}
	s.ResetHits()
	if s.Hits() != 0 {
		t.Error("ResetHits failed")
	}
}

func TestSiteQueryParamOrderInsensitive(t *testing.T) {
	s := NewSite("t")
	s.AddPage("/rate?from=JPY&to=USD", "rate: 0.0096")
	body, err := s.Get(context.Background(), "/rate?to=USD&from=JPY")
	if err != nil || !strings.Contains(body, "0.0096") {
		t.Errorf("reordered query lookup = %q, %v", body, err)
	}
}

func TestCurrencySiteStructure(t *testing.T) {
	s := NewCurrencySite(PaperRates())
	index, err := s.Get(context.Background(), "/rates")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(index, "<a href=") != 4 {
		t.Errorf("index links:\n%s", index)
	}
	page, err := s.Get(context.Background(), "/rate?from=JPY&to=USD")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"from: JPY", "to: USD", "rate: 0.0096"} {
		if !strings.Contains(page, want) {
			t.Errorf("rate page missing %q:\n%s", want, page)
		}
	}
}

func TestStockSiteStructure(t *testing.T) {
	s := NewStockSite([]Quote{
		{Ticker: "IBM", Exchange: "NYSE", Price: 151.25, Currency: "USD"},
		{Ticker: "NTT", Exchange: "TSE", Price: 880000, Currency: "JPY"},
	})
	index, _ := s.Get(context.Background(), "/exchanges")
	if !strings.Contains(index, "/exchange/NYSE") || !strings.Contains(index, "/exchange/TSE") {
		t.Errorf("index:\n%s", index)
	}
	board, err := s.Get(context.Background(), "/exchange/TSE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(board, "<td>NTT</td><td>880000</td><td>JPY</td>") {
		t.Errorf("board:\n%s", board)
	}
}

func TestProfileSiteStructure(t *testing.T) {
	s := NewProfileSite([]Profile{{Name: "IBM", Country: "USA", Sector: "Technology", Employees: 220000}})
	card, err := s.Get(context.Background(), "/company?name=IBM")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name: IBM", "country: USA", "employees: 220000"} {
		if !strings.Contains(card, want) {
			t.Errorf("card missing %q:\n%s", want, card)
		}
	}
}

func TestSiteHTTPHandler(t *testing.T) {
	s := NewCurrencySite(PaperRates())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/rate?from=JPY&to=USD")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "rate: 0.0096") {
		t.Errorf("HTTP body:\n%s", body)
	}
	resp404, err := ts.Client().Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != 404 {
		t.Errorf("missing page status = %d", resp404.StatusCode)
	}
}

func TestURLsSorted(t *testing.T) {
	s := NewSite("t")
	s.AddPage("/b", "x")
	s.AddPage("/a", "y")
	urls := s.URLs()
	if len(urls) != 2 || urls[0] != "/a" {
		t.Errorf("urls = %v", urls)
	}
}
