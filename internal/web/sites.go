package web

import (
	"fmt"
	"sort"
	"strings"
)

// This file builds the three concrete simulated sites the prototype's
// demonstrations used: a currency-exchange service (the ancillary source
// r3 of the paper's example), a stock-quote ticker, and a company-profile
// directory.

// RatePair identifies a directed currency pair.
type RatePair struct {
	From, To string
}

// NewCurrencySite builds a currency-exchange service in the style of the
// Olsen server the COIN demos used: /rates is an index of links, and
// /rate?from=X&to=Y is a per-pair lookup page. The lookup page is reachable
// both by navigation and by direct parameterized access, so wrappers can
// expose it either as a crawlable relation or as one with required
// bindings.
func NewCurrencySite(rates map[RatePair]float64) *Site {
	s := NewSite("currencyweb")
	pairs := make([]RatePair, 0, len(rates))
	for p := range rates {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].From != pairs[j].From {
			return pairs[i].From < pairs[j].From
		}
		return pairs[i].To < pairs[j].To
	})

	var index strings.Builder
	index.WriteString("<html><head><title>Currency Exchange Rates</title></head><body>\n")
	index.WriteString("<h1>Exchange rate service</h1>\n<ul>\n")
	for _, p := range pairs {
		u := fmt.Sprintf("/rate?from=%s&to=%s", p.From, p.To)
		fmt.Fprintf(&index, "<li><a href=\"%s\">%s to %s</a></li>\n", u, p.From, p.To)
		body := fmt.Sprintf(
			"<html><body><h2>Exchange rate</h2>\n<p>from: %s</p>\n<p>to: %s</p>\n<p>rate: %g</p>\n</body></html>",
			p.From, p.To, rates[p])
		s.AddPage(u, body)
	}
	index.WriteString("</ul>\n</body></html>")
	s.AddPage("/rates", index.String())
	return s
}

// Quote is one security price on the stock site.
type Quote struct {
	Ticker   string
	Exchange string
	Price    float64
	Currency string
}

// NewStockSite builds a ticker site: /exchanges links to one table page
// per exchange listing ticker/price/currency rows.
func NewStockSite(quotes []Quote) *Site {
	s := NewSite("stockweb")
	byExchange := map[string][]Quote{}
	for _, q := range quotes {
		byExchange[q.Exchange] = append(byExchange[q.Exchange], q)
	}
	exchanges := make([]string, 0, len(byExchange))
	for e := range byExchange {
		exchanges = append(exchanges, e)
	}
	sort.Strings(exchanges)

	var index strings.Builder
	index.WriteString("<html><body><h1>Security prices</h1>\n<ul>\n")
	for _, e := range exchanges {
		u := "/exchange/" + e
		fmt.Fprintf(&index, "<li><a href=\"%s\">%s</a></li>\n", u, e)
		var page strings.Builder
		fmt.Fprintf(&page, "<html><body><h2>exchange: %s</h2>\n<table>\n", e)
		qs := byExchange[e]
		sort.Slice(qs, func(i, j int) bool { return qs[i].Ticker < qs[j].Ticker })
		for _, q := range qs {
			fmt.Fprintf(&page, "<tr><td>%s</td><td>%g</td><td>%s</td></tr>\n", q.Ticker, q.Price, q.Currency)
		}
		page.WriteString("</table>\n</body></html>")
		s.AddPage(u, page.String())
	}
	index.WriteString("</ul>\n</body></html>")
	s.AddPage("/exchanges", index.String())
	return s
}

// Profile is one company record on the profile site.
type Profile struct {
	Name      string
	Country   string
	Sector    string
	Employees int
}

// NewProfileSite builds a company directory: /companies is an index of
// links to per-company pages.
func NewProfileSite(profiles []Profile) *Site {
	s := NewSite("profileweb")
	sorted := append([]Profile(nil), profiles...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	var index strings.Builder
	index.WriteString("<html><body><h1>Company profiles</h1>\n<ul>\n")
	for _, p := range sorted {
		u := "/company?name=" + p.Name
		fmt.Fprintf(&index, "<li><a href=\"%s\">%s</a></li>\n", u, p.Name)
		body := fmt.Sprintf(
			"<html><body><h2>%s</h2>\n<p>name: %s</p>\n<p>country: %s</p>\n<p>sector: %s</p>\n<p>employees: %d</p>\n</body></html>",
			p.Name, p.Name, p.Country, p.Sector, p.Employees)
		s.AddPage(u, body)
	}
	index.WriteString("</ul>\n</body></html>")
	s.AddPage("/companies", index.String())
	return s
}

// PaperRates returns the exchange rates of the paper's example (Figure 2
// plus the extra currencies tests use).
func PaperRates() map[RatePair]float64 {
	return map[RatePair]float64{
		{From: "JPY", To: "USD"}: 0.0096,
		{From: "USD", To: "JPY"}: 104.00,
		{From: "EUR", To: "USD"}: 1.10,
		{From: "GBP", To: "USD"}: 1.55,
	}
}
