// Package web simulates the semi-structured Web sources of the COIN
// prototype. The paper wrapped live Internet sites (currency-exchange
// services, stock-price tickers, company profiles); those sites are long
// gone and non-deterministic anyway, so this package generates
// deterministic HTML-ish sites with the same navigational structure: an
// index page of links leading to detail pages, parameterized lookup pages
// driven by query strings, and table pages listing many rows. The Web
// wrapper (internal/wrapper) navigates them exactly as it would navigate
// the real thing, and the sites can also be served over real HTTP via
// Handler for the end-to-end architecture experiment.
package web

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
)

// Site is a set of pages addressable by URL path (including query
// string). It implements the wrapper.Fetcher contract.
type Site struct {
	Name string

	mu    sync.RWMutex
	pages map[string]string
	// hits counts fetches per URL; the planner benches read it to show
	// communication costs.
	hits map[string]int
}

// NewSite creates an empty site.
func NewSite(name string) *Site {
	return &Site{Name: name, pages: map[string]string{}, hits: map[string]int{}}
}

// AddPage registers a page body under a URL (path plus optional query).
func (s *Site) AddPage(url, body string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages[url] = body
}

// Get returns the body of a page. Unknown URLs return an error, like a
// 404. A canceled context returns ctx.Err() without serving the page,
// mirroring a live fetcher whose socket the engine tears down.
func (s *Site) Get(ctx context.Context, u string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	body, ok := s.pages[u]
	if !ok {
		// Tolerate query-parameter reordering: try canonical form.
		if cu, err := canonicalURL(u); err == nil {
			body, ok = s.pages[cu]
		}
	}
	if !ok {
		return "", fmt.Errorf("web: %s: no page %q", s.Name, u)
	}
	s.hits[u]++
	return body, nil
}

// Hits reports how many fetches the site has served.
func (s *Site) Hits() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, h := range s.hits {
		n += h
	}
	return n
}

// ResetHits zeroes the fetch counters.
func (s *Site) ResetHits() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = map[string]int{}
}

// URLs lists the site's pages, sorted.
func (s *Site) URLs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pages))
	for u := range s.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// canonicalURL sorts query parameters so lookups are order-insensitive.
func canonicalURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	q := u.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(u.Path)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte('?')
		} else {
			b.WriteByte('&')
		}
		b.WriteString(k + "=" + q.Get(k))
	}
	return b.String(), nil
}

// Handler exposes the site over real HTTP (used by the architecture
// end-to-end test and cmd/coinserver's demo mode).
func (s *Site) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		u := r.URL.Path
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		body, err := s.Get(r.Context(), u)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, body)
	})
}
