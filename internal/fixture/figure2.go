// Package fixture builds the paper's running example (Figure 2) and the
// synthetic workloads of the benchmark harness, shared by tests, benches
// and examples: the relations R1 and R2, the currency-exchange Web source
// R3, the contexts c1 and c2, the domain model with companyFinancials and
// its scaleFactor/currency modifiers, and generators that scale the same
// shape up (more rows, more contexts, more modifiers) for the E4/E5
// experiments.
package fixture

import (
	"fmt"
	"math/rand"

	"repro/internal/datalog"
	"repro/internal/domain"
	"repro/internal/relalg"
	"repro/internal/store"
)

// Paper's Figure 2 constants.
const (
	// RateJPYToUSD is the JPY→USD conversion rate implied by the paper's
	// answer: 9,600,000 USD = 1,000,000 × 1000 × 0.0096.
	RateJPYToUSD = 0.0096
	// RateUSDToJPY is the USD→JPY rate shown on the Web source (104.00).
	RateUSDToJPY = 104.00
)

// R1Schema is the schema of relation R1 in source 1 (context c1).
func R1Schema() relalg.Schema {
	return relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "revenue", Type: relalg.KindNumber},
		relalg.Column{Name: "currency", Type: relalg.KindString},
	)
}

// R2Schema is the schema of relation R2 in source 2 (context c2).
func R2Schema() relalg.Schema {
	return relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "expenses", Type: relalg.KindNumber},
	)
}

// R3Schema is the schema of the ancillary currency-exchange Web source.
func R3Schema() relalg.Schema {
	return relalg.NewSchema(
		relalg.Column{Name: "fromCur", Type: relalg.KindString},
		relalg.Column{Name: "toCur", Type: relalg.KindString},
		relalg.Column{Name: "rate", Type: relalg.KindNumber},
	)
}

// R1Data returns Figure 2's R1 rows. The available scan of the paper is
// OCR-garbled for the figure; the values here are reconstructed from the
// worked arithmetic in Section 3, which is unambiguous: NTT's revenue is
// 1,000,000 (JPY, scale 1000), since "9,600,000 USD = 1,000,000 x 1,000 x
// 0.0096".
func R1Data() *relalg.Relation {
	r := relalg.NewRelation("r1", R1Schema())
	r.MustAdd(relalg.StrV("IBM"), relalg.NumV(100000000), relalg.StrV("USD"))
	r.MustAdd(relalg.StrV("NTT"), relalg.NumV(1000000), relalg.StrV("JPY"))
	return r
}

// R2Data returns Figure 2's R2 rows. The paper states the correct answer
// "consists only of the tuple <'NTT' 9 600 000>", so IBM's expenses must
// exceed its 100,000,000 USD revenue; the OCR's "1500000" lost digits and
// is reconstructed as 150,000,000.
func R2Data() *relalg.Relation {
	r := relalg.NewRelation("r2", R2Schema())
	r.MustAdd(relalg.StrV("IBM"), relalg.NumV(150000000))
	r.MustAdd(relalg.StrV("NTT"), relalg.NumV(5000000))
	return r
}

// R3Data returns the currency-exchange rates the example needs, both
// directions for USD/JPY plus a couple of extra currencies so the "other"
// branch of the mediated query is exercised by tests.
func R3Data() *relalg.Relation {
	r := relalg.NewRelation("r3", R3Schema())
	r.MustAdd(relalg.StrV("JPY"), relalg.StrV("USD"), relalg.NumV(RateJPYToUSD))
	r.MustAdd(relalg.StrV("USD"), relalg.StrV("JPY"), relalg.NumV(RateUSDToJPY))
	r.MustAdd(relalg.StrV("EUR"), relalg.StrV("USD"), relalg.NumV(1.10))
	r.MustAdd(relalg.StrV("GBP"), relalg.StrV("USD"), relalg.NumV(1.55))
	return r
}

// Model builds the domain model of the example.
func Model() *domain.Model {
	m := domain.NewModel()
	m.MustAddType(&domain.SemType{Name: "companyName"})
	m.MustAddType(&domain.SemType{Name: "currencyType"})
	m.MustAddType(&domain.SemType{Name: "exchangeRate"})
	m.MustAddType(&domain.SemType{Name: "companyFinancials", Modifiers: []string{"scaleFactor", "currency"}})
	m.MustAddConversion(domain.RatioConversion("scaleFactor"))
	m.MustAddConversion(domain.LookupConversion("currency", "rate"))
	return m
}

// ContextC1 builds source 1's context: financials use the currency named
// by the tuple's currency attribute, scale factor 1000 for JPY and 1
// otherwise.
func ContextC1() *domain.Context {
	c1 := domain.NewContext("c1")
	c1.MustDeclare(&domain.ModifierDecl{
		SemType:  "companyFinancials",
		Modifier: "scaleFactor",
		Cases: []domain.Case{
			{CondModifier: "currency", CondOp: "=", CondValue: datalog.Str("JPY"), Value: domain.ConstSpec(1000)},
			{Value: domain.ConstSpec(1)},
		},
	})
	c1.MustDeclare(&domain.ModifierDecl{
		SemType:  "companyFinancials",
		Modifier: "currency",
		Cases:    []domain.Case{{Value: domain.AttrSpec("currency")}},
	})
	return c1
}

// ContextC2 builds source 2's (and the receiver's) context: USD, scale 1.
func ContextC2() *domain.Context {
	c2 := domain.NewContext("c2")
	if err := c2.DeclareConst("companyFinancials", "scaleFactor", 1); err != nil {
		panic(err)
	}
	if err := c2.DeclareConst("companyFinancials", "currency", "USD"); err != nil {
		panic(err)
	}
	return c2
}

// Registry assembles the complete Figure 2 knowledge base.
func Registry() *domain.Registry {
	reg := domain.NewRegistry(Model())
	reg.MustAddContext(ContextC1())
	reg.MustAddContext(ContextC2())
	reg.MustRegisterRelation("r1", R1Schema(), &domain.Elevation{
		Relation: "r1",
		Context:  "c1",
		Columns: []domain.ElevatedColumn{
			{Column: "cname", SemType: "companyName"},
			{Column: "revenue", SemType: "companyFinancials"},
		},
	})
	reg.MustRegisterRelation("r2", R2Schema(), &domain.Elevation{
		Relation: "r2",
		Context:  "c2",
		Columns: []domain.ElevatedColumn{
			{Column: "cname", SemType: "companyName"},
			{Column: "expenses", SemType: "companyFinancials"},
		},
	})
	reg.MustRegisterRelation("r3", R3Schema(), nil)
	reg.MustAddAncillary("rate", "r3")
	return reg
}

// Databases materializes the three sources as in-memory databases keyed by
// source name, with Figure 2's rows.
func Databases() map[string]*store.DB {
	src1 := store.NewDB("source1")
	t1 := src1.MustCreateTable("r1", R1Schema())
	for _, row := range R1Data().Tuples {
		if err := t1.Insert(row); err != nil {
			panic(err)
		}
	}
	src2 := store.NewDB("source2")
	t2 := src2.MustCreateTable("r2", R2Schema())
	for _, row := range R2Data().Tuples {
		if err := t2.Insert(row); err != nil {
			panic(err)
		}
	}
	web := store.NewDB("currencyweb")
	t3 := web.MustCreateTable("r3", R3Schema())
	for _, row := range R3Data().Tuples {
		if err := t3.Insert(row); err != nil {
			panic(err)
		}
	}
	return map[string]*store.DB{"source1": src1, "source2": src2, "currencyweb": web}
}

// PaperQ1 is the query of Section 3 verbatim (rl aliases r1 in the paper's
// typography; we register the relation under both spellings via FROM
// aliasing).
const PaperQ1 = `
SELECT rl.cname, rl.revenue FROM r1 rl, r2
WHERE rl.cname = r2.cname
AND rl.revenue > r2.expenses`

// ScaledWorkload generates a randomized workload of the Figure 2 shape
// with n companies: R1 rows spread over the given currencies, consistent
// R2 expenses, and a complete rate table into USD. The returned oracle
// function computes the correct receiver-context answer directly in Go,
// for equivalence testing against the mediated query.
type ScaledWorkload struct {
	R1, R2, R3 *relalg.Relation
	// Expected holds the correct answer rows (cname, revenue in USD scale
	// 1), sorted by company name, for "revenue > expenses" in context c2.
	Expected *relalg.Relation
}

// NewScaledWorkload builds a ScaledWorkload with n companies using the
// given random seed.
func NewScaledWorkload(n int, seed int64) *ScaledWorkload {
	rng := rand.New(rand.NewSource(seed))
	currencies := []string{"USD", "JPY", "EUR", "GBP"}
	rates := map[string]float64{"JPY": RateJPYToUSD, "EUR": 1.10, "GBP": 1.55}

	w := &ScaledWorkload{
		R1: relalg.NewRelation("r1", R1Schema()),
		R2: relalg.NewRelation("r2", R2Schema()),
		R3: R3Data(),
		Expected: relalg.NewRelation("expected", relalg.NewSchema(
			relalg.Column{Name: "cname", Type: relalg.KindString},
			relalg.Column{Name: "revenue", Type: relalg.KindNumber},
		)),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("CO%04d", i)
		cur := currencies[rng.Intn(len(currencies))]
		revRaw := float64(rng.Intn(1_000_000) + 1)
		expenses := float64(rng.Intn(2_000_000) + 1)
		w.R1.MustAdd(relalg.StrV(name), relalg.NumV(revRaw), relalg.StrV(cur))
		w.R2.MustAdd(relalg.StrV(name), relalg.NumV(expenses))

		revUSD := revRaw
		if cur == "JPY" {
			revUSD = revRaw * 1000 * rates["JPY"]
		} else if cur != "USD" {
			revUSD = revRaw * rates[cur]
		}
		if revUSD > expenses {
			w.Expected.MustAdd(relalg.StrV(name), relalg.NumV(revUSD))
		}
	}
	return w
}

// WideRegistry builds a registry with extraSources additional registered
// relations (each in its own context, same shape as r1) beyond the Figure
// 2 three. The E4 experiment uses it to show mediation cost is governed by
// the sources a query touches, not by how many are registered.
func WideRegistry(extraSources int) *domain.Registry {
	reg := Registry()
	for i := 0; i < extraSources; i++ {
		name := fmt.Sprintf("extra%03d", i)
		ctx := domain.NewContext("ctx_" + name)
		if err := ctx.DeclareConst("companyFinancials", "scaleFactor", 1000); err != nil {
			panic(err)
		}
		if err := ctx.DeclareConst("companyFinancials", "currency", "EUR"); err != nil {
			panic(err)
		}
		reg.MustAddContext(ctx)
		reg.MustRegisterRelation(name, R1Schema(), &domain.Elevation{
			Relation: name,
			Context:  ctx.Name,
			Columns: []domain.ElevatedColumn{
				{Column: "cname", SemType: "companyName"},
				{Column: "revenue", SemType: "companyFinancials"},
			},
		})
	}
	return reg
}

// ConflictRegistry builds a registry whose single relation has a value
// column with m independent two-way conditional modifiers, so mediating a
// query over it yields 2^m branches. The E5 experiment sweeps m.
func ConflictRegistry(m int) *domain.Registry {
	model := domain.NewModel()
	model.MustAddType(&domain.SemType{Name: "flagType"})
	mods := make([]string, m)
	for i := range mods {
		mods[i] = fmt.Sprintf("mod%d", i)
		model.MustAddConversion(domain.RatioConversion(mods[i]))
	}
	model.MustAddType(&domain.SemType{Name: "measure", Modifiers: mods})

	// The relation has one value column and one flag column per modifier;
	// each modifier's value is conditional on its own flag attribute, so
	// the case splits are independent and the branch count is 2^m.
	cols := []relalg.Column{{Name: "id", Type: relalg.KindString}, {Name: "val", Type: relalg.KindNumber}}
	elev := []domain.ElevatedColumn{{Column: "val", SemType: "measure"}}
	src := domain.NewContext("src")
	recv := domain.NewContext("recv")
	for i := 0; i < m; i++ {
		flagCol := fmt.Sprintf("flag%d", i)
		cols = append(cols, relalg.Column{Name: flagCol, Type: relalg.KindString})
		src.MustDeclare(&domain.ModifierDecl{
			SemType:  "measure",
			Modifier: mods[i],
			Cases: []domain.Case{
				{CondAttribute: flagCol, CondOp: "=", CondValue: datalog.Str("K"), Value: domain.ConstSpec(1000)},
				{Value: domain.ConstSpec(1)},
			},
		})
		if err := recv.DeclareConst("measure", mods[i], 1); err != nil {
			panic(err)
		}
	}
	reg := domain.NewRegistry(model)
	reg.MustAddContext(src)
	reg.MustAddContext(recv)
	reg.MustRegisterRelation("wide", relalg.Schema{Columns: cols}, &domain.Elevation{
		Relation: "wide",
		Context:  "src",
		Columns:  elev,
	})
	return reg
}
