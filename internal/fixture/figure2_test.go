package fixture

import (
	"testing"

	"repro/internal/relalg"
)

func TestFigure2Data(t *testing.T) {
	r1 := R1Data()
	if r1.Len() != 2 {
		t.Fatalf("r1 rows = %d", r1.Len())
	}
	// NTT's raw revenue must match the paper's arithmetic (1,000,000).
	if r1.Tuples[1][0].S != "NTT" || r1.Tuples[1][1].N != 1e6 || r1.Tuples[1][2].S != "JPY" {
		t.Errorf("NTT row = %v", r1.Tuples[1])
	}
	r2 := R2Data()
	// IBM's expenses exceed its revenue so the paper's stated answer
	// (only NTT) holds.
	if !(r2.Tuples[0][1].N > r1.Tuples[0][1].N) {
		t.Errorf("IBM expenses %v must exceed revenue %v", r2.Tuples[0][1], r1.Tuples[0][1])
	}
	r3 := R3Data()
	found := false
	for _, tup := range r3.Tuples {
		if tup[0].S == "JPY" && tup[1].S == "USD" && tup[2].N == RateJPYToUSD {
			found = true
		}
	}
	if !found {
		t.Error("JPY→USD rate missing")
	}
}

func TestDatabasesMatchRegistry(t *testing.T) {
	reg := Registry()
	dbs := Databases()
	for db, rel := range map[string]string{
		"source1": "r1", "source2": "r2", "currencyweb": "r3",
	} {
		tab, err := dbs[db].Table(rel)
		if err != nil {
			t.Fatalf("%s: %v", db, err)
		}
		schema, ok := reg.Schema(rel)
		if !ok {
			t.Fatalf("registry lacks %s", rel)
		}
		if !tab.Schema.Equal(schema) {
			t.Errorf("%s schema mismatch: %v vs %v", rel, tab.Schema, schema)
		}
	}
}

func TestScaledWorkloadOracleConsistency(t *testing.T) {
	w := NewScaledWorkload(200, 7)
	if w.R1.Len() != 200 || w.R2.Len() != 200 {
		t.Fatalf("sizes = %d, %d", w.R1.Len(), w.R2.Len())
	}
	// Recompute the oracle by hand and compare.
	rates := map[string]float64{"JPY": RateJPYToUSD, "EUR": 1.10, "GBP": 1.55, "USD": 1}
	expect := map[string]float64{}
	for i, row := range w.R1.Tuples {
		cur := row[2].S
		rev := row[1].N
		usd := rev * rates[cur]
		if cur == "JPY" {
			usd = rev * 1000 * rates["JPY"]
		}
		exp := w.R2.Tuples[i][1].N
		if usd > exp {
			expect[row[0].S] = usd
		}
	}
	if len(expect) != w.Expected.Len() {
		t.Fatalf("oracle size = %d, fixture says %d", len(expect), w.Expected.Len())
	}
	for _, tup := range w.Expected.Tuples {
		if got := expect[tup[0].S]; got != tup[1].N {
			t.Errorf("%s: %v vs %v", tup[0].S, got, tup[1].N)
		}
	}
	// Determinism: same seed, same workload.
	w2 := NewScaledWorkload(200, 7)
	if !relalg.SameTuples(w.R1, w2.R1) || !relalg.SameTuples(w.Expected, w2.Expected) {
		t.Error("workload generation is not deterministic")
	}
}

func TestWideAndConflictRegistries(t *testing.T) {
	wide := WideRegistry(5)
	if got := len(wide.RelationNames()); got != 8 {
		t.Errorf("wide relations = %d", got)
	}
	if _, err := wide.Compile("c2"); err != nil {
		t.Errorf("wide compile: %v", err)
	}
	conf := ConflictRegistry(3)
	if _, err := conf.Compile("recv"); err != nil {
		t.Errorf("conflict compile: %v", err)
	}
	schema, _ := conf.Schema("wide")
	if len(schema.Columns) != 2+3 {
		t.Errorf("conflict schema = %v", schema.Names())
	}
}
