package golden

// The semantic diff. Plans are compared structurally: every line keeps
// its operator shape — step order, relation, source, pushed filters,
// local filter counts, bind joins, batch widths, join keys — while the
// volatile digits (est_*/act_* estimates, total cost) are masked, so
// re-pricing a plan is invisible but reordering it, losing a pushdown or
// changing a batch width fails loudly. Results compare as multisets
// unless the query orders its rows.

import (
	"fmt"
	"regexp"
	"strings"
)

// volatileDigits matches the cost-model numbers in plan text: any
// est_/act_-prefixed counter, and the total line's cost.
var volatileDigits = regexp.MustCompile(`\b((?:est|act)_[a-z_]+=)-?[0-9.]+`)

// NormalizePlan reduces plan text to its structural lines: volatile
// digits masked to '#', trailing whitespace dropped, empty lines removed.
func NormalizePlan(plan string) []string {
	var out []string
	for _, line := range strings.Split(plan, "\n") {
		line = strings.TrimRight(line, " \t")
		if line == "" {
			continue
		}
		out = append(out, volatileDigits.ReplaceAllString(line, "${1}#"))
	}
	return out
}

// Compare diffs a current result against its baseline, returning
// human-readable findings (empty: the run matches).
func Compare(base *Baseline, got *Result) []string {
	var diffs []string
	diffs = append(diffs, comparePlans(base.Plan, got.Plan)...)
	if base.Ordered != got.Ordered {
		diffs = append(diffs, fmt.Sprintf("result ordering changed: baseline %s, current %s",
			orderWord(base.Ordered), orderWord(got.Ordered)))
	}
	diffs = append(diffs, compareResults(base, got)...)
	diffs = append(diffs, compareLines("warnings", base.Warnings, got.Warnings)...)
	return diffs
}

func orderWord(ordered bool) string {
	if ordered {
		return "ordered"
	}
	return "unordered"
}

// comparePlans diffs two plans structurally.
func comparePlans(base, got string) []string {
	b, g := NormalizePlan(base), NormalizePlan(got)
	var diffs []string
	if len(b) != len(g) {
		diffs = append(diffs, fmt.Sprintf("plan shape changed: baseline has %d lines, current has %d", len(b), len(g)))
	}
	n := len(b)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if b[i] != g[i] {
			diffs = append(diffs, fmt.Sprintf("plan line %d differs:\n  baseline: %s\n  current:  %s", i+1, b[i], g[i]))
		}
	}
	for i := n; i < len(b); i++ {
		diffs = append(diffs, fmt.Sprintf("plan line %d missing from current: %s", i+1, b[i]))
	}
	for i := n; i < len(g); i++ {
		diffs = append(diffs, fmt.Sprintf("plan line %d new in current: %s", i+1, g[i]))
	}
	return diffs
}

// compareResults diffs the row sets: exact sequence when ordered,
// multiset otherwise.
func compareResults(base *Baseline, got *Result) []string {
	var diffs []string
	if base.Header != got.Header {
		diffs = append(diffs, fmt.Sprintf("result schema changed:\n  baseline: %s\n  current:  %s", base.Header, got.Header))
	}
	if base.Ordered && got.Ordered {
		return append(diffs, compareLines("row", base.Rows, got.Rows)...)
	}
	counts := map[string]int{}
	for _, r := range base.Rows {
		counts[r]++
	}
	for _, r := range got.Rows {
		counts[r]--
	}
	// Iterate baseline-then-current order so messages come out stable.
	seen := map[string]bool{}
	for _, r := range append(append([]string{}, base.Rows...), got.Rows...) {
		if seen[r] {
			continue
		}
		seen[r] = true
		switch d := counts[r]; {
		case d > 0:
			diffs = append(diffs, fmt.Sprintf("row missing from current (x%d): %s", d, r))
		case d < 0:
			diffs = append(diffs, fmt.Sprintf("row new in current (x%d): %s", -d, r))
		}
	}
	return diffs
}

// compareLines diffs two line sequences positionally.
func compareLines(what string, base, got []string) []string {
	var diffs []string
	n := len(base)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if base[i] != got[i] {
			diffs = append(diffs, fmt.Sprintf("%s %d differs:\n  baseline: %s\n  current:  %s", what, i+1, base[i], got[i]))
		}
	}
	for i := n; i < len(base); i++ {
		diffs = append(diffs, fmt.Sprintf("%s %d missing from current: %s", what, i+1, base[i]))
	}
	for i := n; i < len(got); i++ {
		diffs = append(diffs, fmt.Sprintf("%s %d new in current: %s", what, i+1, got[i]))
	}
	return diffs
}
