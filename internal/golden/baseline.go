package golden

// Baseline files. One .golden file per corpus entry, sectioned:
//
//	== sql
//	SELECT ...
//	== plan
//	step 1: ...
//	total est_cost=123
//	== results unordered        (or "ordered")
//	cname:str | price:num
//	'IBM' | 145.5
//	== warnings                 (only when the run degraded)
//	branch 2: source currencyweb dropped
//
// Render is the single serialization point: the update path writes
// exactly what Render returns, and the determinism test re-renders and
// byte-compares, so `make golden-update` twice is provably a no-op.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Baseline is a parsed .golden file — structurally identical to Result.
type Baseline = Result

// Render serializes a result to its baseline file form.
func Render(r *Result) string {
	var b strings.Builder
	b.WriteString("== sql\n")
	b.WriteString(strings.TrimRight(r.SQL, "\n"))
	b.WriteString("\n== plan\n")
	b.WriteString(strings.TrimRight(r.Plan, "\n"))
	if r.Ordered {
		b.WriteString("\n== results ordered\n")
	} else {
		b.WriteString("\n== results unordered\n")
	}
	b.WriteString(r.Header)
	for _, row := range r.Rows {
		b.WriteString("\n")
		b.WriteString(row)
	}
	if len(r.Warnings) > 0 {
		b.WriteString("\n== warnings")
		for _, w := range r.Warnings {
			b.WriteString("\n")
			b.WriteString(w)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// ParseBaseline parses a .golden file body.
func ParseBaseline(name, body string) (*Baseline, error) {
	b := &Baseline{Name: name}
	section := ""
	sawHeader := false
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "== "); ok {
			section = rest
			switch {
			case section == "sql" || section == "plan" || section == "warnings":
			case section == "results ordered":
				b.Ordered = true
			case section == "results unordered":
			default:
				return nil, fmt.Errorf("golden: %s: unknown section %q", name, section)
			}
			continue
		}
		switch {
		case section == "sql":
			if b.SQL != "" {
				b.SQL += "\n"
			}
			b.SQL += line
		case section == "plan":
			b.Plan += line + "\n"
		case strings.HasPrefix(section, "results"):
			if !sawHeader {
				b.Header = line
				sawHeader = true
			} else {
				b.Rows = append(b.Rows, line)
			}
		case section == "warnings":
			b.Warnings = append(b.Warnings, line)
		default:
			return nil, fmt.Errorf("golden: %s: content before first section", name)
		}
	}
	if b.SQL == "" || b.Plan == "" || !sawHeader {
		return nil, fmt.Errorf("golden: %s: missing sql, plan or results section", name)
	}
	return b, nil
}

// GoldenPath is the baseline file for a corpus entry name.
func GoldenPath(dir, name string) string {
	return filepath.Join(dir, name+".golden")
}

// ReadBaseline loads one entry's baseline.
func ReadBaseline(dir, name string) (*Baseline, error) {
	raw, err := os.ReadFile(GoldenPath(dir, name))
	if err != nil {
		return nil, err
	}
	return ParseBaseline(name, string(raw))
}

// WriteBaseline renders and writes one entry's baseline.
func WriteBaseline(dir string, r *Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(GoldenPath(dir, r.Name), []byte(Render(r)), 0o644)
}
