// Package golden is the query-regression harness: a fixed corpus of SQL
// queries (testdata/queries) runs against a frozen registry mixing every
// backend kind the engine wraps — in-memory relational, CSV/JSON files,
// SQL-over-database/sql, and a paginated rate-limited REST service — and
// both the answers and the EXPLAIN plans are baselined to
// testdata/golden/*.golden. The comparison is semantic: result rows are
// order-insensitive unless the query orders them, and plan text is
// compared by structure (operator order, sources, pushed filters, bind
// joins and batch widths) with the volatile cost digits masked, so a cost
// model tweak that reorders a join fails the suite while a tweak that
// only re-prices the same plan does not. `make golden-update` regenerates
// the baselines deterministically.
package golden

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"

	"repro/internal/planner"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/filesrc"
	"repro/internal/wrapper/restsrc"
	"repro/internal/wrapper/sqlsrc"
)

// Fixture is the frozen four-backend registry every corpus query runs
// against. Each query gets a fresh Fixture, so adaptive statistics and
// probe caches from one query can never leak into another's plan.
type Fixture struct {
	// Ex is the engine over the heterogeneous catalog.
	Ex *planner.Executor
	// Rest is the REST fixture server (exposed for fault scripting in
	// self-tests).
	Rest *restsrc.Server

	hs *httptest.Server
}

func strCol(n string) relalg.Column  { return relalg.Column{Name: n, Type: relalg.KindString} }
func numCol(n string) relalg.Column  { return relalg.Column{Name: n, Type: relalg.KindNumber} }
func boolCol(n string) relalg.Column { return relalg.Column{Name: n, Type: relalg.KindBool} }

// NewFixture assembles the registry:
//
//	hq       in-memory relational   companies(cname, country, founded)
//	archive  CSV/JSON files        earnings.csv, sectors.json
//	finance  SQL over database/sql accounts, fx (fx requires cur; IN-lists batch 4-wide)
//	markets  paginated REST        quotes (requires cname), indices
//
// All company-bearing relations share cname keys, so the corpus can join
// across every pairing of backends.
func NewFixture() (*Fixture, error) {
	cat := planner.NewCatalog()

	// hq: the native in-memory relational source.
	hq := store.NewDB("hq")
	companies := hq.MustCreateTable("companies", relalg.NewSchema(strCol("cname"), strCol("country"), numCol("founded")))
	for _, r := range []struct {
		c, co string
		f     float64
	}{
		{"IBM", "US", 1911}, {"NTT", "JP", 1952}, {"SONY", "JP", 1946},
		{"DT", "DE", 1995}, {"BT", "UK", 1980}, {"ACME", "US", 1999},
	} {
		companies.MustInsert(relalg.StrV(r.c), relalg.StrV(r.co), relalg.NumV(r.f))
	}
	// trades: the corpus's bulk relation — large enough that the
	// parallelize pass fans its scan out and runs joins over it under the
	// exchange (the parallelism-directive entries, 29+). Deterministic
	// LCG-shuffled rows keyed by cname, so partitioned runs face unsorted,
	// repeating keys.
	tradeNames := []string{"IBM", "NTT", "SONY", "DT", "BT", "ACME"}
	trades := hq.MustCreateTable("trades", relalg.NewSchema(strCol("cname"), numCol("amount")))
	lcg := uint32(12345)
	for i := 0; i < 3000; i++ {
		lcg = lcg*1664525 + 1013904223
		trades.MustInsert(relalg.StrV(tradeNames[lcg%6]), relalg.NumV(float64(lcg%100000)))
	}
	if err := cat.AddSource(wrapper.NewRelational(hq)); err != nil {
		return nil, err
	}

	// archive: rows streamed from CSV and JSON files on disk.
	files, err := filesrc.New("archive", "testdata/files")
	if err != nil {
		return nil, err
	}
	if err := cat.AddSource(files); err != nil {
		return nil, err
	}

	// finance: a SQL server reached through database/sql. fx is a keyed
	// lookup (cur must be bound), so joins against it become bind joins
	// batched into 4-wide IN-lists.
	fdb := store.NewDB("financedb")
	accounts := fdb.MustCreateTable("accounts",
		relalg.NewSchema(strCol("cname"), numCol("expenses"), strCol("currency"), boolCol("audited")))
	for _, r := range []struct {
		c string
		e float64
		u string
		a bool
	}{
		{"IBM", 5000000, "USD", true}, {"NTT", 3000000, "JPY", true},
		{"SONY", 2500000, "JPY", false}, {"DT", 2000000, "DEM", true},
		{"BT", 1500000, "GBP", false}, {"ACME", 800000, "USD", false},
	} {
		accounts.MustInsert(relalg.StrV(r.c), relalg.NumV(r.e), relalg.StrV(r.u), relalg.BoolV(r.a))
	}
	fx := fdb.MustCreateTable("fx", relalg.NewSchema(strCol("cur"), numCol("usd")))
	for _, r := range []struct {
		c string
		v float64
	}{{"USD", 1}, {"JPY", 0.0091}, {"DEM", 0.58}, {"GBP", 1.62}} {
		fx.MustInsert(relalg.StrV(r.c), relalg.NumV(r.v))
	}
	sdb, _ := sqlsrc.OpenMem(fdb)
	finance := sqlsrc.New("finance", sdb)
	finance.Batch = 4
	finance.Require = map[string][]string{"fx": {"cur"}}
	finance.AddRelation("accounts", relalg.NewSchema(strCol("cname"), numCol("expenses"), strCol("currency"), boolCol("audited")))
	finance.AddRelation("fx", relalg.NewSchema(strCol("cur"), numCol("usd")))
	if err := cat.AddSource(finance); err != nil {
		return nil, err
	}

	// markets: a REST API behind a real HTTP server. quotes is
	// form-bound (cname required); indices pages 5 rows at a time.
	mdb := store.NewDB("marketsdb")
	quotes := mdb.MustCreateTable("quotes", relalg.NewSchema(strCol("cname"), numCol("price")))
	for _, r := range []struct {
		c string
		p float64
	}{
		{"IBM", 145.5}, {"NTT", 88}, {"SONY", 61.25},
		{"DT", 17.8}, {"BT", 4.5}, {"ACME", 0.01},
	} {
		quotes.MustInsert(relalg.StrV(r.c), relalg.NumV(r.p))
	}
	indices := mdb.MustCreateTable("indices", relalg.NewSchema(strCol("iname"), numCol("level")))
	for i := 0; i < 12; i++ {
		indices.MustInsert(relalg.StrV(fmt.Sprintf("ix%02d", i)), relalg.NumV(float64(1000+i)))
	}
	rest := restsrc.NewServer(mdb)
	rest.Require = map[string][]string{"quotes": {"cname"}}
	hs := httptest.NewServer(rest)
	markets, err := restsrc.Dial("markets", hs.URL, hs.Client())
	if err != nil {
		hs.Close()
		return nil, err
	}
	if err := cat.AddSource(markets); err != nil {
		hs.Close()
		return nil, err
	}

	return &Fixture{Ex: planner.NewExecutor(cat), Rest: rest, hs: hs}, nil
}

// Close releases the fixture's HTTP server.
func (f *Fixture) Close() {
	if f.hs != nil {
		f.hs.Close()
	}
}

// downFetcher fails every page fetch with a transient fault — the
// partial-results corpus entries run the paper's system with its currency
// site unreachable.
type downFetcher struct{}

// Get implements wrapper.Fetcher.
func (downFetcher) Get(context.Context, string) (string, error) {
	return "", wrapper.Transient(errors.New("currency site unreachable"))
}
