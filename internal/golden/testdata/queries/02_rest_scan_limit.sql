-- paginated REST scan with ORDER BY + LIMIT
SELECT indices.iname FROM indices ORDER BY indices.iname LIMIT 4
