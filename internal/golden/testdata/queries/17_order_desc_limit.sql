-- top-3 by expenses, descending
SELECT accounts.cname, accounts.expenses FROM accounts ORDER BY accounts.expenses DESC LIMIT 3
