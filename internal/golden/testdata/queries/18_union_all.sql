-- UNION ALL across relational and file backends (duplicates kept)
SELECT companies.cname FROM companies WHERE companies.country = 'JP'
UNION ALL
SELECT sectors.cname FROM sectors WHERE sectors.sector = 'Telecom'
