-- quotes requires cname bound: bind join feeds the REST source per value
SELECT companies.cname, quotes.price FROM companies, quotes WHERE quotes.cname = companies.cname
