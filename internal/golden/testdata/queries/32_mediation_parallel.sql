-- mediation branches executing with parallel cores: each branch's sort
-- runs under the merge exchange (merge[2] in every ordered branch plan)
-- mode: mediate
-- receiver: c2
-- ordered: true
-- parallelism: 2
SELECT rl.cname, rl.revenue FROM r1 rl, r2
WHERE rl.cname = r2.cname
AND rl.revenue > r2.expenses
ORDER BY rl.cname
