-- file >< sql >< keyed-sql chain: converted expenses per company
SELECT earnings.cname, earnings.revenue, accounts.expenses * fx.usd AS usd_expenses
FROM earnings, accounts, fx
WHERE accounts.cname = earnings.cname AND fx.cur = accounts.currency
