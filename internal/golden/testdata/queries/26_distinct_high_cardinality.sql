-- DISTINCT over a high-cardinality string column (every row unique, so
-- the dedup set grows by one per row) fed by the paginated REST backend,
-- whose 5-row pages land the batch boundaries mid-stream
SELECT DISTINCT indices.iname FROM indices
