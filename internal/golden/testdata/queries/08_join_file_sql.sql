-- equi-join across the file and SQL backends
SELECT earnings.cname, earnings.revenue, accounts.expenses FROM earnings, accounts WHERE accounts.cname = earnings.cname
