-- two conjuncts compiled to SQL WHERE on the database backend
SELECT accounts.cname FROM accounts WHERE accounts.expenses > 1600000 AND accounts.currency <> 'JPY'
