-- computed projection over the file backend
SELECT earnings.cname, earnings.revenue / 1000000 AS mrev FROM earnings WHERE earnings.currency = 'USD'
