-- mode: mediate
-- receiver: c2
SELECT r1.cname, r1.revenue FROM r1
WHERE r1.revenue > 1000000
