-- equality filter pushed into the CSV file wrapper
SELECT earnings.cname, earnings.revenue FROM earnings WHERE earnings.currency = 'JPY'
