-- range filter evaluated server-side by the REST service
SELECT indices.iname, indices.level FROM indices WHERE indices.level >= 1005
