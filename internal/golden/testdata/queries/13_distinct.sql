-- DISTINCT over the SQL backend
SELECT DISTINCT accounts.currency FROM accounts
