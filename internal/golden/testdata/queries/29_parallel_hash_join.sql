-- parallel hash join: the bulk trades scan fans out into partitioned
-- range streams and probes companies under the repartition exchange
-- parallelism: 4
SELECT companies.cname, companies.country, trades.amount
FROM companies, trades
WHERE trades.cname = companies.cname AND trades.amount < 200
