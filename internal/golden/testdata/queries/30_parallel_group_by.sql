-- partitioned GROUP BY over the fanned-out bulk scan
-- parallelism: 4
SELECT trades.cname, COUNT(*) AS n, SUM(trades.amount) AS total
FROM trades GROUP BY trades.cname
