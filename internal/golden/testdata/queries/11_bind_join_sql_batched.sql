-- fx requires cur bound; the SQL backend takes IN-lists, so probes batch 4-wide
SELECT accounts.cname, fx.usd FROM accounts, fx WHERE fx.cur = accounts.currency
