-- GROUP BY on a string key fed by a cross-backend hash join: the group
-- keys are interned strings flowing out of the join's recycled batches
SELECT companies.country, COUNT(*) AS n, SUM(accounts.expenses) AS spend
FROM companies, accounts
WHERE companies.cname = accounts.cname
GROUP BY companies.country
