-- full scan of the in-memory relational source, order pinned
SELECT companies.cname, companies.country FROM companies ORDER BY companies.cname
