-- wide hash join: every column of both sides survives into the output,
-- exercising the join builder's arena sizing for wide concatenated rows
SELECT companies.cname, companies.country, companies.founded,
       accounts.expenses, accounts.currency, accounts.audited
FROM companies, accounts
WHERE companies.cname = accounts.cname
