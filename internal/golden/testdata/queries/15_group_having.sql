-- HAVING prunes singleton groups
SELECT sectors.sector, COUNT(*) AS n FROM sectors GROUP BY sectors.sector HAVING COUNT(*) > 1
