-- aggregate over a cross-backend join: expenses by country
SELECT companies.country, SUM(accounts.expenses) AS total
FROM companies, accounts
WHERE accounts.cname = companies.cname
GROUP BY companies.country
