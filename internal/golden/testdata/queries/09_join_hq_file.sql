-- equi-join across relational and JSON file backends
SELECT companies.cname, companies.country, sectors.sector FROM companies, sectors WHERE sectors.cname = companies.cname
