-- GROUP BY with COUNT over the JSON file backend
SELECT sectors.sector, COUNT(*) AS n FROM sectors GROUP BY sectors.sector
