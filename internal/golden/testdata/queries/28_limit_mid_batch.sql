-- LIMIT landing mid-batch (and mid-REST-page: indices pages 5 rows at a
-- time): the scan must transfer exactly 7 tuples from the source
SELECT indices.iname, indices.level FROM indices LIMIT 7
