-- ORDER BY above the order-preserving merge exchange (partitioned sort)
-- parallelism: 4
SELECT trades.cname, trades.amount FROM trades
WHERE trades.amount < 1000
ORDER BY trades.amount DESC, trades.cname LIMIT 25
