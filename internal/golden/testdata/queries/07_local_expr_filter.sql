-- arithmetic predicate the filter protocol cannot ship: engine-local
SELECT earnings.cname FROM earnings WHERE earnings.revenue > earnings.year * 1000000
