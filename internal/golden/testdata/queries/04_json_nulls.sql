-- JSON file scan carrying a NULL through to the answer
SELECT sectors.cname, sectors.employees FROM sectors
