-- mode: mediate-partial
-- receiver: c2
SELECT rl.cname, rl.revenue FROM r1 rl, r2
WHERE rl.cname = r2.cname
AND rl.revenue > r2.expenses
