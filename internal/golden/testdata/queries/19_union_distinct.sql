-- UNION dedups the same two branches
SELECT companies.cname FROM companies WHERE companies.country = 'JP'
UNION
SELECT sectors.cname FROM sectors WHERE sectors.sector = 'Telecom'
