-- all four backends in one query
SELECT companies.cname, earnings.revenue, accounts.expenses, quotes.price
FROM companies, earnings, accounts, quotes
WHERE earnings.cname = companies.cname AND accounts.cname = companies.cname AND quotes.cname = companies.cname
