package golden

// Corpus loading and execution. Each testdata/queries/*.sql file is one
// corpus entry: optional directive comments, then the SQL. Directives:
//
//	-- mode: engine | mediate | mediate-partial   (default engine)
//	-- receiver: c2                               (mediate modes)
//	-- ordered: true                              (force order-sensitive rows)
//	-- parallelism: N                             (intra-query workers; default serial)
//
// engine entries run on a fresh heterogeneous Fixture; mediate entries
// run the paper's Figure 2 system end to end (mediate-partial with its
// currency site down and PartialResults set, so the baseline pins the
// degraded answer and its dropped-branch warnings).

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/coin"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
)

// Query is one corpus entry.
type Query struct {
	Name     string // file name without .sql
	Mode     string // engine | mediate | mediate-partial
	Receiver string
	Ordered  bool
	// Parallelism is the intra-query worker bound the entry runs (and
	// plans) under; 0 keeps the historical serial pipelines, so the
	// pre-exchange baselines stay byte-identical.
	Parallelism int
	SQL         string
}

// Result is one entry's observed behavior: everything the baseline pins.
type Result struct {
	Name     string
	SQL      string
	Plan     string
	Ordered  bool
	Header   string
	Rows     []string // rendered rows; sorted when !Ordered
	Warnings []string
}

// LoadCorpus reads every *.sql under dir, sorted by name.
func LoadCorpus(dir string) ([]Query, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Query
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sql") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		q, err := parseQueryFile(strings.TrimSuffix(e.Name(), ".sql"), string(raw))
		if err != nil {
			return nil, fmt.Errorf("golden: %s: %w", e.Name(), err)
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("golden: no *.sql files under %s", dir)
	}
	return out, nil
}

// parseQueryFile splits directive comments from the SQL text.
func parseQueryFile(name, raw string) (Query, error) {
	q := Query{Name: name, Mode: "engine"}
	var sqlLines []string
	for _, line := range strings.Split(raw, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "--") {
			body := strings.TrimSpace(strings.TrimPrefix(trimmed, "--"))
			key, val, ok := strings.Cut(body, ":")
			if !ok {
				continue // plain comment
			}
			val = strings.TrimSpace(val)
			switch strings.TrimSpace(key) {
			case "mode":
				switch val {
				case "engine", "mediate", "mediate-partial":
					q.Mode = val
				default:
					return Query{}, fmt.Errorf("unknown mode %q", val)
				}
			case "receiver":
				q.Receiver = val
			case "ordered":
				b, err := strconv.ParseBool(val)
				if err != nil {
					return Query{}, fmt.Errorf("bad ordered directive %q", val)
				}
				q.Ordered = b
			case "parallelism":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return Query{}, fmt.Errorf("bad parallelism directive %q", val)
				}
				q.Parallelism = n
			}
			continue
		}
		if trimmed != "" {
			sqlLines = append(sqlLines, trimmed)
		}
	}
	q.SQL = strings.Join(sqlLines, "\n")
	if q.SQL == "" {
		return Query{}, fmt.Errorf("no SQL after directives")
	}
	if strings.HasPrefix(q.Mode, "mediate") && q.Receiver == "" {
		return Query{}, fmt.Errorf("mode %s needs a receiver directive", q.Mode)
	}
	return q, nil
}

// RunOptions hook a corpus run for the harness's self-tests.
type RunOptions struct {
	// Mutate, when non-nil, adjusts the fresh engine fixture before
	// planning (cost hooks, ablation toggles). Engine mode only.
	Mutate func(*Fixture)
}

// Run executes one corpus entry and captures its Result.
func Run(q Query) (*Result, error) { return RunWith(q, RunOptions{}) }

// RunWith is Run with self-test hooks.
func RunWith(q Query, opts RunOptions) (*Result, error) {
	switch q.Mode {
	case "engine":
		return runEngine(q, opts)
	case "mediate", "mediate-partial":
		return runMediate(q)
	default:
		return nil, fmt.Errorf("golden: %s: unknown mode %q", q.Name, q.Mode)
	}
}

// runEngine plans and executes against a fresh four-backend fixture. The
// plan is rendered before execution, so the baseline pins the cold plan
// (no adaptive feedback in it).
func runEngine(q Query, opts RunOptions) (*Result, error) {
	fx, err := NewFixture()
	if err != nil {
		return nil, fmt.Errorf("golden: %s: fixture: %w", q.Name, err)
	}
	defer fx.Close()
	if opts.Mutate != nil {
		opts.Mutate(fx)
	}
	// The parallelism directive runs the entry under that many workers and
	// baselines the annotated plan (exchange/part/merge placements); 0
	// leaves the executor serial, pinning byte-identical pre-exchange
	// plans for the historical corpus.
	fx.Ex.DefaultParallelism = q.Parallelism
	stmt, err := sqlparse.Parse(q.SQL)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: parse: %w", q.Name, err)
	}
	sels := sqlparse.Selects(stmt)
	var plan strings.Builder
	for i, sel := range sels {
		p, err := fx.Ex.Plan(sel)
		if err != nil {
			return nil, fmt.Errorf("golden: %s: planning branch %d: %w", q.Name, i+1, err)
		}
		fx.Ex.ParallelizePlan(p, nil)
		if len(sels) > 1 {
			fmt.Fprintf(&plan, "branch %d:\n", i+1)
		}
		plan.WriteString(p.Explain())
	}
	rel, err := fx.Ex.Execute(stmt)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: executing: %w", q.Name, err)
	}
	ordered := q.Ordered || (len(sels) == 1 && len(sels[0].OrderBy) > 0)
	res := &Result{Name: q.Name, SQL: q.SQL, Plan: plan.String(), Ordered: ordered}
	res.fillRows(rel)
	return res, nil
}

// runMediate runs the paper's Figure 2 system: plans from System.Explain,
// rows from the mediated execution. mediate-partial takes the currency
// site down and pins the degraded answer plus its warnings.
func runMediate(q Query) (*Result, error) {
	partial := q.Mode == "mediate-partial"
	sys := coin.Figure2System()
	if partial {
		sys = coin.Figure2SystemWith(downFetcher{})
	}
	sys.Executor().DefaultParallelism = q.Parallelism
	plan, err := sys.Explain(q.SQL, q.Receiver)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: explain: %w", q.Name, err)
	}
	med, err := sys.Mediate(q.SQL, q.Receiver)
	if err != nil {
		return nil, fmt.Errorf("golden: %s: mediate: %w", q.Name, err)
	}
	//lint:allow ctxflow golden harness runs outside any session; corpus queries are short and local
	rel, warns, err := sys.ExecuteWarnCtx(context.Background(), med,
		coin.QueryOptions{PartialResults: partial, MaxParallelism: q.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("golden: %s: executing: %w", q.Name, err)
	}
	res := &Result{Name: q.Name, SQL: q.SQL, Plan: plan, Ordered: q.Ordered}
	res.fillRows(rel)
	for _, w := range warns {
		// The failure message is weather-dependent wording; the baseline
		// pins the structural fact: which branch lost which source.
		res.Warnings = append(res.Warnings, fmt.Sprintf("branch %d: source %s dropped", w.Branch, w.Source))
	}
	sort.Strings(res.Warnings)
	return res, nil
}

// fillRows renders the relation into the Result's header and row lines.
func (r *Result) fillRows(rel *relalg.Relation) {
	cols := make([]string, len(rel.Schema.Columns))
	for i, c := range rel.Schema.Columns {
		cols[i] = c.Name + ":" + kindTag(c.Type)
	}
	r.Header = strings.Join(cols, " | ")
	for _, tup := range rel.Tuples {
		vals := make([]string, len(tup))
		for i, v := range tup {
			vals[i] = renderValue(v)
		}
		r.Rows = append(r.Rows, strings.Join(vals, " | "))
	}
	if !r.Ordered {
		sort.Strings(r.Rows)
	}
}

// renderValue renders one datum as a SQL-ish literal.
func renderValue(v relalg.Value) string {
	switch v.K {
	case relalg.KindNull:
		return "NULL"
	case relalg.KindNumber:
		return strconv.FormatFloat(v.N, 'f', -1, 64)
	case relalg.KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
}

// kindTag renders a column kind with the same tags source schemas use.
func kindTag(k relalg.Kind) string {
	switch k {
	case relalg.KindNumber:
		return "num"
	case relalg.KindBool:
		return "bool"
	case relalg.KindNull:
		return "null"
	default:
		return "str"
	}
}
