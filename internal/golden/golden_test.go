package golden

// The regression suite itself, plus the harness's self-tests: a harness
// that cannot catch a deliberately seeded regression is worse than none,
// so TestHarnessCatches* seed real plan and result changes (a cost
// constant flipped through the executor's PerQueryCostHook, a pushdown
// ablation, a tampered row) and assert the semantic diff reports them —
// while TestHarnessIgnoresRepricing proves a plan-preserving cost change
// stays invisible, which is the entire point of masking volatile digits.

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"repro/internal/planner"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/filesrc"
)

var update = flag.Bool("update", false, "rewrite testdata/golden baselines from current behavior")

const (
	queriesDir = "testdata/queries"
	goldenDir  = "testdata/golden"
)

// TestGoldenCorpus runs every corpus entry against its baseline. With
// -update it regenerates the baselines instead (make golden-update).
func TestGoldenCorpus(t *testing.T) {
	corpus, err := LoadCorpus(queriesDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 20 {
		t.Fatalf("corpus has %d queries, want at least 20", len(corpus))
	}
	for _, q := range corpus {
		t.Run(q.Name, func(t *testing.T) {
			res, err := Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				if err := WriteBaseline(goldenDir, res); err != nil {
					t.Fatal(err)
				}
				return
			}
			base, err := ReadBaseline(goldenDir, q.Name)
			if err != nil {
				t.Fatalf("%v (run `make golden-update` to create baselines)", err)
			}
			for _, d := range Compare(base, res) {
				t.Error(d)
			}
		})
	}
}

// TestRegenerationDeterministic renders the whole corpus twice from
// scratch and byte-compares: `make golden-update` run twice must be a
// no-op.
func TestRegenerationDeterministic(t *testing.T) {
	corpus, err := LoadCorpus(queriesDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range corpus {
		first, err := Run(q)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if Render(first) != Render(second) {
			t.Errorf("%s: two fresh runs render differently:\n--- first\n%s\n--- second\n%s",
				q.Name, Render(first), Render(second))
		}
	}
}

// TestBaselineRoundTrip pins the file format: parse(render(x)) == x.
func TestBaselineRoundTrip(t *testing.T) {
	res := &Result{
		Name:     "rt",
		SQL:      "SELECT a.x FROM a\nWHERE a.y = 1",
		Plan:     "step 1: a @ src est_rows=3 est_queries=1 est_cost=10\ntotal est_cost=10\n",
		Ordered:  true,
		Header:   "x:num",
		Rows:     []string{"1", "2"},
		Warnings: []string{"branch 1: source s dropped"},
	}
	back, err := ParseBaseline("rt", Render(res))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(back, res); len(diffs) != 0 {
		t.Fatalf("round trip lost information: %v", diffs)
	}
	if back.SQL != res.SQL || back.Ordered != res.Ordered {
		t.Fatalf("round trip = %+v", back)
	}
}

// flipFixture builds the join-order scenario the cost-hook self-test
// flips: a file-backed feeder (no statistics, so probe counts are not
// clamped by distinct counts) and two binding-required relations on
// separate sources with different per-probe expansions. With uniform
// per-query prices the optimizer probes the narrow relation (tb, ~2 rows
// per probe) before the wide one (ta, ~4 rows per probe); pricing ta's
// source 10x dearer makes late placement fatal — its probe count would
// grow with the expanded intermediate result — so the DP flips the order.
func flipFixture(t *testing.T) *planner.Executor {
	t.Helper()
	cat := planner.NewCatalog()
	feeder, err := filesrc.New("archive", "testdata/files")
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddSource(feeder); err != nil {
		t.Fatal(err)
	}
	names := []string{"IBM", "NTT", "SONY", "DT", "BT", "ACME"}
	adb := store.NewDB("srcA")
	ta := adb.MustCreateTable("ta", relalg.NewSchema(strCol("cname"), numCol("x")))
	for i := 0; i < 40; i++ {
		ta.MustInsert(relalg.StrV(names[i%len(names)]), relalg.NumV(float64(i)))
	}
	wa := wrapper.NewRelational(adb)
	wa.Require = map[string][]string{"ta": {"cname"}}
	if err := cat.AddSource(wa); err != nil {
		t.Fatal(err)
	}
	bdb := store.NewDB("srcB")
	tb := bdb.MustCreateTable("tb", relalg.NewSchema(strCol("cname"), numCol("y")))
	for i := 0; i < 20; i++ {
		tb.MustInsert(relalg.StrV(names[i%len(names)]), relalg.NumV(float64(i)))
	}
	wb := wrapper.NewRelational(bdb)
	wb.Require = map[string][]string{"tb": {"cname"}}
	if err := cat.AddSource(wb); err != nil {
		t.Fatal(err)
	}
	ex := planner.NewExecutor(cat)
	// Per-probe accesses, so the probe count shows up in the per-query
	// cost term the hook rescales.
	ex.DisableBatching = true
	return ex
}

const flipQ = "SELECT earnings.cname, ta.x, tb.y FROM earnings, ta, tb WHERE ta.cname = earnings.cname AND tb.cname = earnings.cname"

func planText(t *testing.T, ex *planner.Executor, sql string) string {
	t.Helper()
	p, err := ex.Plan(sqlparse.MustParse(sql).(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	return p.Explain()
}

// TestHarnessCatchesCostFlip is the required self-test: flipping a cost
// constant through the executor's PerQueryCostHook seeds a deliberate
// plan change (the bind-join order flips), and the semantic plan diff
// must fail with a readable step-level message.
func TestHarnessCatchesCostFlip(t *testing.T) {
	base := planText(t, flipFixture(t), flipQ)

	hooked := flipFixture(t)
	hooked.PerQueryCostHook = func(source string, perQuery float64) float64 {
		if source == "srcA" {
			return perQuery * 10
		}
		return perQuery
	}
	got := planText(t, hooked, flipQ)

	// The seeded change is real: the access order actually flipped.
	if idx := strings.Index(base, "tb @ srcB"); idx < 0 || idx > strings.Index(base, "ta @ srcA") {
		t.Fatalf("baseline should probe tb before ta:\n%s", base)
	}
	if idx := strings.Index(got, "ta @ srcA"); idx < 0 || idx > strings.Index(got, "tb @ srcB") {
		t.Fatalf("hooked plan should probe ta before tb:\n%s", got)
	}

	diffs := Compare(
		&Baseline{Plan: base, Header: "h"},
		&Result{Plan: got, Header: "h"},
	)
	if len(diffs) == 0 {
		t.Fatal("semantic diff missed a flipped join order")
	}
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "plan line") || !strings.Contains(joined, "ta @ srcA") {
		t.Fatalf("diff should name the moved step:\n%s", joined)
	}
}

// TestHarnessIgnoresRepricing: a uniform cost scaling keeps every
// ordering decision, so only the volatile digits change — the semantic
// diff must stay quiet. This is the counterweight to the flip test: the
// harness fails on structure, not on pricing.
func TestHarnessIgnoresRepricing(t *testing.T) {
	q := Query{Name: "reprice", Mode: "engine", SQL: "SELECT accounts.cname, fx.usd FROM accounts, fx WHERE fx.cur = accounts.currency"}
	base, err := Run(q)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := RunWith(q, RunOptions{Mutate: func(fx *Fixture) {
		fx.Ex.PerQueryCostHook = func(_ string, perQuery float64) float64 { return perQuery * 1.5 }
	}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Plan == scaled.Plan {
		t.Fatal("scaling should have changed the printed cost digits")
	}
	if diffs := Compare(base, scaled); len(diffs) != 0 {
		t.Fatalf("uniform repricing must not fail the semantic diff:\n%s", strings.Join(diffs, "\n"))
	}
}

// TestHarnessCatchesPushdownLoss: the DisablePushdown ablation moves a
// filter from push[] to local[], and the plan diff reports it.
func TestHarnessCatchesPushdownLoss(t *testing.T) {
	q := Query{Name: "push", Mode: "engine", SQL: "SELECT earnings.cname FROM earnings WHERE earnings.currency = 'JPY'"}
	base, err := Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(base.Plan, "push[currency = JPY]") {
		t.Fatalf("baseline should push the filter:\n%s", base.Plan)
	}
	ablated, err := RunWith(q, RunOptions{Mutate: func(fx *Fixture) {
		fx.Ex.DisablePushdown = true
	}})
	if err != nil {
		t.Fatal(err)
	}
	diffs := Compare(base, ablated)
	if len(diffs) == 0 {
		t.Fatal("semantic diff missed a lost pushdown")
	}
	if joined := strings.Join(diffs, "\n"); !strings.Contains(joined, "push[") {
		t.Fatalf("diff should show the pushed filter disappearing:\n%s", joined)
	}
}

// TestHarnessCatchesResultChange: a tampered row fails the result diff
// with missing/new row messages.
func TestHarnessCatchesResultChange(t *testing.T) {
	q := Query{Name: "rows", Mode: "engine", SQL: "SELECT companies.cname, companies.country FROM companies"}
	base, err := Run(q)
	if err != nil {
		t.Fatal(err)
	}
	tampered, err := Run(q)
	if err != nil {
		t.Fatal(err)
	}
	tampered.Rows[0] = "'EVIL' | 'XX'"
	diffs := Compare(base, tampered)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v, want one missing and one new row", diffs)
	}
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "missing from current") || !strings.Contains(joined, "new in current") {
		t.Fatalf("row diff unreadable:\n%s", joined)
	}
}

// TestPartialResultsFaultScripting exercises the REST backend's fault
// scripting through the harness fixture: with the markets service down
// hard, a query against it degrades... no — engine mode has no branch
// degradation; the query fails with a classified fault. The harness
// surfaces that as a run error rather than a baseline diff, which is the
// correct loud failure for a dead backend.
func TestPartialResultsFaultScripting(t *testing.T) {
	q := Query{Name: "down", Mode: "engine", SQL: "SELECT indices.iname FROM indices"}
	_, err := RunWith(q, RunOptions{Mutate: func(fx *Fixture) {
		fx.Rest.FailNext(100, 503, "")
	}})
	if err == nil {
		t.Fatal("query against a scripted-dead REST backend should fail")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error should carry the HTTP failure: %v", err)
	}
}

// TestCorpusCoversAllBackends guards the corpus's reason to exist: the
// golden plans must keep exercising every backend kind.
func TestCorpusCoversAllBackends(t *testing.T) {
	if *update {
		t.Skip("baselines being rewritten")
	}
	corpus, err := LoadCorpus(queriesDir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	modes := map[string]bool{}
	for _, q := range corpus {
		modes[q.Mode] = true
		base, err := ReadBaseline(goldenDir, q.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []string{"hq", "archive", "finance", "markets"} {
			if strings.Contains(base.Plan, "@ "+src) {
				seen[src] = true
			}
		}
	}
	for _, src := range []string{"hq", "archive", "finance", "markets"} {
		if !seen[src] {
			t.Errorf("no golden plan touches backend %s", src)
		}
	}
	for _, m := range []string{"engine", "mediate", "mediate-partial"} {
		if !modes[m] {
			t.Errorf("no corpus entry runs mode %s", m)
		}
	}
}

// TestBatchWidthPinned: the batched bind join against the SQL backend
// must show its planned IN-list width in the baseline — a silent change
// of batch width is a plan regression.
func TestBatchWidthPinned(t *testing.T) {
	if *update {
		t.Skip("baselines being rewritten")
	}
	base, err := ReadBaseline(goldenDir, "11_bind_join_sql_batched")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(base.Plan, "batch[4]") {
		t.Fatalf("baseline plan should pin the 4-wide IN-list batching:\n%s", base.Plan)
	}
	if !strings.Contains(base.Plan, "bind[cur<=accounts.currency]") {
		t.Fatalf("baseline plan should pin the bind join:\n%s", base.Plan)
	}
}

var _ = fmt.Sprintf // keep fmt imported for debug edits
