package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Constraint predicates. During abductive mediation, comparisons over data
// values that are unknown at mediation time are not evaluated; they are
// recorded in a constraint store and later rendered into the WHERE clauses
// of the mediated SQL.
const (
	PredEq  = "eq"  // =
	PredNeq = "neq" // \=  (SQL <>)
	PredLt  = "lt"  // <
	PredLe  = "le"  // =<
	PredGt  = "gt"  // >
	PredGe  = "ge"  // >=
)

// IsConstraintPred reports whether name/2 is a constraint predicate.
func IsConstraintPred(name string) bool {
	switch name {
	case PredEq, PredNeq, PredLt, PredLe, PredGt, PredGe:
		return true
	}
	return false
}

// negatePred returns the complementary comparison.
func negatePred(name string) string {
	switch name {
	case PredEq:
		return PredNeq
	case PredNeq:
		return PredEq
	case PredLt:
		return PredGe
	case PredGe:
		return PredLt
	case PredGt:
		return PredLe
	case PredLe:
		return PredGt
	}
	return ""
}

// ConstraintSet is an ordered store of binary constraint atoms. The solver
// checkpoints it at choice points with Mark and rolls back with Undo, the
// same discipline as the Subst trail: constraints are only ever appended,
// so a checkpoint is just the store length.
type ConstraintSet struct {
	cs []Compound
}

// NewConstraintSet returns an empty set.
func NewConstraintSet() *ConstraintSet { return &ConstraintSet{} }

// Clone returns an independent copy. The solver itself backtracks with
// Mark/Undo; Clone remains for callers that need a snapshot outliving the
// search.
func (c *ConstraintSet) Clone() *ConstraintSet {
	return &ConstraintSet{cs: append([]Compound(nil), c.cs...)}
}

// Mark returns a checkpoint of the current store height for Undo.
func (c *ConstraintSet) Mark() int { return len(c.cs) }

// Undo rolls the store back to a checkpoint previously returned by Mark,
// discarding every constraint added since.
func (c *ConstraintSet) Undo(mark int) {
	tail := c.cs[mark:]
	for i := range tail {
		tail[i] = Compound{} // drop term references eagerly
	}
	c.cs = c.cs[:mark]
}

// Len returns the number of stored constraints.
func (c *ConstraintSet) Len() int { return len(c.cs) }

// All returns the stored constraints (shared slice; treat as read-only).
func (c *ConstraintSet) All() []Compound { return c.cs }

// Add records a constraint after resolving it under s. Ground constraints
// are decided immediately: a true one is dropped, a false one makes Add
// return false (the branch is inconsistent). Non-ground constraints are
// stored after a quick contradiction check against the existing store.
func (c *ConstraintSet) Add(pred string, a, b Term, s *Subst) bool {
	a, b = s.Resolve(a), s.Resolve(b)
	switch decideGround(pred, a, b) {
	case decTrue:
		return true
	case decFalse:
		return false
	}
	nc := Comp(pred, a, b)
	for _, old := range c.cs {
		if Equal(old, nc) {
			return true // duplicate
		}
	}
	if contradictsStore(nc, c.cs) {
		return false
	}
	c.cs = append(c.cs, nc)
	return true
}

type decision int

const (
	decUnknown decision = iota
	decTrue
	decFalse
)

// decideGround decides pred(a,b) when both sides are ground (after
// arithmetic folding); returns decUnknown otherwise.
func decideGround(pred string, a, b Term) decision {
	// Only attempt numeric evaluation on terms that can possibly be
	// numeric: Eval on an Atom or Str builds a descriptive error, and this
	// runs once per comparison goal on the solver's hot path.
	if maybeNumeric(a) && maybeNumeric(b) {
		av, aerr := Eval(a, nil)
		bv, berr := Eval(b, nil)
		if aerr == nil && berr == nil {
			return boolDec(compareFloats(pred, av, bv))
		}
	}
	// Non-numeric ground comparison: only (in)equality is decidable.
	if IsGround(a) && IsGround(b) {
		switch pred {
		case PredEq:
			return boolDec(Equal(a, b))
		case PredNeq:
			return boolDec(!Equal(a, b))
		default:
			// Ordered comparison between ground non-numeric terms: use
			// string order for Str/Atom pairs (SQL semantics), undecided
			// otherwise.
			as, aok := groundString(a)
			bs, bok := groundString(b)
			if aok && bok {
				return boolDec(compareStrings(pred, as, bs))
			}
		}
	}
	return decUnknown
}

func groundString(t Term) (string, bool) {
	switch t := t.(type) {
	case Str:
		return string(t), true
	case Atom:
		return string(t), true
	}
	return "", false
}

func boolDec(b bool) decision {
	if b {
		return decTrue
	}
	return decFalse
}

func compareFloats(pred string, a, b float64) bool {
	switch pred {
	case PredEq:
		return a == b
	case PredNeq:
		return a != b
	case PredLt:
		return a < b
	case PredLe:
		return a <= b
	case PredGt:
		return a > b
	case PredGe:
		return a >= b
	}
	return false
}

func compareStrings(pred string, a, b string) bool {
	switch pred {
	case PredEq:
		return a == b
	case PredNeq:
		return a != b
	case PredLt:
		return a < b
	case PredLe:
		return a <= b
	case PredGt:
		return a > b
	case PredGe:
		return a >= b
	}
	return false
}

// contradictsStore detects direct contradictions between nc and the stored
// constraints: a constraint and its exact complement over the same
// arguments, or eq against a distinct ground value when an eq to another
// ground value exists.
func contradictsStore(nc Compound, store []Compound) bool {
	neg := negatePred(nc.Functor)
	for _, old := range store {
		if old.Functor == neg && Equal(old.Args[0], nc.Args[0]) && Equal(old.Args[1], nc.Args[1]) {
			return true
		}
		// eq(X, c1) with eq(X, c2), c1 != c2 ground.
		if nc.Functor == PredEq && old.Functor == PredEq &&
			Equal(old.Args[0], nc.Args[0]) &&
			IsGround(old.Args[1]) && IsGround(nc.Args[1]) &&
			!Equal(old.Args[1], nc.Args[1]) {
			return true
		}
	}
	return false
}

// Normalize re-resolves every stored constraint under s, re-decides the
// ground ones, deduplicates, and checks consistency. It returns the
// residual constraints in deterministic order, or ok=false if the set is
// inconsistent. The solver calls it whenever a solution is emitted, so a
// branch whose constraints became ground-false after later bindings is
// pruned even though Add accepted it earlier.
//
// keepEntailed retains ground-true (entailed) constraints in the residue
// instead of dropping them; the mediator's simplification ablation uses it
// to measure how much constraint simplification shrinks mediated queries.
func (c *ConstraintSet) Normalize(s *Subst, keepEntailed bool) (residual []Compound, ok bool) {
	if len(c.cs) == 0 {
		return nil, true
	}
	fresh := NewConstraintSet()
	var kept []Compound
	for _, con := range c.cs {
		a := SimplifyExpr(con.Args[0], s)
		b := SimplifyExpr(con.Args[1], s)
		if keepEntailed && decideGround(con.Functor, a, b) == decTrue {
			kept = append(kept, Comp(con.Functor, a, b))
			continue
		}
		if !fresh.Add(con.Functor, a, b, s) {
			return nil, false
		}
	}
	out := append(append([]Compound(nil), fresh.cs...), kept...)
	if len(out) < 2 {
		return out, true
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Functor != out[j].Functor {
			return out[i].Functor < out[j].Functor
		}
		return Compare(Compound(out[i]), Compound(out[j])) < 0
	})
	return out, true
}

// String renders the store for diagnostics.
func (c *ConstraintSet) String() string {
	parts := make([]string, len(c.cs))
	for i, con := range c.cs {
		parts[i] = con.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FormatConstraint renders a constraint atom with an infix operator, e.g.
// "X <> 'JPY'". The SQL emitter uses its own renderer; this one is for
// logs and tests.
func FormatConstraint(c Compound) string {
	op := map[string]string{
		PredEq: "=", PredNeq: "<>", PredLt: "<",
		PredLe: "<=", PredGt: ">", PredGe: ">=",
	}[c.Functor]
	if op == "" || len(c.Args) != 2 {
		return c.String()
	}
	return fmt.Sprintf("%s %s %s", c.Args[0], op, c.Args[1])
}
