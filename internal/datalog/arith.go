package datalog

import (
	"errors"
	"fmt"
	"math"
)

// Arithmetic expression functors understood by Eval and by the `is`
// builtin. The SQL layer renders these back into infix operators.
const (
	FuncAdd = "add"
	FuncSub = "sub"
	FuncMul = "mul"
	FuncDiv = "div"
	FuncNeg = "neg"
)

// ErrNotGround is returned by Eval when the expression still contains
// variables; the abductive solver then keeps the expression symbolic.
var ErrNotGround = errors.New("datalog: expression is not ground")

// isArithFunctor reports whether functor/arity is one of the arithmetic
// forms Eval understands.
func isArithFunctor(functor string, arity int) bool {
	switch functor {
	case FuncAdd, FuncSub, FuncMul, FuncDiv:
		return arity == 2
	case FuncNeg:
		return arity == 1
	}
	return false
}

// maybeNumeric reports whether Eval could possibly succeed on t: a Number,
// or an arithmetic compound. Callers on hot paths use it to skip Eval's
// allocating error construction for symbolic constants.
func maybeNumeric(t Term) bool {
	switch t := t.(type) {
	case Number:
		return true
	case Compound:
		return isArithFunctor(t.Functor, len(t.Args))
	}
	return false
}

// Eval evaluates an arithmetic expression term under s. It returns
// ErrNotGround if any leaf is an unbound variable, and a descriptive error
// for non-numeric leaves or unknown functors. A nil s is a valid empty
// substitution (ground evaluation).
func Eval(t Term, s *Subst) (float64, error) {
	t = s.Walk(t)
	switch t := t.(type) {
	case Number:
		return float64(t), nil
	case Variable:
		return 0, ErrNotGround
	case Compound:
		switch t.Functor {
		case FuncNeg:
			if len(t.Args) != 1 {
				return 0, fmt.Errorf("datalog: neg/%d is not arithmetic", len(t.Args))
			}
			v, err := Eval(t.Args[0], s)
			if err != nil {
				return 0, err
			}
			return -v, nil
		case FuncAdd, FuncSub, FuncMul, FuncDiv:
			if len(t.Args) != 2 {
				return 0, fmt.Errorf("datalog: %s/%d is not arithmetic", t.Functor, len(t.Args))
			}
			a, err := Eval(t.Args[0], s)
			if err != nil {
				return 0, err
			}
			b, err := Eval(t.Args[1], s)
			if err != nil {
				return 0, err
			}
			switch t.Functor {
			case FuncAdd:
				return a + b, nil
			case FuncSub:
				return a - b, nil
			case FuncMul:
				return a * b, nil
			default:
				if b == 0 {
					return 0, fmt.Errorf("datalog: division by zero")
				}
				return a / b, nil
			}
		default:
			return 0, fmt.Errorf("datalog: %s/%d is not arithmetic", t.Functor, len(t.Args))
		}
	default:
		return 0, fmt.Errorf("datalog: %s is not numeric", t.String())
	}
}

// SimplifyExpr folds constant sub-expressions of an arithmetic term and
// applies identity rewrites (x*1 → x, x/1 → x, x+0 → x, x-0 → x). It keeps
// symbolic leaves. Mediated SQL stays readable because of this pass: the
// paper prints `rl.revenue * 1000 * r3.rate`, not `rl.revenue * 1000 / 1 *
// r3.rate`.
func SimplifyExpr(t Term, s *Subst) Term {
	t = s.Walk(t)
	c, ok := t.(Compound)
	if !ok {
		return t
	}
	args := make([]Term, len(c.Args))
	for i, a := range c.Args {
		args[i] = SimplifyExpr(a, s)
	}
	out := Compound{Functor: c.Functor, Args: args}
	if isArithFunctor(out.Functor, len(args)) {
		if v, err := Eval(out, nil); err == nil {
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				return Number(v)
			}
		}
	}
	if len(args) == 2 {
		a, b := args[0], args[1]
		switch c.Functor {
		case FuncMul:
			if Equal(a, Number(1)) {
				return b
			}
			if Equal(b, Number(1)) {
				return a
			}
			if Equal(a, Number(0)) || Equal(b, Number(0)) {
				return Number(0)
			}
		case FuncDiv:
			if Equal(b, Number(1)) {
				return a
			}
		case FuncAdd:
			if Equal(a, Number(0)) {
				return b
			}
			if Equal(b, Number(0)) {
				return a
			}
		case FuncSub:
			if Equal(b, Number(0)) {
				return a
			}
		}
	}
	return out
}
