package datalog

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestSolverMatchesBruteForceProperty: on random ground fact bases with a
// two-way join rule, the solver's answers equal a direct nested-loop
// computation in Go.
func TestSolverMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := NewProgram()
		type pair struct{ a, b int }
		var ps, qs []pair
		for i := 0; i < r.Intn(15); i++ {
			p := pair{r.Intn(5), r.Intn(5)}
			ps = append(ps, p)
			prog.Add(Fact("p", Number(p.a), Number(p.b)))
		}
		for i := 0; i < r.Intn(15); i++ {
			q := pair{r.Intn(5), r.Intn(5)}
			qs = append(qs, q)
			prog.Add(Fact("q", Number(q.a), Number(q.b)))
		}
		prog.Add(MustParseProgram("j(X, Z) :- p(X, Y), q(Y, Z), X < Z.").Clauses("j", 2)...)

		// Brute force.
		want := map[string]int{}
		for _, p := range ps {
			for _, q := range qs {
				if p.b == q.a && p.a < q.b {
					want[fmt.Sprintf("%d,%d", p.a, q.b)]++
				}
			}
		}

		sv := &Solver{Program: prog}
		sols, err := sv.Solve(MustParseTerm("j(X, Z)"))
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, s := range sols {
			got[fmt.Sprintf("%s,%s", s.Bindings["X"], s.Bindings["Z"])]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, n := range want {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAbductionCoversAllCasesProperty: for a chain of k disjoint 2-way
// conditionals over independent flag columns, abduction enumerates
// exactly 2^k consistent cases, each with a distinct constraint/binding
// signature.
func TestAbductionCoversAllCasesProperty(t *testing.T) {
	for k := 1; k <= 4; k++ {
		src := ""
		head := "q("
		body := fmt.Sprintf("r(%s)", flagVars(k))
		for i := 0; i < k; i++ {
			src += fmt.Sprintf("m%d(F, 10) :- F = 'K'.\nm%d(F, 1) :- F \\= 'K'.\n", i, i)
			if i > 0 {
				head += ", "
			}
			head += fmt.Sprintf("V%d", i)
			body += fmt.Sprintf(", m%d(F%d, V%d)", i, i, i)
		}
		head += ")"
		src += head + " :- " + body + ".\n"
		prog := MustParseProgram(src)
		sv := &Solver{
			Program:            prog,
			CollectConstraints: true,
			Abducible:          func(name string, arity int) bool { return name == "r" },
		}
		sols, err := sv.Solve(MustParseTerm(head))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(sols) != 1<<k {
			t.Fatalf("k=%d: cases = %d, want %d", k, len(sols), 1<<k)
		}
		// Signatures (abduced flags + residual constraints) are distinct.
		seen := map[string]bool{}
		for _, s := range sols {
			var sig []string
			for _, a := range s.Abduced {
				sig = append(sig, a.String())
			}
			for _, c := range s.Constraints {
				sig = append(sig, c.String())
			}
			sort.Strings(sig)
			key := fmt.Sprint(sig)
			if seen[key] {
				t.Errorf("k=%d: duplicate case signature %s", k, key)
			}
			seen[key] = true
		}
	}
}

func flagVars(k int) string {
	out := ""
	for i := 0; i < k; i++ {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("F%d", i)
	}
	return out
}

// TestSolutionSatisfiesGoalProperty: substituting a solution's bindings
// back into the goal and re-proving it (without abduction) succeeds, for
// ground-evaluable programs.
func TestSolutionSatisfiesGoalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := NewProgram()
		for i := 0; i < 2+r.Intn(10); i++ {
			prog.Add(Fact("v", Number(r.Intn(6)), Number(r.Intn(6))))
		}
		prog.Add(MustParseProgram("ok(X, Y) :- v(X, Y), X >= Y.").Clauses("ok", 2)...)
		sv := &Solver{Program: prog}
		sols, err := sv.Solve(MustParseTerm("ok(A, B)"))
		if err != nil {
			return false
		}
		for _, s := range sols {
			goal := Comp("ok", s.Bindings["A"], s.Bindings["B"])
			check := &Solver{Program: prog, MaxSolutions: 1}
			res, err := check.Solve(goal)
			if err != nil || len(res) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
