package datalog

import (
	"fmt"
	"testing"
)

func BenchmarkUnify(b *testing.B) {
	l := MustParseTerm("f(X, g(Y, h(Z, a)), 3, \"s\")")
	r := MustParseTerm("f(b, g(c, h(d, a)), 3, \"s\")")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSubst()
		if !Unify(l, r, s) {
			b.Fatal("unify failed")
		}
	}
}

func BenchmarkSolveJoin(b *testing.B) {
	prog := NewProgram()
	for i := 0; i < 100; i++ {
		prog.Add(Fact("p", Number(i), Number(i+1)))
		prog.Add(Fact("q", Number(i+1), Number(i+2)))
	}
	prog.Add(MustParseProgram("j(X, Z) :- p(X, Y), q(Y, Z).").Clauses("j", 2)...)
	goal := MustParseTerm("j(X, Z)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := &Solver{Program: prog}
		sols, err := sv.Solve(goal)
		if err != nil || len(sols) != 100 {
			b.Fatalf("sols=%d err=%v", len(sols), err)
		}
	}
}

func BenchmarkAbductiveCaseSplit(b *testing.B) {
	// The shape of mediation: m independent 2-way splits.
	for _, m := range []int{1, 2, 4} {
		src := ""
		goal := "q("
		for i := 0; i < m; i++ {
			src += fmt.Sprintf("c%d(F, 1000) :- F = 'K'.\nc%d(F, 1) :- F \\= 'K'.\n", i, i)
			if i > 0 {
				goal += ", "
			}
			goal += fmt.Sprintf("V%d", i)
		}
		goal += ")"
		head := goal
		body := "r(F)"
		for i := 0; i < m; i++ {
			body += fmt.Sprintf(", c%d(F, V%d)", i, i)
		}
		src += head + " :- " + body + ".\n"
		prog := MustParseProgram(src)
		goalTerm := MustParseTerm(goal)
		b.Run(fmt.Sprintf("splits=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sv := &Solver{Program: prog, CollectConstraints: true,
					Abducible: func(name string, arity int) bool { return name == "r" }}
				sols, err := sv.Solve(goalTerm)
				if err != nil {
					b.Fatal(err)
				}
				// Splits share the flag F, so only 2 consistent worlds
				// exist regardless of m (all-K or none-K).
				if len(sols) != 2 {
					b.Fatalf("sols = %d", len(sols))
				}
			}
		})
	}
}

func BenchmarkParseProgram(b *testing.B) {
	src := `
		sf(Cur, 1000) :- Cur = 'JPY'.
		sf(Cur, 1) :- Cur \= 'JPY'.
		cvt(V, F, F, V).
		cvt(V, F1, F2, V2) :- F1 \= F2, V2 is V * F1 / F2.
		q(N, V2) :- r1(N, V, Cur), sf(Cur, F), cvt(V, F, 1, V2).
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseProgram(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplifyExpr(b *testing.B) {
	t := MustParseTerm("mul(div(mul(X, 1000), 1), mul(R, 1))")
	s := NewSubst()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimplifyExpr(t, s)
	}
}
