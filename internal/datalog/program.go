package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Clause is a definite clause Head :- Body. A fact has an empty body.
type Clause struct {
	Head Compound
	Body []Term
}

// String renders the clause in concrete syntax.
func (c Clause) String() string {
	if len(c.Body) == 0 {
		return c.Head.String() + "."
	}
	parts := make([]string, len(c.Body))
	for i, b := range c.Body {
		parts[i] = b.String()
	}
	return c.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Fact builds a bodyless clause.
func Fact(functor string, args ...Term) Clause {
	return Clause{Head: Comp(functor, args...)}
}

// Rule builds a clause with the given head and body.
func Rule(head Compound, body ...Term) Clause {
	return Clause{Head: head, Body: body}
}

// predKey identifies a predicate by name and arity.
type predKey struct {
	name  string
	arity int
}

func (k predKey) String() string { return fmt.Sprintf("%s/%d", k.name, k.arity) }

// Program is an ordered clause store indexed by predicate name/arity.
// Clause order within a predicate is source order (Prolog-style), which
// gives deterministic case enumeration during mediation.
type Program struct {
	clauses map[predKey][]Clause
	order   []predKey // registration order, for deterministic dumps
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{clauses: map[predKey][]Clause{}}
}

// Add appends clauses to the program.
func (p *Program) Add(cs ...Clause) {
	for _, c := range cs {
		k := predKey{c.Head.Functor, len(c.Head.Args)}
		if _, ok := p.clauses[k]; !ok {
			p.order = append(p.order, k)
		}
		p.clauses[k] = append(p.clauses[k], c)
	}
}

// AddProgram appends every clause of q to p.
func (p *Program) AddProgram(q *Program) {
	for _, k := range q.order {
		p.Add(q.clauses[k]...)
	}
}

// Clauses returns the clauses for the given predicate, in source order.
func (p *Program) Clauses(name string, arity int) []Clause {
	return p.clauses[predKey{name, arity}]
}

// Defined reports whether the program has at least one clause for the
// predicate.
func (p *Program) Defined(name string, arity int) bool {
	return len(p.clauses[predKey{name, arity}]) > 0
}

// Len returns the total number of clauses.
func (p *Program) Len() int {
	n := 0
	for _, cs := range p.clauses {
		n += len(cs)
	}
	return n
}

// Predicates lists the defined predicates as "name/arity", sorted.
func (p *Program) Predicates() []string {
	out := make([]string, 0, len(p.clauses))
	for k := range p.clauses {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

// String dumps the program in registration order.
func (p *Program) String() string {
	var b strings.Builder
	for _, k := range p.order {
		for _, c := range p.clauses[k] {
			b.WriteString(c.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Clone returns a deep-enough copy: clause slices are copied, terms are
// shared (terms are immutable by convention).
func (p *Program) Clone() *Program {
	q := NewProgram()
	q.order = append([]predKey(nil), p.order...)
	for k, cs := range p.clauses {
		q.clauses[k] = append([]Clause(nil), cs...)
	}
	return q
}
