package datalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Clause is a definite clause Head :- Body. A fact has an empty body.
type Clause struct {
	Head Compound
	Body []Term
}

// String renders the clause in concrete syntax.
func (c Clause) String() string {
	if len(c.Body) == 0 {
		return c.Head.String() + "."
	}
	parts := make([]string, len(c.Body))
	for i, b := range c.Body {
		parts[i] = b.String()
	}
	return c.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Fact builds a bodyless clause.
func Fact(functor string, args ...Term) Clause {
	return Clause{Head: Comp(functor, args...)}
}

// Rule builds a clause with the given head and body.
func Rule(head Compound, body ...Term) Clause {
	return Clause{Head: head, Body: body}
}

// predKey identifies a predicate by name and arity.
type predKey struct {
	name  string
	arity int
}

func (k predKey) String() string { return fmt.Sprintf("%s/%d", k.name, k.arity) }

// Program is an ordered clause store indexed by predicate name/arity.
// Clause order within a predicate is source order (Prolog-style), which
// gives deterministic case enumeration during mediation.
//
// On top of the name/arity map, each predicate gets a first-argument
// index, maintained incrementally by Add: clauses whose head's first
// argument is an atomic constant (Atom, Number, Str) are bucketed by that
// constant, and the rest (variable or compound first argument) go to a
// fallback bucket. A goal with a ground first argument then only tries
// its own bucket plus the fallback, merged back into source order —
// determinism is unchanged, only clauses that provably cannot unify are
// skipped. Because the index is built at Add time, a Program is read-only
// during solving and safe to share between concurrent solvers (as long as
// no goroutine Adds concurrently), matching the pre-index guarantee.
type Program struct {
	clauses map[predKey][]Clause
	order   []predKey // registration order, for deterministic dumps
	index   map[predKey]*predIndex
}

// predIndex is the first-argument index of one predicate. Slices hold
// positions into the predicate's clause slice, ascending (source order).
type predIndex struct {
	byConst  map[string][]int // first-arg constant key -> clause positions
	fallback []int            // clauses not indexable by first argument
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{clauses: map[predKey][]Clause{}}
}

// Add appends clauses to the program and extends the first-argument index
// (clause positions only ever grow, so each bucket stays ascending).
func (p *Program) Add(cs ...Clause) {
	for _, c := range cs {
		k := predKey{c.Head.Functor, len(c.Head.Args)}
		if _, ok := p.clauses[k]; !ok {
			p.order = append(p.order, k)
		}
		p.clauses[k] = append(p.clauses[k], c)
		p.indexClause(k, len(p.clauses[k])-1, c)
	}
}

// indexClause records the clause at position ci in its predicate's
// first-argument index.
func (p *Program) indexClause(k predKey, ci int, c Clause) {
	if k.arity == 0 {
		return
	}
	idx := p.index[k]
	if idx == nil {
		if p.index == nil {
			p.index = map[predKey]*predIndex{}
		}
		idx = &predIndex{}
		p.index[k] = idx
	}
	if key, ok := indexKey(c.Head.Args[0]); ok {
		if idx.byConst == nil {
			idx.byConst = map[string][]int{}
		}
		idx.byConst[key] = append(idx.byConst[key], ci)
	} else {
		idx.fallback = append(idx.fallback, ci)
	}
}

// indexKey returns the index bucket key for an atomic constant term, or
// ok=false for variables and compounds. Type tags keep Atom("a"),
// Str("a"), and a hypothetical numeric rendering from colliding. Negative
// zero is folded into zero to match Unify's float equality.
func indexKey(t Term) (string, bool) {
	switch t := t.(type) {
	case Atom:
		return "a\x00" + string(t), true
	case Str:
		return "s\x00" + string(t), true
	case Number:
		f := float64(t)
		if f == 0 {
			f = 0 // normalize -0 to +0
		}
		return "n\x00" + strconv.FormatFloat(f, 'b', -1, 64), true
	}
	return "", false
}

// clauseIter enumerates the clauses of one predicate that can possibly
// match a goal, in source order. When the goal's first argument
// dereferences to an atomic constant, the iterator merges the matching
// constant bucket with the fallback bucket (both position-sorted);
// otherwise it scans all clauses. Value type: iteration allocates nothing.
type clauseIter struct {
	clauses []Clause
	exact   []int // positions from the constant bucket, ascending
	vars    []int // positions from the fallback bucket, ascending
	indexed bool
	pos     int // cursor for the unindexed scan
	ei, vi  int // cursors into exact and vars
}

// clausesFor builds the iterator for a goal. firstArg must already be
// dereferenced (Walk) by the caller; nil means arity 0.
func (p *Program) clausesFor(name string, arity int, firstArg Term) clauseIter {
	k := predKey{name, arity}
	cs := p.clauses[k]
	it := clauseIter{clauses: cs}
	if arity == 0 || len(cs) < 2 || firstArg == nil {
		return it
	}
	key, ok := indexKey(firstArg)
	if !ok {
		return it // variable or compound goal argument: try every clause
	}
	idx := p.index[k]
	if idx == nil {
		return it // defensive: should not happen for arity ≥ 1
	}
	it.exact = idx.byConst[key]
	it.vars = idx.fallback
	it.indexed = true
	return it
}

// next returns the position and clause of the next candidate, or ok=false
// when exhausted.
func (it *clauseIter) next() (int, Clause, bool) {
	if !it.indexed {
		if it.pos >= len(it.clauses) {
			return 0, Clause{}, false
		}
		ci := it.pos
		it.pos++
		return ci, it.clauses[ci], true
	}
	// Merge the two ascending position lists to preserve source order.
	switch {
	case it.ei < len(it.exact) && (it.vi >= len(it.vars) || it.exact[it.ei] < it.vars[it.vi]):
		ci := it.exact[it.ei]
		it.ei++
		return ci, it.clauses[ci], true
	case it.vi < len(it.vars):
		ci := it.vars[it.vi]
		it.vi++
		return ci, it.clauses[ci], true
	}
	return 0, Clause{}, false
}

// AddProgram appends every clause of q to p.
func (p *Program) AddProgram(q *Program) {
	for _, k := range q.order {
		p.Add(q.clauses[k]...)
	}
}

// Clauses returns the clauses for the given predicate, in source order.
func (p *Program) Clauses(name string, arity int) []Clause {
	return p.clauses[predKey{name, arity}]
}

// Defined reports whether the program has at least one clause for the
// predicate.
func (p *Program) Defined(name string, arity int) bool {
	return len(p.clauses[predKey{name, arity}]) > 0
}

// Len returns the total number of clauses.
func (p *Program) Len() int {
	n := 0
	for _, cs := range p.clauses {
		n += len(cs)
	}
	return n
}

// Predicates lists the defined predicates as "name/arity", sorted.
func (p *Program) Predicates() []string {
	out := make([]string, 0, len(p.clauses))
	for k := range p.clauses {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

// String dumps the program in registration order.
func (p *Program) String() string {
	var b strings.Builder
	for _, k := range p.order {
		for _, c := range p.clauses[k] {
			b.WriteString(c.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Clone returns a deep-enough copy: clause slices are copied, terms are
// shared (terms are immutable by convention). The first-argument index is
// deep-copied — buckets must not share backing arrays, or an Add on the
// original and one on the clone would write the same slot.
func (p *Program) Clone() *Program {
	q := NewProgram()
	q.order = append([]predKey(nil), p.order...)
	for k, cs := range p.clauses {
		q.clauses[k] = append([]Clause(nil), cs...)
	}
	if p.index != nil {
		q.index = make(map[predKey]*predIndex, len(p.index))
		for k, idx := range p.index {
			ni := &predIndex{fallback: append([]int(nil), idx.fallback...)}
			if idx.byConst != nil {
				ni.byConst = make(map[string][]int, len(idx.byConst))
				for key, poss := range idx.byConst {
					ni.byConst[key] = append([]int(nil), poss...)
				}
			}
			q.index[k] = ni
		}
	}
	return q
}
