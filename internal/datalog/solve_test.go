package datalog

import (
	"strings"
	"testing"
)

func solver(t *testing.T, src string) *Solver {
	t.Helper()
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	return &Solver{Program: prog}
}

func TestSolveFacts(t *testing.T) {
	sv := solver(t, `
		parent(tom, bob).
		parent(bob, ann).
		parent(bob, pat).
	`)
	sols, err := sv.Solve(MustParseTerm("parent(bob, X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
	got := []string{sols[0].Bindings["X"].String(), sols[1].Bindings["X"].String()}
	if got[0] != "ann" || got[1] != "pat" {
		t.Errorf("bindings = %v, want [ann pat]", got)
	}
}

func TestSolveRulesAndJoins(t *testing.T) {
	sv := solver(t, `
		parent(tom, bob).
		parent(bob, ann).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`)
	sols, err := sv.Solve(MustParseTerm("grandparent(G, ann)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0].Bindings["G"].String() != "tom" {
		t.Fatalf("grandparent(G, ann) = %v, want tom", sols)
	}
}

func TestSolveRecursion(t *testing.T) {
	sv := solver(t, `
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- edge(X, Y), path(Y, Z).
	`)
	sols, err := sv.Solve(MustParseTerm("path(a, X)"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range sols {
		seen[s.Bindings["X"].String()] = true
	}
	for _, want := range []string{"b", "c", "d"} {
		if !seen[want] {
			t.Errorf("path(a, X) missing X=%s; got %v", want, seen)
		}
	}
}

func TestSolveArithmetic(t *testing.T) {
	sv := solver(t, `
		price(widget, 10).
		taxed(Item, T) :- price(Item, P), T is P * 1.08.
	`)
	sols, err := sv.Solve(MustParseTerm("taxed(widget, T)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("got %d solutions", len(sols))
	}
	if n, ok := sols[0].Bindings["T"].(Number); !ok || float64(n) != 10.8 {
		t.Errorf("T = %s, want 10.8", sols[0].Bindings["T"])
	}
}

func TestSolveComparisonsGround(t *testing.T) {
	sv := solver(t, `
		val(a, 3). val(b, 7).
		big(X) :- val(X, V), V > 5.
	`)
	sols, err := sv.Solve(MustParseTerm("big(X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0].Bindings["X"].String() != "b" {
		t.Fatalf("big(X) = %v, want b", sols)
	}
}

func TestSolveNegationAsFailure(t *testing.T) {
	sv := solver(t, `
		animal(dog). animal(cat).
		barks(dog).
		quiet(X) :- animal(X), not(barks(X)).
	`)
	sols, err := sv.Solve(MustParseTerm("quiet(X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0].Bindings["X"].String() != "cat" {
		t.Fatalf("quiet(X) = %v, want cat", sols)
	}
}

func TestSolveUnknownPredicateFails(t *testing.T) {
	sv := solver(t, `p(a).`)
	sols, err := sv.Solve(MustParseTerm("q(X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Errorf("unknown predicate produced %d solutions", len(sols))
	}
}

func TestSolveMaxSolutions(t *testing.T) {
	sv := solver(t, `n(1). n(2). n(3). n(4).`)
	sv.MaxSolutions = 2
	sols, err := sv.Solve(MustParseTerm("n(X)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Errorf("MaxSolutions=2 returned %d solutions", len(sols))
	}
}

func TestSolveDepthBound(t *testing.T) {
	sv := solver(t, `loop(X) :- loop(X).`)
	sv.MaxDepth = 64
	_, err := sv.Solve(MustParseTerm("loop(a)"))
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected depth error, got %v", err)
	}
}

func TestAbductionCollectsSourceAtoms(t *testing.T) {
	sv := solver(t, `
		ans(N, R) :- r1(N, R, C), C = 'USD'.
	`)
	sv.Abducible = func(name string, arity int) bool { return name == "r1" }
	sv.CollectConstraints = true
	sols, err := sv.Solve(MustParseTerm("ans(N, R)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("got %d solutions, want 1", len(sols))
	}
	if len(sols[0].Abduced) != 1 || sols[0].Abduced[0].Functor != "r1" {
		t.Fatalf("abduced = %v", sols[0].Abduced)
	}
	// The third argument of the abduced atom must be bound to 'USD' by the
	// equality in the body.
	if got := sols[0].Abduced[0].Args[2]; !Equal(got, Atom("USD")) {
		t.Errorf("abduced currency = %s, want USD", got)
	}
}

// TestAbductionCaseSplit reproduces the shape of the paper's scale-factor
// rule: a conditional over a data value unknown at mediation time must
// produce one solution per consistent case.
func TestAbductionCaseSplit(t *testing.T) {
	sv := solver(t, `
		sf(Cur, 1000) :- Cur = 'JPY'.
		sf(Cur, 1) :- Cur \= 'JPY'.
		q(N, V2) :- r1(N, V, Cur), sf(Cur, F), V2 is V * F.
	`)
	sv.Abducible = func(name string, arity int) bool { return name == "r1" }
	sv.CollectConstraints = true
	sols, err := sv.Solve(MustParseTerm("q(N, V2)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d cases, want 2 (JPY and non-JPY):\n%v", len(sols), sols)
	}
	// Case 1: currency bound to JPY, V2 = mul(V, 1000) symbolic.
	c1 := sols[0]
	if got := c1.Abduced[0].Args[2]; !Equal(got, Atom("JPY")) {
		t.Errorf("case 1 currency = %s, want JPY", got)
	}
	if v2, ok := c1.Bindings["V2"].(Compound); !ok || v2.Functor != FuncMul {
		t.Errorf("case 1 V2 = %s, want symbolic mul", c1.Bindings["V2"])
	}
	// Case 2: residual constraint Cur \= 'JPY'; V2 simplifies to V (x*1).
	c2 := sols[1]
	if len(c2.Constraints) != 1 || c2.Constraints[0].Functor != PredNeq {
		t.Errorf("case 2 constraints = %v, want one neq", c2.Constraints)
	}
	if _, ok := c2.Bindings["V2"].(Variable); !ok {
		t.Errorf("case 2 V2 = %s, want plain variable (mul by 1 simplified)", c2.Bindings["V2"])
	}
}

// TestAbductionPrunesInconsistent checks that a branch whose constraint set
// is contradictory is discarded: here the JPY case also requires USD.
func TestAbductionPrunesInconsistent(t *testing.T) {
	sv := solver(t, `
		sf(Cur, 1000) :- Cur = 'JPY'.
		sf(Cur, 1) :- Cur \= 'JPY'.
		q(N) :- r1(N, Cur), sf(Cur, F), Cur = 'USD', F = 1000.
	`)
	sv.Abducible = func(name string, arity int) bool { return name == "r1" }
	sv.CollectConstraints = true
	sols, err := sv.Solve(MustParseTerm("q(N)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Fatalf("inconsistent branch survived: %v", sols)
	}
}

// TestConstraintEntailmentDrop: once Cur is bound to 'USD', the stored
// constraint Cur \= 'JPY' is ground-true and must vanish from the residue.
func TestConstraintEntailmentDrop(t *testing.T) {
	sv := solver(t, `
		sf(Cur, 1) :- Cur \= 'JPY'.
		q(N) :- r1(N, Cur), sf(Cur, F), Cur = 'USD'.
	`)
	sv.Abducible = func(name string, arity int) bool { return name == "r1" }
	sv.CollectConstraints = true
	sols, err := sv.Solve(MustParseTerm("q(N)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("got %d solutions, want 1", len(sols))
	}
	if len(sols[0].Constraints) != 0 {
		t.Errorf("residual constraints = %v, want none (entailed by binding)", sols[0].Constraints)
	}
}

func TestSolveAllSorted(t *testing.T) {
	sv := solver(t, `n(3). n(1). n(2).`)
	got, err := sv.SolveAll(Comp("n", NewVar("X")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !Equal(got[0].Args[0], Number(1)) || !Equal(got[2].Args[0], Number(3)) {
		t.Errorf("SolveAll = %v, want sorted n(1),n(2),n(3)", got)
	}
}

func TestSolveConjunction(t *testing.T) {
	sv := solver(t, `
		a(1). a(2).
		b(2). b(3).
	`)
	goals, err := ParseGoals("a(X), b(X)")
	if err != nil {
		t.Fatal(err)
	}
	sols, err := sv.Solve(goals...)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || !Equal(sols[0].Bindings["X"], Number(2)) {
		t.Fatalf("a(X),b(X) = %v, want X=2", sols)
	}
}

func TestDeterministicOrder(t *testing.T) {
	src := `
		c(x, 1) :- x = x.
		r(A) :- s(A).
		s(1). s(2). s(3).
	`
	for i := 0; i < 5; i++ {
		sv := solver(t, src)
		sols, err := sv.Solve(MustParseTerm("r(A)"))
		if err != nil {
			t.Fatal(err)
		}
		for j, want := range []string{"1", "2", "3"} {
			if sols[j].Bindings["A"].String() != want {
				t.Fatalf("iteration %d: order %v not deterministic/source-ordered", i, sols)
			}
		}
	}
}
