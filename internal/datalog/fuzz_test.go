package datalog

import "testing"

// FuzzParseProgram checks the Prolog-ish parser never panics and accepted
// programs reprint-parse stably.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"p(a).",
		"q(X) :- p(X), X \\= b.",
		"cvt(V, F1, F2, V2) :- F1 \\= F2, V2 is V * F1 / F2.",
		"sf(Cur, 1000) :- Cur = 'JPY'. % comment",
		`s("str", 'atom', -3.5e2).`,
		"p(a) :-",
		"1234.",
		"p(((((",
		"a.",             // regression: zero-arity clause must reprint as bare atom
		"'0'. ",          // regression: quoted atoms that lex as numbers must stay quoted
		"\"\x15\" * ''.", // regression: raw control bytes in strings round-trip
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			return
		}
		text := prog.String()
		back, err := ParseProgram(text)
		if err != nil {
			t.Fatalf("accepted %q but reprint %q does not parse: %v", src, text, err)
		}
		if back.String() != text {
			t.Fatalf("unstable round trip: %q -> %q", text, back.String())
		}
	})
}
