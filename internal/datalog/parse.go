package datalog

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a small Prolog-ish concrete syntax for clauses, used
// by tests, by the web-wrapper spec compiler, and for authoring conversion
// rules:
//
//	sf(Cur, 1000) :- Cur = 'JPY'.
//	sf(Cur, 1)    :- Cur \= 'JPY'.
//	cvt(V, F1, F2, V2) :- F1 \= F2, V2 is V * F1 / F2.   % comment
//
// Atoms are lowercase identifiers or quoted 'like this'; variables start
// with an uppercase letter or underscore; strings are double-quoted;
// numbers are Go float literals. Infix operators, loosest first:
// comparisons (=, \=, <, >, =<, <=, >=, is), additive (+, -),
// multiplicative (*, /).

type tokKind int

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokNumber
	tokString
	tokPunct // ( ) , .
	tokOp    // = \= < > =< <= >= is + - * /
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lexProlog(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '%':
			// handled by skipSpaceAndComments; unreachable
		case c == '(' || c == ')' || c == ',' || c == '.':
			// A '.' followed by a digit is part of a number (e.g. .5 is
			// not supported; 0.5 is). A clause-terminating '.' is
			// standalone.
			l.pos++
			l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
		case c == '\'':
			s, err := l.quoted('\'')
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokAtom, text: s, pos: start})
		case c == '"':
			s, err := l.quoted('"')
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case strings.ContainsRune("=\\<>+-*/:", rune(c)):
			op := l.operator()
			if op == "" {
				return nil, fmt.Errorf("datalog: bad operator at byte %d", start)
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		case c >= '0' && c <= '9':
			numStr := l.number()
			v, err := strconv.ParseFloat(numStr, 64)
			if err != nil {
				return nil, fmt.Errorf("datalog: bad number %q at byte %d", numStr, start)
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: numStr, num: v, pos: start})
		case c == '_' || c >= 'A' && c <= 'Z':
			name := l.ident()
			l.toks = append(l.toks, token{kind: tokVar, text: name, pos: start})
		case c >= 'a' && c <= 'z':
			name := l.ident()
			if name == "is" {
				l.toks = append(l.toks, token{kind: tokOp, text: "is", pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokAtom, text: name, pos: start})
			}
		default:
			return nil, fmt.Errorf("datalog: unexpected character %q at byte %d", c, start)
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '%' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		return
	}
}

func (l *lexer) quoted(q byte) (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos += 2
			switch l.src[l.pos-1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(l.src[l.pos-1])
			}
			continue
		}
		if c == q {
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("datalog: unterminated quote starting at byte %d", l.pos)
}

func (l *lexer) operator() string {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case ":-", "\\=", "=<", "<=", ">=":
		l.pos += 2
		return two
	}
	switch l.src[l.pos] {
	case '=', '<', '>', '+', '-', '*', '/':
		l.pos++
		return string(l.src[l.pos-1])
	}
	return ""
}

func (l *lexer) number() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			if c == '.' {
				// Lookahead: a '.' not followed by a digit terminates the
				// clause, not the number.
				if l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9' {
					break
				}
			}
			l.pos++
			continue
		}
		if (c == '+' || c == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		// ASCII only: byte-wise lexing must not split multibyte runes.
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

// next consumes and returns the current token. The trailing EOF token is
// never consumed, so peek stays in bounds after any error path.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("datalog: parse error at byte %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// ParseProgram parses a sequence of clauses.
func ParseProgram(src string) (*Program, error) {
	toks, err := lexProlog(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := NewProgram()
	for !p.atEOF() {
		c, err := p.clause()
		if err != nil {
			return nil, err
		}
		prog.Add(c)
	}
	return prog, nil
}

// ParseClause parses a single clause (terminated by '.').
func ParseClause(src string) (Clause, error) {
	toks, err := lexProlog(src)
	if err != nil {
		return Clause{}, err
	}
	p := &parser{toks: toks}
	c, err := p.clause()
	if err != nil {
		return Clause{}, err
	}
	if !p.atEOF() {
		return Clause{}, p.errf("trailing input after clause")
	}
	return c, nil
}

// ParseTerm parses a single term (no trailing '.').
func ParseTerm(src string) (Term, error) {
	toks, err := lexProlog(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.expr(0)
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after term")
	}
	return t, nil
}

// ParseGoals parses a comma-separated conjunction of goals.
func ParseGoals(src string) ([]Term, error) {
	toks, err := lexProlog(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	goals, err := p.conjunction()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after goals")
	}
	return goals, nil
}

func (p *parser) clause() (Clause, error) {
	head, err := p.expr(0)
	if err != nil {
		return Clause{}, err
	}
	hc, ok := toCallable(head)
	if !ok {
		return Clause{}, p.errf("clause head %s is not callable", head)
	}
	t := p.peek()
	if t.kind == tokOp && t.text == ":-" {
		p.next()
		body, err := p.conjunction()
		if err != nil {
			return Clause{}, err
		}
		if err := p.expectDot(); err != nil {
			return Clause{}, err
		}
		return Clause{Head: hc, Body: body}, nil
	}
	if err := p.expectDot(); err != nil {
		return Clause{}, err
	}
	return Clause{Head: hc}, nil
}

func toCallable(t Term) (Compound, bool) {
	switch t := t.(type) {
	case Compound:
		return t, true
	case Atom:
		return Compound{Functor: string(t)}, true
	}
	return Compound{}, false
}

func (p *parser) expectDot() error {
	t := p.peek()
	if t.kind == tokPunct && t.text == "." {
		p.next()
		return nil
	}
	return p.errf("expected '.', found %q", t.text)
}

func (p *parser) conjunction() ([]Term, error) {
	var goals []Term
	for {
		g, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		goals = append(goals, g)
		t := p.peek()
		if t.kind == tokPunct && t.text == "," {
			p.next()
			continue
		}
		return goals, nil
	}
}

// Operator precedence: level 0 = comparisons (non-associative),
// level 1 = + -, level 2 = * /.
func opLevel(op string) (level int, ok bool) {
	switch op {
	case "=", "\\=", "<", ">", "=<", "<=", ">=", "is":
		return 0, true
	case "+", "-":
		return 1, true
	case "*", "/":
		return 2, true
	}
	return 0, false
}

func opFunctor(op string) string {
	switch op {
	case "+":
		return FuncAdd
	case "-":
		return FuncSub
	case "*":
		return FuncMul
	case "/":
		return FuncDiv
	case "<=":
		return "=<" // normalize to Prolog spelling; solver accepts both
	}
	return op
}

func (p *parser) expr(minLevel int) (Term, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return left, nil
		}
		level, ok := opLevel(t.text)
		if !ok || level < minLevel {
			return left, nil
		}
		p.next()
		// Comparisons are non-associative: their operands are parsed at
		// the next level up, so "A = B = C" is a syntax error.
		right, err := p.expr(level + 1)
		if err != nil {
			return nil, err
		}
		left = Comp(opFunctor(t.text), left, right)
		if level == 0 {
			return left, nil
		}
	}
}

func (p *parser) primary() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return Number(t.num), nil
	case tokString:
		return Str(t.text), nil
	case tokVar:
		return Variable{Name: t.text}, nil
	case tokAtom:
		nt := p.peek()
		if nt.kind == tokPunct && nt.text == "(" {
			p.next()
			var args []Term
			for {
				a, err := p.expr(0)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				sep := p.next()
				if sep.kind == tokPunct && sep.text == "," {
					continue
				}
				if sep.kind == tokPunct && sep.text == ")" {
					break
				}
				return nil, p.errf("expected ',' or ')' in argument list, found %q", sep.text)
			}
			return Compound{Functor: t.text, Args: args}, nil
		}
		return Atom(t.text), nil
	case tokOp:
		if t.text == "-" { // unary minus
			inner, err := p.primary()
			if err != nil {
				return nil, err
			}
			if n, ok := inner.(Number); ok {
				return Number(-n), nil
			}
			return Comp(FuncNeg, inner), nil
		}
		return nil, p.errf("unexpected operator %q", t.text)
	case tokPunct:
		if t.text == "(" {
			inner, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			cl := p.next()
			if cl.kind != tokPunct || cl.text != ")" {
				return nil, p.errf("expected ')', found %q", cl.text)
			}
			return inner, nil
		}
		return nil, p.errf("unexpected %q", t.text)
	default:
		return nil, p.errf("unexpected end of input")
	}
}

// MustParseProgram is ParseProgram that panics on error; for tests and
// compiled-in rule text.
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// MustParseTerm is ParseTerm that panics on error.
func MustParseTerm(src string) Term {
	t, err := ParseTerm(src)
	if err != nil {
		panic(err)
	}
	return t
}
