package datalog

import (
	"strings"
	"testing"
)

func TestSubstMarkUndo(t *testing.T) {
	s := NewSubst()
	s.Bind(NewVar("A"), Atom("a"))
	mark := s.Mark()
	s.Bind(NewVar("B"), Atom("b"))
	s.Bind(NewVar("C"), Atom("c"))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.Undo(mark)
	if s.Len() != 1 {
		t.Fatalf("after Undo: Len = %d, want 1", s.Len())
	}
	if _, ok := s.Lookup("B"); ok {
		t.Error("B survived Undo")
	}
	if got, ok := s.Lookup("A"); !ok || !Equal(got, Atom("a")) {
		t.Error("A lost by Undo of a later checkpoint")
	}
}

func TestSubstUndoRestoresOverwrite(t *testing.T) {
	s := NewSubst()
	s.Bind(NewVar("X"), Atom("old"))
	mark := s.Mark()
	s.Bind(NewVar("X"), Atom("new")) // rebinding is legal via Bind
	if got, _ := s.Lookup("X"); !Equal(got, Atom("new")) {
		t.Fatal("rebind did not take")
	}
	s.Undo(mark)
	if got, _ := s.Lookup("X"); !Equal(got, Atom("old")) {
		t.Errorf("Undo did not restore overwritten binding: X = %v", got)
	}
}

func TestUnifyFailureLeavesSubstUnchanged(t *testing.T) {
	// f(X, X) vs f(a, b): X binds to a, then a/b clash must roll X back.
	s := NewSubst()
	if Unify(Comp("f", NewVar("X"), NewVar("X")), Comp("f", Atom("a"), Atom("b")), s) {
		t.Fatal("expected failure")
	}
	if s.Len() != 0 {
		t.Errorf("failed Unify left %d bindings", s.Len())
	}
	if s.Mark() != 0 {
		t.Errorf("failed Unify left %d trail entries", s.Mark())
	}
}

func TestNestedMarkUndo(t *testing.T) {
	s := NewSubst()
	outer := s.Mark()
	if !Unify(NewVar("X"), Atom("a"), s) {
		t.Fatal("unify failed")
	}
	inner := s.Mark()
	if !Unify(NewVar("Y"), NewVar("X"), s) {
		t.Fatal("unify failed")
	}
	if got := s.Resolve(NewVar("Y")); !Equal(got, Atom("a")) {
		t.Fatalf("Y = %v, want a", got)
	}
	s.Undo(inner)
	if _, ok := s.Lookup("Y"); ok {
		t.Error("inner undo did not remove Y")
	}
	if got := s.Resolve(NewVar("X")); !Equal(got, Atom("a")) {
		t.Error("inner undo removed X")
	}
	s.Undo(outer)
	if s.Len() != 0 {
		t.Error("outer undo did not empty the store")
	}
}

func TestConstraintSetMarkUndo(t *testing.T) {
	cs := NewConstraintSet()
	s := NewSubst()
	x, y := NewVar("X"), NewVar("Y")
	cs.Add(PredNeq, x, Atom("a"), s)
	mark := cs.Mark()
	cs.Add(PredGt, y, Number(3), s)
	if cs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cs.Len())
	}
	cs.Undo(mark)
	if cs.Len() != 1 {
		t.Fatalf("after Undo: Len = %d, want 1", cs.Len())
	}
	if !strings.Contains(cs.String(), PredNeq) {
		t.Errorf("wrong constraint survived: %s", cs)
	}
	// The rolled-back slot must be reusable.
	if !cs.Add(PredLt, y, Number(9), s) || cs.Len() != 2 {
		t.Error("Add after Undo failed")
	}
}

// mustSolve runs the solver and fails the test on error.
func mustSolve(t *testing.T, sv *Solver, goals ...Term) []Solution {
	t.Helper()
	sols, err := sv.Solve(goals...)
	if err != nil {
		t.Fatal(err)
	}
	return sols
}

// TestFirstArgIndexPreservesOrder checks that indexed lookup enumerates
// exactly the clauses a full scan would try (constant bucket merged with
// the variable fallback bucket), in source order.
func TestFirstArgIndexPreservesOrder(t *testing.T) {
	prog := NewProgram()
	prog.Add(
		Fact("p", Atom("a"), Number(1)),
		Fact("p", Atom("b"), Number(2)),
		Fact("p", NewVar("Any"), Number(3)), // fallback: matches every first arg
		Fact("p", Atom("a"), Number(4)),
		Fact("p", Str("a"), Number(5)), // Str("a") must not collide with Atom("a")
	)
	sv := &Solver{Program: prog}
	sols := mustSolve(t, sv, Comp("p", Atom("a"), NewVar("V")))
	var got []string
	for _, s := range sols {
		got = append(got, s.Bindings["V"].String())
	}
	want := []string{"1", "3", "4"}
	if len(got) != len(want) {
		t.Fatalf("solutions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("solutions = %v, want %v (source order must survive indexing)", got, want)
		}
	}

	// A variable goal argument must scan all clauses.
	if n := len(mustSolve(t, sv, Comp("p", NewVar("X"), NewVar("V")))); n != 5 {
		t.Errorf("open query found %d solutions, want 5", n)
	}
	// A Str goal hits the Str bucket plus the fallback.
	if n := len(mustSolve(t, sv, Comp("p", Str("a"), NewVar("V")))); n != 2 {
		t.Errorf("Str query found %d solutions, want 2", n)
	}
}

// TestSharedProgramConcurrentSolvers locks in that solving is read-only
// on the Program: the server hands one cached Program to a solver per
// request, so clausesFor must never write (run with -race).
func TestSharedProgramConcurrentSolvers(t *testing.T) {
	prog := NewProgram()
	for i := 0; i < 50; i++ {
		prog.Add(Fact("p", Number(i), Number(i+1)))
	}
	prog.Add(MustParseProgram("j(X, Z) :- p(X, Y), p(Y, Z).").Clauses("j", 2)...)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			sv := &Solver{Program: prog}
			sols, err := sv.Solve(MustParseTerm("j(3, Z)"))
			if err == nil && len(sols) != 1 {
				err = &clauseCountErr{n: len(sols)}
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type clauseCountErr struct{ n int }

func (e *clauseCountErr) Error() string { return "unexpected solution count" }

func TestFirstArgIndexInvalidatedByAdd(t *testing.T) {
	prog := NewProgram()
	prog.Add(Fact("p", Atom("a"), Number(1)), Fact("p", Atom("b"), Number(2)))
	sv := &Solver{Program: prog}
	if n := len(mustSolve(t, sv, Comp("p", Atom("a"), NewVar("V")))); n != 1 {
		t.Fatalf("pre-Add solutions = %d, want 1", n)
	}
	prog.Add(Fact("p", Atom("a"), Number(9)))
	if n := len(mustSolve(t, sv, Comp("p", Atom("a"), NewVar("V")))); n != 2 {
		t.Errorf("post-Add solutions = %d, want 2 (index not invalidated)", n)
	}
}

func TestFirstArgIndexNumberBuckets(t *testing.T) {
	prog := NewProgram()
	prog.Add(
		Fact("n", Number(1), Atom("one")),
		Fact("n", Number(2), Atom("two")),
		Fact("n", Number(-0.0), Atom("zero")),
	)
	sv := &Solver{Program: prog}
	if n := len(mustSolve(t, sv, Comp("n", Number(2), NewVar("V")))); n != 1 {
		t.Errorf("Number(2) query: %d solutions, want 1", n)
	}
	// -0 and +0 unify (float equality), so they must share a bucket.
	if n := len(mustSolve(t, sv, Comp("n", Number(0), NewVar("V")))); n != 1 {
		t.Errorf("Number(0) query against -0 fact: %d solutions, want 1", n)
	}
}

// TestSolverDeterminismUnderBacktracking locks in that the trail-based
// solver enumerates the same solutions, in the same order, as the
// specification (clause source order, depth-first).
func TestSolverDeterminismUnderBacktracking(t *testing.T) {
	prog := MustParseProgram(`
		edge(a, b). edge(b, c). edge(a, d). edge(d, c).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`)
	sv := &Solver{Program: prog}
	sols := mustSolve(t, sv, MustParseTerm("path(a, C)"))
	var got []string
	for _, s := range sols {
		got = append(got, s.Bindings["C"].String())
	}
	want := []string{"b", "d", "c", "c"}
	if len(got) != len(want) {
		t.Fatalf("paths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paths = %v, want %v", got, want)
		}
	}
}

// TestNotSubSolverAvoidsVariableCapture regresses a variable-capture bug:
// the not/1 sub-solver used to restart the fresh-variable counter at zero,
// so its renamed clause variables collided with the parent's free _G
// variables in the negated goal, tripping the occurs check and making
// provable goals look unprovable.
func TestNotSubSolverAvoidsVariableCapture(t *testing.T) {
	prog := MustParseProgram(`
		p(W).
		r :- not(p(f(X, Y))).
	`)
	sv := &Solver{Program: prog}
	sols, err := sv.Solve(Atom("r"))
	if err != nil {
		t.Fatal(err)
	}
	// p(f(X, Y)) is provable (W unifies with f(X, Y)), so not(...) must
	// fail and r must have no solutions.
	if len(sols) != 0 {
		t.Errorf("r has %d solutions, want 0 (sub-solver captured the goal's variables)", len(sols))
	}
}

// TestAbducedDedupDistinguishesRenderAliases checks that the abduced-atom
// dedup key separates structurally different atoms whose String() renders
// coincide (Number(-1) vs neg(1)).
func TestAbducedDedupDistinguishesRenderAliases(t *testing.T) {
	prog := NewProgram()
	prog.Add(Rule(Comp("q"),
		Comp("p", Number(-1)),
		Comp("p", Comp(FuncNeg, Number(1)))))
	sv := &Solver{
		Program:            prog,
		CollectConstraints: true,
		Abducible:          func(name string, arity int) bool { return name == "p" },
	}
	sols, err := sv.Solve(Comp("q"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("sols = %d, want 1", len(sols))
	}
	if n := len(sols[0].Abduced); n != 2 {
		t.Errorf("abduced %d atoms, want 2: p(-1) and p(neg(1)) render alike but differ structurally (%v)", n, sols[0].Abduced)
	}
}

// Allocation-regression tests: the trail refactor removed every per-step
// map copy from the solver's inner loop. These fail loudly if a future
// change reintroduces one (a Subst clone costs O(bindings) allocations per
// resolution step, so budgets below would be blown immediately).

func TestUnifyGroundTermsAllocFree(t *testing.T) {
	l := MustParseTerm(`f(b, g(c, h(d, a)), 3, "s")`)
	r := MustParseTerm(`f(b, g(c, h(d, a)), 3, "s")`)
	s := NewSubst()
	allocs := testing.AllocsPerRun(200, func() {
		if !Unify(l, r, s) {
			t.Fatal("unify failed")
		}
	})
	if allocs > 0 {
		t.Errorf("ground Unify allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCaseSplitAllocBudget(t *testing.T) {
	// A 3-clause case split in abductive mode — the shape of mediation.
	prog := MustParseProgram(`
		sf(Cur, 1000) :- Cur = 'JPY'.
		sf(Cur, 100) :- Cur = 'KRW'.
		sf(Cur, 1) :- Cur \= 'JPY', Cur \= 'KRW'.
		q(V) :- r(N, Cur), sf(Cur, V).
	`)
	goal := MustParseTerm("q(V)")
	run := func() {
		sv := &Solver{Program: prog, CollectConstraints: true,
			Abducible: func(name string, arity int) bool { return name == "r" }}
		sols, err := sv.Solve(goal)
		if err != nil || len(sols) != 3 {
			t.Fatalf("sols=%d err=%v", len(sols), err)
		}
	}
	run() // warm parse caches etc. outside the measurement
	allocs := testing.AllocsPerRun(100, run)
	// Measured ~80 objects/op with the trail-based solver; the clone-based
	// solver needed several hundred. The budget leaves headroom for noise
	// while still catching any reintroduced per-step copying.
	const budget = 160
	if allocs > budget {
		t.Errorf("3-clause abductive case split allocates %.0f objects/op, budget %d", allocs, budget)
	}
}
