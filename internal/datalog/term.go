// Package datalog implements the logic-inference substrate of the COIN
// mediator: first-order terms, unification, a clause store, an SLD
// resolution engine, and — crucially for context mediation — an abductive
// procedure in the style of Kakas, Kowalski and Toni ("Abductive logic
// programming", J. Logic and Computation, 1993) with a constraint store for
// (dis)equalities and order comparisons over data values that are unknown
// at mediation time.
//
// The package is deliberately self-contained (stdlib only): the paper's
// prototype used a Prolog system (ECLiPSe) as its inference engine, and the
// Go ecosystem offers no equivalent, so this package is that substrate
// built from scratch.
package datalog

import (
	"sort"
	"strconv"
	"strings"
)

// Term is a first-order term: a Variable, Atom, Number, Str, or Compound.
type Term interface {
	// String renders the term in Prolog-ish concrete syntax.
	String() string
	isTerm()
}

// Variable is a logic variable, identified by name. Names beginning with
// "_G" are reserved for machine-generated fresh variables.
type Variable struct {
	Name string
}

// Atom is a symbolic constant such as usd or r1.
type Atom string

// Number is a numeric constant. All arithmetic in the engine is done in
// float64; the mediator's monetary examples stay well within exact range.
type Number float64

// Str is a string constant, distinct from Atom so that SQL string literals
// survive round-trips without case or quoting ambiguity.
type Str string

// Compound is a functor applied to one or more arguments, e.g.
// rate(usd, jpy, R) or mul(X, Y).
type Compound struct {
	Functor string
	Args    []Term
}

func (Variable) isTerm() {}
func (Atom) isTerm()     {}
func (Number) isTerm()   {}
func (Str) isTerm()      {}
func (Compound) isTerm() {}

func (v Variable) String() string { return v.Name }

// atomEscaper and strEscaper are shared: strings.NewReplacer builds its
// lookup machinery lazily once and is safe for concurrent use, so
// constructing one per String call (as the rendering hot path used to)
// wastes an allocation per quoted constant.
var (
	atomEscaper = strings.NewReplacer(`\`, `\\`, `'`, `\'`)
	strEscaper  = strings.NewReplacer(`\`, `\\`, `"`, `\"`)
)

// String renders the atom, quoting it unless it is a plain lowercase
// identifier (anything else — capitals, digits-first, symbols — would
// re-lex as a variable, number or operator).
func (a Atom) String() string {
	s := string(a)
	if isPlainAtom(s) {
		return s
	}
	return "'" + atomEscaper.Replace(s) + "'"
}

func isPlainAtom(s string) bool {
	if len(s) == 0 || !(s[0] >= 'a' && s[0] <= 'z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

func (n Number) String() string {
	return strconv.FormatFloat(float64(n), 'g', -1, 64)
}

// String renders the string with the same minimal escaping the lexer
// understands (backslash and the quote character only; other bytes pass
// through raw), so printing and parsing are exact inverses.
func (s Str) String() string {
	return `"` + strEscaper.Replace(string(s)) + `"`
}

// infixOps maps functors that render infix to their surface spelling and
// precedence level (higher binds tighter). Levels match the parser.
var infixOps = map[string]struct {
	op    string
	level int
}{
	"=": {"=", 0}, "\\=": {"\\=", 0}, "<": {"<", 0}, ">": {">", 0},
	"=<": {"=<", 0}, ">=": {">=", 0}, "is": {"is", 0},
	FuncAdd: {"+", 1}, FuncSub: {"-", 1},
	FuncMul: {"*", 2}, FuncDiv: {"/", 2},
}

func (c Compound) String() string { return c.render(-1) }

// render prints the compound, parenthesizing when its operator binds no
// tighter than the enclosing context.
func (c Compound) render(outer int) string {
	if info, ok := infixOps[c.Functor]; ok && len(c.Args) == 2 {
		l := renderOperand(c.Args[0], info.level-1) // left-assoc: same level OK on the left
		r := renderOperand(c.Args[1], info.level)
		s := l + " " + info.op + " " + r
		if info.level <= outer {
			return "(" + s + ")"
		}
		return s
	}
	if c.Functor == FuncNeg && len(c.Args) == 1 {
		return "-" + renderOperand(c.Args[0], 2)
	}
	if len(c.Args) == 0 {
		return Atom(c.Functor).String() // zero-arity: bare atom syntax
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return Atom(c.Functor).String() + "(" + strings.Join(parts, ", ") + ")"
}

func renderOperand(t Term, outer int) string {
	if c, ok := t.(Compound); ok {
		return c.render(outer)
	}
	return t.String()
}

// NewVar returns a Variable with the given name.
func NewVar(name string) Variable { return Variable{Name: name} }

// Comp builds a Compound term.
func Comp(functor string, args ...Term) Compound {
	return Compound{Functor: functor, Args: args}
}

// IsGround reports whether t contains no variables.
func IsGround(t Term) bool {
	switch t := t.(type) {
	case Variable:
		return false
	case Compound:
		for _, a := range t.Args {
			if !IsGround(a) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Vars appends the variables occurring in t to dst, left to right, with
// duplicates, and returns the extended slice.
func Vars(t Term, dst []Variable) []Variable {
	switch t := t.(type) {
	case Variable:
		return append(dst, t)
	case Compound:
		for _, a := range t.Args {
			dst = Vars(a, dst)
		}
	}
	return dst
}

// varNames appends the distinct variable names of t to dst in
// first-occurrence order, deduplicating by linear scan (terms have a
// handful of variables; this avoids the intermediate slice Vars builds).
func varNames(t Term, dst []string) []string {
	switch t := t.(type) {
	case Variable:
		for _, n := range dst {
			if n == t.Name {
				return dst
			}
		}
		return append(dst, t.Name)
	case Compound:
		for _, a := range t.Args {
			dst = varNames(a, dst)
		}
	}
	return dst
}

// VarSet returns the distinct variable names occurring in t, sorted.
func VarSet(t Term) []string {
	seen := map[string]bool{}
	for _, v := range Vars(t, nil) {
		seen[v.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// canonKey appends an injective byte encoding of t to dst and returns the
// extended slice: two terms produce the same key iff Equal holds (modulo
// -0 == +0, which Equal and Unify also conflate). Unlike String(), it
// distinguishes e.g. Number(-1) from neg(1) and Atom("a") from the
// zero-arity compound a(). Every token is type-tagged and every string is
// length-prefixed; compounds carry their arity, so concatenation is
// unambiguous even for names containing arbitrary bytes.
func canonKey(dst []byte, t Term) []byte {
	switch t := t.(type) {
	case Variable:
		dst = append(dst, 'v')
		dst = appendLenStr(dst, t.Name)
	case Atom:
		dst = append(dst, 'a')
		dst = appendLenStr(dst, string(t))
	case Str:
		dst = append(dst, 's')
		dst = appendLenStr(dst, string(t))
	case Number:
		f := float64(t)
		if f == 0 {
			f = 0 // normalize -0 to +0, matching float equality
		}
		dst = append(dst, 'n')
		dst = strconv.AppendFloat(dst, f, 'b', -1, 64)
		dst = append(dst, ';')
	case Compound:
		dst = append(dst, 'c')
		dst = strconv.AppendInt(dst, int64(len(t.Args)), 10)
		dst = appendLenStr(dst, t.Functor)
		for _, a := range t.Args {
			dst = canonKey(dst, a)
		}
	}
	return dst
}

func appendLenStr(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}

// Equal reports structural equality of two terms (variables equal iff their
// names are equal).
func Equal(a, b Term) bool {
	switch a := a.(type) {
	case Variable:
		b, ok := b.(Variable)
		return ok && a.Name == b.Name
	case Atom:
		b, ok := b.(Atom)
		return ok && a == b
	case Number:
		b, ok := b.(Number)
		return ok && a == b
	case Str:
		b, ok := b.(Str)
		return ok && a == b
	case Compound:
		b, ok := b.(Compound)
		if !ok || a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders terms: Number < Str < Atom < Variable < Compound, with
// natural ordering within each kind. It gives a deterministic order for
// canonicalizing constraint sets and test output.
func Compare(a, b Term) int {
	ra, rb := termRank(a), termRank(b)
	if ra != rb {
		return ra - rb
	}
	switch a := a.(type) {
	case Number:
		b := b.(Number)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case Str:
		return strings.Compare(string(a), string(b.(Str)))
	case Atom:
		return strings.Compare(string(a), string(b.(Atom)))
	case Variable:
		return strings.Compare(a.Name, b.(Variable).Name)
	case Compound:
		b := b.(Compound)
		if c := strings.Compare(a.Functor, b.Functor); c != 0 {
			return c
		}
		if c := len(a.Args) - len(b.Args); c != 0 {
			return c
		}
		for i := range a.Args {
			if c := Compare(a.Args[i], b.Args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	return 0
}

func termRank(t Term) int {
	switch t.(type) {
	case Number:
		return 0
	case Str:
		return 1
	case Atom:
		return 2
	case Variable:
		return 3
	case Compound:
		return 4
	}
	return 5
}

// gNames caches machine-generated variable names: clause renaming sits on
// the solver's innermost loop, and building "_G<n>" there costs one string
// allocation per fresh variable. The table is filled at init and read-only
// afterwards, so concurrent solvers may share it.
var gNames = func() (a [1024]string) {
	for i := range a {
		a[i] = "_G" + strconv.Itoa(i)
	}
	return
}()

func gName(n int) string {
	if n >= 0 && n < len(gNames) {
		return gNames[n]
	}
	return "_G" + strconv.Itoa(n)
}

// renamer rewrites variable names to fresh ones, consistently within one
// clause instance. Clauses have a handful of variables, so the mapping is
// two parallel slices scanned linearly — no map allocation per clause
// trial. vals stores the fresh variables pre-boxed as Terms, so repeated
// occurrences of one variable cost no interface allocation. The solver
// owns one renamer and resets it per trial (renaming of a clause always
// completes before the recursive descent, so reuse across stack frames is
// safe); reset keeps the slices' backing arrays.
type renamer struct {
	counter *int
	keys    []string
	vals    []Term // always Variable, boxed once
}

func newRenamer(counter *int) *renamer {
	return &renamer{counter: counter}
}

// reset re-arms the renamer for a fresh clause instance, reusing its
// backing storage.
func (r *renamer) reset(counter *int) {
	r.counter = counter
	if r.keys == nil {
		r.keys = make([]string, 0, 8)
		r.vals = make([]Term, 0, 8)
	}
	r.keys = r.keys[:0]
	r.vals = r.vals[:0]
}

func (r *renamer) rename(t Term) Term {
	switch t := t.(type) {
	case Variable:
		for i, k := range r.keys {
			if k == t.Name {
				return r.vals[i]
			}
		}
		*r.counter++
		v := Term(Variable{Name: gName(*r.counter)})
		r.keys = append(r.keys, t.Name)
		r.vals = append(r.vals, v)
		return v
	case Compound:
		if IsGround(t) {
			return t // nothing to rename; share the term
		}
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = r.rename(a)
		}
		return Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}
