package datalog

import (
	"errors"
	"fmt"
	"sort"
)

// Solution is one successful derivation of a query.
type Solution struct {
	// Bindings maps each variable of the original query to its resolved
	// value (possibly a symbolic arithmetic expression).
	Bindings map[string]Term
	// Abduced holds the abducible atoms assumed by this derivation, in
	// first-assumption order with duplicates removed. For the mediator
	// these are the source-relation atoms that become the FROM clause.
	Abduced []Compound
	// Constraints holds the residual (non-ground) comparison constraints,
	// normalized and deterministically ordered. For the mediator these
	// become WHERE predicates.
	Constraints []Compound
	// Trace lists the clause applications of the derivation in order,
	// when Solver.Trace is set. The mediator turns it into human-readable
	// branch explanations.
	Trace []TraceStep
}

// TraceStep records one clause application: the predicate resolved and
// the index of the clause used (in Program source order).
type TraceStep struct {
	Pred   string
	Arity  int
	Clause int
}

// Key renders the step's predicate as "name/arity".
func (t TraceStep) Key() string { return fmt.Sprintf("%s/%d", t.Pred, t.Arity) }

// Solver runs SLD resolution with optional abduction over a Program.
//
// A Solver is single-use-at-a-time: Solve mutates internal scratch state
// (variable counter, trace stack, goal-slice pool), so concurrent Solve
// calls on one Solver are not safe. Create one Solver per goroutine.
type Solver struct {
	// Program is the clause store consulted for resolution.
	Program *Program
	// Abducible reports whether a predicate may be assumed rather than
	// proven. If an abducible predicate also has clauses, clause
	// resolution is explored first and abduction is tried as one more
	// alternative.
	Abducible func(name string, arity int) bool
	// CollectConstraints makes non-ground comparisons succeed by recording
	// them in the constraint store instead of failing. This is the
	// abductive-mediation mode. When false, non-ground comparisons are an
	// error (classic datalog evaluation over ground facts).
	CollectConstraints bool
	// MaxDepth bounds the resolution depth per derivation (a safety valve
	// against runaway recursion; compiled mediation programs are
	// non-recursive). Zero means DefaultMaxDepth.
	MaxDepth int
	// MaxSolutions stops the search after this many solutions. Zero means
	// unlimited.
	MaxSolutions int
	// KeepEntailedConstraints retains ground-true constraints in each
	// solution's residue instead of simplifying them away (ablation; see
	// ConstraintSet.Normalize).
	KeepEntailedConstraints bool
	// Denials are integrity constraints in the abductive-logic-programming
	// sense: clause bodies that must NOT be provable from the program plus
	// the abduced atoms. A candidate solution is discarded when a denial
	// body is definitely provable (a derivation with no residual
	// constraints and no further abduction); possibly-provable bodies
	// (residue left) do not prune — a sound approximation. Heads are
	// ignored by convention (write them as ic :- body).
	Denials []Clause
	// Trace records clause applications into each Solution.
	Trace bool

	varCounter int

	// traceBuf is the live clause-application stack of the current
	// derivation: steps are pushed entering a clause and popped on
	// backtrack; emit copies it into the Solution. This replaces the
	// per-step append-copy of the old trace threading.
	traceBuf []TraceStep
	// goalPool recycles goal-stack slices between clause trials. The
	// search is depth-first, so a body slice is dead the moment the
	// recursive call over it returns and can back the next trial.
	goalPool [][]Term
	// ren is the reusable clause renamer; see renamer.reset.
	ren renamer
}

// DefaultMaxDepth is the resolution depth bound used when Solver.MaxDepth
// is zero.
const DefaultMaxDepth = 4096

// ErrDepthExceeded is returned when a derivation exceeds the depth bound.
var ErrDepthExceeded = errors.New("datalog: resolution depth exceeded")

var errStopSearch = errors.New("datalog: solution limit reached")

// emitFn receives each successful derivation's live state. Implementations
// must copy anything they keep: s, store, and abduced are rolled back as
// the search backtracks.
type emitFn func(s *Subst, store *ConstraintSet, abduced []Compound) error

// Solve proves the conjunction of goals and returns every solution, in
// clause-order-deterministic sequence.
func (sv *Solver) Solve(goals ...Term) ([]Solution, error) {
	if sv.Program == nil {
		sv.Program = NewProgram()
	}
	maxDepth := sv.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	sv.traceBuf = sv.traceBuf[:0]
	// Query variables, first-occurrence order, deduped by linear scan
	// (queries have a handful of variables; a map costs more to build).
	var queryVars []string
	for _, g := range goals {
		queryVars = varNames(g, queryVars)
	}
	var sols []Solution
	emit := func(s *Subst, store *ConstraintSet, abduced []Compound) error {
		residual, ok := store.Normalize(s, sv.KeepEntailedConstraints)
		if !ok {
			return nil // inconsistent branch: not a solution
		}
		sol := Solution{Bindings: make(map[string]Term, len(queryVars))}
		for _, name := range queryVars {
			sol.Bindings[name] = SimplifyExpr(Variable{Name: name}, s)
		}
		switch {
		case len(abduced) == 1:
			sol.Abduced = []Compound{s.ResolveCompound(abduced[0])}
		case len(abduced) > 1:
			// Dedup resolved atoms by canonical key: one map lookup per
			// atom instead of a pairwise Equal scan. canonKey is injective
			// on term structure (unlike String(), which renders e.g.
			// Number(-1) and neg(1) identically).
			seen := make(map[string]struct{}, len(abduced))
			var buf []byte
			for _, a := range abduced {
				r := s.ResolveCompound(a)
				buf = canonKey(buf[:0], r)
				if _, dup := seen[string(buf)]; dup {
					continue
				}
				seen[string(buf)] = struct{}{}
				sol.Abduced = append(sol.Abduced, r)
			}
		}
		sol.Constraints = residual
		if sv.Trace {
			sol.Trace = append([]TraceStep(nil), sv.traceBuf...)
		}
		if len(sv.Denials) > 0 {
			violated, err := sv.violatesDenial(sol)
			if err != nil {
				return err
			}
			if violated {
				return nil
			}
		}
		if sols == nil {
			sols = make([]Solution, 0, 4)
		}
		sols = append(sols, sol)
		if sv.MaxSolutions > 0 && len(sols) >= sv.MaxSolutions {
			return errStopSearch
		}
		return nil
	}
	err := sv.solve(goals, NewSubst(), NewConstraintSet(), nil, maxDepth, emit)
	if errors.Is(err, errStopSearch) {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return sols, nil
}

// violatesDenial reports whether any denial body is definitely provable
// from the program extended with the solution's abduced atoms as facts.
// Residual eq(Var, ground) constraints are applied as bindings first: an
// equality the WHERE clause demands holds of every answer tuple, so the
// hypothesized facts may assume it.
func (sv *Solver) violatesDenial(sol Solution) (bool, error) {
	eqs := NewSubst()
	for _, c := range sol.Constraints {
		if c.Functor == PredEq {
			if v, ok := c.Args[0].(Variable); ok && IsGround(c.Args[1]) {
				eqs.Bind(v, c.Args[1])
			} else if v, ok := c.Args[1].(Variable); ok && IsGround(c.Args[0]) {
				eqs.Bind(v, c.Args[0])
			}
		}
	}
	// Variables still free in the hypothesized facts stand for
	// arbitrary-but-specific data values; skolemize them so a denial
	// cannot fire by merely unifying them with a forbidden constant.
	skolems := NewSubst()
	skolemize := func(t Term) Term {
		for _, v := range Vars(eqs.Resolve(t), nil) {
			if _, done := skolems.Lookup(v.Name); !done {
				skolems.Bind(v, Comp("$sk", Str(v.Name)))
			}
		}
		return skolems.Resolve(eqs.Resolve(t))
	}
	ext := sv.Program.Clone()
	for _, a := range sol.Abduced {
		ext.Add(Clause{Head: skolemize(a).(Compound)})
	}
	for _, denial := range sv.Denials {
		sv.ren.reset(&sv.varCounter)
		goals := make([]Term, len(denial.Body))
		for i, g := range denial.Body {
			goals[i] = sv.ren.rename(g)
		}
		sub := &Solver{
			Program:            ext,
			CollectConstraints: true, // undecidable comparisons become residue, not errors
			MaxDepth:           sv.MaxDepth,
			varCounter:         sv.varCounter, // avoid capture of the goal's free _G variables
		}
		proofs, err := sub.Solve(goals...)
		if err != nil {
			return false, fmt.Errorf("datalog: checking integrity constraint %s: %w", denial.String(), err)
		}
		for _, p := range proofs {
			if len(p.Constraints) == 0 {
				return true, nil // definitely provable: violated
			}
		}
	}
	return false, nil
}

// getGoals pops a recycled goal slice (or allocates one) with zero length
// and at least the given capacity.
func (sv *Solver) getGoals(capHint int) []Term {
	if n := len(sv.goalPool); n > 0 {
		b := sv.goalPool[n-1]
		sv.goalPool = sv.goalPool[:n-1]
		return b[:0]
	}
	return make([]Term, 0, capHint)
}

// putGoals returns a goal slice to the pool once the recursion over it has
// fully unwound.
func (sv *Solver) putGoals(b []Term) {
	if sv.goalPool == nil {
		sv.goalPool = make([][]Term, 0, 16)
	}
	sv.goalPool = append(sv.goalPool, b)
}

// solve is the recursive SLD step. It explores clause alternatives in
// order. Instead of cloning the substitution and constraint store at each
// choice point, it checkpoints both (Mark), lets the trial mutate them
// destructively, and rolls back (Undo) before the next alternative — the
// WAM trail discipline. Invariant: solve returns with s and store exactly
// as it received them, on every path including errors.
func (sv *Solver) solve(goals []Term, s *Subst, store *ConstraintSet, abduced []Compound, depth int, emit emitFn) error {
	if len(goals) == 0 {
		return emit(s, store, abduced)
	}
	if depth <= 0 {
		return ErrDepthExceeded
	}
	goal := s.Walk(goals[0])
	rest := goals[1:]

	var name string
	var args []Term
	switch g := goal.(type) {
	case Atom:
		name, args = string(g), nil
	case Compound:
		name, args = g.Functor, g.Args
	case Variable:
		return fmt.Errorf("datalog: unbound goal %s", g.Name)
	default:
		return fmt.Errorf("datalog: goal %s is not callable", goal.String())
	}

	if handled, err := sv.builtin(name, args, rest, s, store, abduced, depth, emit); handled {
		return err
	}

	arity := len(args)
	var firstArg Term
	if arity > 0 {
		firstArg = s.Walk(args[0])
	}
	var goalTerm Term // the goal re-boxed as a Compound, built on first trial
	it := sv.Program.clausesFor(name, arity, firstArg)
	for {
		ci, cl, ok := it.next()
		if !ok {
			break
		}
		if goalTerm == nil {
			goalTerm = Compound{Functor: name, Args: args} // box once, not per trial
		}
		mark, cmark := s.Mark(), store.Mark()
		sv.ren.reset(&sv.varCounter)
		head := sv.ren.rename(cl.Head)
		if !Unify(goalTerm, head, s) {
			continue // Unify rolled its bindings back
		}
		body := sv.getGoals(len(cl.Body) + len(rest))
		for _, b := range cl.Body {
			body = append(body, sv.ren.rename(b))
		}
		body = append(body, rest...)
		if sv.Trace {
			sv.traceBuf = append(sv.traceBuf, TraceStep{Pred: name, Arity: arity, Clause: ci})
		}
		err := sv.solve(body, s, store, abduced, depth-1, emit)
		if sv.Trace {
			sv.traceBuf = sv.traceBuf[:len(sv.traceBuf)-1]
		}
		sv.putGoals(body)
		s.Undo(mark)
		store.Undo(cmark)
		if err != nil {
			return err
		}
	}

	if sv.Abducible != nil && sv.Abducible(name, arity) {
		// Depth-first reuse makes the append safe even when it writes into
		// shared backing: sibling branches overwrite slots only after the
		// earlier branch's solutions were copied out by emit.
		atom := Compound{Functor: name, Args: args}
		return sv.solve(rest, s, store, append(abduced, atom), depth-1, emit)
	}
	// Unknown predicate: fail silently, exactly like an empty relation.
	return nil
}

// builtin dispatches control and comparison builtins. It reports whether
// the goal was handled.
func (sv *Solver) builtin(name string, args []Term, rest []Term, s *Subst, store *ConstraintSet, abduced []Compound, depth int, emit emitFn) (bool, error) {
	switch {
	case name == "true" && len(args) == 0:
		return true, sv.solve(rest, s, store, abduced, depth-1, emit)
	case name == "fail" && len(args) == 0:
		return true, nil
	case name == "=" && len(args) == 2:
		mark := s.Mark()
		if !Unify(args[0], args[1], s) {
			return true, nil
		}
		err := sv.solve(rest, s, store, abduced, depth-1, emit)
		s.Undo(mark)
		return true, err
	case name == "is" && len(args) == 2:
		v, err := Eval(args[1], s)
		var result Term
		switch {
		case err == nil:
			result = Number(v)
		case errors.Is(err, ErrNotGround) && sv.CollectConstraints:
			// Keep the arithmetic symbolic: bind the result variable to
			// the (simplified) expression itself.
			result = SimplifyExpr(args[1], s)
		default:
			if errors.Is(err, ErrNotGround) {
				return true, fmt.Errorf("datalog: `is` with unbound operand: %s", s.Resolve(args[1]))
			}
			return true, err
		}
		mark := s.Mark()
		if !Unify(args[0], result, s) {
			return true, nil
		}
		serr := sv.solve(rest, s, store, abduced, depth-1, emit)
		s.Undo(mark)
		return true, serr
	case name == "not" && len(args) == 1:
		// The sub-solver starts its fresh-variable counter at the parent's
		// height: the resolved goal can carry the parent's free _G
		// variables, and a counter restarted at zero would rename clause
		// variables into collision with them (spurious occurs-check
		// failures, wrong negation results).
		sub := &Solver{Program: sv.Program, Abducible: nil, CollectConstraints: false, MaxDepth: depth - 1, MaxSolutions: 1, varCounter: sv.varCounter}
		sols, err := sub.Solve(s.Resolve(args[0]))
		if err != nil {
			return true, err
		}
		if len(sols) > 0 {
			return true, nil
		}
		return true, sv.solve(rest, s, store, abduced, depth-1, emit)
	}

	if pred, ok := comparePred(name); ok && len(args) == 2 {
		return true, sv.compare(pred, args[0], args[1], rest, s, store, abduced, depth, emit)
	}
	if IsConstraintPred(name) && len(args) == 2 {
		return true, sv.compare(name, args[0], args[1], rest, s, store, abduced, depth, emit)
	}
	return false, nil
}

// comparePred maps surface comparison operators to constraint predicates.
func comparePred(name string) (string, bool) {
	switch name {
	case "\\=":
		return PredNeq, true
	case "<":
		return PredLt, true
	case ">":
		return PredGt, true
	case "=<", "<=":
		return PredLe, true
	case ">=":
		return PredGe, true
	}
	return "", false
}

// compare evaluates a comparison goal. Decidable comparisons are decided;
// in constraint-collection mode undecidable ones are stored, otherwise they
// are an error (unbound comparison in ground evaluation is a program bug).
func (sv *Solver) compare(pred string, a, b Term, rest []Term, s *Subst, store *ConstraintSet, abduced []Compound, depth int, emit emitFn) error {
	ra, rb := SimplifyExpr(a, s), SimplifyExpr(b, s)
	switch decideGround(pred, ra, rb) {
	case decTrue:
		return sv.solve(rest, s, store, abduced, depth-1, emit)
	case decFalse:
		return nil
	}
	if !sv.CollectConstraints {
		return fmt.Errorf("datalog: comparison %s(%s, %s) over non-ground terms in ground evaluation mode", pred, ra, rb)
	}
	cmark := store.Mark()
	if !store.Add(pred, ra, rb, s) {
		return nil // Add leaves the store untouched on failure
	}
	err := sv.solve(rest, s, store, abduced, depth-1, emit)
	store.Undo(cmark)
	return err
}

// SolveAll is a convenience for ground fact querying: it returns, for each
// solution, the resolved instantiation of the pattern term.
func (sv *Solver) SolveAll(pattern Compound) ([]Compound, error) {
	sols, err := sv.Solve(pattern)
	if err != nil {
		return nil, err
	}
	out := make([]Compound, 0, len(sols))
	for _, sol := range sols {
		inst := instantiate(pattern, sol.Bindings)
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out, nil
}

func instantiate(t Compound, bindings map[string]Term) Compound {
	s := NewSubst()
	for k, v := range bindings {
		s.Bind(Variable{Name: k}, v)
	}
	return s.Resolve(t).(Compound)
}
