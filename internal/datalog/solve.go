package datalog

import (
	"errors"
	"fmt"
	"sort"
)

// Solution is one successful derivation of a query.
type Solution struct {
	// Bindings maps each variable of the original query to its resolved
	// value (possibly a symbolic arithmetic expression).
	Bindings map[string]Term
	// Abduced holds the abducible atoms assumed by this derivation, in
	// first-assumption order with duplicates removed. For the mediator
	// these are the source-relation atoms that become the FROM clause.
	Abduced []Compound
	// Constraints holds the residual (non-ground) comparison constraints,
	// normalized and deterministically ordered. For the mediator these
	// become WHERE predicates.
	Constraints []Compound
	// Trace lists the clause applications of the derivation in order,
	// when Solver.Trace is set. The mediator turns it into human-readable
	// branch explanations.
	Trace []TraceStep
}

// TraceStep records one clause application: the predicate resolved and
// the index of the clause used (in Program source order).
type TraceStep struct {
	Pred   string
	Arity  int
	Clause int
}

// Key renders the step's predicate as "name/arity".
func (t TraceStep) Key() string { return fmt.Sprintf("%s/%d", t.Pred, t.Arity) }

// Solver runs SLD resolution with optional abduction over a Program.
type Solver struct {
	// Program is the clause store consulted for resolution.
	Program *Program
	// Abducible reports whether a predicate may be assumed rather than
	// proven. If an abducible predicate also has clauses, clause
	// resolution is explored first and abduction is tried as one more
	// alternative.
	Abducible func(name string, arity int) bool
	// CollectConstraints makes non-ground comparisons succeed by recording
	// them in the constraint store instead of failing. This is the
	// abductive-mediation mode. When false, non-ground comparisons are an
	// error (classic datalog evaluation over ground facts).
	CollectConstraints bool
	// MaxDepth bounds the resolution depth per derivation (a safety valve
	// against runaway recursion; compiled mediation programs are
	// non-recursive). Zero means DefaultMaxDepth.
	MaxDepth int
	// MaxSolutions stops the search after this many solutions. Zero means
	// unlimited.
	MaxSolutions int
	// KeepEntailedConstraints retains ground-true constraints in each
	// solution's residue instead of simplifying them away (ablation; see
	// ConstraintSet.Normalize).
	KeepEntailedConstraints bool
	// Denials are integrity constraints in the abductive-logic-programming
	// sense: clause bodies that must NOT be provable from the program plus
	// the abduced atoms. A candidate solution is discarded when a denial
	// body is definitely provable (a derivation with no residual
	// constraints and no further abduction); possibly-provable bodies
	// (residue left) do not prune — a sound approximation. Heads are
	// ignored by convention (write them as ic :- body).
	Denials []Clause
	// Trace records clause applications into each Solution.
	Trace bool

	varCounter int
}

// DefaultMaxDepth is the resolution depth bound used when Solver.MaxDepth
// is zero.
const DefaultMaxDepth = 4096

// ErrDepthExceeded is returned when a derivation exceeds the depth bound.
var ErrDepthExceeded = errors.New("datalog: resolution depth exceeded")

var errStopSearch = errors.New("datalog: solution limit reached")

// Solve proves the conjunction of goals and returns every solution, in
// clause-order-deterministic sequence.
func (sv *Solver) Solve(goals ...Term) ([]Solution, error) {
	if sv.Program == nil {
		sv.Program = NewProgram()
	}
	maxDepth := sv.MaxDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	}
	queryVars := map[string]bool{}
	for _, g := range goals {
		for _, v := range Vars(g, nil) {
			queryVars[v.Name] = true
		}
	}
	var sols []Solution
	emit := func(s Subst, store *ConstraintSet, abduced []Compound, trace []TraceStep) error {
		residual, ok := store.Normalize(s, sv.KeepEntailedConstraints)
		if !ok {
			return nil // inconsistent branch: not a solution
		}
		sol := Solution{Bindings: map[string]Term{}}
		for name := range queryVars {
			sol.Bindings[name] = SimplifyExpr(Variable{Name: name}, s)
		}
		for _, a := range abduced {
			r := s.Resolve(a).(Compound)
			dup := false
			for _, prev := range sol.Abduced {
				if Equal(prev, r) {
					dup = true
					break
				}
			}
			if !dup {
				sol.Abduced = append(sol.Abduced, r)
			}
		}
		sol.Constraints = residual
		sol.Trace = trace
		if len(sv.Denials) > 0 {
			violated, err := sv.violatesDenial(sol)
			if err != nil {
				return err
			}
			if violated {
				return nil
			}
		}
		sols = append(sols, sol)
		if sv.MaxSolutions > 0 && len(sols) >= sv.MaxSolutions {
			return errStopSearch
		}
		return nil
	}
	err := sv.solve(goals, NewSubst(), NewConstraintSet(), nil, nil, maxDepth, emit)
	if errors.Is(err, errStopSearch) {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return sols, nil
}

// violatesDenial reports whether any denial body is definitely provable
// from the program extended with the solution's abduced atoms as facts.
// Residual eq(Var, ground) constraints are applied as bindings first: an
// equality the WHERE clause demands holds of every answer tuple, so the
// hypothesized facts may assume it.
func (sv *Solver) violatesDenial(sol Solution) (bool, error) {
	eqs := NewSubst()
	for _, c := range sol.Constraints {
		if c.Functor == PredEq {
			if v, ok := c.Args[0].(Variable); ok && IsGround(c.Args[1]) {
				eqs.Bind(v, c.Args[1])
			} else if v, ok := c.Args[1].(Variable); ok && IsGround(c.Args[0]) {
				eqs.Bind(v, c.Args[0])
			}
		}
	}
	// Variables still free in the hypothesized facts stand for
	// arbitrary-but-specific data values; skolemize them so a denial
	// cannot fire by merely unifying them with a forbidden constant.
	skolems := NewSubst()
	skolemize := func(t Term) Term {
		for _, v := range Vars(eqs.Resolve(t), nil) {
			if _, done := skolems[v.Name]; !done {
				skolems.Bind(v, Comp("$sk", Str(v.Name)))
			}
		}
		return skolems.Resolve(eqs.Resolve(t))
	}
	ext := sv.Program.Clone()
	for _, a := range sol.Abduced {
		ext.Add(Clause{Head: skolemize(a).(Compound)})
	}
	for _, denial := range sv.Denials {
		ren := newRenamer(&sv.varCounter)
		goals := make([]Term, len(denial.Body))
		for i, g := range denial.Body {
			goals[i] = ren.rename(g)
		}
		sub := &Solver{
			Program:            ext,
			CollectConstraints: true, // undecidable comparisons become residue, not errors
			MaxDepth:           sv.MaxDepth,
		}
		proofs, err := sub.Solve(goals...)
		if err != nil {
			return false, fmt.Errorf("datalog: checking integrity constraint %s: %w", denial.String(), err)
		}
		for _, p := range proofs {
			if len(p.Constraints) == 0 {
				return true, nil // definitely provable: violated
			}
		}
	}
	return false, nil
}

// solve is the recursive SLD step. It explores clause alternatives in
// order, cloning the substitution and constraint store at each choice
// point.
func (sv *Solver) solve(goals []Term, s Subst, store *ConstraintSet, abduced []Compound, trace []TraceStep, depth int, emit func(Subst, *ConstraintSet, []Compound, []TraceStep) error) error {
	if len(goals) == 0 {
		return emit(s, store, abduced, trace)
	}
	if depth <= 0 {
		return ErrDepthExceeded
	}
	goal := s.Walk(goals[0])
	rest := goals[1:]

	var name string
	var args []Term
	switch g := goal.(type) {
	case Atom:
		name, args = string(g), nil
	case Compound:
		name, args = g.Functor, g.Args
	case Variable:
		return fmt.Errorf("datalog: unbound goal %s", g.Name)
	default:
		return fmt.Errorf("datalog: goal %s is not callable", goal.String())
	}

	if handled, err := sv.builtin(name, args, rest, s, store, abduced, trace, depth, emit); handled {
		return err
	}

	arity := len(args)
	clauses := sv.Program.Clauses(name, arity)
	for ci, cl := range clauses {
		ren := newRenamer(&sv.varCounter)
		head := ren.rename(cl.Head).(Compound)
		s2 := s.Clone()
		if !Unify(Compound{Functor: name, Args: args}, head, s2) {
			continue
		}
		body := make([]Term, 0, len(cl.Body)+len(rest))
		for _, b := range cl.Body {
			body = append(body, ren.rename(b))
		}
		body = append(body, rest...)
		trace2 := trace
		if sv.Trace {
			trace2 = append(append([]TraceStep(nil), trace...), TraceStep{Pred: name, Arity: arity, Clause: ci})
		}
		if err := sv.solve(body, s2, store.Clone(), abduced, trace2, depth-1, emit); err != nil {
			return err
		}
	}

	if sv.Abducible != nil && sv.Abducible(name, arity) {
		atom := Compound{Functor: name, Args: args}
		return sv.solve(rest, s.Clone(), store.Clone(), append(append([]Compound(nil), abduced...), atom), trace, depth-1, emit)
	}
	if len(clauses) == 0 && !IsConstraintPred(name) {
		// Unknown predicate: fail silently, exactly like an empty relation.
		return nil
	}
	return nil
}

// builtin dispatches control and comparison builtins. It reports whether
// the goal was handled.
func (sv *Solver) builtin(name string, args []Term, rest []Term, s Subst, store *ConstraintSet, abduced []Compound, trace []TraceStep, depth int, emit func(Subst, *ConstraintSet, []Compound, []TraceStep) error) (bool, error) {
	switch {
	case name == "true" && len(args) == 0:
		return true, sv.solve(rest, s, store, abduced, trace, depth-1, emit)
	case name == "fail" && len(args) == 0:
		return true, nil
	case name == "=" && len(args) == 2:
		s2 := s.Clone()
		if !Unify(args[0], args[1], s2) {
			return true, nil
		}
		return true, sv.solve(rest, s2, store.Clone(), abduced, trace, depth-1, emit)
	case name == "is" && len(args) == 2:
		v, err := Eval(args[1], s)
		s2 := s.Clone()
		switch {
		case err == nil:
			if !Unify(args[0], Number(v), s2) {
				return true, nil
			}
		case errors.Is(err, ErrNotGround) && sv.CollectConstraints:
			// Keep the arithmetic symbolic: bind the result variable to
			// the (simplified) expression itself.
			if !Unify(args[0], SimplifyExpr(args[1], s), s2) {
				return true, nil
			}
		default:
			if errors.Is(err, ErrNotGround) {
				return true, fmt.Errorf("datalog: `is` with unbound operand: %s", s.Resolve(args[1]))
			}
			return true, err
		}
		return true, sv.solve(rest, s2, store.Clone(), abduced, trace, depth-1, emit)
	case name == "not" && len(args) == 1:
		sub := &Solver{Program: sv.Program, Abducible: nil, CollectConstraints: false, MaxDepth: depth - 1, MaxSolutions: 1}
		sols, err := sub.Solve(s.Resolve(args[0]))
		if err != nil {
			return true, err
		}
		if len(sols) > 0 {
			return true, nil
		}
		return true, sv.solve(rest, s, store, abduced, trace, depth-1, emit)
	}

	if pred, ok := comparePred(name); ok && len(args) == 2 {
		return true, sv.compare(pred, args[0], args[1], rest, s, store, abduced, trace, depth, emit)
	}
	if IsConstraintPred(name) && len(args) == 2 {
		return true, sv.compare(name, args[0], args[1], rest, s, store, abduced, trace, depth, emit)
	}
	return false, nil
}

// comparePred maps surface comparison operators to constraint predicates.
func comparePred(name string) (string, bool) {
	switch name {
	case "\\=":
		return PredNeq, true
	case "<":
		return PredLt, true
	case ">":
		return PredGt, true
	case "=<", "<=":
		return PredLe, true
	case ">=":
		return PredGe, true
	}
	return "", false
}

// compare evaluates a comparison goal. Decidable comparisons are decided;
// in constraint-collection mode undecidable ones are stored, otherwise they
// are an error (unbound comparison in ground evaluation is a program bug).
func (sv *Solver) compare(pred string, a, b Term, rest []Term, s Subst, store *ConstraintSet, abduced []Compound, trace []TraceStep, depth int, emit func(Subst, *ConstraintSet, []Compound, []TraceStep) error) error {
	ra, rb := SimplifyExpr(a, s), SimplifyExpr(b, s)
	switch decideGround(pred, ra, rb) {
	case decTrue:
		return sv.solve(rest, s, store, abduced, trace, depth-1, emit)
	case decFalse:
		return nil
	}
	if !sv.CollectConstraints {
		return fmt.Errorf("datalog: comparison %s(%s, %s) over non-ground terms in ground evaluation mode", pred, ra, rb)
	}
	st2 := store.Clone()
	if !st2.Add(pred, ra, rb, s) {
		return nil
	}
	return sv.solve(rest, s.Clone(), st2, abduced, trace, depth-1, emit)
}

// SolveAll is a convenience for ground fact querying: it returns, for each
// solution, the resolved instantiation of the pattern term.
func (sv *Solver) SolveAll(pattern Compound) ([]Compound, error) {
	sols, err := sv.Solve(pattern)
	if err != nil {
		return nil, err
	}
	out := make([]Compound, 0, len(sols))
	for _, sol := range sols {
		inst := instantiate(pattern, sol.Bindings)
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out, nil
}

func instantiate(t Compound, bindings map[string]Term) Compound {
	s := NewSubst()
	for k, v := range bindings {
		s[k] = v
	}
	return s.Resolve(t).(Compound)
}
