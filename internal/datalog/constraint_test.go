package datalog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEvalGround(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"f(3)", 3}, // arg extraction below
	}
	_ = tests
	for src, want := range map[string]float64{
		"mul(2, 3)":                       6,
		"add(1, mul(2, 3))":               7,
		"div(10, 4)":                      2.5,
		"sub(1, 2)":                       -1,
		"neg(5)":                          -5,
		"mul(mul(1000000, 1000), 0.0096)": 9.6e6,
	} {
		got, err := Eval(MustParseTerm(src), NewSubst())
		if err != nil {
			t.Errorf("Eval(%s): %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("Eval(%s) = %v, want %v", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(NewVar("X"), NewSubst()); err != ErrNotGround {
		t.Errorf("Eval(var) err = %v, want ErrNotGround", err)
	}
	if _, err := Eval(Atom("usd"), NewSubst()); err == nil {
		t.Error("Eval(atom) succeeded, want error")
	}
	if _, err := Eval(Comp("div", Number(1), Number(0)), NewSubst()); err == nil {
		t.Error("Eval(1/0) succeeded, want error")
	}
	if _, err := Eval(Comp("nope", Number(1)), NewSubst()); err == nil {
		t.Error("Eval(unknown functor) succeeded, want error")
	}
}

func TestSimplifyExpr(t *testing.T) {
	for src, want := range map[string]string{
		"mul(X, 1)":                    "X",
		"mul(1, X)":                    "X",
		"div(X, 1)":                    "X",
		"add(X, 0)":                    "X",
		"add(0, X)":                    "X",
		"sub(X, 0)":                    "X",
		"mul(X, 0)":                    "0",
		"mul(2, 3)":                    "6",
		"mul(div(X, 1), mul(1000, 1))": "X * 1000",
	} {
		got := SimplifyExpr(MustParseTerm(src), NewSubst())
		if got.String() != want {
			t.Errorf("SimplifyExpr(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestConstraintAddGroundDecisions(t *testing.T) {
	cs := NewConstraintSet()
	s := NewSubst()
	if !cs.Add(PredLt, Number(1), Number(2), s) {
		t.Error("1 < 2 rejected")
	}
	if cs.Len() != 0 {
		t.Error("ground-true constraint was stored")
	}
	if cs.Add(PredEq, Atom("USD"), Atom("JPY"), s) {
		t.Error("USD = JPY accepted")
	}
	if cs.Add(PredGe, Number(1), Number(2), s) {
		t.Error("1 >= 2 accepted")
	}
	if !cs.Add(PredNeq, Str("a"), Str("b"), s) || cs.Len() != 0 {
		t.Error(`"a" \= "b" should be decided true and dropped`)
	}
}

func TestConstraintStringOrder(t *testing.T) {
	cs := NewConstraintSet()
	s := NewSubst()
	if !cs.Add(PredLt, Str("apple"), Str("banana"), s) {
		t.Error("string < comparison should hold")
	}
	if cs.Add(PredGt, Str("apple"), Str("banana"), s) {
		t.Error("string > comparison should fail")
	}
}

func TestConstraintContradictionDetection(t *testing.T) {
	x := NewVar("X")
	cs := NewConstraintSet()
	s := NewSubst()
	if !cs.Add(PredNeq, x, Atom("JPY"), s) {
		t.Fatal("first constraint rejected")
	}
	if cs.Add(PredEq, x, Atom("JPY"), s) {
		t.Error("X = JPY accepted alongside X \\= JPY")
	}
	if !cs.Add(PredEq, x, Atom("USD"), s) {
		t.Error("X = USD rejected; should be consistent with X \\= JPY")
	}
	if cs.Add(PredEq, x, Atom("EUR"), s) {
		t.Error("X = EUR accepted alongside X = USD")
	}
}

func TestConstraintDuplicateCollapse(t *testing.T) {
	x := NewVar("X")
	cs := NewConstraintSet()
	s := NewSubst()
	cs.Add(PredNeq, x, Atom("JPY"), s)
	cs.Add(PredNeq, x, Atom("JPY"), s)
	if cs.Len() != 1 {
		t.Errorf("duplicate stored: len = %d", cs.Len())
	}
}

func TestNormalizeDropsEntailedAndDetectsFalse(t *testing.T) {
	x := NewVar("X")
	cs := NewConstraintSet()
	s := NewSubst()
	cs.Add(PredNeq, x, Atom("JPY"), s)
	cs.Add(PredLt, x, Number(10), s)

	// Later binding makes the neq ground-true and the lt ground-decidable.
	s.Bind(x, Number(5))
	// Number vs Atom: neq(5, JPY) — ground, unequal, true → dropped.
	res, ok := cs.Normalize(s, false)
	if !ok {
		t.Fatal("consistent store reported inconsistent")
	}
	if len(res) != 0 {
		t.Errorf("residual = %v, want empty", res)
	}

	s2 := NewSubst()
	s2.Bind(x, Number(50))
	if _, ok := cs.Normalize(s2, false); ok {
		t.Error("store with ground-false lt reported consistent")
	}
}

func TestNormalizeDeterministicOrder(t *testing.T) {
	x, y := NewVar("X"), NewVar("Y")
	build := func(order []int) []Compound {
		cs := NewConstraintSet()
		s := NewSubst()
		adds := []func(){
			func() { cs.Add(PredNeq, x, Atom("JPY"), s) },
			func() { cs.Add(PredGt, y, Number(3), s) },
			func() { cs.Add(PredNeq, x, Atom("USD"), s) },
		}
		for _, i := range order {
			adds[i]()
		}
		res, _ := cs.Normalize(s, false)
		return res
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if !reflect.DeepEqual(termStrings(a), termStrings(b)) {
		t.Errorf("Normalize order depends on insertion: %v vs %v", a, b)
	}
}

func termStrings(cs []Compound) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

func TestFormatConstraint(t *testing.T) {
	c := Comp(PredNeq, NewVar("Cur"), Atom("JPY"))
	if got := FormatConstraint(c); got != "Cur <> 'JPY'" {
		t.Errorf("FormatConstraint = %q", got)
	}
}

// Property: Normalize preserves satisfiability for stores over a single
// variable constrained against integer constants — we compare against a
// brute-force check over a small domain.
func TestNormalizeSatisfiabilityProperty(t *testing.T) {
	x := NewVar("X")
	preds := []string{PredEq, PredNeq, PredLt, PredLe, PredGt, PredGe}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		cs := NewConstraintSet()
		s := NewSubst()
		type con struct {
			pred string
			v    int
		}
		var cons []con
		okAdd := true
		for i := 0; i < n; i++ {
			c := con{preds[r.Intn(len(preds))], r.Intn(5)}
			cons = append(cons, c)
			if c.pred == PredEq {
				// The solver turns eq into unification; emulate by binding
				// if unbound, else recording as constraint.
				if _, bound := s.Lookup("X"); !bound {
					s.Bind(x, Number(c.v))
					continue
				}
			}
			if !cs.Add(c.pred, x, Number(c.v), s) {
				okAdd = false
				break
			}
		}
		// Brute force over domain [-1, 6).
		sat := false
		for v := -1; v < 6 && !sat; v++ {
			all := true
			for _, c := range cons {
				if !compareFloats(c.pred, float64(v), float64(c.v)) {
					all = false
					break
				}
			}
			sat = sat || all
		}
		if !okAdd {
			// Add rejected: must really be unsatisfiable... but Add only
			// detects direct contradictions, so rejection implies
			// unsatisfiable only for eq/neq pairs. Check the weaker
			// direction: if brute-force says satisfiable over ints in
			// range, Add+Normalize must not both reject.
			_ = sat
			return true
		}
		_, normOK := cs.Normalize(s, false)
		// Soundness direction: if the store is satisfiable by brute force,
		// normalization must not report inconsistency.
		if sat && !normOK {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
