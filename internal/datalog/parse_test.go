package datalog

import (
	"strings"
	"testing"
)

func TestParseFact(t *testing.T) {
	c, err := ParseClause("parent(tom, bob).")
	if err != nil {
		t.Fatal(err)
	}
	if c.Head.Functor != "parent" || len(c.Head.Args) != 2 || len(c.Body) != 0 {
		t.Errorf("parsed %v", c)
	}
}

func TestParseRuleWithOperators(t *testing.T) {
	c, err := ParseClause(`cvt(V, F1, F2, V2) :- F1 \= F2, V2 is V * F1 / F2.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 2 {
		t.Fatalf("body length = %d, want 2", len(c.Body))
	}
	neq := c.Body[0].(Compound)
	if neq.Functor != "\\=" {
		t.Errorf("first goal functor = %q", neq.Functor)
	}
	is := c.Body[1].(Compound)
	if is.Functor != "is" {
		t.Fatalf("second goal functor = %q", is.Functor)
	}
	// V * F1 / F2 must parse left-associatively: div(mul(V,F1),F2).
	expr := is.Args[1].(Compound)
	if expr.Functor != FuncDiv {
		t.Fatalf("expr = %s, want div(...)", expr)
	}
	if inner, ok := expr.Args[0].(Compound); !ok || inner.Functor != FuncMul {
		t.Errorf("expr = %s, want div(mul(V,F1),F2)", expr)
	}
}

func TestParsePrecedence(t *testing.T) {
	term := MustParseTerm("X is A + B * C")
	is := term.(Compound)
	add := is.Args[1].(Compound)
	if add.Functor != FuncAdd {
		t.Fatalf("got %s, want add at top", add)
	}
	if mul, ok := add.Args[1].(Compound); !ok || mul.Functor != FuncMul {
		t.Errorf("got %s, want mul nested right", add)
	}
}

func TestParseParens(t *testing.T) {
	term := MustParseTerm("X is (A + B) * C")
	mul := term.(Compound).Args[1].(Compound)
	if mul.Functor != FuncMul {
		t.Fatalf("got %s, want mul at top", mul)
	}
	if add, ok := mul.Args[0].(Compound); !ok || add.Functor != FuncAdd {
		t.Errorf("got %s, want add nested left", mul)
	}
}

func TestParseQuotedAtomAndString(t *testing.T) {
	term := MustParseTerm(`pair('JPY', "NTT Corp")`).(Compound)
	if !Equal(term.Args[0], Atom("JPY")) {
		t.Errorf("arg0 = %#v, want Atom(JPY)", term.Args[0])
	}
	if !Equal(term.Args[1], Str("NTT Corp")) {
		t.Errorf("arg1 = %#v, want Str(NTT Corp)", term.Args[1])
	}
}

func TestParseNumbers(t *testing.T) {
	for src, want := range map[string]float64{
		"f(0)":         0,
		"f(42)":        42,
		"f(0.0096)":    0.0096,
		"f(1e3)":       1000,
		"f(2.5e-2)":    0.025,
		"f(-7)":        -7,
		"f(100000000)": 1e8,
	} {
		term := MustParseTerm(src).(Compound)
		n, ok := term.Args[0].(Number)
		if !ok || float64(n) != want {
			t.Errorf("%s: got %v, want %v", src, term.Args[0], want)
		}
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	prog, err := ParseProgram(`
		% facts about parents
		parent(tom, bob). % inline comment
		parent(bob, ann).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 2 {
		t.Errorf("clause count = %d, want 2", prog.Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(a",          // unclosed args
		"p(a) :- q(b)", // missing dot
		"3(a).",        // number as functor
		"p('unterm).",  // unterminated quote
		"p(a) :- .",    // empty body
		"X = Y = Z.",   // non-associative comparison chain
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"parent(tom, bob).",
		"grand(X, Z) :- parent(X, Y), parent(Y, Z).",
		`sf(Cur, 1000) :- Cur = 'JPY'.`,
		"taxed(I, T) :- price(I, P), T is mul(P, 1.08).",
	}
	for _, src := range srcs {
		c1, err := ParseClause(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c2, err := ParseClause(c1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", c1.String(), err)
		}
		if c1.String() != c2.String() {
			t.Errorf("round trip changed clause:\n  %s\n  %s", c1, c2)
		}
	}
}

func TestProgramString(t *testing.T) {
	prog := MustParseProgram("a(1).\nb(X) :- a(X).")
	s := prog.String()
	if !strings.Contains(s, "a(1).") || !strings.Contains(s, "b(X) :- a(X).") {
		// The renamed variable keeps its name in the clause store.
		t.Errorf("Program.String() = %q", s)
	}
}

func TestProgramCloneIsolation(t *testing.T) {
	p := MustParseProgram("a(1).")
	q := p.Clone()
	q.Add(Fact("a", Number(2)))
	if len(p.Clauses("a", 1)) != 1 {
		t.Error("Clone is not isolated from original")
	}
	if len(q.Clauses("a", 1)) != 2 {
		t.Error("Clone lost added clause")
	}
}
