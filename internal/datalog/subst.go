package datalog

// Subst is a substitution: a binding store mapping variable names to terms.
// Bindings may chain (X -> Y, Y -> 3); Walk and Resolve follow chains.
//
// The store is destructive with an undo trail, in the style of the WAM:
// every Bind pushes a record on the trail, Mark snapshots the trail height,
// and Undo(mark) pops bindings back to the snapshot. The solver uses marks
// at choice points instead of cloning the map, so a resolution step costs
// O(bindings made on that step) rather than O(all bindings so far).
type Subst struct {
	m     map[string]Term
	trail []trailEntry
}

// trailEntry records one Bind so Undo can reverse it. prev/hadPrev guard
// the (never-exercised by Unify, but legal via Bind) rebinding case.
type trailEntry struct {
	name    string
	prev    Term
	hadPrev bool
}

// NewSubst returns an empty substitution. The underlying map is allocated
// lazily on the first Bind, so ground-only uses (arithmetic folding,
// constraint deciding) cost one small struct allocation and no map.
func NewSubst() *Subst { return &Subst{} }

// Len returns the number of live bindings.
func (s *Subst) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Lookup returns the direct binding of the named variable, if any. It does
// not follow chains; use Walk or Resolve for dereferencing.
func (s *Subst) Lookup(name string) (Term, bool) {
	if s == nil {
		return nil, false
	}
	t, ok := s.m[name]
	return t, ok
}

// Mark returns a checkpoint of the current trail height. Pass it to Undo
// to roll every later binding back.
func (s *Subst) Mark() int { return len(s.trail) }

// Undo rolls the store back to a checkpoint previously returned by Mark.
// Bindings made since are removed (or restored, if they overwrote).
func (s *Subst) Undo(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		e := s.trail[i]
		if e.hadPrev {
			s.m[e.name] = e.prev
		} else {
			delete(s.m, e.name)
		}
		s.trail[i] = trailEntry{} // drop term references eagerly
	}
	s.trail = s.trail[:mark]
}

// Clone returns an independent copy of the live bindings. The trail is not
// copied: a clone is a fresh store whose Mark starts at zero. Snapshot
// semantics for sub-derivations are cheaper via Mark/Undo; Clone remains
// for callers that need a store outliving the solver's backtracking.
func (s *Subst) Clone() *Subst {
	c := &Subst{}
	if len(s.m) > 0 {
		c.m = make(map[string]Term, len(s.m)+4)
		for k, v := range s.m {
			c.m[k] = v
		}
	}
	return c
}

// Walk dereferences t one level at a time until it is not a bound variable.
// Compound arguments are not resolved; use Resolve for a deep rewrite.
// A nil *Subst is a valid empty substitution for read-only use.
func (s *Subst) Walk(t Term) Term {
	if s == nil {
		return t
	}
	for {
		v, ok := t.(Variable)
		if !ok {
			return t
		}
		b, ok := s.m[v.Name]
		if !ok {
			return t
		}
		t = b
	}
}

// Resolve rewrites t, replacing every bound variable with its binding,
// recursively. Unbound variables remain.
func (s *Subst) Resolve(t Term) Term {
	t = s.Walk(t)
	c, ok := t.(Compound)
	if !ok {
		return t
	}
	return s.ResolveCompound(c)
}

// ResolveCompound is Resolve specialized to a Compound root: it returns
// the concrete type, sparing callers (and the solver's emit path) an
// interface boxing per call.
func (s *Subst) ResolveCompound(c Compound) Compound {
	args := make([]Term, len(c.Args))
	for i, a := range c.Args {
		args[i] = s.Resolve(a)
	}
	return Compound{Functor: c.Functor, Args: args}
}

// Bind records v -> t on the trail. It does not check for cycles; Unify
// performs the occurs check when enabled.
func (s *Subst) Bind(v Variable, t Term) {
	if s.m == nil {
		s.m = make(map[string]Term, 8)
		s.trail = make([]trailEntry, 0, 16)
	}
	prev, hadPrev := s.m[v.Name]
	s.trail = append(s.trail, trailEntry{name: v.Name, prev: prev, hadPrev: hadPrev})
	s.m[v.Name] = t
}

// Unify attempts to unify a and b under s, mutating s in place. On failure
// it rolls its own bindings back, so s is observably unchanged (the trail
// makes this cheap; callers no longer need to clone defensively). The
// occurs check is always on: mediation rewrites terms into SQL, where
// cyclic terms would be fatal, and the clause bodies are small enough that
// the cost is negligible.
func Unify(a, b Term, s *Subst) bool {
	mark := s.Mark()
	if unify(a, b, s) {
		return true
	}
	s.Undo(mark)
	return false
}

func unify(a, b Term, s *Subst) bool {
	a, b = s.Walk(a), s.Walk(b)
	if av, ok := a.(Variable); ok {
		if bv, ok := b.(Variable); ok && av.Name == bv.Name {
			return true
		}
		if occurs(av, b, s) {
			return false
		}
		s.Bind(av, b)
		return true
	}
	if bv, ok := b.(Variable); ok {
		if occurs(bv, a, s) {
			return false
		}
		s.Bind(bv, a)
		return true
	}
	switch a := a.(type) {
	case Atom:
		b, ok := b.(Atom)
		return ok && a == b
	case Number:
		b, ok := b.(Number)
		return ok && a == b
	case Str:
		b, ok := b.(Str)
		return ok && a == b
	case Compound:
		b, ok := b.(Compound)
		if !ok || a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !unify(a.Args[i], b.Args[i], s) {
				return false
			}
		}
		return true
	}
	return false
}

func occurs(v Variable, t Term, s *Subst) bool {
	t = s.Walk(t)
	switch t := t.(type) {
	case Variable:
		return t.Name == v.Name
	case Compound:
		for _, a := range t.Args {
			if occurs(v, a, s) {
				return true
			}
		}
	}
	return false
}

// Unifiable reports whether a and b unify, without disturbing s. It trial-
// unifies against s itself and rolls back to a checkpoint, so no clone is
// made.
func Unifiable(a, b Term, s *Subst) bool {
	mark := s.Mark()
	ok := Unify(a, b, s)
	s.Undo(mark)
	return ok
}
