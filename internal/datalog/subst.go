package datalog

// Subst is a substitution: a binding of variable names to terms. Bindings
// may chain (X -> Y, Y -> 3); Walk and Resolve follow chains.
//
// Substitutions are persistent in spirit but implemented as mutable maps
// that the solver clones at choice points; clause bodies are small, so the
// copying cost is dominated by unification itself.
type Subst map[string]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return Subst{} }

// Clone returns an independent copy of s.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s)+4)
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Walk dereferences t one level at a time until it is not a bound variable.
// Compound arguments are not resolved; use Resolve for a deep rewrite.
func (s Subst) Walk(t Term) Term {
	for {
		v, ok := t.(Variable)
		if !ok {
			return t
		}
		b, ok := s[v.Name]
		if !ok {
			return t
		}
		t = b
	}
}

// Resolve rewrites t, replacing every bound variable with its binding,
// recursively. Unbound variables remain.
func (s Subst) Resolve(t Term) Term {
	t = s.Walk(t)
	c, ok := t.(Compound)
	if !ok {
		return t
	}
	args := make([]Term, len(c.Args))
	for i, a := range c.Args {
		args[i] = s.Resolve(a)
	}
	return Compound{Functor: c.Functor, Args: args}
}

// Bind records v -> t. It does not check for cycles; Unify performs the
// occurs check when enabled.
func (s Subst) Bind(v Variable, t Term) {
	s[v.Name] = t
}

// Unify attempts to unify a and b under s, mutating s in place. It returns
// false (with s possibly partially extended) on failure; callers that need
// backtracking must clone first. The occurs check is always on: mediation
// rewrites terms into SQL, where cyclic terms would be fatal, and the
// clause bodies are small enough that the cost is negligible.
func Unify(a, b Term, s Subst) bool {
	a, b = s.Walk(a), s.Walk(b)
	if av, ok := a.(Variable); ok {
		if bv, ok := b.(Variable); ok && av.Name == bv.Name {
			return true
		}
		if occurs(av, b, s) {
			return false
		}
		s.Bind(av, b)
		return true
	}
	if bv, ok := b.(Variable); ok {
		if occurs(bv, a, s) {
			return false
		}
		s.Bind(bv, a)
		return true
	}
	switch a := a.(type) {
	case Atom:
		b, ok := b.(Atom)
		return ok && a == b
	case Number:
		b, ok := b.(Number)
		return ok && a == b
	case Str:
		b, ok := b.(Str)
		return ok && a == b
	case Compound:
		b, ok := b.(Compound)
		if !ok || a.Functor != b.Functor || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !Unify(a.Args[i], b.Args[i], s) {
				return false
			}
		}
		return true
	}
	return false
}

func occurs(v Variable, t Term, s Subst) bool {
	t = s.Walk(t)
	switch t := t.(type) {
	case Variable:
		return t.Name == v.Name
	case Compound:
		for _, a := range t.Args {
			if occurs(v, a, s) {
				return true
			}
		}
	}
	return false
}

// Unifiable reports whether a and b unify, without disturbing s.
func Unifiable(a, b Term, s Subst) bool {
	return Unify(a, b, s.Clone())
}
