package datalog

import (
	"testing"
	"testing/quick"
)

func TestUnifyBasics(t *testing.T) {
	tests := []struct {
		name string
		a, b Term
		ok   bool
	}{
		{"atom-atom-equal", Atom("a"), Atom("a"), true},
		{"atom-atom-diff", Atom("a"), Atom("b"), false},
		{"atom-str-never", Atom("a"), Str("a"), false},
		{"num-num", Number(3), Number(3), true},
		{"var-anything", NewVar("X"), Comp("f", Atom("a")), true},
		{"compound-match", Comp("f", NewVar("X"), Atom("b")), Comp("f", Atom("a"), Atom("b")), true},
		{"compound-arity", Comp("f", Atom("a")), Comp("f", Atom("a"), Atom("b")), false},
		{"compound-functor", Comp("f", Atom("a")), Comp("g", Atom("a")), false},
		{"shared-var", Comp("f", NewVar("X"), NewVar("X")), Comp("f", Atom("a"), Atom("b")), false},
		{"shared-var-ok", Comp("f", NewVar("X"), NewVar("X")), Comp("f", Atom("a"), Atom("a")), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSubst()
			if got := Unify(tt.a, tt.b, s); got != tt.ok {
				t.Errorf("Unify(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.ok)
			}
		})
	}
}

func TestUnifyOccursCheck(t *testing.T) {
	s := NewSubst()
	x := NewVar("X")
	if Unify(x, Comp("f", x), s) {
		t.Error("occurs check failed: X unified with f(X)")
	}
}

func TestUnifyProducesUnifier(t *testing.T) {
	s := NewSubst()
	a := Comp("f", NewVar("X"), Comp("g", NewVar("Y")))
	b := Comp("f", Atom("a"), Comp("g", Number(2)))
	if !Unify(a, b, s) {
		t.Fatal("expected unification to succeed")
	}
	if got := s.Resolve(a); !Equal(got, b) {
		t.Errorf("Resolve(a) = %s, want %s", got, b)
	}
}

func TestUnifyChains(t *testing.T) {
	s := NewSubst()
	x, y, z := NewVar("X"), NewVar("Y"), NewVar("Z")
	if !Unify(x, y, s) || !Unify(y, z, s) || !Unify(z, Number(7), s) {
		t.Fatal("chain unification failed")
	}
	for _, v := range []Variable{x, y, z} {
		if got := s.Resolve(v); !Equal(got, Number(7)) {
			t.Errorf("Resolve(%s) = %s, want 7", v, got)
		}
	}
}

// Property: a successful unifier makes both terms structurally equal after
// Resolve (soundness of MGU).
func TestUnifySoundnessProperty(t *testing.T) {
	f := func(a, b randTerm) bool {
		s := NewSubst()
		if !Unify(a.T, b.T, s) {
			return true // nothing to check
		}
		return Equal(s.Resolve(a.T), s.Resolve(b.T))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: unification is symmetric in success.
func TestUnifySymmetryProperty(t *testing.T) {
	f := func(a, b randTerm) bool {
		return Unify(a.T, b.T, NewSubst()) == Unify(b.T, a.T, NewSubst())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: unifying a term with itself always succeeds and binds nothing
// observable (idempotence).
func TestUnifySelfProperty(t *testing.T) {
	f := func(a randTerm) bool {
		s := NewSubst()
		if !Unify(a.T, a.T, s) {
			return false
		}
		return Equal(s.Resolve(a.T), s.Resolve(a.T))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSubst()
	s.Bind(NewVar("X"), Atom("a"))
	c := s.Clone()
	c.Bind(NewVar("Y"), Atom("b"))
	if _, ok := s.Lookup("Y"); ok {
		t.Error("Clone is not independent: binding leaked to original")
	}
	if got := c.Resolve(NewVar("X")); !Equal(got, Atom("a")) {
		t.Error("Clone lost existing binding")
	}
}

func TestUnifiableDoesNotMutate(t *testing.T) {
	s := NewSubst()
	if !Unifiable(NewVar("X"), Atom("a"), s) {
		t.Fatal("expected unifiable")
	}
	if s.Len() != 0 {
		t.Error("Unifiable mutated the substitution")
	}
}
