package datalog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{NewVar("X"), "X"},
		{Atom("usd"), "usd"},
		{Number(42), "42"},
		{Number(0.0096), "0.0096"},
		{Str("IBM"), `"IBM"`},
		{Comp("rate", Atom("usd"), Atom("jpy"), NewVar("R")), "rate(usd, jpy, R)"},
		{Comp(FuncMul, NewVar("V"), Number(1000)), "V * 1000"},
		{Comp(FuncMul, Comp(FuncAdd, NewVar("A"), Number(1)), Number(2)), "(A + 1) * 2"},
		{Comp(FuncAdd, NewVar("A"), Comp(FuncMul, Number(1), Number(2))), "A + 1 * 2"},
	}
	for _, tt := range tests {
		if got := tt.term.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.term, got, tt.want)
		}
	}
}

func TestIsGround(t *testing.T) {
	if IsGround(NewVar("X")) {
		t.Error("variable reported ground")
	}
	if !IsGround(Comp("f", Atom("a"), Number(1), Str("s"))) {
		t.Error("ground compound reported non-ground")
	}
	if IsGround(Comp("f", Atom("a"), Comp("g", NewVar("Y")))) {
		t.Error("compound with nested var reported ground")
	}
}

func TestVarSet(t *testing.T) {
	term := Comp("f", NewVar("B"), Comp("g", NewVar("A"), NewVar("B")))
	got := VarSet(term)
	want := []string{"A", "B"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("VarSet = %v, want %v", got, want)
	}
}

func TestEqualAndCompare(t *testing.T) {
	a := Comp("f", Atom("x"), Number(1))
	b := Comp("f", Atom("x"), Number(1))
	c := Comp("f", Atom("x"), Number(2))
	if !Equal(a, b) {
		t.Error("identical compounds not Equal")
	}
	if Equal(a, c) {
		t.Error("different compounds Equal")
	}
	if Compare(a, b) != 0 {
		t.Error("Compare of equal terms != 0")
	}
	if Compare(a, c) >= 0 {
		t.Error("Compare(f(x,1), f(x,2)) should be < 0")
	}
	if Compare(Number(1), Atom("a")) >= 0 {
		t.Error("numbers should order before atoms")
	}
	if Compare(Atom("a"), NewVar("X")) >= 0 {
		t.Error("atoms should order before variables")
	}
}

// genTerm generates a random term of bounded depth for property tests.
func genTerm(r *rand.Rand, depth int) Term {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return NewVar(string(rune('A' + r.Intn(6))))
		case 1:
			return Atom(string(rune('a' + r.Intn(6))))
		case 2:
			return Number(r.Intn(10))
		default:
			return Str(string(rune('p' + r.Intn(4))))
		}
	}
	n := 1 + r.Intn(3)
	args := make([]Term, n)
	for i := range args {
		args[i] = genTerm(r, depth-1)
	}
	return Compound{Functor: string(rune('f' + r.Intn(3))), Args: args}
}

// randTerm adapts genTerm to testing/quick's Generator-less interface via a
// wrapper value.
type randTerm struct{ T Term }

func (randTerm) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randTerm{T: genTerm(r, 3)})
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	f := func(a, b randTerm) bool {
		return Compare(a.T, b.T) == -Compare(b.T, a.T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Reflexivity via Equal.
	g := func(a randTerm) bool {
		return (Compare(a.T, a.T) == 0) == Equal(a.T, a.T) && Equal(a.T, a.T)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRenamerConsistency(t *testing.T) {
	counter := 0
	r := newRenamer(&counter)
	in := Comp("f", NewVar("X"), Comp("g", NewVar("X"), NewVar("Y")))
	out := r.rename(in).(Compound)
	x1 := out.Args[0].(Variable)
	g := out.Args[1].(Compound)
	x2 := g.Args[0].(Variable)
	y := g.Args[1].(Variable)
	if x1.Name != x2.Name {
		t.Errorf("same source var renamed inconsistently: %s vs %s", x1.Name, x2.Name)
	}
	if x1.Name == y.Name {
		t.Errorf("distinct source vars renamed to same name %s", x1.Name)
	}
	if x1.Name == "X" {
		t.Error("renamed variable kept its source name")
	}
}
