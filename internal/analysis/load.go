package analysis

// Package loading without golang.org/x/tools: `go list -export -deps
// -json` enumerates the packages (and produces export data in the build
// cache), the target packages are re-parsed from source, and imports
// resolve through go/importer's gc importer reading that export data.
// This is the same layering go/packages uses, reduced to what the linter
// needs: syntax + full type information for the packages under analysis,
// export-data stubs for everything they import.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	imports map[string]*types.Package
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
}

// Loader resolves and type-checks packages of one module.
type Loader struct {
	// ModuleDir is the module root `go list` runs in.
	ModuleDir string

	fset     *token.FileSet
	exports  map[string]string // import path -> export data file
	listed   map[string]*listedPkg
	imported map[string]*types.Package // packages materialized from export data
	imp      types.Importer
}

// NewLoader prepares a loader rooted at moduleDir.
func NewLoader(moduleDir string) *Loader {
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   map[string]string{},
		listed:    map[string]*listedPkg{},
		imported:  map[string]*types.Package{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l
}

// list runs `go list -export -deps -json` over patterns and records the
// results (export data locations in particular).
func (l *Loader) list(patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		l.listed[p.ImportPath] = &p
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// lookupExport feeds the gc importer from the `go list -export` results.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(f)
}

// Load lists patterns (e.g. "./..."), then parses and type-checks every
// non-dependency match from source, returning them in deterministic
// (import path) order. Test files are not analyzed.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	if err := l.importModulePackages(); err != nil {
		return nil, err
	}
	// -deps emits dependencies first and the named packages last; keep
	// only packages actually matching the patterns: the ones inside the
	// module (non-standard) that the deps closure didn't add for an
	// outside package. `go list` marks pattern matches implicitly by
	// order, so re-list without -deps to get the exact match set.
	matchArgs := append([]string{"list", "-json=ImportPath"}, patterns...)
	cmd := exec.Command("go", matchArgs...)
	cmd.Dir = l.ModuleDir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list (match set) %v: %v", patterns, err)
	}
	matches := map[string]bool{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding match set: %v", err)
		}
		matches[p.ImportPath] = true
	}
	var result []*Package
	for _, lp := range listed {
		if !matches[lp.ImportPath] || lp.Standard || lp.ForTest != "" {
			continue
		}
		pkg, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		result = append(result, pkg)
	}
	return result, nil
}

// LoadDir parses and type-checks the single package in dir (an
// analysistest fixture), giving it the stated import path — fixtures can
// thereby impersonate any package location (e.g. a path inside or outside
// a pass's allowlist). Imports resolve against the module's packages, so
// the module itself must have been listed first; the harness's Load of
// "./..." does that.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	if len(l.exports) == 0 {
		// Populate export data for the module's packages and the standard
		// library dependencies fixtures may import.
		if _, err := l.list([]string{"./..."}); err != nil {
			return nil, err
		}
		if err := l.importModulePackages(); err != nil {
			return nil, err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture dir %s has no Go files", dir)
	}
	return l.checkFiles(asPath, dir, files)
}

// check type-checks one listed package from source.
func (l *Loader) check(lp *listedPkg) (*Package, error) {
	files := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		files[i] = filepath.Join(lp.Dir, f)
	}
	return l.checkFiles(lp.ImportPath, lp.Dir, files)
}

// checkFiles parses the given files and type-checks them as one package
// under the given import path.
func (l *Loader) checkFiles(path, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", f, err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		// Fixtures exercise contract violations, not soundness holes;
		// anything that actually fails to compile should fail the load.
		Error: nil,
	}
	tpkg, err := conf.Check(path, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", path, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
		imports:    l.imported,
	}, nil
}

// Import implements types.Importer over the export data. It always
// delegates to the gc importer — whose internal cache guarantees one
// types.Package per path, completing earlier dependency stubs in place —
// and records the result for LookupImport. Memoizing here instead would
// freeze incomplete stubs: the importer materializes a dependency's
// package lazily, so the stub it hands back for a transitive import must
// never shadow the real load.
func (l *Loader) Import(path string) (*types.Package, error) {
	p, err := l.imp.Import(path)
	if err != nil {
		return nil, err
	}
	l.register(p)
	return p, nil
}

// register records p and its transitive imports, so a pass can resolve a
// contract package (say, the wrapper interfaces) that the package under
// analysis only reaches indirectly — e.g. a caller importing one concrete
// source package and nothing else. A complete package replaces a
// previously recorded stub.
func (l *Loader) register(p *types.Package) {
	if p == nil {
		return
	}
	if prev, ok := l.imported[p.Path()]; ok && (prev.Complete() || !p.Complete()) {
		return
	}
	l.imported[p.Path()] = p
	for _, imp := range p.Imports() {
		l.register(imp)
	}
}

// importModulePackages force-imports every listed module package with
// export data, so LookupImport serves complete contract packages (an
// incomplete stub would resolve interface lookups to nothing).
func (l *Loader) importModulePackages() error {
	for path, lp := range l.listed {
		if lp.Standard || lp.ForTest != "" || l.exports[path] == "" {
			continue
		}
		if _, err := l.Import(path); err != nil {
			return fmt.Errorf("analysis: importing %s: %v", path, err)
		}
	}
	return nil
}
