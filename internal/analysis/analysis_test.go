package analysis

// Fixture-driven tests for the five passes plus the //lint:allow
// mechanics. Fixtures live under testdata/src and are loaded under
// chosen import paths so they can sit inside or outside a pass's
// allowlist at will.

import (
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	testLoader *Loader
)

// loader shares one Loader (and thus one `go list -export` sweep and one
// FileSet) across all tests.
func loader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLoader = NewLoader("../..")
	})
	return testLoader
}

// runFixture applies one analyzer to a fixture dir and reports every
// mismatch against its `// want` comments.
func runFixture(t *testing.T, dir, asPath string, a *Analyzer) {
	t.Helper()
	problems, err := CheckFixture(loader(t), "testdata/src/"+dir, asPath, []*Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestBatchRetainFixtures(t *testing.T) {
	runFixture(t, "batchretain_bad", "repro/internal/fixture/batchretain", BatchRetainAnalyzer)
	runFixture(t, "batchretain_good", "repro/internal/fixture/batchretain", BatchRetainAnalyzer)
}

func TestCtxFlowFixtures(t *testing.T) {
	runFixture(t, "ctxflow_bad", "repro/internal/fixture/ctxflow", CtxFlowAnalyzer)
	runFixture(t, "ctxflow_good", "repro/internal/fixture/ctxflow", CtxFlowAnalyzer)
	// package main owns its lifecycle roots: no findings.
	runFixture(t, "ctxflow_main", "repro/cmd/fixture", CtxFlowAnalyzer)
}

func TestSourceFunnelFixtures(t *testing.T) {
	runFixture(t, "sourcefunnel_bad", "repro/internal/fixture/funnel", SourceFunnelAnalyzer)
	runFixture(t, "sourcefunnel_good", "repro/internal/fixture/funnel", SourceFunnelAnalyzer)
}

// TestSourceFunnelAllowlist loads the seeded-violation fixture under the
// planner's own import path: the identical code must produce zero
// findings there.
func TestSourceFunnelAllowlist(t *testing.T) {
	pkg, err := loader(t).LoadDir("testdata/src/sourcefunnel_bad", "repro/internal/planner")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{SourceFunnelAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("allowlisted path still flagged: %s", d)
	}
}

func TestCloseBalanceFixtures(t *testing.T) {
	runFixture(t, "closebalance_bad", "repro/internal/fixture/closebalance", CloseBalanceAnalyzer)
	runFixture(t, "closebalance_good", "repro/internal/fixture/closebalance", CloseBalanceAnalyzer)
}

func TestErrClassFixtures(t *testing.T) {
	runFixture(t, "errclass_bad", "repro/internal/wrapper/fixturesrc", ErrClassAnalyzer)
	runFixture(t, "errclass_good", "repro/internal/wrapper/fixturesrc", ErrClassAnalyzer)
}

// TestErrClassScopedToWrapperLayer loads the seeded-violation fixture
// outside the wrapper tree: classification is the wrapper layer's duty,
// so nothing may be flagged elsewhere.
func TestErrClassScopedToWrapperLayer(t *testing.T) {
	pkg, err := loader(t).LoadDir("testdata/src/errclass_bad", "repro/internal/fixture/errclass")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{ErrClassAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("non-wrapper path still flagged: %s", d)
	}
}

// TestAllowMechanics pins the suppression semantics: a standalone allow
// covers exactly the next line (the neighboring violation survives), a
// same-line allow covers its own line, a stale allow and a reason-less
// allow are themselves findings.
func TestAllowMechanics(t *testing.T) {
	pkg, err := loader(t).LoadDir("testdata/src/allowtest", "repro/internal/fixture/allowtest")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{CtxFlowAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		analyzer string
		substr   string
	}{
		{"ctxflow", "severs session cancellation"}, // the unsuppressed neighbor
		{"lint", "unused //lint:allow ctxflow"},    // the stale allow
		{"lint", "malformed //lint:allow"},         // the reason-less allow
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if diags[i].Analyzer != w.analyzer || !strings.Contains(diags[i].Message, w.substr) {
			t.Errorf("diag %d = %s; want analyzer %s message containing %q",
				i, diags[i], w.analyzer, w.substr)
		}
	}
}

// TestSuiteRoster pins the analyzer set `make lint` runs.
func TestSuiteRoster(t *testing.T) {
	names := []string{"batchretain", "ctxflow", "sourcefunnel", "closebalance", "errclass"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(names))
	}
	for i, n := range names {
		if all[i].Name != n {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, n)
		}
		if ByName(n) != all[i] {
			t.Errorf("ByName(%s) did not resolve", n)
		}
	}
}
