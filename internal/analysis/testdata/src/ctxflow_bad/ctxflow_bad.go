// Package fixture seeds ctxflow violations: fresh root contexts minted
// in library code, with and without a better context in scope.
package fixture

import "context"

type session struct {
	ctx context.Context
	id  string
}

// probe has ctx as a parameter and discards it.
func probe(ctx context.Context, rel string) int {
	c := context.Background() // want "discards the context already in scope"
	_ = c
	return estimate(context.TODO(), rel) // want "discards the context already in scope"
}

// run has a receiver carrying a context field and ignores it.
func (s *session) run() error {
	c := context.Background() // want "discards the context already in scope"
	_ = c
	return nil
}

// detached has no context anywhere — still a violation in library code.
func detached(rel string) int {
	return estimate(context.Background(), rel) // want "severs session cancellation"
}

// inLiteral reaches the enclosing function's ctx from a closure.
func inLiteral(ctx context.Context) func() int {
	return func() int {
		c := context.TODO() // want "discards the context already in scope"
		_ = c
		return 0
	}
}

func estimate(ctx context.Context, rel string) int {
	_ = ctx
	return len(rel)
}
