// Package fixture seeds batchretain violations: every flagged line
// retains batch storage across a Next or past Close without a copy.
package fixture

import (
	"context"

	"repro/internal/relalg"
)

// bufferRows is the PR-8 bug class: buffering row aliases while pulling.
func bufferRows(ctx context.Context, it relalg.Iterator) ([]relalg.Tuple, error) {
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	var keep []relalg.Tuple
	for {
		b, err := it.Next(64)
		if err != nil {
			it.Close()
			return nil, err
		}
		if len(b.Rows) == 0 {
			break
		}
		for _, row := range b.Rows {
			keep = append(keep, row) // want "batch row retained across Next"
		}
	}
	return keep, it.Close()
}

// spreadRows retains every row header of each batch.
func spreadRows(ctx context.Context, it relalg.Iterator) ([]relalg.Tuple, error) {
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	var all []relalg.Tuple
	for {
		b, err := it.Next(0)
		if err != nil {
			it.Close()
			return nil, err
		}
		if len(b.Rows) == 0 {
			break
		}
		all = append(all, b.Rows...) // want "batch rows slice retained across Next"
	}
	return all, it.Close()
}

// holdBatch stores the whole batch outside the pull loop.
func holdBatch(ctx context.Context, it relalg.Iterator) (relalg.Batch, error) {
	if err := it.Open(ctx); err != nil {
		return relalg.Batch{}, err
	}
	var last relalg.Batch
	for {
		b, err := it.Next(32)
		if err != nil {
			it.Close()
			return relalg.Batch{}, err
		}
		if len(b.Rows) == 0 {
			break
		}
		last = b // want "batch retained across Next"
	}
	return last, it.Close()
}

// chunk mimics the exchange operators' cross-worker handoff envelope.
type chunk struct {
	rows []relalg.Tuple
}

// handoffAlias ships live batch storage to another worker's timeline:
// the producer re-pulls (recycling the backing array) while the consumer
// still reads it. Wrapping the alias in a composite literal does not
// launder it.
func handoffAlias(ctx context.Context, it relalg.Iterator, out chan chunk) error {
	if err := it.Open(ctx); err != nil {
		return err
	}
	for {
		b, err := it.Next(64)
		if err != nil {
			it.Close()
			return err
		}
		if len(b.Rows) == 0 {
			return it.Close()
		}
		out <- chunk{rows: b.Rows} // want "batch rows slice retained across Next .sent on a channel."
	}
}

// useAfterClose reads rows after the iterator was closed.
func useAfterClose(ctx context.Context, it relalg.Iterator) []relalg.Tuple {
	if err := it.Open(ctx); err != nil {
		return nil
	}
	b, err := it.Next(16)
	if err != nil {
		it.Close()
		return nil
	}
	it.Close()
	return b.Rows // want "batch b used after its iterator's Close"
}
