// Package fixture is the fixed twin of ctxflow_bad: contexts thread
// through instead of being re-minted, and deliberate detachment carries
// an allow.
package fixture

import "context"

type session struct {
	ctx context.Context
	id  string
}

func probe(ctx context.Context, rel string) int {
	return estimate(ctx, rel)
}

func (s *session) run() error {
	_ = estimate(s.ctx, s.id)
	return nil
}

// detach is deliberately background work and says so.
func detach(rel string) int {
	//lint:allow ctxflow fixture: deliberately detached maintenance work
	return estimate(context.Background(), rel)
}

func estimate(ctx context.Context, rel string) int {
	_ = ctx
	return len(rel)
}
