// Package fixture is the fixed twin of errclass_bad: every fault leaves
// through the taxonomy.
package fixture

import (
	"context"
	"database/sql"
	"fmt"
	"io"
	"net/http"

	"repro/internal/wrapper"
)

func fetch(ctx context.Context, c *http.Client, url string) ([]byte, error) {
	req, reqErr := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if reqErr != nil {
		return nil, reqErr
	}
	resp, err := c.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // the query died, not the source: exempt
		}
		return nil, wrapper.Transient(fmt.Errorf("fetch %s: %w", url, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, wrapper.ClassifyHTTPStatus(resp.StatusCode, resp.Header.Get("Retry-After"),
			fmt.Errorf("fetch %s: status %d", url, resp.StatusCode))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, wrapper.Transient(fmt.Errorf("fetch %s: read: %w", url, err))
	}
	return body, nil
}

func countRows(ctx context.Context, db *sql.DB, table string) (int, error) {
	rows, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM "+table)
	if err != nil {
		return 0, wrapper.Transient(fmt.Errorf("count %s: %w", table, err))
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		return 0, wrapper.Transient(fmt.Errorf("cursor: %w", err))
	}
	return n, nil
}
