// Package fixture exercises the //lint:allow mechanics: a standalone
// allow covering the next line, a same-line allow, an unsuppressed
// violation right next to a suppressed one, a stale allow, and a
// malformed allow. The test asserts the exact surviving diagnostics.
package fixture

import "context"

func covered(rel string) int {
	//lint:allow ctxflow fixture: deliberately detached work
	c := context.Background()
	_ = c
	return estimate(context.TODO(), rel) // the neighbor is NOT suppressed
}

func sameLine(rel string) int {
	return estimate(context.Background(), rel) //lint:allow ctxflow fixture: same-line suppression
}

//lint:allow ctxflow fixture: stale, excuses nothing
func stale(rel string) int {
	return len(rel)
}

//lint:allow ctxflow
func malformed(rel string) int {
	return len(rel)
}

func estimate(ctx context.Context, rel string) int {
	_ = ctx
	return len(rel)
}
