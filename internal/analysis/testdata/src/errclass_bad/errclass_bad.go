// Package fixture seeds errclass violations: wrapper-layer faults
// escaping without taxonomy classification. The harness loads it under a
// path inside repro/internal/wrapper/, where the pass applies.
package fixture

import (
	"context"
	"database/sql"
	"fmt"
	"io"
	"net/http"
)

// fetch leaks both the raw transport error and a fmt.Errorf-wrapped one.
func fetch(ctx context.Context, c *http.Client, url string) ([]byte, error) {
	req, reqErr := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if reqErr != nil {
		return nil, reqErr // not a fault source: no classification duty
	}
	resp, err := c.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // the query died, not the source: exempt
		}
		return nil, fmt.Errorf("fetch %s: %w", url, err) // want "fmt.Errorf wraps an unclassified fault"
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err // want "unclassified fault err returned"
	}
	return body, nil
}

// countRows leaks a database error raw.
func countRows(ctx context.Context, db *sql.DB, table string) (int, error) {
	rows, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM "+table)
	if err != nil {
		return 0, err // want "unclassified fault err returned"
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		return 0, fmt.Errorf("cursor: %w", err) // want "fmt.Errorf wraps an unclassified fault"
	}
	return n, nil
}
