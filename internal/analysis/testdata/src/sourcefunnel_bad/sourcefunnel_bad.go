// Package fixture seeds sourcefunnel violations: direct wrapper calls
// from a package that is not the access layer. The harness loads it
// under a non-allowlisted import path; the allowlist behavior itself is
// exercised by loading this same package under the planner's path.
package fixture

import (
	"context"

	"repro/internal/wrapper"
)

func direct(ctx context.Context, w wrapper.Wrapper, q wrapper.SourceQuery) error {
	rel, err := w.Query(ctx, q) // want "bypasses the access layer"
	if err != nil {
		return err
	}
	_ = rel
	return nil
}

func directStream(ctx context.Context, w wrapper.Wrapper, q wrapper.SourceQuery) error {
	st, err := wrapper.QueryStream(ctx, w, q) // want "bypasses the access layer"
	if err != nil {
		return err
	}
	return st.Close()
}

func directStreamer(ctx context.Context, s wrapper.Streamer, q wrapper.SourceQuery) error {
	st, err := s.QueryStream(ctx, q) // want "bypasses the access layer"
	if err != nil {
		return err
	}
	return st.Close()
}
