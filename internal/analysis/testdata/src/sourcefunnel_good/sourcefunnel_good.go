// Package fixture is the fixed twin of sourcefunnel_bad: no direct
// wrapper calls — source access goes through whatever facade the planner
// exposes, and look-alike Query methods on unrelated types stay silent.
package fixture

import (
	"context"
	"net/url"
)

// planner stands in for the access-layer facade the real code calls.
type planner interface {
	Execute(ctx context.Context, query string) error
}

func routed(ctx context.Context, p planner, query string) error {
	return p.Execute(ctx, query)
}

// lookAlike calls url.Values.Query-style methods that must not trip the
// wrapper-interface match.
func lookAlike(u *url.URL) string {
	return u.Query().Get("q")
}
