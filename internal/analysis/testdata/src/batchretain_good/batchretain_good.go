// Package fixture is the fixed twin of batchretain_bad: every retention
// either copies first or stays within the batch's validity window.
package fixture

import (
	"context"

	"repro/internal/relalg"
)

// bufferRows copies each row before buffering it — spreading a Tuple
// copies Values into a fresh array.
func bufferRows(ctx context.Context, it relalg.Iterator) ([]relalg.Tuple, error) {
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	var keep []relalg.Tuple
	for {
		b, err := it.Next(64)
		if err != nil {
			it.Close()
			return nil, err
		}
		if len(b.Rows) == 0 {
			break
		}
		for _, row := range b.Rows {
			keep = append(keep, append(relalg.Tuple(nil), row...))
		}
	}
	return keep, it.Close()
}

// countRows only inspects rows inside the validity window.
func countRows(ctx context.Context, it relalg.Iterator) (int, error) {
	if err := it.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	for {
		b, err := it.Next(0)
		if err != nil {
			it.Close()
			return 0, err
		}
		if len(b.Rows) == 0 {
			break
		}
		rows := b.Rows // an alias local to the loop body never outlives the pull
		n += len(rows)
	}
	return n, it.Close()
}

// chunk mirrors the exchange operators' cross-worker handoff envelope.
type chunk struct {
	rows []relalg.Tuple
}

// handoffCopy is the exchange handoff contract: append into a fresh
// destination materializes a new backing array before the rows cross the
// channel, decoupling the consumer from the producer's batch reuse (the
// tuples themselves are durable per the producer's contract). Both the
// inline form and the two-step form used by the scan fan-out are clean.
func handoffCopy(ctx context.Context, it relalg.Iterator, out chan chunk) error {
	if err := it.Open(ctx); err != nil {
		return err
	}
	for {
		b, err := it.Next(64)
		if err != nil {
			it.Close()
			return err
		}
		if len(b.Rows) == 0 {
			return it.Close()
		}
		out <- chunk{rows: append([]relalg.Tuple(nil), b.Rows...)}
		rows := append([]relalg.Tuple(nil), b.Rows...)
		out <- chunk{rows: rows}
	}
}

// lastValue copies a single Value out of the batch — Values are copied
// by value, so nothing aliases the arena.
func lastValue(ctx context.Context, it relalg.Iterator) (relalg.Value, error) {
	if err := it.Open(ctx); err != nil {
		return relalg.Value{}, err
	}
	var last relalg.Value
	for {
		b, err := it.Next(8)
		if err != nil {
			it.Close()
			return relalg.Value{}, err
		}
		if len(b.Rows) == 0 {
			break
		}
		for _, row := range b.Rows {
			last = row[len(row)-1]
		}
	}
	return last, it.Close()
}
