// Command fixture: package main owns its lifecycle roots, so minting a
// root context is not a finding here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = work(ctx)
}

func work(ctx context.Context) error {
	_ = ctx
	return nil
}
