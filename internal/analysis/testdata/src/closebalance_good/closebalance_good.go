// Package fixture is the fixed twin of closebalance_bad: every open is
// balanced by a defer, a close on each path, or an ownership transfer.
package fixture

import (
	"context"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// deferred balances with a single defer.
func deferred(ctx context.Context, it relalg.Iterator) (int, error) {
	if err := it.Open(ctx); err != nil {
		return 0, err
	}
	defer it.Close()
	n := 0
	for {
		b, err := it.Next(64)
		if err != nil {
			return n, err
		}
		if len(b.Rows) == 0 {
			return n, nil
		}
		n += len(b.Rows)
	}
}

// perPath closes before every return, Collect-style.
func perPath(ctx context.Context, it relalg.Iterator) (int, error) {
	if err := it.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	for {
		b, err := it.Next(64)
		if err != nil {
			it.Close()
			return n, err
		}
		if len(b.Rows) == 0 {
			break
		}
		n += len(b.Rows)
	}
	return n, it.Close()
}

// transfer hands the opened stream to the caller, who owns the Close.
func transfer(ctx context.Context, w wrapper.Wrapper, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	st, err := wrapper.QueryStream(ctx, w, q)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// exchangeOp is the parallel-scan operator shape: runPart (a worker
// goroutine body) opens an iterator living in the operator's fields, and
// the operator's Close — after teardown — releases every part. The open
// in runPart is receiver-owned even though it sits on a local alias.
type exchangeOp struct {
	subs []relalg.Iterator
}

func (o *exchangeOp) runPart(ctx context.Context, p int) error {
	sub := o.subs[p]
	if err := sub.Open(ctx); err != nil { // receiver-owned: Close below releases it
		return err
	}
	for {
		b, err := sub.Next(64)
		if err != nil {
			return err
		}
		if len(b.Rows) == 0 {
			return nil
		}
	}
}

func (o *exchangeOp) Close() error {
	var err error
	for _, sub := range o.subs {
		if cerr := sub.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
