// Package fixture seeds closebalance violations: iterators and streams
// opened but not closed on every path.
package fixture

import (
	"context"
	"errors"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// neverClosed drains but never releases.
func neverClosed(ctx context.Context, it relalg.Iterator) (int, error) {
	if err := it.Open(ctx); err != nil { // want "never closed on any path"
		return 0, err
	}
	n := 0
	for {
		b, err := it.Next(64)
		if err != nil {
			return n, err
		}
		if len(b.Rows) == 0 {
			return n, nil
		}
		n += len(b.Rows)
	}
}

// leakOnError closes on the happy path but leaks when Next fails.
func leakOnError(ctx context.Context, it relalg.Iterator) (int, error) {
	if err := it.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	for {
		b, err := it.Next(64)
		if err != nil {
			return n, err // want "return leaks it"
		}
		if len(b.Rows) == 0 {
			break
		}
		n += len(b.Rows)
	}
	return n, it.Close()
}

// workerNoOwner mimics the exchange-worker shape but reaches the part
// iterator through a parameter, not a receiver: no operator Close owns
// these parts, so the leak is real.
func workerNoOwner(ctx context.Context, subs []relalg.Iterator, p int) error {
	sub := subs[p]
	if err := sub.Open(ctx); err != nil { // want "never closed on any path"
		return err
	}
	for {
		b, err := sub.Next(64)
		if err != nil {
			return err
		}
		if len(b.Rows) == 0 {
			return nil
		}
	}
}

// streamNeverClosed acquires a TupleStream and drops it.
func streamNeverClosed(ctx context.Context, w wrapper.Wrapper, q wrapper.SourceQuery) error {
	st, err := wrapper.QueryStream(ctx, w, q) // want "never closed on any path"
	if err != nil {
		return err
	}
	_, ok, err := st.Next()
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("empty")
	}
	return nil
}
