package analysis

// Running analyzers over loaded packages and the `// want` fixture
// harness (analysistest.go's moral equivalent) live here.

import (
	"fmt"
	"regexp"
	"sort"
)

// All returns the full engine-invariant suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BatchRetainAnalyzer,
		CtxFlowAnalyzer,
		SourceFunnelAnalyzer,
		CloseBalanceAnalyzer,
		ErrClassAnalyzer,
	}
}

// ByName resolves an analyzer from All by name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to each package, applies //lint:allow
// suppression, and returns the surviving findings in deterministic order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				imports:  pkg.imports,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, pass.diags...)
		}
		allows := collectAllows(pkg.Fset, pkg.Files, func(d Diagnostic) {
			diags = append(diags, d)
		})
		all = append(all, applyAllows(diags, allows, pkg.Fset, ran)...)
	}
	sortDiagnostics(all)
	return all, nil
}

// wantRx matches fixture expectations: `// want "regexp"`, repeatable on
// one line for multiple expected findings.
var wantRx = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` marker in a fixture.
type expectation struct {
	line int
	rx   *regexp.Regexp
	hit  bool
}

// CheckFixture runs the analyzers over the fixture package in dir (loaded
// under asPath) and compares suppressed-and-sorted findings against the
// fixture's `// want "regexp"` comments: every finding must match a want
// on its line, and every want must be hit exactly once. It returns a
// human-readable list of mismatches (empty means the fixture passes).
func CheckFixture(l *Loader, dir, asPath string, analyzers []*Analyzer) ([]string, error) {
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		return nil, err
	}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}
	// Collect wants from the fixture's comments.
	wants := map[string][]*expectation{} // filename -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRx.FindAllStringSubmatch(c.Text, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("analysis: bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants[pos.Filename] = append(wants[pos.Filename], &expectation{line: pos.Line, rx: rx})
				}
			}
		}
	}
	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename] {
			if !w.hit && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none",
					file, w.line, w.rx))
			}
		}
	}
	// Deterministic order for test output.
	sort.Strings(problems)
	return problems, nil
}
