package analysis

// sourcefunnel: every conversation with a source must flow through the
// planner's access layer — the dispatcher applies admission control,
// retries with backoff, circuit breakers, and cost accounting (PRs 5–6).
// A direct wrapper.Query / QueryStream call anywhere else silently
// bypasses all of it: no breaker protection, no fault classification, no
// partial-answer bookkeeping. The allowlist is the access layer itself,
// the wrapper packages (they implement the calls), and cmd/coinwrap (the
// single-wrapper debugging tool, which talks to exactly one source by
// design).

import (
	"go/ast"
	"strings"
)

var SourceFunnelAnalyzer = &Analyzer{
	Name: "sourcefunnel",
	Doc: "flag direct wrapper Query/QueryStream calls outside the planner " +
		"access layer and the wrapper packages themselves",
	Run: runSourceFunnel,
}

// funnelAllowed reports whether the package path may talk to wrappers
// directly.
func funnelAllowed(path string) bool {
	switch {
	case path == plannerPath:
		return true // the access layer lives here
	case path == wrapperPath || strings.HasPrefix(path, wrapperPath+"/"):
		return true // wrapper implementations and their shared helpers
	case path == "repro/cmd/coinwrap":
		return true // single-wrapper debugging tool
	}
	return false
}

func runSourceFunnel(pass *Pass) error {
	if funnelAllowed(pass.Pkg.Path()) {
		return nil
	}
	wrapperIface := pass.namedInterface(wrapperPath, "Wrapper")
	streamerIface := pass.namedInterface(wrapperPath, "Streamer")
	if wrapperIface == nil && streamerIface == nil {
		// The package cannot reach the wrapper layer at all.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Package-level funnel bypass: wrapper.QueryStream(ctx, w, q).
			if isPkgFunc(pass.Info, call, wrapperPath, "QueryStream") {
				pass.Reportf(call.Pos(),
					"direct wrapper.QueryStream bypasses the access layer "+
						"(dispatcher admission, retries, breakers); route through the planner")
				return true
			}
			// Method form: w.Query(...) / w.QueryStream(...) on a value
			// satisfying the wrapper contracts.
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Query" && name != "QueryStream" {
				return true
			}
			recvType := pass.Info.TypeOf(sel.X)
			if recvType == nil {
				return true
			}
			var hit bool
			switch name {
			case "Query":
				hit = implementsIface(recvType, wrapperIface)
			case "QueryStream":
				hit = implementsIface(recvType, streamerIface)
			}
			if hit {
				pass.Reportf(call.Pos(),
					"direct source call %s.%s bypasses the access layer "+
						"(dispatcher admission, retries, breakers); route through the planner",
					exprString(sel.X), name)
			}
			return true
		})
	}
	return nil
}

// exprString renders a short label for an expression (best effort; used
// only in messages).
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "value"
}
