package analysis

// Shared AST/type helpers for the analyzer passes.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Paths of the contract-owning packages, shared by the passes.
const (
	relalgPath  = "repro/internal/relalg"
	wrapperPath = "repro/internal/wrapper"
	plannerPath = "repro/internal/planner"
)

// inspectWithStack walks root in depth-first order, calling fn with each
// node and its ancestor path (outermost first, not including n itself).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// funcBodies yields every function body in the file: declarations and
// literals, each with its type signature's parameter list and (for
// declarations) receiver.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{decl: fn, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{lit: fn, body: fn.Body})
		}
		return true
	})
	return out
}

// implementsIface reports whether t (or *t) satisfies iface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function/method object of a call, nil
// when the callee is not a named function (a func-typed variable, a
// conversion, a builtin).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether the call resolves to the named package-level
// function (or method, when recv is the method's receiver type name).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdent digs to the base identifier of an expression chain
// (selectors, index, slice, parens, type asserts): the x of x.f[i].g.
// nil when the chain does not bottom out in an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves the object an identifier denotes (use or def).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration position lies within
// the node's source range — i.e. the variable is local to that node.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && n != nil && obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// posWithin reports whether pos lies inside n's range.
func posWithin(pos token.Pos, n ast.Node) bool {
	return n != nil && pos >= n.Pos() && pos < n.End()
}
