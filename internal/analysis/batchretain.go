package analysis

// batchretain: the Volcano batch contract (relalg/iterator.go) makes the
// Rows slice of a Batch valid only until the consumer's next Next or
// Close call — producers reuse the backing array, and transient-marked
// pipelines (PR 8) recycle the tuple arena itself. Retaining the batch,
// its Rows slice, or an individual row across a subsequent Next without
// an explicit copy is therefore a latent use-after-recycle: exactly the
// PR-8 bug class where a buffering consumer saw its buffered tuples
// rewritten in place. Because the linter cannot prove whether a given
// pipeline will be marked transient, every uncopied retention is flagged;
// sites that deliberately rely on tuple durability (breakers draining a
// known-durable input) carry a //lint:allow batchretain stating why.
//
// The pass flags, per function:
//
//   - storing a batch-derived value (Batch, []Tuple, or a single Tuple)
//     into a destination declared outside a loop that also calls Next,
//     including via append — spreading a Tuple (append(dst, row...))
//     copies Values and is safe; spreading []Tuple (append(dst,
//     b.Rows...)) copies only the slice headers and is retention;
//   - using a batch-derived value after a non-deferred Close of the
//     iterator it came from;
//   - sending a batch-derived value on a channel from inside a re-pulling
//     loop, including aliases wrapped in a composite literal (the
//     exchange operators' chunk{rows: b.Rows} handoff shape): the
//     consumer worker reads on its own timeline while the producer
//     re-pulls. The sanctioned durable copy — append into a fresh
//     destination, which materializes a new backing array — is
//     recognized and not flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var BatchRetainAnalyzer = &Analyzer{
	Name: "batchretain",
	Doc: "flag Batch rows or Value slices retained across Next or past " +
		"Close without an explicit copy",
	Run: runBatchRetain,
}

// batchTypes bundles the resolved relalg types the pass matches against.
type batchTypes struct {
	batch   types.Type // relalg.Batch
	tuple   types.Type // relalg.Tuple
	rows    types.Type // []relalg.Tuple
	iterIfc *types.Interface
}

func resolveBatchTypes(pass *Pass) *batchTypes {
	b := pass.namedType(relalgPath, "Batch")
	t := pass.namedType(relalgPath, "Tuple")
	if b == nil || t == nil {
		return nil
	}
	return &batchTypes{
		batch:   b,
		tuple:   t,
		rows:    types.NewSlice(t),
		iterIfc: pass.namedInterface(relalgPath, "Iterator"),
	}
}

// taint records that an object aliases batch storage, and which iterator
// object (if known) produced the batch.
type taint struct {
	iter types.Object
}

func runBatchRetain(pass *Pass) error {
	bt := resolveBatchTypes(pass)
	if bt == nil {
		return nil // package cannot reach relalg
	}
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			checkBatchRetain(pass, bt, fb.body)
		}
	}
	return nil
}

// isNextCall reports whether call is it.Next(n) per the iterator
// contract: a method named Next whose first result is relalg.Batch.
func isNextCall(pass *Pass, bt *batchTypes, call *ast.CallExpr) (recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Next" {
		return nil, false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Results().Len() == 0 {
		return nil, false
	}
	if !types.Identical(sig.Results().At(0).Type(), bt.batch) {
		return nil, false
	}
	return sel.X, true
}

// derivedKind classifies an expression as batch-derived storage: the
// Batch itself, the []Tuple rows slice, or a single Tuple. Value-typed
// expressions (a field of a row) are copies and never tainted.
func derivedType(pass *Pass, bt *batchTypes, e ast.Expr) (types.Type, bool) {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return nil, false
	}
	switch {
	case types.Identical(t, bt.batch), types.Identical(t, bt.rows), types.Identical(t, bt.tuple):
		return t, true
	}
	return nil, false
}

// checkBatchRetain analyzes one function body.
func checkBatchRetain(pass *Pass, bt *batchTypes, body *ast.BlockStmt) {
	tainted := map[types.Object]*taint{}

	// taintedExpr reports whether e is batch-derived: its type is one of
	// the batch storage types and its root identifier is tainted.
	taintedExpr := func(e ast.Expr) (*taint, bool) {
		if _, ok := derivedType(pass, bt, e); !ok {
			return nil, false
		}
		root := rootIdent(ast.Unparen(e))
		if root == nil {
			return nil, false
		}
		obj := objOf(pass.Info, root)
		tn, ok := tainted[obj]
		return tn, ok
	}

	// Seed + propagate taints to a fixed point. Two sweeps handle the
	// chains that occur in practice (b := it.Next; rows := b.Rows;
	// row := rows[i]); deeper chains converge in later sweeps.
	for sweep := 0; sweep < 4; sweep++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				// Seed: b, err := it.Next(max)
				if len(st.Rhs) == 1 {
					if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
						if recv, ok := isNextCall(pass, bt, call); ok && len(st.Lhs) >= 1 {
							if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
								obj := objOf(pass.Info, id)
								if obj != nil && tainted[obj] == nil {
									var iterObj types.Object
									if r := rootIdent(recv); r != nil {
										iterObj = objOf(pass.Info, r)
									}
									tainted[obj] = &taint{iter: iterObj}
									changed = true
								}
							}
							return true
						}
					}
				}
				// Propagate: x := taintedExpr (parallel-assign aware)
				if len(st.Lhs) == len(st.Rhs) {
					for i, rhs := range st.Rhs {
						tn, ok := taintedExpr(rhs)
						if !ok {
							continue
						}
						if id, isID := st.Lhs[i].(*ast.Ident); isID && id.Name != "_" {
							obj := objOf(pass.Info, id)
							if obj != nil && tainted[obj] == nil {
								tainted[obj] = tn
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				// for _, row := range b.Rows — the value var aliases a row.
				if st.Value == nil {
					return true
				}
				tn, ok := taintedExpr(st.X)
				if !ok {
					return true
				}
				if id, isID := st.Value.(*ast.Ident); isID && id.Name != "_" {
					obj := objOf(pass.Info, id)
					if obj != nil && tainted[obj] == nil {
						tainted[obj] = tn
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	if len(tainted) == 0 {
		return
	}

	// Record every Next call position (to know which loops re-pull) and
	// every non-deferred Close per iterator object, together with its
	// innermost enclosing block: a Close only invalidates uses later in
	// that same block (an error-path Close inside an if must not poison
	// the happy path after it — that is Collect's exact shape).
	type closeSite struct {
		iter  types.Object
		pos   token.Pos
		block ast.Node
	}
	var nextPositions []token.Pos
	var closeSites []closeSite
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isNextCall(pass, bt, call); ok {
			nextPositions = append(nextPositions, call.Pos())
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
			return true
		}
		if len(stack) > 0 {
			if _, isDefer := stack[len(stack)-1].(*ast.DeferStmt); isDefer {
				return true // deferred Close runs at return; textual order is moot
			}
		}
		root := rootIdent(sel.X)
		if root == nil {
			return true
		}
		obj := objOf(pass.Info, root)
		if obj == nil {
			return true
		}
		var block ast.Node = body
		for i := len(stack) - 1; i >= 0; i-- {
			if b, isBlock := stack[i].(*ast.BlockStmt); isBlock {
				block = b
				break
			}
		}
		closeSites = append(closeSites, closeSite{iter: obj, pos: call.Pos(), block: block})
		return true
	})

	loopHasNext := func(loop ast.Node) bool {
		for _, p := range nextPositions {
			if posWithin(p, loop) {
				return true
			}
		}
		return false
	}

	// pullLoops returns every enclosing loop that re-pulls (contains a
	// Next call) — a store must be checked against each: ranging over
	// b.Rows nests a loop without Next inside the pulling loop, and the
	// retention happens relative to the outer one.
	pullLoops := func(stack []ast.Node) []ast.Node {
		var loops []ast.Node
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if loopHasNext(stack[i]) {
					loops = append(loops, stack[i])
				}
			}
		}
		return loops
	}

	// retentionDest reports whether the assignment destination outlives the
	// loop: an identifier declared outside it, or a selector/index store
	// whose base is (field and package-level destinations always outlive).
	retentionDest := func(lhs ast.Expr, loop ast.Node) bool {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := objOf(pass.Info, x)
			return obj != nil && !declaredWithin(obj, loop)
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			root := rootIdent(lhs)
			if root == nil {
				return true // conservatively outer
			}
			obj := objOf(pass.Info, root)
			return obj == nil || !declaredWithin(obj, loop)
		}
		return false
	}

	report := func(pos token.Pos, t types.Type, how string) {
		kind := "batch"
		hint := "copy the rows before storing"
		switch {
		case types.Identical(t, bt.tuple):
			kind = "batch row"
			hint = "copy it first (append(relalg.Tuple(nil), row...))"
		case types.Identical(t, bt.rows):
			kind = "batch rows slice"
		}
		pass.Reportf(pos,
			"%s retained %s: rows are valid only until the next Next/Close "+
				"(transient pipelines recycle the arena); %s or annotate //lint:allow batchretain",
			kind, how, hint)
	}

	// outlivesAnyPullLoop reports whether the destination is declared
	// outside at least one re-pulling loop enclosing the store.
	outlivesAnyPullLoop := func(lhs ast.Expr, loops []ast.Node) bool {
		for _, loop := range loops {
			if retentionDest(lhs, loop) {
				return true
			}
		}
		return false
	}

	// checkStored flags rhs if it is batch-derived and the store outlives
	// an enclosing re-pulling loop.
	checkStored := func(lhs, rhs ast.Expr, stack []ast.Node) {
		loops := pullLoops(stack)
		if len(loops) == 0 {
			return
		}
		// Direct store: outer = taintedExpr
		if _, ok := taintedExpr(rhs); ok {
			if outlivesAnyPullLoop(lhs, loops) {
				t, _ := derivedType(pass, bt, rhs)
				report(rhs.Pos(), t, "across Next")
			}
			return
		}
		// append form: outer = append(dst, elems...)
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		if id, isID := ast.Unparen(call.Fun).(*ast.Ident); !isID || id.Name != "append" ||
			pass.Info.Uses[id] != types.Universe.Lookup("append") {
			return
		}
		if !outlivesAnyPullLoop(lhs, loops) {
			return
		}
		for i, arg := range call.Args {
			if i == 0 {
				continue // the destination slice
			}
			tn, ok := taintedExpr(arg)
			if !ok || tn == nil {
				continue
			}
			t, _ := derivedType(pass, bt, arg)
			if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
				// append(dst, x...): spreading a Tuple copies Values (safe);
				// spreading []Tuple copies only slice headers (retention).
				if types.Identical(t, bt.tuple) {
					continue
				}
			}
			report(arg.Pos(), t, "across Next")
		}
	}

	// reportTaintedWithin flags every batch-derived alias inside a sent
	// value, descending through composite literals (the exchange
	// operators' chunk{rows: ...} envelope). Descent stops at a reported
	// node (so b.Rows does not also report its inner b) and at an append
	// into a fresh destination — the durable-copy idiom the exchange
	// handoff contract requires.
	reportTaintedWithin := func(root ast.Expr) {
		ast.Inspect(root, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID &&
					pass.Info.Uses[id] == types.Universe.Lookup("append") &&
					len(call.Args) > 0 {
					if _, dstTainted := taintedExpr(call.Args[0]); !dstTainted {
						return false // fresh backing array: the durable copy
					}
				}
			}
			x, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if _, ok := taintedExpr(x); ok {
				t, _ := derivedType(pass, bt, x)
				report(x.Pos(), t, "across Next (sent on a channel)")
				return false
			}
			return true
		})
	}

	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Rhs {
					checkStored(st.Lhs[i], st.Rhs[i], stack)
				}
			}
		case *ast.SendStmt:
			// ch <- row (or ch <- chunk{rows: b.Rows}) hands the alias to
			// another goroutine's timeline: the cross-worker handoff needs
			// the durable copy first.
			if len(pullLoops(stack)) > 0 {
				reportTaintedWithin(st.Value)
			}
		case *ast.Ident:
			// Use after Close: a batch-derived read past the iterator's
			// non-deferred Close.
			obj := pass.Info.Uses[st]
			tn, ok := tainted[obj]
			if !ok || tn == nil || tn.iter == nil {
				return true
			}
			afterClose := false
			for _, cs := range closeSites {
				if cs.iter == tn.iter && st.Pos() > cs.pos && posWithin(st.Pos(), cs.block) {
					afterClose = true
					break
				}
			}
			if !afterClose {
				return true
			}
			// Skip pure stores (LHS of assignment) — overwriting is fine.
			if len(stack) > 0 {
				if as, isAssign := stack[len(stack)-1].(*ast.AssignStmt); isAssign {
					for _, l := range as.Lhs {
						if l == ast.Expr(st) {
							return true
						}
					}
				}
			}
			pass.Reportf(st.Pos(),
				"batch %s used after its iterator's Close: rows are invalid past Close; "+
					"copy before closing or annotate //lint:allow batchretain", st.Name)
		}
		return true
	})
}
