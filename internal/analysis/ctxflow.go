package analysis

// ctxflow: context.Background() / context.TODO() in library code severs
// the session-cancellation chain — the exact hole PR 9 closes in the
// sqlsrc stat probes, where a killed session kept issuing COUNT queries
// because the probe path minted its own root context. Library packages
// must thread the caller's context; only package main owns lifecycle
// roots. Deliberate background work (detached convenience wrappers,
// long-lived dialers) carries a //lint:allow ctxflow with the reason.

import (
	"go/ast"
	"go/types"
)

var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/context.TODO() in library packages, " +
		"where the session context should be threaded instead",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		// Commands own their lifecycle roots.
		return nil
	}
	ctxType := pass.namedType("context", "Context")
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				return true
			}
			if ctxInScope(pass, stack, ctxType) {
				pass.Reportf(call.Pos(),
					"context.%s() discards the context already in scope; thread it through instead",
					fn.Name())
			} else {
				pass.Reportf(call.Pos(),
					"context.%s() in library code severs session cancellation; "+
						"accept a context.Context or annotate //lint:allow ctxflow",
					fn.Name())
			}
			return true
		})
	}
	return nil
}

// ctxInScope reports whether any enclosing function has a context.Context
// parameter, or a receiver whose struct type carries a context.Context
// field — either one means a better context than Background was available.
func ctxInScope(pass *Pass, stack []ast.Node, ctxType types.Type) bool {
	if ctxType == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		var ftype *ast.FuncType
		var recv *ast.FieldList
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			ftype = fn.Type
		case *ast.FuncDecl:
			ftype = fn.Type
			recv = fn.Recv
		default:
			continue
		}
		if fieldListHasType(pass, ftype.Params, ctxType) {
			return true
		}
		if recv != nil && len(recv.List) == 1 {
			if t := pass.Info.TypeOf(recv.List[0].Type); t != nil && structFieldHasType(t, ctxType) {
				return true
			}
		}
	}
	return false
}

// fieldListHasType reports whether any field in the list has exactly the
// given type.
func fieldListHasType(pass *Pass, fields *ast.FieldList, want types.Type) bool {
	if fields == nil {
		return false
	}
	for _, fld := range fields.List {
		if t := pass.Info.TypeOf(fld.Type); t != nil && types.Identical(t, want) {
			return true
		}
	}
	return false
}

// structFieldHasType reports whether t (deref'd) is a struct with a field
// of exactly the given type.
func structFieldHasType(t, want types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if types.Identical(st.Field(i).Type(), want) {
			return true
		}
	}
	return false
}
