package analysis

// closebalance: an iterator that was Open'd (or a TupleStream obtained
// from QueryStream) must be Closed on every path — the contract in
// relalg/iterator.go is Close exactly once after a successful Open, and a
// leaked source stream holds a wrapper connection and its dispatcher
// admission slot. The pass is a per-function, linear approximation:
//
//   - a deferred Close balances everything;
//   - ownership transfer (the handle is returned, stored into a struct,
//     sent, or passed to another function) ends the local obligation;
//   - otherwise every return after the Open must be preceded by a Close,
//     except returns on the Open/QueryStream error path itself (Close
//     after a failed Open is explicitly not required).
//
// Opens reached through the method's receiver (o.child.Open(ctx) inside
// an operator's own Open) are exempt: that is the operator-composition
// pattern, where the receiver's Close method — a different function —
// owns the release. The pass polices local handles, not struct fields.
// The exemption extends to locals initialized from receiver-reachable
// state (sub := s.subs[p]; for _, sub := range s.subs): the exchange
// operators' worker idiom, where a goroutine body opens per-part
// iterators living in the operator's fields and the operator's Close —
// after cancel + WaitGroup teardown — closes every part. Such handles
// are receiver-owned even though the Open sits on a local alias.
//
// Linear position stands in for dominance: a Close anywhere textually
// before the return satisfies the rule. That under-reports convoluted
// control flow but matches how the engine's consumers are written
// (straight-line drain loops with error-path closes).

import (
	"go/ast"
	"go/token"
	"go/types"
)

var CloseBalanceAnalyzer = &Analyzer{
	Name: "closebalance",
	Doc: "flag Open'd iterators and source streams lacking a Close on " +
		"some path",
	Run: runCloseBalance,
}

func runCloseBalance(pass *Pass) error {
	iterIfc := pass.namedInterface(relalgPath, "Iterator")
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			var recv types.Object
			if fb.decl != nil && fb.decl.Recv != nil && len(fb.decl.Recv.List) == 1 &&
				len(fb.decl.Recv.List[0].Names) == 1 {
				recv = objOf(pass.Info, fb.decl.Recv.List[0].Names[0])
			}
			checkCloseBalance(pass, iterIfc, fb.body, recv)
		}
	}
	return nil
}

// openSite is one acquisition the function must balance.
type openSite struct {
	obj    types.Object // the handle (iterator or stream variable)
	name   string
	pos    token.Pos
	errObj types.Object // the error result of the acquisition, if assigned
}

// hasCloseMethod reports whether t has a Close() error method.
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(tt, true, nil, "Close")
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			sig.Results().At(0).Type().String() == "error" {
			return true
		}
	}
	return false
}

// isOpenCall matches recv.Open(ctx) for a receiver satisfying the
// iterator contract (or at least carrying Open(context.Context) error +
// Close() error).
func isOpenCall(pass *Pass, iterIfc *types.Interface, call *ast.CallExpr) (recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Open" || len(call.Args) != 1 {
		return nil, false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return nil, false
	}
	if sig.Params().At(0).Type().String() != "context.Context" {
		return nil, false
	}
	t := pass.Info.TypeOf(sel.X)
	if iterIfc != nil && implementsIface(t, iterIfc) {
		return sel.X, true
	}
	return sel.X, hasCloseMethod(t)
}

// isStreamAcquire matches calls named QueryStream whose first result
// carries a Close() error method (wrapper.QueryStream and the Streamer
// method form alike).
func isStreamAcquire(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != "QueryStream" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Results().Len() >= 1 && hasCloseMethod(sig.Results().At(0).Type())
}

// recvAliases collects locals initialized from receiver-reachable
// expressions (sub := s.subs[p]; for _, sub := range s.subs). Handles in
// this set are receiver-owned: the type's Close — not this function —
// releases them (the exchange-worker teardown idiom).
func recvAliases(pass *Pass, body *ast.BlockStmt, recv types.Object) map[types.Object]bool {
	if recv == nil {
		return nil
	}
	aliases := map[types.Object]bool{}
	rootsToRecv := func(e ast.Expr) bool {
		r := rootIdent(ast.Unparen(e))
		return r != nil && objOf(pass.Info, r) == recv
	}
	mark := func(lhs ast.Expr) {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(pass.Info, id); obj != nil {
				aliases[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if rootsToRecv(rhs) {
					mark(st.Lhs[i])
				}
			}
		case *ast.RangeStmt:
			if st.Value != nil && rootsToRecv(st.X) {
				mark(st.Value)
			}
		}
		return true
	})
	return aliases
}

func checkCloseBalance(pass *Pass, iterIfc *types.Interface, body *ast.BlockStmt, recv types.Object) {
	var opens []openSite
	recvOwned := recvAliases(pass, body, recv)

	// errorResultObj pulls the error variable out of an acquisition's
	// enclosing assignment, when there is one.
	errorResultObj := func(st *ast.AssignStmt) types.Object {
		if len(st.Lhs) == 0 {
			return nil
		}
		last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
		if !ok || last.Name == "_" {
			return nil
		}
		obj := objOf(pass.Info, last)
		if obj == nil || obj.Type() == nil || obj.Type().String() != "error" {
			return nil
		}
		return obj
	}

	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var parentAssign *ast.AssignStmt
		if len(stack) > 0 {
			parentAssign, _ = stack[len(stack)-1].(*ast.AssignStmt)
		}
		if opened, ok := isOpenCall(pass, iterIfc, call); ok {
			root := rootIdent(opened)
			if root == nil {
				return true
			}
			obj := objOf(pass.Info, root)
			if obj == nil || (recv != nil && obj == recv) || recvOwned[obj] {
				return true // receiver-owned: the type's Close releases it
			}
			site := openSite{obj: obj, name: root.Name, pos: call.Pos()}
			if parentAssign != nil {
				site.errObj = errorResultObj(parentAssign)
			}
			opens = append(opens, site)
			return true
		}
		if isStreamAcquire(pass, call) && parentAssign != nil && len(parentAssign.Lhs) >= 1 {
			id, ok := parentAssign.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := objOf(pass.Info, id)
			if obj == nil {
				return true
			}
			opens = append(opens, openSite{
				obj: obj, name: id.Name, pos: call.Pos(),
				errObj: errorResultObj(parentAssign),
			})
		}
		return true
	})
	if len(opens) == 0 {
		return
	}

	for _, site := range opens {
		analyzeOpenSite(pass, body, site)
	}
}

func analyzeOpenSite(pass *Pass, body *ast.BlockStmt, site openSite) {
	var (
		escapes    bool
		deferClose bool
		closePos   []token.Pos
	)
	type retInfo struct {
		pos     token.Pos
		end     token.Pos
		guarded bool // inside an if whose condition tests the open's error
	}
	var returns []retInfo

	condUsesErr := func(cond ast.Expr) bool {
		if site.errObj == nil || cond == nil {
			return false
		}
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == site.errObj {
				found = true
			}
			return !found
		})
		return found
	}

	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if x.Pos() <= site.pos {
				return true
			}
			guarded := false
			for i := len(stack) - 1; i >= 0; i-- {
				if ifst, ok := stack[i].(*ast.IfStmt); ok && condUsesErr(ifst.Cond) {
					guarded = true
					break
				}
			}
			returns = append(returns, retInfo{pos: x.Pos(), end: x.End(), guarded: guarded})
		case *ast.Ident:
			if pass.Info.Uses[x] != site.obj {
				return true
			}
			if len(stack) == 0 {
				return true
			}
			parent := stack[len(stack)-1]
			switch p := parent.(type) {
			case *ast.SelectorExpr:
				// obj.Method(...) or obj.Field — find the method name when
				// this selector is a call target.
				if p.Sel.Name == "Close" && len(stack) >= 2 {
					if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok &&
						ast.Unparen(call.Fun) == ast.Expr(p) && len(call.Args) == 0 {
						if len(stack) >= 3 {
							if _, isDefer := stack[len(stack)-3].(*ast.DeferStmt); isDefer {
								deferClose = true
								return true
							}
						}
						closePos = append(closePos, call.Pos())
					}
				}
			case *ast.CallExpr:
				// The handle passed as an argument (not the callee) —
				// ownership transfer.
				for _, arg := range p.Args {
					if ast.Unparen(arg) == ast.Expr(x) {
						escapes = true
					}
				}
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
				escapes = true
			case *ast.UnaryExpr:
				if p.Op == token.AND {
					escapes = true
				}
			case *ast.AssignStmt:
				// The bare handle on an RHS (aliasing) or stored through a
				// selector/index LHS — either way, tracking ends.
				for _, r := range p.Rhs {
					if ast.Unparen(r) == ast.Expr(x) {
						escapes = true
					}
				}
			case *ast.IndexExpr:
				if p.Index == ast.Expr(x) {
					return true
				}
				escapes = true
			}
		}
		return true
	})

	if escapes || deferClose {
		return
	}
	if len(closePos) == 0 {
		pass.Reportf(site.pos,
			"%s is opened here but never closed on any path; defer %s.Close() "+
				"or close before every return", site.name, site.name)
		return
	}
	for _, r := range returns {
		if r.guarded {
			continue
		}
		// A Close anywhere before the return, or inside the return
		// expression itself (return n, it.Close()), satisfies the path.
		closedBefore := false
		for _, cp := range closePos {
			if cp < r.end {
				closedBefore = true
				break
			}
		}
		if !closedBefore {
			pass.Reportf(r.pos,
				"return leaks %s (opened at %s) without a Close on this path",
				site.name, pass.Fset.Position(site.pos))
		}
	}
}
