package analysis

// errclass: the fault taxonomy (PR 6, wrapper/errors.go) only works if
// the wrapper layer classifies at the point of failure — the retry and
// circuit-breaker machinery keys on Transient/RateLimited/Permanent, and
// an unclassified error silently becomes non-retryable. The pass runs
// over the wrapper packages only and tracks, within one function, errors
// born from the fault-prone stdlib surfaces (net/http round trips,
// io.ReadAll, database/sql queries and scans, net dials). Returning such
// an error — directly or through fmt.Errorf("%w") wrapping — without
// passing it through wrapper.Transient / Permanent / RateLimited /
// ClassifyHTTPStatus is flagged. Returns guarded by a context-death check
// (ctx.Err() != nil, errors.Is(err, context.Canceled)) are exempt: when
// the query died, the source did not misbehave, and classifying would
// wrongly charge the breaker.

import (
	"go/ast"
	"go/types"
	"strings"
)

var ErrClassAnalyzer = &Analyzer{
	Name: "errclass",
	Doc: "flag wrapper-layer HTTP/IO/DB errors returned without " +
		"Transient/RateLimited/Permanent classification",
	Run: runErrClass,
}

// faultSources maps package path -> function/method names whose error
// results need classification before leaving the wrapper layer.
var faultSources = map[string]map[string]bool{
	"net/http": {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true},
	"io":       {"ReadAll": true, "Copy": true, "ReadFull": true},
	"database/sql": {
		"Query": true, "QueryContext": true, "Exec": true, "ExecContext": true,
		"Ping": true, "PingContext": true, "Prepare": true, "PrepareContext": true,
		"Scan": true, "Err": true,
	},
	"net": {"Dial": true, "DialTimeout": true, "DialContext": true},
}

// classifiers are the wrapper package's taxonomy entry points; routing an
// error through any of them discharges the obligation.
var classifiers = map[string]bool{
	"Transient": true, "Permanent": true, "RateLimited": true,
	"ClassifyHTTPStatus": true,
}

func runErrClass(pass *Pass) error {
	path := pass.Pkg.Path()
	if path != wrapperPath && !strings.HasPrefix(path, wrapperPath+"/") {
		return nil // classification is the wrapper layer's duty
	}
	for _, f := range pass.Files {
		for _, fb := range funcBodies(f) {
			checkErrClass(pass, fb.body)
		}
	}
	return nil
}

func isFaultSource(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	names, ok := faultSources[fn.Pkg().Path()]
	return ok && names[fn.Name()]
}

func isClassifierCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == wrapperPath &&
		classifiers[fn.Name()]
}

// checkErrClass walks the body once in source order, maintaining a live
// taint state per error variable: a fault-source assignment taints, a
// classifier or any other reassignment clears. Go reuses err variables
// relentlessly, so a flow-insensitive taint set would flag early returns
// that precede the fault source entirely; lexical order is the cheap
// approximation of flow that matches how these functions read.
func checkErrClass(pass *Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}

	anyArgTainted := func(call *ast.CallExpr) bool {
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && tainted[pass.Info.Uses[id]] {
				return true
			}
		}
		return false
	}

	// setErrorLhs updates every error-typed destination of the assignment.
	setErrorLhs := func(st *ast.AssignStmt, on bool) {
		for _, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(pass.Info, id)
			if obj == nil || obj.Type() == nil || obj.Type().String() != "error" {
				continue
			}
			if on {
				tainted[obj] = true
			} else {
				delete(tainted, obj)
			}
		}
	}

	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				setErrorLhs(st, false)
				return true
			}
			call, isCall := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			switch {
			case isCall && isFaultSource(pass, call):
				setErrorLhs(st, true)
			case isCall && isPkgFunc(pass.Info, call, "fmt", "Errorf") && anyArgTainted(call):
				setErrorLhs(st, true)
			case !isCall && func() bool {
				id, isID := ast.Unparen(st.Rhs[0]).(*ast.Ident)
				return isID && tainted[pass.Info.Uses[id]]
			}():
				setErrorLhs(st, true)
			case isCall && isClassifierCall(pass, call):
				setErrorLhs(st, false)
			default:
				// Every unrelated reassignment clears: the variable no
				// longer holds the raw fault.
				setErrorLhs(st, false)
			}
		case *ast.ReturnStmt:
			if ctxDeathGuarded(pass, stack) {
				return false
			}
			for _, res := range st.Results {
				res = ast.Unparen(res)
				if id, ok := res.(*ast.Ident); ok && tainted[pass.Info.Uses[id]] {
					pass.Reportf(res.Pos(),
						"unclassified fault %s returned from the wrapper layer; wrap with "+
							"wrapper.Transient/Permanent/RateLimited or ClassifyHTTPStatus",
						id.Name)
					continue
				}
				if call, ok := res.(*ast.CallExpr); ok &&
					isPkgFunc(pass.Info, call, "fmt", "Errorf") && anyArgTainted(call) {
					pass.Reportf(res.Pos(),
						"fmt.Errorf wraps an unclassified fault; classify with "+
							"wrapper.Transient/Permanent/RateLimited (or ClassifyHTTPStatus) "+
							"so retry and breaker logic can key on it")
				}
			}
		}
		return true
	})
}

// ctxDeathGuarded reports whether an enclosing if tests for context
// death: ctx.Err() != nil, or mentions context.Canceled /
// context.DeadlineExceeded (typically via errors.Is).
func ctxDeathGuarded(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifst, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifst.Cond, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
					if t := pass.Info.TypeOf(sel.X); t != nil && t.String() == "context.Context" {
						guarded = true
					}
				}
			case *ast.SelectorExpr:
				if obj := pass.Info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "context" &&
					(obj.Name() == "Canceled" || obj.Name() == "DeadlineExceeded") {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}
