// Package analysis is the engine-invariant linter suite: a set of static
// passes that mechanically enforce the contracts PRs 2–8 established in
// comments and runtime tests — the Volcano batch-ownership rule, session
// context propagation, the "all source communication flows through the
// dispatcher" funnel, leak-balanced Open/Close, and fault classification
// at the wrapper layer. The cmd/coinlint multichecker runs every pass
// over ./... as the `make lint` CI gate; the `//go:build invariants`
// runtime-assertion layer in internal/relalg pins the same contracts
// dynamically, so each invariant is checked from both sides.
//
// The package is a deliberately small, self-contained reimplementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic, a `// want` fixture harness) over the standard library
// only: packages load through `go list -export -deps -json` and
// type-check against the build cache's export data, so the suite needs no
// module dependencies and no network.
//
// # Suppression
//
// A finding is suppressed by a comment on the flagged line, or on the
// line immediately above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allow without one is itself reported. Each
// allow suppresses only diagnostics of the named analyzer on its own
// line, so a suppression can never hide a neighboring violation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static pass: a name (used in diagnostics and in
// //lint:allow comments), a doc string, and the function that runs the
// pass over one package.
type Analyzer struct {
	// Name identifies the pass; lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run reports findings on pass; the error is for analysis failure
	// (a pass that cannot run), not for findings.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked form to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and object resolutions.
	Info *types.Info

	// imports maps import path -> package for every package the loader
	// knows (the whole module plus dependencies), so a pass can reach
	// contract types (relalg.Iterator, wrapper.Wrapper) even when the
	// package under analysis imports them indirectly.
	imports map[string]*types.Package

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// LookupImport returns the named package if the loader saw it (directly
// imported or as a transitive dependency), nil otherwise. Passes use it
// to resolve the contract-owning packages. When the package under
// analysis IS the contract package, its source-checked form is returned —
// the export-data copy would be a distinct types.Package and type
// identity against the pass's own expressions would silently fail.
func (p *Pass) LookupImport(path string) *types.Package {
	if p.Pkg != nil && p.Pkg.Path() == path {
		return p.Pkg
	}
	return p.imports[path]
}

// namedInterface resolves an interface type declared in the package at
// path (e.g. repro/internal/relalg's Iterator). nil when the package is
// not in the import graph or the name is not an interface.
func (p *Pass) namedInterface(path, name string) *types.Interface {
	pkg := p.LookupImport(path)
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// namedType resolves a (non-interface) named type declared in the package
// at path. nil when unknown.
func (p *Pass) namedType(path, name string) types.Type {
	pkg := p.LookupImport(path)
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// sortDiagnostics orders findings by file, line, column, then analyzer,
// so output (and golden comparisons) are deterministic.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
