package analysis

// //lint:allow handling. A suppression names one analyzer and must give a
// reason; it covers diagnostics of that analyzer on the comment's own
// line, or — for a comment standing alone on its line — on the first
// following line that holds code. Scoping to a single line keeps every
// suppression reviewable next to the exact call it excuses.

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

const allowPrefix = "//lint:allow"

// allowSite is one parsed //lint:allow comment.
type allowSite struct {
	analyzer string
	reason   string
	line     int // the line the allow covers
	pos      token.Pos
	used     bool
}

// collectAllows parses every //lint:allow comment in the files. Malformed
// allows (no analyzer, or no reason) are reported as findings of the
// pseudo-analyzer "lint" so the gate fails rather than silently ignoring
// a suppression.
func collectAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*allowSite {
	var sites []*allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				if name == "" || reason == "" {
					report(Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: need `//lint:allow <analyzer> <reason>`",
					})
					continue
				}
				line := pos.Line
				if standsAlone(pos) {
					line++
				}
				sites = append(sites, &allowSite{
					analyzer: name,
					reason:   reason,
					line:     line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return sites
}

// standsAlone reports whether the comment at pos occupies its source line
// by itself (only whitespace before it), in which case it covers the next
// line instead of its own.
func standsAlone(pos token.Position) bool {
	src, err := os.ReadFile(pos.Filename)
	if err != nil {
		return false
	}
	lines := strings.Split(string(src), "\n")
	if pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 <= len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// applyAllows filters diags through the allow sites: a diagnostic whose
// analyzer and line match an allow is dropped (and the allow marked
// used). Unused allows for analyzers that actually ran are reported — a
// suppression that excuses nothing is stale and must be removed, so
// allows cannot accumulate. Allows for analyzers outside the run set are
// left alone (a partial run must not flag the full suite's annotations).
func applyAllows(diags []Diagnostic, allows []*allowSite, fset *token.FileSet, ran map[string]bool) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.analyzer == d.Analyzer && a.line == d.Pos.Line &&
				fset.Position(a.pos).Filename == d.Pos.Filename {
				a.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		if !a.used && ran[a.analyzer] {
			kept = append(kept, Diagnostic{
				Analyzer: "lint",
				Pos:      fset.Position(a.pos),
				Message:  "unused //lint:allow " + a.analyzer + " (no diagnostic on its line); remove it",
			})
		}
	}
	return kept
}
