package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/relalg"
)

// TempStore holds intermediate results of cross-source query execution.
// Figure 1 of the paper gives the multi-database engine "two local
// secondary storages ... for the management of dictionary information and
// in order to handle large results or large sets of temporary data"; this
// type is the second of those. Relations whose tuple count exceeds
// SpillThreshold are written to disk as CSV and re-read on demand, so the
// engine's resident memory stays bounded by the threshold regardless of
// result size.
type TempStore struct {
	// SpillThreshold is the maximum tuple count kept in memory per entry;
	// larger relations spill to disk. Zero means DefaultSpillThreshold.
	SpillThreshold int

	dir string

	mu      sync.Mutex
	mem     map[string]*relalg.Relation
	spilled map[string]string // key -> file path
	seq     int
	// Spills counts entries written to disk (observable in tests and the
	// E9 bench).
	spills int
}

// DefaultSpillThreshold is used when TempStore.SpillThreshold is zero.
const DefaultSpillThreshold = 10000

// NewTempStore creates a temp store backed by a fresh directory under the
// OS temp dir. Call Close to delete spilled files.
func NewTempStore() (*TempStore, error) {
	dir, err := os.MkdirTemp("", "coin-temp-*")
	if err != nil {
		return nil, fmt.Errorf("store: creating temp dir: %w", err)
	}
	return &TempStore{
		dir:     dir,
		mem:     map[string]*relalg.Relation{},
		spilled: map[string]string{},
	}, nil
}

// Put stores a relation under key, spilling it if oversized.
func (ts *TempStore) Put(key string, rel *relalg.Relation) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	threshold := ts.SpillThreshold
	if threshold == 0 {
		threshold = DefaultSpillThreshold
	}
	if rel.Len() <= threshold {
		ts.mem[key] = rel
		delete(ts.spilled, key)
		return nil
	}
	ts.seq++
	path := filepath.Join(ts.dir, fmt.Sprintf("t%06d.csv", ts.seq))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: spilling %s: %w", key, err)
	}
	if err := WriteCSV(rel, f); err != nil {
		f.Close()
		return fmt.Errorf("store: spilling %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	delete(ts.mem, key)
	ts.spilled[key] = path
	ts.spills++
	return nil
}

// Get retrieves a relation by key, reading it back from disk if spilled.
func (ts *TempStore) Get(key string) (*relalg.Relation, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if rel, ok := ts.mem[key]; ok {
		return rel, nil
	}
	path, ok := ts.spilled[key]
	if !ok {
		return nil, fmt.Errorf("store: temp store has no entry %q", key)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading spilled %s: %w", key, err)
	}
	defer f.Close()
	return ReadCSV(key, f)
}

// Stage routes a pipeline-breaker buffer through the temp store: a
// relation at or below the spill threshold passes through untouched,
// while a larger one makes a disk round trip (written as CSV, reloaded,
// and its transient entry released), exercising and counting the spill
// path without retaining per-query entries for the store's lifetime. It
// implements relalg.Stager, the hook the streaming executor's breaker
// operators (sort buffers, hash build sides, bind-join feeders, step
// boundaries) use.
func (ts *TempStore) Stage(rel *relalg.Relation) (*relalg.Relation, error) {
	threshold := ts.SpillThreshold
	if threshold == 0 {
		threshold = DefaultSpillThreshold
	}
	if rel.Len() <= threshold {
		return rel, nil
	}
	ts.mu.Lock()
	ts.seq++
	key := fmt.Sprintf("stage%06d", ts.seq)
	ts.mu.Unlock()
	if err := ts.Put(key, rel); err != nil {
		return nil, err
	}
	out, err := ts.Get(key)
	if err != nil {
		return nil, err
	}
	ts.mu.Lock()
	if path, ok := ts.spilled[key]; ok {
		os.Remove(path)
		delete(ts.spilled, key)
	}
	delete(ts.mem, key)
	ts.mu.Unlock()
	return out, nil
}

// ErrStageBudgetExceeded aborts a query whose staged intermediates
// exceed its session's byte budget.
var ErrStageBudgetExceeded = errors.New("store: staged bytes exceed the session budget")

// Budget caps the cumulative bytes one query session may stage through a
// TempStore. It is shared by every staging point of the session
// (concurrent mediation branches included), so the cap is global to the
// query, not per breaker.
type Budget struct {
	// Max is the byte cap; zero or negative means unlimited.
	Max int64

	mu   sync.Mutex
	used int64
}

// Charge records n more staged bytes, failing once the budget is blown.
func (b *Budget) Charge(n int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used += n
	if b.Max > 0 && b.used > b.Max {
		return fmt.Errorf("%w (%d > %d bytes)", ErrStageBudgetExceeded, b.used, b.Max)
	}
	return nil
}

// Used reports the bytes charged so far.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// StageWithin stages rel like Stage, after charging the relation's
// approximate size against budget (nil budget: ungoverned). This is the
// enforcement point for a session's max-staged-bytes governor: every
// pipeline breaker and step boundary routes its buffer through here.
func (ts *TempStore) StageWithin(rel *relalg.Relation, budget *Budget) (*relalg.Relation, error) {
	if budget != nil {
		if err := budget.Charge(rel.ApproxBytes()); err != nil {
			return nil, err
		}
	}
	return ts.Stage(rel)
}

// Spills reports how many entries have been written to disk.
func (ts *TempStore) Spills() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.spills
}

// Close removes all spilled files.
func (ts *TempStore) Close() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.mem = map[string]*relalg.Relation{}
	ts.spilled = map[string]string{}
	return os.RemoveAll(ts.dir)
}
