package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relalg"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := NewDB("demo")
	tab := db.MustCreateTable("r1", companySchema())
	tab.MustInsert(relalg.StrV("IBM"), relalg.NumV(1e8), relalg.StrV("USD"))
	tab.MustInsert(relalg.StrV("NTT"), relalg.NumV(1e6), relalg.StrV("JPY"))
	tab2 := db.MustCreateTable("r2", relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "expenses", Type: relalg.KindNumber},
	))
	tab2.MustInsert(relalg.StrV("IBM"), relalg.NumV(1.5e8))

	sub := filepath.Join(dir, "demo")
	if err := SaveDir(db, sub); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(sub)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "demo" {
		t.Errorf("name = %s", back.Name)
	}
	if got := back.TableNames(); len(got) != 2 {
		t.Fatalf("tables = %v", got)
	}
	orig, _ := db.Table("r1")
	loaded, err := back.Table("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !relalg.SameTuples(orig.Scan(), loaded.Scan()) {
		t.Error("r1 changed across save/load")
	}
	if !loaded.Schema.Equal(orig.Schema) {
		t.Errorf("schema changed: %v vs %v", loaded.Schema, orig.Schema)
	}
}

func TestLoadDirIgnoresNonCSV(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "t.csv"), []byte("a:num\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "t" {
		t.Errorf("tables = %v", got)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"), []byte("a:num\nxyz\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("bad CSV accepted")
	}
}
