// Package store implements the local data management of the COIN
// prototype's multi-database access engine: an in-memory relational
// database with a catalog (the "dictionary" secondary storage of the
// paper), per-table hash indexes and statistics for the planner's cost
// model, CSV import/export, and a spillable temporary store for large
// intermediate results (the second local secondary storage in Figure 1).
//
// It also serves as the substitute for the paper's Oracle source: the
// mediator only ever sees a wrapper exposing schema plus SQL execution, so
// any relational engine with those services is interchangeable.
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relalg"
)

// Table is one named relation with optional hash indexes and maintained
// statistics.
type Table struct {
	Name   string
	Schema relalg.Schema

	mu      sync.RWMutex
	tuples  []relalg.Tuple
	indexes map[string]map[string][]int // column -> value key -> row ids
}

// NewTable creates an empty table.
func NewTable(name string, schema relalg.Schema) *Table {
	return &Table{Name: name, Schema: schema, indexes: map[string]map[string][]int{}}
}

// Insert appends a row, maintaining indexes.
func (t *Table) Insert(row relalg.Tuple) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("store: table %s: arity %d != %d", t.Name, len(row), len(t.Schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.tuples)
	t.tuples = append(t.tuples, row.Clone())
	for col, idx := range t.indexes {
		ci := t.Schema.Index(col)
		key := row[ci].Key()
		idx[key] = append(idx[key], id)
	}
	return nil
}

// MustInsert is Insert that panics; for fixtures.
func (t *Table) MustInsert(vals ...relalg.Value) {
	if err := t.Insert(relalg.Tuple(vals)); err != nil {
		panic(err)
	}
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tuples)
}

// CreateIndex builds a hash index on the named column.
func (t *Table) CreateIndex(column string) error {
	ci := t.Schema.Index(column)
	if ci < 0 {
		return fmt.Errorf("store: table %s has no column %s", t.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := map[string][]int{}
	for id, row := range t.tuples {
		key := row[ci].Key()
		idx[key] = append(idx[key], id)
	}
	t.indexes[column] = idx
	return nil
}

// HasIndex reports whether the column is indexed.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[column]
	return ok
}

// Scan snapshots the table as a relation. The snapshot aliases the
// table's tuple slice with its capacity capped at the snapshot length:
// existing rows are never mutated in place (Insert only appends, past
// the cap the snapshot can see), and a caller appending to the snapshot
// reallocates instead of writing into the table, so no copy is needed.
func (t *Table) Scan() *relalg.Relation {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := relalg.NewRelation(t.Name, t.Schema)
	out.Tuples = t.tuples[:len(t.tuples):len(t.tuples)]
	return out
}

// Lookup returns the rows whose indexed column equals v; it falls back to
// a scan when the column is not indexed.
func (t *Table) Lookup(column string, v relalg.Value) (*relalg.Relation, error) {
	ci := t.Schema.Index(column)
	if ci < 0 {
		return nil, fmt.Errorf("store: table %s has no column %s", t.Name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := relalg.NewRelation(t.Name, t.Schema)
	if idx, ok := t.indexes[column]; ok {
		for _, id := range idx[v.Key()] {
			out.Tuples = append(out.Tuples, t.tuples[id])
		}
		return out, nil
	}
	for _, row := range t.tuples {
		if row[ci].Equal(v) {
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

// Stats summarizes a table for the cost model.
type Stats struct {
	Rows     int
	Distinct map[string]int // column -> number of distinct values
}

// Stats computes fresh statistics.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := Stats{Rows: len(t.tuples), Distinct: map[string]int{}}
	for ci, col := range t.Schema.Columns {
		seen := map[string]bool{}
		for _, row := range t.tuples {
			seen[row[ci].Key()] = true
		}
		st.Distinct[col.Name] = len(seen)
	}
	return st
}

// DB is a named collection of tables: the catalog half doubles as the
// prototype's dictionary service (schema information for every relation a
// source exports).
type DB struct {
	Name string

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{Name: name, tables: map[string]*Table{}}
}

// CreateTable registers a new table; it fails if the name exists.
func (db *DB) CreateTable(name string, schema relalg.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("store: table %s already exists in %s", name, db.Name)
	}
	t := NewTable(name, schema)
	db.tables[name] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics; for fixtures.
func (db *DB) MustCreateTable(name string, schema relalg.Schema) *Table {
	t, err := db.CreateTable(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or an error naming the available tables.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %s in %s (have %v)", name, db.Name, db.TableNamesLocked())
	}
	return t, nil
}

// TableNames lists the tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.TableNamesLocked()
}

// TableNamesLocked lists table names; caller must hold at least a read
// lock (exposed for the error path above).
func (db *DB) TableNamesLocked() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropTable removes a table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("store: no table %s in %s", name, db.Name)
	}
	delete(db.tables, name)
	return nil
}
