package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Disk persistence for a database: each table is one CSV file with a typed
// header, named <table>.csv, in one directory per database. This is the
// dictionary-side secondary storage of Figure 1 made durable: a catalog
// written with SaveDir is fully reconstructed by LoadDir, and the CSV
// files double as a human-editable data-exchange format for the demo
// binaries.

// SaveDir writes every table of db into dir (created if absent).
func SaveDir(db *DB, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", dir, err)
	}
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("store: creating %s: %w", path, err)
		}
		if err := WriteCSV(t.Scan(), f); err != nil {
			f.Close()
			return fmt.Errorf("store: writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads every *.csv in dir into a new database named after the
// directory's base name.
func LoadDir(dir string) (*DB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	db := NewDB(filepath.Base(dir))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: opening %s: %w", e.Name(), err)
		}
		_, err = LoadCSVTable(db, name, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: loading %s: %w", e.Name(), err)
		}
	}
	return db, nil
}
