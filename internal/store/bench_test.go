package store

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/relalg"
)

func benchRelation(n int) *relalg.Relation {
	rel := relalg.NewRelation("bench", relalg.NewSchema(
		relalg.Column{Name: "id", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber},
	))
	for i := 0; i < n; i++ {
		rel.MustAdd(relalg.StrV(fmt.Sprintf("row%06d", i)), relalg.NumV(float64(i)))
	}
	return rel
}

func BenchmarkCSVWriteRead(b *testing.B) {
	rel := benchRelation(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(rel, &buf); err != nil {
			b.Fatal(err)
		}
		back, err := ReadCSV("bench", &buf)
		if err != nil {
			b.Fatal(err)
		}
		if back.Len() != rel.Len() {
			b.Fatal("row count changed")
		}
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	tab := NewTable("t", relalg.NewSchema(
		relalg.Column{Name: "id", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber},
	))
	for i := 0; i < 10000; i++ {
		tab.MustInsert(relalg.StrV(fmt.Sprintf("row%06d", i)), relalg.NumV(float64(i)))
	}
	key := relalg.StrV("row004242")
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel, err := tab.Lookup("id", key)
			if err != nil || rel.Len() != 1 {
				b.Fatalf("%v %v", rel, err)
			}
		}
	})
	if err := tab.CreateIndex("id"); err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rel, err := tab.Lookup("id", key)
			if err != nil || rel.Len() != 1 {
				b.Fatalf("%v %v", rel, err)
			}
		}
	})
}

func BenchmarkTempStoreSpillRoundTrip(b *testing.B) {
	ts, err := NewTempStore()
	if err != nil {
		b.Fatal(err)
	}
	defer ts.Close()
	ts.SpillThreshold = 100
	rel := benchRelation(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ts.Put("k", rel); err != nil {
			b.Fatal(err)
		}
		back, err := ts.Get("k")
		if err != nil || back.Len() != rel.Len() {
			b.Fatal("round trip failed")
		}
	}
}
