package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/relalg"
)

func companySchema() relalg.Schema {
	return relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "revenue", Type: relalg.KindNumber},
		relalg.Column{Name: "currency", Type: relalg.KindString},
	)
}

func TestTableInsertAndScan(t *testing.T) {
	tab := NewTable("r1", companySchema())
	tab.MustInsert(relalg.StrV("IBM"), relalg.NumV(1e8), relalg.StrV("USD"))
	tab.MustInsert(relalg.StrV("NTT"), relalg.NumV(1e6), relalg.StrV("JPY"))
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
	rel := tab.Scan()
	if rel.Len() != 2 || rel.Tuples[0][0].S != "IBM" {
		t.Errorf("scan = %s", rel)
	}
	if err := tab.Insert(relalg.Tuple{relalg.StrV("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestTableIndexLookup(t *testing.T) {
	tab := NewTable("r1", companySchema())
	tab.MustInsert(relalg.StrV("IBM"), relalg.NumV(1e8), relalg.StrV("USD"))
	tab.MustInsert(relalg.StrV("NTT"), relalg.NumV(1e6), relalg.StrV("JPY"))
	if err := tab.CreateIndex("cname"); err != nil {
		t.Fatal(err)
	}
	if !tab.HasIndex("cname") {
		t.Error("index not registered")
	}
	got, err := tab.Lookup("cname", relalg.StrV("NTT"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuples[0][1].N != 1e6 {
		t.Errorf("lookup = %s", got)
	}
	// Insert after index creation must be visible through the index.
	tab.MustInsert(relalg.StrV("NTT"), relalg.NumV(5), relalg.StrV("EUR"))
	got, err = tab.Lookup("cname", relalg.StrV("NTT"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("post-insert lookup = %s", got)
	}
	// Unindexed lookup falls back to scan.
	got, err = tab.Lookup("currency", relalg.StrV("USD"))
	if err != nil || got.Len() != 1 {
		t.Errorf("fallback lookup = %v, %v", got, err)
	}
	if _, err := tab.Lookup("nope", relalg.StrV("x")); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestTableStats(t *testing.T) {
	tab := NewTable("r1", companySchema())
	tab.MustInsert(relalg.StrV("IBM"), relalg.NumV(1), relalg.StrV("USD"))
	tab.MustInsert(relalg.StrV("NTT"), relalg.NumV(2), relalg.StrV("USD"))
	st := tab.Stats()
	if st.Rows != 2 || st.Distinct["cname"] != 2 || st.Distinct["currency"] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB("src1")
	db.MustCreateTable("r1", companySchema())
	if _, err := db.CreateTable("r1", companySchema()); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Table("r1"); err != nil {
		t.Error(err)
	}
	if _, err := db.Table("zzz"); err == nil {
		t.Error("missing table lookup succeeded")
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "r1" {
		t.Errorf("names = %v", got)
	}
	if err := db.DropTable("r1"); err != nil {
		t.Error(err)
	}
	if err := db.DropTable("r1"); err == nil {
		t.Error("double drop succeeded")
	}
}

const r1CSV = `cname:str,revenue:num,currency:str
IBM,100000000,USD
NTT,1000000,JPY
`

func TestCSVRoundTrip(t *testing.T) {
	rel, err := ReadCSV("r1", strings.NewReader(r1CSV))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("rows = %d", rel.Len())
	}
	if rel.Schema.Columns[1].Type != relalg.KindNumber {
		t.Error("typed header lost")
	}
	if rel.Tuples[1][1].N != 1e6 {
		t.Errorf("NTT revenue = %v", rel.Tuples[1][1])
	}
	var buf bytes.Buffer
	if err := WriteCSV(rel, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("r1", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !relalg.SameTuples(rel, back) {
		t.Errorf("round trip changed tuples:\n%s\nvs\n%s", rel, back)
	}
}

func TestCSVNullHandling(t *testing.T) {
	rel, err := ReadCSV("t", strings.NewReader("a:str,b:num\nx,\n,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Tuples[0][1].IsNull() || !rel.Tuples[1][0].IsNull() {
		t.Errorf("NULL import broken: %s", rel)
	}
	var buf bytes.Buffer
	if err := WriteCSV(rel, &buf); err != nil {
		t.Fatal(err)
	}
	back, _ := ReadCSV("t", &buf)
	if !back.Tuples[0][1].IsNull() {
		t.Error("NULL export broken")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"a:wat\n1\n",       // unknown type
		"a:num\nxyz\n",     // bad number
		"a:num,b:num\n1\n", // wrong arity
		":num\n1\n",        // empty name
	}
	for _, src := range cases {
		if _, err := ReadCSV("t", strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", src)
		}
	}
}

func TestLoadCSVTable(t *testing.T) {
	db := NewDB("src1")
	tab, err := LoadCSVTable(db, "r1", strings.NewReader(r1CSV))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Errorf("rows = %d", tab.Len())
	}
}

func TestTempStoreMemoryPath(t *testing.T) {
	ts, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	rel, _ := ReadCSV("r1", strings.NewReader(r1CSV))
	if err := ts.Put("k", rel); err != nil {
		t.Fatal(err)
	}
	got, err := ts.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !relalg.SameTuples(rel, got) {
		t.Error("memory round trip changed tuples")
	}
	if ts.Spills() != 0 {
		t.Error("small relation spilled")
	}
	if _, err := ts.Get("missing"); err == nil {
		t.Error("missing key succeeded")
	}
}

func TestTempStoreSpill(t *testing.T) {
	ts, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ts.SpillThreshold = 10
	rel := relalg.NewRelation("big", relalg.NewSchema(relalg.Column{Name: "n", Type: relalg.KindNumber}))
	for i := 0; i < 100; i++ {
		rel.MustAdd(relalg.NumV(float64(i)))
	}
	if err := ts.Put("big", rel); err != nil {
		t.Fatal(err)
	}
	if ts.Spills() != 1 {
		t.Fatalf("spills = %d, want 1", ts.Spills())
	}
	got, err := ts.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !relalg.SameTuples(rel, got) {
		t.Error("spill round trip changed tuples")
	}
	// Overwriting with a small relation must clear the spilled entry.
	small := relalg.NewRelation("big", rel.Schema)
	small.MustAdd(relalg.NumV(1))
	if err := ts.Put("big", small); err != nil {
		t.Fatal(err)
	}
	got, err = ts.Get("big")
	if err != nil || got.Len() != 1 {
		t.Errorf("after overwrite: %v, %v", got, err)
	}
}

func TestParseHeaderDefaults(t *testing.T) {
	s, err := ParseHeader([]string{"a", "b:num", "c:bool"})
	if err != nil {
		t.Fatal(err)
	}
	want := []relalg.Kind{relalg.KindString, relalg.KindNumber, relalg.KindBool}
	for i, k := range want {
		if s.Columns[i].Type != k {
			t.Errorf("col %d type = %v, want %v", i, s.Columns[i].Type, k)
		}
	}
}
