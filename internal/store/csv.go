package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/relalg"
)

// CSV import/export. The header row declares columns as "name:type" where
// type is one of str, num, bool (defaulting to str), e.g.:
//
//	cname:str,revenue:num,currency:str
//	IBM,100000000,USD

// ParseHeader converts a CSV header row into a schema.
func ParseHeader(header []string) (relalg.Schema, error) {
	var schema relalg.Schema
	for _, h := range header {
		name := strings.TrimSpace(h)
		kind := relalg.KindString
		if i := strings.LastIndex(name, ":"); i >= 0 {
			switch strings.TrimSpace(name[i+1:]) {
			case "str", "string", "":
				kind = relalg.KindString
			case "num", "number", "float", "int":
				kind = relalg.KindNumber
			case "bool":
				kind = relalg.KindBool
			default:
				return relalg.Schema{}, fmt.Errorf("store: unknown column type in %q", h)
			}
			name = strings.TrimSpace(name[:i])
		}
		if name == "" {
			return relalg.Schema{}, fmt.Errorf("store: empty column name in header")
		}
		schema.Columns = append(schema.Columns, relalg.Column{Name: name, Type: kind})
	}
	return schema, nil
}

// ReadCSV loads a relation from CSV with a typed header.
func ReadCSV(name string, r io.Reader) (*relalg.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: reading CSV header: %w", err)
	}
	schema, err := ParseHeader(header)
	if err != nil {
		return nil, err
	}
	rel := relalg.NewRelation(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("store: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(schema.Columns) {
			return nil, fmt.Errorf("store: CSV line %d has %d fields, want %d", line, len(rec), len(schema.Columns))
		}
		row := make(relalg.Tuple, len(rec))
		for i, cell := range rec {
			v, err := relalg.ParseValue(cell, schema.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("store: CSV line %d column %s: %w", line, schema.Columns[i].Name, err)
			}
			row[i] = v
		}
		if err := rel.Add(row); err != nil {
			return nil, err
		}
	}
}

// WriteCSV writes a relation as CSV with a typed header; ReadCSV can load
// it back losslessly (modulo float formatting).
func WriteCSV(rel *relalg.Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(rel.Schema.Columns))
	for i, c := range rel.Schema.Columns {
		suffix := "str"
		switch c.Type {
		case relalg.KindNumber:
			suffix = "num"
		case relalg.KindBool:
			suffix = "bool"
		}
		header[i] = c.Name + ":" + suffix
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range rel.Tuples {
		rec := make([]string, len(t))
		for i, v := range t {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSVTable creates a table in db from CSV content.
func LoadCSVTable(db *DB, name string, r io.Reader) (*Table, error) {
	rel, err := ReadCSV(name, r)
	if err != nil {
		return nil, err
	}
	t, err := db.CreateTable(name, rel.Schema)
	if err != nil {
		return nil, err
	}
	for _, row := range rel.Tuples {
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}
