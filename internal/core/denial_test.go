package core

import (
	"strings"
	"testing"

	"repro/internal/fixture"
)

// TestDenialPrunesImpossibleCase: an integrity constraint saying source 1
// never reports XYZ currency kills the case a query tries to force.
func TestDenialPrunesImpossibleCase(t *testing.T) {
	reg := fixture.Registry()
	if err := reg.AddDenialText(`r1(N, Rev, C), C = "XYZ"`); err != nil {
		t.Fatal(err)
	}
	m := New(reg)
	_, err := m.MediateSQL("SELECT r1.cname FROM r1 WHERE r1.currency = 'XYZ'", "c2")
	if err == nil || !strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("err = %v, want unsatisfiable (denial pruned the only case)", err)
	}
	// Unrelated queries are untouched.
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 3 {
		t.Errorf("branches = %d", len(med.Branches))
	}
}

// TestDenialLeavesOpenCasesAlone: a denial whose violation is not definite
// (comparisons over unbound values) must not prune.
func TestDenialLeavesOpenCasesAlone(t *testing.T) {
	reg := fixture.Registry()
	// "Revenues are never negative" — over an unbound revenue variable
	// this cannot be definitely proven, so all branches survive.
	if err := reg.AddDenialText(`r1(N, Rev, C), Rev < 0`); err != nil {
		t.Fatal(err)
	}
	m := New(reg)
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 3 {
		t.Errorf("branches = %d", len(med.Branches))
	}
	// A query pinning the converted value to -5 makes the violation
	// definite only where conversion is the identity: in the USD branch
	// the raw column itself must be -5, so that branch is pruned; the JPY
	// and other branches constrain raw*rate = -5, which does not
	// definitely put the raw value below zero (rates are unknown at
	// mediation time), so they conservatively survive.
	med2, err := m.MediateSQL("SELECT r1.cname FROM r1 WHERE r1.revenue = -5", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med2.Branches) != 2 {
		t.Fatalf("branches = %d, want 2 (USD branch pruned):\n%s", len(med2.Branches), med2.SQL())
	}
	for _, b := range med2.Branches {
		if strings.Contains(b.String(), "= 'USD'") && !strings.Contains(b.String(), "r3") {
			t.Errorf("USD identity branch survived the denial:\n%s", b)
		}
	}
}

func TestDenialValidation(t *testing.T) {
	reg := fixture.Registry()
	if err := reg.AddDenialText(`r1(N, Rev)`); err == nil {
		t.Error("wrong-arity denial accepted")
	}
	if err := reg.AddDenialText(`not valid prolog ((`); err == nil {
		t.Error("unparseable denial accepted")
	}
	if err := reg.AddDenialText(`r3(C, C, R)`); err != nil {
		t.Errorf("self-rate denial rejected: %v", err)
	}
	if got := len(reg.Denials()); got != 1 {
		t.Errorf("denials = %d", got)
	}
}
