package core

import (
	"strings"
	"testing"

	"repro/internal/fixture"
)

// TestBranchExplanations: each branch of the paper's mediated query
// carries a human-readable derivation reconstructed from the abductive
// proof trace: the context-theory cases that applied and the conversions
// inserted.
func TestBranchExplanations(t *testing.T) {
	m := New(fixture.Registry())
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	text := med.ExplainText()

	wantFragments := []string{
		// Every branch mentions the elevation of both money columns.
		"convert r1.revenue (companyFinancials, context c1) into context c2",
		"convert r2.expenses (companyFinancials, context c2) into context c2",
		// The JPY case of the scale-factor declaration fired somewhere.
		"scaleFactor of r1.revenue = 1000 when currency = \"JPY\"",
		// The default case fired somewhere else.
		"scaleFactor of r1.revenue = 1 otherwise",
		// The attribute-valued currency modifier.
		"currency of r1.revenue = value of attribute currency",
		// At least one branch applied the currency conversion rule.
		"apply currency conversion",
	}
	for _, want := range wantFragments {
		if !strings.Contains(text, want) {
			t.Errorf("explanations missing %q:\n%s", want, text)
		}
	}

	// Per-branch: the JPY branch mentions the 1000 case; the USD identity
	// branch does not apply the currency conversion rule.
	for i, b := range med.Branches {
		notes := strings.Join(med.Explanation(i), "\n")
		s := b.String()
		switch {
		case strings.Contains(s, "= 'JPY'"):
			if !strings.Contains(notes, "= 1000 when currency") {
				t.Errorf("JPY branch notes:\n%s", notes)
			}
		case strings.Contains(s, "= 'USD'") && !strings.Contains(s, "r3"):
			if strings.Contains(notes, "apply currency conversion") {
				t.Errorf("USD branch should not convert currency:\n%s", notes)
			}
		}
	}
}

func TestExplanationBounds(t *testing.T) {
	m := New(fixture.Registry())
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if med.Explanation(-1) != nil || med.Explanation(99) != nil {
		t.Error("out-of-range explanation not nil")
	}
}
