package core

import (
	"strings"
	"testing"

	"repro/internal/domain"
	"repro/internal/fixture"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
)

// jpyRegistry extends the Figure 2 registry with a receiver context that
// wants thousands of JPY — mediation in the opposite direction.
func jpyRegistry() *domain.Registry {
	reg := fixture.Registry()
	cj := domain.NewContext("c_jpy")
	if err := cj.DeclareConst("companyFinancials", "scaleFactor", 1000); err != nil {
		panic(err)
	}
	if err := cj.DeclareConst("companyFinancials", "currency", "JPY"); err != nil {
		panic(err)
	}
	reg.MustAddContext(cj)
	return reg
}

// TestReceiverInJPY mediates r2 (USD, scale 1) into a kJPY receiver: the
// value is divided by 1000 and multiplied by the USD→JPY rate.
func TestReceiverInJPY(t *testing.T) {
	m := New(jpyRegistry())
	med, err := m.MediateSQL("SELECT r2.cname, r2.expenses FROM r2", "c_jpy")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d:\n%s", len(med.Branches), med.SQL())
	}
	s := med.Branches[0].String()
	if !strings.Contains(s, "/ 1000") {
		t.Errorf("missing scale division:\n%s", s)
	}
	if !strings.Contains(s, "r3.fromCur = 'USD'") || !strings.Contains(s, "r3.toCur = 'JPY'") {
		t.Errorf("missing USD→JPY rate join:\n%s", s)
	}
}

// TestReceiverInJPYFromAttrSource mediates r1 (attribute-valued currency)
// into kJPY: the JPY rows need only the scale step (already 1000), USD
// rows need rate conversion.
func TestReceiverInJPYFromAttrSource(t *testing.T) {
	m := New(jpyRegistry())
	med, err := m.MediateSQL("SELECT r1.cname, r1.revenue FROM r1", "c_jpy")
	if err != nil {
		t.Fatal(err)
	}
	// Exactly two cases: JPY rows are already in the receiver's terms
	// (scale 1000, JPY), everything else divides by 1000 and converts.
	// USD is not special for a JPY receiver, so no third branch exists.
	if len(med.Branches) != 2 {
		t.Fatalf("branches = %d, want 2:\n%s", len(med.Branches), med.SQL())
	}
	var jpyIdentity, restConvert bool
	for _, b := range med.Branches {
		s := b.String()
		if strings.Contains(s, "= 'JPY'") && !strings.Contains(s, "r3") {
			jpyIdentity = true
			if strings.Contains(s, "*") || strings.Contains(s, "/") {
				t.Errorf("JPY→kJPY branch should be identity:\n%s", s)
			}
		}
		if strings.Contains(s, "<> 'JPY'") && strings.Contains(s, "/ 1000 * r3.rate") {
			restConvert = true
		}
	}
	if !jpyIdentity || !restConvert {
		t.Errorf("case analysis wrong:\n%s", med.SQL())
	}
}

// multiColRegistry has one relation with two converted columns, like the
// finanalysis example.
func multiColRegistry() *domain.Registry {
	reg := domain.NewRegistry(fixture.Model())
	jp := domain.NewContext("japan")
	if err := jp.DeclareConst("companyFinancials", "scaleFactor", 1000); err != nil {
		panic(err)
	}
	if err := jp.DeclareConst("companyFinancials", "currency", "JPY"); err != nil {
		panic(err)
	}
	reg.MustAddContext(jp)
	reg.MustAddContext(fixture.ContextC2())
	schema := relalg.NewSchema(
		relalg.Column{Name: "cname", Type: relalg.KindString},
		relalg.Column{Name: "revenue", Type: relalg.KindNumber},
		relalg.Column{Name: "expenses", Type: relalg.KindNumber},
	)
	reg.MustRegisterRelation("jp_fin", schema, &domain.Elevation{
		Relation: "jp_fin",
		Context:  "japan",
		Columns: []domain.ElevatedColumn{
			{Column: "cname", SemType: "companyName"},
			{Column: "revenue", SemType: "companyFinancials"},
			{Column: "expenses", SemType: "companyFinancials"},
		},
	})
	reg.MustRegisterRelation("r3", fixture.R3Schema(), nil)
	reg.MustAddAncillary("rate", "r3")
	return reg
}

// TestTwoConvertedColumnsOneRelation: both revenue and expenses convert;
// the arithmetic combines two converted values in one expression.
func TestTwoConvertedColumnsOneRelation(t *testing.T) {
	m := New(multiColRegistry())
	med, err := m.MediateSQL(
		"SELECT j.cname, j.revenue - j.expenses AS profit FROM jp_fin j WHERE j.revenue > j.expenses", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d (constant context, no splits):\n%s", len(med.Branches), med.SQL())
	}
	s := med.Branches[0].String()
	// Both sides scaled and rated; the comparison too.
	if strings.Count(s, "* 1000 *") < 2 {
		t.Errorf("conversion arithmetic:\n%s", s)
	}
	// Both conversions share one rate lookup or use two; either is sound,
	// but the FROM must mention r3.
	if !strings.Contains(s, "r3") {
		t.Errorf("missing rate join:\n%s", s)
	}
}

// TestSelfJoin: the same relation twice under different bindings.
func TestSelfJoin(t *testing.T) {
	m := New(fixture.Registry())
	med, err := m.MediateSQL(
		"SELECT a.cname FROM r2 a, r2 b WHERE a.cname = b.cname AND a.expenses > b.expenses", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d", len(med.Branches))
	}
	b := med.Branches[0]
	if len(b.From) != 2 {
		t.Fatalf("self-join FROM = %v", b.From)
	}
	names := map[string]bool{}
	for _, f := range b.From {
		names[f.Binding()] = true
	}
	if !names["a"] || !names["b"] {
		t.Errorf("aliases lost: %v", b.From)
	}
}

// TestArithmeticBothSides: converted columns inside arithmetic on both
// sides of a comparison.
func TestArithmeticBothSides(t *testing.T) {
	m := New(fixture.Registry())
	med, err := m.MediateSQL(
		"SELECT r1.cname FROM r1, r2 WHERE r1.revenue * 2 > r2.expenses + 1000", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 3 {
		t.Fatalf("branches = %d", len(med.Branches))
	}
	found := false
	for _, b := range med.Branches {
		if strings.Contains(b.String(), "* 1000 * r3.rate * 2 > r2.expenses + 1000") {
			found = true
		}
	}
	if !found {
		t.Errorf("JPY branch comparison shape:\n%s", med.SQL())
	}
}

// TestQueryOverAncillaryDirect: the rate table is an ordinary queryable
// relation too.
func TestQueryOverAncillaryDirect(t *testing.T) {
	m := New(fixture.Registry())
	med, err := m.MediateSQL("SELECT r3.fromCur, r3.rate FROM r3 WHERE r3.toCur = 'USD'", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d", len(med.Branches))
	}
	if strings.Contains(med.Branches[0].String(), "rate(") {
		t.Errorf("ancillary predicate leaked into SQL:\n%s", med.Branches[0])
	}
}

// TestKeepEntailedAblation: with simplification off, the USD branch keeps
// its entailed disequality.
func TestKeepEntailedAblation(t *testing.T) {
	m := New(fixture.Registry())
	m.KeepEntailed = true
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	foundNoisy := false
	for _, b := range med.Branches {
		s := b.String()
		if strings.Contains(s, "= 'USD'") && !strings.Contains(s, "r3") &&
			strings.Contains(s, "'USD' <> 'JPY'") {
			foundNoisy = true
		}
	}
	if !foundNoisy {
		t.Errorf("ablation did not retain entailed constraint:\n%s", med.SQL())
	}
	// Answers are unaffected: branch count identical.
	if len(med.Branches) != 3 {
		t.Errorf("branches = %d", len(med.Branches))
	}
}

// TestBranchesAreMutuallyExclusive: for every pair of branches of the
// paper's mediated query, their WHERE clauses cannot hold of the same
// tuple (checked symbolically over the currency column: the case-defining
// predicates on rl.currency are disjoint).
func TestBranchesAreMutuallyExclusive(t *testing.T) {
	m := New(fixture.Registry())
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	type caseDef struct {
		eq  string
		neq map[string]bool
	}
	var defs []caseDef
	for _, b := range med.Branches {
		d := caseDef{neq: map[string]bool{}}
		for _, p := range splitPreds(b) {
			if strings.HasPrefix(p, "rl.currency = ") {
				d.eq = p[len("rl.currency = "):]
			}
			if strings.HasPrefix(p, "rl.currency <> ") {
				d.neq[p[len("rl.currency <> "):]] = true
			}
		}
		defs = append(defs, d)
	}
	for i := range defs {
		for j := i + 1; j < len(defs); j++ {
			a, b := defs[i], defs[j]
			disjoint := (a.eq != "" && b.eq != "" && a.eq != b.eq) ||
				(a.eq != "" && b.neq[a.eq]) || (b.eq != "" && a.neq[b.eq])
			if !disjoint {
				t.Errorf("branches %d and %d are not provably disjoint: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func splitPreds(b *sqlparse.Select) []string {
	var out []string
	for _, p := range sqlparse.Conjuncts(b.Where) {
		out = append(out, p.String())
	}
	return out
}
