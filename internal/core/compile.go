package core

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/domain"
	"repro/internal/sqlparse"
)

// queryCompile holds the compilation of one SELECT into abductive goals,
// plus everything emit needs to turn solutions back into SQL branches.
type queryCompile struct {
	m        *Mediator
	sel      *sqlparse.Select
	receiver string

	prog  *datalog.Program // registry program + query-local OR clauses
	goals []datalog.Term

	bindings []bindingInfo
	semAdded map[string]bool

	outItems   []outItem
	orderTerms []orderTerm

	aggregated bool
	post       *Post

	auxCount int
}

type bindingInfo struct {
	name     string // alias or table name
	relation string
	rawVars  []datalog.Term
}

type outItem struct {
	name    string
	term    datalog.Term
	exprStr string // original expression text, for ORDER BY matching
}

type orderTerm struct {
	term datalog.Term
	desc bool
	name string // output column this key maps to ("" when not projected)
}

func (m *Mediator) compileQuery(sel *sqlparse.Select, receiver string, base *datalog.Program) (*queryCompile, error) {
	qc := &queryCompile{
		m:        m,
		sel:      sel,
		receiver: receiver,
		prog:     base, // cloned lazily when OR clauses are needed
		semAdded: map[string]bool{},
	}
	if err := qc.compileFrom(); err != nil {
		return nil, err
	}
	qc.aggregated = len(sel.GroupBy) > 0 || anyAggregate(sel)

	// WHERE first so its goals follow the relation and sem goals that
	// compileScalar adds on demand (goal order: rel atoms, sem goals,
	// comparisons).
	var whereGoals []datalog.Term
	if sel.Where != nil {
		gs, err := qc.compileBool(sel.Where, false)
		if err != nil {
			return nil, err
		}
		whereGoals = gs
	}

	if qc.aggregated {
		if err := qc.compileAggregated(); err != nil {
			return nil, err
		}
	} else {
		if err := qc.compilePlainItems(); err != nil {
			return nil, err
		}
		if err := qc.compileOrderBy(); err != nil {
			return nil, err
		}
	}
	qc.goals = append(qc.goals, whereGoals...)
	return qc, nil
}

// compileFrom registers one abducible relation goal per FROM entry.
func (qc *queryCompile) compileFrom() error {
	if len(qc.sel.From) == 0 {
		return fmt.Errorf("core: query has no FROM clause")
	}
	seen := map[string]bool{}
	for _, ref := range qc.sel.From {
		schema, ok := qc.m.Registry.Schema(ref.Table)
		if !ok {
			return fmt.Errorf("core: unknown relation %s (registered: %v)", ref.Table, qc.m.Registry.RelationNames())
		}
		b := ref.Binding()
		if seen[b] {
			return fmt.Errorf("core: duplicate binding %s in FROM", b)
		}
		seen[b] = true
		info := bindingInfo{name: b, relation: ref.Table}
		for _, col := range schema.Columns {
			info.rawVars = append(info.rawVars, datalog.NewVar("R_"+b+"_"+col.Name))
		}
		qc.bindings = append(qc.bindings, info)
		qc.goals = append(qc.goals, datalog.Comp(domain.RelPred(ref.Table), info.rawVars...))
	}
	return nil
}

// resolveCol finds the binding and column for a column reference.
func (qc *queryCompile) resolveCol(c *sqlparse.ColRef) (*bindingInfo, int, error) {
	if c.Table != "" {
		for i := range qc.bindings {
			b := &qc.bindings[i]
			if b.name == c.Table {
				schema, _ := qc.m.Registry.Schema(b.relation)
				idx := schema.Index(c.Column)
				if idx < 0 {
					return nil, 0, fmt.Errorf("core: relation %s (binding %s) has no column %s", b.relation, b.name, c.Column)
				}
				return b, idx, nil
			}
		}
		return nil, 0, fmt.Errorf("core: no FROM binding named %s for column %s", c.Table, c)
	}
	var found *bindingInfo
	foundIdx := -1
	for i := range qc.bindings {
		b := &qc.bindings[i]
		schema, _ := qc.m.Registry.Schema(b.relation)
		if idx := schema.Index(c.Column); idx >= 0 {
			if found != nil {
				return nil, 0, fmt.Errorf("core: column %s is ambiguous (in %s and %s)", c.Column, found.name, b.name)
			}
			found, foundIdx = b, idx
		}
	}
	if found == nil {
		return nil, 0, fmt.Errorf("core: unknown column %s", c.Column)
	}
	return found, foundIdx, nil
}

// valueTerm returns the datalog term carrying the receiver-context value
// of a column: the raw relation variable for context-insensitive columns,
// or the converted variable defined by a sem_ goal (added on first use).
func (qc *queryCompile) valueTerm(c *sqlparse.ColRef) (datalog.Term, error) {
	b, idx, err := qc.resolveCol(c)
	if err != nil {
		return nil, err
	}
	schema, _ := qc.m.Registry.Schema(b.relation)
	col := schema.Columns[idx].Name
	needs, err := qc.m.Registry.NeedsConversion(b.relation, col)
	if err != nil {
		return nil, err
	}
	if !needs {
		return b.rawVars[idx], nil
	}
	key := b.name + "\x00" + col
	v := datalog.NewVar("C_" + b.name + "_" + col)
	if !qc.semAdded[key] {
		qc.semAdded[key] = true
		args := append(append([]datalog.Term(nil), b.rawVars...), v)
		qc.goals = append(qc.goals, datalog.Comp(domain.SemPred(qc.receiver, b.relation, col), args...))
	}
	return v, nil
}

// compileScalar translates a scalar SQL expression into a datalog term.
func (qc *queryCompile) compileScalar(e sqlparse.Expr) (datalog.Term, error) {
	switch e := e.(type) {
	case *sqlparse.ColRef:
		return qc.valueTerm(e)
	case sqlparse.NumberLit:
		return datalog.Number(float64(e)), nil
	case sqlparse.StringLit:
		return datalog.Str(string(e)), nil
	case *sqlparse.UnaryExpr:
		if e.Op != "-" {
			return nil, fmt.Errorf("core: %s is not a scalar operator", e.Op)
		}
		x, err := qc.compileScalar(e.X)
		if err != nil {
			return nil, err
		}
		return datalog.Comp(datalog.FuncNeg, x), nil
	case *sqlparse.BinaryExpr:
		var f string
		switch e.Op {
		case "+":
			f = datalog.FuncAdd
		case "-":
			f = datalog.FuncSub
		case "*":
			f = datalog.FuncMul
		case "/":
			f = datalog.FuncDiv
		default:
			return nil, fmt.Errorf("core: %q in scalar position", e.Op)
		}
		l, err := qc.compileScalar(e.L)
		if err != nil {
			return nil, err
		}
		r, err := qc.compileScalar(e.R)
		if err != nil {
			return nil, err
		}
		return datalog.Comp(f, l, r), nil
	case *sqlparse.FuncCall:
		return nil, fmt.Errorf("core: aggregate %s is only allowed in SELECT/HAVING/ORDER BY of a grouped query", e.Name)
	default:
		return nil, fmt.Errorf("core: cannot mediate expression %s", e.String())
	}
}

// constraintPred maps SQL comparison operators to constraint predicates.
func constraintPred(op string, negated bool) (string, error) {
	if negated {
		switch op {
		case "=":
			op = "<>"
		case "<>":
			op = "="
		case "<":
			op = ">="
		case ">=":
			op = "<"
		case ">":
			op = "<="
		case "<=":
			op = ">"
		default:
			return "", fmt.Errorf("core: cannot negate %q", op)
		}
	}
	switch op {
	case "=":
		return datalog.PredEq, nil
	case "<>":
		return datalog.PredNeq, nil
	case "<":
		return datalog.PredLt, nil
	case "<=":
		return datalog.PredLe, nil
	case ">":
		return datalog.PredGt, nil
	case ">=":
		return datalog.PredGe, nil
	}
	return "", fmt.Errorf("core: unknown comparison %q", op)
}

// compileBool translates a boolean WHERE expression into goals, pushing
// negation down to comparisons and compiling OR into a query-local
// auxiliary predicate with one clause per arm (so the abductive case
// enumeration handles disjunction natively).
func (qc *queryCompile) compileBool(e sqlparse.Expr, negated bool) ([]datalog.Term, error) {
	switch e := e.(type) {
	case *sqlparse.BinaryExpr:
		switch e.Op {
		case "AND", "OR":
			conj := (e.Op == "AND") != negated // negation swaps AND/OR
			l, err := qc.compileBool(e.L, negated)
			if err != nil {
				return nil, err
			}
			r, err := qc.compileBool(e.R, negated)
			if err != nil {
				return nil, err
			}
			if conj {
				return append(l, r...), nil
			}
			return qc.orGoal(l, r)
		default:
			pred, err := constraintPred(e.Op, negated)
			if err != nil {
				return nil, err
			}
			l, err := qc.compileScalar(e.L)
			if err != nil {
				return nil, err
			}
			r, err := qc.compileScalar(e.R)
			if err != nil {
				return nil, err
			}
			return []datalog.Term{datalog.Comp(pred, l, r)}, nil
		}
	case *sqlparse.UnaryExpr:
		if e.Op == "NOT" {
			return qc.compileBool(e.X, !negated)
		}
		return nil, fmt.Errorf("core: %q is not a boolean operator", e.Op)
	case sqlparse.BoolLit:
		if bool(e) != negated {
			return nil, nil // trivially true
		}
		return []datalog.Term{datalog.Atom("fail")}, nil
	case *sqlparse.IsNull:
		return nil, fmt.Errorf("core: IS NULL cannot be mediated (COIN sources are null-free)")
	default:
		return nil, fmt.Errorf("core: %s is not a boolean expression", e.String())
	}
}

// orGoal wraps two goal lists as a fresh auxiliary predicate with two
// clauses, returning the single goal invoking it.
func (qc *queryCompile) orGoal(left, right []datalog.Term) ([]datalog.Term, error) {
	var vars []datalog.Term
	seen := map[string]bool{}
	collect := func(goals []datalog.Term) {
		for _, g := range goals {
			for _, v := range datalog.Vars(g, nil) {
				if !seen[v.Name] {
					seen[v.Name] = true
					vars = append(vars, v)
				}
			}
		}
	}
	collect(left)
	collect(right)
	qc.auxCount++
	pred := fmt.Sprintf("qor_%d", qc.auxCount)
	// The base program is shared across queries; clone before the first
	// query-local clause.
	if qc.auxCount == 1 {
		qc.prog = qc.prog.Clone()
	}
	head := datalog.Comp(pred, vars...)
	qc.prog.Add(
		datalog.Clause{Head: head, Body: left},
		datalog.Clause{Head: head, Body: right},
	)
	return []datalog.Term{head}, nil
}

// compilePlainItems handles the non-aggregated SELECT list.
func (qc *queryCompile) compilePlainItems() error {
	used := map[string]bool{}
	addItem := func(name string, term datalog.Term, exprStr string) {
		if used[name] {
			for i := 2; ; i++ {
				cand := fmt.Sprintf("%s_%d", name, i)
				if !used[cand] {
					name = cand
					break
				}
			}
		}
		used[name] = true
		qc.outItems = append(qc.outItems, outItem{name: name, term: term, exprStr: exprStr})
	}
	for i, it := range qc.sel.Items {
		if it.Star {
			if err := qc.expandStar(it.StarTable, addItem); err != nil {
				return err
			}
			continue
		}
		term, err := qc.compileScalar(it.Expr)
		if err != nil {
			return err
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*sqlparse.ColRef); ok {
				name = c.Column
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		addItem(name, term, it.Expr.String())
	}
	return nil
}

func (qc *queryCompile) expandStar(table string, addItem func(string, datalog.Term, string)) error {
	for i := range qc.bindings {
		b := &qc.bindings[i]
		if table != "" && b.name != table {
			continue
		}
		schema, _ := qc.m.Registry.Schema(b.relation)
		for _, col := range schema.Columns {
			ref := &sqlparse.ColRef{Table: b.name, Column: col.Name}
			term, err := qc.valueTerm(ref)
			if err != nil {
				return err
			}
			addItem(col.Name, term, ref.String())
		}
		if table != "" {
			return nil
		}
	}
	if table != "" {
		return fmt.Errorf("core: no FROM binding named %s for %s.*", table, table)
	}
	return nil
}

// compileOrderBy compiles ORDER BY keys as terms and maps them to output
// columns where possible (needed when the mediated union has several
// branches and ordering must run post-union).
func (qc *queryCompile) compileOrderBy() error {
	for _, o := range qc.sel.OrderBy {
		// A key naming a projected column (by alias or by repeating its
		// expression) reuses that column's compiled term, so ORDER BY
		// profit works when profit is an output alias.
		want := o.Expr.String()
		var term datalog.Term
		name := ""
		for _, it := range qc.outItems {
			if it.exprStr == want || it.name == want {
				term, name = it.term, it.name
				break
			}
		}
		if term == nil {
			t, err := qc.compileScalar(o.Expr)
			if err != nil {
				return err
			}
			term = t
		}
		qc.orderTerms = append(qc.orderTerms, orderTerm{term: term, desc: o.Desc, name: name})
	}
	return nil
}

// anyAggregate reports whether the query uses aggregate functions.
func anyAggregate(sel *sqlparse.Select) bool {
	check := func(e sqlparse.Expr) bool {
		found := false
		sqlparse.WalkExprs(e, func(x sqlparse.Expr) bool {
			if _, ok := x.(*sqlparse.FuncCall); ok {
				found = true
				return false
			}
			return true
		})
		return found
	}
	for _, it := range sel.Items {
		if !it.Star && check(it.Expr) {
			return true
		}
	}
	if sel.Having != nil && check(sel.Having) {
		return true
	}
	for _, o := range sel.OrderBy {
		if check(o.Expr) {
			return true
		}
	}
	return false
}

// compileAggregated handles grouped/aggregate queries: the branches
// project group keys and converted aggregate arguments; the Post step
// groups and aggregates over the union of the branches. Branches are
// mutually exclusive cases, so aggregating over their UNION ALL equals
// aggregating over the (virtual) mediated relation.
func (qc *queryCompile) compileAggregated() error {
	post := &Post{Limit: qc.sel.Limit, Distinct: qc.sel.Distinct}

	// Group keys become branch output columns g*.
	keyNames := make([]string, len(qc.sel.GroupBy))
	keyStrs := make([]string, len(qc.sel.GroupBy))
	used := map[string]bool{}
	for j, k := range qc.sel.GroupBy {
		term, err := qc.compileScalar(k)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("g%d", j)
		if c, ok := k.(*sqlparse.ColRef); ok && !used[c.Column] {
			name = c.Column
		}
		used[name] = true
		keyNames[j], keyStrs[j] = name, k.String()
		qc.outItems = append(qc.outItems, outItem{name: name, term: term, exprStr: k.String()})
		post.GroupBy = append(post.GroupBy, &sqlparse.ColRef{Column: name})
	}

	// Aggregate calls become branch output columns a*.
	aggCols := map[string]string{} // FuncCall.String() -> column name
	var collectErr error
	collectAggs := func(e sqlparse.Expr) {
		sqlparse.WalkExprs(e, func(x sqlparse.Expr) bool {
			fc, ok := x.(*sqlparse.FuncCall)
			if !ok {
				return true
			}
			key := fc.String()
			if _, done := aggCols[key]; done {
				return false
			}
			name := fmt.Sprintf("a%d", len(aggCols))
			aggCols[key] = name
			if !fc.Star {
				if len(fc.Args) != 1 {
					collectErr = fmt.Errorf("core: aggregate %s wants 1 argument", fc.Name)
					return false
				}
				term, err := qc.compileScalar(fc.Args[0])
				if err != nil {
					collectErr = err
					return false
				}
				qc.outItems = append(qc.outItems, outItem{name: name, term: term, exprStr: fc.String()})
			}
			return false
		})
	}
	for _, it := range qc.sel.Items {
		if it.Star {
			return fmt.Errorf("core: SELECT * cannot be combined with aggregation")
		}
		collectAggs(it.Expr)
	}
	if qc.sel.Having != nil {
		collectAggs(qc.sel.Having)
	}
	for _, o := range qc.sel.OrderBy {
		collectAggs(o.Expr)
	}
	if collectErr != nil {
		return collectErr
	}

	// rewrite maps an original expression onto the branch output columns.
	var rewrite func(e sqlparse.Expr) (sqlparse.Expr, error)
	rewrite = func(e sqlparse.Expr) (sqlparse.Expr, error) {
		for j, ks := range keyStrs {
			if e.String() == ks {
				return &sqlparse.ColRef{Column: keyNames[j]}, nil
			}
		}
		switch e := e.(type) {
		case *sqlparse.FuncCall:
			if e.Star {
				return &sqlparse.FuncCall{Name: e.Name, Star: true}, nil
			}
			return &sqlparse.FuncCall{Name: e.Name, Args: []sqlparse.Expr{&sqlparse.ColRef{Column: aggCols[e.String()]}}}, nil
		case *sqlparse.BinaryExpr:
			l, err := rewrite(e.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(e.R)
			if err != nil {
				return nil, err
			}
			return sqlparse.Bin(e.Op, l, r), nil
		case *sqlparse.UnaryExpr:
			x, err := rewrite(e.X)
			if err != nil {
				return nil, err
			}
			return &sqlparse.UnaryExpr{Op: e.Op, X: x}, nil
		case sqlparse.NumberLit, sqlparse.StringLit, sqlparse.BoolLit, sqlparse.NullLit:
			return e, nil
		case *sqlparse.ColRef:
			return nil, fmt.Errorf("core: column %s must appear in GROUP BY or inside an aggregate", e)
		default:
			return nil, fmt.Errorf("core: cannot rewrite %s over the mediated union", e.String())
		}
	}

	origStrs := make([]string, len(qc.sel.Items))
	for i, it := range qc.sel.Items {
		origStrs[i] = it.Expr.String()
		re, err := rewrite(it.Expr)
		if err != nil {
			return err
		}
		alias := it.Alias
		if alias == "" {
			if c, ok := re.(*sqlparse.ColRef); ok {
				alias = c.Column
			} else {
				alias = fmt.Sprintf("col%d", i+1)
			}
		}
		post.Items = append(post.Items, sqlparse.SelectItem{Expr: re, Alias: alias})
	}
	if qc.sel.Having != nil {
		re, err := rewrite(qc.sel.Having)
		if err != nil {
			return err
		}
		post.Having = re
	}
	// ORDER BY runs over the aggregated output, whose columns are the
	// item aliases: keys must name an output column, by alias or by
	// repeating the item expression.
	for _, o := range qc.sel.OrderBy {
		name := ""
		for i, it := range post.Items {
			if origStrs[i] == o.Expr.String() || (func() bool {
				c, ok := o.Expr.(*sqlparse.ColRef)
				return ok && c.Table == "" && c.Column == it.Alias
			})() {
				name = it.Alias
				break
			}
		}
		if name == "" {
			return fmt.Errorf("core: ORDER BY key %s of an aggregated query must be a projected column", o.Expr)
		}
		post.OrderBy = append(post.OrderBy, sqlparse.OrderItem{Expr: &sqlparse.ColRef{Column: name}, Desc: o.Desc})
	}
	qc.post = post
	return nil
}
