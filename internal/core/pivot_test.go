package core

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/domain"
	"repro/internal/fixture"
)

// pivotRegistry swaps the plain lookup conversion for the pivot variant
// (two-hop via USD).
func pivotRegistry() *domain.Registry {
	m := domain.NewModel()
	m.MustAddType(&domain.SemType{Name: "companyName"})
	m.MustAddType(&domain.SemType{Name: "companyFinancials", Modifiers: []string{"scaleFactor", "currency"}})
	m.MustAddConversion(domain.RatioConversion("scaleFactor"))
	m.MustAddConversion(domain.PivotLookupConversion("currency", "rate", datalog.Str("USD")))

	reg := domain.NewRegistry(m)
	reg.MustAddContext(fixture.ContextC1())
	chf := domain.NewContext("c_chf")
	if err := chf.DeclareConst("companyFinancials", "scaleFactor", 1); err != nil {
		panic(err)
	}
	if err := chf.DeclareConst("companyFinancials", "currency", "CHF"); err != nil {
		panic(err)
	}
	reg.MustAddContext(chf)
	reg.MustRegisterRelation("r1", fixture.R1Schema(), &domain.Elevation{
		Relation: "r1",
		Context:  "c1",
		Columns: []domain.ElevatedColumn{
			{Column: "cname", SemType: "companyName"},
			{Column: "revenue", SemType: "companyFinancials"},
		},
	})
	reg.MustRegisterRelation("r3", fixture.R3Schema(), nil)
	reg.MustAddAncillary("rate", "r3")
	return reg
}

// TestPivotConversionBranches: converting into CHF (which the rate source
// may not quote directly) produces both a direct-rate branch and a
// two-hop-via-USD branch per currency case; execution validates whichever
// has data.
func TestPivotConversionBranches(t *testing.T) {
	m := New(pivotRegistry())
	med, err := m.MediateSQL("SELECT r1.cname, r1.revenue FROM r1 WHERE r1.currency = 'GBP'", "c_chf")
	if err != nil {
		t.Fatal(err)
	}
	// One currency case (GBP pinned), two access paths: direct GBP→CHF
	// and GBP→USD→CHF.
	if len(med.Branches) != 2 {
		t.Fatalf("branches = %d:\n%s", len(med.Branches), med.SQL())
	}
	var direct, twoHop bool
	for _, b := range med.Branches {
		s := b.String()
		switch strings.Count(s, "r3") {
		case 0:
		default:
			if strings.Contains(s, "r3_2") {
				twoHop = true
				if !strings.Contains(s, "* r3.rate * r3_2.rate") {
					t.Errorf("two-hop arithmetic:\n%s", s)
				}
			} else {
				direct = true
			}
		}
	}
	if !direct || !twoHop {
		t.Errorf("paths: direct=%v twoHop=%v\n%s", direct, twoHop, med.SQL())
	}
}

// TestPivotConversionIdentityUnchanged: converting a currency equal to the
// receiver's needs no branch beyond identity, even with the pivot clause
// present (pivot requires C1 != pivot and C2 != pivot; with receiver CHF
// and source CHF the identity clause wins and the others are inconsistent).
func TestPivotConversionIdentityUnchanged(t *testing.T) {
	m := New(pivotRegistry())
	med, err := m.MediateSQL("SELECT r1.revenue FROM r1 WHERE r1.currency = 'CHF'", "c_chf")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d:\n%s", len(med.Branches), med.SQL())
	}
}
