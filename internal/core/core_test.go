package core

import (
	"strings"
	"testing"

	"repro/internal/fixture"
	"repro/internal/sqlparse"
)

func paperMediator() *Mediator { return New(fixture.Registry()) }

// TestPaperExampleMediation is experiment E1's rewriting half: the paper's
// query Q1 must mediate into a 3-branch union with exactly the paper's
// case structure (USD identity / JPY scale-and-convert / other convert).
func TestPaperExampleMediation(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 3 {
		t.Fatalf("branches = %d, want 3:\n%s", len(med.Branches), med.SQL())
	}
	if med.Post != nil {
		t.Errorf("unexpected post-processing: %+v", med.Post)
	}

	classify := func(b *sqlparse.Select) string {
		s := b.String()
		switch {
		case strings.Contains(s, "= 'JPY'"):
			return "JPY"
		case strings.Contains(s, "= 'USD'") && !strings.Contains(s, "r3"):
			return "USD"
		default:
			return "other"
		}
	}
	byCase := map[string]*sqlparse.Select{}
	for _, b := range med.Branches {
		byCase[classify(b)] = b
	}
	usd, jpy, other := byCase["USD"], byCase["JPY"], byCase["other"]
	if usd == nil || jpy == nil || other == nil {
		t.Fatalf("missing case branch; got:\n%s", med.SQL())
	}

	// USD branch: identity projection, two tables, no rate join, and the
	// entailed <> 'JPY' disequality must have been simplified away.
	if len(usd.From) != 2 {
		t.Errorf("USD branch FROM = %v", usd.From)
	}
	usdSQL := usd.String()
	if strings.Contains(usdSQL, "<>") {
		t.Errorf("USD branch kept an entailed disequality:\n%s", usdSQL)
	}
	if !strings.Contains(usdSQL, "rl.currency = 'USD'") {
		t.Errorf("USD branch missing currency binding:\n%s", usdSQL)
	}
	if strings.Contains(usdSQL, "*") {
		t.Errorf("USD branch should not convert:\n%s", usdSQL)
	}

	// JPY branch: joins the ancillary rate source, multiplies by 1000 and
	// by the rate, in both SELECT and the comparison.
	jpySQL := jpy.String()
	if len(jpy.From) != 3 {
		t.Errorf("JPY branch FROM = %v", jpy.From)
	}
	if !strings.Contains(jpySQL, "rl.revenue * 1000 * r3.rate") {
		t.Errorf("JPY branch projection shape:\n%s", jpySQL)
	}
	if !strings.Contains(jpySQL, "r3.toCur = 'USD'") || !strings.Contains(jpySQL, "r3.fromCur = 'JPY'") {
		t.Errorf("JPY branch rate binding:\n%s", jpySQL)
	}
	if !strings.Contains(jpySQL, "rl.revenue * 1000 * r3.rate > r2.expenses") {
		t.Errorf("JPY branch comparison:\n%s", jpySQL)
	}

	// Other branch: both disequalities, rate join on the currency column.
	otherSQL := other.String()
	if !strings.Contains(otherSQL, "rl.currency <> 'JPY'") || !strings.Contains(otherSQL, "rl.currency <> 'USD'") {
		t.Errorf("other branch disequalities:\n%s", otherSQL)
	}
	if !strings.Contains(otherSQL, "r3.fromCur = rl.currency") && !strings.Contains(otherSQL, "rl.currency = r3.fromCur") {
		t.Errorf("other branch rate join:\n%s", otherSQL)
	}
	if !strings.Contains(otherSQL, "rl.revenue * r3.rate > r2.expenses") {
		t.Errorf("other branch comparison:\n%s", otherSQL)
	}
	// No scale factor multiplication in the non-JPY conversion.
	if strings.Contains(otherSQL, "1000") {
		t.Errorf("other branch should not scale:\n%s", otherSQL)
	}

	// Every branch joins the two companies.
	for name, b := range byCase {
		if !strings.Contains(b.String(), "rl.cname = r2.cname") {
			t.Errorf("%s branch lost the join:\n%s", name, b)
		}
	}
}

// TestMediatedSQLRoundTrips: the mediated text must be valid SQL.
func TestMediatedSQLRoundTrips(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqlparse.Parse(med.Mediated.String()); err != nil {
		t.Errorf("mediated SQL does not re-parse: %v\n%s", err, med.Mediated.String())
	}
	if _, err := sqlparse.Parse(sqlparse.Pretty(med.Mediated)); err != nil {
		t.Errorf("pretty mediated SQL does not re-parse: %v", err)
	}
}

// TestNoConflictQueryUnchanged: a query whose sources share the receiver's
// context mediates to a single branch equivalent to the original.
func TestNoConflictQueryUnchanged(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL("SELECT r2.cname, r2.expenses FROM r2 WHERE r2.expenses > 2000000", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d, want 1:\n%s", len(med.Branches), med.SQL())
	}
	s := med.Branches[0].String()
	if !strings.Contains(s, "r2.expenses > 2000000") {
		t.Errorf("mediated no-conflict query:\n%s", s)
	}
	if strings.Contains(s, "r3") {
		t.Errorf("no-conflict query gained a rate join:\n%s", s)
	}
}

// TestSelectionOnModifierColumnPrunes: a selection that pins the currency
// must prune impossible cases (currency = 'JPY' leaves only the JPY
// branch).
func TestSelectionOnModifierColumnPrunes(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL("SELECT r1.cname, r1.revenue FROM r1 WHERE r1.currency = 'JPY'", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d, want 1 (JPY only):\n%s", len(med.Branches), med.SQL())
	}
	if !strings.Contains(med.Branches[0].String(), "* 1000 *") {
		t.Errorf("JPY-pinned query should scale and convert:\n%s", med.Branches[0])
	}
}

// TestSelectionOnConstantContext: pinning to the receiver's currency
// leaves the identity branch only.
func TestSelectionOnConstantContextPrunes(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL("SELECT r1.revenue FROM r1 WHERE r1.currency = 'USD'", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d, want 1:\n%s", len(med.Branches), med.SQL())
	}
	if strings.Contains(med.Branches[0].String(), "r3") {
		t.Errorf("USD-pinned query should not join rates:\n%s", med.Branches[0])
	}
}

// TestStarExpansionConverts: SELECT * returns receiver-context values, so
// the revenue column is converted per branch.
func TestStarExpansionConverts(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL("SELECT * FROM r1", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 3 {
		t.Fatalf("branches = %d, want 3:\n%s", len(med.Branches), med.SQL())
	}
	for _, b := range med.Branches {
		if len(b.Items) != 3 {
			t.Errorf("star expansion items = %d, want 3", len(b.Items))
		}
	}
}

// TestOrDisjunction: WHERE with OR mediates through an auxiliary
// predicate; each disjunct can trigger its own cases.
func TestOrDisjunction(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(
		"SELECT r1.cname FROM r1 WHERE r1.currency = 'USD' OR r1.currency = 'JPY'", "c2")
	if err != nil {
		t.Fatal(err)
	}
	// cname needs no conversion, but the OR still splits the derivation.
	if len(med.Branches) != 2 {
		t.Fatalf("branches = %d, want 2:\n%s", len(med.Branches), med.SQL())
	}
}

// TestNotPushdown: NOT negates comparisons during compilation.
func TestNotPushdown(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(
		"SELECT r2.cname FROM r2 WHERE NOT (r2.expenses > 100 AND r2.cname = 'IBM')", "c2")
	if err != nil {
		t.Fatal(err)
	}
	// De Morgan: <=100 OR <> IBM — two branches.
	if len(med.Branches) != 2 {
		t.Fatalf("branches = %d, want 2:\n%s", len(med.Branches), med.SQL())
	}
	all := med.Mediated.String()
	if !strings.Contains(all, "<= 100") || !strings.Contains(all, "<> 'IBM'") {
		t.Errorf("negation not pushed to comparisons:\n%s", all)
	}
}

// TestAggregationMediation: aggregates are computed over converted values
// via a post-union step.
func TestAggregationMediation(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL("SELECT SUM(r1.revenue) AS total FROM r1", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if med.Post == nil {
		t.Fatal("aggregate query needs post-processing")
	}
	if !med.UnionAll {
		t.Error("aggregation must union with bag semantics")
	}
	if len(med.Branches) != 3 {
		t.Fatalf("branches = %d, want 3", len(med.Branches))
	}
	// Branches project the converted argument, not the aggregate.
	for _, b := range med.Branches {
		if strings.Contains(b.String(), "SUM") {
			t.Errorf("branch must not aggregate:\n%s", b)
		}
	}
	if len(med.Post.Items) != 1 || !strings.Contains(med.Post.Items[0].Expr.String(), "SUM(") {
		t.Errorf("post items = %+v", med.Post.Items)
	}
}

func TestGroupByMediation(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(
		"SELECT r1.currency, COUNT(*) AS n, SUM(r1.revenue) AS total FROM r1 GROUP BY r1.currency HAVING COUNT(*) > 0 ORDER BY total DESC", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if med.Post == nil || len(med.Post.GroupBy) != 1 {
		t.Fatalf("post = %+v", med.Post)
	}
	if med.Post.Having == nil {
		t.Error("HAVING lost")
	}
	if len(med.Post.OrderBy) != 1 || !med.Post.OrderBy[0].Desc {
		t.Errorf("ORDER BY lost: %+v", med.Post.OrderBy)
	}
}

// TestOrderByConvertedSingleBranch: ORDER BY on a converted column in a
// single-branch mediation must order by the converted expression.
func TestOrderBySingleBranch(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(
		"SELECT r2.cname FROM r2 ORDER BY r2.expenses DESC LIMIT 1", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 1 {
		t.Fatalf("branches = %d", len(med.Branches))
	}
	b := med.Branches[0]
	if len(b.OrderBy) != 1 || b.Limit != 1 {
		t.Errorf("order/limit not attached: %s", b)
	}
}

// TestOrderByMultiBranchPost: ORDER BY over a multi-branch mediation moves
// into the post step referencing the projected column.
func TestOrderByMultiBranchPost(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(
		"SELECT r1.cname, r1.revenue FROM r1 ORDER BY r1.revenue DESC", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 3 {
		t.Fatalf("branches = %d", len(med.Branches))
	}
	if med.Post == nil || len(med.Post.OrderBy) != 1 {
		t.Fatalf("post = %+v", med.Post)
	}
	if med.Post.OrderBy[0].Expr.String() != "revenue" {
		t.Errorf("post order key = %s", med.Post.OrderBy[0].Expr)
	}
}

// TestOrderByUnprojectedMultiBranchFails with a clear error.
func TestOrderByUnprojectedMultiBranchFails(t *testing.T) {
	m := paperMediator()
	_, err := m.MediateSQL("SELECT r1.cname FROM r1 ORDER BY r1.revenue", "c2")
	if err == nil || !strings.Contains(err.Error(), "ORDER BY") {
		t.Errorf("err = %v", err)
	}
}

// TestUnsatisfiableQuery: contradictory selections yield no consistent
// case at all.
func TestUnsatisfiableQuery(t *testing.T) {
	m := paperMediator()
	_, err := m.MediateSQL(
		"SELECT r1.cname FROM r1 WHERE r1.currency = 'USD' AND r1.currency = 'JPY'", "c2")
	if err == nil || !strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("err = %v", err)
	}
}

// TestMediateUnionQuery mediates each arm.
func TestMediateUnionQuery(t *testing.T) {
	m := paperMediator()
	med, err := m.MediateSQL(
		"SELECT r1.cname FROM r1 WHERE r1.currency = 'USD' UNION SELECT r2.cname FROM r2", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Branches) != 2 {
		t.Fatalf("branches = %d, want 2:\n%s", len(med.Branches), med.SQL())
	}
}

func TestErrors(t *testing.T) {
	m := paperMediator()
	cases := []struct {
		sql, wantSub string
	}{
		{"SELECT x.cname FROM nosuch x", "unknown relation"},
		{"SELECT r1.nope FROM r1", "no column"},
		{"SELECT cname FROM r1, r2", "ambiguous"},
		{"SELECT zzz FROM r1", "unknown column"},
		{"SELECT r1.cname FROM r1, r1", "duplicate binding"},
		{"SELECT r1.cname FROM r1 WHERE r1.cname IS NULL", "IS NULL"},
		{"SELECT r1.cname FROM r1 WHERE SUM(r1.revenue) > 1", "aggregate"},
		{"SELECT r1.cname, SUM(r1.revenue) FROM r1", "GROUP BY"},
	}
	for _, c := range cases {
		_, err := m.MediateSQL(c.sql, "c2")
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("MediateSQL(%q) err = %v, want substring %q", c.sql, err, c.wantSub)
		}
	}
	if _, err := m.MediateSQL(fixture.PaperQ1, "nope"); err == nil {
		t.Error("unknown receiver accepted")
	}
}

// TestBranchCountGrowsWithConflicts is experiment E5's correctness half:
// m independent two-way modifier splits produce 2^m branches.
func TestMediatedBranchCount(t *testing.T) {
	for m := 0; m <= 4; m++ {
		reg := fixture.ConflictRegistry(m)
		med := New(reg)
		res, err := med.MediateSQL("SELECT wide.val FROM wide", "recv")
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		want := 1 << m
		if len(res.Branches) != want {
			t.Errorf("m=%d: branches = %d, want %d", m, len(res.Branches), want)
		}
	}
}

// TestRegisteredSourcesDoNotAffectMediation is experiment E4's correctness
// half: extra registered sources leave the mediated query untouched.
func TestRegisteredSourcesDoNotAffectMediation(t *testing.T) {
	base, err := New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	wide, err := New(fixture.WideRegistry(32)).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if base.Mediated.String() != wide.Mediated.String() {
		t.Error("registering unrelated sources changed the mediated query")
	}
}

// TestMaxBranchesGuard: the branch bound fails loudly, not silently.
func TestMaxBranchesGuard(t *testing.T) {
	reg := fixture.ConflictRegistry(4)
	m := New(reg)
	m.MaxBranches = 8
	_, err := m.MediateSQL("SELECT wide.val FROM wide", "recv")
	if err == nil || !strings.Contains(err.Error(), "branches") {
		t.Errorf("err = %v", err)
	}
}

// TestWarmAndInvalidate exercise the program cache.
func TestWarmAndInvalidate(t *testing.T) {
	m := paperMediator()
	if err := m.Warm("c2"); err != nil {
		t.Fatal(err)
	}
	if err := m.Warm("zzz"); err == nil {
		t.Error("warming unknown receiver succeeded")
	}
	m.Invalidate()
	if _, err := m.MediateSQL(fixture.PaperQ1, "c2"); err != nil {
		t.Errorf("mediation after Invalidate failed: %v", err)
	}
}
