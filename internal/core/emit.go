package core

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/domain"
	"repro/internal/sqlparse"
)

// emit turns one abductive solution into one sub-query of the mediated
// union. The abduced source atoms become the FROM clause (reusing the
// query's original bindings where possible, inventing aliases for
// ancillary sources); constant and duplicate-variable atom arguments and
// the residual constraints become the WHERE clause; the resolved answer
// terms become the SELECT list.
func (qc *queryCompile) emit(sol datalog.Solution) (*sqlparse.Select, error) {
	em := &emitter{qc: qc, varExpr: map[string]sqlparse.Expr{}}
	if err := em.placeAtoms(sol.Abduced); err != nil {
		return nil, err
	}

	var preds []sqlparse.Expr
	preds = append(preds, em.constPreds...)
	preds = append(preds, em.joinPreds...)
	for _, c := range sol.Constraints {
		p, err := em.renderConstraint(c)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}

	s := bindingSubst(sol)
	var items []sqlparse.SelectItem
	for _, it := range qc.outItems {
		term := datalog.SimplifyExpr(s.Resolve(it.term), s)
		e, err := em.renderTerm(term)
		if err != nil {
			return nil, fmt.Errorf("core: rendering output column %s: %w", it.name, err)
		}
		item := sqlparse.SelectItem{Expr: e, Alias: it.name}
		if c, ok := e.(*sqlparse.ColRef); ok && c.Column == it.name {
			item.Alias = "" // SELECT rl.cname reads better than rl.cname AS cname
		}
		items = append(items, item)
	}

	return &sqlparse.Select{
		Items: items,
		From:  em.from,
		Where: sqlparse.AndAll(preds),
		Limit: -1,
	}, nil
}

// emitOrder renders the compiled ORDER BY keys for a single-branch
// mediation.
func (qc *queryCompile) emitOrder(sol datalog.Solution) ([]sqlparse.OrderItem, error) {
	if len(qc.orderTerms) == 0 {
		return nil, nil
	}
	em := &emitter{qc: qc, varExpr: map[string]sqlparse.Expr{}}
	if err := em.placeAtoms(sol.Abduced); err != nil {
		return nil, err
	}
	s := bindingSubst(sol)
	var out []sqlparse.OrderItem
	for _, o := range qc.orderTerms {
		term := datalog.SimplifyExpr(s.Resolve(o.term), s)
		e, err := em.renderTerm(term)
		if err != nil {
			return nil, fmt.Errorf("core: rendering ORDER BY key: %w", err)
		}
		out = append(out, sqlparse.OrderItem{Expr: e, Desc: o.desc})
	}
	return out, nil
}

// postOrder maps the compiled ORDER BY keys onto output column names for a
// multi-branch mediation.
func (qc *queryCompile) postOrder() ([]sqlparse.OrderItem, error) {
	var out []sqlparse.OrderItem
	for i, o := range qc.orderTerms {
		if o.name == "" {
			return nil, fmt.Errorf("core: ORDER BY key %d (%s) must be a projected column when the mediated query has several branches",
				i+1, qc.sel.OrderBy[i].Expr)
		}
		out = append(out, sqlparse.OrderItem{Expr: &sqlparse.ColRef{Column: o.name}, Desc: o.desc})
	}
	return out, nil
}

// bindingSubst rebuilds a substitution from a solution's bindings,
// dropping identities (an unbound query variable maps to itself, which
// would make Resolve loop).
func bindingSubst(sol datalog.Solution) *datalog.Subst {
	s := datalog.NewSubst()
	for k, v := range sol.Bindings {
		if vv, ok := v.(datalog.Variable); ok && vv.Name == k {
			continue
		}
		s.Bind(datalog.NewVar(k), v)
	}
	return s
}

type emitter struct {
	qc      *queryCompile
	from    []sqlparse.TableRef
	varExpr map[string]sqlparse.Expr
	// constPreds bind atom arguments that resolved to constants or
	// expressions (e.g. rl.currency = 'JPY'); joinPreds equate repeated
	// variables across atoms (e.g. r3.fromCur = rl.currency).
	constPreds []sqlparse.Expr
	joinPreds  []sqlparse.Expr
}

// placeAtoms assigns aliases and builds the variable→column map in a first
// pass, then renders constant bindings in a second pass (so expressions
// may reference columns of later atoms).
func (em *emitter) placeAtoms(abduced []datalog.Compound) error {
	type constArg struct {
		col  *sqlparse.ColRef
		term datalog.Term
	}
	var consts []constArg

	usedBindings := map[string]bool{}
	usedAliases := map[string]bool{}
	for _, b := range em.qc.bindings {
		usedAliases[b.name] = true // reserve original binding names
	}

	for _, atom := range abduced {
		rel, ok := domain.RelationOfPred(atom.Functor)
		if !ok {
			return fmt.Errorf("core: abduced non-relation atom %s", atom.String())
		}
		schema, ok := em.qc.m.Registry.Schema(rel)
		if !ok {
			return fmt.Errorf("core: abduced atom over unknown relation %s", rel)
		}
		// Choose an alias: the first unused original binding over this
		// relation, else the relation name, else relation_k.
		alias := ""
		for _, b := range em.qc.bindings {
			if b.relation == rel && !usedBindings[b.name] {
				alias = b.name
				usedBindings[b.name] = true
				break
			}
		}
		if alias == "" {
			alias = rel
			for k := 2; usedAliases[alias]; k++ {
				alias = fmt.Sprintf("%s_%d", rel, k)
			}
			usedAliases[alias] = true
		}
		ref := sqlparse.TableRef{Table: rel}
		if alias != rel {
			ref.Alias = alias
		}
		em.from = append(em.from, ref)

		for i, arg := range atom.Args {
			col := &sqlparse.ColRef{Table: alias, Column: schema.Columns[i].Name}
			if v, isVar := arg.(datalog.Variable); isVar {
				if prev, ok := em.varExpr[v.Name]; ok {
					em.joinPreds = append(em.joinPreds, sqlparse.Bin("=", prev, col))
				} else {
					em.varExpr[v.Name] = col
				}
				continue
			}
			consts = append(consts, constArg{col: col, term: arg})
		}
	}

	for _, c := range consts {
		e, err := em.renderTerm(c.term)
		if err != nil {
			return fmt.Errorf("core: rendering binding for %s: %w", c.col, err)
		}
		em.constPreds = append(em.constPreds, sqlparse.Bin("=", c.col, e))
	}
	return nil
}

// renderTerm converts a resolved datalog term into a SQL expression.
func (em *emitter) renderTerm(t datalog.Term) (sqlparse.Expr, error) {
	switch t := t.(type) {
	case datalog.Variable:
		e, ok := em.varExpr[t.Name]
		if !ok {
			return nil, fmt.Errorf("core: unconstrained variable %s in mediated query", t.Name)
		}
		return e, nil
	case datalog.Number:
		return sqlparse.NumberLit(float64(t)), nil
	case datalog.Str:
		return sqlparse.StringLit(string(t)), nil
	case datalog.Atom:
		return sqlparse.StringLit(string(t)), nil
	case datalog.Compound:
		var op string
		switch t.Functor {
		case datalog.FuncAdd:
			op = "+"
		case datalog.FuncSub:
			op = "-"
		case datalog.FuncMul:
			op = "*"
		case datalog.FuncDiv:
			op = "/"
		case datalog.FuncNeg:
			x, err := em.renderTerm(t.Args[0])
			if err != nil {
				return nil, err
			}
			return &sqlparse.UnaryExpr{Op: "-", X: x}, nil
		default:
			return nil, fmt.Errorf("core: cannot render %s as SQL", t.String())
		}
		l, err := em.renderTerm(t.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := em.renderTerm(t.Args[1])
		if err != nil {
			return nil, err
		}
		return sqlparse.Bin(op, l, r), nil
	}
	return nil, fmt.Errorf("core: cannot render %v as SQL", t)
}

// renderConstraint converts a residual constraint atom into a WHERE
// predicate.
func (em *emitter) renderConstraint(c datalog.Compound) (sqlparse.Expr, error) {
	var op string
	switch c.Functor {
	case datalog.PredEq:
		op = "="
	case datalog.PredNeq:
		op = "<>"
	case datalog.PredLt:
		op = "<"
	case datalog.PredLe:
		op = "<="
	case datalog.PredGt:
		op = ">"
	case datalog.PredGe:
		op = ">="
	default:
		return nil, fmt.Errorf("core: unknown residual constraint %s", c.String())
	}
	l, err := em.renderTerm(c.Args[0])
	if err != nil {
		return nil, err
	}
	r, err := em.renderTerm(c.Args[1])
	if err != nil {
		return nil, err
	}
	return sqlparse.Bin(op, l, r), nil
}
