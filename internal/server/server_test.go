package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/coin"
	"repro/internal/client"
)

// TestArchitectureEndToEnd is experiment E3: the full Figure 1 stack —
// client API over the HTTP-tunneled protocol, server, mediation engine,
// multi-database engine, wrappers, relational and Web sources — answering
// the paper's query.
func TestArchitectureEndToEnd(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()

	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Schema handshake (dictionary service).
	if got := conn.Relations(); len(got) != 3 {
		t.Errorf("relations = %v", got)
	}
	if cols, ok := conn.Columns("r1"); !ok || len(cols) != 3 {
		t.Errorf("r1 columns = %v, %v", cols, ok)
	}
	found := false
	for _, c := range conn.Contexts() {
		if c == "c2" {
			found = true
		}
	}
	if !found {
		t.Errorf("contexts = %v", conn.Contexts())
	}

	// Naive baseline: empty answer.
	naive, err := conn.QueryNaive(coin.PaperQ1)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Rows) != 0 {
		t.Errorf("naive rows = %v", naive.Rows)
	}

	// Mediated: the paper's correct answer.
	res, err := conn.Query(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "NTT" || res.Rows[0][1] != 9600000.0 {
		t.Errorf("answer = %v", res.Rows[0])
	}
	if res.Branches != 3 || !strings.Contains(res.MediatedSQL, "UNION") {
		t.Errorf("mediation metadata: branches=%d sql=\n%s", res.Branches, res.MediatedSQL)
	}

	// Mediate-only endpoint.
	sql, branches, err := conn.Mediate(coin.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	if branches != 3 || !strings.Contains(sql, "'JPY'") {
		t.Errorf("mediate-only: branches=%d\n%s", branches, sql)
	}
}

func TestServerErrors(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("SELECT nope FROM nosuch", "c2"); err == nil {
		t.Error("bad query succeeded")
	}
	if _, err := conn.Query(coin.PaperQ1, "nocontext"); err == nil {
		t.Error("unknown context succeeded")
	}
	if _, _, err := conn.Mediate("", "c2"); err == nil {
		t.Error("empty SQL accepted")
	}
	if _, err := client.Open("http://127.0.0.1:1"); err == nil {
		t.Error("dead server accepted")
	}
}

func TestQBEPages(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()

	get := func(path string) string {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	form := get("/qbe")
	if !strings.Contains(form, "Query-By-Example") || !strings.Contains(form, "r1") {
		t.Errorf("QBE form:\n%s", form)
	}

	run := get("/qbe/run?context=c2&sql=" + strings.ReplaceAll(
		"SELECT rl.cname, rl.revenue FROM r1 rl, r2 WHERE rl.cname = r2.cname AND rl.revenue > r2.expenses",
		" ", "+"))
	if !strings.Contains(run, "NTT") || !strings.Contains(run, "Mediated query") {
		t.Errorf("QBE run:\n%s", run)
	}

	naive := get("/qbe/run?naive=1&sql=SELECT+r2.cname+FROM+r2")
	if !strings.Contains(naive, "IBM") {
		t.Errorf("QBE naive run:\n%s", naive)
	}
	bad := get("/qbe/run?context=c2&sql=SELECT+zzz+FROM+nosuch")
	if !strings.Contains(bad, "unknown relation") {
		t.Errorf("QBE error page:\n%s", bad)
	}
}

// TestConcurrencyKnobOverWire: the per-source concurrency cap travels
// from client.Options through the wire into the query session — a capped
// query still returns the paper's answer, and a negative cap is rejected
// before any session starts.
func TestConcurrencyKnobOverWire(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.QueryCtx(nil, coin.PaperQ1, "c2", client.Options{MaxConcurrentPerSource: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "NTT" {
		t.Errorf("capped query rows = %v", res.Rows)
	}

	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"sql":"SELECT r1.cname FROM r1","max_concurrent_per_source":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative max_concurrent_per_source: status = %d, want 400", resp.StatusCode)
	}
}

// TestExplainAnalyzeOverWire: /api/explain with analyze=true executes the
// branches and returns plans carrying measured columns; governor fields
// still validate.
func TestExplainAnalyzeOverWire(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()

	body := `{"sql": ` + strconv.Quote(coin.PaperQ1) + `, "context": "c2", "analyze": true}`
	resp, err := http.Post(ts.URL+"/api/explain", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	var er struct {
		Plan string `json:"plan"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"act_rows=", "act_queries=", "est_cost="} {
		if !strings.Contains(er.Plan, want) {
			t.Errorf("analyzed plan missing %q:\n%s", want, er.Plan)
		}
	}

	// Bad governor fields reject before executing anything.
	bad := `{"sql": "SELECT r1.cname FROM r1", "context": "c2", "analyze": true, "timeout": "yes"}`
	resp2, err := http.Post(ts.URL+"/api/explain", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout status = %s, want 400", resp2.Status)
	}
}
