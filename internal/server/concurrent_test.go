package server_test

import (
	"net/http/httptest"
	"sync"
	"testing"

	"repro/coin"
	"repro/internal/client"
)

// TestConcurrentReceivers hammers the server with parallel mediated and
// naive queries, as the prototype's multi-user demonstrations did. Run
// with -race to validate the locking of the mediator's program cache and
// the executor's statistics.
func TestConcurrentReceivers(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()

	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := client.Open(ts.URL)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perWorker; i++ {
				if w%2 == 0 {
					res, err := conn.Query(coin.PaperQ1, "c2")
					if err != nil {
						errs <- err
						return
					}
					if len(res.Rows) != 1 || res.Rows[0][0] != "NTT" {
						t.Errorf("worker %d: rows = %v", w, res.Rows)
						return
					}
				} else {
					res, err := conn.QueryNaive(coin.PaperQ1)
					if err != nil {
						errs <- err
						return
					}
					if len(res.Rows) != 0 {
						t.Errorf("worker %d: naive rows = %v", w, res.Rows)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
