package server_test

// Tests for the session-aware HTTP layer: the NDJSON streaming wire path
// (first row delivered before the query finishes), per-request timeout
// and max_rows governors, and receiver disconnects cancelling the query
// all the way into the source fetches.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/coin"
	"repro/internal/client"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// gatedSystem wires a System over a gated relational source of n rows
// (naive queries only; no mediation knowledge attached).
func gatedSystem(t *testing.T, n int) (*coin.System, *wrappertest.Gate) {
	t.Helper()
	sys := coin.New(coin.NewModel())
	db := store.NewDB("slowsrc")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
	))
	for i := 0; i < n; i++ {
		tab.MustInsert(relalg.NumV(float64(i)))
	}
	gw := wrappertest.NewGate(wrapper.NewRelational(db))
	sys.Catalog.MustAddSource(gw)
	return sys, gw
}

// TestStreamEndpointMediated drives /api/query/stream through the client
// cursor over the full Figure 2 stack: header metadata, the paper's
// answer row, clean stats-terminated end.
func TestStreamEndpointMediated(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	cur, err := conn.QueryStream(context.Background(), coin.PaperQ1, "c2", false, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Branches() != 3 || !strings.Contains(cur.MediatedSQL(), "UNION") {
		t.Errorf("stream header: branches=%d sql=%q", cur.Branches(), cur.MediatedSQL())
	}
	if len(cur.Columns()) != 2 {
		t.Errorf("columns = %v", cur.Columns())
	}
	var names []string
	var revs []float64
	for cur.Next() {
		var name string
		var rev float64
		if err := cur.Scan(&name, &rev); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		revs = append(revs, rev)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "NTT" || revs[0] != 9600000 {
		t.Errorf("streamed answer = %v %v", names, revs)
	}
}

// TestStreamDeliversRowsWithoutFullMaterialization is the wire-level
// acceptance check: a LIMIT query over a gated 50k-row source completes
// over /api/query/stream even though the source only ever releases LIMIT
// tuples — the server cannot have materialized the full result before
// writing, and the transfer stats stay at LIMIT.
func TestStreamDeliversRowsWithoutFullMaterialization(t *testing.T) {
	sys, gw := gatedSystem(t, 50000)
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Only 3 tuples will ever pass the gate. If the handler tried to
	// drain the source before writing, it would hang and the request
	// context would expire.
	go gw.Allow(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cur, err := conn.QueryStream(ctx, "SELECT nums.n FROM nums LIMIT 3", "", true, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows := 0
	for cur.Next() {
		rows++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Fatalf("streamed %d rows, want 3", rows)
	}
	waitForStats(t, sys, func(st coin.ExecStats) bool {
		return st.TuplesTransferred == 3 && st.SourceQueries == 1
	})
}

// TestStreamClientDisconnectCancelsQuery: a receiver that abandons the
// stream cancels the request context, which aborts the query session and
// releases the source blocked mid-transfer.
func TestStreamClientDisconnectCancelsQuery(t *testing.T) {
	sys, gw := gatedSystem(t, 50000)
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	go gw.Allow(2)
	cur, err := conn.QueryStream(context.Background(), "SELECT nums.n FROM nums", "", true, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !cur.Next() {
			t.Fatalf("row %d missing: %v", i, cur.Err())
		}
	}
	// Disconnect with the source blocked offering tuple 3. The server
	// notices the dead connection, cancels the session, and the gated
	// stream is released with ctx.Err().
	cur.Close()
	waitForStats(t, sys, func(st coin.ExecStats) bool {
		return st.TuplesTransferred == 2 && st.SourceQueries == 1
	})
}

// TestQueryTimeoutOverHTTP: a request-level timeout on the buffered
// endpoint surfaces as 504 with the deadline error, instead of hanging on
// the stuck source.
func TestQueryTimeoutOverHTTP(t *testing.T) {
	sys, _ := gatedSystem(t, 10) // gate never opens
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()

	body := `{"sql": "SELECT nums.n FROM nums", "naive": true, "timeout": "75ms"}`
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "deadline") {
		t.Errorf("body = %s", buf.String())
	}
}

// TestMaxRowsOverHTTP: the max_rows governor truncates the buffered
// answer.
func TestMaxRowsOverHTTP(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.QueryCtx(context.Background(), "SELECT r2.cname FROM r2", "c2",
		client.Options{MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("max_rows=1 returned %d rows", len(res.Rows))
	}
}

// TestGovernedNaiveQueryOverHTTP: the naive buffered path carries the
// timeout and max_rows governors too (a Timeout > 0 also routes the
// client off its 30s-capped default transport).
func TestGovernedNaiveQueryOverHTTP(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	conn, err := client.Open(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.QueryNaiveCtx(context.Background(), "SELECT r2.cname FROM r2",
		client.Options{Timeout: time.Minute, MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("naive max_rows=1 returned %d rows", len(res.Rows))
	}
	if _, err := conn.QueryNaiveCtx(context.Background(), "SELECT r2.cname FROM r2",
		client.Options{Timeout: time.Nanosecond}); err == nil {
		t.Error("expired naive timeout succeeded")
	}
}

// TestBadGovernorValuesRejected: malformed timeout / max_rows are 400s.
func TestBadGovernorValuesRejected(t *testing.T) {
	sys := coin.Figure2System()
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	for _, body := range []string{
		`{"sql": "SELECT r2.cname FROM r2", "context": "c2", "timeout": "soon"}`,
		`{"sql": "SELECT r2.cname FROM r2", "context": "c2", "max_rows": -1}`,
	} {
		resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// waitForStats polls the executor stats until ok or a deadline; the
// server flushes per-stream transfer counts when the handler's deferred
// Close runs, which can lag the client's last read slightly.
func waitForStats(t *testing.T, sys *coin.System, ok func(coin.ExecStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sys.Executor().Stats()
		if ok(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// downFetcher fails every currency-page fetch with a transient fault.
type downFetcher struct{}

func (downFetcher) Get(ctx context.Context, url string) (string, error) {
	return "", wrapper.Transient(errInjectedDown)
}

var errInjectedDown = errors.New("currency site unreachable")

// TestPartialWireFormat pins the partial-results wire protocol on the
// raw JSON, not through the client: /api/query carries warnings in the
// response object, /api/query/stream carries them on the stats trailer
// (branches can degrade mid-stream, so they cannot ride the header).
func TestPartialWireFormat(t *testing.T) {
	sys := coin.Figure2SystemWith(downFetcher{})
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, string) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp, b.String()
	}

	q := `"sql": ` + strconv.Quote(coin.PaperQ1) + `, "context": "c2"`

	// Fail-fast default: the query errors.
	resp, body := post("/api/query", `{`+q+`}`)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("fail-fast query returned 200:\n%s", body)
	}

	// Partial: 200 with warnings naming the source on the response.
	resp, body = post("/api/query", `{`+q+`, "partial": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial query status %d:\n%s", resp.StatusCode, body)
	}
	var qr struct {
		Warnings []struct {
			Branch int    `json:"branch"`
			Source string `json:"source"`
			Error  string `json:"error"`
		} `json:"warnings"`
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Warnings) == 0 {
		t.Fatalf("no warnings on partial response:\n%s", body)
	}
	for _, w := range qr.Warnings {
		if w.Source != "currencyweb" || w.Branch == 0 || w.Error == "" {
			t.Errorf("wire warning %+v", w)
		}
	}

	// Streaming: warnings ride the terminating stats record.
	resp, body = post("/api/query/stream", `{`+q+`, "partial": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial stream status %d:\n%s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var last struct {
		Type     string `json:"type"`
		Warnings []struct {
			Source string `json:"source"`
		} `json:"warnings"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "stats" || len(last.Warnings) == 0 {
		t.Fatalf("stream trailer = %s", lines[len(lines)-1])
	}
	if last.Warnings[0].Source != "currencyweb" {
		t.Errorf("trailer warning = %+v", last.Warnings[0])
	}
}
