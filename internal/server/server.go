// Package server implements the receiver-side access layer of Figure 1:
// the prototype tunneled an ODBC-family protocol inside HTTP so that "any
// application with basic capabilities for Internet socket based
// communication" could reach the mediation services, and shipped an HTML
// Query-By-Example form on top. This package provides the same faces,
// made safe for real traffic: every query runs inside a session bound to
// the HTTP request's context (a disconnected receiver aborts the query
// all the way down to the source fetches) and governable by per-request
// limits.
//
//	POST /api/query         {"sql", "context", "timeout"?, "max_rows"?} -> columns+rows JSON
//	POST /api/query/stream  same body -> NDJSON: header record, one record
//	                        per row as produced, trailing stats/error record
//	POST /api/mediate       {"sql", "context"} -> mediated SQL text
//	GET  /api/schema        -> relations, their schemas and sources, contexts
//	GET  /qbe               -> the HTML QBE form (submits to /qbe/run)
//
// internal/client is the Go counterpart of the prototype's ODBC driver.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/relalg"
)

// RowStream is an open, incrementally-consumable query answer; the
// /api/query/stream handler drains it onto the wire row by row.
// coin.RowStream implements it.
type RowStream interface {
	// Schema describes the rows.
	Schema() relalg.Schema
	// Mediation returns the mediated query, or nil for a naive stream.
	Mediation() *core.Mediation
	// Next returns the next row, ok=false at end, or the terminal error.
	Next() (relalg.Tuple, bool, error)
	// NextBatch returns the next block of rows (1..max; nil at end, or
	// the terminal error). The slice is valid until the next call. The
	// stream handler drains blocks so encode+flush overhead is paid per
	// batch, not per row.
	NextBatch(max int) ([]relalg.Tuple, error)
	// Warnings returns the degraded-branch warnings of a partial-results
	// stream accumulated so far (nil otherwise); final once Next returned
	// ok=false.
	Warnings() []planner.Warning
	// Close releases the stream and its query session.
	Close() error
}

// Service is what the server needs from the mediator installation;
// repro/coin.System (through its Handler adapter) implements it. Every
// query method takes the request context and per-query limits, so the
// server can tie query lifetimes to receiver connections.
type Service interface {
	Mediate(sql, receiver string) (*core.Mediation, error)
	QueryCtx(ctx context.Context, sql, receiver string, opts planner.Limits) (*relalg.Relation, error)
	ExecuteCtx(ctx context.Context, med *core.Mediation, opts planner.Limits) (*relalg.Relation, error)
	ExecuteWarnCtx(ctx context.Context, med *core.Mediation, opts planner.Limits) (*relalg.Relation, []planner.Warning, error)
	QueryNaiveCtx(ctx context.Context, sql string, opts planner.Limits) (*relalg.Relation, error)
	QueryStream(ctx context.Context, sql, receiver string, naive bool, opts planner.Limits) (RowStream, error)
	Explain(sql, receiver string) (string, error)
	ExplainAnalyzeCtx(ctx context.Context, sql, receiver string, opts planner.Limits) (string, error)
	Contexts() []string
	Relations() []string
	Schema(relation string) (relalg.Schema, error)
}

// ExplainResponse is the body returned by /api/explain.
type ExplainResponse struct {
	Plan string `json:"plan"`
}

// QueryRequest is the body of /api/query, /api/query/stream and
// /api/mediate.
type QueryRequest struct {
	SQL     string `json:"sql"`
	Context string `json:"context"`
	// Naive skips mediation (the paper's baseline behavior).
	Naive bool `json:"naive,omitempty"`
	// Timeout bounds the query session's wall clock, as a Go duration
	// string ("500ms", "2s"). Empty: no server-side deadline beyond the
	// connection's lifetime.
	Timeout string `json:"timeout,omitempty"`
	// MaxRows caps the rows delivered; the answer is truncated, not
	// failed. Zero: unlimited.
	MaxRows int `json:"max_rows,omitempty"`
	// MaxConcurrentPerSource caps the query session's in-flight fetches
	// against any single source, below the server's own per-source
	// dispatcher pools. Zero: the dispatcher defaults alone apply.
	MaxConcurrentPerSource int `json:"max_concurrent_per_source,omitempty"`
	// Analyze turns /api/explain into EXPLAIN ANALYZE: the branches are
	// actually executed (inside a session bound to the request, honoring
	// the governor fields above) and the rendered plans carry measured
	// rows, queries and cost next to the estimates.
	Analyze bool `json:"analyze,omitempty"`
	// Partial degrades instead of failing when a mediation branch is
	// felled by a source fault: the answer comes from the surviving
	// branches and the response carries a warning per dropped branch.
	// Default is fail-fast.
	Partial bool `json:"partial,omitempty"`
	// RetryBudget caps the retries the query session may spend across all
	// source operations. Zero: the server's per-operation retry policy
	// alone applies.
	RetryBudget int `json:"retry_budget,omitempty"`
	// Parallelism caps the workers intra-query parallel operators may use
	// for this query (exchange joins, partitioned sorts and group-bys,
	// scan fan-outs). 1 forces serial pipelines; zero defers to the
	// server's default parallelism.
	Parallelism int `json:"parallelism,omitempty"`
}

// limits converts the request's governor fields to planner.Limits.
func (r *QueryRequest) limits() (planner.Limits, error) {
	var lim planner.Limits
	if r.Timeout != "" {
		d, err := time.ParseDuration(r.Timeout)
		if err != nil || d < 0 {
			return lim, fmt.Errorf("server: bad timeout %q (want a Go duration like \"2s\")", r.Timeout)
		}
		lim.Timeout = d
	}
	if r.MaxRows < 0 {
		return lim, fmt.Errorf("server: bad max_rows %d", r.MaxRows)
	}
	lim.MaxRows = r.MaxRows
	if r.MaxConcurrentPerSource < 0 {
		return lim, fmt.Errorf("server: bad max_concurrent_per_source %d", r.MaxConcurrentPerSource)
	}
	lim.MaxConcurrentPerSource = r.MaxConcurrentPerSource
	if r.RetryBudget < 0 {
		return lim, fmt.Errorf("server: bad retry_budget %d", r.RetryBudget)
	}
	lim.RetryBudget = r.RetryBudget
	if r.Parallelism < 0 {
		return lim, fmt.Errorf("server: bad parallelism %d", r.Parallelism)
	}
	lim.MaxParallelism = r.Parallelism
	lim.PartialResults = r.Partial
	return lim, nil
}

// ColumnInfo describes one result column.
type ColumnInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// QueryResponse is the body returned by /api/query.
type QueryResponse struct {
	Columns     []ColumnInfo    `json:"columns"`
	Rows        [][]interface{} `json:"rows"`
	MediatedSQL string          `json:"mediatedSQL,omitempty"`
	Branches    int             `json:"branches,omitempty"`
	// Warnings lists mediation branches dropped by a partial-results run;
	// absent when the answer is complete.
	Warnings []planner.Warning `json:"warnings,omitempty"`
}

// StreamRecord is one NDJSON line of /api/query/stream. Type is "header"
// (first line: columns plus mediation metadata), "row" (one result row in
// Values), "stats" (trailing success record) or "error" (trailing failure
// record; the stream ends there).
type StreamRecord struct {
	Type        string        `json:"type"`
	Columns     []ColumnInfo  `json:"columns,omitempty"`
	MediatedSQL string        `json:"mediatedSQL,omitempty"`
	Branches    int           `json:"branches,omitempty"`
	Values      []interface{} `json:"values,omitempty"`
	Rows        int           `json:"rows,omitempty"`
	Error       string        `json:"error,omitempty"`
	// Warnings rides the trailing stats (or error) record of a
	// partial-results stream: one entry per mediation branch dropped.
	Warnings []planner.Warning `json:"warnings,omitempty"`
}

// MediateResponse is the body returned by /api/mediate.
type MediateResponse struct {
	MediatedSQL string `json:"mediatedSQL"`
	Branches    int    `json:"branches"`
}

// SchemaResponse is the body returned by /api/schema.
type SchemaResponse struct {
	Relations map[string][]ColumnInfo `json:"relations"`
	Contexts  []string                `json:"contexts"`
}

// ErrorResponse carries failures as JSON.
type ErrorResponse struct {
	Error string `json:"error"`
}

// New builds the HTTP handler.
func New(svc Service) http.Handler {
	s := &srv{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/query", s.handleQuery)
	mux.HandleFunc("/api/query/stream", s.handleQueryStream)
	mux.HandleFunc("/api/mediate", s.handleMediate)
	mux.HandleFunc("/api/explain", s.handleExplain)
	mux.HandleFunc("/api/schema", s.handleSchema)
	mux.HandleFunc("/qbe", s.handleQBE)
	mux.HandleFunc("/qbe/run", s.handleQBERun)
	mux.HandleFunc("/", s.handleRoot)
	return mux
}

type srv struct {
	svc Service
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// statusFor maps a query failure to an HTTP status: deadline overruns are
// gateway timeouts, everything else (mediation errors, governor limits,
// receiver cancellation noticed server-side) is unprocessable.
func statusFor(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *srv) decode(w http.ResponseWriter, r *http.Request, req *QueryRequest) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("server: POST required"))
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %v", err))
		return false
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: sql is required"))
		return false
	}
	return true
}

func (s *srv) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := req.limits()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	var (
		rel   *relalg.Relation
		med   *core.Mediation
		warns []planner.Warning
	)
	if req.Naive {
		rel, err = s.svc.QueryNaiveCtx(ctx, req.SQL, opts)
	} else {
		// Mediate once and execute the result, rather than QueryCtx
		// (which would re-run the abductive rewriting for the same SQL).
		med, err = s.svc.Mediate(req.SQL, req.Context)
		if err == nil {
			rel, warns, err = s.svc.ExecuteWarnCtx(ctx, med, opts)
		}
	}
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	resp := relationResponse(rel)
	if med != nil {
		resp.MediatedSQL = med.SQL()
		resp.Branches = len(med.Branches)
	}
	resp.Warnings = warns
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream is the streaming wire path: it opens a governed row
// stream bound to the request context and writes NDJSON incrementally —
// header first, each row as the iterator tree yields it (flushed so the
// receiver sees the first row before the sources finish), then a trailing
// stats or error record. A receiver that disconnects cancels r.Context(),
// which aborts the query's source fetches mid-stream.
func (s *srv) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	opts, err := req.limits()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rs, err := s.svc.QueryStream(r.Context(), req.SQL, req.Context, req.Naive, opts)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	defer rs.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	header := StreamRecord{Type: "header"}
	for _, c := range rs.Schema().Columns {
		header.Columns = append(header.Columns, ColumnInfo{Name: c.Name, Type: c.Type.String()})
	}
	if med := rs.Mediation(); med != nil {
		header.MediatedSQL = med.SQL()
		header.Branches = len(med.Branches)
	}
	if err := enc.Encode(header); err != nil {
		return
	}
	flush()

	rows := 0
	for {
		// One flush per batch: a gated or trickling source yields one-row
		// batches (each row still reaches the receiver as it arrives),
		// while a bulk source pays the flush once per 1024 rows.
		batch, err := rs.NextBatch(relalg.DefaultBatchSize)
		if err != nil {
			_ = enc.Encode(StreamRecord{Type: "error", Rows: rows, Error: err.Error(), Warnings: rs.Warnings()})
			flush()
			return
		}
		if len(batch) == 0 {
			break
		}
		for _, t := range batch {
			vals := make([]interface{}, len(t))
			for i, v := range t {
				vals[i] = valueJSON(v)
			}
			if err := enc.Encode(StreamRecord{Type: "row", Values: vals}); err != nil {
				return // receiver gone; rs.Close (deferred) cancels the session
			}
			rows++
		}
		flush()
	}
	// The warnings ride the trailer: branches can degrade mid-stream, so
	// only after the last row is the set final.
	_ = enc.Encode(StreamRecord{Type: "stats", Rows: rows, Warnings: rs.Warnings()})
	flush()
}

func relationResponse(rel *relalg.Relation) QueryResponse {
	resp := QueryResponse{Rows: [][]interface{}{}}
	for _, c := range rel.Schema.Columns {
		resp.Columns = append(resp.Columns, ColumnInfo{Name: c.Name, Type: c.Type.String()})
	}
	for _, t := range rel.Tuples {
		row := make([]interface{}, len(t))
		for i, v := range t {
			row[i] = valueJSON(v)
		}
		resp.Rows = append(resp.Rows, row)
	}
	return resp
}

func valueJSON(v relalg.Value) interface{} {
	switch v.K {
	case relalg.KindNumber:
		return v.N
	case relalg.KindString:
		return v.S
	case relalg.KindBool:
		return v.B
	}
	return nil
}

func (s *srv) handleMediate(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	med, err := s.svc.Mediate(req.SQL, req.Context)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, MediateResponse{MediatedSQL: med.SQL(), Branches: len(med.Branches)})
}

func (s *srv) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	var (
		plan string
		err  error
	)
	if req.Analyze {
		var opts planner.Limits
		if opts, err = req.limits(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		plan, err = s.svc.ExplainAnalyzeCtx(r.Context(), req.SQL, req.Context, opts)
	} else {
		plan, err = s.svc.Explain(req.SQL, req.Context)
	}
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Plan: plan})
}

func (s *srv) handleSchema(w http.ResponseWriter, r *http.Request) {
	resp := SchemaResponse{Relations: map[string][]ColumnInfo{}, Contexts: s.svc.Contexts()}
	for _, rel := range s.svc.Relations() {
		schema, err := s.svc.Schema(rel)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		var cols []ColumnInfo
		for _, c := range schema.Columns {
			cols = append(cols, ColumnInfo{Name: c.Name, Type: c.Type.String()})
		}
		resp.Relations[rel] = cols
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *srv) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	http.Redirect(w, r, "/qbe", http.StatusFound)
}

var qbeTemplate = template.Must(template.New("qbe").Parse(`<!DOCTYPE html>
<html><head><title>COIN Query-By-Example</title></head>
<body>
<h1>Context Interchange Mediator — QBE</h1>
<form action="/qbe/run" method="GET">
<p>Receiver context:
<select name="context">{{range .Contexts}}<option>{{.}}</option>{{end}}</select>
</p>
<p>SQL:<br>
<textarea name="sql" rows="6" cols="80">{{.SQL}}</textarea></p>
<p><label><input type="checkbox" name="naive" value="1" {{if .Naive}}checked{{end}}> naive (skip mediation)</label></p>
<p><input type="submit" value="Run"></p>
</form>
<h2>Relations</h2>
<ul>{{range $rel, $cols := .Relations}}<li><b>{{$rel}}</b>({{range $i, $c := $cols}}{{if $i}}, {{end}}{{$c.Name}}:{{$c.Type}}{{end}})</li>{{end}}</ul>
{{if .MediatedSQL}}<h2>Mediated query</h2><pre>{{.MediatedSQL}}</pre>{{end}}
{{if .Derivation}}<h2>Derivation</h2><pre>{{.Derivation}}</pre>{{end}}
{{if .Columns}}
<h2>Answer</h2>
<table border="1"><tr>{{range .Columns}}<th>{{.Name}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
</body></html>`))

type qbePage struct {
	Contexts    []string
	Relations   map[string][]ColumnInfo
	SQL         string
	Naive       bool
	MediatedSQL string
	Derivation  string
	Columns     []ColumnInfo
	Rows        [][]interface{}
	Error       string
}

func (s *srv) qbePage() qbePage {
	page := qbePage{Contexts: s.svc.Contexts(), Relations: map[string][]ColumnInfo{}}
	for _, rel := range s.svc.Relations() {
		schema, err := s.svc.Schema(rel)
		if err != nil {
			continue
		}
		var cols []ColumnInfo
		for _, c := range schema.Columns {
			cols = append(cols, ColumnInfo{Name: c.Name, Type: c.Type.String()})
		}
		page.Relations[rel] = cols
	}
	return page
}

func (s *srv) handleQBE(w http.ResponseWriter, r *http.Request) {
	page := s.qbePage()
	page.SQL = "SELECT rl.cname, rl.revenue FROM r1 rl, r2\nWHERE rl.cname = r2.cname\nAND rl.revenue > r2.expenses"
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = qbeTemplate.Execute(w, page)
}

func (s *srv) handleQBERun(w http.ResponseWriter, r *http.Request) {
	page := s.qbePage()
	page.SQL = r.URL.Query().Get("sql")
	page.Naive = r.URL.Query().Get("naive") == "1"
	ctx := r.URL.Query().Get("context")

	var rel *relalg.Relation
	var err error
	if page.Naive {
		rel, err = s.svc.QueryNaiveCtx(r.Context(), page.SQL, planner.Limits{})
	} else {
		var med *core.Mediation
		med, err = s.svc.Mediate(page.SQL, ctx)
		if err == nil {
			page.MediatedSQL = med.SQL()
			page.Derivation = med.ExplainText()
			rel, err = s.svc.ExecuteCtx(r.Context(), med, planner.Limits{})
		}
	}
	if err != nil {
		page.Error = err.Error()
	} else {
		resp := relationResponse(rel)
		page.Columns, page.Rows = resp.Columns, resp.Rows
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = qbeTemplate.Execute(w, page)
}
