// Package server implements the receiver-side access layer of Figure 1:
// the prototype tunneled an ODBC-family protocol inside HTTP so that "any
// application with basic capabilities for Internet socket based
// communication" could reach the mediation services, and shipped an HTML
// Query-By-Example form on top. This package provides the same two faces:
//
//	POST /api/query    {"sql": ..., "context": ...} -> columns+rows JSON
//	POST /api/mediate  {"sql": ..., "context": ...} -> mediated SQL text
//	GET  /api/schema   -> relations, their schemas and sources, contexts
//	GET  /qbe          -> the HTML QBE form (submits to /qbe/run)
//
// internal/client is the Go counterpart of the prototype's ODBC driver.
package server

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/relalg"
)

// Service is what the server needs from the mediator installation;
// repro/coin.System implements it.
type Service interface {
	Mediate(sql, receiver string) (*core.Mediation, error)
	Query(sql, receiver string) (*relalg.Relation, error)
	QueryNaive(sql string) (*relalg.Relation, error)
	Explain(sql, receiver string) (string, error)
	Contexts() []string
	Relations() []string
	Schema(relation string) (relalg.Schema, error)
}

// ExplainResponse is the body returned by /api/explain.
type ExplainResponse struct {
	Plan string `json:"plan"`
}

// QueryRequest is the body of /api/query and /api/mediate.
type QueryRequest struct {
	SQL     string `json:"sql"`
	Context string `json:"context"`
	// Naive skips mediation (the paper's baseline behavior).
	Naive bool `json:"naive,omitempty"`
}

// ColumnInfo describes one result column.
type ColumnInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// QueryResponse is the body returned by /api/query.
type QueryResponse struct {
	Columns     []ColumnInfo    `json:"columns"`
	Rows        [][]interface{} `json:"rows"`
	MediatedSQL string          `json:"mediatedSQL,omitempty"`
	Branches    int             `json:"branches,omitempty"`
}

// MediateResponse is the body returned by /api/mediate.
type MediateResponse struct {
	MediatedSQL string `json:"mediatedSQL"`
	Branches    int    `json:"branches"`
}

// SchemaResponse is the body returned by /api/schema.
type SchemaResponse struct {
	Relations map[string][]ColumnInfo `json:"relations"`
	Contexts  []string                `json:"contexts"`
}

// ErrorResponse carries failures as JSON.
type ErrorResponse struct {
	Error string `json:"error"`
}

// New builds the HTTP handler.
func New(svc Service) http.Handler {
	s := &srv{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/query", s.handleQuery)
	mux.HandleFunc("/api/mediate", s.handleMediate)
	mux.HandleFunc("/api/explain", s.handleExplain)
	mux.HandleFunc("/api/schema", s.handleSchema)
	mux.HandleFunc("/qbe", s.handleQBE)
	mux.HandleFunc("/qbe/run", s.handleQBERun)
	mux.HandleFunc("/", s.handleRoot)
	return mux
}

type srv struct {
	svc Service
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func (s *srv) decode(w http.ResponseWriter, r *http.Request, req *QueryRequest) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("server: POST required"))
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %v", err))
		return false
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("server: sql is required"))
		return false
	}
	return true
}

func (s *srv) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	var (
		rel *relalg.Relation
		med *core.Mediation
		err error
	)
	if req.Naive {
		rel, err = s.svc.QueryNaive(req.SQL)
	} else {
		med, err = s.svc.Mediate(req.SQL, req.Context)
		if err == nil {
			rel, err = s.svc.Query(req.SQL, req.Context)
		}
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := relationResponse(rel)
	if med != nil {
		resp.MediatedSQL = med.SQL()
		resp.Branches = len(med.Branches)
	}
	writeJSON(w, http.StatusOK, resp)
}

func relationResponse(rel *relalg.Relation) QueryResponse {
	resp := QueryResponse{Rows: [][]interface{}{}}
	for _, c := range rel.Schema.Columns {
		resp.Columns = append(resp.Columns, ColumnInfo{Name: c.Name, Type: c.Type.String()})
	}
	for _, t := range rel.Tuples {
		row := make([]interface{}, len(t))
		for i, v := range t {
			row[i] = valueJSON(v)
		}
		resp.Rows = append(resp.Rows, row)
	}
	return resp
}

func valueJSON(v relalg.Value) interface{} {
	switch v.K {
	case relalg.KindNumber:
		return v.N
	case relalg.KindString:
		return v.S
	case relalg.KindBool:
		return v.B
	}
	return nil
}

func (s *srv) handleMediate(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	med, err := s.svc.Mediate(req.SQL, req.Context)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, MediateResponse{MediatedSQL: med.SQL(), Branches: len(med.Branches)})
}

func (s *srv) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	plan, err := s.svc.Explain(req.SQL, req.Context)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Plan: plan})
}

func (s *srv) handleSchema(w http.ResponseWriter, r *http.Request) {
	resp := SchemaResponse{Relations: map[string][]ColumnInfo{}, Contexts: s.svc.Contexts()}
	for _, rel := range s.svc.Relations() {
		schema, err := s.svc.Schema(rel)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		var cols []ColumnInfo
		for _, c := range schema.Columns {
			cols = append(cols, ColumnInfo{Name: c.Name, Type: c.Type.String()})
		}
		resp.Relations[rel] = cols
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *srv) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	http.Redirect(w, r, "/qbe", http.StatusFound)
}

var qbeTemplate = template.Must(template.New("qbe").Parse(`<!DOCTYPE html>
<html><head><title>COIN Query-By-Example</title></head>
<body>
<h1>Context Interchange Mediator — QBE</h1>
<form action="/qbe/run" method="GET">
<p>Receiver context:
<select name="context">{{range .Contexts}}<option>{{.}}</option>{{end}}</select>
</p>
<p>SQL:<br>
<textarea name="sql" rows="6" cols="80">{{.SQL}}</textarea></p>
<p><label><input type="checkbox" name="naive" value="1" {{if .Naive}}checked{{end}}> naive (skip mediation)</label></p>
<p><input type="submit" value="Run"></p>
</form>
<h2>Relations</h2>
<ul>{{range $rel, $cols := .Relations}}<li><b>{{$rel}}</b>({{range $i, $c := $cols}}{{if $i}}, {{end}}{{$c.Name}}:{{$c.Type}}{{end}})</li>{{end}}</ul>
{{if .MediatedSQL}}<h2>Mediated query</h2><pre>{{.MediatedSQL}}</pre>{{end}}
{{if .Derivation}}<h2>Derivation</h2><pre>{{.Derivation}}</pre>{{end}}
{{if .Columns}}
<h2>Answer</h2>
<table border="1"><tr>{{range .Columns}}<th>{{.Name}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
</body></html>`))

type qbePage struct {
	Contexts    []string
	Relations   map[string][]ColumnInfo
	SQL         string
	Naive       bool
	MediatedSQL string
	Derivation  string
	Columns     []ColumnInfo
	Rows        [][]interface{}
	Error       string
}

func (s *srv) qbePage() qbePage {
	page := qbePage{Contexts: s.svc.Contexts(), Relations: map[string][]ColumnInfo{}}
	for _, rel := range s.svc.Relations() {
		schema, err := s.svc.Schema(rel)
		if err != nil {
			continue
		}
		var cols []ColumnInfo
		for _, c := range schema.Columns {
			cols = append(cols, ColumnInfo{Name: c.Name, Type: c.Type.String()})
		}
		page.Relations[rel] = cols
	}
	return page
}

func (s *srv) handleQBE(w http.ResponseWriter, r *http.Request) {
	page := s.qbePage()
	page.SQL = "SELECT rl.cname, rl.revenue FROM r1 rl, r2\nWHERE rl.cname = r2.cname\nAND rl.revenue > r2.expenses"
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = qbeTemplate.Execute(w, page)
}

func (s *srv) handleQBERun(w http.ResponseWriter, r *http.Request) {
	page := s.qbePage()
	page.SQL = r.URL.Query().Get("sql")
	page.Naive = r.URL.Query().Get("naive") == "1"
	ctx := r.URL.Query().Get("context")

	var rel *relalg.Relation
	var err error
	if page.Naive {
		rel, err = s.svc.QueryNaive(page.SQL)
	} else {
		var med *core.Mediation
		med, err = s.svc.Mediate(page.SQL, ctx)
		if err == nil {
			page.MediatedSQL = med.SQL()
			page.Derivation = med.ExplainText()
			rel, err = s.svc.Query(page.SQL, ctx)
		}
	}
	if err != nil {
		page.Error = err.Error()
	} else {
		resp := relationResponse(rel)
		page.Columns, page.Rows = resp.Columns, resp.Rows
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = qbeTemplate.Execute(w, page)
}
