package planner

// Per-source circuit breakers, layered on the dispatchers of the source
// access layer (access.go) — the executor-level dispatcher is the one
// object already keyed by source and shared by every session, which is
// exactly the scope a breaker needs: a source that is down is down for
// everyone.
//
// State machine (the classic three states):
//
//	closed ──(Threshold consecutive failures)──▶ open
//	open ──(Cooldown elapsed)──▶ half-open (one probe admitted)
//	half-open probe succeeds ──▶ closed;  probe fails ──▶ open again;
//	probe abandoned (its query died mid-flight) ──▶ open again
//
// While open, allow rejects with ErrSourceTripped immediately — mediation
// branches probing a dead source fail fast instead of each burning the
// full source timeout. ErrSourceTripped is deliberately not retryable
// (retrying against a tripped breaker is busy-waiting) but it is
// source-attributed, so partial-results mode can degrade the branch.
//
// Only the half-open probe's own verdict moves the breaker out of
// half-open, and only a probe's success closes an opened breaker: allow
// tells the caller whether the attempt it admitted is the probe, and the
// caller reports the outcome with that flag. An operation admitted while
// the breaker was still closed may finish long after a trip; its late
// success must not bypass the cooldown, and its late failure is not the
// probe's answer. The dispatcher (and thus the breaker) is executor-level
// state shared by every session, so every admitted attempt must resolve —
// succeed, fail, or abandon — or the single probe slot would wedge the
// source for the life of the process.

import (
	"errors"
	"fmt"
	"time"
)

// BreakerPolicy configures the per-source circuit breakers. The zero
// value means defaults; Executor.DisableBreaker turns breaking off.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that trips the breaker;
	// 0 means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe; 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
}

// DefaultBreakerThreshold trips a source after this many consecutive
// failures.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is how long a tripped source rests before a
// probe is allowed through.
const DefaultBreakerCooldown = 2 * time.Second

// ErrSourceTripped rejects an operation because the source's circuit
// breaker is open (or its single half-open probe is already in flight).
var ErrSourceTripped = errors.New("planner: source circuit breaker open")

func (p BreakerPolicy) params() (threshold int, cooldown time.Duration) {
	threshold = p.Threshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	cooldown = p.Cooldown
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return threshold, cooldown
}

// breaker states, held on the dispatcher (access.go).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// allow admits one attempt against the source, or rejects it with
// ErrSourceTripped while the breaker is open (transitioning open →
// half-open once the cooldown has elapsed, and admitting exactly one
// probe in half-open). probe reports whether the admitted attempt is that
// half-open probe; the caller must resolve a probe with succeed, fail, or
// abandon, passing the flag back.
func (d *dispatcher) allow(pol BreakerPolicy) (probe bool, err error) {
	d.bmu.Lock()
	defer d.bmu.Unlock()
	switch d.bstate {
	case breakerOpen:
		wait := time.Until(d.bopenUntil)
		if wait > 0 {
			return false, fmt.Errorf("%w (cooling down %v)", ErrSourceTripped, wait.Round(time.Millisecond))
		}
		d.bstate = breakerHalfOpen
		d.bprobing = true
		return true, nil
	case breakerHalfOpen:
		if d.bprobing {
			return false, fmt.Errorf("%w (probe in flight)", ErrSourceTripped)
		}
		d.bprobing = true
		return true, nil
	default:
		return false, nil
	}
}

// succeed records a successful source operation: while closed the
// consecutive-failure count resets, and the half-open probe's success
// closes the breaker. A success landing while the breaker is open (an
// operation admitted before the trip that finished late) is ignored — it
// must not cut the cooldown short.
func (d *dispatcher) succeed(probe bool) {
	d.bmu.Lock()
	defer d.bmu.Unlock()
	if probe {
		d.bprobing = false
		d.bfails = 0
		d.bstate = breakerClosed
		return
	}
	if d.bstate == breakerClosed {
		d.bfails = 0
	}
}

// fail records a source failure, reporting true when this failure tripped
// the breaker (closed past the threshold, or the half-open probe failing
// back to open). Failures landing while open, or non-probe failures
// landing while half-open (stale operations admitted before the trip),
// change nothing — only the probe's verdict resolves half-open.
func (d *dispatcher) fail(pol BreakerPolicy, probe bool) bool {
	threshold, cooldown := pol.params()
	d.bmu.Lock()
	defer d.bmu.Unlock()
	if probe {
		d.bprobing = false
		d.bstate = breakerOpen
		d.bopenUntil = time.Now().Add(cooldown)
		return true
	}
	if d.bstate == breakerClosed {
		d.bfails++
		if d.bfails >= threshold {
			d.bstate = breakerOpen
			d.bopenUntil = time.Now().Add(cooldown)
			return true
		}
	}
	return false
}

// abandon resolves an admitted attempt whose outcome will never be
// reported — the query's context died mid-flight, which says nothing
// about the source's health. For the half-open probe that still must
// release the probe slot: the breaker returns to open with a fresh
// cooldown so a later query can probe again, instead of "probe in
// flight" wedging the source forever. Abandoning a non-probe attempt is
// a no-op.
func (d *dispatcher) abandon(pol BreakerPolicy, probe bool) {
	if !probe {
		return
	}
	_, cooldown := pol.params()
	d.bmu.Lock()
	defer d.bmu.Unlock()
	d.bprobing = false
	if d.bstate == breakerHalfOpen {
		d.bstate = breakerOpen
		d.bopenUntil = time.Now().Add(cooldown)
	}
}

// breakerState snapshots the breaker for tests and introspection.
func (d *dispatcher) breakerState() int {
	d.bmu.Lock()
	defer d.bmu.Unlock()
	return d.bstate
}
