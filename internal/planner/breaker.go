package planner

// Per-source circuit breakers, layered on the dispatchers of the source
// access layer (access.go) — the executor-level dispatcher is the one
// object already keyed by source and shared by every session, which is
// exactly the scope a breaker needs: a source that is down is down for
// everyone.
//
// State machine (the classic three states):
//
//	closed ──(Threshold consecutive failures)──▶ open
//	open ──(Cooldown elapsed)──▶ half-open (one probe admitted)
//	half-open probe succeeds ──▶ closed;  probe fails ──▶ open again
//
// While open, allow rejects with ErrSourceTripped immediately — mediation
// branches probing a dead source fail fast instead of each burning the
// full source timeout. ErrSourceTripped is deliberately not retryable
// (retrying against a tripped breaker is busy-waiting) but it is
// source-attributed, so partial-results mode can degrade the branch.

import (
	"errors"
	"fmt"
	"time"
)

// BreakerPolicy configures the per-source circuit breakers. The zero
// value means defaults; Executor.DisableBreaker turns breaking off.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that trips the breaker;
	// 0 means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe; 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
}

// DefaultBreakerThreshold trips a source after this many consecutive
// failures.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is how long a tripped source rests before a
// probe is allowed through.
const DefaultBreakerCooldown = 2 * time.Second

// ErrSourceTripped rejects an operation because the source's circuit
// breaker is open (or its single half-open probe is already in flight).
var ErrSourceTripped = errors.New("planner: source circuit breaker open")

func (p BreakerPolicy) params() (threshold int, cooldown time.Duration) {
	threshold = p.Threshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	cooldown = p.Cooldown
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return threshold, cooldown
}

// breaker states, held on the dispatcher (access.go).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// allow admits one attempt against the source, or rejects it with
// ErrSourceTripped while the breaker is open (transitioning open →
// half-open once the cooldown has elapsed, and admitting exactly one
// probe in half-open).
func (d *dispatcher) allow(pol BreakerPolicy) error {
	_, cooldown := pol.params()
	d.bmu.Lock()
	defer d.bmu.Unlock()
	switch d.bstate {
	case breakerOpen:
		wait := time.Until(d.bopenUntil)
		if wait > 0 {
			return fmt.Errorf("%w (cooling down %v)", ErrSourceTripped, wait.Round(time.Millisecond))
		}
		d.bstate = breakerHalfOpen
		d.bprobing = true
		return nil
	case breakerHalfOpen:
		if d.bprobing {
			return fmt.Errorf("%w (probe in flight)", ErrSourceTripped)
		}
		d.bprobing = true
		return nil
	default:
		_ = cooldown
		return nil
	}
}

// succeed records a successful source operation: the consecutive-failure
// count resets and a half-open probe's success closes the breaker.
func (d *dispatcher) succeed() {
	d.bmu.Lock()
	d.bfails = 0
	d.bstate = breakerClosed
	d.bprobing = false
	d.bmu.Unlock()
}

// fail records a source failure, reporting true when this failure tripped
// the breaker (closed past the threshold, or a half-open probe failing
// back to open).
func (d *dispatcher) fail(pol BreakerPolicy) bool {
	threshold, cooldown := pol.params()
	d.bmu.Lock()
	defer d.bmu.Unlock()
	d.bfails++
	switch d.bstate {
	case breakerHalfOpen:
		d.bstate = breakerOpen
		d.bopenUntil = time.Now().Add(cooldown)
		d.bprobing = false
		return true
	case breakerClosed:
		if d.bfails >= threshold {
			d.bstate = breakerOpen
			d.bopenUntil = time.Now().Add(cooldown)
			return true
		}
	}
	return false
}

// breakerState snapshots the breaker for tests and introspection.
func (d *dispatcher) breakerState() int {
	d.bmu.Lock()
	defer d.bmu.Unlock()
	return d.bstate
}
