package planner

// This file compiles BranchPlans into pull-based iterator trees (the
// Volcano model of internal/relalg). Building a stream is free of side
// effects: no source is contacted and no tuple moves until the consumer
// Opens the tree and pulls. That is what makes early exit work — a LIMIT
// stops pulling as soon as it is satisfied, so upstream scans stop
// transferring tuples from their sources, and lazily-unioned mediation
// branches that are never reached never run at all.
//
// Only the pipeline breakers materialize: Sort and GroupBy buffers, the
// build side of a hash join, both sides of a merge join, the feeding
// side of a bind join (its distinct binding values must all be known
// before the dependent source can be queried), and — when the executor
// has a TempStore — the per-step staging points, all of which route
// through store.TempStore so large intermediates spill to disk.

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/wrapper"
)

// stager adapts the executor's TempStore to the relalg.Stager hook
// breaker operators use; nil (keep everything resident) without one.
func (e *Executor) stager() relalg.Stager {
	if e.Temp == nil {
		return nil
	}
	return e.Temp
}

// sourceScanIter is the leaf of every pipeline: a wrapper fetch, pulled
// tuple by tuple through the wrapper's chunked-fetch protocol
// (wrapper.QueryStream). It counts one source query at Open and the
// tuples actually pulled — accumulated locally and flushed to ExecStats
// under one lock at Close, so parallel branch pipelines do not contend
// on the executor mutex per tuple.
type sourceScanIter struct {
	e      *Executor
	w      wrapper.Wrapper
	q      wrapper.SourceQuery
	schema relalg.Schema
	stream wrapper.TupleStream
	pulled int
}

func (s *sourceScanIter) Schema() relalg.Schema { return s.schema }

func (s *sourceScanIter) Open() error {
	stream, err := wrapper.QueryStream(s.w, s.q)
	if err != nil {
		return err
	}
	s.stream = stream
	s.pulled = 0
	s.e.mu.Lock()
	s.e.stats.SourceQueries++
	s.e.mu.Unlock()
	return nil
}

func (s *sourceScanIter) Next() (relalg.Tuple, bool, error) {
	if s.stream == nil {
		return nil, false, nil
	}
	t, ok, err := s.stream.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	s.pulled++
	return t, true, nil
}

func (s *sourceScanIter) Close() error {
	if s.stream == nil {
		return nil
	}
	s.e.mu.Lock()
	s.e.stats.TuplesTransferred += s.pulled
	s.e.mu.Unlock()
	s.pulled = 0
	err := s.stream.Close()
	s.stream = nil
	return err
}

// sourceIter builds the scan pipeline for one independent (non-bind)
// step: chunked fetch with pushed filters, columns qualified with the
// step binding, then the engine-local filters the source could not
// evaluate.
func (e *Executor) sourceIter(step *PlanStep) (relalg.Iterator, error) {
	w, err := e.Catalog.WrapperFor(step.Relation)
	if err != nil {
		return nil, err
	}
	schema, err := w.Schema(step.Relation)
	if err != nil {
		return nil, err
	}
	leaf := &sourceScanIter{
		e: e, w: w,
		q:      wrapper.SourceQuery{Relation: step.Relation, Filters: step.Pushed},
		schema: schema,
	}
	qualified := schema.Qualify(step.Binding)
	var it relalg.Iterator = relalg.NewRename(leaf, qualified)
	if len(step.Local) > 0 {
		filters := make([]wrapper.Filter, len(step.Local))
		for i, f := range step.Local {
			filters[i] = wrapper.Filter{Column: step.Binding + "." + f.Column, Op: f.Op, Value: f.Value}
		}
		match, err := wrapper.Matcher(qualified, filters)
		if err != nil {
			return nil, err
		}
		it = relalg.NewFilterFunc(it, match)
	}
	if len(step.LocalPreds) > 0 {
		it = relalg.NewFilter(it, sqlparse.AndAll(step.LocalPreds))
	}
	return it, nil
}

// joinIter combines the intermediate pipeline with a step's fetched
// input. Hash join always builds over the newly fetched side and streams
// the probe (intermediate) side: the intermediate is a stream of unknown
// cardinality, and hashing it would break the pipeline (and every early
// exit upstream). The materialized executor instead hashed whichever
// input was smaller, so a step fetching a relation much larger than the
// intermediate now holds the larger hash table; teaching the planner to
// flip sides from EstRows is future work. Merge join breaks both sides;
// nested loop materializes the inner (fetched) side and streams the
// outer.
func (e *Executor) joinIter(cur, next relalg.Iterator, keys []JoinKey, binding string) (relalg.Iterator, error) {
	if len(keys) > 0 && !e.ForceNestedLoop {
		aKeys := make([]string, len(keys))
		bKeys := make([]string, len(keys))
		for i, k := range keys {
			aKeys[i] = k.CurQualified
			bKeys[i] = binding + "." + k.NewColumn
		}
		if e.ForceMergeJoin {
			return relalg.NewMergeJoin(cur, next, aKeys, bKeys, nil, e.stager())
		}
		return relalg.NewHashJoin(cur, next, aKeys, bKeys, nil, false /* build the fetched side */, e.stager())
	}
	var pred sqlparse.Expr
	if len(keys) > 0 {
		preds := make([]sqlparse.Expr, len(keys))
		for i, k := range keys {
			preds[i] = sqlparse.Bin("=",
				colRefFromQualified(k.CurQualified),
				colRefFromQualified(binding+"."+k.NewColumn))
		}
		pred = sqlparse.AndAll(preds)
	}
	// The inner side is drained at Open; the outer streams.
	schema := cur.Schema().Concat(next.Schema())
	nl := cur
	return relalg.NewDeferred(schema, func() (relalg.Iterator, error) {
		inner, err := relalg.Collect(next, "")
		if err != nil {
			return nil, err
		}
		if inner, err = stageIfSet(e.stager(), inner); err != nil {
			return nil, err
		}
		return relalg.NewNestedLoop(nl, inner, pred), nil
	}), nil
}

// stageIfSet routes rel through st when non-nil.
func stageIfSet(st relalg.Stager, rel *relalg.Relation) (*relalg.Relation, error) {
	if st == nil {
		return rel, nil
	}
	return st.Stage(rel)
}

// BuildStream compiles a prepared plan into an iterator tree. Nothing
// runs until the tree is Opened; Collect it (or use Run) for a
// materialized answer. The tree is single-use.
func (e *Executor) BuildStream(plan *BranchPlan) (relalg.Iterator, error) {
	var cur relalg.Iterator
	for i := range plan.Steps {
		step := &plan.Steps[i]
		var next relalg.Iterator
		var err error
		if len(step.BindJoins) == 0 {
			if next, err = e.sourceIter(step); err != nil {
				return nil, err
			}
			if cur == nil {
				cur = next
			} else if cur, err = e.joinIter(cur, next, step.JoinKeys, step.Binding); err != nil {
				return nil, err
			}
		} else {
			// A bind join is a pipeline breaker on the feeding side: every
			// distinct combination of feeding values must be known before
			// the dependent source can be queried, so the intermediate
			// result materializes here (staged through the TempStore when
			// configured) and both fetch and join defer to Open time.
			if cur == nil {
				return nil, fmt.Errorf("planner: bind join for %s with no prior result", step.Relation)
			}
			w, err := e.Catalog.WrapperFor(step.Relation)
			if err != nil {
				return nil, err
			}
			schema, err := w.Schema(step.Relation)
			if err != nil {
				return nil, err
			}
			prev := cur
			joined := prev.Schema().Concat(schema.Qualify(step.Binding))
			cur = relalg.NewDeferred(joined, func() (relalg.Iterator, error) {
				curRel, err := relalg.Collect(prev, "")
				if err != nil {
					return nil, err
				}
				if curRel, err = stageIfSet(e.stager(), curRel); err != nil {
					return nil, err
				}
				fetched, err := e.fetchBindStep(step, curRel)
				if err != nil {
					return nil, err
				}
				return e.joinIter(relalg.NewScan(curRel), relalg.NewScan(fetched), step.JoinKeys, step.Binding)
			})
		}
		if len(step.AfterPreds) > 0 {
			cur = relalg.NewFilter(cur, sqlparse.AndAll(step.AfterPreds))
		}
		if e.Temp != nil {
			// Staging mode: materialize every step boundary through the
			// temp store, exactly like the materialized executor did, so
			// resident memory stays bounded by the spill threshold.
			prev := cur
			cur = relalg.NewDeferred(prev.Schema(), func() (relalg.Iterator, error) {
				rel, err := relalg.Collect(prev, "")
				if err != nil {
					return nil, err
				}
				if rel, err = e.Temp.Stage(rel); err != nil {
					return nil, err
				}
				return relalg.NewScan(rel), nil
			})
		}
	}

	items, err := projectItems(plan.Items, cur.Schema())
	if err != nil {
		return nil, err
	}
	keys := make([]relalg.OrderKey, len(plan.OrderBy))
	for i, o := range plan.OrderBy {
		keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
	}
	var out relalg.Iterator
	projSchema := relalg.ProjectionSchema(items, cur.Schema())
	if len(plan.OrderBy) > 0 && !orderKeysResolve(plan.OrderBy, projSchema) {
		// ORDER BY references source columns the projection drops: sort
		// before projecting (as the materialized executor's fallback did —
		// including its quirk of skipping DISTINCT on this path).
		out = relalg.NewProject(relalg.NewSort(cur, keys, e.stager()), items)
	} else {
		out = relalg.NewProject(cur, items)
		if plan.Distinct {
			out = relalg.NewDistinct(out)
		}
		if len(plan.OrderBy) > 0 {
			out = relalg.NewSort(out, keys, e.stager())
		}
	}
	out = relalg.NewLimit(out, plan.Limit)
	return relalg.NewOnOpen(out, func() {
		e.mu.Lock()
		e.stats.BranchesRun++
		e.mu.Unlock()
	}), nil
}

// orderKeysResolve reports whether every column reference in the ORDER BY
// keys resolves in the projected schema (mirroring Eval's two-step
// lookup), deciding whether to sort after or before projection.
func orderKeysResolve(order []sqlparse.OrderItem, schema relalg.Schema) bool {
	for _, o := range order {
		ok := true
		sqlparse.WalkExprs(o.Expr, func(x sqlparse.Expr) bool {
			if c, isRef := x.(*sqlparse.ColRef); isRef {
				if schema.Index(c.String()) < 0 && schema.Index(c.Column) < 0 {
					ok = false
					return false
				}
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// selectStream compiles one SELECT block (aggregated or not) into an
// iterator tree.
func (e *Executor) selectStream(sel *sqlparse.Select) (relalg.Iterator, error) {
	if hasAggregates(sel) {
		return e.aggregateStream(sel)
	}
	plan, err := e.Plan(sel)
	if err != nil {
		return nil, err
	}
	return e.BuildStream(plan)
}

// statementStream compiles a statement (SELECT or UNION tree) into an
// iterator tree; UNION combines with set semantics unless marked ALL.
func (e *Executor) statementStream(stmt sqlparse.Statement) (relalg.Iterator, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return e.selectStream(s)
	case *sqlparse.Union:
		l, err := e.statementStream(s.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.statementStream(s.Right)
		if err != nil {
			return nil, err
		}
		u, err := relalg.NewUnionAll(l, r)
		if err != nil {
			return nil, err
		}
		if s.All {
			return u, nil
		}
		return relalg.NewDistinct(u), nil
	}
	return nil, fmt.Errorf("planner: cannot execute %T", stmt)
}

// aggregateStream compiles a grouped SELECT: the SPJ core streams into a
// GroupBy breaker, then order/distinct/limit apply.
func (e *Executor) aggregateStream(sel *sqlparse.Select) (relalg.Iterator, error) {
	spj := *sel
	spj.Items = []sqlparse.SelectItem{{Star: true}}
	spj.GroupBy, spj.Having, spj.OrderBy = nil, nil, nil
	spj.Limit = -1
	spj.Distinct = false
	plan, err := e.Plan(&spj)
	if err != nil {
		return nil, err
	}
	wide, err := e.BuildStream(plan)
	if err != nil {
		return nil, err
	}
	// Aggregate over the wide result. Column names were flattened to
	// plain names by projection; regroup using the original expressions,
	// which Schema.Index resolves by unique suffix.
	items := make([]relalg.AggItem, len(sel.Items))
	for i, it := range sel.Items {
		n := it.Alias
		if n == "" {
			if c, ok := it.Expr.(*sqlparse.ColRef); ok {
				n = c.Column
			} else {
				n = "col" + strconv.Itoa(i+1)
			}
		}
		items[i] = relalg.AggItem{Name: n, Expr: it.Expr}
	}
	var out relalg.Iterator = relalg.NewGroupBy(wide, sel.GroupBy, items, sel.Having, e.stager())
	if len(sel.OrderBy) > 0 {
		keys := make([]relalg.OrderKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
		}
		out = relalg.NewSort(out, keys, e.stager())
	}
	if sel.Distinct {
		out = relalg.NewDistinct(out)
	}
	return relalg.NewLimit(out, sel.Limit), nil
}

// MediationStream compiles a mediated query into one iterator tree: every
// branch pipeline feeding a streaming union (with the mediation's union
// semantics), then the post-union step when present.
//
// Without Executor.Parallel, branches are consumed lazily in order — a
// satisfied LIMIT above the union means later branches never open, never
// plan-execute, and never contact their sources. With Parallel, all
// branches run concurrently to materialized results (deterministic branch
// order is preserved) and the union streams over those.
func (e *Executor) MediationStream(med *core.Mediation) (relalg.Iterator, error) {
	if len(med.Branches) == 0 {
		return nil, fmt.Errorf("planner: mediation has no branches")
	}
	children := make([]relalg.Iterator, len(med.Branches))
	if e.Parallel && len(med.Branches) > 1 {
		results := make([]*relalg.Relation, len(med.Branches))
		errs := make([]error, len(med.Branches))
		var wg sync.WaitGroup
		for i, b := range med.Branches {
			wg.Add(1)
			go func(i int, b *sqlparse.Select) {
				defer wg.Done()
				results[i], errs[i] = e.ExecuteSelect(b)
			}(i, b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for i, res := range results {
			children[i] = relalg.NewScan(res)
		}
	} else {
		for i, b := range med.Branches {
			it, err := e.selectStream(b)
			if err != nil {
				return nil, err
			}
			children[i] = it
		}
	}

	united := children[0]
	if len(children) > 1 {
		u, err := relalg.NewUnionAll(children...)
		if err != nil {
			return nil, err
		}
		united = u
		if !med.UnionAll {
			united = relalg.NewDistinct(united)
		}
	}
	if med.Post == nil {
		return united, nil
	}
	return e.postStream(med.Post, united)
}

// postStream applies a mediation's post-union step to the union stream.
func (e *Executor) postStream(post *core.Post, in relalg.Iterator) (relalg.Iterator, error) {
	out := in
	if len(post.GroupBy) > 0 || anyAggItems(post.Items) {
		items := make([]relalg.AggItem, len(post.Items))
		for i, it := range post.Items {
			items[i] = relalg.AggItem{Name: it.Alias, Expr: it.Expr}
			if items[i].Name == "" {
				items[i].Name = "col" + strconv.Itoa(i+1)
			}
		}
		out = relalg.NewGroupBy(out, post.GroupBy, items, post.Having, e.stager())
	} else if len(post.Items) > 0 {
		items := make([]relalg.ProjectItem, len(post.Items))
		for i, it := range post.Items {
			items[i] = relalg.ProjectItem{Name: it.Alias, Expr: it.Expr}
			if items[i].Name == "" {
				if c, ok := it.Expr.(*sqlparse.ColRef); ok {
					items[i].Name = c.Column
				} else {
					items[i].Name = "col" + strconv.Itoa(i+1)
				}
			}
		}
		out = relalg.NewProject(out, items)
	}
	if post.Distinct {
		out = relalg.NewDistinct(out)
	}
	if len(post.OrderBy) > 0 {
		keys := make([]relalg.OrderKey, len(post.OrderBy))
		for i, o := range post.OrderBy {
			keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
		}
		out = relalg.NewSort(out, keys, e.stager())
	}
	return relalg.NewLimit(out, post.Limit), nil
}
