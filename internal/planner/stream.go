package planner

// This file compiles BranchPlans into pull-based iterator trees (the
// Volcano model of internal/relalg). Building a stream is free of side
// effects: no source is contacted and no tuple moves until the consumer
// Opens the tree and pulls. That is what makes early exit work — a LIMIT
// stops pulling as soon as it is satisfied, so upstream scans stop
// transferring tuples from their sources, and lazily-unioned mediation
// branches that are never reached never run at all.
//
// Every tree is compiled under a *Session (nil: ungoverned): the session's
// context is passed down at Open and bounds the whole run — leaves check
// it per tuple, deferred bind-join fetches check it per source query, and
// breaker drains check it per buffered tuple — while its resource
// governors (max tuples transferred, max staged bytes) are charged at the
// same points. Canceling the session context therefore stops source
// fetches mid-stream, not just between operators.
//
// Only the pipeline breakers materialize: Sort and GroupBy buffers, the
// build side of a hash join, both sides of a merge join, the feeding
// side of a bind join (its distinct binding values must all be known
// before the dependent source can be queried), and — when the executor
// has a TempStore — the per-step staging points, all of which route
// through store.TempStore so large intermediates spill to disk (and so
// the session's staging budget is enforced).

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/wrapper"
)

// sourceScanIter is the leaf of every pipeline: a wrapper fetch, pulled
// tuple by tuple through the wrapper's chunked-fetch protocol
// (wrapper.QueryStream). It counts one source query at Open and the
// tuples actually pulled — accumulated locally and flushed to ExecStats
// under one lock at Close, so parallel branch pipelines do not contend
// on the executor mutex per tuple. It retains the Open context and
// charges the session's transfer governor, so cancellation and the
// max-tuples limit both take effect mid-chunk.
//
// The scan is admitted through the source access layer: Open acquires a
// per-source dispatcher slot (blocking while the source is saturated)
// and the slot is held until the stream is exhausted, fails, or the scan
// closes — a streaming fetch is in flight against the source for exactly
// that window.
//
// Faults are handled through the retry machinery (retry.go). A failed
// Open retries whole (acquire + stream open per attempt, no slot held
// through a backoff). A stream that dies AFTER delivering tuples is
// harder: those tuples are already downstream and cannot be recalled, so
// a replacement stream may only be used when its replay of them can be
// deduplicated away. The scan tracks the multiset of delivered tuples
// (bounded by maxReplayTracked) and, on a retryable mid-stream fault,
// re-opens the source query and suppresses previously-delivered tuples by
// multiset key — consulted for every tuple, not as a prefix, since the
// replacement may answer in a different order. This is correct exactly
// when the source's answer multiset is stable across the retry; if the
// replacement stream ends while suppressed tuples remain unmatched, the
// answer changed mid-retry and the scan fails rather than emit a multiset
// that no single consistent answer contains. Suppressed replays still
// count as pulled and are charged to the transfer governor — they did
// cross the wire again.
type sourceScanIter struct {
	e         *Executor
	sess      *Session
	w         wrapper.Wrapper
	q         wrapper.SourceQuery
	schema    relalg.Schema
	act       *StepActuals // non-nil under EXPLAIN ANALYZE
	est       int          // planner's transfer estimate (presize hint)
	ctx       context.Context
	stream    wrapper.TupleStream
	batch     wrapper.BatchStream // non-nil when the stream block-fetches
	release   func()
	// reserved marks a part scan running under a fan-out's up-front slot
	// reservation (parallelScanIter): the scan never acquires or releases
	// admission itself — the slot is held by the reservation for the
	// fan-out's whole lifetime, and mid-stream recovery re-opens the part
	// query on the same held slot.
	reserved  bool
	pulled    int
	exhausted bool
	one       [1]relalg.Tuple // degenerate batch for per-tuple streams
	out       []relalg.Tuple  // reused buffer for replay-filtered batches
	pend      error           // error held back behind an allowed prefix

	// mid-stream recovery state (see the type comment)
	emitted    []relalg.Tuple // delivered-downstream tuples, in order
	skip       map[string]int // replay suppression for the current re-opened stream
	delivered  int            // tuples handed downstream
	trackOK    bool           // emitted is complete (under the bound)
	recovered  bool           // at least one mid-stream re-open happened
	recoveries int            // consecutive recoveries without new progress
}

// maxReplayTracked bounds the delivered-tuple multiset a scan keeps for
// replay deduplication; past it, a mid-stream fault is no longer
// recoverable (the scan cannot prove a replacement stream clean).
const maxReplayTracked = 4096

func (s *sourceScanIter) Schema() relalg.Schema { return s.schema }

// RowCountHint implements relalg.RowCountHint with the plan step's
// transfer estimate, so drains that materialize this scan (hash-join
// build sides, staging) presize instead of regrowing. After the adaptive
// statistics warm up, the estimate is the learned exact cardinality.
func (s *sourceScanIter) RowCountHint() int { return s.est }

// openStream acquires admission and opens the source stream, under the
// retry/breaker machinery; shared by Open and mid-stream recovery.
func (s *sourceScanIter) openStream(ctx context.Context) error {
	return s.e.withRetry(ctx, s.sess, s.w, func() error {
		var release func()
		if !s.reserved {
			var err error
			release, err = s.e.acquireSource(ctx, s.sess, s.w)
			if err != nil {
				return err
			}
		}
		start := time.Now()
		stream, err := wrapper.QueryStream(ctx, s.w, s.q)
		if err != nil {
			if release != nil {
				release()
			}
			return err
		}
		s.e.observeLatency(s.sess, s.w.Source(), time.Since(start))
		s.stream = stream
		// Block fetch is an optional stream capability: per-tuple streams
		// (gated test wrappers, fault injectors) fall back to degenerate
		// one-row batches so their per-tuple semantics survive unchanged.
		s.batch, _ = stream.(wrapper.BatchStream)
		s.release = release
		return nil
	})
}

func (s *sourceScanIter) Open(ctx context.Context) error {
	s.ctx = ctx
	if err := s.openStream(ctx); err != nil {
		return err
	}
	s.pulled = 0
	s.exhausted = false
	s.pend = nil
	s.emitted = nil
	s.skip = nil
	s.delivered = 0
	s.trackOK = s.e.Retry.enabled()
	s.recovered = false
	s.recoveries = 0
	s.e.mu.Lock()
	s.e.stats.SourceQueries++
	s.e.mu.Unlock()
	if s.act != nil {
		s.act.Queries.Add(1)
	}
	return nil
}

// freeSlot returns the scan's dispatcher slot; idempotent.
func (s *sourceScanIter) freeSlot() {
	if s.release != nil {
		s.release()
		s.release = nil
	}
}

// track records a block of tuples as delivered downstream (for replay
// dedup) and resets the consecutive-recovery counter: the stream made
// progress.
func (s *sourceScanIter) track(rows []relalg.Tuple) {
	s.recoveries = 0
	if !s.trackOK {
		return
	}
	if len(s.emitted)+len(rows) > maxReplayTracked {
		s.trackOK = false
		s.emitted = nil
		return
	}
	// A reference append, not a hash: the per-tuple cost of an armed but
	// idle retry policy stays negligible. Keys are computed only when a
	// recovery actually needs the suppression multiset.
	s.emitted = append(s.emitted, rows...)
}

// fetchRows pulls one block from the source stream: natively when the
// stream block-fetches, else a degenerate one-row batch (so per-tuple
// gating and fault-injection wrappers keep their exact semantics).
func (s *sourceScanIter) fetchRows(req int) ([]relalg.Tuple, error) {
	if s.batch != nil {
		return s.batch.NextBatch(req)
	}
	t, ok, err := s.stream.Next()
	if err != nil || !ok {
		return nil, err
	}
	s.one[0] = t
	return s.one[:1], nil
}

func (s *sourceScanIter) Next(max int) (relalg.Batch, error) {
	if err := s.pend; err != nil {
		s.pend = nil
		s.freeSlot()
		return relalg.Batch{}, err
	}
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	for {
		if s.stream == nil {
			return relalg.Batch{}, nil
		}
		if err := s.ctx.Err(); err != nil {
			s.freeSlot()
			return relalg.Batch{}, err
		}
		// Cap the request at the governor's remaining budget + 1: the
		// tuple that crosses the limit must still be pulled (that is what
		// proves the limit was crossed, as under per-tuple charging), but
		// the stream must not overshoot by a whole block.
		req := max
		if rem, capped := s.sess.tupleBudget(); capped && req > rem+1 {
			req = rem + 1
		}
		rows, err := s.fetchRows(req)
		if err != nil {
			if rerr := s.recover(err); rerr != nil {
				return relalg.Batch{}, rerr
			}
			continue
		}
		if len(rows) == 0 {
			if n := remaining(s.skip); n > 0 {
				// The replacement stream never replayed tuples the original
				// delivered: the answer multiset changed mid-retry, so no
				// single consistent answer contains what went downstream.
				s.freeSlot()
				return relalg.Batch{}, &SourceError{Source: s.w.Source(), Err: fmt.Errorf(
					"wrapper: replay after mid-stream retry is missing %d previously delivered tuple(s): source answer changed", n)}
			}
			if !s.recovered {
				// The source delivered its whole answer in one stream: the
				// observed cardinality is a fact worth learning. A stitched
				// (recovered) answer is not — replays were suppressed, so
				// pulled is not the relation's cardinality.
				s.exhausted = true
			}
			s.freeSlot()
			return relalg.Batch{}, nil
		}
		s.pulled += len(rows)
		if s.act != nil {
			s.act.Rows.Add(int64(len(rows)))
		}
		allowed, gerr := s.sess.chargeTupleBatch(len(rows))
		if gerr != nil {
			// Remainder accounting: the tuples that still fit go downstream
			// now; the governor error surfaces on the following call.
			if allowed <= 0 {
				s.freeSlot()
				return relalg.Batch{}, gerr
			}
			rows = rows[:allowed]
			s.pend = gerr
		}
		if len(s.skip) > 0 {
			// Replay suppression after a mid-stream recovery: drop tuples
			// already delivered downstream (they were still transferred —
			// charged above).
			kept := s.out[:0]
			for _, t := range rows {
				k := t.FullKey()
				if n := s.skip[k]; n > 0 {
					if n == 1 {
						delete(s.skip, k)
					} else {
						s.skip[k] = n - 1
					}
					continue
				}
				kept = append(kept, t)
			}
			s.out = kept
			rows = kept
		}
		if len(rows) == 0 {
			// The whole block was replay; pull again (or surface a held
			// governor error).
			if err := s.pend; err != nil {
				s.pend = nil
				s.freeSlot()
				return relalg.Batch{}, err
			}
			continue
		}
		s.track(rows)
		s.delivered += len(rows)
		return relalg.Batch{Rows: rows}, nil
	}
}

// remaining sums a replay-suppression multiset.
func remaining(m map[string]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

// recover handles a mid-stream source fault: tear down the dead stream,
// feed the breaker, and — when the fault is retryable, the policy allows
// it, and any already-delivered tuples can be deduplicated on replay —
// re-open the source query. A nil return means s.stream is live again.
func (s *sourceScanIter) recover(orig error) error {
	s.stream.Close()
	s.stream = nil
	s.freeSlot()
	if s.ctx.Err() != nil {
		// The query died, the source did not.
		return orig
	}
	e := s.e
	tripped := false
	if !e.DisableBreaker {
		// Not the half-open probe: the stream's open resolved its own
		// admission when it succeeded; this is a later, mid-stream fault.
		if tripped = e.dispatcherFor(s.w).fail(e.Breaker, false); tripped {
			e.mu.Lock()
			e.stats.BreakerTrips++
			e.mu.Unlock()
		}
	}
	werr := &SourceError{Source: s.w.Source(), Err: orig}
	if tripped || !e.Retry.enabled() || !wrapper.Retryable(orig) {
		// A trip makes the re-open a guaranteed ErrSourceTripped
		// rejection: report the actual fault without burning a retry.
		return werr
	}
	if s.delivered > 0 && !s.trackOK {
		// Tuples are already downstream and the replay cannot be proven
		// clean (tracking overflowed): re-opening would risk duplicates.
		return werr
	}
	if s.recoveries >= e.Retry.attempts()-1 {
		return werr
	}
	if !s.sess.chargeRetry() {
		return werr
	}
	s.recoveries++
	hint, _ := wrapper.RetryAfter(orig)
	if !sleepCtx(s.ctx, e.Retry.backoff(s.recoveries, hint)) {
		return werr
	}
	e.mu.Lock()
	e.stats.Retries++
	e.mu.Unlock()
	if err := s.openStream(s.ctx); err != nil {
		return err
	}
	s.recovered = true
	e.mu.Lock()
	e.stats.SourceQueries++
	e.mu.Unlock()
	if s.act != nil {
		s.act.Queries.Add(1)
	}
	if s.delivered > 0 {
		s.skip = make(map[string]int, len(s.emitted))
		for _, t := range s.emitted {
			s.skip[t.FullKey()]++
		}
	} else {
		s.skip = nil
	}
	return nil
}

func (s *sourceScanIter) Close() error {
	// Flush transfer stats unconditionally: a scan torn down after a
	// terminal mid-stream fault (stream already nil) still moved tuples.
	s.e.mu.Lock()
	s.e.stats.TuplesTransferred += s.pulled
	s.e.mu.Unlock()
	if s.exhausted {
		s.e.observeAccess(s.sess, s.q.Relation, s.q.Filters, s.pulled)
	}
	s.pulled = 0
	var err error
	if s.stream != nil {
		err = s.stream.Close()
		s.stream = nil
	}
	// Release the slot only after the stream is closed: the fetch stays
	// "in flight" against the source until its stream is torn down.
	s.freeSlot()
	return err
}

// scanChunk is one unit of part-stream → consumer flow in a partitioned
// scan fan-out: a durable copy of one batch's row headers, or a terminal
// error (the part's rows before the fault were flushed in prior chunks).
type scanChunk struct {
	rows []relalg.Tuple
	err  error
}

// scanChanCap bounds each part stream's output channel so fast parts
// cannot buffer unboundedly ahead of the consumer (which drains parts in
// order).
const scanChanCap = 2

// parallelScanIter fans one independent relation scan out across
// ScanParts partitioned source streams (SourceQuery.Partitions — the
// source promises disjoint contiguous ranges whose concatenation in part
// order equals the unpartitioned scan). All part streams run
// concurrently, each a full sourceScanIter with the retry/recovery and
// governor machinery intact; the consumer reassembles strictly in part
// order, so the output is identical, tuple for tuple and in order, to
// the serial scan.
//
// Admission: Open reserves all slots up front through acquireSourceN and
// holds them until Close — the part scans run in reserved mode and never
// touch the dispatcher themselves (mid-stream recovery re-opens a part
// query on its already-held slot). See access.go for why the up-front
// reservation cannot deadlock.
//
// Error parity: part k's fault surfaces only after parts 0..k-1 and k's
// own prefix are fully delivered — exactly the position the serial scan
// would surface it, since serial output is the in-order concatenation of
// the parts.
type parallelScanIter struct {
	e      *Executor
	sess   *Session
	w      wrapper.Wrapper
	base   wrapper.SourceQuery
	schema relalg.Schema
	act    *StepActuals
	est    int
	parts  int

	// workerRows, when non-nil, receives per-part scanned-row counts
	// (EXPLAIN ANALYZE's per-worker rows). BuildStream installs it only
	// when the step's WorkerRows slice belongs to the scan (a step with a
	// join exchange gives the slice to the join's workers instead).
	workerRows []atomic.Int64

	release func()
	subs    []*sourceScanIter
	outs    []chan scanChunk
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	part    int
	cur     []relalg.Tuple
	pos     int
	done    bool
}

func (s *parallelScanIter) Schema() relalg.Schema { return s.schema }

// RowCountHint mirrors sourceScanIter's presize hint.
func (s *parallelScanIter) RowCountHint() int { return s.est }

func (s *parallelScanIter) Open(ctx context.Context) error {
	got, release, err := s.e.acquireSourceN(ctx, s.sess, s.w, s.parts)
	if err != nil {
		return err
	}
	s.release = release
	s.parts = got
	wctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	s.subs = make([]*sourceScanIter, got)
	s.outs = make([]chan scanChunk, got)
	estPart := s.est/got + 1
	for p := 0; p < got; p++ {
		q := s.base
		if got > 1 {
			q.Partitions, q.Partition = got, p
		}
		s.subs[p] = &sourceScanIter{
			e: s.e, sess: s.sess, w: s.w, q: q,
			schema: s.schema, act: s.act, est: estPart,
			reserved: true,
		}
		s.outs[p] = make(chan scanChunk, scanChanCap)
	}
	for p := 0; p < got; p++ {
		s.wg.Add(1)
		go s.runPart(wctx, p)
	}
	s.part, s.cur, s.pos, s.done = 0, nil, 0, false
	return nil
}

// runPart drains one part stream into its channel: durable row-header
// copies (the sub-scan may reuse its batch buffer; the tuples inside are
// durable per the batch contract), then a terminal error chunk or a
// channel close on clean exhaustion.
func (s *parallelScanIter) runPart(ctx context.Context, p int) {
	defer s.wg.Done()
	out := s.outs[p]
	defer close(out)
	send := func(c scanChunk) bool {
		select {
		case out <- c:
			return true
		case <-ctx.Done():
			return false
		}
	}
	sub := s.subs[p]
	if err := sub.Open(ctx); err != nil {
		send(scanChunk{err: err})
		return
	}
	workers := s.workerRows
	for {
		b, err := sub.Next(relalg.DefaultBatchSize)
		if err != nil {
			send(scanChunk{err: err})
			return
		}
		if b.Empty() {
			return
		}
		if p < len(workers) {
			workers[p].Add(int64(b.Len()))
		}
		rows := append([]relalg.Tuple(nil), b.Rows...)
		if !send(scanChunk{rows: rows}) {
			return
		}
	}
}

func (s *parallelScanIter) Next(max int) (relalg.Batch, error) {
	if max <= 0 {
		max = relalg.DefaultBatchSize
	}
	for {
		if s.pos < len(s.cur) {
			n := len(s.cur) - s.pos
			if n > max {
				n = max
			}
			rows := s.cur[s.pos : s.pos+n]
			s.pos += n
			return relalg.Batch{Rows: rows}, nil
		}
		if s.done {
			return relalg.Batch{}, nil
		}
		c, ok := <-s.outs[s.part]
		if !ok {
			s.part++
			if s.part >= len(s.outs) {
				s.done = true
				return relalg.Batch{}, nil
			}
			continue
		}
		if c.err != nil {
			s.done = true
			return relalg.Batch{}, c.err
		}
		s.cur, s.pos = c.rows, 0
	}
}

func (s *parallelScanIter) Close() error {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
	s.wg.Wait()
	var err error
	for _, sub := range s.subs {
		if sub == nil {
			continue
		}
		if cerr := sub.Close(); err == nil {
			err = cerr
		}
	}
	s.subs, s.outs, s.cur = nil, nil, nil
	s.done = true
	if s.release != nil {
		s.release()
		s.release = nil
	}
	return err
}

// sourceIter builds the scan pipeline for one independent (non-bind)
// step: chunked fetch with pushed filters, columns qualified with the
// step binding, then the engine-local filters the source could not
// evaluate.
func (e *Executor) sourceIter(sess *Session, step *PlanStep, act *StepActuals) (relalg.Iterator, error) {
	w, err := e.Catalog.WrapperFor(step.Relation)
	if err != nil {
		return nil, err
	}
	schema, err := w.Schema(step.Relation)
	if err != nil {
		return nil, err
	}
	q := wrapper.SourceQuery{Relation: step.Relation, Filters: step.Pushed}
	var leaf relalg.Iterator
	if step.ScanParts > 1 {
		ps := &parallelScanIter{
			e: e, sess: sess, w: w, base: q,
			schema: schema, act: act, est: int(step.EstRows),
			parts: step.ScanParts,
		}
		if act != nil && step.Workers <= 1 {
			ps.workerRows = act.WorkerRows
		}
		leaf = ps
	} else {
		leaf = &sourceScanIter{
			e: e, sess: sess, w: w, q: q,
			schema: schema, act: act, est: int(step.EstRows),
		}
	}
	qualified := schema.Qualify(step.Binding)
	var it relalg.Iterator = relalg.NewRename(leaf, qualified)
	if len(step.Local) > 0 {
		filters := make([]wrapper.Filter, len(step.Local))
		for i, f := range step.Local {
			filters[i] = wrapper.Filter{Column: step.Binding + "." + f.Column, Op: f.Op, Value: f.Value}
		}
		match, err := wrapper.Matcher(qualified, filters)
		if err != nil {
			return nil, err
		}
		it = relalg.NewFilterFunc(it, match)
	}
	if len(step.LocalPreds) > 0 {
		it = relalg.NewFilter(it, sqlparse.AndAll(step.LocalPreds))
	}
	return it, nil
}

// joinIter combines the intermediate pipeline with a step's fetched
// input. Hash join always builds over the newly fetched side and streams
// the probe (intermediate) side: the intermediate is a stream of unknown
// cardinality, and hashing it would break the pipeline (and every early
// exit upstream). The materialized executor instead hashed whichever
// input was smaller, so a step fetching a relation much larger than the
// intermediate now holds the larger hash table; teaching the planner to
// flip sides from EstRows is future work. Merge join breaks both sides;
// nested loop materializes the inner (fetched) side and streams the
// outer.
// residual, when non-nil, is the conjunction of the step's AfterPreds:
// every join algorithm applies it to the joined row before emitting, so
// rejected rows never leave the join (and their arena slots are
// reclaimed) instead of being materialized and filtered above.
func (e *Executor) joinIter(sess *Session, pool *relalg.Interner, cur, next relalg.Iterator, keys []JoinKey, binding string, residual sqlparse.Expr, workers int, workerRows []atomic.Int64) (relalg.Iterator, error) {
	if len(keys) > 0 && !e.ForceNestedLoop {
		aKeys := make([]string, len(keys))
		bKeys := make([]string, len(keys))
		for i, k := range keys {
			aKeys[i] = k.CurQualified
			bKeys[i] = binding + "." + k.NewColumn
		}
		if e.ForceMergeJoin {
			return relalg.NewMergeJoin(cur, next, aKeys, bKeys, residual, e.stagerFor(sess))
		}
		if workers > 1 {
			// Hash-repartition exchange: build and probe split across
			// worker pipelines, output re-serialized in exact probe order.
			// The probe side is NOT marked transient — its batches cross
			// the exchange asynchronously, so the consumer promise that
			// makes arena recycling safe cannot be given here.
			phj, err := relalg.NewParallelHashJoin(cur, next, aKeys, bKeys, residual, false /* build the fetched side */, e.stagerFor(sess), workers)
			if err != nil {
				return nil, err
			}
			phj.WorkerOut = workerRows
			return phj, nil
		}
		hj, err := relalg.NewHashJoin(cur, next, aKeys, bKeys, residual, false /* build the fetched side */, e.stagerFor(sess))
		if err != nil {
			return nil, err
		}
		hj.Intern = pool
		// cur streams through the probe side: every probe row is either
		// dropped or re-copied into the join's own output arena before
		// the next batch is pulled, so cur's rows need not stay alive.
		relalg.MarkTransient(cur)
		return hj, nil
	}
	var pred sqlparse.Expr
	if len(keys) > 0 {
		preds := make([]sqlparse.Expr, 0, len(keys)+1)
		for _, k := range keys {
			preds = append(preds, sqlparse.Bin("=",
				colRefFromQualified(k.CurQualified),
				colRefFromQualified(binding+"."+k.NewColumn)))
		}
		if residual != nil {
			preds = append(preds, residual)
		}
		pred = sqlparse.AndAll(preds)
	} else {
		pred = residual
	}
	// The inner side is drained at Open; the outer streams — like the
	// hash-join probe side, its rows are re-copied row by row and need
	// not stay alive across batches.
	relalg.MarkTransient(cur)
	schema := cur.Schema().Concat(next.Schema())
	nl := cur
	return relalg.NewDeferred(schema, func(ctx context.Context) (relalg.Iterator, error) {
		inner, err := relalg.Collect(ctx, next, "")
		if err != nil {
			return nil, err
		}
		if inner, err = stageIfSet(e.stagerFor(sess), inner); err != nil {
			return nil, err
		}
		return relalg.NewNestedLoop(nl, inner, pred), nil
	}), nil
}

// stageIfSet routes rel through st when non-nil.
func stageIfSet(st relalg.Stager, rel *relalg.Relation) (*relalg.Relation, error) {
	if st == nil {
		return rel, nil
	}
	return st.Stage(rel)
}

// BuildStream compiles a prepared plan into an iterator tree governed by
// sess (nil: ungoverned). Nothing runs until the tree is Opened — open it
// with the session's context; Collect it (or use Run) for a materialized
// answer. The tree is single-use.
func (e *Executor) BuildStream(sess *Session, plan *BranchPlan) (relalg.Iterator, error) {
	// One interning pool per compiled pipeline: the tree is single-use and
	// pulled by one goroutine, so every key-hashing operator in it (hash
	// joins, DISTINCT) can share string handles without locking. Handles
	// never cross the pool boundary — staged relations and probe-cache
	// entries carry full Value.Key forms.
	pool := relalg.NewInterner()
	var cur relalg.Iterator
	for i := range plan.Steps {
		step := &plan.Steps[i]
		act := plan.stepActuals(i)
		if act != nil && act.WorkerRows == nil {
			// Per-worker actual rows for EXPLAIN ANALYZE: the exchange
			// join's workers when the step has one, else the scan fan-out
			// parts.
			switch {
			case step.Workers > 1:
				act.WorkerRows = make([]atomic.Int64, step.Workers)
			case step.ScanParts > 1:
				act.WorkerRows = make([]atomic.Int64, step.ScanParts)
			}
		}
		var workerRows []atomic.Int64
		if act != nil && step.Workers > 1 {
			workerRows = act.WorkerRows
		}
		var after sqlparse.Expr
		if len(step.AfterPreds) > 0 {
			after = sqlparse.AndAll(step.AfterPreds)
		}
		afterConsumed := false
		var next relalg.Iterator
		var err error
		if len(step.BindJoins) == 0 {
			if next, err = e.sourceIter(sess, step, act); err != nil {
				return nil, err
			}
			if cur == nil {
				cur = next
			} else if cur, err = e.joinIter(sess, pool, cur, next, step.JoinKeys, step.Binding, after, step.Workers, workerRows); err != nil {
				return nil, err
			} else {
				afterConsumed = after != nil
			}
		} else {
			// A bind join is a pipeline breaker on the feeding side: every
			// distinct combination of feeding values must be known before
			// the dependent source can be queried, so the intermediate
			// result materializes here (staged through the TempStore when
			// configured) and both fetch and join defer to Open time.
			if cur == nil {
				return nil, fmt.Errorf("planner: bind join for %s with no prior result", step.Relation)
			}
			w, err := e.Catalog.WrapperFor(step.Relation)
			if err != nil {
				return nil, err
			}
			schema, err := w.Schema(step.Relation)
			if err != nil {
				return nil, err
			}
			prev := cur
			joined := prev.Schema().Concat(schema.Qualify(step.Binding))
			cur = relalg.NewDeferred(joined, func(ctx context.Context) (relalg.Iterator, error) {
				curRel, err := relalg.Collect(ctx, prev, "")
				if err != nil {
					return nil, err
				}
				if curRel, err = stageIfSet(e.stagerFor(sess), curRel); err != nil {
					return nil, err
				}
				fetched, err := e.fetchBindStep(ctx, sess, step, act, curRel)
				if err != nil {
					return nil, err
				}
				return e.joinIter(sess, pool, relalg.NewScan(curRel), relalg.NewScan(fetched), step.JoinKeys, step.Binding, after, step.Workers, workerRows)
			})
			afterConsumed = after != nil
		}
		if after != nil && !afterConsumed {
			cur = relalg.NewFilter(cur, after)
		}
		if act != nil {
			// Count the step's downstream output (after joins and local
			// predicates) for the act_out column of EXPLAIN ANALYZE.
			cur = relalg.NewCounted(cur, &act.Out)
		}
		if e.Temp != nil {
			// Staging mode: materialize every step boundary through the
			// temp store, exactly like the materialized executor did, so
			// resident memory stays bounded by the spill threshold.
			prev := cur
			cur = relalg.NewDeferred(prev.Schema(), func(ctx context.Context) (relalg.Iterator, error) {
				rel, err := relalg.Collect(ctx, prev, "")
				if err != nil {
					return nil, err
				}
				if rel, err = stageIfSet(e.stagerFor(sess), rel); err != nil {
					return nil, err
				}
				return relalg.NewScan(rel), nil
			})
		}
	}

	items, err := projectItems(plan.Items, cur.Schema())
	if err != nil {
		return nil, err
	}
	keys := make([]relalg.OrderKey, len(plan.OrderBy))
	for i, o := range plan.OrderBy {
		keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
	}
	var out relalg.Iterator
	projSchema := relalg.ProjectionSchema(items, cur.Schema())
	if len(plan.OrderBy) > 0 && !orderKeysResolve(plan.OrderBy, projSchema) {
		// ORDER BY references source columns the projection drops: sort
		// before projecting (as the materialized executor's fallback did —
		// including its quirk of skipping DISTINCT on this path).
		srt := relalg.NewSort(cur, keys, e.stagerFor(sess))
		srt.Par = plan.Parallelism
		out = relalg.NewProject(srt, items)
	} else {
		// The projection re-copies every surviving value per batch, so
		// the operator feeding it may recycle its output batches. (The
		// sort-first branch above must NOT mark: Sort retains cur's rows.)
		relalg.MarkTransient(cur)
		out = relalg.NewProject(cur, items)
		if plan.Distinct {
			d := relalg.NewDistinct(out)
			d.Intern = pool
			out = d
		}
		if len(plan.OrderBy) > 0 {
			srt := relalg.NewSort(out, keys, e.stagerFor(sess))
			srt.Par = plan.Parallelism
			out = srt
		}
	}
	out = relalg.NewLimit(out, plan.Limit)
	if plan.Actuals != nil {
		out = relalg.NewCounted(out, &plan.Actuals.Rows)
	}
	return relalg.Checked(relalg.NewOnOpen(out, func() {
		e.mu.Lock()
		e.stats.BranchesRun++
		e.mu.Unlock()
	})), nil
}

// orderKeysResolve reports whether every column reference in the ORDER BY
// keys resolves in the projected schema (mirroring Eval's two-step
// lookup), deciding whether to sort after or before projection.
func orderKeysResolve(order []sqlparse.OrderItem, schema relalg.Schema) bool {
	for _, o := range order {
		ok := true
		sqlparse.WalkExprs(o.Expr, func(x sqlparse.Expr) bool {
			if c, isRef := x.(*sqlparse.ColRef); isRef {
				if schema.Index(c.String()) < 0 && schema.Index(c.Column) < 0 {
					ok = false
					return false
				}
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// selectStream compiles one SELECT block (aggregated or not) into an
// iterator tree.
func (e *Executor) selectStream(sess *Session, sel *sqlparse.Select) (relalg.Iterator, error) {
	if hasAggregates(sel) {
		return e.aggregateStream(sess, sel)
	}
	plan, err := e.PlanCtx(sess.Context(), sel)
	if err != nil {
		return nil, err
	}
	e.ParallelizePlan(plan, sess)
	return e.BuildStream(sess, plan)
}

// StatementStream compiles a statement (SELECT or UNION tree) into an
// iterator tree under sess; nothing runs until the tree is opened with
// the session's context. Service layers use it to stream un-mediated
// (naive) answers incrementally.
func (e *Executor) StatementStream(sess *Session, stmt sqlparse.Statement) (relalg.Iterator, error) {
	return e.statementStream(sess, stmt)
}

// statementStream compiles a statement (SELECT or UNION tree) into an
// iterator tree; UNION combines with set semantics unless marked ALL.
func (e *Executor) statementStream(sess *Session, stmt sqlparse.Statement) (relalg.Iterator, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return e.selectStream(sess, s)
	case *sqlparse.Union:
		l, err := e.statementStream(sess, s.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.statementStream(sess, s.Right)
		if err != nil {
			return nil, err
		}
		u, err := relalg.NewUnionAll(l, r)
		if err != nil {
			return nil, err
		}
		if s.All {
			return u, nil
		}
		return relalg.NewDistinct(u), nil
	}
	return nil, fmt.Errorf("planner: cannot execute %T", stmt)
}

// aggregateStream compiles a grouped SELECT: the SPJ core streams into a
// GroupBy breaker, then order/distinct/limit apply.
func (e *Executor) aggregateStream(sess *Session, sel *sqlparse.Select) (relalg.Iterator, error) {
	spj := *sel
	spj.Items = []sqlparse.SelectItem{{Star: true}}
	spj.GroupBy, spj.Having, spj.OrderBy = nil, nil, nil
	spj.Limit = -1
	spj.Distinct = false
	plan, err := e.PlanCtx(sess.Context(), &spj)
	if err != nil {
		return nil, err
	}
	e.ParallelizePlan(plan, sess)
	wide, err := e.BuildStream(sess, plan)
	if err != nil {
		return nil, err
	}
	// Aggregate over the wide result. Column names were flattened to
	// plain names by projection; regroup using the original expressions,
	// which Schema.Index resolves by unique suffix.
	items := make([]relalg.AggItem, len(sel.Items))
	for i, it := range sel.Items {
		n := it.Alias
		if n == "" {
			if c, ok := it.Expr.(*sqlparse.ColRef); ok {
				n = c.Column
			} else {
				n = "col" + strconv.Itoa(i+1)
			}
		}
		items[i] = relalg.AggItem{Name: n, Expr: it.Expr}
	}
	// GroupBy and a trailing DISTINCT share one interning pool: both hash
	// the same value domain, and the tree has a single consumer.
	pool := relalg.NewInterner()
	gb := relalg.NewGroupBy(wide, sel.GroupBy, items, sel.Having, e.stagerFor(sess))
	gb.Intern = pool
	gb.Par = e.parallelism(sess)
	var out relalg.Iterator = gb
	if len(sel.OrderBy) > 0 {
		keys := make([]relalg.OrderKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
		}
		srt := relalg.NewSort(out, keys, e.stagerFor(sess))
		srt.Par = e.parallelism(sess)
		out = srt
	}
	if sel.Distinct {
		d := relalg.NewDistinct(out)
		d.Intern = pool
		out = d
	}
	return relalg.NewLimit(out, sel.Limit), nil
}

// MediationStream compiles a mediated query into one iterator tree
// governed by sess: every branch pipeline feeding a streaming union (with
// the mediation's union semantics), then the post-union step when present.
//
// Without Executor.Parallel, branches are consumed lazily in order — a
// satisfied LIMIT above the union means later branches never open, never
// plan-execute, and never contact their sources. With Parallel, all
// branches run concurrently to materialized results (deterministic branch
// order is preserved) and the union streams over those; the branches share
// the session, so canceling it stops every one of them.
//
// Under Limits.PartialResults, a branch felled by a source fault (a
// Degradable error, after retries and the breaker) is dropped with a
// session Warning instead of failing the query; the answer is the union
// of the surviving branches. In parallel mode a degradable failure does
// not cancel its siblings (they are the answer now), and only when every
// branch degrades does the query fail. In lazy mode the failing branch is
// silenced in-stream (degradedIter); an all-branches-degraded lazy query
// yields an empty answer plus warnings rather than an error — the stream
// is already in the receiver's hands when the last branch dies, so there
// is no error channel left. That asymmetry is inherent to streaming.
func (e *Executor) MediationStream(sess *Session, med *core.Mediation) (relalg.Iterator, error) {
	if len(med.Branches) == 0 {
		return nil, fmt.Errorf("planner: mediation has no branches")
	}
	partial := sess.Limits().PartialResults
	var children []relalg.Iterator
	if e.Parallel && len(med.Branches) > 1 {
		// Branches share a branch-scoped context cancelled on the first
		// fatal failure, so when one branch dies its siblings stop fetching
		// from their sources promptly instead of running to completion
		// against answers nobody will see. (A degradable failure in partial
		// mode is not fatal: the siblings ARE the answer, so they keep
		// running.) The derived session shares the parent's governors
		// (tuple counter, staging budget, probe cache, admission pools);
		// only the context differs.
		bctx, bcancel := context.WithCancel(sess.Context())
		defer bcancel()
		bsess := sess.withContext(bctx)
		results := make([]*relalg.Relation, len(med.Branches))
		errs := make([]error, len(med.Branches))
		var wg sync.WaitGroup
		for i, b := range med.Branches {
			wg.Add(1)
			go func(i int, b *sqlparse.Select) {
				defer wg.Done()
				results[i], errs[i] = e.executeSelect(bsess, b)
				if errs[i] != nil && !(partial && Degradable(errs[i])) {
					bcancel()
				}
			}(i, b)
		}
		wg.Wait()
		if partial {
			fatals := make([]error, len(errs))
			var firstDegraded error
			for i, err := range errs {
				switch {
				case err == nil:
					children = append(children, relalg.NewScan(results[i]))
				case Degradable(err):
					if firstDegraded == nil {
						firstDegraded = err
					}
					sess.warnBranch(i+1, err)
					e.mu.Lock()
					e.stats.BranchesFailed++
					e.mu.Unlock()
				default:
					fatals[i] = err
				}
			}
			// A non-degradable failure (governor, cancellation, planning)
			// stays fatal even in partial mode; report the first real one.
			if err := firstRealError(fatals); err != nil {
				return nil, err
			}
			if len(children) == 0 {
				return nil, firstDegraded
			}
		} else {
			// Report the first branch (by order) that failed for its own
			// reasons, not with the cancellation derived from a sibling.
			if err := firstRealError(errs); err != nil {
				return nil, err
			}
			for _, res := range results {
				children = append(children, relalg.NewScan(res))
			}
		}
	} else {
		for i, b := range med.Branches {
			it, err := e.selectStream(sess, b)
			if err != nil {
				return nil, err
			}
			if partial {
				it = &degradedIter{inner: it, e: e, sess: sess, branch: i + 1}
			}
			children = append(children, it)
		}
	}

	united := children[0]
	if len(children) > 1 {
		u, err := relalg.NewUnionAll(children...)
		if err != nil {
			return nil, err
		}
		united = u
	}
	if !med.UnionAll && len(med.Branches) > 1 {
		// Keyed on the mediation's branch count, not the survivors': a
		// partial answer must dedup exactly like the no-fault union
		// restricted to the surviving branches would (even when a single
		// branch survives).
		united = relalg.NewDistinct(united)
	}
	if med.Post == nil {
		return united, nil
	}
	return e.postStream(sess, med.Post, united)
}

// degradedIter silences a mediation branch under partial-results mode: a
// Degradable failure at Open or mid-stream warns the session, counts the
// branch as failed, and presents as an empty (or prematurely ended)
// stream instead of an error; everything else passes through. Tuples the
// branch delivered before dying stay in the answer — they are correct
// rows, and the warning tells the receiver the branch is incomplete.
type degradedIter struct {
	inner  relalg.Iterator
	e      *Executor
	sess   *Session
	branch int
	opened bool
	done   bool
}

func (d *degradedIter) Schema() relalg.Schema { return d.inner.Schema() }

func (d *degradedIter) Open(ctx context.Context) error {
	err := d.inner.Open(ctx)
	if err == nil {
		d.opened = true
		return nil
	}
	if Degradable(err) {
		d.degrade(err)
		return nil
	}
	return err
}

func (d *degradedIter) Next(max int) (relalg.Batch, error) {
	if d.done {
		return relalg.Batch{}, nil
	}
	b, err := d.inner.Next(max)
	if err != nil && Degradable(err) {
		// Operators flush buffered rows before surfacing an error, so by
		// the time the fault reaches here every good row is already
		// downstream; presenting EOF loses nothing.
		d.degrade(err)
		return relalg.Batch{}, nil
	}
	return b, err
}

func (d *degradedIter) degrade(err error) {
	d.done = true
	d.sess.warnBranch(d.branch, err)
	d.e.mu.Lock()
	d.e.stats.BranchesFailed++
	d.e.mu.Unlock()
}

func (d *degradedIter) Close() error {
	if !d.opened {
		return nil
	}
	d.opened = false
	return d.inner.Close()
}

// postStream applies a mediation's post-union step to the union stream.
func (e *Executor) postStream(sess *Session, post *core.Post, in relalg.Iterator) (relalg.Iterator, error) {
	pool := relalg.NewInterner()
	out := in
	if len(post.GroupBy) > 0 || anyAggItems(post.Items) {
		items := make([]relalg.AggItem, len(post.Items))
		for i, it := range post.Items {
			items[i] = relalg.AggItem{Name: it.Alias, Expr: it.Expr}
			if items[i].Name == "" {
				items[i].Name = "col" + strconv.Itoa(i+1)
			}
		}
		gb := relalg.NewGroupBy(out, post.GroupBy, items, post.Having, e.stagerFor(sess))
		gb.Intern = pool
		gb.Par = e.parallelism(sess)
		out = gb
	} else if len(post.Items) > 0 {
		items := make([]relalg.ProjectItem, len(post.Items))
		for i, it := range post.Items {
			items[i] = relalg.ProjectItem{Name: it.Alias, Expr: it.Expr}
			if items[i].Name == "" {
				if c, ok := it.Expr.(*sqlparse.ColRef); ok {
					items[i].Name = c.Column
				} else {
					items[i].Name = "col" + strconv.Itoa(i+1)
				}
			}
		}
		out = relalg.NewProject(out, items)
	}
	if post.Distinct {
		d := relalg.NewDistinct(out)
		d.Intern = pool
		out = d
	}
	if len(post.OrderBy) > 0 {
		keys := make([]relalg.OrderKey, len(post.OrderBy))
		for i, o := range post.OrderBy {
			keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
		}
		srt := relalg.NewSort(out, keys, e.stagerFor(sess))
		srt.Par = e.parallelism(sess)
		out = srt
	}
	return relalg.NewLimit(out, post.Limit), nil
}
