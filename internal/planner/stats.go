package planner

// The adaptive statistics subsystem: a bounded, concurrency-safe store of
// facts observed during actual executions, feeding the cost model of
// subsequent plans. Two kinds of facts are kept:
//
//   - cardinalities, per (relation, canonical filter signature). Every
//     completed source access — a streamed scan pulled to exhaustion, a
//     materialized bind-join probe — records the tuples it actually
//     transferred under two signatures: the exact one (filter values
//     included), so replanning the same query uses the measured truth,
//     and the value-abstracted shape ("col =", "col <", ...), whose
//     running mean generalizes across probe values — that is what prices
//     a bind join's per-probe transfer before the probe values are known.
//   - per-source query latencies, as a running mean, floor for the cost
//     model's per-query term.
//
// Observations flow in from the access layer (access.go, stream.go)
// through the session's observation buffer and land here when the session
// closes (Session.Close → flushObs); sessionless runs record directly.
// The store is bounded: past MaxEntries access signatures, the oldest
// entries fall away FIFO, so a long-lived executor cannot grow without
// limit.

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/wrapper"
)

// DefaultStatsEntries bounds the access-signature entries a StatsStore
// retains (exact and shape signatures both count).
const DefaultStatsEntries = 4096

// StatsStore is the adaptive statistics store. The zero value is not
// usable; create one with NewStatsStore. It implements the Stats
// interface of the cost model.
type StatsStore struct {
	mu      sync.Mutex
	access  map[string]*accessStat
	order   []string // insertion order, for FIFO eviction
	latency map[string]*meanStat
	max     int
}

type accessStat struct {
	count float64
	sum   float64
}

func (a *accessStat) mean() float64 { return a.sum / a.count }

type meanStat struct {
	count float64
	sum   float64
}

// NewStatsStore creates an empty store bounded by DefaultStatsEntries.
func NewStatsStore() *StatsStore {
	return &StatsStore{
		access:  map[string]*accessStat{},
		latency: map[string]*meanStat{},
		max:     DefaultStatsEntries,
	}
}

// sigFilters renders a deterministic signature of a filter set, exact
// (values included) or shape-only. IN-list filters normalize to the
// equality shape — a batch of k values is k probes in one query — and
// have no useful exact form (exact=false callers skip them).
func sigFilters(filters []wrapper.Filter, bindCols []string, exact bool) string {
	enc := make([]string, 0, len(filters)+len(bindCols))
	for _, f := range filters {
		op := f.Op
		if op == wrapper.OpIn {
			op = "="
		}
		if exact {
			enc = append(enc, f.Column+"\x02"+op+"\x02"+f.Value.Key())
		} else {
			enc = append(enc, f.Column+"\x02"+op)
		}
	}
	for _, c := range bindCols {
		enc = append(enc, c+"\x02=")
	}
	sort.Strings(enc)
	return strings.Join(enc, "\x01")
}

func accessKey(relation, sig string, exact bool) string {
	kind := "s"
	if exact {
		kind = "e"
	}
	return relation + "\x00" + kind + "\x00" + sig
}

// ObserveAccess records one completed source access: a query against
// relation with the given filters transferred rows tuples. An IN-list
// query answers len(Values) probes at once, so its per-probe mean is
// recorded under the equality shape and no exact entry is kept.
func (s *StatsStore) ObserveAccess(relation string, filters []wrapper.Filter, rows int) {
	probes := 1
	hasIn := false
	for _, f := range filters {
		if f.Op == wrapper.OpIn {
			hasIn = true
			if n := len(f.Values); n > 1 {
				probes = n
			}
		}
	}
	perProbe := float64(rows) / float64(probes)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !hasIn {
		// Exact entries keep the latest measurement: the source may have
		// changed, and the newest answer is the truth.
		st := s.entry(accessKey(relation, sigFilters(filters, nil, true), true))
		st.count, st.sum = 1, float64(rows)
	}
	st := s.entry(accessKey(relation, sigFilters(filters, nil, false), false))
	st.count += float64(probes)
	st.sum += perProbe * float64(probes)
}

// entry returns (creating, evicting FIFO past the bound) the stat for key.
// Callers hold s.mu.
func (s *StatsStore) entry(key string) *accessStat {
	if st, ok := s.access[key]; ok {
		return st
	}
	for len(s.access) >= s.max && len(s.order) > 0 {
		delete(s.access, s.order[0])
		s.order = s.order[1:]
	}
	st := &accessStat{}
	s.access[key] = st
	s.order = append(s.order, key)
	return st
}

// ObserveLatency records one source query's wall-clock latency.
func (s *StatsStore) ObserveLatency(source string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.latency[source]
	if st == nil {
		st = &meanStat{}
		s.latency[source] = st
	}
	st.count++
	st.sum += float64(d)
}

// AccessRows implements Stats: the learned transfer size of one access.
// With bind columns the lookup is by shape only (the probe values are
// unknown at plan time); without, the exact signature wins over the
// shape.
func (s *StatsStore) AccessRows(relation string, filters []wrapper.Filter, bindCols []string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(bindCols) == 0 {
		if st, ok := s.access[accessKey(relation, sigFilters(filters, nil, true), true)]; ok {
			return st.mean(), true
		}
	}
	if st, ok := s.access[accessKey(relation, sigFilters(filters, bindCols, false), false)]; ok {
		return st.mean(), true
	}
	return 0, false
}

// RelationRows implements Stats: the learned unfiltered cardinality.
func (s *StatsStore) RelationRows(relation string) (float64, bool) {
	return s.AccessRows(relation, nil, nil)
}

// SourceLatency implements Stats: the mean observed per-query latency.
func (s *StatsStore) SourceLatency(source string) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.latency[source]
	if st == nil || st.count == 0 {
		return 0, false
	}
	return time.Duration(st.sum / st.count), true
}

// Len reports the retained access-signature entries (tests, bounds).
func (s *StatsStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.access)
}

// Reset drops every learned fact.
func (s *StatsStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.access = map[string]*accessStat{}
	s.order = nil
	s.latency = map[string]*meanStat{}
}

// statObs is one buffered observation (session.go holds them until the
// session closes).
type statObs struct {
	relation string
	filters  []wrapper.Filter
	rows     int
	source   string
	latency  time.Duration
}

// apply lands the observation in the store.
func (o statObs) apply(s *StatsStore) {
	if o.source != "" {
		s.ObserveLatency(o.source, o.latency)
		return
	}
	s.ObserveAccess(o.relation, o.filters, o.rows)
}
