package planner

// The fault-injection (chaos) suite: deterministic failure scripts driven
// through wrappertest.Flaky pin the engine's retry, circuit-breaker and
// partial-results behavior — exact attempt counts, exact breaker
// transitions, and partial answers compared tuple-for-tuple against the
// no-fault run. Everything here must stay green under -race -count=2
// (make test-chaos).

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/web"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// chaosDB builds a single-table source: table holds n rows lo..lo+n-1.
func chaosDB(source, table string, lo, n int) *store.DB {
	db := store.NewDB(source)
	tab := db.MustCreateTable(table, relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber}))
	for i := 0; i < n; i++ {
		tab.MustInsert(relalg.NumV(float64(lo + i)))
	}
	return db
}

// chaosFixture wires three disjoint single-table sources, each behind a
// Flaky fault injector and a Counter (Counter outermost, so it sees every
// attempt the engine makes), plus the 3-branch union mediation over them.
type chaosFixture struct {
	cat     *Catalog
	flaky   map[string]*wrappertest.Flaky
	counter map[string]*wrappertest.Counter
	med     *core.Mediation
}

func newChaosFixture(t *testing.T) *chaosFixture {
	t.Helper()
	f := &chaosFixture{
		cat:     NewCatalog(),
		flaky:   map[string]*wrappertest.Flaky{},
		counter: map[string]*wrappertest.Counter{},
	}
	for i, s := range []struct {
		source, table string
		lo            int
	}{
		{"srcA", "ta", 0},
		{"srcB", "tb", 10},
		{"srcC", "tc", 20},
	} {
		fl := wrappertest.NewFlaky(wrapper.NewRelational(chaosDB(s.source, s.table, s.lo, 3)))
		ctr := wrappertest.NewCounter(fl)
		f.cat.MustAddSource(ctr)
		f.flaky[s.source] = fl
		f.counter[s.source] = ctr
		_ = i
	}
	f.med = &core.Mediation{Branches: []*sqlparse.Select{
		mustSelect(t, "SELECT ta.n FROM ta"),
		mustSelect(t, "SELECT tb.n FROM tb"),
		mustSelect(t, "SELECT tc.n FROM tc"),
	}}
	return f
}

func mustSelect(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	sel, ok := sqlparse.MustParse(sql).(*sqlparse.Select)
	if !ok {
		t.Fatalf("%s is not a select", sql)
	}
	return sel
}

// assertNoLeakedSlots checks every dispatcher pool is fully released —
// a failure or retry path that leaks (or double-frees, which panics) an
// admission slot would eventually wedge the executor.
func assertNoLeakedSlots(t *testing.T, ex *Executor) {
	t.Helper()
	ex.disp.mu.Lock()
	defer ex.disp.mu.Unlock()
	for src, d := range ex.disp.m {
		if n := len(d.slots); n != 0 {
			t.Errorf("source %s: %d dispatcher slot(s) still held after query end", src, n)
		}
	}
}

// runPartial executes the fixture's mediation under Limits.PartialResults
// and returns the answer plus the session's warnings.
func runPartial(t *testing.T, ex *Executor, med *core.Mediation) (*relalg.Relation, []Warning, error) {
	t.Helper()
	sess := ex.NewSession(context.Background(), Limits{PartialResults: true})
	defer sess.Close()
	rel, err := ex.ExecuteMediationSession(sess, med)
	return rel, sess.Warnings(), err
}

// TestChaosPartialVsFailFast is the headline acceptance scenario: a
// 3-branch mediation with one permanently dead source. Fail-fast (the
// default) reports the failed source; partial-results mode returns
// exactly the two healthy branches' no-fault answer plus a structured
// warning naming the dead source. Both lazy and parallel composition.
func TestChaosPartialVsFailFast(t *testing.T) {
	// The no-fault answer, and the answer of just the healthy branches.
	clean := newChaosFixture(t)
	want, err := NewExecutor(clean.cat).ExecuteMediation(clean.med)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 9 {
		t.Fatalf("no-fault answer = %s", want)
	}
	survivors := &core.Mediation{Branches: []*sqlparse.Select{
		clean.med.Branches[0], clean.med.Branches[2]}}
	wantPartial, err := NewExecutor(newChaosFixture(t).cat).ExecuteMediation(survivors)
	if err != nil {
		t.Fatal(err)
	}

	for _, parallel := range []bool{false, true} {
		mode := map[bool]string{false: "lazy", true: "parallel"}[parallel]

		// Fail-fast: the query fails, attributed to srcB.
		f := newChaosFixture(t)
		f.flaky["srcB"].FailAlways(wrapper.Permanent(errors.New("source decommissioned")))
		ex := NewExecutor(f.cat)
		ex.Parallel = parallel
		_, err := ex.ExecuteMediation(f.med)
		var se *SourceError
		if !errors.As(err, &se) || se.Source != "srcB" {
			t.Fatalf("%s fail-fast error = %v, want SourceError for srcB", mode, err)
		}
		assertNoLeakedSlots(t, ex)

		// Partial: the two healthy branches' exact answer, one warning.
		f = newChaosFixture(t)
		f.flaky["srcB"].FailAlways(wrapper.Permanent(errors.New("source decommissioned")))
		ex = NewExecutor(f.cat)
		ex.Parallel = parallel
		got, warns, err := runPartial(t, ex, f.med)
		if err != nil {
			t.Fatalf("%s partial: %v", mode, err)
		}
		if !relalg.SameTuples(got, wantPartial) {
			t.Errorf("%s partial answer:\n%s\nwant:\n%s", mode, got, wantPartial)
		}
		if len(warns) != 1 || warns[0].Branch != 2 || warns[0].Source != "srcB" {
			t.Errorf("%s partial warnings = %+v, want one naming branch 2 / srcB", mode, warns)
		}
		if st := ex.Stats(); st.BranchesFailed != 1 {
			t.Errorf("%s BranchesFailed = %d, want 1", mode, st.BranchesFailed)
		}
		// The healthy sources each served their one query.
		if q := f.counter["srcA"].Queries() + f.counter["srcC"].Queries(); q != 2 {
			t.Errorf("%s healthy sources saw %d queries, want 2", mode, q)
		}
		assertNoLeakedSlots(t, ex)
	}
}

// TestPartialAllBranchesDegraded: when every branch dies, parallel mode
// still fails (there is nothing to answer with), while lazy mode — whose
// stream is already in the receiver's hands — yields an empty answer plus
// a warning per branch. The asymmetry is documented on MediationStream.
func TestPartialAllBranchesDegraded(t *testing.T) {
	boom := wrapper.Transient(errors.New("everything is down"))

	f := newChaosFixture(t)
	for _, fl := range f.flaky {
		fl.FailAlways(boom)
	}
	ex := NewExecutor(f.cat)
	ex.Parallel = true
	_, warns, err := runPartial(t, ex, f.med)
	if !Degradable(err) {
		t.Errorf("parallel all-degraded error = %v, want a degradable SourceError", err)
	}
	if len(warns) != 3 {
		t.Errorf("parallel all-degraded warnings = %+v, want 3", warns)
	}
	assertNoLeakedSlots(t, ex)

	f = newChaosFixture(t)
	for _, fl := range f.flaky {
		fl.FailAlways(boom)
	}
	ex = NewExecutor(f.cat)
	got, warns, err := runPartial(t, ex, f.med)
	if err != nil {
		t.Fatalf("lazy all-degraded: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("lazy all-degraded answer = %s, want empty", got)
	}
	if len(warns) != 3 {
		t.Errorf("lazy all-degraded warnings = %+v, want 3", warns)
	}
	assertNoLeakedSlots(t, ex)
}

// TestRetryFailTwiceThenSucceed: a source that fails its first two
// queries and then recovers yields the full answer with exactly two
// retries in ExecStats — and the source saw exactly three attempts.
func TestRetryFailTwiceThenSucceed(t *testing.T) {
	f := newChaosFixture(t)
	f.flaky["srcA"].FailNext(2, wrapper.Transient(errors.New("blip")))
	ex := NewExecutor(f.cat)
	ex.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}

	got, err := ex.ExecuteCtx(context.Background(), f.med.Branches[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("answer = %s, want ta's 3 rows", got)
	}
	st := ex.Stats()
	if st.Retries != 2 {
		t.Errorf("ExecStats.Retries = %d, want exactly 2", st.Retries)
	}
	if st.BreakerTrips != 0 {
		t.Errorf("BreakerTrips = %d, want 0 (two failures, default threshold)", st.BreakerTrips)
	}
	if q := f.counter["srcA"].Queries(); q != 3 {
		t.Errorf("source saw %d attempts, want 3", q)
	}
	if st.SourceQueries != 1 {
		t.Errorf("SourceQueries = %d, want 1 (retries are not new logical queries)", st.SourceQueries)
	}
	assertNoLeakedSlots(t, ex)
}

// TestRetryStopsOnPermanentFault: classification gates the loop — a
// permanent fault is not retried even with attempts left.
func TestRetryStopsOnPermanentFault(t *testing.T) {
	f := newChaosFixture(t)
	f.flaky["srcA"].FailAlways(wrapper.Permanent(errors.New("no such table")))
	ex := NewExecutor(f.cat)
	ex.Retry = RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}

	_, err := ex.ExecuteCtx(context.Background(), f.med.Branches[0])
	if !errors.Is(err, wrapper.ErrPermanent) {
		t.Fatalf("err = %v, want the permanent fault", err)
	}
	if q := f.counter["srcA"].Queries(); q != 1 {
		t.Errorf("source saw %d attempts, want 1 (permanent faults are not retried)", q)
	}
	if st := ex.Stats(); st.Retries != 0 {
		t.Errorf("Retries = %d, want 0", st.Retries)
	}
	assertNoLeakedSlots(t, ex)
}

// TestRetryBudgetCapsRetries: the session-wide governor stops the retry
// loop even while the per-operation policy has attempts left.
func TestRetryBudgetCapsRetries(t *testing.T) {
	f := newChaosFixture(t)
	f.flaky["srcA"].FailNext(5, wrapper.Transient(errors.New("blip")))
	ex := NewExecutor(f.cat)
	ex.Retry = RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond}

	sess := ex.NewSession(context.Background(), Limits{RetryBudget: 2})
	defer sess.Close()
	_, err := ex.ExecuteSession(sess, f.med.Branches[0])
	if !Degradable(err) {
		t.Fatalf("err = %v, want a SourceError once the budget is spent", err)
	}
	if q := f.counter["srcA"].Queries(); q != 3 {
		t.Errorf("source saw %d attempts, want 3 (1 initial + 2 budgeted retries)", q)
	}
	if st := ex.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	assertNoLeakedSlots(t, ex)
}

// TestRetryRateLimitedHonorsHint: a 429-style fault's Retry-After hint is
// a floor under the backoff wait.
func TestRetryRateLimitedHonorsHint(t *testing.T) {
	const hint = 30 * time.Millisecond
	f := newChaosFixture(t)
	f.flaky["srcA"].FailNext(1, wrapper.RateLimited(errors.New("shed load"), hint))
	ex := NewExecutor(f.cat)
	ex.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}

	start := time.Now()
	got, err := ex.ExecuteCtx(context.Background(), f.med.Branches[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("answer = %s", got)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Errorf("retried after %v, want at least the source's %v hint", elapsed, hint)
	}
	assertNoLeakedSlots(t, ex)
}

// TestRetryMidStreamRecovery: a scan stream dying after delivering 3
// tuples is re-opened and the replayed prefix deduplicated — the answer
// is exactly the no-fault answer, and the replayed tuples are still
// charged to the transfer governor (honest accounting).
func TestRetryMidStreamRecovery(t *testing.T) {
	const rows = 8
	db := chaosDB("bigsrc", "big", 0, rows)
	fl := wrappertest.NewFlaky(wrapper.NewRelational(db))
	fl.FailAtTuple(3, wrapper.Transient(errors.New("connection reset mid-stream")))
	ctr := wrappertest.NewCounter(fl)
	cat := NewCatalog()
	cat.MustAddSource(ctr)
	ex := NewExecutor(cat)
	ex.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}

	got, err := ex.ExecuteCtx(context.Background(), mustSelect(t, "SELECT big.n FROM big"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rows {
		t.Fatalf("answer = %s, want all %d rows exactly once", got, rows)
	}
	st := ex.Stats()
	if st.Retries != 1 {
		t.Errorf("Retries = %d, want 1", st.Retries)
	}
	if q := ctr.Queries(); q != 2 {
		t.Errorf("source saw %d opens, want 2", q)
	}
	// 3 tuples before the fault + the full 8-row replay: all 11 pulls are
	// charged, even though 3 replays were suppressed from the answer.
	if st.TuplesTransferred != rows+3 {
		t.Errorf("TuplesTransferred = %d, want %d (replayed prefix still counts)",
			st.TuplesTransferred, rows+3)
	}
	assertNoLeakedSlots(t, ex)
}

// TestRetryMidStreamWithoutRetriesFailsButKeepsDelivered: with retrying
// off (the default), a mid-stream death is a SourceError; under partial
// results the tuples already delivered stay in the answer and the branch
// is marked degraded.
func TestRetryMidStreamWithoutRetriesFailsButKeepsDelivered(t *testing.T) {
	f := newChaosFixture(t)
	f.flaky["srcA"].FailAtTuple(2, wrapper.Transient(errors.New("reset")))
	ex := NewExecutor(f.cat)
	_, err := ex.ExecuteCtx(context.Background(), f.med.Branches[0])
	if !Degradable(err) {
		t.Fatalf("err = %v, want SourceError", err)
	}
	assertNoLeakedSlots(t, ex)

	f = newChaosFixture(t)
	f.flaky["srcA"].FailAtTuple(2, wrapper.Transient(errors.New("reset")))
	ex = NewExecutor(f.cat)
	got, warns, err := runPartial(t, ex, f.med)
	if err != nil {
		t.Fatal(err)
	}
	// Branch 1 delivered 2 of its 3 rows before dying; branches 2 and 3
	// are whole. 8 rows, one warning.
	if got.Len() != 8 {
		t.Errorf("partial answer = %s, want 8 rows (2 delivered + 6 healthy)", got)
	}
	if len(warns) != 1 || warns[0].Branch != 1 || warns[0].Source != "srcA" {
		t.Errorf("warnings = %+v", warns)
	}
	assertNoLeakedSlots(t, ex)
}

// TestBreakerTripsAndRecovers walks the full state machine: Threshold
// consecutive failures trip closed→open, the open breaker rejects without
// contacting the source, the cooldown admits a half-open probe, and the
// probe's success closes the breaker again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	const cooldown = 25 * time.Millisecond
	f := newChaosFixture(t)
	f.flaky["srcA"].FailNext(3, wrapper.Transient(errors.New("down")))
	ex := NewExecutor(f.cat)
	ex.Breaker = BreakerPolicy{Threshold: 3, Cooldown: cooldown}
	sel := f.med.Branches[0]

	for i := 0; i < 3; i++ {
		if _, err := ex.ExecuteCtx(context.Background(), sel); err == nil {
			t.Fatalf("query %d unexpectedly succeeded", i+1)
		}
	}
	if st := ex.Stats(); st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1 after threshold failures", st.BreakerTrips)
	}
	d := ex.disp.get("srcA", 0)
	if d.breakerState() != breakerOpen {
		t.Fatalf("breaker state = %d, want open", d.breakerState())
	}

	// While open: rejected immediately, the source is not contacted.
	before := f.counter["srcA"].Queries()
	_, err := ex.ExecuteCtx(context.Background(), sel)
	if !errors.Is(err, ErrSourceTripped) {
		t.Fatalf("open-breaker error = %v, want ErrSourceTripped", err)
	}
	if !Degradable(err) {
		t.Error("tripped-breaker rejection is not source-attributed")
	}
	if wrapper.Retryable(err) {
		t.Error("ErrSourceTripped must not be retryable")
	}
	if after := f.counter["srcA"].Queries(); after != before {
		t.Errorf("open breaker let %d attempt(s) through", after-before)
	}

	// After the cooldown the probe is admitted; the script is exhausted,
	// so it succeeds and the breaker closes.
	time.Sleep(cooldown + 10*time.Millisecond)
	got, err := ex.ExecuteCtx(context.Background(), sel)
	if err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if got.Len() != 3 {
		t.Errorf("probe answer = %s", got)
	}
	if d.breakerState() != breakerClosed {
		t.Errorf("breaker state after successful probe = %d, want closed", d.breakerState())
	}
	assertNoLeakedSlots(t, ex)
}

// TestBreakerHalfOpenProbeFailureReopens: a failing probe re-opens the
// breaker for another full cooldown (and counts as a trip).
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	const cooldown = 25 * time.Millisecond
	f := newChaosFixture(t)
	f.flaky["srcA"].FailNext(4, wrapper.Transient(errors.New("down")))
	ex := NewExecutor(f.cat)
	ex.Breaker = BreakerPolicy{Threshold: 3, Cooldown: cooldown}
	sel := f.med.Branches[0]

	for i := 0; i < 3; i++ {
		ex.ExecuteCtx(context.Background(), sel)
	}
	time.Sleep(cooldown + 10*time.Millisecond)
	if _, err := ex.ExecuteCtx(context.Background(), sel); err == nil {
		t.Fatal("failing probe unexpectedly succeeded")
	}
	d := ex.disp.get("srcA", 0)
	if d.breakerState() != breakerOpen {
		t.Fatalf("breaker state after failed probe = %d, want open again", d.breakerState())
	}
	if st := ex.Stats(); st.BreakerTrips != 2 {
		t.Errorf("BreakerTrips = %d, want 2 (threshold trip + failed probe)", st.BreakerTrips)
	}
	if _, err := ex.ExecuteCtx(context.Background(), sel); !errors.Is(err, ErrSourceTripped) {
		t.Errorf("post-probe error = %v, want ErrSourceTripped", err)
	}
	time.Sleep(cooldown + 10*time.Millisecond)
	if _, err := ex.ExecuteCtx(context.Background(), sel); err != nil {
		t.Errorf("recovered probe: %v", err)
	}
	if d.breakerState() != breakerClosed {
		t.Errorf("final breaker state = %d, want closed", d.breakerState())
	}
	assertNoLeakedSlots(t, ex)
}

// TestBreakerProbeAbandonedOnContextDeath: the breaker is executor-level
// state shared by every session, so a query whose context dies while its
// attempt holds the half-open probe slot must release it. The breaker
// returns to open with a fresh cooldown — not wedged in "probe in
// flight" forever — and a later query probes and recovers the source.
func TestBreakerProbeAbandonedOnContextDeath(t *testing.T) {
	const cooldown = 25 * time.Millisecond
	f := newChaosFixture(t)
	f.flaky["srcA"].FailNext(1, wrapper.Transient(errors.New("down")))
	ex := NewExecutor(f.cat)
	ex.Breaker = BreakerPolicy{Threshold: 1, Cooldown: cooldown}
	w := f.counter["srcA"]
	d := ex.dispatcherFor(w)

	if _, err := ex.ExecuteCtx(context.Background(), f.med.Branches[0]); err == nil {
		t.Fatal("tripping query unexpectedly succeeded")
	}
	if d.breakerState() != breakerOpen {
		t.Fatalf("breaker state = %d, want open after trip", d.breakerState())
	}

	// After the cooldown the next attempt is admitted as the half-open
	// probe; its query context dies mid-flight, so its verdict never
	// arrives.
	time.Sleep(cooldown + 10*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	sess := ex.NewSession(ctx, Limits{})
	err := ex.withRetry(ctx, sess, w, func() error {
		cancel()
		return wrapper.Transient(errors.New("cut off mid-flight"))
	})
	sess.Close()
	if err == nil {
		t.Fatal("dead-context probe unexpectedly succeeded")
	}
	if Degradable(err) {
		t.Errorf("context-death error = %v, want raw (not source-attributed)", err)
	}
	if d.breakerState() != breakerOpen {
		t.Fatalf("breaker state after abandoned probe = %d, want open with a fresh cooldown", d.breakerState())
	}

	// The probe slot was released: after another cooldown a new probe is
	// admitted (the fault script is exhausted) and closes the breaker.
	time.Sleep(cooldown + 10*time.Millisecond)
	got, err := ex.ExecuteCtx(context.Background(), f.med.Branches[0])
	if err != nil {
		t.Fatalf("probe after abandonment: %v", err)
	}
	if got.Len() != 3 {
		t.Errorf("recovered answer = %s, want ta's 3 rows", got)
	}
	if d.breakerState() != breakerClosed {
		t.Errorf("final breaker state = %d, want closed", d.breakerState())
	}
	assertNoLeakedSlots(t, ex)
}

// TestBreakerStaleOutcomesDoNotMoveBreaker: an operation admitted while
// the breaker was still closed may finish after a trip. Its late success
// must not short the cooldown by closing the open breaker, and its late
// failure while another attempt holds the half-open probe is not the
// probe's verdict.
func TestBreakerStaleOutcomesDoNotMoveBreaker(t *testing.T) {
	pol := BreakerPolicy{Threshold: 1, Cooldown: time.Minute}
	d := newDispatcher(1)

	// A slow operation is admitted while closed...
	slowProbe, err := d.allow(pol)
	if err != nil || slowProbe {
		t.Fatalf("closed-state admission = (probe=%v, err=%v), want plain admission", slowProbe, err)
	}
	// ...then a sibling's failure trips the breaker...
	if !d.fail(pol, false) {
		t.Fatal("threshold failure did not trip")
	}
	if d.breakerState() != breakerOpen {
		t.Fatalf("state = %d, want open", d.breakerState())
	}
	// ...and the slow operation's late success must not bypass the
	// cooldown.
	d.succeed(slowProbe)
	if d.breakerState() != breakerOpen {
		t.Errorf("stale success closed an open breaker (state = %d)", d.breakerState())
	}

	// Half-open with the probe in flight: a stale failure is not the
	// probe's verdict and must not re-open (or count as a trip).
	d.bmu.Lock()
	d.bstate = breakerHalfOpen
	d.bprobing = true
	d.bmu.Unlock()
	if d.fail(pol, false) {
		t.Error("stale failure during half-open counted as a trip")
	}
	if d.breakerState() != breakerHalfOpen {
		t.Errorf("stale failure moved half-open breaker (state = %d)", d.breakerState())
	}
	// The real probe's verdict still resolves the state.
	d.succeed(true)
	if d.breakerState() != breakerClosed {
		t.Errorf("probe success did not close (state = %d)", d.breakerState())
	}
}

// TestBreakerTripShortCircuitsRetry: when an attempt's own failure trips
// the breaker, retrying is a guaranteed ErrSourceTripped rejection — the
// loop must stop immediately, charging no retry, burning no backoff, and
// reporting the actual source fault rather than the breaker rejection.
func TestBreakerTripShortCircuitsRetry(t *testing.T) {
	f := newChaosFixture(t)
	f.flaky["srcA"].FailAlways(wrapper.Transient(errors.New("down")))
	ex := NewExecutor(f.cat)
	ex.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}
	ex.Breaker = BreakerPolicy{Threshold: 1, Cooldown: time.Minute}

	_, err := ex.ExecuteCtx(context.Background(), f.med.Branches[0])
	if err == nil {
		t.Fatal("query against dead source unexpectedly succeeded")
	}
	if errors.Is(err, ErrSourceTripped) {
		t.Errorf("err = %v, want the underlying source fault, not the breaker rejection", err)
	}
	if !strings.Contains(err.Error(), "down") {
		t.Errorf("err = %v does not carry the source fault", err)
	}
	if q := f.counter["srcA"].Queries(); q != 1 {
		t.Errorf("source saw %d attempts, want 1 (no retry into the breaker this failure just opened)", q)
	}
	st := ex.Stats()
	if st.Retries != 0 {
		t.Errorf("Retries = %d, want 0", st.Retries)
	}
	if st.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	assertNoLeakedSlots(t, ex)
}

// TestBreakerDegradesUnderPartial: a branch rejected by an open breaker
// degrades like any other source fault — partial answers keep flowing
// while the source cools down, without contacting it.
func TestBreakerDegradesUnderPartial(t *testing.T) {
	f := newChaosFixture(t)
	f.flaky["srcB"].FailAlways(wrapper.Transient(errors.New("down")))
	ex := NewExecutor(f.cat)
	ex.Breaker = BreakerPolicy{Threshold: 1, Cooldown: time.Minute}

	// First partial query trips the breaker on srcB's real failure.
	if _, warns, err := runPartial(t, ex, f.med); err != nil || len(warns) != 1 {
		t.Fatalf("first partial run: err=%v warns=%+v", err, warns)
	}
	if st := ex.Stats(); st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}
	// Second query: the breaker rejects srcB up front; still a partial
	// answer, the warning now carries the breaker rejection.
	before := f.counter["srcB"].Queries()
	got, warns, err := runPartial(t, ex, f.med)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Errorf("answer = %s, want srcA+srcC's 6 rows", got)
	}
	if len(warns) != 1 || warns[0].Source != "srcB" ||
		!strings.Contains(warns[0].Message, "circuit breaker open") {
		t.Errorf("warnings = %+v, want breaker rejection for srcB", warns)
	}
	if after := f.counter["srcB"].Queries(); after != before {
		t.Errorf("open breaker contacted the source %d time(s)", after-before)
	}
	assertNoLeakedSlots(t, ex)
}

// TestChaosFailFastCancelsSiblings: in parallel fail-fast mode a fatal
// branch failure cancels its siblings promptly — a branch frozen
// mid-stream on a gated source is released by the cancellation instead of
// wedging the query.
func TestChaosFailFastCancelsSiblings(t *testing.T) {
	gate := wrappertest.NewGate(wrapper.NewRelational(chaosDB("srcA", "ta", 0, 3)))
	flaky := wrappertest.NewFlaky(wrapper.NewRelational(chaosDB("srcB", "tb", 10, 3)))
	flaky.FailAlways(wrapper.Permanent(errors.New("dead source")))
	cat := NewCatalog()
	cat.MustAddSource(gate)
	cat.MustAddSource(flaky)
	med := &core.Mediation{Branches: []*sqlparse.Select{
		mustSelect(t, "SELECT ta.n FROM ta"),
		mustSelect(t, "SELECT tb.n FROM tb"),
	}}
	ex := NewExecutor(cat)
	ex.Parallel = true

	done := make(chan error, 1)
	go func() {
		_, err := ex.ExecuteMediation(med)
		done <- err
	}()
	select {
	case err := <-done:
		var se *SourceError
		if !errors.As(err, &se) || se.Source != "srcB" {
			t.Fatalf("err = %v, want SourceError for srcB (not the cancelled sibling)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gated sibling was not cancelled: query wedged")
	}
	assertNoLeakedSlots(t, ex)
}

// TestChaosDispatcherDoubleReleasePanics pins the slot-accounting guard:
// releasing a slot that was never acquired must panic loudly instead of
// silently widening the admission pool.
func TestChaosDispatcherDoubleReleasePanics(t *testing.T) {
	d := newDispatcher(1)
	if err := d.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	d.release()
}

// TestPartialPaperQ1CurrencySourceDown runs the paper's own Q1 mediation
// with the currency Web source dead: fail-fast attributes the failure to
// currencyweb, partial mode answers with exactly the branches that do not
// need r3 and warns about the ones that did.
func TestPartialPaperQ1CurrencySourceDown(t *testing.T) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}

	paperChaosCatalog := func() (*Catalog, *wrappertest.Flaky) {
		dbs := fixture.Databases()
		cat := NewCatalog()
		cat.MustAddSource(wrapper.NewRelational(dbs["source1"]))
		cat.MustAddSource(wrapper.NewRelational(dbs["source2"]))
		site := web.NewCurrencySite(web.PaperRates())
		fl := wrappertest.NewFlaky(wrapper.NewWeb("currencyweb",
			site, wrapper.MustParseSpec(wrapper.CurrencySpecCrawl)))
		cat.MustAddSource(fl)
		return cat, fl
	}

	// Expected partial answer: the mediation restricted to branches that
	// never mention r3, run fault-free.
	var healthy []*sqlparse.Select
	for _, b := range med.Branches {
		if !strings.Contains(b.String(), "r3") {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 || len(healthy) == len(med.Branches) {
		t.Fatalf("fixture drift: %d/%d branches avoid r3", len(healthy), len(med.Branches))
	}
	cat, _ := paperChaosCatalog()
	want, err := NewExecutor(cat).ExecuteMediation(
		&core.Mediation{Branches: healthy, UnionAll: med.UnionAll})
	if err != nil {
		t.Fatal(err)
	}

	// Fail-fast: the query dies, blamed on currencyweb.
	cat, fl := paperChaosCatalog()
	fl.FailAlways(wrapper.Transient(errors.New("currency site down")))
	ex := NewExecutor(cat)
	_, err = ex.ExecuteMediation(med)
	var se *SourceError
	if !errors.As(err, &se) || se.Source != "currencyweb" {
		t.Fatalf("fail-fast err = %v, want SourceError for currencyweb", err)
	}
	assertNoLeakedSlots(t, ex)

	// Partial: the conversion-free branches answer, with warnings naming
	// the dead source.
	cat, fl = paperChaosCatalog()
	fl.FailAlways(wrapper.Transient(errors.New("currency site down")))
	ex = NewExecutor(cat)
	got, warns, err := runPartial(t, ex, med)
	if err != nil {
		t.Fatal(err)
	}
	if !relalg.SameTuples(got, want) {
		t.Errorf("partial answer:\n%s\nwant:\n%s", got, want)
	}
	if len(warns) != len(med.Branches)-len(healthy) {
		t.Errorf("warnings = %+v, want %d", warns, len(med.Branches)-len(healthy))
	}
	for _, w := range warns {
		if w.Source != "currencyweb" {
			t.Errorf("warning %+v does not name currencyweb", w)
		}
	}
	assertNoLeakedSlots(t, ex)
}
