package planner

// Tests for intra-query parallelism: the parallelize pass's annotations
// (and its parallelism=1 byte-identical guarantee), the renegotiated
// admission invariant under partitioned scan fan-outs (a K-part fan-out
// holds exactly K slots, never more than the pools), randomized
// equivalence of parallel and serial execution (content AND order, NULL
// keys and skewed partitions included), mid-stream fault recovery while
// a parallel scan is draining, and the session governors' atomicity when
// eight pipelines charge one session concurrently (run under -race).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// parJoinQ joins a large partitionable fact table against a smaller
// build side on k — the shape the exchange join and scan fan-out target.
const parJoinQ = "SELECT big.k, big.v, dim.w FROM dim, big WHERE big.k = dim.k"

// parCatalogOpts shapes the synthetic two-source workload.
type parCatalogOpts struct {
	bigRows  int
	dimRows  int
	seed     int64
	nullKeys bool // sprinkle NULL join keys on both sides
	skew     bool // concentrate most keys in one hash partition
}

// buildParCatalog wires big(k,v) and dim(k,w) on two relational sources,
// both behind Counters so tests can observe queries and in-flight peaks.
func buildParCatalog(t *testing.T, o parCatalogOpts) (*Catalog, *wrappertest.Counter, *wrappertest.Counter) {
	t.Helper()
	rng := rand.New(rand.NewSource(o.seed))
	keyFor := func(skewed bool) relalg.Value {
		if o.nullKeys && rng.Intn(20) == 0 {
			return relalg.Null
		}
		n := rng.Intn(200)
		if skewed && rng.Intn(4) != 0 {
			n = 7 // three quarters of the rows share one key (one hash partition)
		}
		return relalg.StrV(fmt.Sprintf("k%03d", n))
	}
	bdb := store.NewDB("bigsrc")
	btab := bdb.MustCreateTable("big", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber}))
	for i := 0; i < o.bigRows; i++ {
		// Skew hits the big side only: one overloaded worker partition,
		// without exploding the join's output size.
		btab.MustInsert(keyFor(o.skew), relalg.NumV(float64(i)))
	}
	ddb := store.NewDB("dimsrc")
	dtab := ddb.MustCreateTable("dim", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "w", Type: relalg.KindNumber}))
	for i := 0; i < o.dimRows; i++ {
		dtab.MustInsert(keyFor(false), relalg.NumV(float64(1000+i)))
	}
	bigCtr := wrappertest.NewCounter(wrapper.NewRelational(bdb))
	dimCtr := wrappertest.NewCounter(wrapper.NewRelational(ddb))
	cat := NewCatalog()
	cat.MustAddSource(bigCtr)
	cat.MustAddSource(dimCtr)
	return cat, bigCtr, dimCtr
}

// TestParallelizePassAnnotations: with parallelism available, the pass
// fans the large independent scan out and puts the keyed join under the
// exchange; the serial cost estimates stay untouched and the pass is
// idempotent.
func TestParallelizePassAnnotations(t *testing.T) {
	cat, _, _ := buildParCatalog(t, parCatalogOpts{bigRows: 4000, dimRows: 900, seed: 1})
	ex := NewExecutor(cat)
	ex.DefaultParallelism = 4
	plan, err := ex.Plan(sqlparse.MustParse(parJoinQ).(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	serialExplain := plan.Explain()
	ex.ParallelizePlan(plan, nil)
	if plan.Parallelism != 4 {
		t.Errorf("plan.Parallelism = %d, want 4", plan.Parallelism)
	}
	var fanned, exchanged bool
	for _, step := range plan.Steps {
		if step.Relation == "big" && step.ScanParts > 1 {
			fanned = true
			// The fan-out must fit the source's admission pool.
			if step.ScanParts > DefaultMaxConcurrentPerSource {
				t.Errorf("ScanParts = %d exceeds the default pool %d", step.ScanParts, DefaultMaxConcurrentPerSource)
			}
		}
		if len(step.JoinKeys) > 0 && step.Workers > 1 {
			exchanged = true
		}
	}
	if !fanned {
		t.Errorf("no scan fan-out annotated:\n%s", plan.Explain())
	}
	if !exchanged {
		t.Errorf("no exchange join annotated:\n%s", plan.Explain())
	}
	first := plan.Explain()
	ex.ParallelizePlan(plan, nil) // idempotent: same annotations, same estimates
	if second := plan.Explain(); second != first {
		t.Errorf("parallelize pass not idempotent:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(first, "exchange[") || !strings.Contains(first, "part[") {
		t.Errorf("EXPLAIN misses exchange/part annotations:\n%s", first)
	}
	// Re-annotating at parallelism 1 restores the serial rendering exactly.
	ex.DefaultParallelism = 1
	ex.ParallelizePlan(plan, nil)
	if got := plan.Explain(); got != serialExplain {
		t.Errorf("parallelism=1 EXPLAIN differs from serial plan:\n%s\nvs\n%s", got, serialExplain)
	}
}

// TestParallelismOnePlansByteIdentical pins the compatibility guarantee:
// a parallel-capable executor at effective parallelism 1 (via the session
// knob) renders plans byte-identical to an executor that never heard of
// parallelism.
func TestParallelismOnePlansByteIdentical(t *testing.T) {
	cat, _, _ := buildParCatalog(t, parCatalogOpts{bigRows: 4000, dimRows: 900, seed: 2})
	sel := sqlparse.MustParse(parJoinQ).(*sqlparse.Select)

	serial := NewExecutor(cat)
	base, err := serial.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}

	par := NewExecutor(cat)
	par.DefaultParallelism = 8
	plan, err := par.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	sess := par.NewSession(context.Background(), Limits{MaxParallelism: 1})
	defer sess.Close()
	par.ParallelizePlan(plan, sess)
	if plan.Explain() != base.Explain() {
		t.Errorf("session MaxParallelism=1 plan differs from the serial executor's:\n%s\nvs\n%s",
			plan.Explain(), base.Explain())
	}
}

// runPar executes sql on cat under the given parallelism and returns the
// rendered answer (String fixes both content and order).
func runPar(t *testing.T, cat *Catalog, ex *Executor, sql string, parallelism int) string {
	t.Helper()
	sess := ex.NewSession(context.Background(), Limits{MaxParallelism: parallelism})
	defer sess.Close()
	res, err := ex.ExecuteSession(sess, sqlparse.MustParse(sql))
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	return res.String()
}

// TestParallelEquivalenceRandomized is the acceptance equivalence sweep:
// across seeds — NULL join keys and heavily skewed partitions included —
// parallel execution returns byte-for-byte the serial answer: same
// multiset AND same order, ORDER BY queries included.
func TestParallelEquivalenceRandomized(t *testing.T) {
	queries := []string{
		parJoinQ,
		"SELECT big.k, big.v, dim.w FROM dim, big WHERE big.k = dim.k ORDER BY big.v DESC",
		"SELECT big.k, COUNT(*), SUM(big.v) FROM big, dim WHERE big.k = dim.k GROUP BY big.k ORDER BY big.k",
		"SELECT big.k FROM big WHERE big.v < 500 ORDER BY big.k",
	}
	for seed := int64(1); seed <= 6; seed++ {
		o := parCatalogOpts{bigRows: 3000, dimRows: 800, seed: seed,
			nullKeys: seed%2 == 0, skew: seed%3 == 0}
		cat, _, _ := buildParCatalog(t, o)
		ex := NewExecutor(cat)
		for qi, q := range queries {
			serial := runPar(t, cat, ex, q, 1)
			for _, par := range []int{2, 4, 8} {
				if got := runPar(t, cat, ex, q, par); got != serial {
					t.Errorf("seed %d query %d parallelism %d: answer differs from serial\n--- serial ---\n%.400s\n--- parallel ---\n%.400s",
						seed, qi, par, serial, got)
				}
			}
		}
	}
}

// TestParallelScanAdmissionInvariant pins the renegotiated invariant at
// the source: a K-part fan-out drives the per-relation in-flight peak to
// exactly K — all K slots belong to the one active scan step — and the
// session's MaxConcurrentPerSource clamps K before any slot is taken.
func TestParallelScanAdmissionInvariant(t *testing.T) {
	cat, bigCtr, _ := buildParCatalog(t, parCatalogOpts{bigRows: 4000, dimRows: 900, seed: 3})
	ex := NewExecutor(cat)
	ex.DefaultParallelism = 8

	serial := runPar(t, cat, ex, parJoinQ, 1)
	bigCtr.Reset()
	if got := runPar(t, cat, ex, parJoinQ, 0); got != serial {
		t.Fatalf("parallel answer differs from serial")
	}
	// Parallelism 8 clamps to the default pool of 4: the scan issues one
	// query per part and the in-flight peak never exceeds the pool. (The
	// deterministic peak == parts proof is TestParallelScanFanOutConcurrency,
	// which freezes the streams; unfrozen in-memory parts can exhaust
	// before every window overlaps.)
	if got := bigCtr.MaxInflightFor("big"); got > DefaultMaxConcurrentPerSource {
		t.Errorf("big scan max in-flight = %d exceeds the pool %d", got, DefaultMaxConcurrentPerSource)
	}
	if got := bigCtr.Queries(); got != DefaultMaxConcurrentPerSource {
		t.Errorf("big scan issued %d queries, want one per part = %d", got, DefaultMaxConcurrentPerSource)
	}

	// A session cap below the pool clamps the reservation up front.
	bigCtr.Reset()
	sess := ex.NewSession(context.Background(), Limits{MaxConcurrentPerSource: 2})
	res, err := ex.ExecuteSession(sess, sqlparse.MustParse(parJoinQ))
	sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != serial {
		t.Errorf("capped parallel answer differs from serial")
	}
	if got := bigCtr.MaxInflightFor("big"); got > 2 {
		t.Errorf("big scan max in-flight = %d under MaxConcurrentPerSource=2", got)
	}
}

// TestParallelScanFanOutConcurrency freezes all partitioned streams of a
// fan-out mid-transfer behind a Gate and pins the renegotiated admission
// invariant deterministically: with every stream provably blocked at its
// first tuple, the per-relation in-flight count is exactly the fan-out
// width — all K reserved slots in use at once — and after a concurrent
// release the reassembled answer still equals the serial scan.
func TestParallelScanFanOutConcurrency(t *testing.T) {
	const rows = 4000
	gdb := store.NewDB("bigsrc")
	gtab := gdb.MustCreateTable("big", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber}))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < rows; i++ {
		gtab.MustInsert(relalg.StrV(fmt.Sprintf("k%03d", rng.Intn(200))), relalg.NumV(float64(i)))
	}
	serialCat := NewCatalog()
	serialCat.MustAddSource(wrapper.NewRelational(gdb))
	serial := runPar(t, serialCat, NewExecutor(serialCat), "SELECT big.k, big.v FROM big", 1)

	gate := wrappertest.NewGate(wrapper.NewRelational(gdb))
	ctr := wrappertest.NewCounter(gate)
	gcat := NewCatalog()
	gcat.MustAddSource(ctr)
	gex := NewExecutor(gcat)
	gex.DefaultParallelism = 4

	type answer struct {
		s   string
		err error
	}
	done := make(chan answer, 1)
	go func() {
		sess := gex.NewSession(context.Background(), Limits{})
		defer sess.Close()
		res, err := gex.ExecuteSession(sess, sqlparse.MustParse("SELECT big.k, big.v FROM big"))
		if err != nil {
			done <- answer{err: err}
			return
		}
		done <- answer{s: res.String()}
	}()
	// Drain one Emitted signal per part WITHOUT proceeding: a stream
	// signals Emitted once and then blocks awaiting Proceed, so four
	// signals prove four distinct streams are concurrently frozen
	// mid-transfer.
	for i := 0; i < 4; i++ {
		<-gate.Emitted
	}
	if got := ctr.MaxInflightFor("big"); got != 4 {
		t.Errorf("frozen fan-out has %d streams in flight, want all 4 reserved slots", got)
	}
	// Release every stream concurrently.
	gate.Open()
	got := <-done
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.s != serial {
		t.Errorf("gated parallel scan answer differs from serial")
	}
	if q := ctr.Queries(); q != 4 {
		t.Errorf("fan-out issued %d queries, want one per part = 4", q)
	}
}

// TestParallelScanMidStreamFaultRecovers: a partitioned stream dies after
// delivering tuples while its sibling parts are still draining; the
// retry machinery re-opens that part's query on the slot the fan-out
// already holds, replays are suppressed, and the answer is exactly the
// fault-free one.
func TestParallelScanMidStreamFaultRecovers(t *testing.T) {
	o := parCatalogOpts{bigRows: 4000, dimRows: 900, seed: 5}
	cat, _, _ := buildParCatalog(t, o)
	ex := NewExecutor(cat)
	clean := runPar(t, cat, ex, "SELECT big.k, big.v FROM big", 1)

	// Same data, with the source faulted mid-stream under a Flaky.
	fdb := store.NewDB("bigsrc")
	ftab := fdb.MustCreateTable("big", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber}))
	reseed := rand.New(rand.NewSource(o.seed))
	for i := 0; i < o.bigRows; i++ {
		ftab.MustInsert(relalg.StrV(fmt.Sprintf("k%03d", reseed.Intn(200))), relalg.NumV(float64(i)))
	}
	flaky := wrappertest.NewFlaky(wrapper.NewRelational(fdb))
	// The second part query to arrive delivers 5 tuples and dies; every
	// other query (the other parts, and the recovery re-open) is clean.
	flaky.FailNext(0, nil)
	flaky.FailAtTuple(5, wrapper.Transient(errors.New("mid-stream fault")))
	ctr := wrappertest.NewCounter(flaky)
	fcat := NewCatalog()
	fcat.MustAddSource(ctr)
	fex := NewExecutor(fcat)
	fex.DefaultParallelism = 4
	fex.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: 1}

	sess := fex.NewSession(context.Background(), Limits{})
	res, err := fex.ExecuteSession(sess, sqlparse.MustParse("SELECT big.k, big.v FROM big"))
	sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != clean {
		t.Errorf("recovered parallel scan answer differs from fault-free run")
	}
	// 4 part queries + 1 mid-stream recovery re-open.
	if got := ctr.Queries(); got != 5 {
		t.Errorf("faulted fan-out issued %d queries, want 4 parts + 1 recovery = 5", got)
	}
	// The recovery reuses the held slot: the in-flight peak never exceeds
	// the fan-out width.
	if got := ctr.MaxInflightFor("big"); got > 4 {
		t.Errorf("recovery exceeded the reservation: max in-flight %d", got)
	}
}

// TestSessionGovernorAtomicUnderParallel is the governor atomicity
// stress: eight pipelines execute concurrently on ONE session — each a
// parallel query with its own exchange workers — and the session's
// transfer accounting must come out exact (under -race this also proves
// the charge paths are data-race free).
func TestSessionGovernorAtomicUnderParallel(t *testing.T) {
	cat, _, _ := buildParCatalog(t, parCatalogOpts{bigRows: 3000, dimRows: 800, seed: 6})
	ex := NewExecutor(cat)
	ex.DefaultParallelism = 4

	// Baseline: what one run charges.
	base := ex.NewSession(context.Background(), Limits{})
	if _, err := ex.ExecuteSession(base, sqlparse.MustParse(parJoinQ)); err != nil {
		t.Fatal(err)
	}
	perRun := base.TuplesTransferred()
	base.Close()
	if perRun == 0 {
		t.Fatal("baseline run transferred no tuples")
	}

	const pipelines = 8
	sess := ex.NewSession(context.Background(), Limits{})
	defer sess.Close()
	var wg sync.WaitGroup
	errs := make([]error, pipelines)
	for i := 0; i < pipelines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ex.ExecuteSession(sess, sqlparse.MustParse(parJoinQ))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pipeline %d: %v", i, err)
		}
	}
	if got, want := sess.TuplesTransferred(), pipelines*perRun; got != want {
		t.Errorf("session charged %d tuples across %d concurrent pipelines, want exactly %d",
			got, pipelines, want)
	}

	// And the budget aborts, rather than overshooting silently, when the
	// concurrent pipelines exceed it.
	capped := ex.NewSession(context.Background(), Limits{MaxTuples: perRun * 2})
	defer capped.Close()
	var cwg sync.WaitGroup
	cerrs := make([]error, pipelines)
	for i := 0; i < pipelines; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			_, cerrs[i] = ex.ExecuteSession(capped, sqlparse.MustParse(parJoinQ))
		}(i)
	}
	cwg.Wait()
	var exceeded bool
	for _, err := range cerrs {
		if errors.Is(err, ErrTuplesExceeded) {
			exceeded = true
		}
	}
	if !exceeded {
		t.Errorf("no pipeline reported ErrTuplesExceeded under an exceeded shared budget")
	}
}

// TestParallelGroupByAndSortMatchSerial covers the merge-exchange paths
// in isolation: ORDER BY above the partitioned sort, and a partitioned
// GROUP BY, both at several worker counts on one dataset.
func TestParallelGroupByAndSortMatchSerial(t *testing.T) {
	cat, _, _ := buildParCatalog(t, parCatalogOpts{bigRows: 3000, dimRows: 800, seed: 7, nullKeys: true})
	ex := NewExecutor(cat)
	for _, q := range []string{
		"SELECT big.k, big.v FROM big ORDER BY big.k, big.v DESC",
		"SELECT big.k, COUNT(*), MIN(big.v), MAX(big.v) FROM big GROUP BY big.k",
		"SELECT big.k, SUM(big.v) FROM big GROUP BY big.k ORDER BY big.k",
	} {
		serial := runPar(t, cat, ex, q, 1)
		for _, par := range []int{2, 5, 8} {
			if got := runPar(t, cat, ex, q, par); got != serial {
				t.Errorf("parallelism %d: %q differs from serial", par, q)
			}
		}
	}
}
