package planner

// The parallelize pass: a post-optimization annotation step that decides
// where a plan may use the intra-query exchange operators of
// internal/relalg. It runs AFTER the join-order enumerators and never
// reorders, re-prices against a different order, or changes what a step
// fetches — parallelism is an execution property layered onto the chosen
// order, so the parallelism knob can move without the answer (or the
// access order) moving with it. With an effective parallelism of 1 the
// pass returns without touching the plan at all, which keeps serial plans
// byte-identical to the pre-exchange planner (golden baselines included).
//
// Three placements are annotated:
//
//   - step.Workers: a keyed join step becomes a hash-repartition exchange
//     (relalg.ParallelHashJoinIter) when its build side is estimated
//     large enough to amortize the worker pipelines.
//   - step.ScanParts: an independent scan step fans out into partitioned
//     range streams when the source advertises Capabilities.Partitions
//     and the cost model says the transfer term dominates the extra
//     per-query admissions the fan-out costs.
//   - plan.Parallelism: the bound the compiled pipeline hands to the
//     partitioned sort (the order-preserving merge exchange of ORDER BY)
//     and group-by cores.
//
// Admission invariant: a partitioned scan holds ScanParts dispatcher
// slots at once (see access.go), so the pass clamps ScanParts to the
// per-source pools — the source's own concurrency cap and the session's
// MaxConcurrentPerSource — leaving at least the whole pool reachable by
// a single reservation and never a reservation larger than a pool, which
// is what keeps the up-front K-slot reservation deadlock-free.

// Profitability floors of the parallelize pass. Fanning a scan out costs
// K-1 extra source queries and a reservation of K admission slots;
// repartitioning a join costs worker pipelines and channel hops. Both
// only pay off when enough rows flow.
const (
	// parallelScanMinRows is the minimum estimated transfer of a scan
	// step before a partitioned fan-out is considered.
	parallelScanMinRows = 2048
	// parallelScanGain requires the scan's transfer cost to exceed the
	// fan-out's added per-query cost by this factor before fanning out.
	parallelScanGain = 2.0
	// parallelJoinMinBuildRows is the minimum estimated build-side
	// cardinality before a join step runs under the exchange.
	parallelJoinMinBuildRows = 512
)

// parallelism resolves the effective worker bound for a run: the
// session's MaxParallelism when set, else the executor's
// DefaultParallelism, else 1 (serial).
func (e *Executor) parallelism(sess *Session) int {
	if sess != nil && sess.limits.MaxParallelism > 0 {
		return sess.limits.MaxParallelism
	}
	if e.DefaultParallelism > 1 {
		return e.DefaultParallelism
	}
	return 1
}

// ParallelizePlan annotates plan for execution under sess's effective
// parallelism. Idempotent: it recomputes every annotation from the
// serial estimates, so re-planning or re-annotating cannot compound.
func (e *Executor) ParallelizePlan(plan *BranchPlan, sess *Session) {
	par := e.parallelism(sess)
	plan.Parallelism = 0
	for i := range plan.Steps {
		step := &plan.Steps[i]
		step.Workers, step.ScanParts = 0, 0
	}
	if par <= 1 {
		return
	}
	plan.Parallelism = par
	for i := range plan.Steps {
		step := &plan.Steps[i]
		// Join exchange: only keyed joins of a later step (the first step
		// has nothing to probe), only when the serial planner would pick a
		// hash join, and only when the fetched build side is big enough to
		// amortize the worker pipelines.
		if i > 0 && len(step.JoinKeys) > 0 && !e.ForceNestedLoop && !e.ForceMergeJoin &&
			step.EstRows >= parallelJoinMinBuildRows {
			step.Workers = par
		}
		// Scan fan-out: independent scans only — a bind join's probes are
		// already parallelized by fetchAll, and partitioning is a property
		// of whole-relation range scans.
		if len(step.BindJoins) == 0 {
			step.ScanParts = e.scanFanOut(sess, step, par)
		}
	}
}

// scanFanOut decides the partitioned fan-out of one independent scan
// step: 0 (serial) unless the source can partition, the pools can admit
// the reservation, and the cost model says the transfer term dominates
// the added per-query cost — the fan-out trades parts-1 extra per-query
// admissions for concurrent transfer, so it only pays when
// PerTuple·EstRows clears that surcharge with margin. The step keeps the
// enumerator's serial estimates (the pass must stay idempotent and the
// plan total consistent); EXPLAIN ANALYZE shows the actual parts queries.
func (e *Executor) scanFanOut(sess *Session, step *PlanStep, par int) int {
	w, err := e.Catalog.WrapperFor(step.Relation)
	if err != nil {
		return 0
	}
	caps, err := w.Capabilities(step.Relation)
	if err != nil {
		return 0
	}
	parts := par
	if caps.Partitions < parts {
		parts = caps.Partitions
	}
	// Clamp to the admission pools the reservation must fit inside: the
	// source's own dispatcher and the session's per-source allowance.
	if c := w.Cost().MaxConcurrent; c <= 0 {
		if parts > DefaultMaxConcurrentPerSource {
			parts = DefaultMaxConcurrentPerSource
		}
	} else if parts > c {
		parts = c
	}
	if sess != nil && sess.limits.MaxConcurrentPerSource > 0 && parts > sess.limits.MaxConcurrentPerSource {
		parts = sess.limits.MaxConcurrentPerSource
	}
	if parts <= 1 {
		return 0
	}
	if step.EstRows < parallelScanMinRows {
		return 0
	}
	cost := step.SourceCost
	extraQueries := float64(parts - 1)
	if cost.PerTuple*step.EstRows <= parallelScanGain*extraQueries*cost.PerQuery {
		return 0
	}
	return parts
}
