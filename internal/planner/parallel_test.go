package planner

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

func newRelationalFor(t *testing.T, dbs map[string]*store.DB, name string) wrapper.Wrapper {
	t.Helper()
	db, ok := dbs[name]
	if !ok {
		t.Fatalf("fixture has no database %s", name)
	}
	return wrapper.NewRelational(db)
}

// TestParallelBranchesMatchSequential: parallel branch execution returns
// exactly the sequential answer, on the paper query and on a scaled
// workload.
func TestParallelBranchesMatchSequential(t *testing.T) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := paperCatalog()
	seq, err := NewExecutor(cat).ExecuteMediation(med)
	if err != nil {
		t.Fatal(err)
	}
	par := NewExecutor(cat)
	par.Parallel = true
	got, err := par.ExecuteMediation(med)
	if err != nil {
		t.Fatal(err)
	}
	if !relalg.SameTuples(seq, got) {
		t.Errorf("parallel != sequential:\n%s\nvs\n%s", seq, got)
	}
	if par.Stats().BranchesRun != 3 {
		t.Errorf("branches run = %d", par.Stats().BranchesRun)
	}
}

// TestParallelErrorPropagation: a failing branch fails the whole query.
func TestParallelErrorPropagation(t *testing.T) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	// Catalog missing r3 entirely: the conversion branches cannot plan.
	cat := NewCatalog()
	dbs := fixture.Databases()
	cat.MustAddSource(newRelationalFor(t, dbs, "source1"))
	cat.MustAddSource(newRelationalFor(t, dbs, "source2"))
	ex := NewExecutor(cat)
	ex.Parallel = true
	if _, err := ex.ExecuteMediation(med); err == nil {
		t.Error("missing source not reported under parallel execution")
	}
}
