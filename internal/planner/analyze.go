package planner

// EXPLAIN ANALYZE support: plan a SELECT block, execute it with actual
// counters wired through the pipeline, and hand back the analyzed plan
// for rendering. coin.System.ExplainAnalyze composes this per mediation
// branch.

import (
	"repro/internal/relalg"
	"repro/internal/sqlparse"
)

// AnalyzeSelect plans one SELECT block, executes it under sess with
// per-step actual counters attached, and returns the analyzed plan —
// BranchPlan.Explain then renders estimated-vs-actual rows, queries and
// cost per step. For an aggregated block the select-project-join core is
// what gets planned and analyzed (exactly what the executor's aggregate
// path plans); the aggregation itself adds no source communication. The
// executed answer is discarded: ANALYZE is about the plan, and the
// observed cardinalities still feed the adaptive statistics through the
// session as in any run.
func (e *Executor) AnalyzeSelect(sess *Session, sel *sqlparse.Select) (*BranchPlan, error) {
	run := sel
	if hasAggregates(sel) {
		spj := *sel
		spj.Items = []sqlparse.SelectItem{{Star: true}}
		spj.GroupBy, spj.Having, spj.OrderBy = nil, nil, nil
		spj.Limit = -1
		spj.Distinct = false
		run = &spj
	}
	plan, err := e.PlanCtx(sess.Context(), run)
	if err != nil {
		return nil, err
	}
	e.ParallelizePlan(plan, sess)
	plan.EnableAnalyze()
	it, err := e.BuildStream(sess, plan)
	if err != nil {
		return nil, err
	}
	// The session's governors all apply to the analyzed run; MaxRows is
	// applied here as a final LIMIT (the service layers do the same for
	// ordinary queries), so an analyzed branch stops pulling early too.
	if max := sess.Limits().MaxRows; max > 0 {
		it = relalg.NewLimit(it, max)
	}
	if _, err := relalg.Collect(sess.Context(), it, ""); err != nil {
		return nil, err
	}
	return plan, nil
}
