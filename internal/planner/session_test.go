package planner

// Tests for the query-session layer: cancellation propagating all the way
// into source fetches mid-stream, deadlines, the resource governors
// (max tuples transferred, max staged bytes), and the no-leak property of
// iterator trees (every source stream opened is closed, on success, early
// exit and error paths alike).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// trackingWrapper wraps a source and counts every tuple stream handed to
// the engine and every stream closed — the leak detector for iterator
// trees. With failAfter > 0, each stream errors after that many tuples,
// exercising the mid-stream error paths.
type trackingWrapper struct {
	wrapper.Wrapper
	failAfter int

	mu     sync.Mutex
	opened int
	closed int
}

func (t *trackingWrapper) QueryStream(ctx context.Context, q wrapper.SourceQuery) (wrapper.TupleStream, error) {
	st, err := wrapper.QueryStream(ctx, t.Wrapper, q)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.opened++
	t.mu.Unlock()
	return &trackStream{TupleStream: st, w: t, failAfter: t.failAfter}, nil
}

func (t *trackingWrapper) counts() (opened, closed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.opened, t.closed
}

func (t *trackingWrapper) assertBalanced(tt *testing.T) {
	tt.Helper()
	opened, closed := t.counts()
	if opened != closed {
		tt.Errorf("stream leak: %d opened, %d closed", opened, closed)
	}
}

type trackStream struct {
	wrapper.TupleStream
	w         *trackingWrapper
	failAfter int
	served    int
	done      bool
}

func (s *trackStream) Next() (relalg.Tuple, bool, error) {
	if s.failAfter > 0 && s.served >= s.failAfter {
		return nil, false, fmt.Errorf("tracked source: injected failure after %d tuples", s.served)
	}
	t, ok, err := s.TupleStream.Next()
	if ok {
		s.served++
	}
	return t, ok, err
}

func (s *trackStream) Close() error {
	if !s.done {
		s.done = true
		s.w.mu.Lock()
		s.w.closed++
		s.w.mu.Unlock()
	}
	return s.TupleStream.Close()
}

// trackedCatalog wires bigCatalog's data behind a trackingWrapper.
func trackedCatalog(n, failAfter int) (*Catalog, *trackingWrapper) {
	db := store.NewDB("bigsrc")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
		relalg.Column{Name: "grp", Type: relalg.KindString},
	))
	for i := 0; i < n; i++ {
		g := "even"
		if i%2 == 1 {
			g = "odd"
		}
		tab.MustInsert(relalg.NumV(float64(i)), relalg.StrV(g))
	}
	tw := &trackingWrapper{Wrapper: wrapper.NewRelational(db), failAfter: failAfter}
	cat := NewCatalog()
	cat.MustAddSource(tw)
	return cat, tw
}

// TestCancelStopsSourceFetchesMidStream is the acceptance criterion of
// the session refactor: cancelling an in-flight streaming query over a
// 50k-row source stops the transfer within one chunk — the stream notices
// ctx.Err() on its very next pull, TuplesTransferred stays O(pulled so
// far), and SourceQueries stops growing.
func TestCancelStopsSourceFetchesMidStream(t *testing.T) {
	const source = 50000
	db := store.NewDB("slowsrc")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
	))
	for i := 0; i < source; i++ {
		tab.MustInsert(relalg.NumV(float64(i)))
	}
	gw := wrappertest.NewGate(wrapper.NewRelational(db))
	cat := NewCatalog()
	cat.MustAddSource(gw)
	ex := NewExecutor(cat)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := ex.ExecuteCtx(ctx, sqlparse.MustParse("SELECT nums.n FROM nums"))
		errc <- err
	}()

	// Let 25 tuples through, then cancel mid-transfer (the stream is
	// blocked offering tuple 26).
	const allowed = 25
	for i := 0; i < allowed; i++ {
		<-gw.Emitted
		gw.Proceed <- struct{}{}
	}
	<-gw.Emitted
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("query error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not return promptly after cancellation")
	}
	st := ex.Stats()
	if st.TuplesTransferred > allowed {
		t.Errorf("TuplesTransferred = %d after cancel, want <= %d (source holds %d)",
			st.TuplesTransferred, allowed, source)
	}
	if st.SourceQueries != 1 {
		t.Errorf("SourceQueries = %d, want 1", st.SourceQueries)
	}
}

// TestCancelStopsMediationBranches: cancelling during branch 1 of a lazy
// mediated union prevents later branches from ever contacting their
// sources — SourceQueries stops growing.
func TestCancelStopsMediationBranches(t *testing.T) {
	db := store.NewDB("src")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
	))
	for i := 0; i < 100; i++ {
		tab.MustInsert(relalg.NumV(float64(i)))
	}
	gw := wrappertest.NewGate(wrapper.NewRelational(db))
	cat := NewCatalog()
	cat.MustAddSource(gw)
	ex := NewExecutor(cat)

	branches := make([]*sqlparse.Select, 3)
	for i := range branches {
		branches[i] = sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select)
	}
	med := &core.Mediation{Branches: branches, UnionAll: true}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := ex.ExecuteMediationCtx(ctx, med)
		errc <- err
	}()
	<-gw.Emitted // branch 1 offers its first tuple
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mediation error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mediation did not return promptly after cancellation")
	}
	if st := ex.Stats(); st.SourceQueries != 1 || st.BranchesRun != 1 {
		t.Errorf("stats after cancel = %+v, want 1 source query / 1 branch run", st)
	}
}

// TestSessionDeadlineExceeded: a session timeout surfaces as
// context.DeadlineExceeded from a query stuck on a slow source.
func TestSessionDeadlineExceeded(t *testing.T) {
	db := store.NewDB("src")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
	))
	tab.MustInsert(relalg.NumV(1))
	gw := wrappertest.NewGate(wrapper.NewRelational(db))
	cat := NewCatalog()
	cat.MustAddSource(gw)
	ex := NewExecutor(cat)

	sess := ex.NewSession(context.Background(), Limits{Timeout: 30 * time.Millisecond})
	defer sess.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := ex.ExecuteSession(sess, sqlparse.MustParse("SELECT nums.n FROM nums"))
		errc <- err
	}()
	// Never allow the gate: the source hangs until the deadline fires.
	select {
	case err := <-errc:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("query error = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not fire")
	}
}

// TestMaxTuplesGovernor: a session transferring more source tuples than
// its budget aborts with ErrTuplesExceeded instead of draining the
// source.
func TestMaxTuplesGovernor(t *testing.T) {
	ex := NewExecutor(bigCatalog(1000))
	sess := ex.NewSession(context.Background(), Limits{MaxTuples: 100})
	defer sess.Close()
	_, err := ex.ExecuteSession(sess, sqlparse.MustParse("SELECT nums.n FROM nums"))
	if !errors.Is(err, ErrTuplesExceeded) {
		t.Fatalf("err = %v, want ErrTuplesExceeded", err)
	}
	if st := ex.Stats(); st.TuplesTransferred > 150 {
		t.Errorf("TuplesTransferred = %d, want to stop near the 100-tuple budget", st.TuplesTransferred)
	}
}

// TestMaxTuplesGovernorUnderLimitPasses: a query within budget runs to
// completion.
func TestMaxTuplesGovernorUnderLimitPasses(t *testing.T) {
	ex := NewExecutor(bigCatalog(50))
	sess := ex.NewSession(context.Background(), Limits{MaxTuples: 100})
	defer sess.Close()
	res, err := ex.ExecuteSession(sess, sqlparse.MustParse("SELECT nums.n FROM nums"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 50 {
		t.Fatalf("got %d rows", res.Len())
	}
	if sess.TuplesTransferred() != 50 {
		t.Errorf("session counted %d tuples, want 50", sess.TuplesTransferred())
	}
}

// TestMaxStagedBytesGovernor: a sort buffer staged through the TempStore
// that exceeds the session's byte budget aborts the query with
// store.ErrStageBudgetExceeded.
func TestMaxStagedBytesGovernor(t *testing.T) {
	ts, err := store.NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ex := NewExecutor(bigCatalog(1000))
	ex.Temp = ts
	sess := ex.NewSession(context.Background(), Limits{MaxStagedBytes: 64})
	defer sess.Close()
	_, err = ex.ExecuteSession(sess, sqlparse.MustParse(
		"SELECT nums.n FROM nums ORDER BY nums.n DESC"))
	if !errors.Is(err, store.ErrStageBudgetExceeded) {
		t.Fatalf("err = %v, want store.ErrStageBudgetExceeded", err)
	}
}

// TestStreamsClosedOnAllPaths is the leak-tracking audit: across a full
// drain, an early exit, a mid-stream source failure, a canceled context
// and a lazily-satisfied mediation, every source stream the engine opened
// must be closed exactly once.
func TestStreamsClosedOnAllPaths(t *testing.T) {
	t.Run("full drain", func(t *testing.T) {
		cat, tw := trackedCatalog(500, 0)
		ex := NewExecutor(cat)
		if _, err := ex.Execute(sqlparse.MustParse("SELECT nums.n FROM nums")); err != nil {
			t.Fatal(err)
		}
		tw.assertBalanced(t)
	})

	t.Run("early exit", func(t *testing.T) {
		cat, tw := trackedCatalog(500, 0)
		ex := NewExecutor(cat)
		if _, err := ex.Execute(sqlparse.MustParse("SELECT nums.n FROM nums LIMIT 3")); err != nil {
			t.Fatal(err)
		}
		tw.assertBalanced(t)
	})

	t.Run("self join", func(t *testing.T) {
		cat, tw := trackedCatalog(100, 0)
		ex := NewExecutor(cat)
		if _, err := ex.Execute(sqlparse.MustParse(
			"SELECT a.n FROM nums a, nums b WHERE a.n = b.n LIMIT 5")); err != nil {
			t.Fatal(err)
		}
		tw.assertBalanced(t)
	})

	t.Run("mid-stream source failure", func(t *testing.T) {
		cat, tw := trackedCatalog(500, 7)
		ex := NewExecutor(cat)
		if _, err := ex.Execute(sqlparse.MustParse("SELECT nums.n FROM nums")); err == nil {
			t.Fatal("expected injected source failure")
		}
		tw.assertBalanced(t)
	})

	t.Run("failure inside a join", func(t *testing.T) {
		cat, tw := trackedCatalog(500, 7)
		ex := NewExecutor(cat)
		if _, err := ex.Execute(sqlparse.MustParse(
			"SELECT a.n FROM nums a, nums b WHERE a.n = b.n")); err == nil {
			t.Fatal("expected injected source failure")
		}
		tw.assertBalanced(t)
	})

	t.Run("canceled before open", func(t *testing.T) {
		cat, tw := trackedCatalog(100, 0)
		ex := NewExecutor(cat)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ex.ExecuteCtx(ctx, sqlparse.MustParse("SELECT nums.n FROM nums")); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		tw.assertBalanced(t)
	})

	t.Run("lazy mediation with limit", func(t *testing.T) {
		cat, tw := trackedCatalog(100, 0)
		ex := NewExecutor(cat)
		b1 := sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select)
		b2 := sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select)
		med := &core.Mediation{
			Branches: []*sqlparse.Select{b1, b2},
			UnionAll: true,
			Post:     &core.Post{Limit: 3},
		}
		if _, err := ex.ExecuteMediation(med); err != nil {
			t.Fatal(err)
		}
		tw.assertBalanced(t)
	})

	t.Run("parallel mediation", func(t *testing.T) {
		cat, tw := trackedCatalog(100, 0)
		ex := NewExecutor(cat)
		ex.Parallel = true
		b1 := sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select)
		b2 := sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select)
		med := &core.Mediation{Branches: []*sqlparse.Select{b1, b2}, UnionAll: true}
		if _, err := ex.ExecuteMediation(med); err != nil {
			t.Fatal(err)
		}
		tw.assertBalanced(t)
	})

	t.Run("aggregate with staging", func(t *testing.T) {
		ts, err := store.NewTempStore()
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()
		ts.SpillThreshold = 8
		cat, tw := trackedCatalog(100, 0)
		ex := NewExecutor(cat)
		ex.Temp = ts
		if _, err := ex.Execute(sqlparse.MustParse(
			"SELECT nums.grp, SUM(nums.n) AS total FROM nums GROUP BY nums.grp")); err != nil {
			t.Fatal(err)
		}
		tw.assertBalanced(t)
	})
}

// TestSessionContextIndependentOfParent: closing the session cancels its
// derived context but not the parent's.
func TestSessionContextIndependentOfParent(t *testing.T) {
	ex := NewExecutor(bigCatalog(1))
	parent := context.Background()
	sess := ex.NewSession(parent, Limits{})
	if sess.Context().Err() != nil {
		t.Fatal("fresh session context already dead")
	}
	sess.Close()
	if sess.Context().Err() == nil {
		t.Fatal("closed session context still alive")
	}
	if parent.Err() != nil {
		t.Fatal("closing the session canceled the parent context")
	}
}
