package planner

// Fault handling of the source access layer: every source operation the
// engine issues (materialized probes and streaming scan opens alike) runs
// through Executor.withRetry, which layers three mechanisms over the raw
// wrapper call:
//
//   - a per-source circuit breaker (breaker.go) admits each attempt, so a
//     source that keeps failing is rejected immediately instead of
//     burning a timeout per probe;
//   - faults wrapper.Retryable recognizes (transient, rate-limited — see
//     internal/wrapper/errors.go) are retried with exponential backoff
//     plus jitter, within the executor's RetryPolicy and the session's
//     Limits.RetryBudget governor;
//   - whatever failure survives comes back wrapped in *SourceError, which
//     attributes it to the source — the marker partial-results mode keys
//     off when deciding what may degrade (stream.go).
//
// Context death is never a source fault: when the session (or branch)
// context is done the raw error propagates unwrapped, feeding neither the
// breaker's verdict counts nor the retry loop — though an attempt that
// was admitted as the breaker's half-open probe is still released
// (abandoned) so the shared probe slot cannot leak.

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"repro/internal/wrapper"
)

// RetryPolicy bounds the retries one source operation may consume. The
// zero value disables retrying (each operation gets a single attempt),
// which keeps the default execution semantics exactly as before; the
// session-wide cap across operations is Limits.RetryBudget.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per operation,
	// including the first; 0 or 1 means no retries.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry, doubling per
	// further attempt; 0 means DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry wait; 0 means DefaultMaxBackoff. A
	// rate-limited source's Retry-After hint overrides a shorter wait.
	MaxBackoff time.Duration
}

// DefaultBaseBackoff is the first-retry wait when the policy names none.
const DefaultBaseBackoff = 20 * time.Millisecond

// DefaultMaxBackoff caps the exponential backoff when the policy names no
// cap of its own.
const DefaultMaxBackoff = 2 * time.Second

// enabled reports whether the policy allows any retry at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// attempts returns the per-operation attempt bound (at least 1).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff computes the wait before retry number `retry` (1-based):
// exponential in the base, capped, with half-width jitter so synchronized
// failures do not re-converge on the source in lockstep; a rate-limited
// source's hint is a floor.
func (p RetryPolicy) backoff(retry int, hint time.Duration) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	d := base
	for i := 1; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Full jitter over the upper half: [d/2, d].
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if hint > d {
		d = hint
	}
	return d
}

// SourceError attributes an execution-time failure to the source it came
// from. The access layer wraps every post-admission source fault in one;
// partial-results mode (Limits.PartialResults) degrades exactly these —
// context death and governor violations are never wrapped, so they stay
// fatal even under degradation.
type SourceError struct {
	Source string
	Err    error
}

func (e *SourceError) Error() string { return "source " + e.Source + ": " + e.Err.Error() }

func (e *SourceError) Unwrap() error { return e.Err }

// Degradable reports whether err is a source-attributed failure that
// partial-results mode may drop (with a warning) instead of failing the
// query.
func Degradable(err error) bool {
	var se *SourceError
	return errors.As(err, &se)
}

// Warning records one degraded mediation branch of a partial answer: the
// branch that was dropped, the source whose failure felled it, and the
// failure itself. How many tuples the branch would have contributed is
// unknowable — the warning is the receiver's signal that the answer is a
// lower bound.
type Warning struct {
	// Branch is the 1-based mediation branch that was dropped (0 when the
	// failure was not branch-scoped).
	Branch int `json:"branch,omitempty"`
	// Source names the failed source, when the failure was attributed.
	Source string `json:"source,omitempty"`
	// Message is the underlying failure.
	Message string `json:"error"`
}

// withRetry runs one source operation under the access layer's fault
// handling (see the file comment). op is retried as a whole — including
// its admission acquire — so no dispatcher slot is pinned while the loop
// sits out a backoff.
func (e *Executor) withRetry(ctx context.Context, sess *Session, w wrapper.Wrapper, op func() error) error {
	d := e.dispatcherFor(w)
	for attempt := 1; ; attempt++ {
		probe := false
		if !e.DisableBreaker {
			var aerr error
			if probe, aerr = d.allow(e.Breaker); aerr != nil {
				return &SourceError{Source: w.Source(), Err: aerr}
			}
		}
		err := op()
		if err == nil {
			if !e.DisableBreaker {
				d.succeed(probe)
			}
			return nil
		}
		if ctx.Err() != nil {
			// The query died, the source did not: report the raw error and
			// pass no verdict to the breaker — but release the half-open
			// probe slot if this attempt held it, or the source would be
			// stuck "probe in flight" forever.
			if !e.DisableBreaker {
				d.abandon(e.Breaker, probe)
			}
			return err
		}
		tripped := false
		if !e.DisableBreaker {
			if tripped = d.fail(e.Breaker, probe); tripped {
				e.mu.Lock()
				e.stats.BreakerTrips++
				e.mu.Unlock()
			}
		}
		werr := &SourceError{Source: w.Source(), Err: err}
		if tripped || attempt >= e.Retry.attempts() || !wrapper.Retryable(err) {
			// When this very failure tripped the breaker, retrying is a
			// guaranteed ErrSourceTripped rejection: stop here, without
			// charging the budget, and report the actual source fault.
			return werr
		}
		if !sess.chargeRetry() {
			return werr
		}
		hint, _ := wrapper.RetryAfter(err)
		if !sleepCtx(ctx, e.Retry.backoff(attempt, hint)) {
			return werr
		}
		e.mu.Lock()
		e.stats.Retries++
		e.mu.Unlock()
	}
}

// sleepCtx waits out d or the context, reporting false when the context
// died first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
