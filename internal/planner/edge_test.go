package planner

import (
	"testing"

	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// TestFlippedLiteralFilter: "5 < r1.revenue" pushes as revenue > 5.
func TestFlippedLiteralFilter(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	plan, err := ex.Plan(sqlparse.MustParse("SELECT r1.cname FROM r1 WHERE 2000000 < r1.revenue").(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps[0].Pushed) != 1 {
		t.Fatalf("pushed = %+v", plan.Steps[0].Pushed)
	}
	f := plan.Steps[0].Pushed[0]
	if f.Column != "revenue" || f.Op != ">" || f.Value.N != 2000000 {
		t.Errorf("flipped filter = %+v", f)
	}
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuples[0][0].S != "IBM" {
		t.Errorf("result = %s", res)
	}
}

// TestSameBindingComplexPredicateStaysLocal: r1.revenue * 2 > 1000 is a
// single-binding predicate too complex for the filter protocol; it runs
// engine-side right after the fetch.
func TestSameBindingComplexPredicate(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	sel := sqlparse.MustParse("SELECT r1.cname FROM r1 WHERE r1.revenue * 2 > 1000000").(*sqlparse.Select)
	plan, err := ex.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps[0].LocalPreds) != 1 {
		t.Fatalf("local preds = %+v", plan.Steps[0])
	}
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("result = %s", res)
	}
}

// TestSameBindingEqualityIsLocal: r2.cname = r2.cname (same binding both
// sides) is not a join.
func TestSameBindingEqualityIsLocal(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse("SELECT r2.cname FROM r2 WHERE r2.cname = r2.cname"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("result = %s", res)
	}
}

// TestCrossJoinNoPredicate: a FROM list without join predicates runs as a
// product.
func TestCrossJoinNoPredicate(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse("SELECT r1.cname, r2.cname FROM r1, r2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("cross join size = %d", res.Len())
	}
	// Duplicate output names are disambiguated.
	if res.Schema.Columns[0].Name == res.Schema.Columns[1].Name {
		t.Errorf("output columns collide: %v", res.Schema.Names())
	}
}

// TestThreeWayJoinOrder: the engine chains joins across three sources.
func TestThreeWayJoinOrder(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse(`
		SELECT r1.cname, r3.rate FROM r1, r2, r3
		WHERE r1.cname = r2.cname AND r3.fromCur = r1.currency AND r3.toCur = 'USD'`))
	if err != nil {
		t.Fatal(err)
	}
	// Only NTT's JPY row has a JPY→USD rate.
	if res.Len() != 1 || res.Tuples[0][0].S != "NTT" || res.Tuples[0][1].N != 0.0096 {
		t.Errorf("result = %s", res)
	}
}

// TestProjectionExpressionOutput: computed projections with aliases.
func TestProjectionExpression(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse(
		"SELECT r2.cname, r2.expenses / 1000000 AS m FROM r2 ORDER BY m DESC"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Columns[1].Name != "m" || res.Tuples[0][1].N != 150 {
		t.Errorf("result = %s", res)
	}
}

// TestBooleanColumnsSurvive: bool values flow through wrappers, joins and
// filters.
func TestBooleanColumns(t *testing.T) {
	db := storeWithBools()
	cat := NewCatalog()
	cat.MustAddSource(wrapper.NewRelational(db))
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse("SELECT flags.name FROM flags WHERE flags.active = TRUE"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuples[0][0].S != "on" {
		t.Errorf("result = %s", res)
	}
}

func storeWithBools() *store.DB {
	db := store.NewDB("boolsrc")
	tab := db.MustCreateTable("flags", relalg.NewSchema(
		relalg.Column{Name: "name", Type: relalg.KindString},
		relalg.Column{Name: "active", Type: relalg.KindBool},
	))
	tab.MustInsert(relalg.StrV("on"), relalg.BoolV(true))
	tab.MustInsert(relalg.StrV("off"), relalg.BoolV(false))
	return db
}
