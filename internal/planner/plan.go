package planner

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/sqlparse"
	"repro/internal/wrapper"
)

// BindPair feeds a required binding of a step's relation from a column of
// the intermediate result (a dependent / bind join).
type BindPair struct {
	// Column is the required column of the new relation (plain name).
	Column string
	// FromQualified is the already-available column feeding it
	// ("rl.currency").
	FromQualified string
}

// JoinKey equates one qualified column of the intermediate result with a
// plain column of the new relation.
type JoinKey struct {
	CurQualified string
	NewColumn    string // plain column of the step's relation
}

// PlanStep fetches one relation and joins it into the intermediate result.
type PlanStep struct {
	Binding  string
	Relation string
	Source   string

	// Pushed filters are sent to the source; Local ones the engine applies
	// after transfer (the source lacks the capability).
	Pushed []wrapper.Filter
	Local  []wrapper.Filter
	// LocalPreds are single-binding predicates too complex for the filter
	// protocol, applied by the engine right after transfer.
	LocalPreds []sqlparse.Expr
	// BindJoins are required bindings fed from earlier columns; non-empty
	// means one source query per distinct combination.
	BindJoins []BindPair
	// JoinKeys are the equality keys joining this relation to the
	// intermediate result (hash join when non-empty).
	JoinKeys []JoinKey
	// BatchSize is the planned IN-list width of a bind join against an
	// InList-capable source: probes are batched ⌈N/BatchSize⌉-wise. 1
	// means per-value probes; 0 means the step has no bind joins.
	BatchSize int
	// AfterPreds are predicates that become fully bound once this step
	// has run.
	AfterPreds []sqlparse.Expr

	// Workers is the hash-repartition exchange parallelism of this step's
	// join: above 1, the probe stream is split across that many worker
	// pipelines (relalg.ParallelHashJoinIter) and reassembled in exact
	// serial order. 0 or 1 is the serial hash join. Annotated by the
	// parallelize pass (parallel.go), never by the enumerators.
	Workers int
	// ScanParts is the partitioned fan-out of this step's source scan:
	// above 1, that many disjoint range streams are fetched concurrently
	// (the source must advertise Capabilities.Partitions) and reassembled
	// in part order, which equals the serial scan. Annotated by the
	// parallelize pass.
	ScanParts int

	// EstRows is the estimated tuples this step transfers from its source
	// (across all probes, for a bind join); EstQueries the estimated
	// source queries; EstCost the step's communication cost in the
	// source's abstract units. SourceCost snapshots the pricing
	// parameters so EXPLAIN ANALYZE can cost the measured counts the same
	// way.
	EstRows    float64
	EstQueries float64
	EstCost    float64
	SourceCost wrapper.Cost
}

// StepActuals are the measured counterparts of one step's estimates,
// filled in while an analyzed plan executes. Counters are atomic: a
// step's source fetches may run concurrently (batched probes, parallel
// branches).
type StepActuals struct {
	// Rows counts tuples actually transferred from the source for this
	// step (before engine-local filters).
	Rows atomic.Int64
	// Queries counts source queries issued for this step; probes answered
	// by the session cache count too (they are still accesses the plan
	// asked for).
	Queries atomic.Int64
	// Out counts the tuples the step emitted downstream, after its joins
	// and local predicates.
	Out atomic.Int64
	// WorkerRows, when the step ran under a parallel exchange, counts the
	// tuples each worker produced (join output rows for an exchange join,
	// scanned rows for a partitioned scan). Installed by BuildStream
	// before execution — one slot per worker — and rendered as per-worker
	// rows by Explain; nil for serial steps.
	WorkerRows []atomic.Int64
}

// PlanActuals carries a plan's measured execution counts, one entry per
// step, plus the rows the whole branch produced.
type PlanActuals struct {
	Steps []StepActuals
	// Rows counts the branch's output tuples.
	Rows atomic.Int64
}

// BranchPlan is the plan for one SELECT block.
type BranchPlan struct {
	Steps    []PlanStep
	EstCost  float64
	Items    []sqlparse.SelectItem
	Distinct bool
	OrderBy  []sqlparse.OrderItem
	Limit    int

	// Parallelism is the worker bound the parallelize pass annotated the
	// plan with (parallel.go); 0 or 1 means every operator runs serial
	// and the plan — Explain output included — is byte-identical to the
	// pre-exchange planner's.
	Parallelism int

	// Actuals, when non-nil (EnableAnalyze), makes the compiled pipeline
	// count per-step actual rows and queries as it runs; Explain then
	// renders estimated-vs-actual columns.
	Actuals *PlanActuals
}

// EnableAnalyze attaches (and returns) actual-execution counters to the
// plan: the next BuildStream wires them through the pipeline, and Explain
// renders measured columns next to the estimates. Call it before
// executing the plan.
func (p *BranchPlan) EnableAnalyze() *PlanActuals {
	if p.Actuals == nil {
		p.Actuals = &PlanActuals{Steps: make([]StepActuals, len(p.Steps))}
	}
	return p.Actuals
}

// stepActuals returns the counters for step i (nil when not analyzing).
func (p *BranchPlan) stepActuals(i int) *StepActuals {
	if p.Actuals == nil || i >= len(p.Actuals.Steps) {
		return nil
	}
	return &p.Actuals.Steps[i]
}

// Explain renders the plan for humans (EXPLAIN through coin, the server,
// the client and cmd/coinquery, plus the planner tests). After an
// analyzed execution (EnableAnalyze + run) every step also shows its
// measured rows, queries, cost and output cardinality.
func (p *BranchPlan) Explain() string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "step %d: %s", i+1, s.Relation)
		if s.Binding != s.Relation {
			fmt.Fprintf(&b, " AS %s", s.Binding)
		}
		fmt.Fprintf(&b, " @ %s", s.Source)
		if len(s.Pushed) > 0 {
			b.WriteString(" push[")
			for j, f := range s.Pushed {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s %s %s", f.Column, f.Op, f.Value)
			}
			b.WriteString("]")
		}
		if len(s.Local) > 0 || len(s.LocalPreds) > 0 {
			fmt.Fprintf(&b, " local[%d]", len(s.Local)+len(s.LocalPreds))
		}
		if len(s.BindJoins) > 0 {
			b.WriteString(" bind[")
			for j, bp := range s.BindJoins {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s<=%s", bp.Column, bp.FromQualified)
			}
			b.WriteString("]")
			if s.BatchSize > 1 {
				fmt.Fprintf(&b, " batch[%d]", s.BatchSize)
			}
		}
		if len(s.JoinKeys) > 0 {
			b.WriteString(" join[")
			for j, k := range s.JoinKeys {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s=%s.%s", k.CurQualified, s.Binding, k.NewColumn)
			}
			b.WriteString("]")
		}
		if s.ScanParts > 1 {
			fmt.Fprintf(&b, " part[%d]", s.ScanParts)
		}
		if s.Workers > 1 {
			fmt.Fprintf(&b, " exchange[%d]", s.Workers)
		}
		fmt.Fprintf(&b, " est_rows=%.0f est_queries=%.0f est_cost=%.0f", s.EstRows, s.EstQueries, s.EstCost)
		act := p.stepActuals(i)
		if act != nil {
			rows, queries := act.Rows.Load(), act.Queries.Load()
			actCost := s.SourceCost.PerQuery*float64(queries) + s.SourceCost.PerTuple*float64(rows)
			fmt.Fprintf(&b, " | act_rows=%d act_queries=%d act_cost=%.0f act_out=%d",
				rows, queries, actCost, act.Out.Load())
		}
		b.WriteByte('\n')
		if act != nil {
			for w := range act.WorkerRows {
				fmt.Fprintf(&b, "  worker %d: act_rows=%d\n", w, act.WorkerRows[w].Load())
			}
		}
	}
	if p.Parallelism > 1 && len(p.OrderBy) > 0 {
		fmt.Fprintf(&b, "merge[%d]\n", p.Parallelism)
	}
	fmt.Fprintf(&b, "total est_cost=%.0f", p.EstCost)
	if p.Actuals != nil {
		var rows, queries int64
		var cost float64
		for i := range p.Actuals.Steps {
			act := &p.Actuals.Steps[i]
			rows += act.Rows.Load()
			queries += act.Queries.Load()
			cost += p.Steps[i].SourceCost.PerQuery*float64(act.Queries.Load()) +
				p.Steps[i].SourceCost.PerTuple*float64(act.Rows.Load())
		}
		fmt.Fprintf(&b, " | act_cost=%.0f act_tuples=%d act_queries=%d act_branch_rows=%d",
			cost, rows, queries, p.Actuals.Rows.Load())
	}
	b.WriteByte('\n')
	return b.String()
}
