package planner

import (
	"fmt"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/wrapper"
)

// BindPair feeds a required binding of a step's relation from a column of
// the intermediate result (a dependent / bind join).
type BindPair struct {
	// Column is the required column of the new relation (plain name).
	Column string
	// FromQualified is the already-available column feeding it
	// ("rl.currency").
	FromQualified string
}

// JoinKey equates one qualified column of the intermediate result with a
// plain column of the new relation.
type JoinKey struct {
	CurQualified string
	NewColumn    string // plain column of the step's relation
}

// PlanStep fetches one relation and joins it into the intermediate result.
type PlanStep struct {
	Binding  string
	Relation string
	Source   string

	// Pushed filters are sent to the source; Local ones the engine applies
	// after transfer (the source lacks the capability).
	Pushed []wrapper.Filter
	Local  []wrapper.Filter
	// LocalPreds are single-binding predicates too complex for the filter
	// protocol, applied by the engine right after transfer.
	LocalPreds []sqlparse.Expr
	// BindJoins are required bindings fed from earlier columns; non-empty
	// means one source query per distinct combination.
	BindJoins []BindPair
	// JoinKeys are the equality keys joining this relation to the
	// intermediate result (hash join when non-empty).
	JoinKeys []JoinKey
	// BatchSize is the planned IN-list width of a bind join against an
	// InList-capable source: probes are batched ⌈N/BatchSize⌉-wise. 1
	// means per-value probes; 0 means the step has no bind joins.
	BatchSize int
	// AfterPreds are predicates that become fully bound once this step
	// has run.
	AfterPreds []sqlparse.Expr

	EstRows float64
	EstCost float64
}

// BranchPlan is the plan for one SELECT block.
type BranchPlan struct {
	Steps    []PlanStep
	EstCost  float64
	Items    []sqlparse.SelectItem
	Distinct bool
	OrderBy  []sqlparse.OrderItem
	Limit    int
}

// Explain renders the plan for humans (cmd/coinquery -explain and the
// planner tests).
func (p *BranchPlan) Explain() string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "step %d: %s", i+1, s.Relation)
		if s.Binding != s.Relation {
			fmt.Fprintf(&b, " AS %s", s.Binding)
		}
		fmt.Fprintf(&b, " @ %s", s.Source)
		if len(s.Pushed) > 0 {
			b.WriteString(" push[")
			for j, f := range s.Pushed {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s %s %s", f.Column, f.Op, f.Value)
			}
			b.WriteString("]")
		}
		if len(s.Local) > 0 || len(s.LocalPreds) > 0 {
			fmt.Fprintf(&b, " local[%d]", len(s.Local)+len(s.LocalPreds))
		}
		if len(s.BindJoins) > 0 {
			b.WriteString(" bind[")
			for j, bp := range s.BindJoins {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s<=%s", bp.Column, bp.FromQualified)
			}
			b.WriteString("]")
			if s.BatchSize > 1 {
				fmt.Fprintf(&b, " batch[%d]", s.BatchSize)
			}
		}
		if len(s.JoinKeys) > 0 {
			b.WriteString(" join[")
			for j, k := range s.JoinKeys {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s=%s.%s", k.CurQualified, s.Binding, k.NewColumn)
			}
			b.WriteString("]")
		}
		fmt.Fprintf(&b, " est_rows=%.0f est_cost=%.0f\n", s.EstRows, s.EstCost)
	}
	fmt.Fprintf(&b, "total est_cost=%.0f\n", p.EstCost)
	return b.String()
}
