package planner

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/web"
	"repro/internal/wrapper"
)

// paperCatalog wires the Figure 2 sources: two relational sources plus the
// currency Web site wrapped in its crawlable form.
func paperCatalog() (*Catalog, *web.Site) {
	dbs := fixture.Databases()
	cat := NewCatalog()
	cat.MustAddSource(wrapper.NewRelational(dbs["source1"]))
	cat.MustAddSource(wrapper.NewRelational(dbs["source2"]))
	site := web.NewCurrencySite(web.PaperRates())
	cat.MustAddSource(wrapper.NewWeb("currencyweb", site, wrapper.MustParseSpec(wrapper.CurrencySpecCrawl)))
	return cat, site
}

// lookupCatalog uses the parameterized (required-bindings) form of the
// currency site, forcing bind joins.
func lookupCatalog() (*Catalog, *web.Site) {
	dbs := fixture.Databases()
	cat := NewCatalog()
	cat.MustAddSource(wrapper.NewRelational(dbs["source1"]))
	cat.MustAddSource(wrapper.NewRelational(dbs["source2"]))
	site := web.NewCurrencySite(web.PaperRates())
	cat.MustAddSource(wrapper.NewWeb("currencyweb", site, wrapper.MustParseSpec(wrapper.CurrencySpecLookup)))
	return cat, site
}

func TestCatalogBasics(t *testing.T) {
	cat, _ := paperCatalog()
	if len(cat.Relations()) != 3 {
		t.Errorf("relations = %v", cat.Relations())
	}
	if _, err := cat.WrapperFor("zzz"); err == nil {
		t.Error("unknown relation accepted")
	}
	if src, ok := cat.SourceOf("r3"); !ok || src != "currencyweb" {
		t.Errorf("SourceOf(r3) = %s, %v", src, ok)
	}
	// Duplicate relation across sources is rejected.
	dup := store.NewDB("dupsrc")
	dup.MustCreateTable("r1", fixture.R1Schema())
	if err := cat.AddSource(wrapper.NewRelational(dup)); err == nil {
		t.Error("duplicate relation accepted")
	}
}

// TestNaiveQueryWrongAnswer reproduces the paper's motivating failure: Q1
// executed without mediation misses NTT.
func TestNaiveQueryWrongAnswer(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse(fixture.PaperQ1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range res.Tuples {
		if tup[0].S == "NTT" {
			t.Errorf("naive execution returned NTT; contexts were ignored?\n%s", res)
		}
	}
}

// TestPaperExampleEndToEnd is experiment E1 complete: mediate Q1, execute
// the mediated union, and check the paper's correct answer — the single
// tuple <'NTT', 9 600 000>.
func TestPaperExampleEndToEnd(t *testing.T) {
	for name, build := range map[string]func() (*Catalog, *web.Site){
		"crawl-wrapper":  paperCatalog,
		"lookup-wrapper": lookupCatalog,
	} {
		t.Run(name, func(t *testing.T) {
			cat, _ := build()
			med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
			if err != nil {
				t.Fatal(err)
			}
			ex := NewExecutor(cat)
			res, err := ex.ExecuteMediation(med)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != 1 {
				t.Fatalf("mediated answer has %d tuples, want 1:\n%s", res.Len(), res)
			}
			if res.Tuples[0][0].S != "NTT" || res.Tuples[0][1].N != 9600000 {
				t.Errorf("answer = %v, want <NTT, 9600000>", res.Tuples[0])
			}
		})
	}
}

// TestBindJoinUsesLookups: with the lookup wrapper, the r3 access must be
// fed per-currency (bind join), issuing one page fetch per needed pair
// rather than crawling.
func TestBindJoinUsesLookups(t *testing.T) {
	cat, site := lookupCatalog()
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(cat)
	site.ResetHits()
	if _, err := ex.ExecuteMediation(med); err != nil {
		t.Fatal(err)
	}
	// Branch 2 binds JPY→USD by constants (1 fetch); branch 3 feeds
	// fromCur from rl.currency (2 distinct currencies → 2 fetches, one of
	// which 404s? no: all currencies present in rates). Either way the
	// crawl index page (5 pages) must never be touched.
	hits := site.Hits()
	if hits == 0 || hits > 4 {
		t.Errorf("lookup fetches = %d, want a handful of targeted lookups", hits)
	}
}

// TestBindJoinInfeasibleWithoutFeeder: the lookup wrapper cannot answer a
// query that never binds its parameters.
func TestBindJoinInfeasible(t *testing.T) {
	cat, _ := lookupCatalog()
	ex := NewExecutor(cat)
	_, err := ex.Execute(sqlparse.MustParse("SELECT r3.rate FROM r3"))
	if err == nil || !strings.Contains(err.Error(), "feasible") {
		t.Errorf("err = %v", err)
	}
}

func TestPlanExplainShape(t *testing.T) {
	cat, _ := lookupCatalog()
	ex := NewExecutor(cat)
	sel := sqlparse.MustParse(
		"SELECT r1.cname FROM r1, r3 WHERE r3.fromCur = r1.currency AND r3.toCur = 'USD'").(*sqlparse.Select)
	plan, err := ex.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	// r1 must come first; r3 depends on it.
	if plan.Steps[0].Relation != "r1" || plan.Steps[1].Relation != "r3" {
		t.Errorf("order = %s, %s", plan.Steps[0].Relation, plan.Steps[1].Relation)
	}
	if len(plan.Steps[1].BindJoins) != 1 || plan.Steps[1].BindJoins[0].FromQualified != "r1.currency" {
		t.Errorf("bind joins = %+v", plan.Steps[1].BindJoins)
	}
	exp := plan.Explain()
	if !strings.Contains(exp, "bind[fromCur<=r1.currency]") {
		t.Errorf("explain:\n%s", exp)
	}
}

// TestSelectionPushdown: with a capable source, filters travel to the
// source and fewer tuples transfer; the ablation keeps them local.
func TestSelectionPushdownAblation(t *testing.T) {
	cat, _ := paperCatalog()
	q := sqlparse.MustParse("SELECT r1.cname FROM r1 WHERE r1.currency = 'JPY'")

	ex := NewExecutor(cat)
	if _, err := ex.Execute(q); err != nil {
		t.Fatal(err)
	}
	pushed := ex.Stats().TuplesTransferred

	ex2 := NewExecutor(cat)
	ex2.DisablePushdown = true
	res, err := ex2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	unpushed := ex2.Stats().TuplesTransferred
	if res.Len() != 1 {
		t.Fatalf("result = %s", res)
	}
	if pushed >= unpushed {
		t.Errorf("pushdown transferred %d tuples, ablation %d; pushdown should transfer fewer", pushed, unpushed)
	}
}

func TestJoinAlgorithmsSameResult(t *testing.T) {
	cat, _ := paperCatalog()
	q := sqlparse.MustParse("SELECT r1.cname, r2.expenses FROM r1, r2 WHERE r1.cname = r2.cname")
	a, err := NewExecutor(cat).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	exNL := NewExecutor(cat)
	exNL.ForceNestedLoop = true
	b, err := exNL.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	exMJ := NewExecutor(cat)
	exMJ.ForceMergeJoin = true
	c, err := exMJ.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relalg.SameTuples(a, b) || !relalg.SameTuples(a, c) {
		t.Errorf("join algorithms disagree:\n%s\nvs\n%s\nvs\n%s", a, b, c)
	}
}

func TestAggregateExecution(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse(
		"SELECT r1.currency, COUNT(*) AS n FROM r1 GROUP BY r1.currency ORDER BY n DESC"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("groups = %s", res)
	}
}

func TestOrderLimitDistinct(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse(
		"SELECT DISTINCT r3.toCur FROM r3 ORDER BY r3.toCur LIMIT 2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Tuples[0][0].S != "JPY" {
		t.Errorf("result = %s", res)
	}
}

// TestMediatedAggregation: SUM over converted revenues equals the oracle
// (IBM 1e8 USD + NTT 9.6e6 USD).
func TestMediatedAggregation(t *testing.T) {
	cat, _ := paperCatalog()
	med, err := core.New(fixture.Registry()).MediateSQL(
		"SELECT SUM(r1.revenue) AS total FROM r1", "c2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewExecutor(cat).ExecuteMediation(med)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("result = %s", res)
	}
	want := 100000000.0 + 9600000.0
	if res.Tuples[0][0].N != want {
		t.Errorf("SUM = %v, want %v", res.Tuples[0][0], want)
	}
}

// TestMediationOracleEquivalence is the cross-module property test: on
// randomized workloads of the Figure 2 shape, executing the mediated
// query must equal a direct Go computation of the receiver-context
// answer.
func TestMediationOracleEquivalence(t *testing.T) {
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		w := fixture.NewScaledWorkload(60, seed)
		cat := NewCatalog()
		db1 := store.NewDB("source1")
		t1 := db1.MustCreateTable("r1", fixture.R1Schema())
		for _, row := range w.R1.Tuples {
			if err := t1.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		db2 := store.NewDB("source2")
		t2 := db2.MustCreateTable("r2", fixture.R2Schema())
		for _, row := range w.R2.Tuples {
			if err := t2.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		db3 := store.NewDB("currencyweb")
		t3 := db3.MustCreateTable("r3", fixture.R3Schema())
		for _, row := range w.R3.Tuples {
			if err := t3.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		cat.MustAddSource(wrapper.NewRelational(db1))
		cat.MustAddSource(wrapper.NewRelational(db2))
		cat.MustAddSource(wrapper.NewRelational(db3))

		res, err := NewExecutor(cat).ExecuteMediation(med)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Compare as sets of (name, rounded revenue) to dodge float noise.
		round := func(rel *relalg.Relation) map[string]int64 {
			out := map[string]int64{}
			for _, tup := range rel.Tuples {
				out[tup[0].S] = int64(tup[1].N*100 + 0.5)
			}
			return out
		}
		got, want := round(res), round(w.Expected)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d answers, want %d", seed, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("seed %d: %s = %d, want %d", seed, k, got[k], v)
			}
		}
	}
}

// TestTempStoreStaging: with a tiny spill threshold, execution stages
// intermediates on disk and still gets the right answer.
func TestTempStoreStaging(t *testing.T) {
	cat, _ := paperCatalog()
	ts, err := store.NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ts.SpillThreshold = 1
	ex := NewExecutor(cat)
	ex.Temp = ts
	res, err := ex.Execute(sqlparse.MustParse(
		"SELECT r1.cname, r2.expenses FROM r1, r2 WHERE r1.cname = r2.cname"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("staged answer = %s", res)
	}
	if ts.Spills() == 0 {
		t.Error("no spills despite threshold 1")
	}
	// Mediation still works through the staging path.
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ex.ExecuteMediation(med)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 || ans.Tuples[0][0].S != "NTT" {
		t.Errorf("staged mediated answer = %s", ans)
	}
}

// TestUnreachableSourceError: failure injection — a source that errors
// propagates a useful message instead of a silent empty answer.
func TestUnreachableSourceError(t *testing.T) {
	dbs := fixture.Databases()
	cat := NewCatalog()
	cat.MustAddSource(wrapper.NewRelational(dbs["source1"]))
	cat.MustAddSource(wrapper.NewRelational(dbs["source2"]))
	// The currency "site" has no pages: every fetch fails.
	cat.MustAddSource(wrapper.NewWeb("currencyweb", web.NewSite("dead"),
		wrapper.MustParseSpec(wrapper.CurrencySpecCrawl)))
	med, err := core.New(fixture.Registry()).MediateSQL(fixture.PaperQ1, "c2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewExecutor(cat).ExecuteMediation(med)
	if err == nil || !strings.Contains(err.Error(), "fetching") {
		t.Errorf("err = %v", err)
	}
}

func TestExecStatsCount(t *testing.T) {
	cat, _ := paperCatalog()
	ex := NewExecutor(cat)
	if _, err := ex.Execute(sqlparse.MustParse("SELECT r1.cname FROM r1")); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.SourceQueries != 1 || st.TuplesTransferred != 2 || st.BranchesRun != 1 {
		t.Errorf("stats = %+v", st)
	}
	ex.ResetStats()
	if ex.Stats().SourceQueries != 0 {
		t.Error("ResetStats failed")
	}
}
