package planner

// This file builds the logical query graph the optimizer enumerates over:
// one relBinding per FROM entry, the WHERE conjuncts classified into
// pushable filters, engine-local filters, equi-join edges and residual
// predicates. The graph is purely logical — no access order is chosen
// here — and placement sets are represented as bitmasks over the FROM
// order, so both the greedy enumerator and the dynamic-programming one
// (optimize.go) work over the same structure.

import (
	"fmt"

	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/wrapper"
)

// relBinding is one FROM-clause entry resolved against the catalog: the
// relation, its schema, the source's capabilities and cost parameters,
// and the single-relation predicates already partitioned into pushed
// (sent to the source) and local (applied engine-side after transfer).
type relBinding struct {
	idx      int // position in the FROM clause; bit idx in placement masks
	name     string
	relation string
	schema   relalg.Schema
	caps     wrapper.Capabilities
	w        wrapper.Wrapper

	pushed     []wrapper.Filter
	local      []wrapper.Filter
	localPreds []sqlparse.Expr
	// reqCovered marks required bindings satisfied by pushed constant
	// equalities; the rest must be fed by join edges (a bind join).
	reqCovered map[string]bool
}

// bit returns the binding's placement-mask bit.
func (b *relBinding) bit() uint64 { return 1 << uint(b.idx) }

// joinEdge is one binding-to-binding equality predicate.
type joinEdge struct {
	a, b       *relBinding
	aCol, bCol string
	expr       sqlparse.Expr
}

// residualPred is a multi-binding predicate that is neither a simple
// filter nor an equi-join; it runs as soon as every binding it mentions
// has been placed.
type residualPred struct {
	expr sqlparse.Expr
	mask uint64
}

// logicalQuery is the optimizer's input: the query graph for one SELECT
// block.
type logicalQuery struct {
	sel       *sqlparse.Select
	rels      []*relBinding
	joins     []joinEdge
	residuals []residualPred
}

// buildLogical resolves sel against the catalog and classifies its WHERE
// conjuncts. The result is deterministic: bindings keep FROM order,
// edges and residuals keep conjunct order, and per-binding filters keep
// the order of appearance.
func (e *Executor) buildLogical(sel *sqlparse.Select) (*logicalQuery, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("planner: query has no FROM clause")
	}
	if len(sel.From) > 64 {
		// Placement sets are uint64 bitmasks; beyond 64 relations they
		// would overflow silently. Refuse loudly — no realistic mediation
		// emits a 65-way join, and the execution layer could not carry
		// one anyway.
		return nil, fmt.Errorf("planner: FROM clause has %d relations; the planner supports at most 64", len(sel.From))
	}
	lq := &logicalQuery{sel: sel}
	byName := map[string]*relBinding{}
	for i, ref := range sel.From {
		w, err := e.Catalog.WrapperFor(ref.Table)
		if err != nil {
			return nil, err
		}
		schema, err := w.Schema(ref.Table)
		if err != nil {
			return nil, err
		}
		caps, err := w.Capabilities(ref.Table)
		if err != nil {
			return nil, err
		}
		b := &relBinding{idx: i, name: ref.Binding(), relation: ref.Table, schema: schema, caps: caps, w: w}
		if byName[b.name] != nil {
			return nil, fmt.Errorf("planner: duplicate binding %s", b.name)
		}
		lq.rels = append(lq.rels, b)
		byName[b.name] = b
	}

	// resolve maps a column reference onto (binding, plain column).
	resolve := func(c *sqlparse.ColRef) (*relBinding, string, error) {
		if c.Table != "" {
			b := byName[c.Table]
			if b == nil {
				return nil, "", fmt.Errorf("planner: no binding %s for %s", c.Table, c)
			}
			idx := b.schema.Index(c.Column)
			if idx < 0 {
				return nil, "", fmt.Errorf("planner: %s has no column %s", b.relation, c.Column)
			}
			return b, b.schema.Columns[idx].Name, nil
		}
		var found *relBinding
		col := ""
		for _, b := range lq.rels {
			if idx := b.schema.Index(c.Column); idx >= 0 {
				if found != nil {
					return nil, "", fmt.Errorf("planner: column %s is ambiguous", c.Column)
				}
				found, col = b, b.schema.Columns[idx].Name
			}
		}
		if found == nil {
			return nil, "", fmt.Errorf("planner: unknown column %s", c.Column)
		}
		return found, col, nil
	}

	// predMask returns the placement mask of the bindings p mentions.
	predMask := func(p sqlparse.Expr) (uint64, error) {
		var mask uint64
		for _, c := range sqlparse.ColumnsOf(p) {
			b, _, err := resolve(c)
			if err != nil {
				return 0, err
			}
			mask |= b.bit()
		}
		return mask, nil
	}

	filters := map[string][]wrapper.Filter{}
	for _, p := range sqlparse.Conjuncts(sel.Where) {
		if f, b, ok, err := simpleFilter(p, resolve); err != nil {
			return nil, err
		} else if ok {
			filters[b.name] = append(filters[b.name], f)
			continue
		}
		if jp, ok, err := equiJoin(p, resolve); err != nil {
			return nil, err
		} else if ok {
			lq.joins = append(lq.joins, joinEdge{a: jp.a, b: jp.b, aCol: jp.aCol, bCol: jp.bCol, expr: p})
			continue
		}
		mask, err := predMask(p)
		if err != nil {
			return nil, err
		}
		if popcount(mask) == 1 {
			for _, b := range lq.rels {
				if mask == b.bit() {
					b.localPreds = append(b.localPreds, p)
				}
			}
			continue
		}
		lq.residuals = append(lq.residuals, residualPred{expr: p, mask: mask})
	}

	// Partition each binding's simple filters into pushed and local, and
	// record which required bindings pushed constants already cover. The
	// split depends only on capabilities and the pushdown ablation, never
	// on placement, so it is computed once here.
	for _, b := range lq.rels {
		required := map[string]bool{}
		for _, rc := range b.caps.RequiredBindings {
			required[rc] = true
		}
		b.reqCovered = map[string]bool{}
		for _, f := range filters[b.name] {
			pushable := b.caps.Selection || (f.Op == "=" && required[f.Column])
			if e.DisablePushdown && !(f.Op == "=" && required[f.Column]) {
				pushable = false
			}
			if pushable {
				b.pushed = append(b.pushed, f)
				if f.Op == "=" {
					b.reqCovered[f.Column] = true
				}
			} else {
				b.local = append(b.local, f)
			}
		}
	}
	return lq, nil
}

// feedFor finds the join edge able to feed required column rc of b from
// an already-placed binding, returning the feeding qualified column ("" if
// none). Edges are scanned in conjunct order, so the choice is
// deterministic.
func (lq *logicalQuery) feedFor(b *relBinding, rc string, placed uint64) string {
	for _, j := range lq.joins {
		if j.a == b && j.aCol == rc && placed&j.b.bit() != 0 {
			return j.b.name + "." + j.bCol
		}
		if j.b == b && j.bCol == rc && placed&j.a.bit() != 0 {
			return j.a.name + "." + j.aCol
		}
	}
	return ""
}

// feasible reports whether b can be placed given the placed set: every
// required binding is covered by a pushed constant or fed by a join edge
// to a placed binding.
func (lq *logicalQuery) feasible(b *relBinding, placed uint64) bool {
	for _, rc := range b.caps.RequiredBindings {
		if b.reqCovered[rc] {
			continue
		}
		if lq.feedFor(b, rc, placed) == "" {
			return false
		}
	}
	return true
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
