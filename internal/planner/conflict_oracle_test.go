package planner

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/relalg"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// TestConflictWorkloadOracle is the scaled cross-module property test for
// the E5 shape: for m independent two-way modifier splits, each row's
// converted value is val * 1000^(number of K flags). Executing the
// 2^m-branch mediated query must reproduce that oracle on random data.
func TestConflictWorkloadOracle(t *testing.T) {
	for m := 1; m <= 3; m++ {
		t.Run(fmt.Sprintf("modifiers=%d", m), func(t *testing.T) {
			reg := fixture.ConflictRegistry(m)
			med, err := core.New(reg).MediateSQL("SELECT wide.id, wide.val FROM wide", "recv")
			if err != nil {
				t.Fatal(err)
			}
			if len(med.Branches) != 1<<m {
				t.Fatalf("branches = %d", len(med.Branches))
			}

			rng := rand.New(rand.NewSource(int64(m) * 17))
			schema, _ := reg.Schema("wide")
			db := store.NewDB("confsrc")
			tab := db.MustCreateTable("wide", schema)
			oracle := map[string]float64{}
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("row%02d", i)
				val := float64(rng.Intn(1000) + 1)
				row := relalg.Tuple{relalg.StrV(id), relalg.NumV(val)}
				expected := val
				for j := 0; j < m; j++ {
					flag := "X"
					if rng.Intn(2) == 0 {
						flag = "K"
						expected *= 1000
					}
					row = append(row, relalg.StrV(flag))
				}
				if err := tab.Insert(row); err != nil {
					t.Fatal(err)
				}
				oracle[id] = expected
			}
			cat := NewCatalog()
			cat.MustAddSource(wrapper.NewRelational(db))

			res, err := NewExecutor(cat).ExecuteMediation(med)
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != len(oracle) {
				t.Fatalf("rows = %d, want %d (branches must partition the data)", res.Len(), len(oracle))
			}
			for _, tup := range res.Tuples {
				want := oracle[tup[0].S]
				if math.Abs(tup[1].N-want) > 1e-9*want {
					t.Errorf("%s: converted %v, want %v", tup[0].S, tup[1].N, want)
				}
			}
		})
	}
}
